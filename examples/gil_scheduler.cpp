//===- examples/gil_scheduler.cpp - brr as a statistical scheduler --------===//
//
// Section 7's non-profiling use case: CPython's cooperative multithreading
// releases the global interpreter lock (GIL) after a fixed number of
// bytecodes, paying a countdown (load/decrement/test/store) on every
// bytecode dispatched. A branch-on-random with a matching frequency makes
// the same *statistical* guarantee - the GIL is released about once per N
// bytecodes - for the cost of a single never-mispredicting instruction in
// the dispatch loop.
//
// This example builds both interpreter loops in BOR-RISC, times them on
// the cycle-level machine model, and compares release cadence and
// dispatch-loop overhead.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "sim/Interpreter.h"
#include "support/Table.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h" // marker ids

#include <cstdio>

using namespace bor;

namespace {

constexpr uint64_t NumBytecodes = 200000;
constexpr uint64_t CheckInterval = 128; // sys.setcheckinterval analogue

enum class GilStrategy { None, Countdown, Brr };

struct GilProgram {
  Program Prog;
  uint64_t ReleaseCounter;
};

/// The interpreter dispatch loop: per bytecode a little dispatch work,
/// then (optionally) the GIL-release check; the release path itself
/// simulates a lock handoff and counts releases.
GilProgram buildInterpreter(GilStrategy Strategy) {
  ProgramBuilder B;
  GilProgram Out;
  Out.ReleaseCounter = B.allocData(8, 8);
  uint64_t Countdown = B.allocData(8, 8);
  B.initDataU64(Countdown, CheckInterval - 1);

  B.emitLoadConst(28, DefaultDataBase);
  B.emitLoadConst(2, NumBytecodes);
  B.emit(Inst::marker(MarkerRoiBegin));

  auto Loop = B.label();
  auto Release = B.label();
  auto Resume = B.label();
  B.bind(Loop);

  // "Dispatch": decode the next bytecode and execute its handler - a
  // realistic bytecode costs a couple dozen host instructions, which is
  // what makes the per-bytecode countdown overhead worth eliminating.
  B.emit(Inst::add(4, 4, 2));
  B.emit(Inst::alui(Opcode::Xori, 5, 5, 0x2a));
  B.emit(Inst::addi(6, 6, 3));
  B.emit(Inst::alu(Opcode::Xor, 7, 7, 4));
  for (int Op = 0; Op != 3; ++Op) {
    B.emit(Inst::alui(Opcode::Slli, 8, 4, 2));
    B.emit(Inst::add(9, 9, 8));
    B.emit(Inst::alui(Opcode::Xori, 10, 10, 7));
    B.emit(Inst::addi(11, 11, 5));
  }

  switch (Strategy) {
  case GilStrategy::None:
    break;
  case GilStrategy::Countdown: {
    // CPython: if (--_Py_Ticker <= 0) release_gil();
    int32_t D = static_cast<int32_t>(Countdown - DefaultDataBase);
    B.emit(Inst::ld(15, 28, D));
    B.emitBranch(Opcode::Beq, 15, 0, Release);
    B.bind(Resume);
    B.emit(Inst::addi(15, 15, -1));
    B.emit(Inst::st(15, 28, D));
    break;
  }
  case GilStrategy::Brr:
    B.emitBrr(FreqCode::forInterval(CheckInterval), Release);
    B.bind(Resume);
    break;
  }

  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::marker(MarkerRoiEnd));
  B.emit(Inst::halt());

  if (Strategy != GilStrategy::None) {
    // The release path: hand the lock off (a few stores/loads) and count.
    B.bind(Release);
    int32_t RC = static_cast<int32_t>(Out.ReleaseCounter - DefaultDataBase);
    B.emit(Inst::ld(15, 28, RC));
    B.emit(Inst::addi(15, 15, 1));
    B.emit(Inst::st(15, 28, RC));
    if (Strategy == GilStrategy::Countdown) {
      int32_t D = static_cast<int32_t>(Countdown - DefaultDataBase);
      B.emit(Inst::li(15, CheckInterval - 1));
      B.emit(Inst::st(15, 28, D));
      // Skip the decrement on this path: the counter was just reset.
      B.emit(Inst::addi(2, 2, -1));
      B.emitBranch(Opcode::Bne, 2, 0, Loop);
      B.emit(Inst::marker(MarkerRoiEnd));
      B.emit(Inst::halt());
    } else {
      B.emitJmp(Resume);
    }
  }

  Out.Prog = B.finish();
  return Out;
}

struct GilResult {
  uint64_t RoiCycles;
  uint64_t Releases;
};

GilResult run(GilStrategy Strategy) {
  GilProgram GP = buildInterpreter(Strategy);
  Pipeline Pipe(GP.Prog, PipelineConfig());
  RunResult Timed = Pipe.run(1ULL << 40);
  GilResult R;
  R.RoiCycles = Timed.roiCycles();
  R.Releases = Pipe.machine().memory().readU64(GP.ReleaseCounter);
  return R;
}

} // namespace

int main() {
  std::printf("GIL scheduling: countdown vs branch-on-random "
              "(%llu bytecodes, release every ~%llu)\n\n",
              static_cast<unsigned long long>(NumBytecodes),
              static_cast<unsigned long long>(CheckInterval));

  GilResult None = run(GilStrategy::None);
  GilResult Countdown = run(GilStrategy::Countdown);
  GilResult Brr = run(GilStrategy::Brr);

  Table T;
  T.addRow({"strategy", "cycles", "overhead %", "cycles/bytecode",
            "GIL releases"});
  auto AddRow = [&](const char *Name, const GilResult &R) {
    T.addRow({Name, Table::fmt(R.RoiCycles),
              Table::fmt(100.0 *
                             (static_cast<double>(R.RoiCycles) -
                              static_cast<double>(None.RoiCycles)) /
                             static_cast<double>(None.RoiCycles),
                         2),
              Table::fmt(static_cast<double>(R.RoiCycles) / NumBytecodes, 2),
              Table::fmt(R.Releases)});
  };
  AddRow("no GIL checks", None);
  AddRow("countdown (CPython)", Countdown);
  AddRow("branch-on-random", Brr);
  T.print();

  std::printf("\nboth strategies release ~%llu times; the countdown pays "
              "its check on every bytecode, brr pays one fall-through "
              "branch.\n",
              static_cast<unsigned long long>(NumBytecodes /
                                              CheckInterval));
  return 0;
}
