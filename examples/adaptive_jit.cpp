//===- examples/adaptive_jit.cpp - Continuous profiling in an adaptive JIT -===//
//
// The paper's opening argument (Section 1): most JVMs profile only
// baseline-compiled code; once a method is optimized its instrumentation
// is dropped, so the runtime "misses opportunities to re-optimize their
// code as program behavior changes". Branch-on-random makes it cheap to
// keep sampling *inside optimized code*, enabling continuous profiling.
//
// This example plays the whole scenario out on the timing model:
//
//   phase 1  startup: every method baseline-compiled and fully
//            instrumented; the profile identifies the hot set.
//   phase 2  the "JIT" recompiles the hot methods (their bodies get
//            faster). Three policies for the optimized code:
//              traditional - no instrumentation (profile goes blind),
//              cbs         - counter-sampled instrumentation,
//              brr         - branch-on-random-sampled instrumentation.
//   phase 3  the workload shifts: the hot ranking *within the optimized
//            set* inverts. Only the sampled policies see it; we compare
//            what each profile reports and what each policy cost.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "uarch/Pipeline.h"
#include "workloads/AppGen.h"
#include "workloads/Microbench.h" // marker ids

#include <algorithm>
#include <cstdio>
#include <numeric>

using namespace bor;

namespace {

AppConfig baseApp(uint64_t Seed) {
  AppConfig C;
  C.NumMethods = 24;
  C.NumTopCalls = 24000;
  C.InnerIters = 8;
  C.CallFanoutProb = 0.3;
  C.ZipfSkew = 1.1;
  C.Seed = Seed;
  C.Instr.Framework = SamplingFramework::Full; // baseline compiler
  C.Instr.Interval = 256;
  return C;
}

struct JitRunResult {
  uint64_t RoiCycles = 0;
  std::vector<uint64_t> Profile;
};

JitRunResult run(const AppConfig &C) {
  AppProgram App = buildApp(C);
  Pipeline Pipe(App.Prog, PipelineConfig());
  bor::RunResult Timed = Pipe.run(1ULL << 40);
  JitRunResult R;
  R.RoiCycles = Timed.roiCycles();
  for (uint32_t M = 0; M != App.NumMethods; ++M)
    R.Profile.push_back(
        Pipe.machine().memory().readU64(App.ProfileBase + 8 * M));
  return R;
}

/// Ranks methods by count, hottest first.
std::vector<uint32_t> ranking(const std::vector<uint64_t> &Counts) {
  std::vector<uint32_t> Ids(Counts.size());
  std::iota(Ids.begin(), Ids.end(), 0);
  std::sort(Ids.begin(), Ids.end(), [&](uint32_t A, uint32_t B) {
    return Counts[A] > Counts[B];
  });
  return Ids;
}

} // namespace

int main() {
  // --- Phase 1: startup under the baseline compiler. ---------------------
  AppConfig Startup = baseApp(/*Seed=*/0x3a7);
  JitRunResult P1 = run(Startup);
  std::vector<uint32_t> Rank = ranking(P1.Profile);
  std::vector<uint32_t> HotSet(Rank.begin(), Rank.begin() + 6);
  std::sort(HotSet.begin(), HotSet.end());

  std::printf("phase 1 (startup, fully instrumented baseline code): "
              "%llu cycles\n  hot set:",
              static_cast<unsigned long long>(P1.RoiCycles));
  for (uint32_t M : HotSet)
    std::printf(" m%u", M);
  std::printf("\n\n");

  // --- Phase 2: recompile the hot set under three policies. --------------
  auto Recompiled = [&](SamplingFramework OptFramework) {
    AppConfig C = baseApp(0x3a7);
    C.OptimizedMethods = HotSet;
    for (uint32_t M : HotSet)
      C.MethodFramework[M] = OptFramework;
    return C;
  };

  JitRunResult Blind = run(Recompiled(SamplingFramework::None));
  JitRunResult Cbs = run(Recompiled(SamplingFramework::CounterBased));
  JitRunResult Brr = run(Recompiled(SamplingFramework::BrrBased));

  Table T;
  T.addRow({"phase-2 policy for optimized code", "cycles",
            "speedup vs startup", "profiling cost vs blind %"});
  auto Row = [&](const char *Name, const JitRunResult &R) {
    T.addRow({Name, Table::fmt(R.RoiCycles),
              Table::fmt(static_cast<double>(P1.RoiCycles) /
                             static_cast<double>(R.RoiCycles),
                         3),
              Table::fmt(100.0 *
                             (static_cast<double>(R.RoiCycles) -
                              static_cast<double>(Blind.RoiCycles)) /
                             static_cast<double>(Blind.RoiCycles),
                         2)});
  };
  Row("traditional (drop instrumentation)", Blind);
  Row("continuous via counter sampling", Cbs);
  Row("continuous via branch-on-random", Brr);
  T.print();

  // --- Phase 3: behaviour shifts; who notices? ----------------------------
  // A different call mix (new seed) reshuffles hotness inside the
  // optimized set. Re-run the phase-2 binaries on the shifted workload.
  auto Shifted = [&](SamplingFramework OptFramework) {
    AppConfig C = Recompiled(OptFramework);
    C.Seed = 0x77b2; // the program changed its behaviour
    return C;
  };
  JitRunResult BlindShift = run(Shifted(SamplingFramework::None));
  JitRunResult BrrShift = run(Shifted(SamplingFramework::BrrBased));

  uint64_t BlindSeen = 0, BrrSeen = 0;
  for (uint32_t M : HotSet) {
    BlindSeen += BlindShift.Profile[M];
    BrrSeen += BrrShift.Profile[M];
  }

  std::printf("\nphase 3 (behaviour shift):\n");
  std::printf("  traditional profile samples from optimized methods: "
              "%llu (blind - cannot re-rank them)\n",
              static_cast<unsigned long long>(BlindSeen));
  std::printf("  brr profile samples from optimized methods:         "
              "%llu\n",
              static_cast<unsigned long long>(BrrSeen));

  // Sampled counts estimate 1/Interval of the truth: rescale before
  // ranking against the fully-counted baseline-compiled methods.
  std::vector<uint64_t> Estimated = BrrShift.Profile;
  for (uint32_t M : HotSet)
    Estimated[M] *= Startup.Instr.Interval;
  std::vector<uint32_t> NewRank = ranking(Estimated);
  std::printf("  brr-continuous profile's new hottest methods: "
              "m%u m%u m%u -> the runtime can re-optimize.\n",
              NewRank[0], NewRank[1], NewRank[2]);
  return 0;
}
