//===- examples/profiling_jvm.cpp - Continuous profiling in a runtime ----===//
//
// The paper's motivating scenario: a managed runtime (think Jikes RVM)
// wants to keep profiling *optimized* code so it can re-optimize when
// behaviour shifts, but cannot afford a counter-based framework in its
// hottest methods. With branch-on-random the runtime:
//
//  * samples method invocations at negligible cost (Figure 12), and
//  * adapts the sampling rate with convergent profiling (Section 7):
//    high rate while the profile is still moving, backing off as it
//    converges, re-raising when the low-rate samples disagree with the
//    established characterization (e.g., after a phase change).
//
// This example drives the ConvergentProfiler with a synthetic workload
// that changes phase halfway through, and prints the rate trajectory and
// the profiles recovered in each phase.
//
//===----------------------------------------------------------------------===//

#include "profile/Convergent.h"
#include "profile/TraceGen.h"
#include "support/Table.h"

#include <cstdio>

using namespace bor;

int main() {
  const uint32_t NumMethods = 32;

  // Phase 1: methods 0/1 hot (a parser-dominated startup, say).
  BenchmarkModel Phase1;
  Phase1.Name = "startup";
  Phase1.Invocations = 3000000;
  Phase1.NumMethods = NumMethods;
  Phase1.ZipfSkew = 1.2;
  // A stationary stream for the demo: convergence on segmented streams is
  // explored in the TraceGen tests.
  Phase1.ResonantFraction = 0.0;
  Phase1.Seed = 11;

  // Phase 2: a different hot set (steady-state query processing):
  // remap ids so the Zipf head lands on different methods.
  BenchmarkModel Phase2 = Phase1;
  Phase2.Name = "steady-state";
  Phase2.Seed = 22;

  ConvergentConfig Cfg;
  Cfg.InitialFreqRaw = 2; // start sampling 1/8
  Cfg.MaxFreqRaw = 9;     // back off as far as 1/1024
  Cfg.EpochSamples = 1024;
  Cfg.ConvergeThreshold = 0.10; // above the ~0.05 sampling noise floor
  Cfg.DivergeThreshold = 0.30;
  ConvergentProfiler Profiler(NumMethods, Cfg);

  InvocationStream S1(Phase1);
  while (!S1.done())
    Profiler.visit(S1.next());
  uint64_t Phase1Visits = Profiler.visits();
  unsigned RateAfterPhase1 = Profiler.currentFreq().raw();

  InvocationStream S2(Phase2);
  while (!S2.done())
    Profiler.visit((S2.next() + 13) % NumMethods); // shifted hot set

  // --- Report. -----------------------------------------------------------
  std::printf("convergent profiling: %llu method invocations, %llu "
              "samples (%.4f%% of visits)\n\n",
              static_cast<unsigned long long>(Profiler.visits()),
              static_cast<unsigned long long>(Profiler.samples()),
              100.0 * static_cast<double>(Profiler.samples()) /
                  static_cast<double>(Profiler.visits()));

  std::printf("rate trajectory (freq field; interval = 2^(freq+1)):\n");
  unsigned Shown = 0;
  int32_t LastFreq = -1;
  for (const auto &E : Profiler.history()) {
    if (static_cast<int32_t>(E.FreqRaw) == LastFreq)
      continue;
    LastFreq = static_cast<int32_t>(E.FreqRaw);
    const char *Phase = E.VisitsSoFar <= Phase1Visits ? "startup" : "steady";
    std::printf("  visit %9llu (%s): freq -> %u (1/%llu)\n",
                static_cast<unsigned long long>(E.VisitsSoFar), Phase,
                E.FreqRaw,
                static_cast<unsigned long long>(FreqCode(E.FreqRaw)
                                                    .expectedInterval()));
    if (++Shown > 24)
      break;
  }

  std::printf("\nafter startup converged, sampling had backed off to "
              "1/%llu; the phase change pushed it back up (re-"
              "characterization), then it re-converged.\n\n",
              static_cast<unsigned long long>(
                  FreqCode(RateAfterPhase1).expectedInterval()));

  Table T;
  T.addRow({"method", "sampled fraction %"});
  const MethodProfile &P = Profiler.profile();
  for (uint32_t M = 0; M != 8; ++M)
    T.addRow({"m" + std::to_string(M), Table::fmt(100 * P.fraction(M), 2)});
  T.print();
  return 0;
}
