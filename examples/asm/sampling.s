; examples/asm/sampling.s - a hand-written brr-sampled loop.
;
; Build and run:
;   bor-as examples/asm/sampling.s -o sampling.borb
;   bor-run sampling.borb --timing --dump-sym=hits --dump-sym=sum
;
; The loop accumulates a sum (the "real work"); a single branch-on-random
; per iteration samples an out-of-line profiling block (Figure 8 layout)
; roughly once every 64 iterations.

.alloc hits 8 8
.alloc sum  8 8

        lc   r28, @hits           ; globals base (hits is first)
        lc   r2, 50000            ; iterations
        li   r3, 0                ; accumulator

loop:
        brr  1/64, profile        ; the entire sampling framework
back:
        add  r3, r3, r2           ; real work
        addi r2, r2, -1
        bne  r2, r0, loop

        st   r3, 8(r28)           ; publish "sum"
        halt

profile:                          ; out of line: common case falls through
        ld   r15, 0(r28)
        addi r15, r15, 1
        st   r15, 0(r28)
        jmp  back
