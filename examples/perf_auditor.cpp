//===- examples/perf_auditor.cpp - Online performance auditing ------------===//
//
// Section 7's second non-profiling use case (after Lau et al.): a runtime
// has two functionally-equivalent versions of a hot kernel and wants to
// know which is faster *in production* without committing to either. A
// branch-on-random statistically routes a small fraction of executions to
// the candidate version; comparing sampled costs picks the winner, and the
// audit itself costs almost nothing.
//
// Here version A computes 15*x with strength-reduced shifts/adds while
// candidate version B uses naive repeated addition (three times the
// instructions). The auditor routes 1/64 of iterations through B.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "support/Table.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h" // marker ids

#include <cstdio>

using namespace bor;

namespace {

constexpr uint64_t Iters = 100000;

enum class Variant { AOnly, BOnly, Audited };

/// Emits version A of the kernel: shift/add polynomial evaluation.
void emitVersionA(ProgramBuilder &B) {
  B.emit(Inst::alui(Opcode::Slli, 5, 4, 1));
  B.emit(Inst::add(5, 5, 4));
  B.emit(Inst::alui(Opcode::Slli, 6, 5, 2));
  B.emit(Inst::add(6, 6, 5));
  B.emit(Inst::add(7, 7, 6));
}

/// Version B: the same 15*x, but computed by naive repeated addition (the
/// unstrength-reduced form a simpler code generator would emit).
void emitVersionB(ProgramBuilder &B) {
  B.emit(Inst::mv(5, 4));
  for (int I = 0; I != 14; ++I)
    B.emit(Inst::add(5, 5, 4));
  B.emit(Inst::add(7, 7, 5));
}

Program build(Variant V) {
  ProgramBuilder B;
  uint64_t AuditCount = B.allocData(8, 8);
  B.nameData("audits", AuditCount);
  B.emitLoadConst(28, DefaultDataBase);
  B.emitLoadConst(2, Iters);
  B.emit(Inst::marker(MarkerRoiBegin));

  auto Loop = B.label();
  auto AuditB = B.label();
  auto Tail = B.label();
  B.bind(Loop);
  B.emit(Inst::addi(4, 4, 1)); // kernel input

  switch (V) {
  case Variant::AOnly:
    emitVersionA(B);
    break;
  case Variant::BOnly:
    emitVersionB(B);
    break;
  case Variant::Audited:
    B.emitBrr(FreqCode::forInterval(64), AuditB);
    emitVersionA(B);
    break;
  }

  B.bind(Tail);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::marker(MarkerRoiEnd));
  B.emit(Inst::halt());

  if (V == Variant::Audited) {
    B.bind(AuditB);
    emitVersionB(B);
    int32_t D = static_cast<int32_t>(AuditCount - DefaultDataBase);
    B.emit(Inst::ld(15, 28, D));
    B.emit(Inst::addi(15, 15, 1));
    B.emit(Inst::st(15, 28, D));
    B.emitJmp(Tail);
  }
  return B.finish();
}

struct Result {
  uint64_t RoiCycles;
  uint64_t Audits;
};

Result run(Variant V) {
  Program P = build(V);
  Pipeline Pipe(P, PipelineConfig());
  RunResult Timed = Pipe.run(1ULL << 40);
  Result R;
  R.RoiCycles = Timed.roiCycles();
  R.Audits = Pipe.machine().memory().readU64(P.symbol("audits"));
  return R;
}

} // namespace

int main() {
  std::printf("online performance auditing with branch-on-random "
              "(%llu kernel executions, audit rate 1/64)\n\n",
              static_cast<unsigned long long>(Iters));

  Result A = run(Variant::AOnly);
  Result BR = run(Variant::BOnly);
  Result Audit = run(Variant::Audited);

  Table T;
  T.addRow({"build", "cycles", "cycles/iteration", "audited executions"});
  T.addRow({"version A only", Table::fmt(A.RoiCycles),
            Table::fmt(static_cast<double>(A.RoiCycles) / Iters, 2), "0"});
  T.addRow({"version B only", Table::fmt(BR.RoiCycles),
            Table::fmt(static_cast<double>(BR.RoiCycles) / Iters, 2), "0"});
  T.addRow({"A + brr-audited B", Table::fmt(Audit.RoiCycles),
            Table::fmt(static_cast<double>(Audit.RoiCycles) / Iters, 2),
            Table::fmt(Audit.Audits)});
  T.print();

  double PerIterA = static_cast<double>(A.RoiCycles) / Iters;
  double PerIterB = static_cast<double>(BR.RoiCycles) / Iters;
  double AuditOverhead =
      100.0 * (static_cast<double>(Audit.RoiCycles) -
               static_cast<double>(A.RoiCycles)) /
      static_cast<double>(A.RoiCycles);
  std::printf("\nverdict: version %s is faster (%.2f vs %.2f "
              "cycles/iteration); auditing it in production cost "
              "%.2f%%.\n",
              PerIterA < PerIterB ? "A" : "B", PerIterA, PerIterB,
              AuditOverhead);
  return 0;
}
