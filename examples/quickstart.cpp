//===- examples/quickstart.cpp - First steps with branch-on-random -------===//
//
// A five-minute tour of the library:
//
//  1. poke the decode-stage hardware model (BrrUnit) directly;
//  2. assemble a BOR-RISC program that uses `brr` to sample a loop;
//  3. run it functionally and read the collected profile;
//  4. run the same program through the cycle-level pipeline model and see
//     what the sampling cost.
//
//===----------------------------------------------------------------------===//

#include "isa/Disasm.h"
#include "isa/ProgramBuilder.h"
#include "sim/Interpreter.h"
#include "uarch/Pipeline.h"

#include <cstdio>

using namespace bor;

int main() {
  // --- 1. The hardware: an LFSR, 15 AND gates and a mux. ----------------
  BrrUnit Unit; // 20-bit LFSR, spaced AND inputs: the paper's design point
  FreqCode OneIn16(FreqCode::forInterval(16));
  uint64_t Taken = 0;
  for (int I = 0; I != 100000; ++I)
    Taken += Unit.evaluate(OneIn16);
  std::printf("BrrUnit at freq=%u: taken %.3f%% (encoding says %.3f%%)\n\n",
              OneIn16.raw(), 100.0 * Taken / 100000,
              100.0 * OneIn16.probability());

  // --- 2. A program: count loop iterations, sampled at 1/16. ------------
  // if_random(1/16) { samples++; }  around a 100000-iteration loop.
  ProgramBuilder B;
  uint64_t SampleCounter = B.allocData(8, 8);
  B.emitLoadConst(28, DefaultDataBase); // globals base

  B.emitLoadConst(2, 100000); // loop counter
  auto Loop = B.label();
  auto DoSample = B.label();
  auto Resume = B.label();
  B.bind(Loop);
  B.emitBrr(OneIn16, DoSample); // the entire sampling framework
  B.bind(Resume);
  B.emit(Inst::add(4, 4, 2)); // "real work"
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());

  // Out-of-line instrumentation (Figure 8 layout: common case falls
  // through; the rare sampled path jumps out and back).
  B.bind(DoSample);
  B.emit(Inst::ld(15, 28, 0));
  B.emit(Inst::addi(15, 15, 1));
  B.emit(Inst::st(15, 28, 0));
  B.emitJmp(Resume);

  Program P = B.finish();
  std::printf("the sampled loop:\n%s\n", disassemble(P).c_str());

  // --- 3. Functional run. ------------------------------------------------
  BrrUnitDecider Decider;
  Machine M;
  Interpreter Interp(P, M, Decider);
  RunStats Stats = Interp.run(1ULL << 24);
  std::printf("functional: %llu insts, %llu brr executed, %llu taken, "
              "samples collected = %llu (expect ~%u)\n",
              static_cast<unsigned long long>(Stats.Insts),
              static_cast<unsigned long long>(Stats.BrrExecuted),
              static_cast<unsigned long long>(Stats.BrrTaken),
              static_cast<unsigned long long>(
                  M.memory().readU64(SampleCounter)),
              100000 / 16);

  // --- 4. Timed run on the Section 5.1 machine. ---------------------------
  Pipeline Pipe(P, PipelineConfig());
  PipelineStats TS = Pipe.run(1ULL << 40).Stats;
  std::printf("timing: %llu cycles, IPC %.2f, %llu front-end flushes from "
              "taken brrs\n",
              static_cast<unsigned long long>(TS.Cycles), TS.ipc(),
              static_cast<unsigned long long>(TS.BrrTaken));
  return 0;
}
