//===- examples/value_profiler.cpp - Sampled value profiling --------------===//
//
// The paper opens with value profiling as the canonical expensive
// instrumentation: Calder et al.'s profiler slows programs down by up to
// 10x when it records a value at every site execution (Section 1). With
// branch-on-random, a site records into its top-N-value table only on
// sampled visits, making "always-on" value profiling plausible.
//
// This example profiles the values flowing through three synthetic sites
// with different invariance (constant, semi-invariant, random), comparing
// the full profile against a brr-sampled one, and then measures on the
// timing model what each strategy costs in the containing loop.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "profile/SamplingPolicy.h"
#include "profile/ValueProfile.h"
#include "support/Rng.h"
#include "support/Table.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h" // marker ids

#include <cstdio>

using namespace bor;

namespace {

/// The three sites' value generators.
uint64_t siteValue(unsigned Site, Xoshiro256 &Rng) {
  switch (Site) {
  case 0:
    return 4096; // invariant (e.g., an allocation size)
  case 1:
    return Rng.nextBool(0.85) ? 7 : Rng.nextBelow(100); // semi-invariant
  default:
    return Rng.next(); // genuinely variable
  }
}

const char *siteName(unsigned Site) {
  switch (Site) {
  case 0:
    return "alloc-size (invariant)";
  case 1:
    return "loop-bound (semi-inv)";
  default:
    return "hash-input (random)";
  }
}

/// Cycle cost of a loop whose body "records a value": the record is a TNV
/// probe modelled as a handful of loads/stores, guarded by nothing (full),
/// by a brr (sampled), or absent (baseline).
uint64_t loopCycles(int Mode /*0=no inst, 1=full, 2=brr-sampled*/) {
  ProgramBuilder B;
  uint64_t Table = B.allocData(256, 8);
  B.emitLoadConst(28, Table);
  B.emitLoadConst(2, 200000);
  B.emit(Inst::marker(MarkerRoiBegin));
  auto Loop = B.label();
  auto Probe = B.label();
  auto Back = B.label();
  B.bind(Loop);
  B.emit(Inst::add(4, 4, 2));
  B.emit(Inst::alui(Opcode::Xori, 5, 5, 3));

  auto EmitProbe = [&] {
    // A compact TNV probe: read a slot, compare, bump a counter.
    B.emit(Inst::ld(15, 28, 0));
    B.emit(Inst::addi(15, 15, 1));
    B.emit(Inst::st(15, 28, 0));
    B.emit(Inst::ld(14, 28, 8));
    B.emit(Inst::add(14, 14, 4));
    B.emit(Inst::st(14, 28, 8));
  };

  if (Mode == 1)
    EmitProbe();
  if (Mode == 2)
    B.emitBrr(FreqCode::forInterval(64), Probe);
  B.bind(Back);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::marker(MarkerRoiEnd));
  B.emit(Inst::halt());
  if (Mode == 2) {
    B.bind(Probe);
    EmitProbe();
    B.emitJmp(Back);
  }

  Program P = B.finish();
  Pipeline Pipe(P, PipelineConfig());
  return Pipe.run(1ULL << 40).roiCycles();
}

} // namespace

int main() {
  std::printf("sampled value profiling with branch-on-random "
              "(rate 1/64, 500000 site visits per site)\n\n");

  Table T;
  T.addRow({"site", "top value (full)", "top value (1/64)",
            "invariance (full)", "invariance (1/64)", "samples"});
  Xoshiro256 Rng(0xbeef);
  for (unsigned Site = 0; Site != 3; ++Site) {
    ValueProfile Full(8, 1024);
    ValueProfile Sampled(8, 1024);
    BrrPolicy Brr(64);
    for (int I = 0; I != 500000; ++I) {
      uint64_t V = siteValue(Site, Rng);
      Full.record(V);
      if (Brr.sample())
        Sampled.record(V);
    }
    T.addRow({siteName(Site), Table::fmt(Full.topValue()),
              Table::fmt(Sampled.topValue()),
              Table::fmt(Full.topValueFraction(), 3),
              Table::fmt(Sampled.topValueFraction(), 3),
              Table::fmt(Sampled.samples())});
  }
  T.print();

  std::printf("\ncost of the recording itself (timing model, 200000-"
              "iteration loop):\n\n");
  uint64_t Base = loopCycles(0);
  uint64_t Full = loopCycles(1);
  uint64_t Sampled = loopCycles(2);
  Table C;
  C.addRow({"strategy", "cycles", "overhead %"});
  auto Pct = [Base](uint64_t Cycles) {
    return Table::fmt(100.0 * (static_cast<double>(Cycles) - Base) / Base,
                      2);
  };
  C.addRow({"no profiling", Table::fmt(Base), "0.00"});
  C.addRow({"record every visit", Table::fmt(Full), Pct(Full)});
  C.addRow({"brr-sampled 1/64", Table::fmt(Sampled), Pct(Sampled)});
  C.print();

  std::printf("\nthe sampled profile identifies the same dominant values "
              "and invariance at a fraction of the recording cost.\n");
  return 0;
}
