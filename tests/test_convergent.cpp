//===- tests/test_convergent.cpp - Convergent profiling tests -------------===//

#include "profile/Convergent.h"

#include "support/Rng.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bor;

namespace {

/// Visits the profiler with methods drawn from a fixed two-mode
/// distribution: mode 0 favours method 0, mode 1 favours method 1.
void drive(ConvergentProfiler &CP, Xoshiro256 &Rng, int Mode,
           uint64_t Visits) {
  for (uint64_t I = 0; I != Visits; ++I) {
    uint32_t Hot = Mode == 0 ? 0 : 1;
    uint32_t Method = Rng.nextBool(0.8) ? Hot : 2 + Rng.nextBelow(6);
    CP.visit(Method);
  }
}

} // namespace

TEST(ConvergentProfiler, StartsAtConfiguredFrequency) {
  ConvergentConfig C;
  C.InitialFreqRaw = 5;
  ConvergentProfiler CP(8, C);
  EXPECT_EQ(CP.currentFreq().raw(), 5u);
}

TEST(ConvergentProfiler, LowersRateOnStationaryBehaviour) {
  ConvergentConfig C;
  C.InitialFreqRaw = 2;
  C.MaxFreqRaw = 10;
  C.EpochSamples = 256;
  ConvergentProfiler CP(8, C);
  Xoshiro256 Rng(1);
  drive(CP, Rng, 0, 2000000);
  // A stable distribution converges: the rate walks down to the floor.
  EXPECT_GT(CP.currentFreq().raw(), 6u);
  EXPECT_FALSE(CP.history().empty());
}

TEST(ConvergentProfiler, RaisesRateOnBehaviourShift) {
  ConvergentConfig C;
  C.InitialFreqRaw = 2;
  C.MaxFreqRaw = 6; // interval 128: epochs stay short after convergence
  C.EpochSamples = 256;
  ConvergentProfiler CP(8, C);
  Xoshiro256 Rng(2);
  drive(CP, Rng, 0, 1000000);
  unsigned Converged = CP.currentFreq().raw();
  ASSERT_GT(Converged, 3u) << "profiler should have converged first";
  drive(CP, Rng, 1, 400000); // phase change
  // At least one epoch during the shift must have re-raised the rate.
  unsigned MinSeen = 15;
  for (const auto &E : CP.history())
    if (E.VisitsSoFar > 1000000)
      MinSeen = std::min(MinSeen, E.FreqRaw);
  EXPECT_LT(MinSeen, Converged);
}

TEST(ConvergentProfiler, SamplesFarFewerThanVisits) {
  ConvergentConfig C;
  C.InitialFreqRaw = 4;
  ConvergentProfiler CP(8, C);
  Xoshiro256 Rng(3);
  drive(CP, Rng, 0, 500000);
  EXPECT_LT(CP.samples(), CP.visits() / 8);
  EXPECT_GT(CP.samples(), 0u);
}

TEST(ConvergentProfiler, ProfileTracksTrueHotMethod) {
  ConvergentConfig C;
  ConvergentProfiler CP(8, C);
  Xoshiro256 Rng(4);
  drive(CP, Rng, 0, 1000000);
  const MethodProfile &P = CP.profile();
  for (size_t I = 1; I != P.numMethods(); ++I)
    EXPECT_GT(P.count(0), P.count(I));
}

TEST(ConvergentProfiler, FrequencyStaysWithinBand) {
  ConvergentConfig C;
  C.InitialFreqRaw = 3;
  C.MinFreqRaw = 2;
  C.MaxFreqRaw = 6;
  ConvergentProfiler CP(8, C);
  Xoshiro256 Rng(5);
  // Alternate behaviour modes to push the controller around.
  for (int Phase = 0; Phase != 20; ++Phase)
    drive(CP, Rng, Phase % 2, 50000);
  for (const auto &E : CP.history()) {
    EXPECT_GE(E.FreqRaw, C.MinFreqRaw);
    EXPECT_LE(E.FreqRaw, C.MaxFreqRaw);
  }
}

TEST(ConvergentProfiler, EpochHistoryIsOrdered) {
  ConvergentConfig C;
  C.EpochSamples = 128;
  ConvergentProfiler CP(8, C);
  Xoshiro256 Rng(6);
  drive(CP, Rng, 0, 300000);
  const auto &H = CP.history();
  ASSERT_GT(H.size(), 2u);
  for (size_t I = 1; I != H.size(); ++I)
    EXPECT_GT(H[I].VisitsSoFar, H[I - 1].VisitsSoFar);
}

TEST(ConvergentProfiler, NoiseFloorEstimateMatchesEmpirical) {
  // Draw epochs from a known distribution and compare the analytic noise
  // floor against the measured epoch-vs-truth total variation.
  const size_t K = 32;
  const uint64_t N = 512;
  MethodProfile Truth(K);
  Xoshiro256 Rng(77);
  ZipfSampler Zipf(K, 1.1);
  for (int I = 0; I != 2000000; ++I)
    Truth.record(Zipf.sample(Rng));

  double Predicted = ConvergentProfiler::expectedSamplingNoise(Truth, N);

  RunningStat Empirical;
  for (int Trial = 0; Trial != 40; ++Trial) {
    MethodProfile Epoch(K);
    for (uint64_t I = 0; I != N; ++I)
      Epoch.record(Zipf.sample(Rng));
    double Tv = 0;
    for (size_t M = 0; M != K; ++M)
      Tv += std::abs(Epoch.fraction(M) - Truth.fraction(M));
    Empirical.add(0.5 * Tv);
  }
  EXPECT_NEAR(Predicted, Empirical.mean(), 0.3 * Empirical.mean());
}

TEST(ConvergentProfiler, AdaptiveThresholdsConvergeWithoutTuning) {
  // The fixed default thresholds fail on wide, noisy distributions; the
  // adaptive mode self-calibrates and still backs off.
  ConvergentConfig Cfg;
  Cfg.InitialFreqRaw = 2;
  Cfg.MaxFreqRaw = 9;
  Cfg.EpochSamples = 512;
  Cfg.AdaptiveThresholds = true;
  ConvergentProfiler CP(64, Cfg);

  Xoshiro256 Rng(5);
  ZipfSampler Zipf(64, 1.2);
  for (int I = 0; I != 3000000; ++I)
    CP.visit(static_cast<uint32_t>(Zipf.sample(Rng)));
  EXPECT_GE(CP.currentFreq().raw(), 7u) << "should have backed off";
}

TEST(ConvergentProfiler, AdaptiveModeRecharacterizesAfterShift) {
  ConvergentConfig Cfg;
  Cfg.InitialFreqRaw = 2;
  Cfg.MaxFreqRaw = 9;
  Cfg.EpochSamples = 256;
  Cfg.AdaptiveThresholds = true;
  ConvergentProfiler CP(64, Cfg);

  Xoshiro256 Rng(6);
  ZipfSampler Zipf(64, 1.2);
  for (int I = 0; I != 2000000; ++I)
    CP.visit(static_cast<uint32_t>(Zipf.sample(Rng)));
  unsigned Converged = CP.currentFreq().raw();
  ASSERT_GE(Converged, 6u);

  // Rotate the distribution: a permanent behaviour change.
  for (int I = 0; I != 2000000; ++I)
    CP.visit(static_cast<uint32_t>((Zipf.sample(Rng) + 13) % 64));

  // The rate must have been re-raised at some point after the shift, and
  // the re-characterized profile should rank the new hot method first.
  unsigned MinAfterShift = 15;
  for (const auto &E : CP.history())
    if (E.VisitsSoFar > 2000000)
      MinAfterShift = std::min(MinAfterShift, E.FreqRaw);
  EXPECT_LT(MinAfterShift, Converged);

  const MethodProfile &P = CP.profile();
  for (size_t M = 0; M != 64; ++M) {
    if (M == 13)
      continue;
    EXPECT_GE(P.count(13), P.count(M)) << "m" << M;
  }
}
