# Decoded-execution engine smoke check on bor-bench:
#
#   1. A sampled fig13 run publishes live decode-layer counters: at least
#      one program decoded (interp.decode.programs) with a plausible image
#      (insts >= blocks >= 1).
#   2. Fast-forward actually executes through the block-chained dispatch
#      path: interp.block.chains/insts/blocks are nonzero and every
#      fast-forwarded instruction is accounted to a chain
#      (interp.block.insts >= sample.insts.fast_forward).
#
# Counter identities gate; wall-clock is reported but never gates (CI
# machines vary too much for a timing assertion to be meaningful).
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(COUNTERS ${WORKDIR}/counters_sampled.txt)

string(TIMESTAMP T0 %s)
execute_process(COMMAND ${BENCH} --experiment fig13 --scale 100
                        --sample --sample-period 50000
                        --threads 2 --no-table
                        --counters-out ${COUNTERS}
                RESULT_VARIABLE RC
                OUTPUT_VARIABLE OUT
                ERROR_VARIABLE ERR)
string(TIMESTAMP T1 %s)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bor-bench sampled fig13 failed (${RC}):\n${OUT}\n${ERR}")
endif()
math(EXPR ELAPSED "${T1} - ${T0}")
message(STATUS "sampled fig13 took ~${ELAPSED}s (informational only)")

file(READ ${COUNTERS} TEXT)

# counter(<out-var> <name>): extract one "name   value" line; fails the
# script when the counter is absent from the snapshot.
function(counter out name)
  string(REGEX MATCH "${name} +([0-9]+)" _ "${TEXT}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "counter '${name}' missing from ${COUNTERS}")
  endif()
  set(${out} ${CMAKE_MATCH_1} PARENT_SCOPE)
endfunction()

counter(DEC_PROGRAMS "interp\\.decode\\.programs")
counter(DEC_INSTS "interp\\.decode\\.insts")
counter(DEC_BLOCKS "interp\\.decode\\.blocks")
counter(CHAINS "interp\\.block\\.chains")
counter(CHAIN_INSTS "interp\\.block\\.insts")
counter(CHAIN_BLOCKS "interp\\.block\\.blocks")
counter(FF_INSTS "sample\\.insts\\.fast_forward")

# 1. Decode layer is alive and the image shape is sane.
if(DEC_PROGRAMS LESS 1)
  message(FATAL_ERROR "no programs decoded (interp.decode.programs = 0)")
endif()
if(DEC_BLOCKS LESS 1 OR DEC_INSTS LESS DEC_BLOCKS)
  message(FATAL_ERROR
          "implausible decoded image: ${DEC_INSTS} insts, ${DEC_BLOCKS} blocks")
endif()

# 2. Fast-forward runs through the chained dispatch path.
if(CHAINS LESS 1 OR CHAIN_INSTS LESS 1 OR CHAIN_BLOCKS LESS 1)
  message(FATAL_ERROR
          "chained dispatch idle: chains=${CHAINS} insts=${CHAIN_INSTS} "
          "blocks=${CHAIN_BLOCKS}")
endif()
if(FF_INSTS LESS 1)
  message(FATAL_ERROR "sampled run fast-forwarded no instructions")
endif()
if(CHAIN_INSTS LESS FF_INSTS)
  message(FATAL_ERROR
          "fast-forward bypassed the chained path: interp.block.insts="
          "${CHAIN_INSTS} < sample.insts.fast_forward=${FF_INSTS}")
endif()

message(STATUS "decode perf smoke test passed "
               "(${CHAIN_INSTS} chained insts over ${CHAINS} chains)")
