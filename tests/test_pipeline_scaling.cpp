//===- tests/test_pipeline_scaling.cpp - Resource monotonicity laws -------===//
//
// Property tests that the timing model responds sanely to resources: for a
// fixed program, giving the machine strictly more of any resource (width,
// ROB entries, cache, prediction quality, forwarding speed) must never
// make it slower, and starving a resource must never make it faster.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "uarch/Pipeline.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

/// A mixed workload exercising fetch, memory and branches.
Program mixedProgram() {
  MicrobenchConfig C;
  C.Text.NumChars = 20000;
  C.Instr.Framework = SamplingFramework::CounterBased;
  C.Instr.Interval = 32;
  return buildMicrobench(C).Prog;
}

uint64_t cyclesWith(const Program &P, const PipelineConfig &Cfg) {
  HwCounterDecider D;
  Pipeline Pipe(P, Cfg, &D);
  return Pipe.run(1ULL << 40).Stats.Cycles;
}

} // namespace

TEST(PipelineScaling, WiderMachinesAreNeverSlower) {
  Program P = mixedProgram();
  uint64_t Prev = ~0ULL;
  for (unsigned Width : {1u, 2u, 3u, 4u}) {
    PipelineConfig Cfg;
    Cfg.FetchWidth = Width;
    Cfg.DecodeWidth = Width;
    Cfg.IssueWidth = Width;
    Cfg.CommitWidth = Width;
    uint64_t Cycles = cyclesWith(P, Cfg);
    EXPECT_LE(Cycles, Prev) << "width " << Width;
    Prev = Cycles;
  }
}

TEST(PipelineScaling, BiggerRobIsNeverSlower) {
  Program P = mixedProgram();
  uint64_t Prev = ~0ULL;
  for (unsigned Rob : {8u, 16u, 40u, 80u, 160u}) {
    PipelineConfig Cfg;
    Cfg.RobEntries = Rob;
    uint64_t Cycles = cyclesWith(P, Cfg);
    EXPECT_LE(Cycles, Prev) << "rob " << Rob;
    Prev = Cycles;
  }
}

TEST(PipelineScaling, FasterForwardingIsNeverSlower) {
  Program P = mixedProgram();
  uint64_t Prev = 0;
  for (unsigned Delay : {1u, 3u, 8u}) {
    PipelineConfig Cfg;
    Cfg.StoreForwardDelay = Delay;
    uint64_t Cycles = cyclesWith(P, Cfg);
    EXPECT_GE(Cycles, Prev) << "forward delay " << Delay;
    Prev = Cycles;
  }
}

TEST(PipelineScaling, PerfectPredictionIsNeverSlower) {
  Program P = mixedProgram();
  PipelineConfig Real;
  PipelineConfig Oracle;
  Oracle.PerfectBranchPrediction = true;
  EXPECT_LE(cyclesWith(P, Oracle), cyclesWith(P, Real));
}

TEST(PipelineScaling, LargerMispredictPenaltyIsNeverFaster) {
  Program P = mixedProgram();
  uint64_t Prev = 0;
  for (unsigned Redirect : {1u, 3u, 10u}) {
    PipelineConfig Cfg;
    Cfg.MispredictRedirect = Redirect;
    uint64_t Cycles = cyclesWith(P, Cfg);
    EXPECT_GE(Cycles, Prev) << "redirect " << Redirect;
    Prev = Cycles;
  }
}

TEST(PipelineScaling, ContinuingFetchPastTakenBranchesHelps) {
  // The fetch-stop ablation (DESIGN.md decision 3): an ideal front end
  // that refills across taken branches is never slower, and on this
  // branch-heavy loop measurably faster.
  Program P = mixedProgram();
  PipelineConfig Stops;
  PipelineConfig Continues;
  Continues.FetchStopsAtTakenBranch = false;
  uint64_t WithStops = cyclesWith(P, Stops);
  uint64_t Without = cyclesWith(P, Continues);
  EXPECT_LT(Without, WithStops);
}

TEST(PipelineScaling, SlowerMemoryIsNeverFaster) {
  Program P = mixedProgram();
  uint64_t Prev = 0;
  for (unsigned Mem : {60u, 140u, 300u}) {
    PipelineConfig Cfg;
    Cfg.MemHier.MemCycles = Mem;
    uint64_t Cycles = cyclesWith(P, Cfg);
    EXPECT_GE(Cycles, Prev) << "memory " << Mem;
    Prev = Cycles;
  }
}

TEST(PipelineScaling, TinyIcacheIsNeverFaster) {
  Program P = mixedProgram();
  PipelineConfig Big;   // 32 KB
  PipelineConfig Tiny;
  Tiny.MemHier.L1I = {1024, 2, 64};
  EXPECT_GE(cyclesWith(P, Tiny), cyclesWith(P, Big));
}

TEST(PipelineScaling, ArchitecturalWorkIsResourceIndependent) {
  // Whatever the machine shape, the same instructions commit.
  Program P = mixedProgram();
  PipelineConfig Narrow;
  Narrow.FetchWidth = 1;
  Narrow.DecodeWidth = 1;
  Narrow.IssueWidth = 1;
  Narrow.CommitWidth = 1;
  Narrow.RobEntries = 4;

  HwCounterDecider D1, D2;
  Pipeline Wide(P, PipelineConfig(), &D1);
  Pipeline Thin(P, Narrow, &D2);
  PipelineStats SW = Wide.run(1ULL << 40).Stats;
  PipelineStats ST = Thin.run(1ULL << 40).Stats;
  EXPECT_EQ(SW.Insts, ST.Insts);
  EXPECT_EQ(SW.BrrExecuted, ST.BrrExecuted);
  EXPECT_EQ(SW.CondBranches, ST.CondBranches);
}
