//===- tests/test_instr_cfg.cpp - CFG-path transform equivalence ----------===//
//
// Differential tests between the two sampling-transform implementations:
// the streaming SamplingFrameworkEmitter (instr/Transform.h) and the
// CFG-edit CfgSamplingTransform (instr/CfgTransform.h). Both build the
// same baseline workload; the CFG path lifts it with finishModule(),
// applies the framework as block/edge edits, and relinearizes. Profile
// counts and program results must match exactly — layout may differ (jump
// placement flips between the paths), semantics may not.
//
//===----------------------------------------------------------------------===//

#include "instr/CfgTransform.h"

#include "instr/Sites.h"
#include "instr/Transform.h"
#include "isa/Encoding.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

/// Emitter-path reference: a counted loop visiting \p SitesPerIter
/// instrumented sites per iteration (each increments profile counter 0 and
/// is followed by one instruction of real work on r4).
struct EmitterLoop {
  Program Prog;
  uint64_t CounterAddr;

  EmitterLoop(const InstrumentationConfig &Config, uint64_t Iters,
              unsigned SitesPerIter = 1) {
    ProgramBuilder B;
    ProfileTable Table(B, "counters", 1);
    SamplingFrameworkEmitter Emitter(B, Config, DefaultDataBase);
    CounterAddr = Table.counterAddr(0);

    B.emitLoadConst(RegGlobals, DefaultDataBase);
    B.emitLoadConst(RegProfBase, Table.baseAddr());
    Emitter.emitSetup();
    B.emitLoadConst(2, Iters);
    auto Loop = B.label();
    B.bind(Loop);
    auto Body = [&Table](ProgramBuilder &PB) {
      Table.emitIncrement(PB, 0, RegProfBase, Table.baseAddr(), 14);
    };
    if (Config.Dup == DuplicationMode::FullDuplication) {
      auto Dup = B.label();
      auto Done = B.label();
      Emitter.emitDuplicationCheck(Dup);
      B.emit(Inst::add(4, 4, 2)); // clean copy
      B.emitJmp(Done);
      B.bind(Dup);
      Emitter.emitDupPrologue();
      Emitter.emitUnconditionalSite(Body);
      B.emit(Inst::add(4, 4, 2)); // instrumented copy
      B.bind(Done);
    } else {
      for (unsigned S = 0; S != SitesPerIter; ++S) {
        Emitter.emitSite(Body);
        B.emit(Inst::add(4, 4, 2));
      }
    }
    B.emit(Inst::addi(2, 2, -1));
    B.emitBranch(Opcode::Bne, 2, 0, Loop);
    B.emit(Inst::halt());
    Emitter.flushOutOfLine();
    Prog = B.finish();
  }
};

/// CFG-path twin: the identical baseline, but the framework is applied to
/// the lifted cfg::Module and the program re-emitted from the layout.
struct CfgLoop {
  Program Prog;
  uint64_t CounterAddr;
  std::vector<std::pair<cfg::BlockId, uint32_t>> Checks;

  CfgLoop(const InstrumentationConfig &Config, uint64_t Iters,
          unsigned SitesPerIter = 1) {
    ProgramBuilder B;
    ProfileTable Table(B, "counters", 1);
    CounterAddr = Table.counterAddr(0);

    B.emitLoadConst(RegGlobals, DefaultDataBase);
    B.emitLoadConst(RegProfBase, Table.baseAddr());
    size_t SetupPos = B.here();
    B.emitLoadConst(2, Iters);
    auto Loop = B.label();
    B.bind(Loop);
    std::vector<size_t> SitePositions;
    for (unsigned S = 0; S != SitesPerIter; ++S) {
      SitePositions.push_back(B.here());
      B.emit(Inst::add(4, 4, 2));
    }
    size_t RegionEnd = B.here(); // full-dup region = the loop body adds
    B.emit(Inst::addi(2, 2, -1));
    B.emitBranch(Opcode::Bne, 2, 0, Loop);
    B.emit(Inst::halt());

    cfg::Module M = B.finishModule();
    CfgSamplingTransform T(M, Config, DefaultDataBase);

    std::vector<Inst> Setup = T.setupInsts();
    if (!Setup.empty()) {
      cfg::BlockId Blk = M.blockForIndex(SetupPos);
      M.insertInsts(Blk,
                    static_cast<uint32_t>(SetupPos - M.block(Blk).OrigIndex),
                    Setup);
    }

    std::vector<Inst> Body;
    Table.appendIncrement(Body, 0, RegProfBase, Table.baseAddr(), 14);

    if (Config.Dup == DuplicationMode::FullDuplication) {
      // Region = the loop body (the add), split out of the loop block so
      // the decrement/back-branch stays shared outside the copies.
      cfg::BlockId Head = M.blockForIndex(SitePositions.front());
      uint32_t SplitAt =
          static_cast<uint32_t>(RegionEnd - M.block(Head).OrigIndex);
      M.splitBlock(Head, SplitAt);
      T.duplicateRegion({Head}, {{Head, 0, Body}});
    } else {
      std::vector<CfgSite> Sites;
      for (size_t Pos : SitePositions) {
        cfg::BlockId Blk = M.blockForIndex(Pos);
        Sites.push_back(
            {Blk, static_cast<uint32_t>(Pos - M.block(Blk).OrigIndex),
             Body});
      }
      T.instrumentSites(std::move(Sites));
    }
    Checks = T.checkBranches();
    Prog = cfg::emitProgram(M);
  }
};

/// Runs either program and returns (profile counter, r4 work accumulator).
template <typename L>
std::pair<uint64_t, uint64_t> runLoop(L &Loop, BrrDecider &D,
                                      uint64_t Iters) {
  Machine M;
  Interpreter I(Loop.Prog, M, D);
  I.run(200 * Iters + 1000);
  return {M.memory().readU64(Loop.CounterAddr), M.readReg(4)};
}

std::vector<InstrumentationConfig> allConfigs() {
  std::vector<InstrumentationConfig> Configs;
  Configs.push_back({}); // baseline
  {
    InstrumentationConfig C;
    C.Framework = SamplingFramework::Full;
    Configs.push_back(C);
  }
  for (SamplingFramework F :
       {SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
    InstrumentationConfig C;
    C.Framework = F;
    C.Interval = 64;
    Configs.push_back(C);
    C.Dup = DuplicationMode::FullDuplication;
    Configs.push_back(C);
    C.Dup = DuplicationMode::NoDuplication;
    C.IncludeBody = false;
    Configs.push_back(C);
  }
  {
    InstrumentationConfig C;
    C.Framework = SamplingFramework::CounterBased;
    C.CounterPlacement = CounterHome::Register;
    C.Interval = 64;
    Configs.push_back(C);
    C.Dup = DuplicationMode::FullDuplication;
    Configs.push_back(C);
  }
  return Configs;
}

} // namespace

TEST(CfgTransform, MatchesEmitterPathAcrossAllConfigs) {
  const uint64_t Iters = 2048;
  for (const InstrumentationConfig &C : allConfigs()) {
    EmitterLoop E(C, Iters);
    CfgLoop G(C, Iters);
    // Both paths execute the same dynamic brr sequence, so identical
    // deciders give identical sampling decisions.
    BrrUnitDecider D1, D2;
    auto [EmitCount, EmitWork] = runLoop(E, D1, Iters);
    auto [CfgCount, CfgWork] = runLoop(G, D2, Iters);
    EXPECT_EQ(CfgCount, EmitCount) << describeConfig(C);
    EXPECT_EQ(CfgWork, EmitWork) << describeConfig(C);
  }
}

TEST(CfgTransform, MultipleSitesInOneBlockMatchEmitter) {
  // Exercises the descending-offset split discipline: three sites land in
  // the same source basic block.
  const uint64_t Iters = 1024;
  for (SamplingFramework F :
       {SamplingFramework::Full, SamplingFramework::CounterBased,
        SamplingFramework::BrrBased}) {
    InstrumentationConfig C;
    C.Framework = F;
    C.Interval = 16;
    EmitterLoop E(C, Iters, /*SitesPerIter=*/3);
    CfgLoop G(C, Iters, /*SitesPerIter=*/3);
    BrrUnitDecider D1, D2;
    auto [EmitCount, EmitWork] = runLoop(E, D1, Iters);
    auto [CfgCount, CfgWork] = runLoop(G, D2, Iters);
    EXPECT_EQ(CfgCount, EmitCount) << describeConfig(C);
    EXPECT_EQ(CfgWork, EmitWork) << describeConfig(C);
  }
}

TEST(CfgTransform, CounterScheduleIsExact) {
  for (uint64_t Interval : {4ull, 64ull, 256ull}) {
    InstrumentationConfig C;
    C.Framework = SamplingFramework::CounterBased;
    C.Interval = Interval;
    const uint64_t Iters = Interval * 10;
    CfgLoop G(C, Iters);
    NeverTakenDecider D;
    EXPECT_EQ(runLoop(G, D, Iters).first, 10u) << "interval " << Interval;
  }
}

TEST(CfgTransform, CheckSymbolsNameTheCheckInstructions) {
  const uint64_t Iters = 16;
  for (SamplingFramework F :
       {SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
    InstrumentationConfig C;
    C.Framework = F;
    C.Interval = 16;
    CfgLoop G(C, Iters);
    ASSERT_EQ(G.Checks.size(), 1u);
    ASSERT_TRUE(G.Prog.hasSymbol("instr.check.0"));
    uint64_t Pc = G.Prog.symbol("instr.check.0");
    const Inst &I = G.Prog.at(G.Prog.indexForPc(Pc));
    if (F == SamplingFramework::CounterBased)
      EXPECT_EQ(I.Op, Opcode::Beq);
    else
      EXPECT_EQ(I.Op, Opcode::Brr);
  }
}

TEST(CfgTransform, FrameworkOnlyCollectsNoSamples) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::CounterBased;
  C.Interval = 8;
  C.IncludeBody = false;
  CfgLoop G(C, 800);
  NeverTakenDecider D;
  EXPECT_EQ(runLoop(G, D, 800).first, 0u);
}

TEST(CfgTransform, RoundTripSurvivesInstrumentation) {
  // The instrumented module's emitted program must itself round-trip
  // through build/emit byte-identically: the transform produces a
  // well-formed, already-linear CFG.
  InstrumentationConfig C;
  C.Framework = SamplingFramework::BrrBased;
  C.Interval = 32;
  CfgLoop G(C, 64);
  cfg::Module M = cfg::buildModule(G.Prog);
  Program P2 = cfg::emitProgram(M);
  ASSERT_EQ(P2.numInsts(), G.Prog.numInsts());
  for (size_t I = 0; I != P2.numInsts(); ++I)
    EXPECT_EQ(encode(P2.at(I)), encode(G.Prog.at(I))) << "index " << I;
}
