//===- tests/test_rng.cpp - Workload-synthesis RNG tests ------------------===//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace bor;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 A(1), B(2);
  EXPECT_NE(A.next(), B.next());
}

TEST(SplitMix64, ZeroSeedProducesNonzeroStream) {
  SplitMix64 G(0);
  bool SawNonzero = false;
  for (int I = 0; I != 10; ++I)
    SawNonzero |= G.next() != 0;
  EXPECT_TRUE(SawNonzero);
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 A(7), B(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 G(9);
  for (int I = 0; I != 10000; ++I) {
    double D = G.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanIsNearHalf) {
  Xoshiro256 G(11);
  double Sum = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Sum += G.nextDouble();
  EXPECT_NEAR(Sum / N, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 G(13);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int I = 0; I != 1000; ++I)
      EXPECT_LT(G.nextBelow(Bound), Bound);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 G(17);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 1000; ++I)
    Seen.insert(G.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(Xoshiro256, NextBoolEdgeProbabilities) {
  Xoshiro256 G(19);
  for (int I = 0; I != 100; ++I) {
    EXPECT_FALSE(G.nextBool(0.0));
    EXPECT_TRUE(G.nextBool(1.0));
    EXPECT_FALSE(G.nextBool(-1.0));
    EXPECT_TRUE(G.nextBool(2.0));
  }
}

TEST(Xoshiro256, NextBoolRateMatches) {
  Xoshiro256 G(23);
  int Hits = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Hits += G.nextBool(0.25);
  EXPECT_NEAR(static_cast<double>(Hits) / N, 0.25, 0.01);
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  ZipfSampler Z(100, 1.0);
  double Sum = 0;
  for (size_t K = 0; K != Z.size(); ++K)
    Sum += Z.probability(K);
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(ZipfSampler, RankZeroIsHottest) {
  ZipfSampler Z(50, 1.2);
  for (size_t K = 1; K != Z.size(); ++K)
    EXPECT_GT(Z.probability(0), Z.probability(K));
}

TEST(ZipfSampler, ProbabilityDecreasesMonotonically) {
  ZipfSampler Z(64, 0.8);
  for (size_t K = 1; K != Z.size(); ++K)
    EXPECT_GE(Z.probability(K - 1), Z.probability(K));
}

TEST(ZipfSampler, EmpiricalMatchesAnalytic) {
  ZipfSampler Z(20, 1.0);
  Xoshiro256 G(31);
  std::vector<uint64_t> Counts(20, 0);
  const int N = 200000;
  for (int I = 0; I != N; ++I)
    ++Counts[Z.sample(G)];
  for (size_t K = 0; K != 20; ++K) {
    double Emp = static_cast<double>(Counts[K]) / N;
    EXPECT_NEAR(Emp, Z.probability(K), 0.01) << "rank " << K;
  }
}

TEST(ZipfSampler, SkewZeroIsUniform) {
  ZipfSampler Z(10, 0.0);
  for (size_t K = 0; K != 10; ++K)
    EXPECT_NEAR(Z.probability(K), 0.1, 1e-9);
}

TEST(ZipfSampler, SingleRankAlwaysSampled) {
  ZipfSampler Z(1, 1.0);
  Xoshiro256 G(37);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(Z.sample(G), 0u);
}
