//===- tests/test_freqcode.cpp - 4-bit frequency encoding tests -----------===//

#include "core/FreqCode.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(FreqCode, ProbabilityFormula) {
  // Section 3.2: probability = (1/2)^(freq+1); 50% down to ~0.0015%.
  EXPECT_DOUBLE_EQ(FreqCode(0).probability(), 0.5);
  EXPECT_DOUBLE_EQ(FreqCode(1).probability(), 0.25);
  EXPECT_DOUBLE_EQ(FreqCode(9).probability(), 1.0 / 1024.0);
  EXPECT_DOUBLE_EQ(FreqCode(15).probability(), 1.0 / 65536.0);
  EXPECT_NEAR(FreqCode(15).probability(), 0.000015, 1e-6);
}

TEST(FreqCode, ExpectedInterval) {
  EXPECT_EQ(FreqCode(0).expectedInterval(), 2u);
  EXPECT_EQ(FreqCode(9).expectedInterval(), 1024u);
  EXPECT_EQ(FreqCode(12).expectedInterval(), 8192u);
  EXPECT_EQ(FreqCode(15).expectedInterval(), 65536u);
}

TEST(FreqCode, NumRandomBits) {
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw)
    EXPECT_EQ(FreqCode(Raw).numRandomBits(), Raw + 1);
}

TEST(FreqCode, ForIntervalRoundTripsAllEncodings) {
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw) {
    FreqCode F(Raw);
    EXPECT_EQ(FreqCode::forInterval(F.expectedInterval()), F);
  }
}

TEST(FreqCode, NearestPicksClosestInLogSpace) {
  EXPECT_EQ(FreqCode::nearest(0.5).raw(), 0u);
  EXPECT_EQ(FreqCode::nearest(0.25).raw(), 1u);
  EXPECT_EQ(FreqCode::nearest(1.0 / 1024).raw(), 9u);
  // 0.3 is closer to 2^-2 than to 2^-1 in log space.
  EXPECT_EQ(FreqCode::nearest(0.3).raw(), 1u);
  EXPECT_EQ(FreqCode::nearest(0.35).raw(), 1u);
}

TEST(FreqCode, NearestClampsOutOfRange) {
  EXPECT_EQ(FreqCode::nearest(0.9).raw(), 0u);
  EXPECT_EQ(FreqCode::nearest(1.0).raw(), 0u);
  EXPECT_EQ(FreqCode::nearest(1e-9).raw(), 15u);
}

TEST(FreqCode, Equality) {
  EXPECT_EQ(FreqCode(3), FreqCode(3));
  EXPECT_NE(FreqCode(3), FreqCode(4));
}

TEST(FreqCodeDeath, RawFieldIsFourBits) {
  EXPECT_DEATH(FreqCode(16), "4 bits");
}

TEST(FreqCodeDeath, ForIntervalRejectsNonPowers) {
  EXPECT_DEATH(FreqCode::forInterval(1000), "powers of two");
  EXPECT_DEATH(FreqCode::forInterval(1), "outside brr range");
}
