//===- tests/test_btb.cpp - Branch target buffer tests --------------------===//

#include "uarch/Btb.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(Btb, MissThenHitAfterInsert) {
  Btb B;
  EXPECT_FALSE(B.lookup(0x40).has_value());
  B.insert(0x40, 0x100);
  auto T = B.lookup(0x40);
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ(*T, 0x100u);
}

TEST(Btb, InsertUpdatesExistingEntry) {
  Btb B;
  B.insert(0x40, 0x100);
  B.insert(0x40, 0x200);
  EXPECT_EQ(*B.lookup(0x40), 0x200u);
}

TEST(Btb, TagsDisambiguateAliasedPcs) {
  BtbConfig Cfg{16, 2}; // 8 sets
  Btb B(Cfg);
  uint64_t PcA = 0x0;
  uint64_t PcB = PcA + 8 * 4 * 1; // same set (sets indexed by pc>>2)
  B.insert(PcA, 0x111);
  B.insert(PcB, 0x222);
  EXPECT_EQ(*B.lookup(PcA), 0x111u);
  EXPECT_EQ(*B.lookup(PcB), 0x222u);
}

TEST(Btb, LruEvictionWithinSet) {
  BtbConfig Cfg{16, 2}; // 8 sets, 2 ways
  Btb B(Cfg);
  uint64_t A = 0x0, C = 8 * 4, X = 16 * 4; // all map to set 0
  B.insert(A, 1);
  B.insert(C, 2);
  B.lookup(A); // A most recently used
  B.insert(X, 3); // evicts C
  EXPECT_TRUE(B.lookup(A).has_value());
  EXPECT_FALSE(B.lookup(C).has_value());
  EXPECT_TRUE(B.lookup(X).has_value());
}

TEST(Btb, StatsCountHitsAndInserts) {
  Btb B;
  B.lookup(0x40);
  B.insert(0x40, 1);
  B.lookup(0x40);
  EXPECT_EQ(B.stats().Lookups, 2u);
  EXPECT_EQ(B.stats().Hits, 1u);
  EXPECT_EQ(B.stats().Inserts, 1u);
}

TEST(Btb, PaperDefaultIs1024Entries) {
  Btb B;
  EXPECT_EQ(B.config().Entries, 1024u);
}

TEST(Btb, CapacityThrashing) {
  // More hot branches than entries: lookups keep missing.
  BtbConfig Cfg{16, 2};
  Btb B(Cfg);
  for (int Round = 0; Round != 3; ++Round)
    for (uint64_t Pc = 0; Pc != 64 * 4; Pc += 4)
      B.insert(Pc, Pc + 100);
  unsigned Present = 0;
  for (uint64_t Pc = 0; Pc != 64 * 4; Pc += 4)
    Present += B.lookup(Pc).has_value();
  EXPECT_LE(Present, 16u);
}
