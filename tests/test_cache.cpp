//===- tests/test_cache.cpp - Cache model tests ---------------------------===//

#include "uarch/Cache.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(Cache, ColdMissThenHit) {
  Cache C({1024, 2, 64});
  EXPECT_FALSE(C.access(0x100));
  EXPECT_TRUE(C.access(0x100));
  EXPECT_TRUE(C.access(0x13f)); // same 64B line
  EXPECT_FALSE(C.access(0x140)); // next line
  EXPECT_EQ(C.stats().Accesses, 4u);
  EXPECT_EQ(C.stats().Misses, 2u);
}

TEST(Cache, GeometryDerivedFromConfig) {
  Cache C({32 * 1024, 4, 64});
  EXPECT_EQ(C.numSets(), 128u);
}

TEST(Cache, AssociativityHoldsConflictingLines) {
  // 2-way, 8 sets of 64B lines: addresses 64*8 apart map to the same set.
  Cache C({1024, 2, 64});
  uint64_t A = 0, B = 8 * 64;
  C.access(A);
  C.access(B);
  EXPECT_TRUE(C.access(A));
  EXPECT_TRUE(C.access(B));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache C({1024, 2, 64});
  uint64_t A = 0, B = 8 * 64, X = 16 * 64; // all same set
  C.access(A);
  C.access(B);
  C.access(A);    // A most recent
  C.access(X);    // evicts B
  EXPECT_TRUE(C.contains(A));
  EXPECT_FALSE(C.contains(B));
  EXPECT_TRUE(C.contains(X));
}

TEST(Cache, ContainsDoesNotDisturbState) {
  Cache C({1024, 2, 64});
  C.access(0);
  uint64_t Accesses = C.stats().Accesses;
  EXPECT_TRUE(C.contains(0));
  EXPECT_FALSE(C.contains(4096));
  EXPECT_EQ(C.stats().Accesses, Accesses);
}

TEST(Cache, DirectMappedConflicts) {
  Cache C({512, 1, 64}); // 8 sets, direct mapped
  C.access(0);
  C.access(8 * 64); // same set -> evicts
  EXPECT_FALSE(C.contains(0));
}

TEST(Cache, FullyAssociativeNeverConflictsUnderCapacity) {
  Cache C({512, 8, 64}); // one set of 8 ways
  for (unsigned I = 0; I != 8; ++I)
    C.access(I * 64);
  for (unsigned I = 0; I != 8; ++I)
    EXPECT_TRUE(C.contains(I * 64));
}

TEST(Cache, HitRateStat) {
  Cache C({1024, 2, 64});
  C.access(0);
  C.access(0);
  C.access(0);
  C.access(0);
  EXPECT_DOUBLE_EQ(C.stats().hitRate(), 0.75);
  C.resetStats();
  EXPECT_EQ(C.stats().Accesses, 0u);
  EXPECT_DOUBLE_EQ(C.stats().hitRate(), 1.0);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  Cache C({1024, 2, 64});
  // Stream over 4 KiB repeatedly: every access misses after warmup.
  for (int Round = 0; Round != 3; ++Round)
    for (uint64_t Addr = 0; Addr < 4096; Addr += 64)
      C.access(Addr);
  EXPECT_GT(C.stats().Misses, 64u);
}

TEST(PaperConfig, Section51CacheShapes) {
  // 32KB 4-way 64B L1s; 1MB 8-way L2.
  Cache L1({32 * 1024, 4, 64});
  Cache L2({1024 * 1024, 8, 64});
  EXPECT_EQ(L1.numSets() * 4 * 64, 32u * 1024);
  EXPECT_EQ(L2.numSets() * 8 * 64, 1024u * 1024);
}
