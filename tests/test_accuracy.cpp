//===- tests/test_accuracy.cpp - Overlap-percentage metric tests ----------===//

#include "profile/Accuracy.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

MethodProfile fromCounts(std::vector<uint64_t> V) {
  return MethodProfile::fromCounts(V);
}

} // namespace

TEST(MethodProfile, RecordAndFractions) {
  MethodProfile P(3);
  P.record(0);
  P.record(0);
  P.record(2);
  P.record(1);
  EXPECT_EQ(P.total(), 4u);
  EXPECT_EQ(P.count(0), 2u);
  EXPECT_DOUBLE_EQ(P.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(P.fraction(1), 0.25);
}

TEST(MethodProfile, EmptyFractionsAreZero) {
  MethodProfile P(2);
  EXPECT_DOUBLE_EQ(P.fraction(0), 0.0);
}

TEST(MethodProfile, FromCountsRoundTrip) {
  MethodProfile P = fromCounts({5, 0, 15});
  EXPECT_EQ(P.total(), 20u);
  EXPECT_DOUBLE_EQ(P.fraction(2), 0.75);
  EXPECT_EQ(P.numMethods(), 3u);
}

TEST(Accuracy, IdenticalProfilesGive100) {
  MethodProfile Full = fromCounts({10, 20, 30, 40});
  EXPECT_DOUBLE_EQ(overlapAccuracy(Full, Full), 100.0);
}

TEST(Accuracy, ScaledProfilesGive100) {
  // Sampling that preserves proportions exactly is perfect, regardless of
  // sample count.
  MethodProfile Full = fromCounts({100, 200, 300});
  MethodProfile Sampled = fromCounts({1, 2, 3});
  EXPECT_DOUBLE_EQ(overlapAccuracy(Full, Sampled), 100.0);
}

TEST(Accuracy, DisjointProfilesGiveZero) {
  MethodProfile Full = fromCounts({10, 0, 0});
  MethodProfile Sampled = fromCounts({0, 5, 5});
  EXPECT_DOUBLE_EQ(overlapAccuracy(Full, Sampled), 0.0);
}

TEST(Accuracy, PaperWorkedExample) {
  // Section 4.1: a method with 50% of the true profile reported as 60% by
  // sampling contributes 50 points; the over-count necessarily
  // under-counts the rest.
  MethodProfile Full = fromCounts({50, 50});
  MethodProfile Sampled = fromCounts({60, 40});
  EXPECT_DOUBLE_EQ(overlapAccuracy(Full, Sampled), 90.0);
}

TEST(Accuracy, EmptySampledProfileGivesZero) {
  MethodProfile Full = fromCounts({1, 2});
  MethodProfile Sampled(2);
  EXPECT_DOUBLE_EQ(overlapAccuracy(Full, Sampled), 0.0);
}

TEST(Accuracy, MetricIsSymmetric) {
  MethodProfile A = fromCounts({10, 30, 60});
  MethodProfile B = fromCounts({20, 20, 60});
  EXPECT_DOUBLE_EQ(overlapAccuracy(A, B), overlapAccuracy(B, A));
}

TEST(Accuracy, BoundedBetween0And100) {
  MethodProfile A = fromCounts({1, 5, 3, 9, 2});
  MethodProfile B = fromCounts({9, 1, 0, 4, 4});
  double Acc = overlapAccuracy(A, B);
  EXPECT_GE(Acc, 0.0);
  EXPECT_LE(Acc, 100.0);
}

TEST(Accuracy, MissingOneMethodCostsItsWeight) {
  // A sampler that never sees a 10%-weight method loses exactly up to 10
  // points (the mass is redistributed across over-counted methods).
  MethodProfile Full = fromCounts({90, 10});
  MethodProfile Sampled = fromCounts({100, 0});
  EXPECT_DOUBLE_EQ(overlapAccuracy(Full, Sampled), 90.0);
}

TEST(AccuracyDeath, MismatchedUniversesAssert) {
  MethodProfile A = fromCounts({1, 2});
  MethodProfile B = fromCounts({1, 2, 3});
  EXPECT_DEATH((void)overlapAccuracy(A, B), "universes");
}
