//===- tests/test_svc.cpp - Sweep-service protocol and scheduler tests ---===//
//
// Deterministic unit coverage for the distributed sweep service: the
// length-prefixed frame buffer, the JSON frame/record/options codecs (the
// byte-identical-results guarantee rides on these being lossless), the
// --fault-spec grammar, and the CellScheduler state machine. The scheduler
// never reads a clock — every test drives it with synthetic timestamps, so
// heartbeat expiry, wall-clock timeouts, backoff and budget exhaustion all
// run in microseconds with no sleeps.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"
#include "svc/FaultSpec.h"
#include "svc/Protocol.h"
#include "svc/Scheduler.h"

#include "gtest/gtest.h"

#include <cmath>
#include <limits>
#include <string>

using namespace bor;
using namespace bor::svc;

namespace {

//===----------------------------------------------------------------------===//
// FrameBuffer wire framing
//===----------------------------------------------------------------------===//

TEST(FrameBuffer, ReassemblesAcrossArbitrarySplits) {
  std::string Wire = net::encodeFrame("{\"t\":\"ready\"}") +
                     net::encodeFrame("{\"t\":\"heartbeat\"}");
  // Feed one byte at a time — worst-case TCP fragmentation.
  net::FrameBuffer B;
  std::vector<std::string> Got;
  for (char C : Wire) {
    B.append(&C, 1);
    std::string Payload;
    while (B.next(Payload))
      Got.push_back(Payload);
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0], "{\"t\":\"ready\"}");
  EXPECT_EQ(Got[1], "{\"t\":\"heartbeat\"}");
  EXPECT_FALSE(B.bad());
  EXPECT_EQ(B.buffered(), 0u);
}

TEST(FrameBuffer, MalformedLengthPrefixPoisonsTheStream) {
  net::FrameBuffer B;
  B.append("notanumber\n", 11);
  std::string Payload;
  EXPECT_FALSE(B.next(Payload));
  EXPECT_TRUE(B.bad());
  // A poisoned buffer stays poisoned even if valid bytes follow.
  std::string Wire = net::encodeFrame("{}");
  B.append(Wire.data(), Wire.size());
  EXPECT_FALSE(B.next(Payload));
}

TEST(FrameBuffer, OversizedFramePoisonsTheStream) {
  net::FrameBuffer B;
  std::string Huge =
      std::to_string(net::FrameBuffer::MaxFrameBytes + 1) + "\n";
  B.append(Huge.data(), Huge.size());
  std::string Payload;
  EXPECT_FALSE(B.next(Payload));
  EXPECT_TRUE(B.bad());
}

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

TEST(Protocol, HelloRoundTrips) {
  Frame F;
  std::string Err;
  ASSERT_TRUE(decodeFrame(encodeHello("w7", 12345), F, Err)) << Err;
  EXPECT_EQ(F.Type, FrameType::Hello);
  EXPECT_EQ(F.Worker, "w7");
  EXPECT_EQ(F.Pid, 12345u);
  EXPECT_EQ(F.Proto, ProtocolVersion);
}

TEST(Protocol, LeaseRoundTripsWithOptionsVerbatim) {
  exp::ExperimentOptions Opt;
  Opt.Scale = 3;
  std::string OptJson = encodeOptions(Opt);

  Frame F;
  std::string Err;
  ASSERT_TRUE(decodeFrame(
      encodeLease(42, "fig13", 7, 2, 0.5, 30.0, OptJson), F, Err))
      << Err;
  EXPECT_EQ(F.Type, FrameType::Lease);
  EXPECT_EQ(F.Job, 42u);
  EXPECT_EQ(F.Experiment, "fig13");
  EXPECT_EQ(F.Cell, 7u);
  EXPECT_EQ(F.Attempt, 2u);
  EXPECT_DOUBLE_EQ(F.HeartbeatS, 0.5);
  EXPECT_DOUBLE_EQ(F.TimeoutS, 30.0);
  // The worker keys its spec cache on the re-encoded options text, so the
  // lease must carry them round-trip-stable.
  exp::ExperimentOptions Back;
  ASSERT_TRUE(decodeOptions(F.OptionsJson, Back, Err)) << Err;
  EXPECT_EQ(encodeOptions(Back), OptJson);
}

TEST(Protocol, ResultErrorAndShutdownRoundTrip) {
  Frame F;
  std::string Err;
  ASSERT_TRUE(
      decodeFrame(encodeResultError(9, "unknown experiment"), F, Err));
  EXPECT_EQ(F.Type, FrameType::Result);
  EXPECT_FALSE(F.Ok);
  EXPECT_EQ(F.Job, 9u);
  EXPECT_EQ(F.Error, "unknown experiment");

  ASSERT_TRUE(decodeFrame(encodeShutdown("drained"), F, Err));
  EXPECT_EQ(F.Type, FrameType::Shutdown);
  EXPECT_EQ(F.Reason, "drained");
}

TEST(Protocol, MalformedFramesAreRejectedWithDiagnostics) {
  Frame F;
  std::string Err;
  EXPECT_FALSE(decodeFrame("not json at all", F, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(decodeFrame("{\"t\":\"no-such-type\"}", F, Err));
  EXPECT_FALSE(decodeFrame("{\"t\":\"heartbeat\"}", F, Err)); // missing job
}

//===----------------------------------------------------------------------===//
// RunRecord codec — must be lossless for byte-identical output
//===----------------------------------------------------------------------===//

TEST(Protocol, RunRecordU64SurvivesAboveDoublePrecision) {
  // 2^63 + 1 is not representable as a double; a codec that routes u64s
  // through the JSON number type would corrupt it.
  const uint64_t Big = 0x8000000000000001ULL;
  exp::RunRecord R;
  R.param("stream", "2").metric("checksum", Big);

  exp::RunRecord Out;
  std::string Err;
  ASSERT_TRUE(decodeRunRecord(encodeRunRecord(R), Out, Err)) << Err;
  ASSERT_EQ(Out.Metrics.size(), 1u);
  EXPECT_EQ(Out.Metrics[0].second.K, exp::Metric::Kind::UInt);
  EXPECT_EQ(Out.Metrics[0].second.U, Big);
  ASSERT_EQ(Out.Params.size(), 1u);
  EXPECT_EQ(Out.Params[0].first, "stream");
  EXPECT_EQ(Out.Params[0].second, "2");
}

TEST(Protocol, RunRecordRealKeepsPrecisionAndNaN) {
  exp::RunRecord R;
  R.metric("ipc", 1.2345678901234567, 3);
  R.metric("undefined", std::numeric_limits<double>::quiet_NaN(), 2);
  R.metric("note", std::string("text \"quoted\" value"));

  exp::RunRecord Out;
  std::string Err;
  ASSERT_TRUE(decodeRunRecord(encodeRunRecord(R), Out, Err)) << Err;
  ASSERT_EQ(Out.Metrics.size(), 3u);
  EXPECT_DOUBLE_EQ(Out.Metrics[0].second.D, 1.2345678901234567);
  EXPECT_EQ(Out.Metrics[0].second.TablePrecision, 3);
  EXPECT_TRUE(std::isnan(Out.Metrics[1].second.D));
  EXPECT_EQ(Out.Metrics[2].second.K, exp::Metric::Kind::Text);
  EXPECT_EQ(Out.Metrics[2].second.S, "text \"quoted\" value");

  // The decisive property: re-encoding the decoded record is stable.
  EXPECT_EQ(encodeRunRecord(Out), encodeRunRecord(R));
}

TEST(Protocol, ResultOkCarriesTheRecord) {
  exp::RunRecord R;
  R.param("length", "1000").metric("checksum", uint64_t(0xdeadbeef));
  Frame F;
  std::string Err;
  ASSERT_TRUE(decodeFrame(encodeResultOk(5, R), F, Err)) << Err;
  EXPECT_EQ(F.Type, FrameType::Result);
  EXPECT_TRUE(F.Ok);
  EXPECT_EQ(F.Job, 5u);
  EXPECT_EQ(encodeRunRecord(F.Record), encodeRunRecord(R));
}

TEST(Protocol, OptionsCodecCarriesScaleAndSamplingPlan) {
  exp::ExperimentOptions Opt;
  Opt.Scale = 7;
  Opt.Sample = true;
  Opt.Plan.PeriodInsts = 123456789012345ULL;
  Opt.Plan.WarmupInsts = 11;
  Opt.Plan.MeasureInsts = 22;
  Opt.Plan.DetailedWarmupInsts = 33;

  exp::ExperimentOptions Out;
  std::string Err;
  ASSERT_TRUE(decodeOptions(encodeOptions(Opt), Out, Err)) << Err;
  EXPECT_EQ(Out.Scale, 7u);
  EXPECT_TRUE(Out.Sample);
  EXPECT_EQ(Out.Plan.PeriodInsts, 123456789012345ULL);
  EXPECT_EQ(Out.Plan.WarmupInsts, 11u);
  EXPECT_EQ(Out.Plan.MeasureInsts, 22u);
  EXPECT_EQ(Out.Plan.DetailedWarmupInsts, 33u);
}

//===----------------------------------------------------------------------===//
// FaultSpec grammar
//===----------------------------------------------------------------------===//

TEST(FaultSpec, ParsesTargetsAndFaults) {
  FaultSpec S;
  std::string Err;
  ASSERT_TRUE(FaultSpec::parse(
      "w0:crash-at-cell=2;w1:stall-heartbeat=3,all:drop-conn-after=5", S,
      Err))
      << Err;
  ASSERT_EQ(S.Clauses.size(), 3u);
  EXPECT_EQ(S.Clauses[0].WorkerId, 0);
  EXPECT_EQ(S.Clauses[0].Kind, FaultKind::CrashAtCell);
  EXPECT_EQ(S.Clauses[0].N, 2u);
  EXPECT_EQ(S.Clauses[1].WorkerId, 1);
  EXPECT_EQ(S.Clauses[1].Kind, FaultKind::StallHeartbeat);
  EXPECT_EQ(S.Clauses[2].WorkerId, -1);
  EXPECT_EQ(S.Clauses[2].Kind, FaultKind::DropConnAfter);
  EXPECT_EQ(S.Clauses[2].N, 5u);
}

TEST(FaultSpec, EmptySpecIsFaultFree) {
  FaultSpec S;
  std::string Err;
  ASSERT_TRUE(FaultSpec::parse("", S, Err));
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(planForWorker(S, 0).any());
}

TEST(FaultSpec, RejectsMalformedClauses) {
  FaultSpec S;
  std::string Err;
  EXPECT_FALSE(FaultSpec::parse("crash-at-cell", S, Err)); // no =N
  EXPECT_FALSE(FaultSpec::parse("explode=3", S, Err));     // unknown fault
  EXPECT_FALSE(FaultSpec::parse("w:crash-at-cell=1", S, Err)); // bad target
  EXPECT_FALSE(FaultSpec::parse("crash-at-cell=0", S, Err));   // 1-based
  EXPECT_FALSE(FaultSpec::parse("crash-at-cell=x", S, Err));
}

TEST(FaultSpec, PlanResolutionTargetsAndLastWins) {
  FaultSpec S;
  std::string Err;
  ASSERT_TRUE(FaultSpec::parse(
      "all:crash-at-cell=9;w1:crash-at-cell=2;w2:stall-heartbeat=4", S,
      Err))
      << Err;

  // w1: the later targeted clause overrides the earlier 'all'.
  FaultPlan P1 = planForWorker(S, 1);
  EXPECT_EQ(P1.CrashAtCell, 2u);
  EXPECT_EQ(P1.StallHeartbeat, 0u);

  // w2: inherits the 'all' crash plus its own stall.
  FaultPlan P2 = planForWorker(S, 2);
  EXPECT_EQ(P2.CrashAtCell, 9u);
  EXPECT_EQ(P2.StallHeartbeat, 4u);

  // w5: only the 'all' clause applies.
  FaultPlan P5 = planForWorker(S, 5);
  EXPECT_EQ(P5.CrashAtCell, 9u);
  EXPECT_FALSE(P5.StallHeartbeat || P5.DropConnAfter);
}

TEST(FaultSpec, RenderRoundTripsCanonically) {
  FaultSpec S;
  std::string Err;
  ASSERT_TRUE(FaultSpec::parse("w0:crash-at-cell=2,all:drop-conn-after=3",
                               S, Err));
  FaultSpec Again;
  ASSERT_TRUE(FaultSpec::parse(S.render(), Again, Err)) << Err;
  EXPECT_EQ(Again.render(), S.render());
  ASSERT_EQ(Again.Clauses.size(), 2u);
  EXPECT_EQ(Again.Clauses[0].WorkerId, 0);
  EXPECT_EQ(Again.Clauses[1].WorkerId, -1);
}

//===----------------------------------------------------------------------===//
// CellScheduler — synthetic-clock state machine
//===----------------------------------------------------------------------===//

SchedulerConfig testConfig() {
  SchedulerConfig C;
  C.HeartbeatS = 1.0;
  C.MissedHeartbeats = 3; // heartbeat deadline = +3s
  C.CellTimeoutS = 0;
  C.Backoff.InitialS = 0.5;
  C.Backoff.Multiplier = 2.0;
  C.Backoff.CapS = 4.0;
  C.Backoff.Budget = 3;
  return C;
}

TEST(CellScheduler, LeasesCellsInOrderAndCompletes) {
  CellScheduler S(3, testConfig());
  auto G0 = S.assign(/*Worker=*/1, /*Now=*/0.0);
  auto G1 = S.assign(1, 0.0);
  auto G2 = S.assign(2, 0.0);
  ASSERT_TRUE(G0 && G1 && G2);
  EXPECT_EQ(G0->Cell, 0u);
  EXPECT_EQ(G1->Cell, 1u);
  EXPECT_EQ(G2->Cell, 2u);
  EXPECT_EQ(G0->Attempt, 1u);
  EXPECT_FALSE(S.assign(1, 0.0)); // nothing left to lease
  EXPECT_EQ(S.leasesInFlight(), 3u);

  EXPECT_EQ(S.complete(G0->Job), CellScheduler::ResultDisposition::Accepted);
  EXPECT_EQ(S.complete(G1->Job), CellScheduler::ResultDisposition::Accepted);
  EXPECT_FALSE(S.finished());
  EXPECT_EQ(S.complete(G2->Job), CellScheduler::ResultDisposition::Accepted);
  EXPECT_TRUE(S.finished());
  EXPECT_EQ(S.totals().Leases, 3u);
  EXPECT_EQ(S.totals().CellsDone, 3u);
  EXPECT_EQ(S.totals().Retries, 0u);
}

TEST(CellScheduler, JobIdsStartAtFirstJobAndMapToCells) {
  SchedulerConfig C = testConfig();
  C.FirstJob = 100;
  CellScheduler S(2, C);
  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Job, 100u);
  EXPECT_EQ(S.cellForJob(100), std::optional<size_t>(0));
  EXPECT_FALSE(S.cellForJob(99).has_value());
  S.assign(1, 0.0);
  EXPECT_EQ(S.nextJob(), 102u);
}

TEST(CellScheduler, MissedHeartbeatsExpireAndRequeueWithBackoff) {
  CellScheduler S(1, testConfig());
  auto G = S.assign(7, 0.0);
  ASSERT_TRUE(G);

  // Heartbeats push the deadline out: at t=2.5 a beat makes the new
  // deadline 5.5, so t=5.0 expires nothing.
  EXPECT_TRUE(S.heartbeat(G->Job, 2.5));
  EXPECT_TRUE(S.expireDeadlines(5.0).empty());

  auto Expired = S.expireDeadlines(5.5);
  ASSERT_EQ(Expired.size(), 1u);
  EXPECT_TRUE(Expired[0].HeartbeatMissed);
  EXPECT_EQ(Expired[0].Worker, 7u);
  EXPECT_EQ(S.cellState(0), CellState::Pending);

  // The retry backs off: not leasable until 5.5 + 0.5.
  EXPECT_FALSE(S.assign(8, 5.6));
  EXPECT_DOUBLE_EQ(S.nextEventTime(), 6.0);
  auto Again = S.assign(8, 6.0);
  ASSERT_TRUE(Again);
  EXPECT_EQ(Again->Attempt, 2u);
  EXPECT_NE(Again->Job, G->Job);
  EXPECT_EQ(S.totals().Retries, 1u);
  EXPECT_EQ(S.totals().Requeues, 1u);
  EXPECT_EQ(S.totals().HeartbeatExpiries, 1u);
}

TEST(CellScheduler, WallClockTimeoutWinsTheExpiryLabel) {
  SchedulerConfig C = testConfig();
  C.CellTimeoutS = 10.0; // heartbeat deadline (3s) would trip first...
  CellScheduler S(1, C);
  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  // ...but keep beating so only the wall clock can expire the lease.
  for (double T = 1.0; T < 10.0; T += 1.0)
    EXPECT_TRUE(S.heartbeat(G->Job, T));
  auto Expired = S.expireDeadlines(10.0);
  ASSERT_EQ(Expired.size(), 1u);
  EXPECT_FALSE(Expired[0].HeartbeatMissed); // labeled timeout, not missed
  EXPECT_EQ(S.totals().TimeoutExpiries, 1u);
  EXPECT_EQ(S.totals().HeartbeatExpiries, 0u);
}

TEST(CellScheduler, ResultAfterExpiryIsStale) {
  CellScheduler S(1, testConfig());
  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  ASSERT_EQ(S.expireDeadlines(3.0).size(), 1u);

  // The presumed-dead worker reports in late: the payload must not land.
  EXPECT_FALSE(S.cellForJob(G->Job).has_value());
  EXPECT_EQ(S.complete(G->Job), CellScheduler::ResultDisposition::Stale);
  EXPECT_EQ(S.totals().StaleResults, 1u);
  EXPECT_EQ(S.cellState(0), CellState::Pending); // re-lease still needed
}

TEST(CellScheduler, HeartbeatForExpiredJobIsRejected) {
  CellScheduler S(1, testConfig());
  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  ASSERT_EQ(S.expireDeadlines(3.0).size(), 1u);
  EXPECT_FALSE(S.heartbeat(G->Job, 3.1));
}

TEST(CellScheduler, BudgetExhaustionDegradesToLostNeverHangs) {
  CellScheduler S(1, testConfig()); // Budget = 3
  double Now = 0.0;
  for (unsigned Attempt = 1; Attempt <= 3; ++Attempt) {
    // Skip past any backoff to the next leasable instant.
    double At = S.nextEventTime();
    if (At > Now && At < std::numeric_limits<double>::infinity())
      Now = At;
    auto G = S.assign(1, Now);
    ASSERT_TRUE(G) << "attempt " << Attempt << " at t=" << Now;
    EXPECT_EQ(G->Attempt, Attempt);
    EXPECT_EQ(S.fail(G->Job, Now),
              CellScheduler::ResultDisposition::Accepted);
  }
  EXPECT_EQ(S.cellState(0), CellState::Lost);
  EXPECT_EQ(S.cellAttempts(0), 3u);
  EXPECT_TRUE(S.finished()); // lost, not hung
  EXPECT_FALSE(S.assign(1, Now + 100.0));
  EXPECT_EQ(S.totals().CellsLost, 1u);
  EXPECT_EQ(S.totals().Requeues, 2u); // third failure went to Lost
}

TEST(CellScheduler, WorkerLostRequeuesAllItsLeases) {
  CellScheduler S(4, testConfig());
  auto A = S.assign(1, 0.0);
  auto B = S.assign(1, 0.0);
  auto C = S.assign(2, 0.0);
  ASSERT_TRUE(A && B && C);

  EXPECT_EQ(S.workerLost(1, 1.0), 2u);
  EXPECT_EQ(S.cellState(A->Cell), CellState::Pending);
  EXPECT_EQ(S.cellState(B->Cell), CellState::Pending);
  EXPECT_EQ(S.cellState(C->Cell), CellState::Leased); // other worker's
  EXPECT_EQ(S.leasesInFlight(), 1u);
  // The dead worker's results are now stale.
  EXPECT_EQ(S.complete(A->Job), CellScheduler::ResultDisposition::Stale);
}

TEST(CellScheduler, DrainStopsNewLeasesButAcceptsInFlight) {
  CellScheduler S(3, testConfig());
  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  S.drain();
  EXPECT_TRUE(S.draining());
  EXPECT_FALSE(S.assign(2, 0.0)); // cells 1 and 2 stay unleased
  EXPECT_EQ(S.complete(G->Job), CellScheduler::ResultDisposition::Accepted);
  EXPECT_EQ(S.cellState(0), CellState::Done);
  EXPECT_EQ(S.leasesInFlight(), 0u);
}

TEST(CellScheduler, AbandonPendingMarksEverythingUnfinishedLost) {
  CellScheduler S(3, testConfig());
  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  ASSERT_EQ(S.complete(G->Job), CellScheduler::ResultDisposition::Accepted);
  auto H = S.assign(1, 0.0);
  ASSERT_TRUE(H);

  S.abandonPending(); // no workers left: cell 1 leased, cell 2 pending
  EXPECT_EQ(S.cellState(0), CellState::Done);
  EXPECT_EQ(S.cellState(1), CellState::Lost);
  EXPECT_EQ(S.cellState(2), CellState::Lost);
  EXPECT_TRUE(S.finished());
  EXPECT_EQ(S.totals().CellsLost, 2u);
}

TEST(CellScheduler, NextEventTimeTracksDeadlinesAndBackoff) {
  SchedulerConfig C = testConfig();
  C.CellTimeoutS = 2.0; // tighter than the 3s heartbeat deadline
  CellScheduler S(2, C);
  EXPECT_EQ(S.nextEventTime(), std::numeric_limits<double>::infinity());

  auto G = S.assign(1, 0.0);
  ASSERT_TRUE(G);
  EXPECT_DOUBLE_EQ(S.nextEventTime(), 2.0); // the wall deadline

  ASSERT_EQ(S.expireDeadlines(2.0).size(), 1u);
  EXPECT_DOUBLE_EQ(S.nextEventTime(), 2.5); // the backoff expiry

  S.abandonPending();
  EXPECT_EQ(S.nextEventTime(), std::numeric_limits<double>::infinity());
}

TEST(CellScheduler, SuccessResetsTheRetryLadder) {
  CellScheduler S(1, testConfig()); // Budget = 3
  auto A = S.assign(1, 0.0);
  ASSERT_TRUE(A);
  S.fail(A->Job, 0.0);
  auto B = S.assign(1, 1.0);
  ASSERT_TRUE(B);
  ASSERT_EQ(S.complete(B->Job), CellScheduler::ResultDisposition::Accepted);
  // Done cells stay done; totals reflect the one retry.
  EXPECT_EQ(S.cellState(0), CellState::Done);
  EXPECT_EQ(S.totals().Retries, 1u);
  EXPECT_EQ(S.totals().CellsDone, 1u);
}

} // namespace
