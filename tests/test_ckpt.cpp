//===- tests/test_ckpt.cpp - Checkpoint-library subsystem tests ----------===//
//
// The COW checkpoint library's contract, bottom up: PageStore interning,
// Memory's copy-on-write attach mode (shares are bit-identical, writes
// never leak between machines), library build / lookup / resume semantics,
// serialization, the BBV region selector, the build-once LibraryPool, and
// the headline guarantee — a library-backed sampled run is field-identical
// to a plain one, including when checkpoints are missing and the runner
// falls back to execution.
//
//===----------------------------------------------------------------------===//

#include "ckpt/CheckpointLibrary.h"

#include "ckpt/LibraryPool.h"
#include "isa/Serialize.h"
#include "sample/SampledRunner.h"
#include "sim/Interpreter.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

using namespace bor;
using namespace bor::ckpt;

namespace {

MicrobenchProgram brrProgram(size_t Chars = 4000) {
  MicrobenchConfig C;
  C.Text.NumChars = Chars;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 16; // frequent brr -> LFSR state matters
  return buildMicrobench(C);
}

/// Non-zero memory pages keyed by base address (zero pages are
/// indistinguishable from unmapped ones by construction).
std::map<uint64_t, std::vector<uint8_t>> nonZeroPages(const Machine &M) {
  std::map<uint64_t, std::vector<uint8_t>> Pages;
  M.memory().forEachPage([&](uint64_t Base, const uint8_t *Data) {
    std::vector<uint8_t> Bytes(Data, Data + Memory::pageBytes());
    for (uint8_t B : Bytes)
      if (B != 0) {
        Pages.emplace(Base, std::move(Bytes));
        return;
      }
  });
  return Pages;
}

void expectSameArchState(const Machine &A, const Machine &B) {
  EXPECT_EQ(A.pc(), B.pc());
  EXPECT_EQ(A.halted(), B.halted());
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(A.readReg(R), B.readReg(R)) << "register " << R;
  EXPECT_EQ(nonZeroPages(A), nonZeroPages(B));
}

CheckpointLibrary buildLibrary(const DecodedProgram &DP,
                               uint64_t EveryInsts = 20000,
                               uint64_t MaxInsts = ~0ULL) {
  CheckpointLibrary::BuildOptions Options;
  Options.EveryInsts = EveryInsts;
  Options.MaxInsts = MaxInsts;
  return CheckpointLibrary::build(DP, BrrUnitConfig(), Options,
                                  /*Telemetry=*/nullptr);
}

/// Every field of a SampledResult that plain and library-backed exact runs
/// must agree on (everything but the wall-clock phase timers).
void expectSameSampledResult(const SampledResult &A, const SampledResult &B) {
  EXPECT_EQ(A.TotalInsts, B.TotalInsts);
  EXPECT_EQ(A.FastForwardInsts, B.FastForwardInsts);
  EXPECT_EQ(A.WarmedInsts, B.WarmedInsts);
  EXPECT_EQ(A.PrerollInsts, B.PrerollInsts);
  EXPECT_EQ(A.MeasuredInsts, B.MeasuredInsts);
  EXPECT_EQ(A.NumIntervals, B.NumIntervals);
  EXPECT_EQ(A.Halted, B.Halted);
  EXPECT_EQ(A.Detailed.Insts, B.Detailed.Insts);
  EXPECT_EQ(A.Detailed.Cycles, B.Detailed.Cycles);
  EXPECT_EQ(A.Detailed.CondBranches, B.Detailed.CondBranches);
  EXPECT_EQ(A.Detailed.CondMispredicts, B.Detailed.CondMispredicts);
  EXPECT_EQ(A.Detailed.BrrExecuted, B.Detailed.BrrExecuted);
  EXPECT_EQ(A.Detailed.BrrTaken, B.Detailed.BrrTaken);
  EXPECT_EQ(A.Detailed.BackendFlushCycles, B.Detailed.BackendFlushCycles);
  EXPECT_EQ(A.Detailed.FrontendFlushCycles, B.Detailed.FrontendFlushCycles);
  EXPECT_EQ(A.IpcSamples.mean(), B.IpcSamples.mean());
  EXPECT_EQ(A.IpcSamples.ci95HalfWidth(), B.IpcSamples.ci95HalfWidth());
  EXPECT_EQ(A.FlushFracSamples.mean(), B.FlushFracSamples.mean());
  EXPECT_EQ(A.BrrRateSamples.mean(), B.BrrRateSamples.mean());
  ASSERT_EQ(A.Markers.size(), B.Markers.size());
  for (size_t I = 0; I != A.Markers.size(); ++I) {
    EXPECT_EQ(A.Markers[I].Id, B.Markers[I].Id);
    EXPECT_EQ(A.Markers[I].GlobalInst, B.Markers[I].GlobalInst);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// PageStore
//===----------------------------------------------------------------------===//

TEST(PageStore, InternsDistinctContentOnce) {
  PageStore Store;
  Memory::Page A{};
  A[0] = 1;
  Memory::Page B{};
  B[0] = 2;

  PageStore::PageRef RA1 = Store.intern(A.data());
  PageStore::PageRef RA2 = Store.intern(A.data());
  PageStore::PageRef RB = Store.intern(B.data());

  EXPECT_EQ(RA1, RA2) << "identical content must share one stored page";
  EXPECT_NE(RA1, RB);
  EXPECT_EQ(Store.numStoredPages(), 2u);
  EXPECT_EQ(Store.numDedupHits(), 1u);
  EXPECT_EQ(std::memcmp(RA1->data(), A.data(), sizeof(A)), 0);
  EXPECT_EQ(std::memcmp(RB->data(), B.data(), sizeof(B)), 0);
}

TEST(PageStore, HandlesOutliveTheStore) {
  Memory::Page A{};
  A[100] = 42;
  PageStore::PageRef R;
  {
    PageStore Store;
    R = Store.intern(A.data());
  }
  EXPECT_EQ((*R)[100], 42);
}

//===----------------------------------------------------------------------===//
// Memory copy-on-write
//===----------------------------------------------------------------------===//

TEST(MemoryCow, SharedPagesReadBitIdentically) {
  PageStore Store;
  Memory::Page P{};
  for (size_t I = 0; I != P.size(); ++I)
    P[I] = static_cast<uint8_t>(I * 7);
  PageStore::PageRef R = Store.intern(P.data());

  Machine A, B;
  A.memory().attachShared(0, R);
  B.memory().attachShared(0, R);
  for (uint64_t Addr = 0; Addr != Memory::pageBytes(); ++Addr) {
    ASSERT_EQ(A.memory().readU8(Addr), P[Addr]);
    ASSERT_EQ(B.memory().readU8(Addr), P[Addr]);
  }
  EXPECT_EQ(A.memory().cowCounts().Attached, 1u);
  EXPECT_EQ(A.memory().cowCounts().Copied, 0u) << "reads must not copy";
}

TEST(MemoryCow, WritesNeverLeakBetweenMachines) {
  PageStore Store;
  Memory::Page P{};
  P[8] = 0x11;
  PageStore::PageRef R = Store.intern(P.data());

  Machine A, B;
  A.memory().attachShared(0, R);
  B.memory().attachShared(0, R);

  A.memory().writeU8(8, 0x99); // privatizes A's copy
  EXPECT_EQ(A.memory().readU8(8), 0x99);
  EXPECT_EQ(B.memory().readU8(8), 0x11) << "write leaked into machine B";
  EXPECT_EQ((*R)[8], 0x11) << "write leaked into the shared store";
  EXPECT_EQ(A.memory().cowCounts().Copied, 1u);
  EXPECT_EQ(B.memory().cowCounts().Copied, 0u);

  // A second write to the already-private page copies nothing more.
  A.memory().writeU8(9, 1);
  EXPECT_EQ(A.memory().cowCounts().Copied, 1u);
}

TEST(MemoryCow, ResetDropsSharesButKeepsCounts) {
  PageStore Store;
  Memory::Page P{};
  P[0] = 5;
  PageStore::PageRef R = Store.intern(P.data());

  Machine M;
  M.memory().attachShared(0, R);
  M.memory().writeU8(0, 6);
  M.memory().reset();
  EXPECT_EQ(M.memory().readU8(0), 0) << "reset memory reads as zero";
  EXPECT_EQ(M.memory().numPages(), 0u);
  EXPECT_EQ(M.memory().cowCounts().Attached, 1u);
  EXPECT_EQ(M.memory().cowCounts().Copied, 1u);
}

TEST(MemoryCow, LoadProgramDropsStalePages) {
  MicrobenchProgram MB = brrProgram(500);
  Machine M;
  // Dirty a page far outside the program's data segment.
  M.memory().writeU64(1ULL << 30, 0xdeadbeef);
  M.loadProgram(MB.Prog);
  EXPECT_EQ(M.memory().readU64(1ULL << 30), 0u)
      << "stale page survived loadProgram";
}

//===----------------------------------------------------------------------===//
// CheckpointLibrary build and lookup
//===----------------------------------------------------------------------===//

TEST(CheckpointLibrary, BuildCapturesPeriodicCheckpoints) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);

  ASSERT_GE(Lib.numCheckpoints(), 3u);
  EXPECT_EQ(Lib.periodInsts(), 20000u);
  EXPECT_TRUE(Lib.streamHalted());
  EXPECT_EQ(Lib.deciderKind(), "lfsr");
  EXPECT_EQ(Lib.front().InstsRetired, 0u);
  EXPECT_EQ(Lib.finalCheckpoint()->InstsRetired, Lib.totalInsts());
  EXPECT_TRUE(Lib.finalCheckpoint()->Halted);

  // Interior capture points sit exactly on period boundaries.
  const std::vector<LibraryCheckpoint> &Cs = Lib.checkpoints();
  for (size_t I = 1; I + 1 < Cs.size(); ++I)
    EXPECT_EQ(Cs[I].InstsRetired, I * 20000u);

  // Interning pays: consecutive checkpoints share untouched pages.
  EXPECT_GT(Lib.numDedupHits(), 0u);

  // The build observed the program's ROI markers at 1-based global
  // instruction indices within the stream.
  ASSERT_EQ(Lib.markers().size(), 2u);
  EXPECT_GT(Lib.markers()[0].GlobalInst, 0u);
  EXPECT_LE(Lib.markers()[1].GlobalInst, Lib.totalInsts());
}

TEST(CheckpointLibrary, BuildIsDeterministic) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary A = buildLibrary(DP);
  CheckpointLibrary B = buildLibrary(DP);
  EXPECT_EQ(A.encode(), B.encode());
}

TEST(CheckpointLibrary, LookupSemantics) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);

  EXPECT_EQ(Lib.checkpointAt(0), &Lib.front());
  EXPECT_NE(Lib.checkpointAt(20000), nullptr);
  EXPECT_EQ(Lib.checkpointAt(20001), nullptr);
  EXPECT_EQ(Lib.checkpointAt(19999), nullptr);

  EXPECT_EQ(Lib.nearestAtOrBefore(0), &Lib.front());
  EXPECT_EQ(Lib.nearestAtOrBefore(19999)->InstsRetired, 0u);
  EXPECT_EQ(Lib.nearestAtOrBefore(20000)->InstsRetired, 20000u);
  EXPECT_EQ(Lib.nearestAtOrBefore(29999)->InstsRetired, 20000u);
  EXPECT_EQ(Lib.nearestAtOrBefore(~0ULL)->InstsRetired, Lib.totalInsts());
}

TEST(CheckpointLibrary, MarkersInIsHalfOpenLowClosedHigh) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP);
  ASSERT_EQ(Lib.markers().size(), 2u);
  uint64_t M0 = Lib.markers()[0].GlobalInst;
  uint64_t M1 = Lib.markers()[1].GlobalInst;

  EXPECT_EQ(Lib.markersIn(0, Lib.totalInsts()).size(), 2u);
  EXPECT_EQ(Lib.markersIn(M0, M1).size(), 1u); // excludes M0, includes M1
  EXPECT_EQ(Lib.markersIn(M0, M1)[0].GlobalInst, M1);
  EXPECT_EQ(Lib.markersIn(M1, Lib.totalInsts()).size(), 0u);
  EXPECT_EQ(Lib.markersIn(0, M0 - 1).size(), 0u);
}

//===----------------------------------------------------------------------===//
// Resume correctness
//===----------------------------------------------------------------------===//

TEST(CheckpointLibrary, ResumedRunMatchesUninterruptedRun) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);
  ASSERT_GE(Lib.numCheckpoints(), 3u);

  // Uninterrupted reference run.
  Machine Ref;
  BrrUnitDecider RefD;
  Interpreter RefI(DP, Ref, RefD);
  RunStats RefStats = RefI.run(1ULL << 24);
  ASSERT_TRUE(RefStats.Halted);

  // Resume the second interior checkpoint and run to completion. A
  // different decider seed proves only the restored state matters.
  const LibraryCheckpoint *C = Lib.checkpointAt(40000);
  ASSERT_NE(C, nullptr);
  Machine M;
  BrrUnitConfig OtherSeed;
  OtherSeed.Seed = 0x1234567;
  BrrUnitDecider D(OtherSeed);
  std::string Err;
  ASSERT_TRUE(Lib.resume(*C, M, D, Err)) << Err;
  Interpreter I(DP, M, D, /*LoadImage=*/false);
  RunStats Tail = I.run(1ULL << 24);
  ASSERT_TRUE(Tail.Halted);

  expectSameArchState(Ref, M);
  EXPECT_EQ(C->InstsRetired + Tail.Insts, RefStats.Insts);
  EXPECT_EQ(D.checkpointWords(), RefD.checkpointWords());
}

TEST(CheckpointLibrary, ResumeOverDirtyMachineDropsStaleState) {
  // Regression: resuming a checkpoint over a machine that already ran
  // part of the program (plus scribbles elsewhere) must shed every stale
  // page, not merge old and new state.
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);
  const LibraryCheckpoint *C = Lib.checkpointAt(20000);
  ASSERT_NE(C, nullptr);

  // Dirty machine: partial run to a different point plus a far write.
  Machine Dirty;
  BrrUnitDecider DD;
  Interpreter DI(DP, Dirty, DD);
  DI.run(31337, /*RequireHalt=*/false);
  Dirty.memory().writeU64(1ULL << 30, 0xabcdef);

  // Clean machine: resume into a fresh target.
  Machine Clean;
  BrrUnitDecider CD;
  std::string Err;
  ASSERT_TRUE(Lib.resume(*C, Clean, CD, Err)) << Err;
  ASSERT_TRUE(Lib.resume(*C, Dirty, DD, Err)) << Err;

  expectSameArchState(Clean, Dirty);
  EXPECT_EQ(Dirty.memory().readU64(1ULL << 30), 0u);

  // And both continue to the identical halt state.
  Interpreter IC(DP, Clean, CD, /*LoadImage=*/false);
  Interpreter ID(DP, Dirty, DD, /*LoadImage=*/false);
  ASSERT_TRUE(IC.run(1ULL << 24).Halted);
  ASSERT_TRUE(ID.run(1ULL << 24).Halted);
  expectSameArchState(Clean, Dirty);
}

TEST(CheckpointLibrary, RejectsDeciderKindMismatch) {
  MicrobenchProgram MB = brrProgram(500);
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP);
  Machine M;
  HwCounterDecider Counter;
  std::string Err;
  EXPECT_FALSE(Lib.resume(Lib.front(), M, Counter, Err));
  EXPECT_NE(Err.find("lfsr"), std::string::npos);
  EXPECT_NE(Err.find("counter"), std::string::npos);
}

TEST(CheckpointLibrary, ConcurrentResumesAreBitIdentical) {
  // The fan-out the subsystem exists for: many threads resume the same
  // checkpoint concurrently, each runs to completion, and every machine
  // lands in the bit-identical final state (no sharing-related races;
  // run under the asan-ubsan preset via the sanitize label).
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);
  const LibraryCheckpoint *C = Lib.checkpointAt(20000);
  ASSERT_NE(C, nullptr);

  Machine Ref;
  BrrUnitDecider RefD;
  {
    std::string Err;
    ASSERT_TRUE(Lib.resume(*C, Ref, RefD, Err)) << Err;
    Interpreter I(DP, Ref, RefD, /*LoadImage=*/false);
    ASSERT_TRUE(I.run(1ULL << 24).Halted);
  }

  constexpr unsigned NumThreads = 4;
  std::vector<Machine> Machines(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      BrrUnitDecider D;
      std::string Err;
      if (!Lib.resume(*C, Machines[T], D, Err))
        return; // main thread's state comparison will report the failure
      Interpreter I(DP, Machines[T], D, /*LoadImage=*/false);
      I.run(1ULL << 24);
    });
  for (std::thread &T : Threads)
    T.join();
  for (unsigned T = 0; T != NumThreads; ++T)
    expectSameArchState(Ref, Machines[T]);
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(CheckpointLibrary, EncodeDecodeRoundTrips) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);

  CheckpointLibrary Back;
  std::string Err;
  ASSERT_TRUE(CheckpointLibrary::decode(Lib.encode(), Back, Err)) << Err;
  EXPECT_EQ(Back.periodInsts(), Lib.periodInsts());
  EXPECT_EQ(Back.totalInsts(), Lib.totalInsts());
  EXPECT_EQ(Back.streamHalted(), Lib.streamHalted());
  EXPECT_EQ(Back.numCheckpoints(), Lib.numCheckpoints());
  EXPECT_EQ(Back.numStoredPages(), Lib.numStoredPages());
  EXPECT_EQ(Back.markers().size(), Lib.markers().size());
  EXPECT_EQ(Back.numPeriods(), Lib.numPeriods());
  // Re-encoding the decoded library reproduces the bytes exactly.
  EXPECT_EQ(Back.encode(), Lib.encode());

  // A resume from the decoded library behaves identically.
  const LibraryCheckpoint *CA = Lib.checkpointAt(20000);
  const LibraryCheckpoint *CB = Back.checkpointAt(20000);
  ASSERT_NE(CA, nullptr);
  ASSERT_NE(CB, nullptr);
  Machine MA, MB2;
  BrrUnitDecider DA, DB;
  ASSERT_TRUE(Lib.resume(*CA, MA, DA, Err)) << Err;
  ASSERT_TRUE(Back.resume(*CB, MB2, DB, Err)) << Err;
  expectSameArchState(MA, MB2);
}

TEST(CheckpointLibrary, RejectsCorruptPayloads) {
  MicrobenchProgram MB = brrProgram(500);
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP);
  std::vector<uint8_t> Bytes = Lib.encode();

  CheckpointLibrary Out;
  std::string Err;
  for (size_t Keep : {size_t(0), size_t(3), size_t(40), Bytes.size() - 1}) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Keep);
    EXPECT_FALSE(CheckpointLibrary::decode(Cut, Out, Err)) << "kept " << Keep;
  }
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  EXPECT_FALSE(CheckpointLibrary::decode(Long, Out, Err));
  std::vector<uint8_t> BadVer = Bytes;
  BadVer[0] = 0xff;
  EXPECT_FALSE(CheckpointLibrary::decode(BadVer, Out, Err));
  EXPECT_NE(Err.find("version"), std::string::npos);
}

TEST(CheckpointLibrary, FileRoundTripThroughBorbContainer) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);

  std::string Path = testing::TempDir() + "ckpt_library_roundtrip.borb";
  ASSERT_TRUE(saveLibraryFile(MB.Prog, Lib, Path));

  Program P;
  CheckpointLibrary Back;
  std::string Err;
  ASSERT_TRUE(loadLibraryFile(Path, P, Back, Err)) << Err;
  EXPECT_EQ(P.numInsts(), MB.Prog.numInsts());
  EXPECT_EQ(Back.encode(), Lib.encode());

  // The image still loads as a plain program, CKPL section and all.
  LoadResult R = loadProgramFile(Path);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.findSection("CKPL"), nullptr);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// BBV region selection
//===----------------------------------------------------------------------===//

TEST(Bbv, DistanceProperties) {
  Bbv A = {{0, 10}, {3, 30}};
  Bbv B = {{1, 5}};
  EXPECT_EQ(bbvDistance(A, A), 0.0);
  EXPECT_EQ(bbvDistance(B, B), 0.0);
  // Disjoint supports are maximally distant under the normalized metric.
  EXPECT_DOUBLE_EQ(bbvDistance(A, B), 2.0);
  EXPECT_DOUBLE_EQ(bbvDistance(A, B), bbvDistance(B, A));
  // Scaling a vector leaves the normalized distance unchanged.
  Bbv A2 = {{0, 20}, {3, 60}};
  EXPECT_EQ(bbvDistance(A, A2), 0.0);
}

TEST(Bbv, SelectRegionsClustersPhases) {
  Bbv PhaseA = {{0, 100}};
  Bbv PhaseB = {{7, 100}};
  std::vector<Bbv> Bbvs = {PhaseA, PhaseA, PhaseB, PhaseA, PhaseB};

  RegionSelection Sel = selectRegions(Bbvs, 2);
  ASSERT_EQ(Sel.Reps.size(), 2u);
  EXPECT_EQ(Sel.Reps[0], 0u) << "period 0 seeds the selection";
  EXPECT_EQ(Sel.Reps[1], 2u) << "farthest-first picks the first B period";
  EXPECT_EQ(Sel.RepOf, (std::vector<uint32_t>{0, 0, 2, 0, 2}));
  EXPECT_EQ(Sel.weightOf(0), 3u);
  EXPECT_EQ(Sel.weightOf(2), 2u);
  EXPECT_EQ(Sel.numPeriods(), 5u);

  // Identical phases need no second representative even with room.
  RegionSelection One = selectRegions({PhaseA, PhaseA, PhaseA}, 8);
  EXPECT_EQ(One.Reps, (std::vector<uint32_t>{0}));
  EXPECT_EQ(One.weightOf(0), 3u);
}

TEST(Bbv, SelectRegionsIsDeterministic) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  CheckpointLibrary Lib = buildLibrary(DP, 20000);
  ASSERT_GE(Lib.numPeriods(), 2u);

  RegionSelection A = selectRegions(Lib.periodBbvs(), 2);
  RegionSelection B = selectRegions(Lib.periodBbvs(), 2);
  EXPECT_EQ(A.Reps, B.Reps);
  EXPECT_EQ(A.RepOf, B.RepOf);

  // Weights always partition the periods.
  uint64_t Total = 0;
  for (uint32_t R : A.Reps)
    Total += A.weightOf(R);
  EXPECT_EQ(Total, A.numPeriods());
}

//===----------------------------------------------------------------------===//
// Library-backed sampled runs
//===----------------------------------------------------------------------===//

TEST(SampledFromLibrary, FieldIdenticalToPlainSampling) {
  // The subsystem's headline guarantee: swapping re-executed fast-forward
  // for COW resume changes nothing observable about the sampled result.
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);

  SamplingPlan Plan;
  Plan.PeriodInsts = 20000;
  Plan.WarmupInsts = 1000;
  Plan.MeasureInsts = 500;
  ASSERT_TRUE(Plan.valid());

  CheckpointLibrary Lib = buildLibrary(DP, Plan.PeriodInsts);
  SampledResult Plain = runSampled(DP, Plan);
  SampledResult FromLib = runSampledFromLibrary(DP, Lib, Plan,
                                                PipelineConfig());
  expectSameSampledResult(Plain, FromLib);
}

TEST(SampledFromLibrary, TruncatedLibraryFallsBackToExecution) {
  // A library whose build budget ended mid-stream covers only a prefix;
  // spans beyond it must execute functionally and still match plain
  // sampling field for field.
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);

  SamplingPlan Plan;
  Plan.PeriodInsts = 20000;
  Plan.WarmupInsts = 1000;
  Plan.MeasureInsts = 500;

  CheckpointLibrary Lib = buildLibrary(DP, Plan.PeriodInsts,
                                       /*MaxInsts=*/30000);
  EXPECT_FALSE(Lib.streamHalted());
  SampledResult Plain = runSampled(DP, Plan);
  SampledResult FromLib = runSampledFromLibrary(DP, Lib, Plan,
                                                PipelineConfig());
  expectSameSampledResult(Plain, FromLib);
}

TEST(SampledFromLibrary, RegionModeIsDeterministicAndExactOnMarkers) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);

  SamplingPlan Plan;
  Plan.PeriodInsts = 20000;
  Plan.WarmupInsts = 1000;
  Plan.MeasureInsts = 500;

  CheckpointLibrary Lib = buildLibrary(DP, Plan.PeriodInsts);
  RegionSelection Sel = selectRegions(Lib.periodBbvs(), 2);
  ASSERT_FALSE(Sel.Reps.empty());

  SampledResult A = runSampledFromLibrary(DP, Lib, Plan, PipelineConfig(),
                                          ~0ULL, nullptr, &Sel);
  SampledResult B = runSampledFromLibrary(DP, Lib, Plan, PipelineConfig(),
                                          ~0ULL, nullptr, &Sel);
  expectSameSampledResult(A, B);

  // Region mode reports the library's exact stream shape and markers.
  EXPECT_EQ(A.TotalInsts, Lib.totalInsts());
  EXPECT_EQ(A.Halted, Lib.streamHalted());
  ASSERT_EQ(A.Markers.size(), Lib.markers().size());
  for (size_t I = 0; I != A.Markers.size(); ++I)
    EXPECT_EQ(A.Markers[I].GlobalInst, Lib.markers()[I].GlobalInst);

  // Weighted measurement scales to the whole stream.
  EXPECT_GT(A.NumIntervals, 0u);
  EXPECT_GT(A.MeasuredInsts, 0u);
}

//===----------------------------------------------------------------------===//
// LibraryPool
//===----------------------------------------------------------------------===//

TEST(LibraryPool, BuildsOncePerKeyAcrossThreads) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  LibraryPool Pool;

  constexpr unsigned NumThreads = 4;
  std::vector<std::shared_ptr<const CheckpointLibrary>> Libs(NumThreads);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Libs[T] = Pool.getOrBuild(DP, BrrUnitConfig(), 20000);
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Pool.numLibraries(), 1u);
  for (unsigned T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Libs[0], Libs[T]) << "thread " << T << " got a private build";
  EXPECT_EQ(Libs[0]->periodInsts(), 20000u);
}

TEST(LibraryPool, KeyDependsOnProgramDeciderAndPeriod) {
  MicrobenchProgram A = brrProgram(500);
  MicrobenchProgram B = brrProgram(600);
  BrrUnitConfig Cfg;
  uint64_t Base = LibraryPool::keyFor(A.Prog, Cfg, 20000);
  EXPECT_NE(Base, LibraryPool::keyFor(B.Prog, Cfg, 20000));
  EXPECT_NE(Base, LibraryPool::keyFor(A.Prog, Cfg, 40000));
  BrrUnitConfig Seeded;
  Seeded.Seed = 0x1234567;
  EXPECT_NE(Base, LibraryPool::keyFor(A.Prog, Seeded, 20000));
  EXPECT_EQ(Base, LibraryPool::keyFor(A.Prog, Cfg, 20000));
}

TEST(LibraryPool, PersistsAndReloadsThroughCacheDir) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  std::string Dir = testing::TempDir();

  std::vector<uint8_t> BuiltBytes;
  {
    LibraryPool Pool(Dir);
    BuiltBytes = Pool.getOrBuild(DP, BrrUnitConfig(), 20000)->encode();
  }
  // A fresh pool finds the persisted image instead of rebuilding.
  LibraryPool Pool(Dir);
  std::shared_ptr<const CheckpointLibrary> Lib =
      Pool.getOrBuild(DP, BrrUnitConfig(), 20000);
  EXPECT_EQ(Lib->encode(), BuiltBytes);

  std::string Path = Pool.cachePathFor(
      LibraryPool::keyFor(MB.Prog, BrrUnitConfig(), 20000));
  EXPECT_NE(Path.find(Dir), std::string::npos);
  std::remove(Path.c_str());
}

TEST(LibraryPool, CorruptCacheFileIsRebuiltNotFatal) {
  MicrobenchProgram MB = brrProgram();
  DecodedProgram DP(MB.Prog);
  std::string Dir = testing::TempDir() + "ckpt_corrupt_cache";

  std::vector<uint8_t> GoodBytes;
  {
    LibraryPool Pool(Dir);
    GoodBytes = Pool.getOrBuild(DP, BrrUnitConfig(), 20000)->encode();
  }
  std::string Path = LibraryPool(Dir).cachePathFor(
      LibraryPool::keyFor(MB.Prog, BrrUnitConfig(), 20000));
  ASSERT_FALSE(Path.empty());

  // Injected corruption: truncate the persisted image mid-payload, as a
  // torn write from a killed process would.
  {
    std::FILE *F = std::fopen(Path.c_str(), "rb+");
    ASSERT_NE(F, nullptr);
    std::fputs("garbage where the header was", F);
    ASSERT_EQ(std::fclose(F), 0);
  }

  // A fresh pool must warn and rebuild — same library, never a crash or
  // a poisoned result.
  {
    LibraryPool Pool(Dir);
    std::shared_ptr<const CheckpointLibrary> Lib =
        Pool.getOrBuild(DP, BrrUnitConfig(), 20000);
    ASSERT_NE(Lib, nullptr);
    EXPECT_EQ(Lib->encode(), GoodBytes);
  }

  // And the rebuild repaired the cache file in place: the next pool loads
  // it cleanly.
  {
    Program Cached;
    CheckpointLibrary Lib;
    std::string Error;
    EXPECT_TRUE(loadLibraryFile(Path, Cached, Lib, Error)) << Error;
    EXPECT_EQ(Lib.encode(), GoodBytes);
  }
  std::remove(Path.c_str());
}
