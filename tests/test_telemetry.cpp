//===- tests/test_telemetry.cpp - Counter registry and tracer tests -------===//
//
// Covers the observability subsystem's two guarantees: counter snapshots
// are deterministic (merged, name-sorted, thread-count-invariant), and the
// trace writer emits well-formed Chrome trace-event JSON (validated by
// round-tripping through exp::jsonParse).
//
//===----------------------------------------------------------------------===//

#include "exp/Json.h"
#include "telemetry/Counters.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace bor;
using namespace bor::telemetry;

namespace {

std::string readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

} // namespace

TEST(CounterRegistry, SnapshotIsNameSorted) {
  CounterRegistry R;
  unsigned B = R.counterId("zebra");
  unsigned A = R.counterId("aardvark");
  R.add(B, 2);
  R.add(A, 1);
  CounterSnapshot S = R.snapshot();
  ASSERT_EQ(S.Counters.size(), 2u);
  EXPECT_EQ(S.Counters[0].first, "aardvark");
  EXPECT_EQ(S.Counters[0].second, 1u);
  EXPECT_EQ(S.Counters[1].first, "zebra");
  EXPECT_EQ(S.Counters[1].second, 2u);
}

TEST(CounterRegistry, RegistrationIsIdempotent) {
  CounterRegistry R;
  EXPECT_EQ(R.counterId("x"), R.counterId("x"));
  EXPECT_NE(R.counterId("x"), R.counterId("y"));
  EXPECT_EQ(R.histogramId("h"), R.histogramId("h"));
}

TEST(CounterRegistry, MergesShardsAcrossThreads) {
  // The same total work must render byte-identically no matter how many
  // threads produced it — the property behind thread-count-invariant
  // --counters output.
  auto Run = [](unsigned Threads) {
    CounterRegistry R;
    unsigned Id = R.counterId("work");
    unsigned H = R.histogramId("sizes");
    std::vector<std::thread> Ts;
    for (unsigned T = 0; T != Threads; ++T)
      Ts.emplace_back([&R, Id, H, T, Threads] {
        for (unsigned I = T; I < 1000; I += Threads) {
          R.add(Id, I);
          R.observe(H, I);
        }
      });
    for (std::thread &T : Ts)
      T.join();
    return R.snapshot().render();
  };
  std::string Serial = Run(1);
  EXPECT_EQ(Serial, Run(4));
  EXPECT_EQ(Serial, Run(7));
}

TEST(CounterRegistry, SurvivesWriterThreadExit) {
  CounterRegistry R;
  unsigned Id = R.counterId("c");
  std::thread([&R, Id] { R.add(Id, 41); }).join();
  R.add(Id, 1);
  CounterSnapshot S = R.snapshot();
  ASSERT_EQ(S.Counters.size(), 1u);
  EXPECT_EQ(S.Counters[0].second, 42u);
}

TEST(CounterRegistry, HistogramLog2Buckets) {
  CounterRegistry R;
  unsigned H = R.histogramId("h");
  R.observe(H, 0); // bucket 0: exact zeros
  R.observe(H, 1); // bucket 1: [1, 2)
  R.observe(H, 2); // bucket 2: [2, 4)
  R.observe(H, 3); // bucket 2
  R.observe(H, 1024); // bucket 11: [1024, 2048)
  CounterSnapshot S = R.snapshot();
  ASSERT_EQ(S.Histograms.size(), 1u);
  const CounterSnapshot::Histogram &HS = S.Histograms[0];
  EXPECT_EQ(HS.Count, 5u);
  EXPECT_EQ(HS.Sum, 1030u);
  EXPECT_EQ(HS.Min, 0u);
  EXPECT_EQ(HS.Max, 1024u);
  std::vector<std::pair<unsigned, uint64_t>> Want = {
      {0, 1}, {1, 1}, {2, 2}, {11, 1}};
  EXPECT_EQ(HS.Buckets, Want);
}

TEST(CounterRegistry, ResetKeepsRegistrations) {
  CounterRegistry R;
  unsigned Id = R.counterId("c");
  R.add(Id, 5);
  R.reset();
  CounterSnapshot S = R.snapshot();
  ASSERT_EQ(S.Counters.size(), 1u);
  EXPECT_EQ(S.Counters[0].second, 0u);
}

TEST(TraceWriter, WritesParsableChromeTrace) {
  TraceWriter W;
  {
    TraceSpan Span(&W, "cell", "experiment",
                   {TraceArg::str("experiment", "fig13"),
                    TraceArg::num("index", uint64_t(3))});
  }
  W.instant("backend flush", "pipeline", {TraceArg::num("pc", uint64_t(64))});
  std::string Path = ::testing::TempDir() + "bor_trace_test.json";
  std::string Err;
  ASSERT_TRUE(W.writeTo(Path, Err)) << Err;

  exp::JsonValue Doc;
  ASSERT_TRUE(exp::jsonParse(readFile(Path), Doc, Err)) << Err;
  ASSERT_TRUE(Doc.isObject());
  const exp::JsonValue *Events = Doc.find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  ASSERT_EQ(Events->Elems.size(), 2u);

  const exp::JsonValue &Span = Events->Elems[0];
  EXPECT_EQ(Span.find("name")->Str, "cell");
  EXPECT_EQ(Span.find("cat")->Str, "experiment");
  EXPECT_EQ(Span.find("ph")->Str, "X");
  EXPECT_GE(Span.find("dur")->Num, 0.0);
  ASSERT_NE(Span.find("args"), nullptr);
  EXPECT_EQ(Span.find("args")->find("experiment")->Str, "fig13");
  EXPECT_EQ(Span.find("args")->find("index")->Num, 3.0);

  const exp::JsonValue &Inst = Events->Elems[1];
  EXPECT_EQ(Inst.find("ph")->Str, "i");
  EXPECT_EQ(Inst.find("s")->Str, "t");
  EXPECT_GE(Inst.find("ts")->Num, Span.find("ts")->Num);

  const exp::JsonValue *Other = Doc.find("otherData");
  ASSERT_NE(Other, nullptr);
  EXPECT_EQ(Other->find("dropped_events")->Num, 0.0);
  std::remove(Path.c_str());
}

TEST(TraceWriter, CapsEventsAndCountsDrops) {
  TraceWriter W(/*MaxEvents=*/2);
  for (int I = 0; I != 5; ++I)
    W.instant("e", "c");
  EXPECT_EQ(W.eventCount(), 2u);
  EXPECT_EQ(W.droppedCount(), 3u);
  std::string Path = ::testing::TempDir() + "bor_trace_cap.json";
  std::string Err;
  ASSERT_TRUE(W.writeTo(Path, Err)) << Err;
  exp::JsonValue Doc;
  ASSERT_TRUE(exp::jsonParse(readFile(Path), Doc, Err)) << Err;
  EXPECT_EQ(Doc.find("otherData")->find("dropped_events")->Num, 3.0);
  std::remove(Path.c_str());
}

TEST(TraceWriter, RejectsUnwritablePath) {
  TraceWriter W;
  std::string Err;
  // writeTo creates missing parent directories, so an unwritable path must
  // go through a non-directory component to fail.
  EXPECT_FALSE(W.writeTo("/dev/null/sub/trace.json", Err));
  EXPECT_FALSE(Err.empty());
}

TEST(TraceWriter, CreatesMissingParentDirs) {
  TraceWriter W;
  W.instant("e", "c");
  std::string Dir = ::testing::TempDir() + "bor_trace_parents";
  std::string Path = Dir + "/a/b/trace.json";
  std::string Err;
  ASSERT_TRUE(W.writeTo(Path, Err)) << Err;
  std::remove(Path.c_str());
}

// The drop counter at exactly-full boundaries: a buffer of N takes N
// events with zero drops, and the N+1st is the first drop.
TEST(TraceWriter, ExactlyFullBufferDropsNothing) {
  TraceWriter W(/*MaxEvents=*/4);
  for (int I = 0; I != 4; ++I)
    W.instant("e", "c");
  EXPECT_EQ(W.eventCount(), 4u);
  EXPECT_EQ(W.droppedCount(), 0u);
  W.instant("overflow", "c");
  EXPECT_EQ(W.eventCount(), 4u);
  EXPECT_EQ(W.droppedCount(), 1u);
}

TEST(TraceSpan, NullWriterIsNoOp) {
  TraceSpan Span(nullptr, "x", "y");
  Span.arg(TraceArg::num("k", uint64_t(1)));
  EXPECT_EQ(Span.elapsedMs(), 0.0);
  Span.close();
  Span.close();
}

TEST(TraceSpan, CloseIsIdempotent) {
  TraceWriter W;
  TraceSpan Span(&W, "x", "y");
  Span.close();
  Span.close();
  EXPECT_EQ(W.eventCount(), 1u);
}

TEST(TelemetrySink, DetailTraceGating) {
  TraceWriter W;
  TelemetrySink S;
  S.Trace = &W;
  EXPECT_EQ(S.detailTrace(), nullptr);
  S.DetailEvents = true;
  EXPECT_EQ(S.detailTrace(), &W);
  S.Trace = nullptr;
  EXPECT_EQ(S.detailTrace(), nullptr);
}

TEST(JsonParse, Values) {
  exp::JsonValue V;
  std::string Err;
  ASSERT_TRUE(exp::jsonParse(" null ", V, Err));
  EXPECT_TRUE(V.isNull());
  ASSERT_TRUE(exp::jsonParse("true", V, Err));
  EXPECT_TRUE(V.BoolVal);
  ASSERT_TRUE(exp::jsonParse("-12.5e2", V, Err));
  EXPECT_DOUBLE_EQ(V.Num, -1250.0);
  ASSERT_TRUE(exp::jsonParse("\"a\\n\\u0041\\ud83d\\ude00\"", V, Err));
  EXPECT_EQ(V.Str, "a\nA\xf0\x9f\x98\x80");
  ASSERT_TRUE(exp::jsonParse("[1, [2], {\"k\": 3}]", V, Err));
  ASSERT_EQ(V.Elems.size(), 3u);
  EXPECT_EQ(V.Elems[2].find("k")->Num, 3.0);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  exp::JsonObjectWriter W;
  W.field("name", "a \"quoted\"\tvalue");
  W.fieldRaw("n", exp::jsonNumber(2.5));
  exp::JsonValue V;
  std::string Err;
  ASSERT_TRUE(exp::jsonParse(W.finish(), V, Err)) << Err;
  EXPECT_EQ(V.find("name")->Str, "a \"quoted\"\tvalue");
  EXPECT_EQ(V.find("n")->Num, 2.5);
}

TEST(JsonParse, RejectsMalformedInput) {
  exp::JsonValue V;
  std::string Err;
  for (const char *Bad :
       {"", "{", "[1,]", "{\"k\":}", "\"abc", "12 34", "{\"k\" 1}",
        "\"\\ud800\"", "nul", "01", "- 1", "[1]x"}) {
    EXPECT_FALSE(exp::jsonParse(Bad, V, Err)) << Bad;
    EXPECT_NE(Err.find("offset "), std::string::npos) << Bad;
  }
}
