# Accuracy gate for the sampled-simulation subsystem: the sample_error
# experiment compares sampled against full detailed runs on the Figure 13
# grid and prints a PASS/FAIL verdict (every cell's IPC and brr-overhead
# within the sampler's own 95% CI plus bias margin, sampled wall-clock
# <= 25% of full). CI fails unless the verdict is PASS.
#
# --scale 10 keeps the full-pipeline reference runs affordable (50k chars,
# ~1.5M insts per cell); --sample-period 50000 halves the default period so
# every cell gets ~16 detailed intervals — enough that the CI is meaningful
# on a stream this short — while keeping the sampled wall-clock well under
# the 25% budget.
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(JSON ${WORKDIR}/sample_error.json)

execute_process(COMMAND ${BENCH} --experiment sample_error --scale 10
                        --sample-period 50000
                        --threads 1 --json ${JSON}
                RESULT_VARIABLE RC
                OUTPUT_VARIABLE OUT
                ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
          "bor-bench --experiment sample_error failed (${RC}):\n${OUT}\n${ERR}")
endif()

file(READ ${JSON} CONTENT)
if(NOT CONTENT MATCHES "\"verdict\":\"PASS\"")
  message(FATAL_ERROR
          "sample_error verdict is not PASS:\n${OUT}")
endif()

message(STATUS "sample validation test passed")
