//===- tests/test_deterministic_brr.cpp - Hardware-counter brr tests ------===//

#include "core/DeterministicBrr.h"

#include <gtest/gtest.h>

using namespace bor;

// Property: the Section 4.1 hardware counter fires exactly every
// 2^(freq+1)-th evaluation, for every encodable frequency.
class HwCounterInterval : public ::testing::TestWithParam<unsigned> {};

TEST_P(HwCounterInterval, FiresExactlyEveryInterval) {
  unsigned Raw = GetParam();
  FreqCode F(Raw);
  uint64_t Interval = F.expectedInterval();
  HwCounterUnit U;

  uint64_t Budget = Interval * 5;
  uint64_t SinceLast = 0;
  uint64_t Fires = 0;
  for (uint64_t I = 0; I != Budget; ++I) {
    ++SinceLast;
    if (U.evaluate(F)) {
      EXPECT_EQ(SinceLast, Interval);
      SinceLast = 0;
      ++Fires;
    }
  }
  EXPECT_EQ(Fires, 5u);
}

INSTANTIATE_TEST_SUITE_P(AllFrequencies, HwCounterInterval,
                         ::testing::Range(0u, 12u),
                         [](const auto &Info) {
                           return "freq" + std::to_string(Info.param);
                         });

TEST(HwCounterUnit, PhaseShiftsFirstFire) {
  FreqCode F(1); // interval 4
  HwCounterUnit U(/*Phase=*/2);
  // Counter starts at 2: fires after 2 more evaluations, then every 4.
  EXPECT_FALSE(U.evaluate(F));
  EXPECT_TRUE(U.evaluate(F));
  EXPECT_FALSE(U.evaluate(F));
  EXPECT_FALSE(U.evaluate(F));
  EXPECT_FALSE(U.evaluate(F));
  EXPECT_TRUE(U.evaluate(F));
}

TEST(HwCounterUnit, EvaluationCountIncludesPhase) {
  HwCounterUnit U(7);
  EXPECT_EQ(U.evaluationCount(), 7u);
  U.evaluate(FreqCode(0));
  EXPECT_EQ(U.evaluationCount(), 8u);
}

TEST(HwCounterUnit, ResonatesWithMatchingPeriod) {
  // The footnote-7 pathology reproduced in miniature: a loop invoking two
  // methods alternately, sampled with an even interval, only ever samples
  // one of them.
  FreqCode F(1); // interval 4 (even)
  HwCounterUnit U;
  uint64_t SampledA = 0, SampledB = 0;
  for (int Iter = 0; Iter != 1000; ++Iter) {
    if (U.evaluate(F))
      ++SampledA; // method A occupies even positions
    if (U.evaluate(F))
      ++SampledB; // method B occupies odd positions
  }
  // All samples land on one phase.
  EXPECT_EQ(SampledA + SampledB, 500u);
  EXPECT_TRUE(SampledA == 0 || SampledB == 0)
      << "A=" << SampledA << " B=" << SampledB;
}
