//===- tests/test_checkpoint.cpp - Machine checkpoint tests ---------------===//
//
// The checkpoint contract: save -> restore -> continue is indistinguishable
// from never having stopped. That covers architectural state bit-for-bit
// (registers, PC, every memory page) AND the brr decider's internal state,
// since the resumed run must reproduce the exact outcome sequence the
// uninterrupted run would have produced.
//
//===----------------------------------------------------------------------===//

#include "sample/Checkpoint.h"

#include "isa/Serialize.h"
#include "sim/Interpreter.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

using namespace bor;

namespace {

MicrobenchProgram brrProgram(size_t Chars = 4000) {
  MicrobenchConfig C;
  C.Text.NumChars = Chars;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 16; // frequent brr -> LFSR state matters
  return buildMicrobench(C);
}

/// Non-zero memory pages keyed by base address (zero pages are
/// indistinguishable from unmapped ones by construction).
std::map<uint64_t, std::vector<uint8_t>> nonZeroPages(const Machine &M) {
  std::map<uint64_t, std::vector<uint8_t>> Pages;
  M.memory().forEachPage([&](uint64_t Base, const uint8_t *Data) {
    std::vector<uint8_t> Bytes(Data, Data + Memory::pageBytes());
    for (uint8_t B : Bytes)
      if (B != 0) {
        Pages.emplace(Base, std::move(Bytes));
        return;
      }
  });
  return Pages;
}

void expectSameArchState(const Machine &A, const Machine &B) {
  EXPECT_EQ(A.pc(), B.pc());
  EXPECT_EQ(A.halted(), B.halted());
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(A.readReg(R), B.readReg(R)) << "register " << R;
  EXPECT_EQ(nonZeroPages(A), nonZeroPages(B));
}

} // namespace

TEST(Checkpoint, EncodeDecodeRoundTripsBitExactly) {
  MicrobenchProgram MB = brrProgram();
  Machine M;
  BrrUnitDecider D;
  Interpreter I(MB.Prog, M, D);
  I.run(5000, /*RequireHalt=*/false);

  MachineCheckpoint C = captureCheckpoint(M, D, I.stats().Insts);
  MachineCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(decodeCheckpoint(encodeCheckpoint(C), Back, Err)) << Err;

  EXPECT_EQ(Back.Pc, C.Pc);
  EXPECT_EQ(Back.Halted, C.Halted);
  EXPECT_EQ(Back.InstsRetired, C.InstsRetired);
  EXPECT_EQ(Back.Regs, C.Regs);
  EXPECT_EQ(Back.DeciderKind, C.DeciderKind);
  EXPECT_EQ(Back.DeciderWords, C.DeciderWords);
  ASSERT_EQ(Back.Pages.size(), C.Pages.size());
  for (size_t I2 = 0; I2 != C.Pages.size(); ++I2) {
    EXPECT_EQ(Back.Pages[I2].Base, C.Pages[I2].Base);
    EXPECT_EQ(Back.Pages[I2].Data, C.Pages[I2].Data);
  }
}

TEST(Checkpoint, RestoreReproducesArchitecturalState) {
  MicrobenchProgram MB = brrProgram();
  Machine M;
  BrrUnitDecider D;
  Interpreter I(MB.Prog, M, D);
  I.run(5000, /*RequireHalt=*/false);
  MachineCheckpoint C = captureCheckpoint(M, D, I.stats().Insts);

  Machine M2;
  BrrUnitDecider D2;
  // Pollute the target machine first: restore must fully overwrite.
  M2.writeReg(5, 0xdeadbeef);
  M2.memory().writeU64(1 << 20, 42);
  std::string Err;
  ASSERT_TRUE(restoreCheckpoint(C, M2, D2, Err)) << Err;

  expectSameArchState(M, M2);
  EXPECT_EQ(D2.checkpointWords(), D.checkpointWords());
}

TEST(Checkpoint, ResumedRunMatchesUninterruptedRun) {
  MicrobenchProgram MB = brrProgram();

  // Uninterrupted reference run.
  Machine Ref;
  BrrUnitDecider RefD;
  Interpreter RefI(MB.Prog, Ref, RefD);
  RunStats RefStats = RefI.run(1ULL << 24);
  ASSERT_TRUE(RefStats.Halted);

  // Checkpointed run: stop mid-stream, snapshot, restore into entirely
  // fresh objects (decider seeded differently so only the restored state
  // can explain agreement), continue to completion.
  Machine A;
  BrrUnitDecider DA;
  Interpreter IA(MB.Prog, A, DA);
  IA.run(7777, /*RequireHalt=*/false);
  MachineCheckpoint C = captureCheckpoint(A, DA, IA.stats().Insts);

  Machine B;
  BrrUnitConfig OtherSeed;
  OtherSeed.Seed = 0x1234567;
  BrrUnitDecider DB(OtherSeed);
  std::string Err;
  ASSERT_TRUE(restoreCheckpoint(C, B, DB, Err)) << Err;
  Interpreter IB(MB.Prog, B, DB, /*LoadImage=*/false);
  RunStats Tail = IB.run(1ULL << 24);
  ASSERT_TRUE(Tail.Halted);

  expectSameArchState(Ref, B);
  EXPECT_EQ(C.InstsRetired + Tail.Insts, RefStats.Insts);
  EXPECT_EQ(Ref.memory().readU64(MB.Prog.symbol("results")),
            B.memory().readU64(MB.Prog.symbol("results")));
  // The LFSR sequence continued exactly where the original left off.
  EXPECT_EQ(DB.checkpointWords(), RefD.checkpointWords());
}

TEST(Checkpoint, FileRoundTripThroughBorbContainer) {
  MicrobenchProgram MB = brrProgram();
  Machine M;
  BrrUnitDecider D;
  Interpreter I(MB.Prog, M, D);
  I.run(3000, /*RequireHalt=*/false);
  MachineCheckpoint C = captureCheckpoint(M, D, I.stats().Insts);

  std::string Path = testing::TempDir() + "ckpt_roundtrip.borb";
  ASSERT_TRUE(saveCheckpointFile(MB.Prog, C, Path));

  Program P;
  MachineCheckpoint Back;
  std::string Err;
  ASSERT_TRUE(loadCheckpointFile(Path, P, Back, Err)) << Err;
  EXPECT_EQ(P.numInsts(), MB.Prog.numInsts());
  EXPECT_EQ(Back.Pc, C.Pc);
  EXPECT_EQ(Back.InstsRetired, C.InstsRetired);
  EXPECT_EQ(Back.DeciderWords, C.DeciderWords);

  // And the image still loads as a plain program through the ordinary
  // path, checkpoint section and all.
  LoadResult R = loadProgramFile(Path);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_NE(R.findSection("CKPT"), nullptr);
  std::remove(Path.c_str());
}

TEST(Checkpoint, RejectsDeciderKindMismatch) {
  Machine M;
  HwCounterDecider Counter;
  MachineCheckpoint C = captureCheckpoint(M, Counter, 0);

  Machine M2;
  BrrUnitDecider Lfsr;
  std::string Err;
  EXPECT_FALSE(restoreCheckpoint(C, M2, Lfsr, Err));
  EXPECT_NE(Err.find("counter"), std::string::npos);
  EXPECT_NE(Err.find("lfsr"), std::string::npos);
}

TEST(Checkpoint, RejectsCorruptPayloads) {
  Machine M;
  BrrUnitDecider D;
  MachineCheckpoint C = captureCheckpoint(M, D, 0);
  std::vector<uint8_t> Bytes = encodeCheckpoint(C);

  MachineCheckpoint Out;
  std::string Err;
  // Truncation anywhere must fail cleanly, never crash.
  for (size_t Keep : {size_t(0), size_t(3), size_t(10), Bytes.size() - 1}) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Keep);
    EXPECT_FALSE(decodeCheckpoint(Cut, Out, Err)) << "kept " << Keep;
  }
  // Trailing garbage is rejected too.
  std::vector<uint8_t> Long = Bytes;
  Long.push_back(0);
  EXPECT_FALSE(decodeCheckpoint(Long, Out, Err));
  // Unsupported version.
  std::vector<uint8_t> BadVer = Bytes;
  BadVer[0] = 0xff;
  EXPECT_FALSE(decodeCheckpoint(BadVer, Out, Err));
  EXPECT_NE(Err.find("version"), std::string::npos);
}

TEST(Checkpoint, SkipsAllZeroPages) {
  Machine M;
  M.memory().writeU64(0, 7);            // non-zero page at 0
  M.memory().writeU64(1 << 20, 0);      // touched but all-zero page
  NeverTakenDecider D;
  MachineCheckpoint C = captureCheckpoint(M, D, 0);
  ASSERT_EQ(C.Pages.size(), 1u);
  EXPECT_EQ(C.Pages[0].Base, 0u);
  EXPECT_EQ(C.DeciderKind, "stateless");
}
