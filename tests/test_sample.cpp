//===- tests/test_sample.cpp - Sampled-simulation subsystem tests ---------===//
//
// Two properties carry the subsystem:
//
//  1. Architectural identity: a sampled run executes every instruction of
//     the stream exactly once through one Machine and one decider, so its
//     final architectural state is bit-identical to a plain functional
//     run's — sampling changes what is *timed*, never what is *executed*.
//
//  2. Statistical sanity: the per-interval estimates (IPC, markers, CIs)
//     track the full detailed model within the bounds the sampler itself
//     reports.
//
//===----------------------------------------------------------------------===//

#include "sample/SampledRunner.h"

#include "sample/Warmup.h"
#include "sim/Interpreter.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace bor;

namespace {

MicrobenchProgram instrumentedProgram(size_t Chars,
                                      SamplingFramework F =
                                          SamplingFramework::BrrBased) {
  MicrobenchConfig C;
  C.Text.NumChars = Chars;
  C.Instr.Framework = F;
  C.Instr.Interval = 16;
  return buildMicrobench(C);
}

std::map<uint64_t, std::vector<uint8_t>> nonZeroPages(const Machine &M) {
  std::map<uint64_t, std::vector<uint8_t>> Pages;
  M.memory().forEachPage([&](uint64_t Base, const uint8_t *Data) {
    std::vector<uint8_t> Bytes(Data, Data + Memory::pageBytes());
    for (uint8_t B : Bytes)
      if (B != 0) {
        Pages.emplace(Base, std::move(Bytes));
        return;
      }
  });
  return Pages;
}

/// A plan small enough that even smoke-scale streams cut many periods.
SamplingPlan tinyPlan() {
  SamplingPlan Plan;
  Plan.PeriodInsts = 4000;
  Plan.WarmupInsts = 800;
  Plan.MeasureInsts = 500;
  Plan.DetailedWarmupInsts = 100;
  return Plan;
}

} // namespace

TEST(SamplingPlan, Validity) {
  SamplingPlan P;
  EXPECT_TRUE(P.valid()); // defaults must be usable
  EXPECT_GT(P.detailedFraction(), 0.0);
  EXPECT_LT(P.detailedFraction(), 1.0);

  P.MeasureInsts = 0;
  EXPECT_FALSE(P.valid());
  P = SamplingPlan();
  P.PeriodInsts = 0;
  EXPECT_FALSE(P.valid());
  P = SamplingPlan();
  P.WarmupInsts = P.PeriodInsts; // warm + measure overflow the period
  EXPECT_FALSE(P.valid());
}

TEST(SampledRunner, ArchStateIdenticalToFunctionalRun) {
  MicrobenchProgram MB = instrumentedProgram(3000);

  Machine Ref;
  BrrUnitDecider RefD;
  Interpreter RefI(MB.Prog, Ref, RefD);
  RunStats RefStats = RefI.run(1ULL << 24);
  ASSERT_TRUE(RefStats.Halted);

  Machine M;
  BrrUnitDecider D;
  Interpreter Loader(MB.Prog, M, D); // loads the image, executes nothing
  SampledResult SR =
      runSampled(MB.Prog, M, tinyPlan(), PipelineConfig(), D);

  EXPECT_TRUE(SR.Halted);
  EXPECT_EQ(SR.TotalInsts, RefStats.Insts);
  EXPECT_EQ(M.pc(), Ref.pc());
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(M.readReg(R), Ref.readReg(R)) << "register " << R;
  EXPECT_EQ(nonZeroPages(M), nonZeroPages(Ref));
  // Same decider trajectory: the LFSR consumed exactly the same brrs.
  EXPECT_EQ(D.checkpointWords(), RefD.checkpointWords());
}

TEST(SampledRunner, PhaseAccountingAddsUp) {
  MicrobenchProgram MB = instrumentedProgram(3000);
  SampledResult SR = runSampled(MB.Prog, tinyPlan());

  ASSERT_TRUE(SR.Halted);
  ASSERT_GE(SR.NumIntervals, 2u);
  EXPECT_EQ(SR.WarmedInsts + SR.PrerollInsts + SR.MeasuredInsts +
                SR.FastForwardInsts,
            SR.TotalInsts);
  EXPECT_EQ(SR.Detailed.Insts, SR.MeasuredInsts);
  EXPECT_EQ(SR.IpcSamples.count(), SR.NumIntervals);
  EXPECT_GT(SR.ipcMean(), 0.0);
  EXPECT_GE(SR.ipcCi95(), 0.0);
}

TEST(SampledRunner, ShortStreamStillYieldsOneInterval) {
  // The detailed interval sits at the head of each period, so a stream
  // shorter than one period still produces a measurement.
  MicrobenchProgram MB = instrumentedProgram(60);
  SamplingPlan Plan;
  Plan.PeriodInsts = 1u << 20;
  Plan.WarmupInsts = 100;
  Plan.MeasureInsts = 2000;
  Plan.DetailedWarmupInsts = 50;
  SampledResult SR = runSampled(MB.Prog, Plan);
  EXPECT_TRUE(SR.Halted);
  EXPECT_EQ(SR.NumIntervals, 1u);
  EXPECT_GT(SR.ipcMean(), 0.0);
}

TEST(SampledRunner, MarkersDelimitTheRoi) {
  MicrobenchProgram MB = instrumentedProgram(3000);
  SampledResult SR = runSampled(MB.Prog, tinyPlan());

  ASSERT_EQ(SR.Markers.size(), 2u);
  EXPECT_EQ(SR.Markers[0].Id, MarkerRoiBegin);
  EXPECT_EQ(SR.Markers[1].Id, MarkerRoiEnd);
  EXPECT_GT(SR.Markers[1].GlobalInst, SR.Markers[0].GlobalInst);
  EXPECT_LE(SR.Markers[1].GlobalInst, SR.TotalInsts);
  EXPECT_GT(SR.roiInsts(), 0u);
  EXPECT_GT(SR.estimatedCycles(SR.roiInsts()), 0.0);

  // Marker positions are a property of the stream, not of the sampling
  // schedule: a full functional run sees them at the same indices.
  Machine M;
  BrrUnitDecider D;
  Interpreter I(MB.Prog, M, D);
  uint64_t Inst = 0;
  std::vector<uint64_t> FunctionalMarkers;
  while (!I.halted()) {
    ExecRecord R = I.step();
    ++Inst;
    if (R.I.Op == Opcode::Marker)
      FunctionalMarkers.push_back(Inst);
  }
  ASSERT_EQ(FunctionalMarkers.size(), 2u);
  EXPECT_EQ(SR.Markers[0].GlobalInst, FunctionalMarkers[0]);
  EXPECT_EQ(SR.Markers[1].GlobalInst, FunctionalMarkers[1]);
}

TEST(SampledRunner, IpcTracksFullDetailedRun) {
  MicrobenchProgram MB = instrumentedProgram(4000);

  Pipeline Pipe(MB.Prog, PipelineConfig());
  RunResult Full = Pipe.run(1ULL << 24);
  ASSERT_TRUE(Pipe.machine().halted());
  double FullIpc = Full.Stats.ipc();

  SampledResult SR = runSampled(MB.Prog, tinyPlan());
  ASSERT_GE(SR.NumIntervals, 2u);

  // Deterministic workload and shared decider seed: the estimate must land
  // within the reported CI plus a 10% systematic allowance.
  double Tol = SR.ipcCi95() + 0.10 * FullIpc;
  EXPECT_NEAR(SR.ipcMean(), FullIpc, Tol)
      << "intervals=" << SR.NumIntervals << " ci=" << SR.ipcCi95();
}

TEST(SampledRunner, RespectsInstructionBudget) {
  MicrobenchProgram MB = instrumentedProgram(3000);
  SampledResult SR =
      runSampled(MB.Prog, tinyPlan(), PipelineConfig(), nullptr,
                 /*MaxInsts=*/5000);
  EXPECT_FALSE(SR.Halted);
  EXPECT_EQ(SR.TotalInsts, 5000u);
}

TEST(FunctionalWarmer, WarmedPredictorsReduceColdMisses) {
  // Warm a microarch bundle over the first part of the stream, then run a
  // detailed interval attached to it; compare against the same interval on
  // a stone-cold bundle. Warming must not hurt and, on this branchy
  // workload, should strictly reduce I-cache misses.
  MicrobenchProgram MB = instrumentedProgram(3000);
  PipelineConfig Config;

  auto RunInterval = [&](bool Warm) {
    Machine M;
    BrrUnitDecider D;
    Interpreter Fn(MB.Prog, M, D);
    MicroarchState Uarch(Config);
    if (Warm) {
      FunctionalWarmer Warmer(Uarch, Config);
      Warmer.warm(Fn, 4000);
    } else {
      Fn.run(4000, /*RequireHalt=*/false);
    }
    Pipeline Pipe(MB.Prog, M, Uarch, Config, D);
    return Pipe.run(2000, /*RequireHalt=*/false).Stats;
  };

  PipelineStats Cold = RunInterval(false);
  PipelineStats Warmed = RunInterval(true);
  ASSERT_EQ(Cold.Insts, Warmed.Insts); // identical instruction window
  EXPECT_LT(Warmed.FetchIcacheStallCycles, Cold.FetchIcacheStallCycles);
  EXPECT_LE(Warmed.Cycles, Cold.Cycles);
}
