//===- tests/test_ras.cpp - Return address stack tests --------------------===//

#include "uarch/ReturnAddressStack.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(Ras, LifoOrder) {
  ReturnAddressStack R(8);
  R.push(0x10);
  R.push(0x20);
  R.push(0x30);
  EXPECT_EQ(R.pop(), 0x30u);
  EXPECT_EQ(R.pop(), 0x20u);
  EXPECT_EQ(R.pop(), 0x10u);
}

TEST(Ras, UnderflowReturnsZero) {
  ReturnAddressStack R(4);
  EXPECT_EQ(R.pop(), 0u);
  R.push(0x10);
  R.pop();
  EXPECT_EQ(R.pop(), 0u);
}

TEST(Ras, OverflowWrapsAndLosesOldest) {
  ReturnAddressStack R(4);
  for (uint64_t I = 1; I <= 6; ++I)
    R.push(I * 0x10);
  // Capacity 4: entries 3..6 survive; depth saturates.
  EXPECT_EQ(R.depth(), 4u);
  EXPECT_EQ(R.pop(), 0x60u);
  EXPECT_EQ(R.pop(), 0x50u);
  EXPECT_EQ(R.pop(), 0x40u);
  EXPECT_EQ(R.pop(), 0x30u);
  EXPECT_EQ(R.pop(), 0u); // oldest two were overwritten
}

TEST(Ras, DepthTracksPushPop) {
  ReturnAddressStack R(8);
  EXPECT_EQ(R.depth(), 0u);
  R.push(1);
  R.push(2);
  EXPECT_EQ(R.depth(), 2u);
  R.pop();
  EXPECT_EQ(R.depth(), 1u);
}

TEST(Ras, PaperDefaultCapacity) {
  ReturnAddressStack R;
  EXPECT_EQ(R.capacity(), 32u); // Section 5.1: 32-entry RAS
}

TEST(Ras, InterleavedCallReturnPattern) {
  ReturnAddressStack R(32);
  // Nested call chains behave like a real program's call stack.
  for (int Outer = 0; Outer != 100; ++Outer) {
    R.push(0x1000 + Outer);
    R.push(0x2000 + Outer);
    EXPECT_EQ(R.pop(), static_cast<uint64_t>(0x2000 + Outer));
    EXPECT_EQ(R.pop(), static_cast<uint64_t>(0x1000 + Outer));
  }
  EXPECT_EQ(R.depth(), 0u);
}
