//===- tests/test_pipeline.cpp - Timing model tests -----------------------===//

#include "uarch/Pipeline.h"

#include "isa/ProgramBuilder.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

/// A hot loop of \p Body instructions repeated \p Iters times; returns the
/// finished program. r2 is the loop counter.
Program loopProgram(uint64_t Iters,
                    const std::function<void(ProgramBuilder &)> &Body) {
  ProgramBuilder B;
  B.emitLoadConst(2, Iters);
  auto Loop = B.label();
  B.bind(Loop);
  Body(B);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  return B.finish();
}

PipelineStats timeProgram(const Program &P, BrrDecider *D = nullptr,
                          uint64_t MaxInsts = 20000000) {
  Pipeline Pipe(P, PipelineConfig(), D);
  return Pipe.run(MaxInsts).Stats;
}

} // namespace

TEST(Pipeline, IndependentAluLoopApproachesFetchWidth) {
  // 10 independent ALU ops + loop overhead per iteration; fetch (3-wide,
  // stopping at the taken loop branch) is the bottleneck.
  Program P = loopProgram(2000, [](ProgramBuilder &B) {
    for (uint8_t R = 4; R != 14; ++R)
      B.emit(Inst::add(R, 0, 0));
  });
  PipelineStats S = timeProgram(P);
  EXPECT_GT(S.ipc(), 2.0);
  EXPECT_LE(S.ipc(), 3.05);
}

TEST(Pipeline, DependencyChainLimitsIpcToOne) {
  Program P = loopProgram(2000, [](ProgramBuilder &B) {
    for (int I = 0; I != 10; ++I)
      B.emit(Inst::add(4, 4, 4)); // serial chain
  });
  PipelineStats S = timeProgram(P);
  EXPECT_LT(S.ipc(), 1.3);
  EXPECT_GT(S.ipc(), 0.8);
}

TEST(Pipeline, LoopBranchIsPredictedAfterWarmup) {
  Program P = loopProgram(5000, [](ProgramBuilder &B) {
    B.emit(Inst::add(4, 4, 4));
  });
  PipelineStats S = timeProgram(P);
  EXPECT_EQ(S.CondBranches, 5000u);
  EXPECT_LT(S.CondMispredicts, 50u);
}

TEST(Pipeline, L1LoadLatencyThrottlesPointerChase) {
  // A self-referential load chain: each iteration's load feeds the next
  // load's address. L1D-hit latency (2 cycles) must show in the IPC.
  ProgramBuilder B;
  uint64_t Cell = B.allocData(8, 8);
  B.initDataU64(Cell, Cell); // points at itself
  B.emitLoadConst(1, Cell);
  B.emitLoadConst(2, 20000);
  auto Loop = B.label();
  B.bind(Loop);
  B.emit(Inst::ld(1, 1, 0));
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  PipelineStats S = timeProgram(B.finish());
  // >= 2 cycles per iteration (3 insts): IPC well under the ALU loop's.
  EXPECT_LT(S.ipc(), 1.6);
}

TEST(Pipeline, ColdMemoryMissesAreExpensive) {
  // Walk 64 KiB of data with 64B stride: every load is a cold L1D+L2 miss.
  ProgramBuilder B;
  uint64_t Buf = B.allocData(64 * 1024, 64);
  B.emitLoadConst(1, Buf);
  B.emitLoadConst(2, 1024);
  auto Loop = B.label();
  B.bind(Loop);
  B.emit(Inst::ld(4, 1, 0));
  B.emit(Inst::add(5, 5, 4)); // consume the load
  B.emit(Inst::addi(1, 1, 64));
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  PipelineStats S = timeProgram(B.finish());
  // The 80-entry ROB bounds memory-level parallelism: each 80-instruction
  // window is held open for a full memory latency, so the 5K-instruction
  // run needs several thousand cycles where a hot loop would need ~2K.
  EXPECT_GT(S.Cycles, 6000u);
}

TEST(Pipeline, BackendMispredictPenaltyNearElevenCycles) {
  // Branch on pre-generated random bytes; both outcomes execute one add
  // before rejoining, so path lengths match and the cycle delta against an
  // always-not-taken twin isolates the misprediction penalty.
  auto Build = [](bool Random) {
    ProgramBuilder B;
    const uint64_t N = 20000;
    uint64_t Buf = B.allocData(N, 8);
    std::vector<uint8_t> Bytes(N, 0);
    if (Random) {
      Xoshiro256 Rng(77);
      for (auto &V : Bytes)
        V = Rng.nextBelow(2);
    }
    B.initDataBytes(Buf, Bytes);
    B.emitLoadConst(1, Buf);
    B.emitLoadConst(2, N);
    auto Loop = B.label();
    auto TakenPath = B.label();
    auto Join = B.label();
    B.bind(Loop);
    B.emit(Inst::ldb(5, 1, 0));
    B.emit(Inst::addi(1, 1, 1));
    B.emitBranch(Opcode::Bne, 5, 0, TakenPath);
    B.emit(Inst::add(7, 7, 5));
    B.emitJmp(Join);
    B.bind(TakenPath);
    B.emit(Inst::add(7, 7, 5));
    B.bind(Join);
    B.emit(Inst::addi(2, 2, -1));
    B.emitBranch(Opcode::Bne, 2, 0, Loop);
    B.emit(Inst::halt());
    return B.finish();
  };

  PipelineStats Biased = timeProgram(Build(false));
  PipelineStats Rand = timeProgram(Build(true));
  EXPECT_LT(Biased.CondMispredicts, 2000u);
  EXPECT_GT(Rand.CondMispredicts, 7000u); // ~ N/2 on the data branch
  double Penalty =
      static_cast<double>(Rand.Cycles - Biased.Cycles) /
      static_cast<double>(Rand.CondMispredicts - Biased.CondMispredicts);
  // Section 5.1: minimum back-end misprediction penalty of 11 cycles.
  EXPECT_GE(Penalty, 8.0);
  EXPECT_LE(Penalty, 15.0);
}

TEST(Pipeline, BrrNotTakenIsNearlyFree) {
  // Identical loops, one with a never-taken brr in the body. The brr
  // commits at decode: its only cost is a fetch/decode slot.
  auto Body = [](ProgramBuilder &B) {
    for (int I = 0; I != 6; ++I)
      B.emit(Inst::add(static_cast<uint8_t>(4 + I), 0, 0));
  };
  Program Plain = loopProgram(20000, Body);
  Program WithBrr = loopProgram(20000, [&](ProgramBuilder &B) {
    auto Skip = B.label();
    B.emitBrr(FreqCode(9), Skip);
    Body(B);
    B.bind(Skip);
  });

  NeverTakenDecider Never1, Never2;
  PipelineStats SPlain = timeProgram(Plain, &Never1);
  PipelineStats SBrr = timeProgram(WithBrr, &Never2);
  double ExtraPerIter =
      static_cast<double>(SBrr.Cycles - SPlain.Cycles) / 20000.0;
  EXPECT_LT(ExtraPerIter, 1.0);
  EXPECT_EQ(SBrr.BrrExecuted, 20000u);
  EXPECT_EQ(SBrr.BrrTaken, 0u);
}

TEST(Pipeline, BrrTakenPaysShortFrontEndFlush) {
  // brr taken every time vs never: the delta per taken brr is the decode-
  // resolved front-end flush (~5 cycles), far below the back-end penalty.
  Program P = [] {
    ProgramBuilder B;
    B.emitLoadConst(2, 20000);
    auto Loop = B.label();
    auto Target = B.label();
    auto Back = B.label();
    B.bind(Loop);
    B.emitBrr(FreqCode(0), Target);
    B.bind(Back);
    B.emit(Inst::addi(2, 2, -1));
    B.emitBranch(Opcode::Bne, 2, 0, Loop);
    B.emit(Inst::halt());
    B.bind(Target);
    B.emitJmp(Back);
    return B.finish();
  }();

  AlwaysTakenDecider Always;
  NeverTakenDecider Never;
  PipelineStats STaken = timeProgram(P, &Always);
  PipelineStats SNever = timeProgram(P, &Never);
  double PerTaken =
      static_cast<double>(STaken.Cycles - SNever.Cycles) / 20000.0;
  EXPECT_GE(PerTaken, 3.0);
  EXPECT_LE(PerTaken, 9.0);
  EXPECT_EQ(STaken.BrrTaken, 20000u);
  EXPECT_GT(STaken.FrontendFlushCycles, 0u);
  EXPECT_EQ(SNever.FrontendFlushCycles, 0u);
}

TEST(Pipeline, BrrNeverTouchesPredictorOrBtb) {
  Program P = loopProgram(5000, [](ProgramBuilder &B) {
    auto Skip = B.label();
    B.emitBrr(FreqCode(1), Skip);
    B.bind(Skip);
    B.emit(Inst::add(4, 4, 4));
  });
  BrrUnitDecider D;
  Pipeline Pipe(P, PipelineConfig(), &D);
  PipelineStats S = Pipe.run(20000000).Stats;
  // Only the loop branch predicts/updates; the 5000 brrs are invisible.
  EXPECT_EQ(Pipe.predictor().stats().Predictions, S.CondBranches);
  // BTB entries: loop branch (+ nothing from brr). Taken brrs would have
  // inserted targets if they polluted the BTB.
  EXPECT_LE(Pipe.btb().stats().Inserts, S.CondBranches + 2);
  EXPECT_GT(S.BrrTaken, 1000u); // 25% of 5000 plus slack
}

TEST(Pipeline, BrrAsBackendBranchAblationIsSlower) {
  // The ablation of DESIGN.md: forcing brr through the back-end branch
  // path (predictor, BTB, execute-time resolution) must cost more than the
  // decode-resolved design at a high taken rate.
  Program P = loopProgram(20000, [](ProgramBuilder &B) {
    auto Skip = B.label();
    B.emitBrr(FreqCode(0), Skip); // 50%: heavy misprediction pressure
    B.bind(Skip);
    B.emit(Inst::add(4, 4, 4));
  });

  PipelineConfig Fast;
  PipelineConfig Ablated;
  Ablated.BrrAsBackendBranch = true;

  BrrUnitDecider D1, D2;
  Pipeline PipeFast(P, Fast, &D1);
  Pipeline PipeAblated(P, Ablated, &D2);
  uint64_t FastCycles = PipeFast.run(20000000).Stats.Cycles;
  uint64_t AblatedCycles = PipeAblated.run(20000000).Stats.Cycles;
  EXPECT_GT(AblatedCycles, FastCycles + FastCycles / 10);
}

TEST(Pipeline, MarkersRecordRegionOfInterest) {
  ProgramBuilder B;
  B.emit(Inst::marker(1));
  for (int I = 0; I != 50; ++I)
    B.emit(Inst::add(4, 4, 4));
  B.emit(Inst::marker(2));
  B.emit(Inst::halt());
  Program P = B.finish();
  Pipeline Pipe(P, PipelineConfig());
  const std::vector<MarkerEvent> Events = Pipe.run(1000).Markers;
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Id, 1);
  EXPECT_EQ(Events[1].Id, 2);
  EXPECT_GT(Events[1].CommitCycle, Events[0].CommitCycle);
  EXPECT_EQ(Events[1].InstsRetired - Events[0].InstsRetired, 51u);
}

TEST(Pipeline, ReturnsPredictViaRas) {
  // Call/return pairs in a loop: after warmup, returns hit in the RAS and
  // indirect mispredictions stay rare.
  ProgramBuilder B;
  B.emitLoadConst(2, 3000);
  auto Loop = B.label();
  auto Func = B.label();
  B.bind(Loop);
  B.emitJal(RegLr, Func);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  B.bind(Func);
  B.emit(Inst::add(4, 4, 4));
  B.emit(Inst::ret());

  PipelineStats S = timeProgram(B.finish());
  EXPECT_EQ(S.IndirectBranches, 3000u);
  EXPECT_LT(S.IndirectMispredicts, 30u);
}

TEST(Pipeline, IcacheStallsOnHugeCodeFootprint) {
  // A straight-line block much larger than the 32KB L1I, executed twice:
  // the second pass still misses (capacity) and fetch stalls accumulate.
  ProgramBuilder B;
  B.emitLoadConst(2, 2);
  auto Loop = B.label();
  B.bind(Loop);
  for (int I = 0; I != 20000; ++I) // 80 KB of code
    B.emit(Inst::add(4, 4, 4));
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  PipelineStats S = timeProgram(B.finish());
  EXPECT_GT(S.FetchIcacheStallCycles, 10000u);
}

TEST(Pipeline, RobLimitsInflightMemoryMisses) {
  PipelineConfig Small;
  Small.RobEntries = 8;
  PipelineConfig Big;
  Big.RobEntries = 80;

  auto Build = [] {
    ProgramBuilder B;
    uint64_t Buf = B.allocData(256 * 1024, 64);
    B.emitLoadConst(1, Buf);
    B.emitLoadConst(2, 2000);
    auto Loop = B.label();
    B.bind(Loop);
    B.emit(Inst::ld(4, 1, 0)); // independent misses
    B.emit(Inst::ld(5, 1, 64));
    B.emit(Inst::addi(1, 1, 128));
    B.emit(Inst::addi(2, 2, -1));
    B.emitBranch(Opcode::Bne, 2, 0, Loop);
    B.emit(Inst::halt());
    return B.finish();
  };

  Program ProgSmall = Build();
  Program ProgBig = Build();
  Pipeline PSmall(ProgSmall, Small);
  Pipeline PBig(ProgBig, Big);
  uint64_t CSmall = PSmall.run(20000000).Stats.Cycles;
  uint64_t CBig = PBig.run(20000000).Stats.Cycles;
  EXPECT_GT(CSmall, CBig) << "a tiny ROB must hurt memory-level parallelism";
}

TEST(Pipeline, StatsCyclesNonZeroAndInstsExact) {
  Program P = loopProgram(10, [](ProgramBuilder &B) {
    B.emit(Inst::nop());
  });
  PipelineStats S = timeProgram(P);
  // emitLoadConst(2, 10) = 1 inst; 10 iters x 3 insts; halt.
  EXPECT_EQ(S.Insts, 1 + 10 * 3 + 1u);
  EXPECT_GT(S.Cycles, 10u);
}

TEST(Pipeline, PerfectPredictionRemovesBranchCosts) {
  Program P = loopProgram(10000, [](ProgramBuilder &B) {
    auto Skip = B.label();
    B.emitBrr(FreqCode(0), Skip); // 50%: expensive without the oracle
    B.bind(Skip);
    B.emit(Inst::add(4, 4, 4));
  });

  PipelineConfig Oracle;
  Oracle.PerfectBranchPrediction = true;

  BrrUnitDecider D1, D2;
  Pipeline Real(P, PipelineConfig(), &D1);
  Pipeline Perfect(P, Oracle, &D2);
  PipelineStats SReal = Real.run(20000000).Stats;
  PipelineStats SPerfect = Perfect.run(20000000).Stats;

  EXPECT_LT(SPerfect.Cycles, SReal.Cycles);
  EXPECT_EQ(SPerfect.CondMispredicts, 0u);
  EXPECT_EQ(SPerfect.FrontendFlushCycles, 0u);
  EXPECT_EQ(SPerfect.BackendFlushCycles, 0u);
  // Control instructions are still counted.
  EXPECT_EQ(SPerfect.CondBranches, 10000u);
  EXPECT_EQ(SPerfect.BrrExecuted, 10000u);
}

TEST(Pipeline, PerfectPredictionSameArchitecturalWork) {
  Program P = loopProgram(1000, [](ProgramBuilder &B) {
    B.emit(Inst::add(4, 4, 4));
  });
  PipelineConfig Oracle;
  Oracle.PerfectBranchPrediction = true;
  Pipeline Perfect(P, Oracle);
  PipelineStats S = Perfect.run(20000000).Stats;
  EXPECT_EQ(S.Insts, 1 + 1000 * 3 + 1u);
}

TEST(Pipeline, DescribeStatsMentionsKeyFields) {
  Program P = loopProgram(100, [](ProgramBuilder &B) {
    auto Skip = B.label();
    B.emitBrr(FreqCode(2), Skip);
    B.bind(Skip);
  });
  Pipeline Pipe(P, PipelineConfig());
  PipelineStats S = Pipe.run(1000000).Stats;
  std::string Text = describeStats(S);
  EXPECT_NE(Text.find("cycles"), std::string::npos);
  EXPECT_NE(Text.find("IPC"), std::string::npos);
  EXPECT_NE(Text.find("brr executed"), std::string::npos);
  EXPECT_NE(Text.find("100"), std::string::npos);
}
