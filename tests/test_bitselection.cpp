//===- tests/test_bitselection.cpp - AND-input selection tests ------------===//

#include "core/BitSelection.h"

#include <gtest/gtest.h>

#include <set>

using namespace bor;

TEST(BitSelection, ContiguousIsPrefix) {
  for (unsigned K = 1; K <= 16; ++K) {
    std::vector<unsigned> Bits =
        selectAndBits(BitSelectPolicy::Contiguous, K, 20);
    ASSERT_EQ(Bits.size(), K);
    for (unsigned I = 0; I != K; ++I)
      EXPECT_EQ(Bits[I], I);
  }
}

TEST(BitSelection, SpacedMatchesPaperExample) {
  // Section 3.3: "selecting bits 0, 2, 5, and 9 to compute a 6.25%
  // probability" (6.25% = 4 random bits).
  std::vector<unsigned> Bits = selectAndBits(BitSelectPolicy::Spaced, 4, 20);
  EXPECT_EQ(Bits, (std::vector<unsigned>{0, 2, 5, 9}));
}

TEST(BitSelection, SpacedSingleBitIsBitZero) {
  EXPECT_EQ(selectAndBits(BitSelectPolicy::Spaced, 1, 20),
            (std::vector<unsigned>{0}));
}

struct SelectionCase {
  BitSelectPolicy Policy;
  unsigned NumBits;
  unsigned Width;
};

class BitSelectionProperty : public ::testing::TestWithParam<SelectionCase> {
};

TEST_P(BitSelectionProperty, DistinctSortedInRange) {
  const SelectionCase &C = GetParam();
  std::vector<unsigned> Bits = selectAndBits(C.Policy, C.NumBits, C.Width);
  ASSERT_EQ(Bits.size(), C.NumBits);
  std::set<unsigned> Unique(Bits.begin(), Bits.end());
  EXPECT_EQ(Unique.size(), C.NumBits) << "duplicate bit selected";
  for (unsigned B : Bits)
    EXPECT_LT(B, C.Width);
  for (size_t I = 1; I < Bits.size(); ++I)
    EXPECT_LT(Bits[I - 1], Bits[I]) << "not sorted";
}

TEST_P(BitSelectionProperty, MaskMatchesBits) {
  const SelectionCase &C = GetParam();
  uint64_t Mask = selectAndMask(C.Policy, C.NumBits, C.Width);
  std::vector<unsigned> Bits = selectAndBits(C.Policy, C.NumBits, C.Width);
  uint64_t Expected = 0;
  for (unsigned B : Bits)
    Expected |= 1ULL << B;
  EXPECT_EQ(Mask, Expected);
}

static std::vector<SelectionCase> allCases() {
  std::vector<SelectionCase> Cases;
  for (BitSelectPolicy P :
       {BitSelectPolicy::Contiguous, BitSelectPolicy::Spaced})
    for (unsigned Width : {16u, 20u, 32u})
      for (unsigned K = 1; K <= 16; ++K)
        Cases.push_back({P, K, Width});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitSelectionProperty, ::testing::ValuesIn(allCases()),
    [](const auto &Info) {
      const SelectionCase &C = Info.param;
      return std::string(bitSelectPolicyName(C.Policy)) + "_k" +
             std::to_string(C.NumBits) + "_w" + std::to_string(C.Width);
    });

TEST(BitSelection, SixteenBitsInSixteenWideUsesAll) {
  std::vector<unsigned> Bits =
      selectAndBits(BitSelectPolicy::Spaced, 16, 16);
  for (unsigned I = 0; I != 16; ++I)
    EXPECT_EQ(Bits[I], I);
}

TEST(BitSelection, PolicyNames) {
  EXPECT_STREQ(bitSelectPolicyName(BitSelectPolicy::Contiguous),
               "contiguous");
  EXPECT_STREQ(bitSelectPolicyName(BitSelectPolicy::Spaced), "spaced");
}
