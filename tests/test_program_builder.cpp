//===- tests/test_program_builder.cpp - Assembler/builder tests -----------===//

#include "isa/ProgramBuilder.h"

#include "sim/Interpreter.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(ProgramBuilder, BackwardBranchOffset) {
  ProgramBuilder B;
  auto Top = B.label();
  B.bind(Top);
  B.emit(Inst::nop());          // 0
  B.emit(Inst::nop());          // 1
  B.emitBranch(Opcode::Beq, 0, 0, Top); // 2 -> offset -2
  Program P = B.finish();
  EXPECT_EQ(P.at(2).Imm, -2);
}

TEST(ProgramBuilder, ForwardBranchOffset) {
  ProgramBuilder B;
  auto Skip = B.label();
  B.emitBranch(Opcode::Bne, 1, 2, Skip); // 0
  B.emit(Inst::nop());                   // 1
  B.emit(Inst::nop());                   // 2
  B.bind(Skip);                          // 3
  B.emit(Inst::halt());
  Program P = B.finish();
  EXPECT_EQ(P.at(0).Imm, 3);
}

TEST(ProgramBuilder, BrrAndJumpFixups) {
  ProgramBuilder B;
  auto Target = B.label();
  B.emitBrr(FreqCode(4), Target); // 0
  B.emitJmp(Target);              // 1
  B.emitJal(31, Target);          // 2
  B.bind(Target);                 // 3
  B.emit(Inst::halt());
  Program P = B.finish();
  EXPECT_EQ(P.at(0).Imm, 3);
  EXPECT_EQ(P.at(0).Freq, 4);
  EXPECT_EQ(P.at(1).Imm, 2);
  EXPECT_EQ(P.at(2).Imm, 1);
}

TEST(ProgramBuilder, BranchToSelfIsZeroOffset) {
  ProgramBuilder B;
  auto Self = B.label();
  B.bind(Self);
  B.emitJmp(Self);
  Program P = B.finish();
  EXPECT_EQ(P.at(0).Imm, 0);
}

TEST(ProgramBuilder, DataAllocationAlignsAndGrows) {
  ProgramBuilder B;
  uint64_t A = B.allocData(3, 1);
  uint64_t C = B.allocData(8, 8);
  uint64_t D = B.allocData(1, 64);
  EXPECT_EQ(A, DefaultDataBase);
  EXPECT_EQ(C, DefaultDataBase + 8); // 3 rounded up to 8
  EXPECT_EQ(D % 64, 0u);
  EXPECT_GT(D, C);
}

TEST(ProgramBuilder, InitDataLittleEndian) {
  ProgramBuilder B;
  uint64_t Addr = B.allocData(8, 8);
  B.initDataU64(Addr, 0x1122334455667788ULL);
  B.emit(Inst::halt());
  Program P = B.finish();
  EXPECT_EQ(P.data()[0], 0x88);
  EXPECT_EQ(P.data()[7], 0x11);
}

TEST(ProgramBuilder, SymbolsSurviveFinish) {
  ProgramBuilder B;
  uint64_t Addr = B.allocData(8, 8);
  B.nameData("blob", Addr);
  auto L = B.label();
  B.emit(Inst::nop());
  B.bind(L);
  B.emit(Inst::halt());
  B.nameLabel("end", L);
  Program P = B.finish();
  EXPECT_TRUE(P.hasSymbol("blob"));
  EXPECT_EQ(P.symbol("blob"), Addr);
  EXPECT_EQ(P.symbol("end"), 4u); // instruction index 1
}

TEST(ProgramBuilder, HereTracksEmission) {
  ProgramBuilder B;
  EXPECT_EQ(B.here(), 0u);
  B.emit(Inst::nop());
  EXPECT_EQ(B.here(), 1u);
}

// Property: emitLoadConst materializes arbitrary 64-bit constants; verify
// by executing the generated code.
TEST(ProgramBuilder, LoadConstMaterializesArbitraryValues) {
  std::vector<uint64_t> Values = {0,
                                  1,
                                  32767,
                                  32768,
                                  static_cast<uint64_t>(-1),
                                  0x100000,
                                  0xdeadbeefULL,
                                  0x123456789abcdef0ULL,
                                  0x8000000000000000ULL};
  Xoshiro256 Rng(99);
  for (int I = 0; I != 40; ++I)
    Values.push_back(Rng.next());

  for (uint64_t V : Values) {
    ProgramBuilder B;
    B.emitLoadConst(5, V);
    B.emit(Inst::halt());
    Program P = B.finish();

    Machine M;
    NeverTakenDecider D;
    Interpreter Interp(P, M, D);
    Interp.run(100);
    EXPECT_EQ(M.readReg(5), V) << std::hex << V;
  }
}

TEST(ProgramBuilder, LoadConstSmallValuesAreOneInstruction) {
  ProgramBuilder B;
  B.emitLoadConst(3, 100);
  EXPECT_EQ(B.here(), 1u);
  B.emitLoadConst(3, static_cast<uint64_t>(-5));
  EXPECT_EQ(B.here(), 2u);
}

TEST(ProgramBuilderDeath, UnboundLabelAsserts) {
  ProgramBuilder B;
  auto L = B.label();
  B.emitJmp(L);
  EXPECT_DEATH(B.finish(), "never bound");
}

TEST(ProgramBuilderDeath, DoubleBindAsserts) {
  ProgramBuilder B;
  auto L = B.label();
  B.bind(L);
  EXPECT_DEATH(B.bind(L), "bound twice");
}
