//===- tests/test_random_programs.cpp - Differential simulator testing ----===//
//
// Property: the timing pipeline's functional oracle is exactly the
// functional interpreter, so for any program and any *deterministic* brr
// decider, a timed run must retire the same instruction stream and leave
// identical architectural state (registers and memory) as a functional
// run. We fuzz this with randomly generated structured programs covering
// ALU ops, memory traffic, forward branches, brr skips and calls.
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "sim/Interpreter.h"
#include "uarch/Pipeline.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

using namespace bor::testgen;

struct ArchState {
  std::array<uint64_t, 32> Regs;
  std::vector<uint64_t> BufWords;
  uint64_t Insts;
};

ArchState captureState(Machine &M, const Program &P, uint64_t Insts) {
  ArchState S;
  for (unsigned R = 0; R != 32; ++R)
    S.Regs[R] = M.readReg(R);
  uint64_t Buf = P.symbol("buf");
  for (size_t I = 0; I != BufBytes / 8; ++I)
    S.BufWords.push_back(M.memory().readU64(Buf + 8 * I));
  S.Insts = Insts;
  return S;
}

} // namespace

class RandomProgramDifferential : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RandomProgramDifferential, PipelineMatchesInterpreter) {
  Program P = randomProgram(GetParam());

  // Both runs use deterministic hardware-counter brr deciders so they make
  // identical sampling decisions.
  Machine FuncMachine;
  HwCounterDecider FuncDecider;
  Interpreter Func(P, FuncMachine, FuncDecider);
  RunStats FuncStats = Func.run(4000000);
  ASSERT_TRUE(FuncStats.Halted);

  HwCounterDecider TimedDecider;
  Pipeline Timed(P, PipelineConfig(), &TimedDecider);
  PipelineStats TimedStats = Timed.run(4000000).Stats;

  ArchState A = captureState(FuncMachine, P, FuncStats.Insts);
  ArchState B = captureState(Timed.machine(), P, TimedStats.Insts);

  EXPECT_EQ(A.Insts, B.Insts) << "instruction counts diverged";
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(A.Regs[R], B.Regs[R]) << "r" << R;
  EXPECT_EQ(A.BufWords, B.BufWords) << "memory diverged";
  EXPECT_GT(TimedStats.Cycles, 0u);
  EXPECT_EQ(TimedStats.BrrExecuted, FuncStats.BrrExecuted);
  EXPECT_EQ(TimedStats.BrrTaken, FuncStats.BrrTaken);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramDifferential,
                         ::testing::Range<uint64_t>(1, 21),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });
