//===- tests/test_appgen.cpp - Synthetic application generator tests ------===//

#include "workloads/AppGen.h"

#include "sim/Interpreter.h"
#include "workloads/Microbench.h" // marker ids

#include <gtest/gtest.h>

#include <numeric>

using namespace bor;

namespace {

AppConfig smallApp() {
  AppConfig C;
  C.NumMethods = 12;
  C.NumTopCalls = 800;
  C.InnerIters = 3;
  C.Seed = 0x1234;
  return C;
}

struct AppRun {
  AppProgram App;
  Machine M;
  RunStats Stats;

  AppRun(const AppConfig &C, BrrDecider &D) {
    App = buildApp(C);
    Interpreter I(App.Prog, M, D);
    Stats = I.run(100000000);
  }

  std::vector<uint64_t> invocationCounts() const {
    std::vector<uint64_t> Counts(App.NumMethods);
    for (uint32_t I = 0; I != App.NumMethods; ++I)
      Counts[I] = M.memory().readU64(App.ProfileBase + 8 * I);
    return Counts;
  }
};

} // namespace

TEST(AppGen, RunsToCompletion) {
  AppConfig C = smallApp();
  NeverTakenDecider D;
  AppRun R(C, D);
  EXPECT_TRUE(R.Stats.Halted);
  EXPECT_GT(R.Stats.Insts, C.NumTopCalls * 10);
}

TEST(AppGen, FullInstrumentationCountsEveryInvocation) {
  AppConfig C = smallApp();
  C.Instr.Framework = SamplingFramework::Full;
  NeverTakenDecider D;
  AppRun R(C, D);
  std::vector<uint64_t> Counts = R.invocationCounts();
  uint64_t Total = std::accumulate(Counts.begin(), Counts.end(), 0ull);
  EXPECT_EQ(Total, R.App.DynamicSiteVisits);
}

TEST(AppGen, BaselineLeavesCountersZero) {
  AppConfig C = smallApp();
  NeverTakenDecider D;
  AppRun R(C, D);
  for (uint64_t Count : R.invocationCounts())
    EXPECT_EQ(Count, 0u);
}

TEST(AppGen, CounterSamplingTotalIsExact) {
  AppConfig C = smallApp();
  C.NumTopCalls = 4000;
  C.Instr.Framework = SamplingFramework::CounterBased;
  C.Instr.Interval = 32;
  NeverTakenDecider D;
  AppRun R(C, D);
  std::vector<uint64_t> Counts = R.invocationCounts();
  uint64_t Total = std::accumulate(Counts.begin(), Counts.end(), 0ull);
  EXPECT_EQ(Total, R.App.DynamicSiteVisits / 32);
}

TEST(AppGen, BrrSamplingTotalIsStatistical) {
  AppConfig C = smallApp();
  C.NumTopCalls = 16000;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 32;
  BrrUnitDecider D;
  AppRun R(C, D);
  std::vector<uint64_t> Counts = R.invocationCounts();
  double Total = static_cast<double>(
      std::accumulate(Counts.begin(), Counts.end(), 0ull));
  double Expected = static_cast<double>(R.App.DynamicSiteVisits) / 32;
  EXPECT_NEAR(Total, Expected, 0.2 * Expected + 5);
}

TEST(AppGen, FullDuplicationVariantsPreserveInvocationBehaviour) {
  // The set of executed methods (and the halt) must not depend on the
  // sampling framework.
  AppConfig Base = smallApp();
  NeverTakenDecider D0;
  AppRun Baseline(Base, D0);

  for (SamplingFramework F :
       {SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
    AppConfig C = smallApp();
    C.Instr.Framework = F;
    C.Instr.Dup = DuplicationMode::FullDuplication;
    C.Instr.Interval = 64;
    BrrUnitDecider D;
    AppRun R(C, D);
    EXPECT_TRUE(R.Stats.Halted) << frameworkName(F);
    EXPECT_EQ(R.App.DynamicSiteVisits, Baseline.App.DynamicSiteVisits);
  }
}

TEST(AppGen, SampledHotMethodRankingMatchesTruth) {
  // With enough samples, the hottest method under sampling is the hottest
  // method in truth.
  AppConfig Truth = smallApp();
  Truth.NumTopCalls = 20000;
  Truth.Instr.Framework = SamplingFramework::Full;
  NeverTakenDecider D0;
  AppRun Full(Truth, D0);

  AppConfig Sampled = Truth;
  Sampled.Instr.Framework = SamplingFramework::BrrBased;
  Sampled.Instr.Interval = 16;
  BrrUnitDecider D1;
  AppRun Brr(Sampled, D1);

  auto ArgMax = [](const std::vector<uint64_t> &V) {
    return std::max_element(V.begin(), V.end()) - V.begin();
  };
  EXPECT_EQ(ArgMax(Full.invocationCounts()),
            ArgMax(Brr.invocationCounts()));
}

TEST(AppGen, DacapoAnaloguesAreWellFormed) {
  std::vector<AppConfig> Apps = dacapoAppAnalogues();
  ASSERT_EQ(Apps.size(), 5u);
  EXPECT_EQ(Apps[0].Name, "bloat");
  EXPECT_EQ(Apps[4].Name, "jython");
  for (const AppConfig &C : Apps) {
    EXPECT_GE(C.NumMethods, 16u);
    EXPECT_GE(C.NumTopCalls, 10000u);
  }
}

TEST(AppGen, SeedChangesCallSequenceNotStructure) {
  AppConfig A = smallApp();
  AppConfig B = smallApp();
  B.Seed = 0x9999;
  AppProgram PA = buildApp(A);
  AppProgram PB = buildApp(B);
  EXPECT_EQ(PA.NumMethods, PB.NumMethods);
  EXPECT_NE(PA.DynamicSiteVisits, PB.DynamicSiteVisits);
}
