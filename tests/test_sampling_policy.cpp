//===- tests/test_sampling_policy.cpp - Trace-level policy tests ----------===//

#include "profile/SamplingPolicy.h"

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bor;

// Property: both deterministic counters fire exactly every Interval-th
// visit, for a sweep of intervals.
class DeterministicPolicyInterval
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterministicPolicyInterval, SwCounterExactPeriod) {
  uint64_t Interval = GetParam();
  SwCounterPolicy P(Interval);
  uint64_t Since = 0;
  for (uint64_t I = 0; I != Interval * 6; ++I) {
    ++Since;
    if (P.sample()) {
      EXPECT_EQ(Since, Interval);
      Since = 0;
    }
  }
}

TEST_P(DeterministicPolicyInterval, HwCounterExactPeriod) {
  uint64_t Interval = GetParam();
  HwCounterPolicy P(Interval);
  uint64_t Since = 0;
  for (uint64_t I = 0; I != Interval * 6; ++I) {
    ++Since;
    if (P.sample()) {
      EXPECT_EQ(Since, Interval);
      Since = 0;
    }
  }
}

TEST_P(DeterministicPolicyInterval, SwAndHwAgree) {
  uint64_t Interval = GetParam();
  SwCounterPolicy Sw(Interval);
  HwCounterPolicy Hw(Interval);
  for (uint64_t I = 0; I != Interval * 4; ++I)
    EXPECT_EQ(Sw.sample(), Hw.sample());
}

INSTANTIATE_TEST_SUITE_P(Intervals, DeterministicPolicyInterval,
                         ::testing::Values(2, 4, 8, 64, 1024, 8192),
                         [](const auto &Info) {
                           return "i" + std::to_string(Info.param);
                         });

TEST(BrrPolicy, RateConvergesToInterval) {
  for (uint64_t Interval : {4ull, 64ull, 1024ull}) {
    BrrPolicy P(Interval);
    uint64_t Samples = 0;
    uint64_t N = Interval * 2000;
    for (uint64_t I = 0; I != N; ++I)
      Samples += P.sample();
    double Rate = static_cast<double>(Samples) / static_cast<double>(N);
    double Expected = 1.0 / static_cast<double>(Interval);
    EXPECT_NEAR(Rate, Expected, 5 * std::sqrt(Expected / N) + 1e-9)
        << "interval " << Interval;
  }
}

TEST(BrrPolicy, GapsAreIrregular) {
  // The whole point of pseudo-random sampling: inter-sample gaps vary,
  // unlike a counter's fixed interval.
  BrrPolicy P(16);
  GapHistogram H(256);
  uint64_t Since = 0;
  for (int I = 0; I != 200000; ++I) {
    ++Since;
    if (P.sample()) {
      H.add(Since);
      Since = 0;
    }
  }
  // Mean gap approximates the interval, but with spread: both shorter and
  // longer gaps occur.
  EXPECT_NEAR(H.meanGap(), 16.0, 1.0);
  uint64_t Short = 0, Long = 0;
  for (size_t G = 0; G != 8; ++G)
    Short += H.bucket(G);
  for (size_t G = 32; G != 256; ++G)
    Long += H.bucket(G);
  EXPECT_GT(Short, H.total() / 10);
  EXPECT_GT(Long, H.total() / 50);
}

TEST(SwCounterPolicy, CounterGapsAreConstant) {
  SwCounterPolicy P(16);
  GapHistogram H(64);
  uint64_t Since = 0;
  for (int I = 0; I != 16000; ++I) {
    ++Since;
    if (P.sample()) {
      H.add(Since);
      Since = 0;
    }
  }
  EXPECT_EQ(H.bucket(16), H.total());
}

TEST(SamplingPolicy, Names) {
  SwCounterPolicy Sw(4);
  HwCounterPolicy Hw(4);
  BrrPolicy Brr(4);
  EXPECT_EQ(Sw.name(), "sw-count");
  EXPECT_EQ(Hw.name(), "hw-count");
  EXPECT_EQ(Brr.name(), "brr-random");
}

TEST(BrrPolicy, SeedsDecorrelateStreams) {
  BrrUnitConfig A, B;
  A.Seed = 0xaaaa;
  B.Seed = 0x5555;
  BrrPolicy PA(8, A), PB(8, B);
  int Agreements = 0;
  const int N = 10000;
  for (int I = 0; I != N; ++I)
    Agreements += PA.sample() == PB.sample();
  // Independent 1/8 streams agree when both say "no": ~ (7/8)^2 + (1/8)^2.
  double Expected = (7.0 / 8) * (7.0 / 8) + (1.0 / 8) * (1.0 / 8);
  EXPECT_NEAR(static_cast<double>(Agreements) / N, Expected, 0.02);
}
