# End-to-end telemetry checks on bor-bench:
#
#   1. --trace writes a well-formed Chrome trace-event JSON object with at
#      least one experiment-cell span (validated with cmake's string(JSON)).
#   2. --counters-out snapshots are byte-identical for --threads 1 and 8.
#   3. The heartbeat stays off when stderr is not a TTY, and BOR_HEARTBEAT=1
#      forces it on.
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(TRACE ${WORKDIR}/fig13_trace.json)
set(C1 ${WORKDIR}/counters_t1.txt)
set(C8 ${WORKDIR}/counters_t8.txt)

function(run_bench threads counters_out trace_args err_out)
  execute_process(COMMAND ${BENCH} --experiment fig13 --scale 100
                          --threads ${threads} --no-table
                          --counters-out ${counters_out} ${trace_args}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
            "bor-bench --threads ${threads} failed (${RC}):\n${OUT}\n${ERR}")
  endif()
  set(${err_out} "${ERR}" PARENT_SCOPE)
endfunction()

run_bench(8 ${C8} --trace=${TRACE} ERR8)
run_bench(1 ${C1} "" ERR1)

# 1. Trace well-formedness. string(JSON) fails the script on malformed
# JSON; then assert the structure the viewer needs.
file(READ ${TRACE} TRACE_TEXT)
string(JSON NEVENTS LENGTH "${TRACE_TEXT}" traceEvents)
if(NEVENTS LESS 1)
  message(FATAL_ERROR "trace has no events")
endif()
string(JSON DROPPED GET "${TRACE_TEXT}" otherData dropped_events)
if(NOT DROPPED EQUAL 0)
  message(FATAL_ERROR "trace dropped ${DROPPED} events at bench scale")
endif()
set(SAW_CELL 0)
math(EXPR LAST "${NEVENTS} - 1")
foreach(I RANGE ${LAST})
  string(JSON NAME GET "${TRACE_TEXT}" traceEvents ${I} name)
  string(JSON PH GET "${TRACE_TEXT}" traceEvents ${I} ph)
  if(NAME STREQUAL "cell" AND PH STREQUAL "X")
    set(SAW_CELL 1)
  endif()
endforeach()
if(NOT SAW_CELL)
  message(FATAL_ERROR "trace contains no experiment-cell span")
endif()

# 2. Counter snapshots must not depend on the worker count.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${C1} ${C8}
                RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
          "counter snapshot differs between --threads 1 and 8: ${C1} vs ${C8}")
endif()

# 3a. stderr is a pipe here, so no heartbeat lines may appear.
if(ERR8 MATCHES "\\[bor-bench\\]")
  message(FATAL_ERROR "heartbeat printed to a non-TTY stderr:\n${ERR8}")
endif()

# 3b. BOR_HEARTBEAT=1 forces it on regardless.
execute_process(COMMAND ${CMAKE_COMMAND} -E env BOR_HEARTBEAT=1
                        ${BENCH} --experiment fig13 --scale 100
                        --threads 2 --no-table
                RESULT_VARIABLE RC
                OUTPUT_VARIABLE OUT
                ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "bor-bench with BOR_HEARTBEAT=1 failed (${RC}):\n${ERR}")
endif()
if(NOT ERR MATCHES "\\[bor-bench\\] fig13: .*cells")
  message(FATAL_ERROR "BOR_HEARTBEAT=1 produced no heartbeat line:\n${ERR}")
endif()

message(STATUS "telemetry smoke test passed")
