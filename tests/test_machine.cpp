//===- tests/test_machine.cpp - Machine state tests -----------------------===//

#include "sim/Machine.h"

#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(Memory, ByteReadWriteRoundTrip) {
  Memory M;
  M.writeU8(100, 0xab);
  EXPECT_EQ(M.readU8(100), 0xab);
  EXPECT_EQ(M.readU8(101), 0); // untouched memory reads zero
}

TEST(Memory, U64ReadWriteRoundTrip) {
  Memory M;
  M.writeU64(0x1000, 0x0123456789abcdefULL);
  EXPECT_EQ(M.readU64(0x1000), 0x0123456789abcdefULL);
}

TEST(Memory, U64IsLittleEndianOverBytes) {
  Memory M;
  M.writeU64(0x2000, 0x1122334455667788ULL);
  EXPECT_EQ(M.readU8(0x2000), 0x88);
  EXPECT_EQ(M.readU8(0x2007), 0x11);
}

TEST(Memory, BytesComposeIntoU64) {
  Memory M;
  for (unsigned I = 0; I != 8; ++I)
    M.writeU8(0x3000 + I, static_cast<uint8_t>(I + 1));
  EXPECT_EQ(M.readU64(0x3000), 0x0807060504030201ULL);
}

TEST(Memory, SparsePagesAllocateOnWrite) {
  Memory M;
  EXPECT_EQ(M.numPages(), 0u);
  (void)M.readU64(0x10000); // reads do not allocate
  EXPECT_EQ(M.numPages(), 0u);
  M.writeU8(0x10000, 1);
  M.writeU8(0x10000 + 4096, 1);
  EXPECT_EQ(M.numPages(), 2u);
}

TEST(Memory, DistantAddressesDoNotInterfere) {
  Memory M;
  M.writeU64(0x0, 1);
  M.writeU64(0x40000000, 2);
  EXPECT_EQ(M.readU64(0x0), 1u);
  EXPECT_EQ(M.readU64(0x40000000), 2u);
}

TEST(MemoryDeath, MisalignedU64Asserts) {
  Memory M;
  EXPECT_DEATH(M.writeU64(3, 1), "aligned");
  EXPECT_DEATH((void)M.readU64(9), "aligned");
}

TEST(Machine, RegistersStartZero) {
  Machine M;
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(M.readReg(R), 0u);
}

TEST(Machine, R0IsHardwiredZero) {
  Machine M;
  M.writeReg(RegZero, 12345);
  EXPECT_EQ(M.readReg(RegZero), 0u);
  M.writeReg(1, 12345);
  EXPECT_EQ(M.readReg(1), 12345u);
}

TEST(Machine, LoadProgramCopiesDataSegment) {
  ProgramBuilder B;
  uint64_t Addr = B.allocData(16, 8);
  B.initDataU64(Addr, 0xfeedface);
  B.initDataU64(Addr + 8, 42);
  B.emit(Inst::halt());
  Program P = B.finish();

  Machine M;
  M.loadProgram(P);
  EXPECT_EQ(M.memory().readU64(Addr), 0xfeedfaceULL);
  EXPECT_EQ(M.memory().readU64(Addr + 8), 42u);
  EXPECT_EQ(M.pc(), 0u);
  EXPECT_FALSE(M.halted());
}

TEST(BrrDeciders, TrivialDeciders) {
  NeverTakenDecider Never;
  AlwaysTakenDecider Always;
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw) {
    EXPECT_FALSE(Never.decide(FreqCode(Raw)));
    EXPECT_TRUE(Always.decide(FreqCode(Raw)));
  }
}

TEST(BrrDeciders, UnitDeciderMatchesUnitRate) {
  BrrUnitConfig C;
  BrrUnitDecider D(C);
  uint64_t Taken = 0;
  const int N = 100000;
  for (int I = 0; I != N; ++I)
    Taken += D.decide(FreqCode(3)); // 1/16
  EXPECT_NEAR(static_cast<double>(Taken) / N, 1.0 / 16, 0.005);
}

TEST(BrrDeciders, HwCounterDeciderIsPeriodic) {
  HwCounterDecider D;
  int FirstFire = -1;
  for (int I = 0; I != 8; ++I)
    if (D.decide(FreqCode(1)) && FirstFire < 0)
      FirstFire = I;
  EXPECT_EQ(FirstFire, 3); // every 4th evaluation
}
