# Smoke test for the CLI toolchain: assemble a sample program, disassemble
# it, and run it on both simulators, checking outputs end-to-end.
#
# Invoked by ctest with:
#   -DAS=<bor-as> -DDIS=<bor-dis> -DRUN=<bor-run> -DPIPEVIEW=<bor-pipeview>
#   -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(SRC ${WORKDIR}/smoke.s)
set(IMG ${WORKDIR}/smoke.borb)

file(WRITE ${SRC} "
; toolchain smoke test: count 1/16-sampled iterations
.alloc hits 8 8
        lc r28, @hits
        lc r2, 4096
loop:
        brr 1/16, sample
back:
        addi r2, r2, -1
        bne r2, r0, loop
        halt
sample:
        ld r15, 0(r28)
        addi r15, r15, 1
        st r15, 0(r28)
        jmp back
")

function(must_run outvar)
  execute_process(COMMAND ${ARGN}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "command failed (${RC}): ${ARGN}\n${OUT}\n${ERR}")
  endif()
  set(${outvar} "${OUT}${ERR}" PARENT_SCOPE)
endfunction()

# Assemble.
must_run(AS_OUT ${AS} ${SRC} -o ${IMG})
if(NOT AS_OUT MATCHES "instructions")
  message(FATAL_ERROR "bor-as output unexpected: ${AS_OUT}")
endif()

# Disassemble: must show the brr and the symbol.
must_run(DIS_OUT ${DIS} ${IMG})
if(NOT DIS_OUT MATCHES "brr 1/16")
  message(FATAL_ERROR "bor-dis missing brr: ${DIS_OUT}")
endif()
if(NOT DIS_OUT MATCHES "hits")
  message(FATAL_ERROR "bor-dis missing symbol: ${DIS_OUT}")
endif()

# Functional run with the deterministic decider: exactly 4096/16 samples.
must_run(RUN_OUT ${RUN} ${IMG} --decider=counter --dump-sym=hits)
if(NOT RUN_OUT MATCHES "hits = 256")
  message(FATAL_ERROR "bor-run functional count wrong: ${RUN_OUT}")
endif()

# Timing run: prints cycles and the same sample count.
must_run(TIMING_OUT ${RUN} ${IMG} --timing --decider=counter --dump-sym=hits)
if(NOT TIMING_OUT MATCHES "cycles")
  message(FATAL_ERROR "bor-run --timing missing stats: ${TIMING_OUT}")
endif()
if(NOT TIMING_OUT MATCHES "hits = 256")
  message(FATAL_ERROR "bor-run --timing count wrong: ${TIMING_OUT}")
endif()

# Pipeview: renders stage letters.
must_run(PV_OUT ${PIPEVIEW} ${IMG} --insts=12)
if(NOT PV_OUT MATCHES "F fetch")
  message(FATAL_ERROR "bor-pipeview missing header: ${PV_OUT}")
endif()
if(NOT PV_OUT MATCHES "brr")
  message(FATAL_ERROR "bor-pipeview missing brr row: ${PV_OUT}")
endif()

# Error paths: bad assembly and a corrupt image must fail loudly.
execute_process(COMMAND ${AS} ${WORKDIR}/does-not-exist.s
                RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
if(RC EQUAL 0)
  message(FATAL_ERROR "bor-as accepted a missing input")
endif()

file(WRITE ${WORKDIR}/corrupt.borb "NOTB0RB!")
execute_process(COMMAND ${RUN} ${WORKDIR}/corrupt.borb
                RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
if(RC EQUAL 0)
  message(FATAL_ERROR "bor-run accepted a corrupt image")
endif()

# bor-gen: generate a kernel and run it to its expected result.
must_run(GEN_OUT ${GEN} kernel:crc32 --framework=brr --interval=64
         --size=2000 -o ${WORKDIR}/crc.borb)
if(NOT GEN_OUT MATCHES "expected result ([0-9]+)")
  message(FATAL_ERROR "bor-gen output unexpected: ${GEN_OUT}")
endif()
set(EXPECTED ${CMAKE_MATCH_1})
must_run(GENRUN_OUT ${RUN} ${WORKDIR}/crc.borb --dump-sym=result)
if(NOT GENRUN_OUT MATCHES "result = ${EXPECTED}")
  message(FATAL_ERROR "generated kernel result mismatch: ${GENRUN_OUT}")
endif()

execute_process(COMMAND ${GEN} kernel:bogus
                RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
if(RC EQUAL 0)
  message(FATAL_ERROR "bor-gen accepted an unknown kernel")
endif()

# The shipped assembly example must assemble and run to its known sum.
must_run(EX_OUT ${AS} ${EXAMPLE_ASM} -o ${WORKDIR}/example.borb)
must_run(EXRUN_OUT ${RUN} ${WORKDIR}/example.borb --decider=counter
         --dump-sym=sum --dump-sym=hits)
if(NOT EXRUN_OUT MATCHES "sum = 1250025000")
  message(FATAL_ERROR "asm example sum wrong: ${EXRUN_OUT}")
endif()
if(NOT EXRUN_OUT MATCHES "hits = 781")
  message(FATAL_ERROR "asm example hits wrong: ${EXRUN_OUT}")
endif()

# bor-bench: --list must show every registered experiment.
must_run(LIST_OUT ${BENCH} --list)
foreach(EXPERIMENT fig02 fig09 fig10 fig12 fig13 fig14 ablation sens_lfsr)
  if(NOT LIST_OUT MATCHES "${EXPERIMENT}")
    message(FATAL_ERROR "bor-bench --list missing ${EXPERIMENT}: ${LIST_OUT}")
  endif()
endforeach()

# A scaled-down experiment run must emit JSON-lines that actually parse,
# with the documented header/cell/summary structure.
set(BENCH_JSON ${WORKDIR}/fig09.json)
must_run(BENCH_OUT ${BENCH} --experiment fig09 --scale 100 --threads 2
         --json ${BENCH_JSON})
if(NOT BENCH_OUT MATCHES "Figure 9")
  message(FATAL_ERROR "bor-bench table output unexpected: ${BENCH_OUT}")
endif()
if(NOT EXISTS ${BENCH_JSON})
  message(FATAL_ERROR "bor-bench did not write ${BENCH_JSON}")
endif()
file(STRINGS ${BENCH_JSON} BENCH_LINES)
list(LENGTH BENCH_LINES NUM_LINES)
if(NUM_LINES LESS 3)
  message(FATAL_ERROR "bor-bench JSON too short (${NUM_LINES} lines)")
endif()
list(GET BENCH_LINES 0 HEADER_LINE)
string(JSON HEADER_KIND GET "${HEADER_LINE}" kind)
if(NOT HEADER_KIND STREQUAL "header")
  message(FATAL_ERROR "first JSON record is not a header: ${HEADER_LINE}")
endif()
string(JSON HEADER_NAME GET "${HEADER_LINE}" experiment)
if(NOT HEADER_NAME STREQUAL "fig09")
  message(FATAL_ERROR "header names wrong experiment: ${HEADER_LINE}")
endif()
list(GET BENCH_LINES 1 CELL_LINE)
string(JSON CELL_KIND GET "${CELL_LINE}" kind)
if(NOT CELL_KIND STREQUAL "cell")
  message(FATAL_ERROR "second JSON record is not a cell: ${CELL_LINE}")
endif()
string(JSON CELL_BENCHMARK GET "${CELL_LINE}" params benchmark)
if(CELL_BENCHMARK STREQUAL "")
  message(FATAL_ERROR "cell record missing params.benchmark: ${CELL_LINE}")
endif()
string(JSON CELL_INVOCATIONS GET "${CELL_LINE}" metrics invocations)
if(NOT CELL_INVOCATIONS GREATER 0)
  message(FATAL_ERROR "cell record missing metrics.invocations: ${CELL_LINE}")
endif()
math(EXPR LAST_INDEX "${NUM_LINES} - 1")
list(GET BENCH_LINES ${LAST_INDEX} SUMMARY_LINE)
string(JSON SUMMARY_KIND GET "${SUMMARY_LINE}" kind)
if(NOT SUMMARY_KIND STREQUAL "summary")
  message(FATAL_ERROR "last JSON record is not a summary: ${SUMMARY_LINE}")
endif()

# Unknown experiment names must fail loudly.
execute_process(COMMAND ${BENCH} --experiment fig99
                RESULT_VARIABLE RC OUTPUT_QUIET ERROR_QUIET)
if(RC EQUAL 0)
  message(FATAL_ERROR "bor-bench accepted an unknown experiment")
endif()

message(STATUS "toolchain smoke test passed")
