//===- tests/test_tracegen.cpp - Invocation-stream generator tests --------===//

#include "profile/TraceGen.h"

#include "profile/Accuracy.h"
#include "profile/SamplingPolicy.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

BenchmarkModel tinyModel() {
  BenchmarkModel M;
  M.Name = "tiny";
  M.Invocations = 100000;
  M.NumMethods = 64;
  M.Seed = 0x7777;
  return M;
}

} // namespace

TEST(InvocationStream, EmitsExactlyTotal) {
  BenchmarkModel M = tinyModel();
  InvocationStream S(M);
  uint64_t N = 0;
  while (!S.done()) {
    S.next();
    ++N;
  }
  EXPECT_EQ(N, M.Invocations);
  EXPECT_EQ(S.emitted(), M.Invocations);
}

TEST(InvocationStream, MethodIdsInRange) {
  BenchmarkModel M = tinyModel();
  InvocationStream S(M);
  while (!S.done())
    EXPECT_LT(S.next(), M.NumMethods);
}

TEST(InvocationStream, DeterministicPerSeed) {
  BenchmarkModel M = tinyModel();
  InvocationStream A(M), B(M);
  for (int I = 0; I != 10000; ++I)
    EXPECT_EQ(A.next(), B.next());

  BenchmarkModel M2 = tinyModel();
  M2.Seed = 0x8888;
  InvocationStream C(M), D(M2);
  int Diff = 0;
  for (int I = 0; I != 10000; ++I)
    Diff += C.next() != D.next();
  EXPECT_GT(Diff, 100);
}

TEST(InvocationStream, HotMethodsDominate) {
  BenchmarkModel M = tinyModel();
  M.ZipfSkew = 1.1;
  InvocationStream S(M);
  MethodProfile P(M.NumMethods);
  while (!S.done())
    P.record(S.next());
  // The 8 hottest ids (tuples + Zipf head both live there) carry most mass.
  double HotMass = 0;
  for (size_t I = 0; I != 8; ++I)
    HotMass += P.fraction(I);
  EXPECT_GT(HotMass, 0.4);
}

TEST(InvocationStream, ResonantFractionControlsLoopMass) {
  BenchmarkModel NoLoops = tinyModel();
  NoLoops.ResonantFraction = 0.0;
  BenchmarkModel AllLoops = tinyModel();
  AllLoops.ResonantFraction = 1.0;
  AllLoops.TuplePeriods = {2};
  AllLoops.LoopItersMin = AllLoops.LoopItersMax = 1000;

  InvocationStream S(AllLoops);
  // With period-2 tuples from the first 16 ids, consecutive pairs repeat.
  uint32_t A = S.next(), B = S.next();
  EXPECT_EQ(S.next(), A);
  EXPECT_EQ(S.next(), B);
  (void)NoLoops;
}

TEST(DacapoAnalogues, PaperOrderingPreserved) {
  std::vector<BenchmarkModel> Models = dacapoAnalogues();
  ASSERT_EQ(Models.size(), 8u);
  EXPECT_EQ(Models.front().Name, "fop");
  EXPECT_EQ(Models.back().Name, "luindex");
  for (size_t I = 1; I != Models.size(); ++I)
    EXPECT_LE(Models[I - 1].Invocations, Models[I].Invocations)
        << "paper sorts benchmarks by invocation count";
  EXPECT_EQ(Models[5].Name, "jython");
  // jython models the period-2 resonance pathology.
  EXPECT_EQ(Models[5].TuplePeriods, (std::vector<unsigned>{2}));
}

TEST(DacapoAnalogues, ScaleDivisorScalesCounts) {
  std::vector<BenchmarkModel> At25 = dacapoAnalogues(25);
  std::vector<BenchmarkModel> At50 = dacapoAnalogues(50);
  for (size_t I = 0; I != At25.size(); ++I)
    EXPECT_NEAR(static_cast<double>(At25[I].Invocations),
                2.0 * At50[I].Invocations, 2.0);
}

// The headline accuracy mechanism: on a resonant (period-2) stream, a
// power-of-two deterministic counter samples only one phase; brr does not.
TEST(TraceGenAccuracy, CounterResonatesBrrDoesNot) {
  BenchmarkModel M = tinyModel();
  M.Invocations = 2000000;
  M.ResonantFraction = 0.5;
  M.TuplePeriods = {2};
  M.LoopItersMin = 200000;
  M.LoopItersMax = 400000;

  MethodProfile Full(M.NumMethods);
  MethodProfile CounterSampled(M.NumMethods);
  MethodProfile BrrSampled(M.NumMethods);
  SwCounterPolicy Counter(64);
  BrrPolicy Brr(64);

  InvocationStream S(M);
  while (!S.done()) {
    uint32_t Id = S.next();
    Full.record(Id);
    if (Counter.sample())
      CounterSampled.record(Id);
    if (Brr.sample())
      BrrSampled.record(Id);
  }

  double CounterAcc = overlapAccuracy(Full, CounterSampled);
  double BrrAcc = overlapAccuracy(Full, BrrSampled);
  EXPECT_GT(BrrAcc, CounterAcc + 5.0)
      << "brr must avoid the counter's phase-locking on period-2 loops";
  EXPECT_GT(BrrAcc, 90.0);
}

TEST(TraceGenAccuracy, OddPeriodsDoNotResonate) {
  BenchmarkModel M = tinyModel();
  M.Invocations = 2000000;
  M.ResonantFraction = 0.5;
  M.TuplePeriods = {3};
  M.LoopItersMin = 200000;
  M.LoopItersMax = 400000;

  MethodProfile Full(M.NumMethods);
  MethodProfile CounterSampled(M.NumMethods);
  SwCounterPolicy Counter(64);

  InvocationStream S(M);
  while (!S.done()) {
    uint32_t Id = S.next();
    Full.record(Id);
    if (Counter.sample())
      CounterSampled.record(Id);
  }
  // A 64-interval counter walks all 3 phases of a period-3 loop: accurate.
  EXPECT_GT(overlapAccuracy(Full, CounterSampled), 90.0);
}
