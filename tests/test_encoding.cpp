//===- tests/test_encoding.cpp - BOR-RISC binary encoding tests -----------===//

#include "isa/Encoding.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace bor;

namespace {

/// One representative instruction per opcode, with nontrivial fields.
std::vector<Inst> representativeInsts() {
  return {
      Inst::nop(),
      Inst::halt(),
      Inst::add(3, 1, 2),
      Inst::sub(31, 30, 29),
      Inst::alu(Opcode::And, 5, 6, 7),
      Inst::alu(Opcode::Or, 8, 9, 10),
      Inst::alu(Opcode::Xor, 11, 12, 13),
      Inst::alu(Opcode::Sll, 14, 15, 16),
      Inst::alu(Opcode::Srl, 17, 18, 19),
      Inst::alu(Opcode::Mul, 20, 21, 22),
      Inst::alu(Opcode::Slt, 23, 24, 25),
      Inst::alu(Opcode::Sltu, 26, 27, 28),
      Inst::addi(4, 5, -32768),
      Inst::alui(Opcode::Andi, 6, 7, 32767),
      Inst::alui(Opcode::Ori, 8, 9, 255),
      Inst::alui(Opcode::Xori, 10, 11, -1),
      Inst::alui(Opcode::Slli, 12, 13, 63),
      Inst::alui(Opcode::Srli, 14, 15, 1),
      Inst::alui(Opcode::Slti, 16, 17, -5),
      Inst::ld(18, 19, 1000),
      Inst::ldb(20, 21, -1000),
      Inst::st(22, 23, 8),
      Inst::stb(24, 25, -8),
      Inst::branch(Opcode::Beq, 1, 2, -100),
      Inst::branch(Opcode::Bne, 3, 4, 100),
      Inst::branch(Opcode::Blt, 5, 6, 32767),
      Inst::branch(Opcode::Bge, 7, 8, -32768),
      Inst::jmp(1 << 20),
      Inst::jal(31, -(1 << 20)),
      Inst::jalr(31, 4),
      Inst::brr(FreqCode(9), 12345),
      Inst::brr(FreqCode(15), -(1 << 21)),
      Inst::marker(42),
      Inst::rdlfsr(13),
  };
}

} // namespace

TEST(Encoding, RoundTripsEveryOpcode) {
  std::set<Opcode> Covered;
  for (const Inst &I : representativeInsts()) {
    Covered.insert(I.Op);
    uint32_t Word = encode(I);
    Inst Back = decode(Word);
    EXPECT_EQ(Back, I) << "opcode " << opcodeName(I.Op);
  }
  EXPECT_EQ(Covered.size(), NumOpcodes)
      << "representative set must cover the whole ISA";
}

TEST(Encoding, BrrFormatMatchesFigure5) {
  // Figure 5: opcode | 4-bit freq | target. Check field packing.
  Inst I = Inst::brr(FreqCode(9), 100);
  uint32_t Word = encode(I);
  EXPECT_EQ(Word >> 26, static_cast<uint32_t>(Opcode::Brr));
  EXPECT_EQ((Word >> 22) & 15, 9u);
  EXPECT_EQ(Word & ((1u << 22) - 1), 100u);
}

TEST(Encoding, BrrCarriesNoRegisterFields) {
  Inst I = Inst::brr(FreqCode(3), -4);
  EXPECT_FALSE(I.writesReg());
  uint8_t Srcs[2];
  EXPECT_EQ(I.sourceRegs(Srcs), 0u)
      << "brr must not read registers: that is what lets decode resolve it";
}

TEST(Encoding, ImmediateFitsBoundaries) {
  EXPECT_TRUE(immediateFits(Inst::addi(1, 2, 32767)));
  EXPECT_TRUE(immediateFits(Inst::addi(1, 2, -32768)));
  EXPECT_FALSE(immediateFits(Inst::addi(1, 2, 32768)));
  EXPECT_FALSE(immediateFits(Inst::addi(1, 2, -32769)));

  EXPECT_TRUE(immediateFits(Inst::brr(FreqCode(0), (1 << 21) - 1)));
  EXPECT_FALSE(immediateFits(Inst::brr(FreqCode(0), 1 << 21)));

  EXPECT_TRUE(immediateFits(Inst::jmp((1 << 25) - 1)));
  EXPECT_FALSE(immediateFits(Inst::jmp(1 << 25)));

  EXPECT_TRUE(immediateFits(Inst::jal(31, -(1 << 20))));
  EXPECT_FALSE(immediateFits(Inst::jal(31, -(1 << 20) - 1)));
}

TEST(Encoding, NegativeImmediatesSignExtend) {
  for (int32_t Imm : {-1, -2, -32768, -12345}) {
    Inst I = Inst::ld(1, 2, Imm);
    EXPECT_EQ(decode(encode(I)).Imm, Imm);
  }
}

TEST(Encoding, ProgramRoundTrip) {
  std::vector<Inst> Code = representativeInsts();
  std::vector<uint32_t> Words = encodeProgram(Code);
  std::vector<Inst> Back = decodeProgram(Words);
  ASSERT_EQ(Back.size(), Code.size());
  for (size_t I = 0; I != Code.size(); ++I)
    EXPECT_EQ(Back[I], Code[I]);
}

TEST(Encoding, OpcodeNamesAreUnique) {
  std::set<std::string> Names;
  for (unsigned Op = 0; Op != NumOpcodes; ++Op)
    Names.insert(opcodeName(static_cast<Opcode>(Op)));
  EXPECT_EQ(Names.size(), NumOpcodes);
}

TEST(Inst, ClassificationPredicates) {
  EXPECT_TRUE(Inst::branch(Opcode::Beq, 1, 2, 0).isCondBranch());
  EXPECT_TRUE(Inst::brr(FreqCode(0), 0).isBrr());
  EXPECT_FALSE(Inst::brr(FreqCode(0), 0).isCondBranch());
  EXPECT_TRUE(Inst::jmp(0).isDirectJump());
  EXPECT_TRUE(Inst::jal(31, 0).isDirectJump());
  EXPECT_TRUE(Inst::jalr(0, 31).isIndirect());
  EXPECT_TRUE(Inst::halt().isControl());
  EXPECT_TRUE(Inst::brr(FreqCode(0), 0).isControl());
  EXPECT_TRUE(Inst::ld(1, 2, 0).isLoad());
  EXPECT_TRUE(Inst::st(1, 2, 0).isStore());
  EXPECT_TRUE(Inst::ldb(1, 2, 0).isMem());
  EXPECT_FALSE(Inst::add(1, 2, 3).isMem());
  EXPECT_FALSE(Inst::add(1, 2, 3).isControl());
}

TEST(Inst, WritesRegRespectsR0) {
  EXPECT_TRUE(Inst::add(1, 2, 3).writesReg());
  EXPECT_FALSE(Inst::add(0, 2, 3).writesReg());
  EXPECT_FALSE(Inst::ret().writesReg()); // jalr r0, lr
  EXPECT_TRUE(Inst::jalr(31, 4).writesReg());
  EXPECT_FALSE(Inst::st(1, 2, 0).writesReg());
  EXPECT_FALSE(Inst::marker(1).writesReg());
}

TEST(Inst, SourceRegsTable) {
  uint8_t Srcs[2];
  EXPECT_EQ(Inst::add(1, 2, 3).sourceRegs(Srcs), 2u);
  EXPECT_EQ(Srcs[0], 2);
  EXPECT_EQ(Srcs[1], 3);

  EXPECT_EQ(Inst::addi(1, 2, 5).sourceRegs(Srcs), 1u);
  EXPECT_EQ(Srcs[0], 2);

  EXPECT_EQ(Inst::st(7, 8, 0).sourceRegs(Srcs), 2u);
  EXPECT_EQ(Srcs[0], 8); // address base
  EXPECT_EQ(Srcs[1], 7); // stored value

  EXPECT_EQ(Inst::jmp(4).sourceRegs(Srcs), 0u);
  EXPECT_EQ(Inst::marker(1).sourceRegs(Srcs), 0u);
}

TEST(EncodingDeath, OversizedImmediateAsserts) {
  EXPECT_DEATH(encode(Inst::addi(1, 2, 40000)), "does not fit");
}

TEST(EncodingFuzz, RandomValidFieldsRoundTrip) {
  // Exhaustive-ish randomized coverage of the encoding space: for every
  // format, random legal register/immediate fields must round-trip.
  Xoshiro256 Rng(0xfeed);
  auto Reg = [&Rng] { return static_cast<uint8_t>(Rng.nextBelow(32)); };
  auto Imm = [&Rng](unsigned Bits) {
    int64_t Span = 1LL << Bits;
    return static_cast<int32_t>(
        static_cast<int64_t>(Rng.nextBelow(Span)) - Span / 2);
  };

  for (int Trial = 0; Trial != 4000; ++Trial) {
    Inst I;
    switch (Rng.nextBelow(7)) {
    case 0:
      I = Inst::alu(Opcode::Add, Reg(), Reg(), Reg());
      break;
    case 1:
      I = Inst::alui(Opcode::Xori, Reg(), Reg(), Imm(16));
      break;
    case 2:
      I = Inst::ld(Reg(), Reg(), Imm(16));
      break;
    case 3:
      I = Inst::st(Reg(), Reg(), Imm(16));
      break;
    case 4:
      I = Inst::branch(Opcode::Blt, Reg(), Reg(), Imm(16));
      break;
    case 5:
      I = Inst::jal(Reg(), Imm(21));
      break;
    case 6:
      I = Inst::brr(FreqCode(static_cast<unsigned>(Rng.nextBelow(16))),
                    Imm(22));
      break;
    }
    ASSERT_EQ(decode(encode(I)), I) << "trial " << Trial;
  }
}
