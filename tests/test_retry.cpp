//===- tests/test_retry.cpp - Backoff/retry-budget policy unit tests -----===//
//
// support/Retry is the one retry policy the sweep service trusts for every
// failure path, so its ladder must be exactly predictable. Time is always
// passed in, never read from a clock, so these tests run with synthetic
// timestamps and no sleeps.
//
//===----------------------------------------------------------------------===//

#include "support/Retry.h"

#include "gtest/gtest.h"

using namespace bor::support;

namespace {

TEST(BackoffPolicy, DelayLadderIsCappedExponential) {
  BackoffPolicy P;
  P.InitialS = 0.1;
  P.Multiplier = 2.0;
  P.CapS = 5.0;

  EXPECT_DOUBLE_EQ(P.delayFor(0), 0.1);
  EXPECT_DOUBLE_EQ(P.delayFor(1), 0.2);
  EXPECT_DOUBLE_EQ(P.delayFor(2), 0.4);
  EXPECT_DOUBLE_EQ(P.delayFor(3), 0.8);
  // 0.1 * 2^6 = 6.4 > cap.
  EXPECT_DOUBLE_EQ(P.delayFor(6), 5.0);
  // Far past the cap must not overflow into inf/nan.
  EXPECT_DOUBLE_EQ(P.delayFor(1000), 5.0);
}

TEST(BackoffPolicy, CapBelowInitialClampsEverything) {
  BackoffPolicy P;
  P.InitialS = 2.0;
  P.CapS = 1.0;
  EXPECT_DOUBLE_EQ(P.delayFor(0), 1.0);
  EXPECT_DOUBLE_EQ(P.delayFor(3), 1.0);
}

TEST(RetryState, BudgetOfOneNeverRetries) {
  BackoffPolicy P;
  P.Budget = 1;
  RetryState S(P);

  EXPECT_FALSE(S.exhausted());
  S.beginAttempt();
  EXPECT_TRUE(S.exhausted());

  // scheduleRetry after exhaustion is a no-op: no future ready time.
  S.scheduleRetry(100.0);
  EXPECT_DOUBLE_EQ(S.readyAt(), 0.0);
}

TEST(RetryState, BackoffRungsAdvancePerFailure) {
  BackoffPolicy P;
  P.InitialS = 1.0;
  P.Multiplier = 3.0;
  P.CapS = 100.0;
  P.Budget = 10;
  RetryState S(P);

  S.beginAttempt();
  S.scheduleRetry(10.0);
  EXPECT_DOUBLE_EQ(S.readyAt(), 11.0); // + delayFor(0) = 1
  EXPECT_FALSE(S.ready(10.5));
  EXPECT_TRUE(S.ready(11.0));

  S.beginAttempt();
  S.scheduleRetry(11.0);
  EXPECT_DOUBLE_EQ(S.readyAt(), 14.0); // + delayFor(1) = 3

  S.beginAttempt();
  S.scheduleRetry(14.0);
  EXPECT_DOUBLE_EQ(S.readyAt(), 23.0); // + delayFor(2) = 9
}

TEST(RetryState, ExhaustionAfterBudgetAttempts) {
  BackoffPolicy P;
  P.Budget = 3;
  RetryState S(P);

  for (unsigned I = 0; I != 3; ++I) {
    EXPECT_FALSE(S.exhausted()) << "attempt " << I;
    S.beginAttempt();
  }
  EXPECT_TRUE(S.exhausted());
  EXPECT_EQ(S.attempts(), 3u);
}

TEST(RetryState, SuccessResetsTheLadder) {
  BackoffPolicy P;
  P.InitialS = 1.0;
  P.Multiplier = 2.0;
  P.CapS = 50.0;
  P.Budget = 3;
  RetryState S(P);

  // Burn two attempts, climbing to the second rung.
  S.beginAttempt();
  S.scheduleRetry(0.0);
  S.beginAttempt();
  S.scheduleRetry(1.0);
  EXPECT_DOUBLE_EQ(S.readyAt(), 3.0);
  EXPECT_EQ(S.attempts(), 2u);

  // A success starts everything over: full budget, bottom rung.
  S.reset();
  EXPECT_EQ(S.attempts(), 0u);
  EXPECT_FALSE(S.exhausted());
  EXPECT_DOUBLE_EQ(S.readyAt(), 0.0);
  S.beginAttempt();
  S.scheduleRetry(100.0);
  EXPECT_DOUBLE_EQ(S.readyAt(), 101.0); // back to delayFor(0)
}

} // namespace
