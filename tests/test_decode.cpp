//===- tests/test_decode.cpp - Decoded-execution engine tests -------------===//
//
// Two properties of the decoded-execution redesign:
//
//  1. Decoding is semantics-preserving. A reference stepper that re-derives
//     every operand from the raw Inst on each step (sign-extending the
//     immediate, masking the shift amount, resolving the branch target as
//     PC + 4*Imm) must produce the same ExecRecord stream, the same
//     RunStats and the same final architectural state as the engine
//     executing the pre-decoded image. Fuzzed over random structured
//     programs with matched deterministic deciders.
//
//  2. The two engine modes agree. run()'s block-chained threaded dispatch
//     must leave the same state, stats and marker observations as a step()
//     loop over the same decoded image, including under partial-budget
//     runs that force chain exits mid-block.
//
// Plus unit tests of the DecodedProgram image itself (flags, pre-resolved
// targets, pre-masked shift immediates, run lengths, block counts).
//
//===----------------------------------------------------------------------===//

#include "RandomProgramGen.h"

#include "isa/ProgramBuilder.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

using namespace bor::testgen;

/// Reference functional stepper over the *raw* Program image. Every
/// operand is derived from the Inst at execution time — the behavior the
/// pre-decode interpreter had, kept here as the executable specification
/// the decoded engine is held to.
class ReferenceStepper {
public:
  ReferenceStepper(const Program &P, Machine &M, BrrDecider &D)
      : Prog(P), Mach(M), Decider(D) {
    Mach.loadProgram(Prog);
  }

  void setMarkerHook(std::function<void(int32_t)> Hook) {
    MarkerHook = std::move(Hook);
  }

  bool halted() const { return Mach.halted(); }
  const RunStats &stats() const { return Stats; }

  ExecRecord step() {
    ExecRecord R;
    R.Pc = Mach.pc();
    R.I = Prog.at(Prog.indexForPc(R.Pc));
    const Inst &I = R.I;
    R.NextPc = R.Pc + 4;

    auto Reg = [this](unsigned Idx) { return Mach.readReg(Idx); };
    auto SImm = [&I] { return static_cast<int64_t>(I.Imm); };
    auto UImm = [&I] {
      return static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
    };
    // Branch/jump offsets are in instruction words relative to the
    // instruction itself, wrapping in 64 bits.
    auto Target = [&] {
      return R.Pc + 4 * static_cast<uint64_t>(static_cast<int64_t>(I.Imm));
    };

    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Halt:
      Mach.setHalted();
      R.NextPc = R.Pc;
      break;

    case Opcode::Add:
      Mach.writeReg(I.Rd, Reg(I.Rs1) + Reg(I.Rs2));
      break;
    case Opcode::Sub:
      Mach.writeReg(I.Rd, Reg(I.Rs1) - Reg(I.Rs2));
      break;
    case Opcode::And:
      Mach.writeReg(I.Rd, Reg(I.Rs1) & Reg(I.Rs2));
      break;
    case Opcode::Or:
      Mach.writeReg(I.Rd, Reg(I.Rs1) | Reg(I.Rs2));
      break;
    case Opcode::Xor:
      Mach.writeReg(I.Rd, Reg(I.Rs1) ^ Reg(I.Rs2));
      break;
    case Opcode::Sll:
      Mach.writeReg(I.Rd, Reg(I.Rs1) << (Reg(I.Rs2) & 63));
      break;
    case Opcode::Srl:
      Mach.writeReg(I.Rd, Reg(I.Rs1) >> (Reg(I.Rs2) & 63));
      break;
    case Opcode::Mul:
      Mach.writeReg(I.Rd, Reg(I.Rs1) * Reg(I.Rs2));
      break;
    case Opcode::Slt:
      Mach.writeReg(I.Rd, static_cast<int64_t>(Reg(I.Rs1)) <
                                  static_cast<int64_t>(Reg(I.Rs2))
                              ? 1
                              : 0);
      break;
    case Opcode::Sltu:
      Mach.writeReg(I.Rd, Reg(I.Rs1) < Reg(I.Rs2) ? 1 : 0);
      break;

    case Opcode::Addi:
      Mach.writeReg(I.Rd, Reg(I.Rs1) + UImm());
      break;
    case Opcode::Andi:
      Mach.writeReg(I.Rd, Reg(I.Rs1) & UImm());
      break;
    case Opcode::Ori:
      Mach.writeReg(I.Rd, Reg(I.Rs1) | UImm());
      break;
    case Opcode::Xori:
      Mach.writeReg(I.Rd, Reg(I.Rs1) ^ UImm());
      break;
    case Opcode::Slli:
      Mach.writeReg(I.Rd, Reg(I.Rs1) << (I.Imm & 63));
      break;
    case Opcode::Srli:
      Mach.writeReg(I.Rd, Reg(I.Rs1) >> (I.Imm & 63));
      break;
    case Opcode::Slti:
      Mach.writeReg(I.Rd,
                    static_cast<int64_t>(Reg(I.Rs1)) < SImm() ? 1 : 0);
      break;

    case Opcode::Ld:
      R.MemAddr = Reg(I.Rs1) + UImm();
      Mach.writeReg(I.Rd, Mach.memory().readU64(R.MemAddr));
      ++Stats.Loads;
      break;
    case Opcode::Ldb:
      R.MemAddr = Reg(I.Rs1) + UImm();
      Mach.writeReg(I.Rd, Mach.memory().readU8(R.MemAddr));
      ++Stats.Loads;
      break;
    case Opcode::St:
      R.MemAddr = Reg(I.Rs1) + UImm();
      Mach.memory().writeU64(R.MemAddr, Reg(I.Rs2));
      ++Stats.Stores;
      break;
    case Opcode::Stb:
      R.MemAddr = Reg(I.Rs1) + UImm();
      Mach.memory().writeU8(R.MemAddr, static_cast<uint8_t>(Reg(I.Rs2)));
      ++Stats.Stores;
      break;

    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge:
      switch (I.Op) {
      case Opcode::Beq:
        R.Taken = Reg(I.Rs1) == Reg(I.Rs2);
        break;
      case Opcode::Bne:
        R.Taken = Reg(I.Rs1) != Reg(I.Rs2);
        break;
      case Opcode::Blt:
        R.Taken = static_cast<int64_t>(Reg(I.Rs1)) <
                  static_cast<int64_t>(Reg(I.Rs2));
        break;
      default:
        R.Taken = static_cast<int64_t>(Reg(I.Rs1)) >=
                  static_cast<int64_t>(Reg(I.Rs2));
        break;
      }
      ++Stats.CondBranches;
      if (R.Taken) {
        ++Stats.CondTaken;
        R.NextPc = Target();
      }
      break;

    case Opcode::Jmp:
      R.Taken = true;
      R.NextPc = Target();
      break;
    case Opcode::Jal:
      Mach.writeReg(I.Rd, R.Pc + 4);
      R.Taken = true;
      R.NextPc = Target();
      break;
    case Opcode::Jalr: {
      uint64_t T = Reg(I.Rs1); // read before the link write (Rd may be Rs1)
      Mach.writeReg(I.Rd, R.Pc + 4);
      R.Taken = true;
      R.NextPc = T;
      break;
    }

    case Opcode::Brr:
      ++Stats.BrrExecuted;
      R.Taken = Decider.decide(FreqCode(I.Freq));
      if (R.Taken) {
        ++Stats.BrrTaken;
        R.NextPc = Target();
      }
      break;

    case Opcode::Marker:
      if (MarkerHook)
        MarkerHook(I.Imm);
      break;

    case Opcode::RdLfsr:
      Mach.writeReg(I.Rd, Decider.readAndStep());
      break;
    }

    Mach.setPc(R.NextPc);
    ++Stats.Insts;
    return R;
  }

private:
  const Program &Prog;
  Machine &Mach;
  BrrDecider &Decider;
  RunStats Stats;
  std::function<void(int32_t)> MarkerHook;
};

struct ArchState {
  std::array<uint64_t, 32> Regs;
  std::vector<uint64_t> BufWords;
  uint64_t Pc;
};

ArchState captureState(Machine &M, const Program &P) {
  ArchState S;
  for (unsigned R = 0; R != 32; ++R)
    S.Regs[R] = M.readReg(R);
  uint64_t Buf = P.symbol("buf");
  for (size_t I = 0; I != BufBytes / 8; ++I)
    S.BufWords.push_back(M.memory().readU64(Buf + 8 * I));
  S.Pc = M.pc();
  return S;
}

void expectSameState(const ArchState &A, const ArchState &B) {
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(A.Regs[R], B.Regs[R]) << "r" << R;
  EXPECT_EQ(A.BufWords, B.BufWords) << "memory diverged";
  EXPECT_EQ(A.Pc, B.Pc);
}

void expectSameStats(const RunStats &A, const RunStats &B) {
  EXPECT_EQ(A.Insts, B.Insts);
  EXPECT_EQ(A.CondBranches, B.CondBranches);
  EXPECT_EQ(A.CondTaken, B.CondTaken);
  EXPECT_EQ(A.BrrExecuted, B.BrrExecuted);
  EXPECT_EQ(A.BrrTaken, B.BrrTaken);
  EXPECT_EQ(A.Loads, B.Loads);
  EXPECT_EQ(A.Stores, B.Stores);
  // Stats.Halted is only folded in by run(); step loops track halt on the
  // Machine, so halt state is asserted via halted() at the call sites.
}

constexpr uint64_t StepBudget = 4000000;

} // namespace

class DecodeDifferential : public ::testing::TestWithParam<uint64_t> {};

// Property 1: identical ExecRecord streams from the decoded engine's
// step() and the raw-Inst reference stepper.
TEST_P(DecodeDifferential, StepMatchesReference) {
  Program P = randomProgram(GetParam());
  DecodedProgram DP(P);

  Machine RefM;
  HwCounterDecider RefD;
  ReferenceStepper Ref(P, RefM, RefD);

  Machine EngM;
  HwCounterDecider EngD;
  Interpreter Eng(DP, EngM, EngD);

  uint64_t Steps = 0;
  while (!Ref.halted() && Steps != StepBudget) {
    ASSERT_FALSE(Eng.halted()) << "engine halted early at step " << Steps;
    ExecRecord A = Ref.step();
    ExecRecord B = Eng.step();
    ASSERT_EQ(A.Pc, B.Pc) << "step " << Steps;
    ASSERT_EQ(A.NextPc, B.NextPc)
        << "step " << Steps << " pc=" << A.Pc
        << " op=" << static_cast<unsigned>(A.I.Op);
    ASSERT_EQ(A.Taken, B.Taken) << "step " << Steps << " pc=" << A.Pc;
    ASSERT_EQ(A.MemAddr, B.MemAddr) << "step " << Steps << " pc=" << A.Pc;
    ASSERT_EQ(A.I.Op, B.I.Op);
    ASSERT_EQ(A.I.Rd, B.I.Rd);
    ASSERT_EQ(A.I.Rs1, B.I.Rs1);
    ASSERT_EQ(A.I.Rs2, B.I.Rs2);
    ASSERT_EQ(A.I.Imm, B.I.Imm) << "records must carry the raw immediate";
    ASSERT_EQ(A.I.Freq, B.I.Freq);
    ++Steps;
  }
  ASSERT_TRUE(Ref.halted()) << "reference did not halt within budget";
  EXPECT_TRUE(Eng.halted());

  expectSameStats(Ref.stats(), Eng.stats());
  expectSameState(captureState(RefM, P), captureState(EngM, P));
}

// Property 2: the block-chained run() path is architecturally identical to
// a step() loop over the same image, marker observations included.
TEST_P(DecodeDifferential, RunMatchesStepLoop) {
  Program P = randomProgram(GetParam());
  DecodedProgram DP(P);

  // Markers record (id, insts-retired-before-the-marker) pairs; run()
  // promises hooks observe the same synchronized state as step().
  using MarkerObs = std::pair<int32_t, uint64_t>;

  Machine StepM;
  HwCounterDecider StepD;
  Interpreter StepEng(DP, StepM, StepD);
  std::vector<MarkerObs> StepMarkers;
  StepEng.setMarkerHook([&](int32_t Id) {
    StepMarkers.push_back({Id, StepEng.stats().Insts});
  });
  uint64_t Steps = 0;
  while (!StepEng.halted() && Steps != StepBudget) {
    StepEng.step();
    ++Steps;
  }
  ASSERT_TRUE(StepEng.halted());

  Machine RunM;
  HwCounterDecider RunD;
  Interpreter RunEng(DP, RunM, RunD);
  std::vector<MarkerObs> RunMarkers;
  RunEng.setMarkerHook([&](int32_t Id) {
    RunMarkers.push_back({Id, RunEng.stats().Insts});
  });
  RunStats RS = RunEng.run(StepBudget);
  ASSERT_TRUE(RS.Halted);

  expectSameStats(StepEng.stats(), RunEng.stats());
  expectSameState(captureState(StepM, P), captureState(RunM, P));
  EXPECT_EQ(StepMarkers, RunMarkers);
}

// Partial budgets force the chained loop to exit mid-block and resume;
// every intermediate synchronization point must be exact.
TEST_P(DecodeDifferential, BudgetedRunMatchesReference) {
  Program P = randomProgram(GetParam());
  DecodedProgram DP(P);

  Machine RefM;
  HwCounterDecider RefD;
  ReferenceStepper Ref(P, RefM, RefD);

  Machine EngM;
  HwCounterDecider EngD;
  Interpreter Eng(DP, EngM, EngD);

  // An awkward chunk size relative to the generator's block shapes, so
  // budget exits land inside straight-line runs.
  constexpr uint64_t Chunk = 7;
  uint64_t Total = 0;
  while (!Eng.halted() && Total != StepBudget) {
    uint64_t Before = Eng.stats().Insts;
    Eng.run(Chunk, /*RequireHalt=*/false);
    uint64_t Done = Eng.stats().Insts - Before;
    ASSERT_LE(Done, Chunk);
    for (uint64_t I = 0; I != Done; ++I)
      Ref.step();
    Total += Done;
    // The machine PC must be synchronized at every budget exit.
    ASSERT_EQ(RefM.pc(), EngM.pc()) << "after " << Total << " insts";
  }
  ASSERT_TRUE(Eng.halted());
  ASSERT_TRUE(Ref.halted());

  expectSameStats(Ref.stats(), Eng.stats());
  expectSameState(captureState(RefM, P), captureState(EngM, P));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeDifferential,
                         ::testing::Range<uint64_t>(1, 13),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

//===----------------------------------------------------------------------===//
// DecodedProgram image unit tests.
//===----------------------------------------------------------------------===//

TEST(DecodedProgram, FlagsAndClasses) {
  ProgramBuilder B;
  B.emit(Inst::ld(1, 2, 8));              // 0
  B.emit(Inst::st(1, 2, 16));             // 1
  B.emit(Inst::branch(Opcode::Beq, 1, 2, 2)); // 2
  B.emit(Inst::jmp(1));                   // 3
  B.emit(Inst::marker(7));                // 4
  B.emit(Inst::ret());                    // 5: jalr r0, lr
  B.emit(Inst::jalr(1, 3));               // 6: indirect call, not a return
  B.emit(Inst::add(3, 1, 2));             // 7
  B.emit(Inst::halt());                   // 8
  Program P = B.finish();
  DecodedProgram DP(P);

  ASSERT_EQ(DP.numInsts(), 9u);
  EXPECT_EQ(DP.at(0).Flags, DIF_Load);
  EXPECT_EQ(DP.at(1).Flags, DIF_Store);
  EXPECT_EQ(DP.at(2).Flags, DIF_Control | DIF_EndsBlock);
  EXPECT_EQ(DP.at(3).Flags, DIF_Control | DIF_EndsBlock);
  // Markers end a block without being control.
  EXPECT_EQ(DP.at(4).Flags, DIF_EndsBlock);
  EXPECT_EQ(DP.at(5).Flags, DIF_Control | DIF_EndsBlock | DIF_Return);
  EXPECT_TRUE(DP.at(5).isReturn());
  EXPECT_EQ(DP.at(6).Flags, DIF_Control | DIF_EndsBlock);
  EXPECT_FALSE(DP.at(6).isReturn());
  EXPECT_EQ(DP.at(7).Flags, DIF_None);
  EXPECT_EQ(DP.at(8).Flags, DIF_Control | DIF_EndsBlock);
}

TEST(DecodedProgram, PreResolvedTargets) {
  ProgramBuilder B;
  B.emit(Inst::branch(Opcode::Bne, 1, 2, 3)); // 0 -> pc 0 + 4*3 = 12
  B.emit(Inst::jmp(-1));                      // 1 -> pc 4 - 4 = 0
  B.emit(Inst::jal(RegLr, 2));                // 2 -> pc 8 + 8 = 16
  B.emit(Inst::brr(FreqCode(3), 2));          // 3 -> pc 12 + 8 = 20
  B.emit(Inst::jalr(1, 3));                   // 4: register target
  B.emit(Inst::halt());                       // 5
  Program P = B.finish();
  DecodedProgram DP(P);

  EXPECT_EQ(DP.at(0).Target, 12u);
  EXPECT_EQ(DP.at(1).Target, 0u);
  EXPECT_EQ(DP.at(2).Target, 16u);
  EXPECT_EQ(DP.at(3).Target, 20u);
  EXPECT_EQ(DP.at(3).Freq, 3u);
  // Indirect jumps have no static target.
  EXPECT_EQ(DP.at(4).Target, 0u);
}

TEST(DecodedProgram, ImmediatePreprocessing) {
  ProgramBuilder B;
  B.emit(Inst::addi(1, 0, -5));               // sign-extended to 64 bits
  B.emit(Inst::alui(Opcode::Slli, 2, 1, 68)); // shamt pre-masked: 68 & 63 = 4
  B.emit(Inst::alui(Opcode::Srli, 3, 1, 63)); // already in range
  B.emit(Inst::alui(Opcode::Andi, 4, 1, -1)); // sign-extended mask
  B.emit(Inst::halt());
  Program P = B.finish();
  DecodedProgram DP(P);

  EXPECT_EQ(DP.at(0).Imm, -5);
  EXPECT_EQ(DP.at(1).Imm, 4);
  EXPECT_EQ(DP.at(2).Imm, 63);
  EXPECT_EQ(DP.at(3).Imm, -1);
}

TEST(DecodedProgram, RunLengthsAndBlocks) {
  ProgramBuilder B;
  B.emit(Inst::add(1, 1, 2));                 // 0: run 3
  B.emit(Inst::add(1, 1, 2));                 // 1: run 2
  B.emit(Inst::branch(Opcode::Beq, 1, 2, 2)); // 2: run 1, ends block
  B.emit(Inst::marker(1));                    // 3: run 1, ends block
  B.emit(Inst::add(1, 1, 2));                 // 4: run 2
  B.emit(Inst::halt());                       // 5: run 1, ends block
  Program P = B.finish();
  DecodedProgram DP(P);

  EXPECT_EQ(DP.at(0).RunLen, 3u);
  EXPECT_EQ(DP.at(1).RunLen, 2u);
  EXPECT_EQ(DP.at(2).RunLen, 1u);
  EXPECT_EQ(DP.at(3).RunLen, 1u);
  EXPECT_EQ(DP.at(4).RunLen, 2u);
  EXPECT_EQ(DP.at(5).RunLen, 1u);
  EXPECT_EQ(DP.numBlocks(), 3u);
}

TEST(DecodedProgram, TrailingStraightLineRunCountsAsBlock) {
  ProgramBuilder B;
  B.emit(Inst::marker(1)); // 0: ends block
  B.emit(Inst::add(1, 1, 2)); // 1: trailing run, no terminator
  B.emit(Inst::add(1, 1, 2)); // 2
  Program P = B.finish();
  DecodedProgram DP(P);

  EXPECT_EQ(DP.at(1).RunLen, 2u);
  EXPECT_EQ(DP.at(2).RunLen, 1u);
  EXPECT_EQ(DP.numBlocks(), 2u);
}

TEST(DecodedProgram, SharedImageAcrossEngines) {
  // One image, two independent engines: the redesign's decode-once
  // contract. Both must run to completion with identical results.
  Program P = randomProgram(3);
  DecodedProgram DP(P);

  Machine M1, M2;
  HwCounterDecider D1, D2;
  Interpreter A(DP, M1, D1);
  Interpreter B(DP, M2, D2);
  EXPECT_EQ(&A.decoded(), &B.decoded());

  RunStats S1 = A.run(StepBudget);
  RunStats S2 = B.run(StepBudget);
  ASSERT_TRUE(S1.Halted);
  expectSameStats(S1, S2);
  expectSameState(captureState(M1, P), captureState(M2, P));
}
