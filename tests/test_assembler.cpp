//===- tests/test_assembler.cpp - Text assembler tests --------------------===//

#include "isa/Assembler.h"

#include "isa/Disasm.h"
#include "isa/Encoding.h"
#include "isa/ProgramBuilder.h"
#include "sim/Interpreter.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

Program mustAssemble(const std::string &Src) {
  AssemblyResult R = assemble(Src);
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Prog;
}

std::string mustFail(const std::string &Src) {
  AssemblyResult R = assemble(Src);
  EXPECT_FALSE(R.Ok) << "expected assembly failure";
  return R.Error;
}

} // namespace

TEST(Assembler, EmptySourceIsEmptyProgram) {
  EXPECT_EQ(mustAssemble("").numInsts(), 0u);
  EXPECT_EQ(mustAssemble("\n\n  ; just comments\n# more\n").numInsts(), 0u);
}

TEST(Assembler, AluForms) {
  Program P = mustAssemble("add r3, r1, r2\n"
                           "sub r4, r5, r6\n"
                           "mul r7, r8, r9\n"
                           "sltu r1, r2, r3\n");
  ASSERT_EQ(P.numInsts(), 4u);
  EXPECT_EQ(P.at(0), Inst::add(3, 1, 2));
  EXPECT_EQ(P.at(1), Inst::sub(4, 5, 6));
  EXPECT_EQ(P.at(2), Inst::alu(Opcode::Mul, 7, 8, 9));
  EXPECT_EQ(P.at(3), Inst::alu(Opcode::Sltu, 1, 2, 3));
}

TEST(Assembler, ImmediateFormsAndHex) {
  Program P = mustAssemble("addi r1, r2, -7\n"
                           "andi r3, r4, 0xff\n"
                           "slli r5, r6, 63\n");
  EXPECT_EQ(P.at(0), Inst::addi(1, 2, -7));
  EXPECT_EQ(P.at(1), Inst::alui(Opcode::Andi, 3, 4, 255));
  EXPECT_EQ(P.at(2), Inst::alui(Opcode::Slli, 5, 6, 63));
}

TEST(Assembler, MemoryForms) {
  Program P = mustAssemble("ld r1, 16(r2)\n"
                           "ldb r3, -1(r4)\n"
                           "st r5, 0(r6)\n"
                           "stb r7, 8(r8)\n");
  EXPECT_EQ(P.at(0), Inst::ld(1, 2, 16));
  EXPECT_EQ(P.at(1), Inst::ldb(3, 4, -1));
  EXPECT_EQ(P.at(2), Inst::st(5, 6, 0));
  EXPECT_EQ(P.at(3), Inst::stb(7, 8, 8));
}

TEST(Assembler, BranchesToLabelsForwardAndBackward) {
  Program P = mustAssemble("top:\n"
                           "  addi r1, r1, 1\n"
                           "  beq r1, r2, done\n"
                           "  jmp top\n"
                           "done:\n"
                           "  halt\n");
  ASSERT_EQ(P.numInsts(), 4u);
  EXPECT_EQ(P.at(1).Imm, 2);  // beq -> done
  EXPECT_EQ(P.at(2).Imm, -2); // jmp -> top
}

TEST(Assembler, NumericBranchOffsets) {
  Program P = mustAssemble("bne r1, r0, +3\n"
                           "jmp -1\n");
  EXPECT_EQ(P.at(0).Imm, 3);
  EXPECT_EQ(P.at(1).Imm, -1);
}

TEST(Assembler, BrrFrequencySyntax) {
  Program P = mustAssemble("loop:\n"
                           "  brr 1/1024, loop\n"
                           "  brr 1/2, +4\n");
  EXPECT_EQ(P.at(0).Op, Opcode::Brr);
  EXPECT_EQ(FreqCode(P.at(0).Freq).expectedInterval(), 1024u);
  EXPECT_EQ(FreqCode(P.at(1).Freq).expectedInterval(), 2u);
  EXPECT_EQ(P.at(1).Imm, 4);
}

TEST(Assembler, CallsAndReturns) {
  Program P = mustAssemble("jal r31, fn\n"
                           "halt\n"
                           "fn:\n"
                           "  jalr r1, r2\n"
                           "  ret\n");
  EXPECT_EQ(P.at(0), Inst::jal(31, 2));
  EXPECT_EQ(P.at(2), Inst::jalr(1, 2));
  EXPECT_EQ(P.at(3), Inst::ret());
}

TEST(Assembler, Pseudos) {
  Program P = mustAssemble("li r4, -100\n"
                           "mv r5, r6\n"
                           "lc r7, 70000\n");
  EXPECT_EQ(P.at(0), Inst::li(4, -100));
  EXPECT_EQ(P.at(1), Inst::mv(5, 6));
  // lc expands to more than one instruction for large constants.
  EXPECT_GT(P.numInsts(), 3u);
}

TEST(Assembler, DataDirectivesAndSymbolLoad) {
  Program P = mustAssemble(".alloc blob 16 8\n"
                           ".u64 blob 8 12345\n"
                           "lc r1, @blob\n"
                           "ld r2, 8(r1)\n"
                           "halt\n");
  ASSERT_TRUE(P.hasSymbol("blob"));

  Machine M;
  NeverTakenDecider D;
  Interpreter I(P, M, D);
  I.run(100);
  EXPECT_EQ(M.readReg(2), 12345u);
}

TEST(Assembler, MarkerNopHalt) {
  Program P = mustAssemble("nop\nmarker 42\nhalt\n");
  EXPECT_EQ(P.at(0), Inst::nop());
  EXPECT_EQ(P.at(1), Inst::marker(42));
  EXPECT_EQ(P.at(2), Inst::halt());
}

TEST(Assembler, CommentsAndAnnotationsIgnored) {
  Program P = mustAssemble("add r1, r2, r3 ; sum\n"
                           "bne r1, r0, +5 (-> 6) # from bor-dis\n");
  EXPECT_EQ(P.numInsts(), 2u);
  EXPECT_EQ(P.at(1).Imm, 5);
}

TEST(Assembler, RoundTripsDisassemblerOutput) {
  // Build a program covering every opcode class, disassemble it, and
  // reassemble: instruction-for-instruction identical.
  ProgramBuilder B;
  auto L = B.label();
  B.emit(Inst::add(3, 1, 2));
  B.emit(Inst::alui(Opcode::Xori, 4, 5, -3));
  B.emit(Inst::ld(6, 7, 24));
  B.emit(Inst::stb(8, 9, -8));
  B.bind(L);
  B.emitBranch(Opcode::Blt, 1, 2, L);
  B.emitJmp(L);
  B.emitJal(31, L);
  B.emit(Inst::jalr(0, 31));
  B.emitBrr(FreqCode(9), L);
  B.emit(Inst::marker(7));
  B.emit(Inst::nop());
  B.emit(Inst::halt());
  Program Original = B.finish();

  Program Reassembled = mustAssemble(disassemble(Original));
  ASSERT_EQ(Reassembled.numInsts(), Original.numInsts());
  for (size_t I = 0; I != Original.numInsts(); ++I)
    EXPECT_EQ(Reassembled.at(I), Original.at(I)) << "instruction " << I;
}

TEST(Assembler, AssembledProgramExecutes) {
  Program P = mustAssemble("  lc r2, 10\n"
                           "loop:\n"
                           "  add r3, r3, r2\n"
                           "  addi r2, r2, -1\n"
                           "  bne r2, r0, loop\n"
                           "  halt\n");
  Machine M;
  NeverTakenDecider D;
  Interpreter I(P, M, D);
  I.run(1000);
  EXPECT_EQ(M.readReg(3), 55u); // 10+9+...+1
}

TEST(AssemblerErrors, UnknownMnemonic) {
  std::string E = mustFail("frobnicate r1, r2\n");
  EXPECT_NE(E.find("line 1"), std::string::npos);
  EXPECT_NE(E.find("unknown mnemonic"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedLabel) {
  std::string E = mustFail("jmp nowhere\n");
  EXPECT_NE(E.find("undefined label"), std::string::npos);
}

TEST(AssemblerErrors, DuplicateLabel) {
  std::string E = mustFail("a:\nnop\na:\n");
  EXPECT_NE(E.find("defined twice"), std::string::npos);
}

TEST(AssemblerErrors, BadRegister) {
  std::string E = mustFail("add r32, r1, r2\n");
  EXPECT_NE(E.find("register"), std::string::npos);
}

TEST(AssemblerErrors, ImmediateOutOfRange) {
  std::string E = mustFail("addi r1, r2, 40000\n");
  EXPECT_NE(E.find("out of range"), std::string::npos);
}

TEST(AssemblerErrors, LiOutOfRangeSuggestsLc) {
  std::string E = mustFail("li r1, 100000\n");
  EXPECT_NE(E.find("lc"), std::string::npos);
}

TEST(AssemblerErrors, BadBrrFrequency) {
  EXPECT_NE(mustFail("brr 1/1000, +1\n").find("power of two"),
            std::string::npos);
  EXPECT_NE(mustFail("brr 2/4, +1\n").find("1/<interval>"),
            std::string::npos);
}

TEST(AssemblerErrors, TrailingGarbage) {
  std::string E = mustFail("nop nop\n");
  EXPECT_NE(E.find("trailing"), std::string::npos);
}

TEST(AssemblerErrors, UnknownDataSymbol) {
  EXPECT_NE(mustFail("lc r1, @missing\n").find("unknown data symbol"),
            std::string::npos);
  EXPECT_NE(mustFail(".u64 missing 0 1\n").find("unknown data symbol"),
            std::string::npos);
}

TEST(AssemblerErrors, BadDirective) {
  EXPECT_NE(mustFail(".bogus x 1\n").find("unknown directive"),
            std::string::npos);
  EXPECT_NE(mustFail(".alloc a 10 3\n").find("alignment"),
            std::string::npos);
}

TEST(AssemblerErrors, LineNumbersAreAccurate) {
  std::string E = mustFail("nop\nnop\nbadop\n");
  EXPECT_NE(E.find("line 3"), std::string::npos);
}

TEST(Assembler, RoundTripsWholeGeneratedPrograms) {
  // Property: any program the workload generators build disassembles to
  // text that reassembles into the identical instruction stream (data and
  // symbols are not part of the textual form).
  MicrobenchConfig C;
  C.Text.NumChars = 2000;
  for (SamplingFramework F :
       {SamplingFramework::None, SamplingFramework::CounterBased,
        SamplingFramework::BrrBased}) {
    C.Instr.Framework = F;
    C.Instr.Interval = 64;
    Program Original = buildMicrobench(C).Prog;
    AssemblyResult R = assemble(disassemble(Original));
    ASSERT_TRUE(R.Ok) << frameworkName(F) << ": " << R.Error;
    ASSERT_EQ(R.Prog.numInsts(), Original.numInsts()) << frameworkName(F);
    for (size_t I = 0; I != Original.numInsts(); ++I)
      ASSERT_EQ(R.Prog.at(I), Original.at(I))
          << frameworkName(F) << " instruction " << I;
  }
}

#include "RandomProgramGen.h"

class AssemblerFuzzRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssemblerFuzzRoundTrip, RandomProgramsRoundTrip) {
  Program Original = testgen::randomProgram(GetParam());
  AssemblyResult R = assemble(disassemble(Original));
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(R.Prog.numInsts(), Original.numInsts());
  for (size_t I = 0; I != Original.numInsts(); ++I)
    ASSERT_EQ(R.Prog.at(I), Original.at(I)) << "instruction " << I;
  // And the serialized forms of the code segments agree too.
  EXPECT_EQ(encodeProgram(R.Prog.code()), encodeProgram(Original.code()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzzRoundTrip,
                         ::testing::Range<uint64_t>(50, 62),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

TEST(Assembler, RdLfsrForm) {
  Program P = mustAssemble("rdlfsr r9\nhalt\n");
  EXPECT_EQ(P.at(0), Inst::rdlfsr(9));
  // And it round-trips through the disassembler.
  Program Back = mustAssemble(disassemble(P));
  EXPECT_EQ(Back.at(0), Inst::rdlfsr(9));
}
