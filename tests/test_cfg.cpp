//===- tests/test_cfg.cpp - CFG IR round-trip and relinearization ---------===//
//
// The tentpole guarantees of src/cfg/: lifting a linear program and
// re-emitting it is byte-identical (the IR is lossless), and reordering
// the layout before emission preserves execution (relinearization is
// sound). Both are property-tested over 1000+ structured random programs
// plus the committed workload generators.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "isa/Encoding.h"
#include "sim/Interpreter.h"
#include "support/Rng.h"
#include "workloads/Microbench.h"
#include "workloads/PgoGen.h"

#include "RandomProgramGen.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace bor;

namespace {

/// Byte-level program equality with a useful failure message.
void expectByteIdentical(const Program &A, const Program &B,
                         const std::string &What) {
  ASSERT_EQ(A.numInsts(), B.numInsts()) << What;
  for (size_t I = 0; I != A.numInsts(); ++I)
    ASSERT_EQ(encode(A.at(I)), encode(B.at(I)))
        << What << ": instruction " << I;
  EXPECT_EQ(A.dataBase(), B.dataBase()) << What;
  EXPECT_EQ(A.data(), B.data()) << What;
  EXPECT_EQ(A.symbols(), B.symbols()) << What;
}

/// Layout-invariant execution fingerprint: everything a relinearized
/// program must preserve. Taken counts and the link register are
/// excluded by design — branch inversion flips directions and jal
/// return addresses move with the code.
struct ExecFingerprint {
  uint64_t Loads = 0, Stores = 0;
  uint64_t CondBranches = 0;
  uint64_t BrrExecuted = 0, BrrTaken = 0;
  std::vector<uint8_t> Data;
  bool Halted = false;

  bool operator==(const ExecFingerprint &O) const {
    return Loads == O.Loads && Stores == O.Stores &&
           CondBranches == O.CondBranches &&
           BrrExecuted == O.BrrExecuted && BrrTaken == O.BrrTaken &&
           Data == O.Data && Halted == O.Halted;
  }
};

ExecFingerprint runFingerprint(const Program &P) {
  Machine M;
  BrrUnitDecider D; // default config: same decider stream for every layout
  Interpreter I(P, M, D);
  RunStats S = I.run(2'000'000);
  ExecFingerprint F;
  F.Loads = S.Loads;
  F.Stores = S.Stores;
  F.CondBranches = S.CondBranches;
  F.BrrExecuted = S.BrrExecuted;
  F.BrrTaken = S.BrrTaken;
  F.Halted = S.Halted;
  F.Data.reserve(P.data().size());
  for (size_t B = 0; B != P.data().size(); ++B)
    F.Data.push_back(M.memory().readU8(P.dataBase() + B));
  return F;
}

/// Shuffles \p M's layout, keeping the entry block first and empty
/// successor-less sentinel blocks last (anything after one would share
/// its address).
void shuffleLayout(cfg::Module &M, Xoshiro256 &Rng) {
  std::vector<cfg::BlockId> L = M.layout();
  ASSERT_FALSE(L.empty());
  std::vector<cfg::BlockId> Body, Sentinels;
  for (size_t I = 1; I < L.size(); ++I) {
    const cfg::BasicBlock &B = M.block(L[I]);
    (B.Insts.empty() && B.Succs.empty() ? Sentinels : Body).push_back(L[I]);
  }
  for (size_t I = Body.size(); I > 1; --I)
    std::swap(Body[I - 1], Body[Rng.nextBelow(I)]);
  std::vector<cfg::BlockId> Out{L.front()};
  Out.insert(Out.end(), Body.begin(), Body.end());
  Out.insert(Out.end(), Sentinels.begin(), Sentinels.end());
  M.setLayout(std::move(Out));
}

TEST(CfgRoundTrip, ByteIdenticalOverRandomPrograms) {
  for (uint64_t Seed = 1; Seed <= 1200; ++Seed) {
    Program P = testgen::randomProgram(Seed, 4);
    cfg::Module M = cfg::buildModule(P);
    Program Q = cfg::emitProgram(M);
    expectByteIdentical(P, Q, "seed " + std::to_string(Seed));
    if (HasFatalFailure())
      return;
  }
}

TEST(CfgRoundTrip, ShuffledRelinearizationExecutesEquivalently) {
  for (uint64_t Seed = 1; Seed <= 1000; ++Seed) {
    Program P = testgen::randomProgram(Seed, 6);
    ExecFingerprint Ref = runFingerprint(P);
    ASSERT_TRUE(Ref.Halted) << "seed " << Seed;

    cfg::Module M = cfg::buildModule(P);
    Xoshiro256 Rng(Seed * 7919 + 1);
    shuffleLayout(M, Rng);
    Program Q = cfg::emitProgram(M);
    ExecFingerprint Got = runFingerprint(Q);
    ASSERT_TRUE(Got == Ref) << "seed " << Seed;
  }
}

TEST(CfgRoundTrip, CommittedWorkloadsAreLossless) {
  // The microbenchmark in every instrumentation shape the experiments
  // run, plus the PGO workload pair.
  for (SamplingFramework F :
       {SamplingFramework::None, SamplingFramework::Full,
        SamplingFramework::CounterBased, SamplingFramework::BrrBased}) {
    for (DuplicationMode Dup :
         {DuplicationMode::NoDuplication, DuplicationMode::FullDuplication}) {
      MicrobenchConfig C;
      C.Text.NumChars = 400;
      C.Instr.Framework = F;
      C.Instr.Dup = Dup;
      MicrobenchProgram MB = buildMicrobench(C);
      Program Q = cfg::emitProgram(cfg::buildModule(MB.Prog));
      expectByteIdentical(MB.Prog, Q, describeConfig(C.Instr));
      if (HasFatalFailure())
        return;
    }
  }
  PgoGenConfig PC;
  PC.Iters = 50;
  PC.Instr.Framework = SamplingFramework::BrrBased;
  PgoWorkload W = buildPgoWorkload(PC);
  expectByteIdentical(W.Baseline,
                      cfg::emitProgram(cfg::buildModule(W.Baseline)),
                      "pgo baseline");
  expectByteIdentical(W.Instrumented,
                      cfg::emitProgram(cfg::buildModule(W.Instrumented)),
                      "pgo instrumented");
}

TEST(CfgEmit, InvertsBranchWhenTakenArmBecomesAdjacent) {
  // entry: beq -> T, fall F; T: halt; F: halt. Layout entry,T,F forces
  // the taken arm adjacent, so the emitted branch must be inverted and
  // target F.
  cfg::Module M;
  cfg::BlockId E = M.addBlock(), T = M.addBlock(), F = M.addBlock();
  M.block(E).Insts = {Inst::branch(Opcode::Beq, 1, 2, 0)};
  M.block(E).setSucc(cfg::EdgeKind::Taken, T);
  M.block(E).setSucc(cfg::EdgeKind::Fall, F);
  M.block(T).Insts = {Inst::halt()};
  M.block(F).Insts = {Inst::halt()};
  M.setLayout({E, T, F});
  cfg::EmitStats S;
  Program P = cfg::emitProgram(M, {}, &S);
  EXPECT_EQ(S.InvertedBranches, 1u);
  EXPECT_EQ(P.at(0).Op, Opcode::Bne);
  EXPECT_EQ(P.at(0).Imm, 2); // over T's halt to F at index 2
  EXPECT_EQ(S.InsertedJumps, 0u);
}

TEST(CfgEmit, InsertsJumpForDisplacedFallThrough) {
  // entry falls through to B, but C is laid out between them: a jmp must
  // be synthesized.
  cfg::Module M;
  cfg::BlockId E = M.addBlock(), B = M.addBlock(), C = M.addBlock();
  M.block(E).Insts = {Inst::add(1, 1, 1)};
  M.block(E).setSucc(cfg::EdgeKind::Fall, B);
  M.block(B).Insts = {Inst::halt()};
  M.block(C).Insts = {Inst::halt()};
  M.setLayout({E, C, B});
  cfg::EmitStats S;
  Program P = cfg::emitProgram(M, {}, &S);
  EXPECT_EQ(S.InsertedJumps, 1u);
  EXPECT_EQ(P.at(1).Op, Opcode::Jmp);
  EXPECT_EQ(P.at(1).Imm, 2); // over C's halt to B
}

TEST(CfgEmit, ElidesJumpToNextOnlyWhenAsked) {
  cfg::Module M;
  cfg::BlockId E = M.addBlock(), B = M.addBlock();
  M.block(E).Insts = {Inst::jmp(0)};
  M.block(E).setSucc(cfg::EdgeKind::Taken, B);
  M.block(B).Insts = {Inst::halt()};
  M.setLayout({E, B});
  Program Kept = cfg::emitProgram(M);
  ASSERT_EQ(Kept.numInsts(), 2u);
  EXPECT_EQ(Kept.at(0).Op, Opcode::Jmp);
  cfg::EmitOptions O;
  O.ElideJumpToNext = true;
  cfg::EmitStats S;
  Program Elided = cfg::emitProgram(M, O, &S);
  ASSERT_EQ(Elided.numInsts(), 1u);
  EXPECT_EQ(Elided.at(0).Op, Opcode::Halt);
  EXPECT_EQ(S.ElidedJumps, 1u);
}

TEST(CfgEmit, RelaxesBranchOutgrowingItsField) {
  // A conditional branch over ~40k instructions cannot encode its offset
  // directly; emission must relax it to a branch-around-jump and the
  // result must still round-trip through the interpreter.
  cfg::Module M;
  cfg::BlockId E = M.addBlock(), Pad = M.addBlock(), Far = M.addBlock();
  M.block(E).Insts = {Inst::li(1, 1), Inst::branch(Opcode::Bne, 1, 0, 0)};
  M.block(E).setSucc(cfg::EdgeKind::Taken, Far);
  M.block(E).setSucc(cfg::EdgeKind::Fall, Pad);
  M.block(Pad).Insts.assign(40000, Inst::add(2, 2, 2));
  M.block(Pad).Insts.push_back(Inst::halt());
  M.block(Far).Insts = {Inst::halt()};
  M.setLayout({E, Pad, Far});
  cfg::EmitStats S;
  Program P = cfg::emitProgram(M, {}, &S);
  EXPECT_GE(S.RelaxedBranches, 1u);
  Machine Mach;
  BrrUnitDecider D;
  Interpreter I(P, Mach, D);
  RunStats R = I.run(100);
  EXPECT_TRUE(R.Halted); // took the relaxed path to Far, not the pad
  EXPECT_LT(R.Insts, 10u);
}

TEST(CfgFunctions, ComputeFunctionsGroupsCallTargets) {
  // Find a random program that actually calls the helper (the generator
  // emits jal with low probability per body instruction).
  Program P;
  bool HasCall = false;
  for (uint64_t Seed = 1; Seed <= 50 && !HasCall; ++Seed) {
    P = testgen::randomProgram(Seed, 2);
    for (size_t I = 0; I != P.numInsts(); ++I)
      HasCall = HasCall || P.at(I).Op == Opcode::Jal;
  }
  ASSERT_TRUE(HasCall);
  cfg::Module M = cfg::buildModule(P);
  M.computeFunctions();
  ASSERT_GE(M.functions().size(), 2u);
  const cfg::Function &Main = M.functions().front();
  EXPECT_EQ(Main.Entry, M.layout().front());
  for (const cfg::Function &F : M.functions())
    for (cfg::BlockId B : F.Blocks)
      EXPECT_EQ(M.functionOf(B), static_cast<uint32_t>(&F - M.functions().data()));
}

TEST(CfgModule, SplitBlockMovesSymbolsAndProvenance) {
  ProgramBuilder B;
  B.emit(Inst::add(1, 1, 1));
  B.emit(Inst::add(2, 2, 2));
  B.emit(Inst::add(3, 3, 3));
  B.emit(Inst::halt());
  Program P = B.finish();
  cfg::Module M = cfg::buildModule(P);
  cfg::BlockId Head = M.blockForIndex(0);
  M.addCodeSymbol("pre", Head, 1);
  M.addCodeSymbol("post", Head, 2);
  cfg::BlockId Cont = M.splitBlock(Head, 2);
  EXPECT_EQ(M.block(Head).Insts.size(), 2u);
  EXPECT_EQ(M.block(Head).fallThrough(), Cont);
  EXPECT_EQ(M.blockForIndex(2), Cont);
  EXPECT_EQ(M.block(Cont).OrigIndex, 2u);
  for (const cfg::CodeSymbol &S : M.codeSymbols()) {
    if (S.Name == "pre") {
      EXPECT_EQ(S.Block, Head);
      EXPECT_EQ(S.Offset, 1u);
    } else if (S.Name == "post") {
      EXPECT_EQ(S.Block, Cont);
      EXPECT_EQ(S.Offset, 0u);
    }
  }
  // The split is a semantic no-op: emission reproduces the instruction
  // stream, and the added code symbols resolve to the right addresses.
  Program Q = cfg::emitProgram(M);
  ASSERT_EQ(Q.numInsts(), P.numInsts());
  for (size_t I = 0; I != P.numInsts(); ++I)
    EXPECT_EQ(encode(Q.at(I)), encode(P.at(I)));
  ASSERT_TRUE(Q.hasSymbol("pre"));
  ASSERT_TRUE(Q.hasSymbol("post"));
  EXPECT_EQ(Q.symbol("pre"), 4u);  // instruction 1
  EXPECT_EQ(Q.symbol("post"), 8u); // instruction 2
}

} // namespace
