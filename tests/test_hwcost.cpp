//===- tests/test_hwcost.cpp - Hardware cost model tests ------------------===//

#include "core/HwCostModel.h"

#include <gtest/gtest.h>

using namespace bor;

// The abstract's headline claims: ~20 bits of state and <100 gates for a
// simple processor; <100 bits and at most a few hundred gates for an
// aggressive 4-wide superscalar.
TEST(HwCostModel, SingleIssueMatchesPaperClaims) {
  HwCostInputs In; // defaults: 20-bit LFSR, 2 taps, 16 freqs, 1-wide
  HwCostEstimate E = estimateBrrCost(In);
  EXPECT_EQ(E.StateBits, 20u);
  EXPECT_LT(E.MacroGates, 100u);
}

TEST(HwCostModel, FourWideReplicatedMatchesPaperClaims) {
  HwCostInputs In;
  In.DecodeWidth = 4;
  In.Replicated = true;
  HwCostEstimate E = estimateBrrCost(In);
  EXPECT_LE(E.StateBits, 100u);
  EXPECT_EQ(E.StateBits, 80u); // 4 x 20-bit LFSR
  EXPECT_LT(E.MacroGates, 400u);
}

TEST(HwCostModel, MacroGateAccountingMatchesSection33Summary) {
  // "15 AND gates, one of each size from 2 to 16, a 16-input mux", plus
  // feedback XORs and a small control constant.
  HwCostInputs In;
  In.NumTaps = 2;
  HwCostEstimate E = estimateBrrCost(In);
  // 1 XOR + 15 ANDs + 1 mux + 8 control = 25.
  EXPECT_EQ(E.MacroGates, 25u);
}

TEST(HwCostModel, TwoInputEquivalentExceedsMacro) {
  HwCostInputs In;
  HwCostEstimate E = estimateBrrCost(In);
  EXPECT_GT(E.TwoInputEquivGates, E.MacroGates);
  // AND tree alone is sum_{k=2..16}(k-1) = 120 two-input gates.
  EXPECT_GE(E.TwoInputEquivGates, 120u);
}

TEST(HwCostModel, DeterministicAddsRecoveryState) {
  HwCostInputs Base;
  HwCostInputs Det = Base;
  Det.Deterministic = true;
  Det.MaxInFlight = 8;
  HwCostEstimate EBase = estimateBrrCost(Base);
  HwCostEstimate EDet = estimateBrrCost(Det);
  // 8 recovery bits + a 4-value... ceil(log2(9)) = 4-bit counter.
  EXPECT_EQ(EDet.StateBits, EBase.StateBits + 8 + 4);
}

TEST(HwCostModel, SharedDesignSavesState) {
  HwCostInputs Repl, Shared;
  Repl.DecodeWidth = Shared.DecodeWidth = 4;
  Repl.Replicated = true;
  Shared.Replicated = false;
  HwCostEstimate ER = estimateBrrCost(Repl);
  HwCostEstimate ES = estimateBrrCost(Shared);
  EXPECT_LT(ES.StateBits, ER.StateBits);
  EXPECT_EQ(ES.StateBits, 20u);
}

TEST(HwCostModel, GatesScaleLinearlyWithDecodeWidth) {
  HwCostInputs One, Four;
  Four.DecodeWidth = 4;
  HwCostEstimate E1 = estimateBrrCost(One);
  HwCostEstimate E4 = estimateBrrCost(Four);
  EXPECT_EQ(E4.MacroGates, 4 * E1.MacroGates);
  EXPECT_EQ(E4.StateBits, 4 * E1.StateBits);
}

TEST(HwCostModel, WiderLfsrCostsOnlyState) {
  HwCostInputs W16, W32;
  W16.LfsrWidth = 16;
  W32.LfsrWidth = 32;
  HwCostEstimate E16 = estimateBrrCost(W16);
  HwCostEstimate E32 = estimateBrrCost(W32);
  EXPECT_EQ(E32.StateBits - E16.StateBits, 16u);
  EXPECT_EQ(E32.MacroGates, E16.MacroGates);
}

TEST(HwCostModel, DescribeMentionsConfiguration) {
  HwCostInputs In;
  In.DecodeWidth = 4;
  std::string S = describeBrrCost(In);
  EXPECT_NE(S.find("4-wide"), std::string::npos);
  EXPECT_NE(S.find("replicated"), std::string::npos);
  EXPECT_NE(S.find("state=80 bits"), std::string::npos);
}

TEST(HwCostModelDeath, DeterministicWithoutBufferAsserts) {
  HwCostInputs In;
  In.Deterministic = true;
  In.MaxInFlight = 0;
  EXPECT_DEATH(estimateBrrCost(In), "recovery buffer");
}
