# Checkpoint-library smoke check on bor-bench:
#
#   1. A library-backed sampled fig13 sweep produces byte-identical JSON to
#      the plain sampled sweep once the wall-clock phase timers (ff_ms /
#      warm_ms / measure_ms — the only honest difference) are stripped.
#   2. The library actually skips re-executed prefix instructions:
#      sample.insts.fast_forward counts only *executed* fast-forward, so
#      the plain run's count must be >= 5x the library run's, with
#      ckpt.insts.skipped / ckpt.resumes / ckpt.pages.shared proving the
#      COW resume path carried the difference.
#   3. A second run against the same --ckpt-dir loads every library from
#      disk (ckpt.libraries.loaded, no build instructions) and reproduces
#      the same stripped JSON — the cross-invocation reuse win.
#
# Counter identities gate; wall-clock is reported but never gates (CI
# machines vary too much for a timing assertion to be meaningful).
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR}/libs)

set(COMMON --experiment fig13 --scale 100 --sample --sample-period 50000
           --threads 2 --no-table)

# run(<tag> [extra bor-bench flags...]): one sweep writing ${tag}.json and
# ${tag}_counters.txt into the workdir.
function(run tag)
  string(TIMESTAMP T0 %s)
  execute_process(COMMAND ${BENCH} ${COMMON}
                          --json ${WORKDIR}/${tag}.json
                          --counters-out ${WORKDIR}/${tag}_counters.txt
                          ${ARGN}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  string(TIMESTAMP T1 %s)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "bor-bench ${tag} run failed (${RC}):\n${OUT}\n${ERR}")
  endif()
  math(EXPR ELAPSED "${T1} - ${T0}")
  message(STATUS "${tag} sweep took ~${ELAPSED}s (informational only)")
endfunction()

# stripped(<out-var> <tag>): ${tag}.json with the wall-clock phase timers
# removed — everything else must be byte-identical across engines.
function(stripped out tag)
  file(READ ${WORKDIR}/${tag}.json TEXT)
  string(REGEX REPLACE "\"(ff|warm|measure)_ms\":[^,}]*" "" TEXT "${TEXT}")
  set(${out} "${TEXT}" PARENT_SCOPE)
endfunction()

# counter(<out-var> <tag> <name>): extract one "name   value" counter line;
# fails the script when the counter is absent from the snapshot.
function(counter out tag name)
  file(READ ${WORKDIR}/${tag}_counters.txt TEXT)
  string(REGEX MATCH "${name} +([0-9]+)" _ "${TEXT}")
  if("${CMAKE_MATCH_1}" STREQUAL "")
    message(FATAL_ERROR "counter '${name}' missing from ${tag}_counters.txt")
  endif()
  set(${out} ${CMAKE_MATCH_1} PARENT_SCOPE)
endfunction()

# counter_or_zero(<out-var> <tag> <name>): as counter(), but an absent
# counter reads as 0 (counters register on first use, so a run that never
# builds a library has no ckpt.build.insts line at all).
function(counter_or_zero out tag name)
  file(READ ${WORKDIR}/${tag}_counters.txt TEXT)
  string(REGEX MATCH "${name} +([0-9]+)" _ "${TEXT}")
  if("${CMAKE_MATCH_1}" STREQUAL "")
    set(${out} 0 PARENT_SCOPE)
  else()
    set(${out} ${CMAKE_MATCH_1} PARENT_SCOPE)
  endif()
endfunction()

run(plain)
run(lib --ckpt-dir ${WORKDIR}/libs)

# 1. Byte-identical experiment output.
stripped(PLAIN_JSON plain)
stripped(LIB_JSON lib)
if(NOT PLAIN_JSON STREQUAL LIB_JSON)
  message(FATAL_ERROR
          "library-backed sweep JSON differs from plain sampling "
          "(beyond the ms phase timers); diff ${WORKDIR}/plain.json "
          "against ${WORKDIR}/lib.json")
endif()

# 2. The library run skipped >= 5x of the plain run's executed
#    fast-forward instructions, via real COW resumes.
counter(FF_PLAIN plain "sample\\.insts\\.fast_forward")
counter(FF_LIB lib "sample\\.insts\\.fast_forward")
counter(SKIPPED lib "ckpt\\.insts\\.skipped")
counter(RESUMES lib "ckpt\\.resumes")
counter(SHARED lib "ckpt\\.pages\\.shared")
counter(BUILT lib "ckpt\\.libraries\\.built")

if(FF_PLAIN LESS 1)
  message(FATAL_ERROR "plain run fast-forwarded no instructions")
endif()
math(EXPR NEEDED "5 * ${FF_LIB}")
if(FF_PLAIN LESS NEEDED)
  message(FATAL_ERROR
          "library fast-forward win below 5x: plain executed ${FF_PLAIN} "
          "ff insts, library still executed ${FF_LIB}")
endif()
if(SKIPPED LESS 1 OR RESUMES LESS 1)
  message(FATAL_ERROR
          "COW resume path idle: skipped=${SKIPPED} resumes=${RESUMES}")
endif()
if(SHARED LESS 1)
  message(FATAL_ERROR "no pages COW-shared (ckpt.pages.shared = 0)")
endif()
if(BUILT LESS 1)
  message(FATAL_ERROR "no libraries built (ckpt.libraries.built = 0)")
endif()

# 3. Warm rerun: libraries load from disk, nothing is rebuilt, output is
#    unchanged.
run(warm --ckpt-dir ${WORKDIR}/libs)
counter(LOADED warm "ckpt\\.libraries\\.loaded")
counter_or_zero(WARM_BUILD_INSTS warm "ckpt\\.build\\.insts")
if(LOADED LESS 1)
  message(FATAL_ERROR "warm rerun loaded no libraries from the cache dir")
endif()
if(WARM_BUILD_INSTS GREATER 0)
  message(FATAL_ERROR
          "warm rerun re-executed ${WARM_BUILD_INSTS} build instructions "
          "despite the populated cache dir")
endif()
stripped(WARM_JSON warm)
if(NOT PLAIN_JSON STREQUAL WARM_JSON)
  message(FATAL_ERROR "warm library rerun JSON differs from plain sampling")
endif()

message(STATUS "ckpt perf smoke test passed "
               "(plain ff ${FF_PLAIN} -> library ff ${FF_LIB}, "
               "${SKIPPED} insts resumed over ${RESUMES} resumes, "
               "${LOADED} libraries reloaded warm)")
