//===- tests/test_predictor.cpp - Tournament predictor tests --------------===//

#include "uarch/BranchPredictor.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

/// Feeds one resolved branch through the predictor, returning whether the
/// prediction was correct.
bool feed(TournamentPredictor &P, uint64_t Pc, bool Taken) {
  BranchPrediction Pred = P.predict(Pc);
  P.resolve(Pc, Pred.HistBefore, Pred.Taken, Taken);
  if (Pred.Taken != Taken)
    P.repairHistory(Pred.HistBefore, Taken);
  return Pred.Taken == Taken;
}

} // namespace

TEST(TournamentPredictor, LearnsStronglyBiasedBranch) {
  TournamentPredictor P;
  int Correct = 0;
  for (int I = 0; I != 100; ++I)
    Correct += feed(P, 0x40, true);
  // After warmup it should predict taken every time.
  EXPECT_GT(Correct, 95);
}

TEST(TournamentPredictor, LearnsAlternatingPatternViaHistory) {
  TournamentPredictor P;
  int CorrectLate = 0;
  for (int I = 0; I != 400; ++I) {
    bool Taken = I % 2 == 0;
    bool Correct = feed(P, 0x80, Taken);
    if (I >= 200)
      CorrectLate += Correct;
  }
  // gshare sees the alternating history and nails it.
  EXPECT_GT(CorrectLate, 190);
}

TEST(TournamentPredictor, LearnsPeriodicPattern) {
  // Taken every 4th execution: exactly the counter-check branch of a
  // sampling framework at interval 4. The 16-bit history captures it.
  TournamentPredictor P;
  int CorrectLate = 0;
  for (int I = 0; I != 800; ++I) {
    bool Taken = I % 4 == 3;
    bool Correct = feed(P, 0xc0, Taken);
    if (I >= 400)
      CorrectLate += Correct;
  }
  EXPECT_GT(CorrectLate, 390);
}

TEST(TournamentPredictor, RandomOutcomesMispredictHalfTheTime) {
  // Why branch prediction cannot help brr (Section 3.3): a maximal LFSR
  // sequence looks random to a history predictor.
  TournamentPredictor P;
  uint32_t Lfsr = 0xace1;
  int Correct = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I) {
    // 16-bit LFSR bit as "random" outcome at ~50%.
    bool Taken = Lfsr & 1;
    uint32_t Fb = ((Lfsr >> 0) ^ (Lfsr >> 2) ^ (Lfsr >> 3) ^ (Lfsr >> 5)) & 1;
    Lfsr = (Lfsr >> 1) | (Fb << 15);
    Correct += feed(P, 0x100, Taken);
  }
  EXPECT_NEAR(static_cast<double>(Correct) / N, 0.5, 0.05);
}

TEST(TournamentPredictor, MispredictionsCounted) {
  TournamentPredictor P;
  for (int I = 0; I != 10; ++I)
    feed(P, 0x40, true);
  uint64_t Mis = P.stats().Mispredictions;
  EXPECT_GT(Mis, 0u);  // the cold predictions
  EXPECT_LT(Mis, 5u);
  EXPECT_EQ(P.stats().Predictions, 10u);
}

TEST(TournamentPredictor, HistoryUpdatedSpeculatively) {
  TournamentPredictor P;
  uint32_t H0 = P.history();
  BranchPrediction Pred = P.predict(0x40);
  EXPECT_EQ(Pred.HistBefore, H0);
  // History shifts with the *predicted* outcome before resolution.
  EXPECT_EQ(P.history(), ((H0 << 1) | (Pred.Taken ? 1u : 0u)) & 0xffffu);
}

TEST(TournamentPredictor, RepairHistoryRestoresAndAppends) {
  TournamentPredictor P;
  BranchPrediction Pred = P.predict(0x40);
  P.predict(0x44);
  P.predict(0x48);
  P.repairHistory(Pred.HistBefore, true);
  EXPECT_EQ(P.history(), ((Pred.HistBefore << 1) | 1) & 0xffff);
}

TEST(TournamentPredictor, DistinctPcsTrainIndependentBimodalEntries) {
  TournamentPredictor P;
  for (int I = 0; I != 50; ++I) {
    feed(P, 0x1000, true);
    feed(P, 0x2000, false);
  }
  BranchPrediction A = P.predict(0x1000);
  P.repairHistory(A.HistBefore, true);
  BranchPrediction B = P.predict(0x2000);
  P.repairHistory(B.HistBefore, false);
  EXPECT_TRUE(A.Taken);
  EXPECT_FALSE(B.Taken);
}

TEST(TournamentPredictor, StateBitsMatchConfiguration) {
  TournamentPredictor P;
  // 2 bits x (64K gshare + 64K bimodal + 64K chooser) + 16 history bits.
  EXPECT_EQ(P.stateBits(), 2ull * 3 * 65536 + 16);
}

TEST(TournamentPredictor, AliasingDegradesUnrelatedBranch) {
  // Section 2 item 6: a low-entropy sampling branch aliasing into the
  // same gshare entries perturbs training of other branches. Construct two
  // PCs whose (pc>>2) differ only above the history mask so they share
  // gshare rows under equal history.
  PredictorConfig Cfg;
  TournamentPredictor P(Cfg);
  uint64_t PcA = 0x10;
  uint64_t PcB = PcA + (1ull << 20); // same low index bits
  // Train A strongly taken.
  for (int I = 0; I != 1000; ++I)
    feed(P, PcA, true);
  int CorrectWithoutAlias = 0;
  for (int I = 0; I != 100; ++I)
    CorrectWithoutAlias += feed(P, PcA, true);
  // Hammer B not-taken (the aliasing sampler), then re-test A.
  for (int I = 0; I != 1000; ++I)
    feed(P, PcB, false);
  BranchPrediction Pred = P.predict(PcA);
  P.repairHistory(Pred.HistBefore, true);
  // The bimodal entry for A aliases with B (same 64K index modulo), so
  // prediction flips. This documents the destructive-interference effect.
  EXPECT_EQ(CorrectWithoutAlias, 100);
  EXPECT_FALSE(Pred.Taken);
}

TEST(PredictorKinds, BimodalCannotLearnAlternation) {
  PredictorConfig Cfg;
  Cfg.Kind = PredictorKind::BimodalOnly;
  TournamentPredictor P(Cfg);
  int CorrectLate = 0;
  for (int I = 0; I != 400; ++I) {
    bool Correct = feed(P, 0x80, I % 2 == 0);
    if (I >= 200)
      CorrectLate += Correct;
  }
  // A per-PC 2-bit counter oscillates on a perfectly alternating branch.
  EXPECT_LT(CorrectLate, 140);
}

TEST(PredictorKinds, GshareOnlyLearnsAlternation) {
  PredictorConfig Cfg;
  Cfg.Kind = PredictorKind::GshareOnly;
  TournamentPredictor P(Cfg);
  int CorrectLate = 0;
  for (int I = 0; I != 400; ++I) {
    bool Correct = feed(P, 0x80, I % 2 == 0);
    if (I >= 200)
      CorrectLate += Correct;
  }
  EXPECT_GT(CorrectLate, 190);
}

TEST(PredictorKinds, ShortHistoryGshareForgetsLongPatterns) {
  // A period-12 pattern fits a 16-bit history but not a 4-bit one.
  auto LateAccuracy = [](unsigned HistoryBits) {
    PredictorConfig Cfg;
    Cfg.Kind = PredictorKind::GshareOnly;
    Cfg.HistoryBits = HistoryBits;
    TournamentPredictor P(Cfg);
    int CorrectLate = 0;
    for (int I = 0; I != 4000; ++I) {
      bool Correct = feed(P, 0x40, I % 12 == 0);
      if (I >= 2000)
        CorrectLate += Correct;
    }
    return CorrectLate;
  };
  EXPECT_GT(LateAccuracy(16), 1950);
  EXPECT_LT(LateAccuracy(4), LateAccuracy(16));
}

TEST(PredictorKinds, DefaultIsTournament) {
  PredictorConfig Cfg;
  EXPECT_EQ(Cfg.Kind, PredictorKind::Tournament);
}
