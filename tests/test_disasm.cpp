//===- tests/test_disasm.cpp - Disassembler tests -------------------------===//

#include "isa/Disasm.h"

#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(Disasm, AluForms) {
  EXPECT_EQ(disassemble(Inst::add(3, 1, 2)), "add r3, r1, r2");
  EXPECT_EQ(disassemble(Inst::addi(4, 5, -7)), "addi r4, r5, -7");
}

TEST(Disasm, MemoryForms) {
  EXPECT_EQ(disassemble(Inst::ld(1, 2, 16)), "ld r1, 16(r2)");
  EXPECT_EQ(disassemble(Inst::st(3, 4, -8)), "st r3, -8(r4)");
}

TEST(Disasm, BranchShowsOffsetAndTarget) {
  std::string S = disassemble(Inst::branch(Opcode::Beq, 1, 2, -3), 10);
  EXPECT_EQ(S, "beq r1, r2, -3 (-> 7)");
}

TEST(Disasm, BranchWithoutIndexShowsOffsetOnly) {
  EXPECT_EQ(disassemble(Inst::branch(Opcode::Bne, 1, 2, 5)),
            "bne r1, r2, +5");
}

TEST(Disasm, BrrShowsFrequencyAsInterval) {
  std::string S = disassemble(Inst::brr(FreqCode(9), 4), 0);
  EXPECT_EQ(S, "brr 1/1024, +4 (-> 4)");
}

TEST(Disasm, SpecialForms) {
  EXPECT_EQ(disassemble(Inst::nop()), "nop");
  EXPECT_EQ(disassemble(Inst::halt()), "halt");
  EXPECT_EQ(disassemble(Inst::marker(7)), "marker 7");
  EXPECT_EQ(disassemble(Inst::ret()), "jalr r0, r31");
}

TEST(Disasm, WholeProgramHasOneLinePerInst) {
  ProgramBuilder B;
  B.emit(Inst::nop());
  B.emit(Inst::add(1, 2, 3));
  B.emit(Inst::halt());
  Program P = B.finish();
  std::string S = disassemble(P);
  size_t Lines = 0;
  for (char C : S)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 3u);
  EXPECT_NE(S.find("0:"), std::string::npos);
  EXPECT_NE(S.find("add r1, r2, r3"), std::string::npos);
}
