//===- tests/test_stats.cpp - Statistics helper tests ---------------------===//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bor;

TEST(RunningStat, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.ci95HalfWidth(), 0.0);
}

TEST(RunningStat, EmptyHasNoExtrema) {
  // An empty accumulator must not report 0.0 as a minimum or maximum —
  // 0.0 is a perfectly plausible sample. NaN can't be confused for data.
  RunningStat S;
  EXPECT_TRUE(std::isnan(S.min()));
  EXPECT_TRUE(std::isnan(S.max()));
}

TEST(RunningStat, ExtremaRealAfterFirstSample) {
  RunningStat S;
  S.add(-2.5);
  EXPECT_EQ(S.min(), -2.5);
  EXPECT_EQ(S.max(), -2.5);
}

TEST(RunningStat, SingleValue) {
  RunningStat S;
  S.add(5.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_EQ(S.mean(), 5.0);
  EXPECT_EQ(S.variance(), 0.0);
  EXPECT_EQ(S.min(), 5.0);
  EXPECT_EQ(S.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample variance with N-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, MinMaxTracked) {
  RunningStat S;
  for (double X : {3.0, -1.0, 10.0, 2.0})
    S.add(X);
  EXPECT_EQ(S.min(), -1.0);
  EXPECT_EQ(S.max(), 10.0);
}

TEST(RunningStat, CiShrinksWithSamples) {
  RunningStat Small, Large;
  for (int I = 0; I != 10; ++I)
    Small.add(I % 2);
  for (int I = 0; I != 1000; ++I)
    Large.add(I % 2);
  EXPECT_GT(Small.ci95HalfWidth(), Large.ci95HalfWidth());
}

TEST(Percent, Basics) {
  EXPECT_DOUBLE_EQ(percent(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(percent(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(percent(4, 4), 100.0);
  EXPECT_DOUBLE_EQ(percent(1, 0), 0.0);
}

TEST(GapHistogram, BucketsAndOverflow) {
  GapHistogram H(4);
  H.add(0);
  H.add(1);
  H.add(1);
  H.add(3);
  H.add(10);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 2u);
  EXPECT_EQ(H.bucket(2), 0u);
  EXPECT_EQ(H.bucket(3), 1u);
  EXPECT_EQ(H.overflow(), 1u);
  EXPECT_EQ(H.total(), 5u);
}

TEST(GapHistogram, MeanIncludesOverflow) {
  GapHistogram H(2);
  H.add(0);
  H.add(10);
  EXPECT_DOUBLE_EQ(H.meanGap(), 5.0);
}

TEST(GapHistogram, EmptyMeanIsZero) {
  GapHistogram H(2);
  EXPECT_DOUBLE_EQ(H.meanGap(), 0.0);
}
