//===- tests/test_report.cpp - Manifest, time-series and report tests -----===//
//
// Covers the observability pipeline behind bor-report: run-manifest
// round-trips, JSON-lines result loading, the per-interval TimeSeries
// sink's determinism contract, counter documentation coverage, histogram
// percentiles, path-creation helpers, and the CI-aware comparison rules
// (wall-clock exclusion, CI-overlap suppression, metric direction).
//
//===----------------------------------------------------------------------===//

#include "exp/Manifest.h"
#include "exp/Report.h"
#include "support/Path.h"
#include "telemetry/CounterInfo.h"
#include "telemetry/Counters.h"
#include "telemetry/TimeSeries.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace bor;
using namespace bor::exp;

namespace {

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + Name;
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::string Err;
  if (!ensureParentDirs(Path, Err))
    return false;
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs(Text.c_str(), F);
  return std::fclose(F) == 0;
}

/// A minimal two-cell results stream in the JsonLinesSink format.
std::string sampleResults(double Ipc0, double Ci0 = 0.0) {
  std::string Ci = Ci0 != 0.0 ? ",\"ipc_ci95\":" + std::to_string(Ci0) : "";
  return
      "{\"experiment\":\"demo\",\"kind\":\"header\",\"title\":\"Demo\","
      "\"cells\":2}\n"
      "{\"experiment\":\"demo\",\"kind\":\"cell\",\"cell\":0,"
      "\"params\":{\"size\":\"small\"},\"metrics\":{\"ipc\":" +
      std::to_string(Ipc0) + Ci +
      ",\"roi_cycles\":1000,\"full_ms\":1.5}}\n"
      "{\"experiment\":\"demo\",\"kind\":\"cell\",\"cell\":1,"
      "\"params\":{\"size\":\"large\"},\"metrics\":{\"ipc\":2.0,"
      "\"roi_cycles\":4000,\"verdict\":\"PASS\"}}\n"
      "{\"experiment\":\"demo\",\"kind\":\"summary\","
      "\"params\":{},\"metrics\":{\"accuracy\":0.99}}\n";
}

LoadedRun loadFromText(const std::string &Text) {
  LoadedRun Run;
  Run.Source = "inline";
  std::string Err;
  EXPECT_TRUE(parseResultsJsonLines(Text, Run.Experiments, Err)) << Err;
  return Run;
}

} // namespace

//===----------------------------------------------------------------------===//
// support/Path
//===----------------------------------------------------------------------===//

TEST(Path, EnsureParentDirsCreatesChain) {
  std::string Path = tempPath("bor_path_test/a/b/c/file.txt");
  std::string Err;
  ASSERT_TRUE(ensureParentDirs(Path, Err)) << Err;
  ASSERT_TRUE(writeFile(Path, "x"));
  std::remove(Path.c_str());
}

TEST(Path, EnsureParentDirsNoParentIsNoOp) {
  std::string Err;
  EXPECT_TRUE(ensureParentDirs("bare-filename.txt", Err)) << Err;
}

TEST(Path, EnsureParentDirsFailsThroughNonDirectory) {
  std::string Err;
  EXPECT_FALSE(ensureParentDirs("/dev/null/sub/file.txt", Err));
  EXPECT_NE(Err.find("/dev/null"), std::string::npos) << Err;
}

TEST(Path, JoinPathSingleSeparator) {
  EXPECT_EQ(joinPath("a", "b"), "a/b");
  EXPECT_EQ(joinPath("a/", "b"), "a/b");
  EXPECT_EQ(joinPath("", "b"), "b");
}

//===----------------------------------------------------------------------===//
// Histogram percentiles
//===----------------------------------------------------------------------===//

TEST(Histogram, PercentilesFromLog2Buckets) {
  telemetry::CounterRegistry R;
  unsigned H = R.histogramId("h");
  // 90 zeros and 10 large values: p50 lands in the zero bucket, p99 in
  // the [64, 128) bucket.
  for (int I = 0; I != 90; ++I)
    R.observe(H, 0);
  for (int I = 0; I != 10; ++I)
    R.observe(H, 100);
  telemetry::CounterSnapshot Snap = R.snapshot();
  const auto &Hist = Snap.Histograms.at(0);
  EXPECT_EQ(Hist.percentile(0.50), 0u);
  EXPECT_EQ(Hist.percentile(0.90), 0u);
  EXPECT_EQ(Hist.percentile(0.99), 64u);
}

TEST(Histogram, RenderIncludesPercentiles) {
  telemetry::CounterRegistry R;
  unsigned H = R.histogramId("h");
  R.observe(H, 5);
  std::string Text = R.snapshot().render();
  EXPECT_NE(Text.find("p50"), std::string::npos) << Text;
  EXPECT_NE(Text.find("p99"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// Counter documentation coverage
//===----------------------------------------------------------------------===//

TEST(CounterInfo, TableIsSortedAndNonEmpty) {
  const auto &All = telemetry::allCounterInfo();
  ASSERT_FALSE(All.empty());
  for (size_t I = 1; I < All.size(); ++I)
    EXPECT_LT(All[I - 1].Name, All[I].Name);
  for (const auto &Info : All)
    EXPECT_FALSE(Info.Description.empty()) << Info.Name;
}

TEST(CounterInfo, DescribeKnownAndUnknown) {
  EXPECT_FALSE(telemetry::describeCounter("exp.cells").empty());
  EXPECT_TRUE(telemetry::describeCounter("no.such.counter").empty());
}

TEST(CounterInfo, RenderListHasBothSections) {
  std::string Text = telemetry::renderCounterList();
  EXPECT_NE(Text.find("== counters =="), std::string::npos);
  EXPECT_NE(Text.find("== histograms =="), std::string::npos);
  EXPECT_NE(Text.find("exp.cells"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TimeSeries
//===----------------------------------------------------------------------===//

TEST(TimeSeries, ScopeTagsAndRunIndices) {
  telemetry::TimeSeries TS;
  {
    telemetry::TimeSeries::Scope Tag("exp", 3);
    TS.record({{1.0, 0.1, 2.0, 10}});
    TS.record({{1.5, 0.2, 3.0, 20}}); // second run in the same cell
  }
  {
    telemetry::TimeSeries::Scope Tag("exp", 1);
    TS.record({{2.0, 0.0, 0.0, 0}});
  }
  EXPECT_EQ(TS.numSeries(), 3u);
  std::string Json = TS.renderJson();
  // Sorted by (experiment, cell, run): cell 1 first, then cell 3 run 0/1.
  size_t C1 = Json.find("\"cell\":1");
  size_t C3R0 = Json.find("\"cell\":3,\"run\":0");
  size_t C3R1 = Json.find("\"cell\":3,\"run\":1");
  ASSERT_NE(C1, std::string::npos) << Json;
  ASSERT_NE(C3R0, std::string::npos) << Json;
  ASSERT_NE(C3R1, std::string::npos) << Json;
  EXPECT_LT(C1, C3R0);
  EXPECT_LT(C3R0, C3R1);
}

TEST(TimeSeries, RenderIsArrivalOrderInvariant) {
  // The same tagged work recorded in opposite arrival orders (as thread
  // scheduling would reorder it) renders identically.
  telemetry::TimeSeries A, B;
  auto RecordCell = [](telemetry::TimeSeries &TS, int64_t Cell, double Ipc) {
    telemetry::TimeSeries::Scope Tag("exp", Cell);
    TS.record({{Ipc, 0.0, 0.0, 0}});
  };
  RecordCell(A, 0, 1.0);
  RecordCell(A, 1, 2.0);
  RecordCell(B, 1, 2.0);
  RecordCell(B, 0, 1.0);
  EXPECT_EQ(A.renderJson(), B.renderJson());
}

TEST(TimeSeries, ThreadedRecordingIsDeterministic) {
  telemetry::TimeSeries A, B;
  auto Work = [](telemetry::TimeSeries &TS) {
    std::vector<std::thread> Threads;
    for (int T = 0; T != 4; ++T)
      Threads.emplace_back([&TS, T] {
        for (int C = 0; C != 4; ++C) {
          telemetry::TimeSeries::Scope Tag("exp", T * 4 + C);
          TS.record({{double(T), 0.0, double(C), 7}});
        }
      });
    for (auto &Th : Threads)
      Th.join();
  };
  Work(A);
  Work(B);
  EXPECT_EQ(A.renderJson(), B.renderJson());
}

TEST(TimeSeries, NestedScopeRestoresOuterTag) {
  telemetry::TimeSeries TS;
  telemetry::TimeSeries::Scope Outer("outer", 0);
  TS.record({{1.0, 0.0, 0.0, 0}});
  {
    telemetry::TimeSeries::Scope Inner("inner", 5);
    TS.record({{2.0, 0.0, 0.0, 0}});
  }
  TS.record({{3.0, 0.0, 0.0, 0}}); // back under outer, run index 1
  std::string Json = TS.renderJson();
  EXPECT_NE(Json.find("\"experiment\":\"inner\",\"cell\":5,\"run\":0"),
            std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"experiment\":\"outer\",\"cell\":0,\"run\":1"),
            std::string::npos)
      << Json;
}

//===----------------------------------------------------------------------===//
// Results loading and manifest round-trip
//===----------------------------------------------------------------------===//

TEST(Manifest, ParsesResultsJsonLines) {
  LoadedRun Run = loadFromText(sampleResults(1.5));
  ASSERT_EQ(Run.Experiments.size(), 1u);
  const LoadedExperiment &E = Run.Experiments[0];
  EXPECT_EQ(E.Name, "demo");
  EXPECT_EQ(E.Title, "Demo");
  EXPECT_EQ(E.Cells, 2u);
  ASSERT_EQ(E.Records.size(), 3u);
  EXPECT_FALSE(E.Records[0].IsSummary);
  EXPECT_EQ(E.Records[0].paramKey(), "cell size=small");
  const LoadedMetric *Ipc = E.Records[0].findMetric("ipc");
  ASSERT_NE(Ipc, nullptr);
  EXPECT_DOUBLE_EQ(Ipc->Num, 1.5);
  const LoadedMetric *Verdict = E.Records[1].findMetric("verdict");
  ASSERT_NE(Verdict, nullptr);
  EXPECT_FALSE(Verdict->IsNumber);
  EXPECT_EQ(Verdict->Text, "PASS");
  EXPECT_TRUE(E.Records[2].IsSummary);
  EXPECT_EQ(E.Records[2].paramKey(), "summary");
}

TEST(Manifest, RejectsRecordWithoutHeader) {
  std::vector<LoadedExperiment> Out;
  std::string Err;
  EXPECT_FALSE(parseResultsJsonLines(
      "{\"experiment\":\"x\",\"kind\":\"cell\",\"cell\":0,"
      "\"params\":{},\"metrics\":{}}\n",
      Out, Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
}

TEST(Manifest, RejectsMalformedJson) {
  std::vector<LoadedExperiment> Out;
  std::string Err;
  EXPECT_FALSE(parseResultsJsonLines("{oops\n", Out, Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos) << Err;
}

TEST(Manifest, WriteAndLoadRoundTrip) {
  std::string Dir = tempPath("bor_manifest_rt");
  ASSERT_TRUE(writeFile(joinPath(Dir, "demo.json"), sampleResults(1.5)));

  ManifestInfo Info;
  Info.Command = "bor-bench --experiment demo";
  Info.Scale = 100;
  Info.Threads = 4;
  Info.Sample = true;
  Info.Experiments.push_back("demo");
  Info.ResultFiles.emplace_back("demo", "demo.json");
  std::string Err;
  ASSERT_TRUE(writeManifest(Dir, Info, Err)) << Err;

  LoadedRun Run;
  ASSERT_TRUE(loadRun(Dir, Run, Err)) << Err;
  EXPECT_TRUE(Run.HasManifest);
  EXPECT_EQ(Run.Command, "bor-bench --experiment demo");
  EXPECT_EQ(Run.Scale, 100u);
  EXPECT_EQ(Run.Threads, 4u);
  EXPECT_TRUE(Run.Sample);
  ASSERT_NE(Run.findExperiment("demo"), nullptr);
  EXPECT_EQ(Run.findExperiment("demo")->Records.size(), 3u);
}

TEST(Manifest, LoadsBareResultsFile) {
  std::string Path = tempPath("bor_bare_results.json");
  ASSERT_TRUE(writeFile(Path, sampleResults(1.5)));
  LoadedRun Run;
  std::string Err;
  ASSERT_TRUE(loadRun(Path, Run, Err)) << Err;
  EXPECT_FALSE(Run.HasManifest);
  ASSERT_EQ(Run.Experiments.size(), 1u);
  std::remove(Path.c_str());
}

TEST(Manifest, LoadRejectsMissingPath) {
  LoadedRun Run;
  std::string Err;
  EXPECT_FALSE(loadRun(tempPath("bor_no_such_run_dir_xyz"), Run, Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Report comparison rules
//===----------------------------------------------------------------------===//

TEST(Report, SparklineShape) {
  EXPECT_EQ(sparkline({}), "");
  std::string Flat = sparkline({1.0, 1.0, 1.0});
  std::string Ramp = sparkline({0.0, 0.5, 1.0});
  EXPECT_FALSE(Flat.empty());
  EXPECT_FALSE(Ramp.empty());
  EXPECT_NE(Ramp, Flat);
  // Min maps to the lowest glyph, max to the highest.
  EXPECT_EQ(Ramp.find("▁"), 0u);
  EXPECT_NE(Ramp.find("█"), std::string::npos);
}

TEST(Report, WallClockMetricNames) {
  EXPECT_TRUE(isWallClockMetric("ff_ms"));
  EXPECT_TRUE(isWallClockMetric("sampled_wallclock_pct"));
  EXPECT_TRUE(isWallClockMetric("wall_s"));
  EXPECT_FALSE(isWallClockMetric("ipc"));
  EXPECT_FALSE(isWallClockMetric("roi_cycles"));
}

TEST(Report, IdenticalRunsAreClean) {
  LoadedRun Base = loadFromText(sampleResults(1.5));
  LoadedRun Cand = loadFromText(sampleResults(1.5));
  ReportResult R = compareRuns(Base, Cand);
  EXPECT_TRUE(R.clean()) << R.Markdown;
  EXPECT_EQ(R.Regressions, 0u);
  EXPECT_NE(R.Markdown.find("CLEAN"), std::string::npos);
}

TEST(Report, WallClockChangesNeverGate) {
  std::string Base = sampleResults(1.5);
  std::string Cand = Base;
  size_t Pos = Cand.find("\"full_ms\":1.5");
  ASSERT_NE(Pos, std::string::npos);
  Cand.replace(Pos, 13, "\"full_ms\":9.9");
  ReportResult R = compareRuns(loadFromText(Base), loadFromText(Cand));
  EXPECT_TRUE(R.clean()) << R.Markdown;
}

TEST(Report, LowerIpcIsRegressionHigherIsImprovement) {
  LoadedRun Base = loadFromText(sampleResults(2.0));
  ReportResult Down = compareRuns(Base, loadFromText(sampleResults(1.0)));
  EXPECT_EQ(Down.Regressions, 1u) << Down.Markdown;
  ReportResult Up = compareRuns(Base, loadFromText(sampleResults(3.0)));
  EXPECT_EQ(Up.Regressions, 0u) << Up.Markdown;
  EXPECT_EQ(Up.Improvements, 1u) << Up.Markdown;
  EXPECT_NE(Up.Markdown.find("improvement"), std::string::npos);
}

TEST(Report, SmallChangesBelowThresholdIgnored) {
  LoadedRun Base = loadFromText(sampleResults(2.0));
  LoadedRun Cand = loadFromText(sampleResults(2.02)); // +1%, under 2%
  EXPECT_TRUE(compareRuns(Base, Cand).clean());
}

TEST(Report, PerMetricThresholdOverride) {
  LoadedRun Base = loadFromText(sampleResults(2.0));
  LoadedRun Cand = loadFromText(sampleResults(1.9)); // -5%
  ReportOptions Opt;
  Opt.MetricThresholds.emplace_back("ipc", 10.0);
  EXPECT_TRUE(compareRuns(Base, Cand, Opt).clean());
  Opt.MetricThresholds.clear();
  Opt.MetricThresholds.emplace_back("ipc", 1.0);
  EXPECT_EQ(compareRuns(Base, Cand, Opt).Regressions, 1u);
}

TEST(Report, OverlappingCisSuppressSignificance) {
  // 2.0 +/- 0.3 vs 1.8 +/- 0.3: a 10% drop, but the intervals overlap, so
  // the sampler's own error bars say it is noise.
  LoadedRun Base = loadFromText(sampleResults(2.0, 0.3));
  LoadedRun Cand = loadFromText(sampleResults(1.8, 0.3));
  EXPECT_TRUE(compareRuns(Base, Cand).clean());
  // Same drop with tight CIs is real.
  LoadedRun Base2 = loadFromText(sampleResults(2.0, 0.01));
  LoadedRun Cand2 = loadFromText(sampleResults(1.8, 0.01));
  EXPECT_EQ(compareRuns(Base2, Cand2).Regressions, 1u);
}

TEST(Report, TextMetricChangeIsRegression) {
  std::string Cand = sampleResults(1.5);
  size_t Pos = Cand.find("\"verdict\":\"PASS\"");
  ASSERT_NE(Pos, std::string::npos);
  Cand.replace(Pos, 16, "\"verdict\":\"FAIL\"");
  ReportResult R =
      compareRuns(loadFromText(sampleResults(1.5)), loadFromText(Cand));
  EXPECT_EQ(R.Regressions, 1u) << R.Markdown;
  EXPECT_NE(R.Markdown.find("PASS"), std::string::npos);
  EXPECT_NE(R.Markdown.find("FAIL"), std::string::npos);
}

TEST(Report, MissingExperimentIsStructural) {
  LoadedRun Base = loadFromText(sampleResults(1.5));
  LoadedRun Empty;
  Empty.Source = "empty";
  ReportResult R = compareRuns(Base, Empty);
  EXPECT_FALSE(R.clean());
  EXPECT_GE(R.Structural, 1u);
  EXPECT_NE(R.Markdown.find("Structural"), std::string::npos);
}

TEST(Report, MissingMetricIsStructural) {
  std::string Cand = sampleResults(1.5);
  size_t Pos = Cand.find(",\"roi_cycles\":1000");
  ASSERT_NE(Pos, std::string::npos);
  Cand.erase(Pos, 18);
  ReportResult R =
      compareRuns(loadFromText(sampleResults(1.5)), loadFromText(Cand));
  EXPECT_GE(R.Structural, 1u) << R.Markdown;
}

TEST(Report, CounterDiffIsInformationalOnly) {
  LoadedRun Base = loadFromText(sampleResults(1.5));
  LoadedRun Cand = loadFromText(sampleResults(1.5));
  Base.Counters.emplace_back("exp.cells", 80);
  Cand.Counters.emplace_back("exp.cells", 99);
  ReportResult R = compareRuns(Base, Cand);
  EXPECT_TRUE(R.clean()) << R.Markdown;
  EXPECT_NE(R.Markdown.find("Counter diff"), std::string::npos);
  EXPECT_NE(R.Markdown.find("exp.cells"), std::string::npos);
}

TEST(Report, SparklinesRenderedForMatchingSeries) {
  LoadedRun Base = loadFromText(sampleResults(1.5));
  LoadedRun Cand = loadFromText(sampleResults(1.5));
  for (LoadedRun *Run : {&Base, &Cand}) {
    LoadedSeries S;
    S.Experiment = "demo";
    S.Cell = 0;
    S.Run = 0;
    S.Ipc = {1.0, 1.2, 1.4, 1.3};
    Run->Series.push_back(S);
  }
  ReportResult R = compareRuns(Base, Cand);
  EXPECT_NE(R.Markdown.find("Per-interval IPC"), std::string::npos)
      << R.Markdown;
  EXPECT_NE(R.Markdown.find("▁"), std::string::npos);
}
