# Determinism check for the experiment runner: bor-bench must write
# byte-identical JSON regardless of how many worker threads execute the
# grid. fig13 is the largest grid (eight arms x ten intervals), so it is
# the one most likely to expose order-dependent collection.
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(SERIAL ${WORKDIR}/fig13_t1.json)
set(PARALLEL ${WORKDIR}/fig13_t8.json)

function(run_bench outfile threads)
  execute_process(COMMAND ${BENCH} --experiment fig13 --scale 100
                          --threads ${threads} --no-table --json ${outfile}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
            "bor-bench --threads ${threads} failed (${RC}):\n${OUT}\n${ERR}")
  endif()
endfunction()

run_bench(${SERIAL} 1)
run_bench(${PARALLEL} 8)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${SERIAL} ${PARALLEL}
                RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
          "fig13 JSON differs between --threads 1 and --threads 8: "
          "${SERIAL} vs ${PARALLEL}")
endif()

message(STATUS "bench determinism test passed")
