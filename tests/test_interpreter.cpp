//===- tests/test_interpreter.cpp - Functional execution tests ------------===//

#include "sim/Interpreter.h"

#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

/// Runs a freshly built program with the given decider and returns the
/// machine for inspection.
struct ExecRun {
  Machine M;
  RunStats Stats;

  ExecRun(const Program &P, BrrDecider &D, uint64_t MaxSteps = 100000) {
    Interpreter I(P, M, D);
    Stats = I.run(MaxSteps);
  }
};

} // namespace

TEST(Interpreter, AluArithmetic) {
  ProgramBuilder B;
  B.emit(Inst::li(1, 7));
  B.emit(Inst::li(2, 5));
  B.emit(Inst::add(3, 1, 2));
  B.emit(Inst::sub(4, 1, 2));
  B.emit(Inst::alu(Opcode::Mul, 5, 1, 2));
  B.emit(Inst::alu(Opcode::And, 6, 1, 2));
  B.emit(Inst::alu(Opcode::Or, 7, 1, 2));
  B.emit(Inst::alu(Opcode::Xor, 8, 1, 2));
  B.emit(Inst::halt());
  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.readReg(3), 12u);
  EXPECT_EQ(R.M.readReg(4), 2u);
  EXPECT_EQ(R.M.readReg(5), 35u);
  EXPECT_EQ(R.M.readReg(6), 5u);
  EXPECT_EQ(R.M.readReg(7), 7u);
  EXPECT_EQ(R.M.readReg(8), 2u);
}

TEST(Interpreter, ShiftsAndComparisons) {
  ProgramBuilder B;
  B.emit(Inst::li(1, 3));
  B.emit(Inst::li(2, 2));
  B.emit(Inst::alu(Opcode::Sll, 3, 1, 2));  // 3 << 2 = 12
  B.emit(Inst::alu(Opcode::Srl, 4, 3, 2));  // 12 >> 2 = 3
  B.emit(Inst::li(5, -1));
  B.emit(Inst::alu(Opcode::Slt, 6, 5, 1));  // -1 < 3 signed -> 1
  B.emit(Inst::alu(Opcode::Sltu, 7, 5, 1)); // huge unsigned -> 0
  B.emit(Inst::alui(Opcode::Slti, 8, 5, 0)); // -1 < 0 -> 1
  B.emit(Inst::alui(Opcode::Slli, 9, 1, 4)); // 48
  B.emit(Inst::alui(Opcode::Srli, 10, 9, 3)); // 6
  B.emit(Inst::halt());
  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.readReg(3), 12u);
  EXPECT_EQ(R.M.readReg(4), 3u);
  EXPECT_EQ(R.M.readReg(6), 1u);
  EXPECT_EQ(R.M.readReg(7), 0u);
  EXPECT_EQ(R.M.readReg(8), 1u);
  EXPECT_EQ(R.M.readReg(9), 48u);
  EXPECT_EQ(R.M.readReg(10), 6u);
}

TEST(Interpreter, SignedImmediateLogic) {
  ProgramBuilder B;
  B.emit(Inst::li(1, 0x00ff));
  B.emit(Inst::alui(Opcode::Andi, 2, 1, 0x0f0));
  B.emit(Inst::alui(Opcode::Ori, 3, 1, 0x700));
  B.emit(Inst::alui(Opcode::Xori, 4, 1, 0x0ff));
  B.emit(Inst::halt());
  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.readReg(2), 0xf0u);
  EXPECT_EQ(R.M.readReg(3), 0x7ffu);
  EXPECT_EQ(R.M.readReg(4), 0u);
}

TEST(Interpreter, LoadsAndStores) {
  ProgramBuilder B;
  uint64_t Addr = B.allocData(16, 8);
  B.initDataU64(Addr, 0x1234);
  B.emitLoadConst(1, Addr);
  B.emit(Inst::ld(2, 1, 0));
  B.emit(Inst::addi(2, 2, 1));
  B.emit(Inst::st(2, 1, 8));
  B.emit(Inst::ldb(3, 1, 0)); // low byte of 0x1234 = 0x34
  B.emit(Inst::stb(3, 1, 1));
  B.emit(Inst::halt());
  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.memory().readU64(Addr + 8), 0x1235u);
  EXPECT_EQ(R.M.readReg(3), 0x34u);
  EXPECT_EQ(R.M.memory().readU8(Addr + 1), 0x34u);
  EXPECT_EQ(R.Stats.Loads, 2u);
  EXPECT_EQ(R.Stats.Stores, 2u);
}

TEST(Interpreter, ConditionalBranchesAllOps) {
  // Compute a bitmask of which branches were taken.
  ProgramBuilder B;
  B.emit(Inst::li(1, 5));
  B.emit(Inst::li(2, 5));
  B.emit(Inst::li(3, -3));
  B.emit(Inst::li(10, 0));

  auto T1 = B.label();
  auto T2 = B.label();
  auto C1 = B.label();
  B.emitBranch(Opcode::Beq, 1, 2, T1); // taken
  B.emit(Inst::halt());                // skipped
  B.bind(T1);
  B.emit(Inst::alui(Opcode::Ori, 10, 10, 1));
  B.emitBranch(Opcode::Bne, 1, 2, T2); // not taken
  B.emit(Inst::alui(Opcode::Ori, 10, 10, 2));
  B.bind(T2);
  B.emitBranch(Opcode::Blt, 3, 1, C1); // -3 < 5 -> taken
  B.emit(Inst::halt());
  B.bind(C1);
  B.emit(Inst::alui(Opcode::Ori, 10, 10, 4));
  auto End = B.label();
  B.emitBranch(Opcode::Bge, 1, 2, End); // 5 >= 5 -> taken
  B.emit(Inst::halt());
  B.bind(End);
  B.emit(Inst::alui(Opcode::Ori, 10, 10, 8));
  B.emit(Inst::halt());

  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.readReg(10), 1u | 2u | 4u | 8u);
  EXPECT_EQ(R.Stats.CondBranches, 4u);
  EXPECT_EQ(R.Stats.CondTaken, 3u);
}

TEST(Interpreter, CallAndReturn) {
  ProgramBuilder B;
  auto Func = B.label();
  auto Past = B.label();
  B.emitJal(RegLr, Func); // 0: call
  B.emit(Inst::halt());   // 1: after return? No: return lands at 1.
  B.bind(Past);
  B.emit(Inst::halt());
  B.bind(Func);
  B.emit(Inst::li(5, 99));
  B.emit(Inst::ret());

  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.readReg(5), 99u);
  EXPECT_EQ(R.M.readReg(RegLr), 4u); // return address = pc of call + 4
}

TEST(Interpreter, IndirectJumpViaRegister) {
  ProgramBuilder B;
  B.emitLoadConst(4, 16); // address of instruction index 4
  B.emit(Inst::jalr(1, 4));
  B.emit(Inst::halt()); // skipped
  B.emit(Inst::halt()); // skipped
  B.emit(Inst::li(6, 1)); // index 4
  B.emit(Inst::halt());
  NeverTakenDecider D;
  ExecRun R(B.finish(), D);
  EXPECT_EQ(R.M.readReg(6), 1u);
  EXPECT_EQ(R.M.readReg(1), 8u); // link = jalr pc + 4
}

TEST(Interpreter, BrrFollowsDecider) {
  ProgramBuilder B;
  auto Taken = B.label();
  B.emitBrr(FreqCode(0), Taken);
  B.emit(Inst::li(1, 1)); // fall-through path
  B.emit(Inst::halt());
  B.bind(Taken);
  B.emit(Inst::li(1, 2)); // taken path
  B.emit(Inst::halt());
  Program P = B.finish();

  {
    NeverTakenDecider D;
    ExecRun R(P, D);
    EXPECT_EQ(R.M.readReg(1), 1u);
    EXPECT_EQ(R.Stats.BrrExecuted, 1u);
    EXPECT_EQ(R.Stats.BrrTaken, 0u);
  }
  {
    AlwaysTakenDecider D;
    ExecRun R(P, D);
    EXPECT_EQ(R.M.readReg(1), 2u);
    EXPECT_EQ(R.Stats.BrrTaken, 1u);
  }
}

TEST(Interpreter, BrrRateWithLfsrDecider) {
  // A loop executing one brr per iteration; the taken path increments r5.
  ProgramBuilder B;
  const int Iters = 64 * 1024;
  B.emitLoadConst(1, Iters);
  auto Loop = B.label();
  auto Sampled = B.label();
  auto Next = B.label();
  B.bind(Loop);
  B.emitBrr(FreqCode(3), Sampled); // 1/16
  B.bind(Next);
  B.emit(Inst::addi(1, 1, -1));
  B.emitBranch(Opcode::Bne, 1, 0, Loop);
  B.emit(Inst::halt());
  B.bind(Sampled);
  B.emit(Inst::addi(5, 5, 1));
  B.emitJmp(Next);

  BrrUnitDecider D;
  ExecRun R(B.finish(), D, 4 * Iters + 100);
  double Rate = static_cast<double>(R.M.readReg(5)) / Iters;
  EXPECT_NEAR(Rate, 1.0 / 16, 0.006);
  EXPECT_EQ(R.Stats.BrrExecuted, static_cast<uint64_t>(Iters));
}

TEST(Interpreter, MarkerHookFires) {
  ProgramBuilder B;
  B.emit(Inst::marker(7));
  B.emit(Inst::marker(9));
  B.emit(Inst::halt());
  Program P = B.finish();
  Machine M;
  NeverTakenDecider D;
  Interpreter I(P, M, D);
  std::vector<int32_t> Seen;
  I.setMarkerHook([&](int32_t Id) { Seen.push_back(Id); });
  I.run(10);
  EXPECT_EQ(Seen, (std::vector<int32_t>{7, 9}));
}

TEST(Interpreter, RunStopsAtBudgetWithoutHalt) {
  ProgramBuilder B;
  auto Loop = B.label();
  B.bind(Loop);
  B.emit(Inst::addi(1, 1, 1));
  B.emitJmp(Loop);
  Program P = B.finish();
  Machine M;
  NeverTakenDecider D;
  Interpreter I(P, M, D);
  RunStats S = I.run(100, /*RequireHalt=*/false);
  EXPECT_EQ(S.Insts, 100u);
  EXPECT_FALSE(S.Halted);
}

TEST(Interpreter, HaltStopsExecution) {
  ProgramBuilder B;
  B.emit(Inst::li(1, 1));
  B.emit(Inst::halt());
  B.emit(Inst::li(1, 2)); // unreachable
  Program P = B.finish();
  Machine M;
  NeverTakenDecider D;
  Interpreter I(P, M, D);
  RunStats S = I.run(10);
  EXPECT_TRUE(S.Halted);
  EXPECT_EQ(M.readReg(1), 1u);
  EXPECT_EQ(S.Insts, 2u);
}

TEST(Interpreter, ExecRecordReportsBranchOutcome) {
  ProgramBuilder B;
  auto T = B.label();
  B.emit(Inst::li(1, 1));
  B.emitBranch(Opcode::Bne, 1, 0, T);
  B.emit(Inst::nop());
  B.bind(T);
  B.emit(Inst::halt());
  Program P = B.finish();
  Machine M;
  NeverTakenDecider D;
  Interpreter I(P, M, D);
  I.step(); // li
  ExecRecord R = I.step();
  EXPECT_TRUE(R.Taken);
  EXPECT_EQ(R.NextPc, 12u);
  EXPECT_EQ(R.Pc, 4u);
}

TEST(Interpreter, RdLfsrReadsAndStepsTheGenerator) {
  // Section 3.4: a software-readable LFSR doubles as a fast PRNG. The
  // instruction must return the decider's state sequence exactly.
  ProgramBuilder B;
  for (int I = 0; I != 4; ++I) {
    B.emit(Inst::rdlfsr(static_cast<uint8_t>(4 + I)));
  }
  B.emit(Inst::halt());
  Program P = B.finish();

  BrrUnitConfig Cfg;
  BrrUnitDecider D(Cfg);
  Machine M;
  Interpreter I(P, M, D);
  I.run(10);

  // Replicate: the same unit configuration yields the same state walk.
  BrrUnit Replica(Cfg);
  for (int N = 0; N != 4; ++N) {
    uint64_t Expected = Replica.lfsr().state();
    Replica.lfsr().step();
    EXPECT_EQ(M.readReg(static_cast<unsigned>(4 + N)), Expected);
  }
  // Values are nonzero and distinct (maximal LFSR property).
  EXPECT_NE(M.readReg(4), 0u);
  EXPECT_NE(M.readReg(4), M.readReg(5));
}

TEST(Interpreter, RdLfsrWithoutLfsrDeciderReadsZero) {
  ProgramBuilder B;
  B.emit(Inst::rdlfsr(4));
  B.emit(Inst::halt());
  Program P = B.finish();
  Machine M;
  HwCounterDecider D; // no LFSR behind it
  Interpreter I(P, M, D);
  I.run(10);
  EXPECT_EQ(M.readReg(4), 0u);
}
