//===- tests/test_path.cpp - Atomic output-file helper unit tests --------===//
//
// writeFileAtomic backs every output file the tools write (results JSON,
// manifests, traces, checkpoint libraries), so its contract — readers see
// the old file or the complete new file, never a truncated one — gets its
// own tests here.
//
//===----------------------------------------------------------------------===//

#include "support/Path.h"

#include "gtest/gtest.h"

#include <filesystem>
#include <fstream>
#include <string>

using namespace bor;
namespace fs = std::filesystem;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

TEST(Path, AtomicTempPathIsASiblingTmpName) {
  EXPECT_EQ(atomicTempPath("out/results.json"), "out/results.json.tmp");
  EXPECT_EQ(atomicTempPath("plain"), "plain.tmp");
}

TEST(Path, WriteFileAtomicWritesAndCreatesParents) {
  std::string Dir = testing::TempDir() + "path_atomic_parents";
  fs::remove_all(Dir);
  std::string Target = Dir + "/a/b/out.json";

  std::string Err;
  ASSERT_TRUE(writeFileAtomic(Target, "{\"ok\":true}\n", Err)) << Err;
  EXPECT_EQ(slurp(Target), "{\"ok\":true}\n");
  // No staging residue once the rename landed.
  EXPECT_FALSE(fs::exists(atomicTempPath(Target)));
  fs::remove_all(Dir);
}

TEST(Path, WriteFileAtomicReplacesExistingFile) {
  std::string Target = testing::TempDir() + "path_atomic_replace.txt";
  std::string Err;
  ASSERT_TRUE(writeFileAtomic(Target, "old contents, rather long\n", Err));
  ASSERT_TRUE(writeFileAtomic(Target, "new\n", Err)) << Err;
  EXPECT_EQ(slurp(Target), "new\n");
  fs::remove(Target);
}

TEST(Path, WriteFileAtomicOverwritesStaleTempFile) {
  // A crash mid-write leaves "<path>.tmp" behind; the next writer must
  // overwrite it and still land the real contents.
  std::string Target = testing::TempDir() + "path_atomic_stale.txt";
  std::ofstream(atomicTempPath(Target)) << "torn half-written garbage";

  std::string Err;
  ASSERT_TRUE(writeFileAtomic(Target, "complete\n", Err)) << Err;
  EXPECT_EQ(slurp(Target), "complete\n");
  EXPECT_FALSE(fs::exists(atomicTempPath(Target)));
  fs::remove(Target);
}

TEST(Path, StaleTempFileAloneIsNotTheOutput) {
  // The reader-facing half of the contract: if only the temp file exists
  // (writer died before rename), the real path reads as absent.
  std::string Target = testing::TempDir() + "path_atomic_orphan.txt";
  fs::remove(Target);
  std::ofstream(atomicTempPath(Target)) << "half";
  EXPECT_FALSE(fs::exists(Target));
  fs::remove(atomicTempPath(Target));
}

TEST(Path, WriteFileAtomicFailsLoudlyWhenParentIsAFile) {
  std::string Blocker = testing::TempDir() + "path_atomic_blocker";
  std::ofstream(Blocker) << "i am a file";

  std::string Err;
  EXPECT_FALSE(writeFileAtomic(Blocker + "/child.json", "x", Err));
  EXPECT_FALSE(Err.empty());
  // The diagnostic names the offending path.
  EXPECT_NE(Err.find("path_atomic_blocker"), std::string::npos) << Err;
  fs::remove(Blocker);
}

TEST(Path, JoinPathInsertsExactlyOneSeparator) {
  EXPECT_EQ(joinPath("a", "b"), "a/b");
  EXPECT_EQ(joinPath("a/", "b"), "a/b");
}

} // namespace
