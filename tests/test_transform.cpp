//===- tests/test_transform.cpp - Sampling-framework transform tests ------===//

#include "instr/Transform.h"

#include "instr/Sites.h"
#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

/// Builds a minimal program with one instrumented site inside a counted
/// loop: each iteration visits the site once; the instrumentation body
/// increments profile counter 0.
struct SiteLoop {
  Program Prog;
  uint64_t CounterAddr;

  SiteLoop(const InstrumentationConfig &Config, uint64_t Iters) {
    ProgramBuilder B;
    // The profile table is allocated first so its address (and thus the
    // prologue code) is identical across frameworks; the counter-based
    // framework's globals land just behind it.
    ProfileTable Table(B, "counters", 1);
    SamplingFrameworkEmitter Emitter(B, Config, DefaultDataBase);
    CounterAddr = Table.counterAddr(0);

    B.emitLoadConst(RegGlobals, DefaultDataBase);
    B.emitLoadConst(RegProfBase, Table.baseAddr());
    Emitter.emitSetup();
    B.emitLoadConst(2, Iters);
    auto Loop = B.label();
    B.bind(Loop);
    auto Body = [&Table](ProgramBuilder &PB) {
      Table.emitIncrement(PB, 0, RegProfBase, Table.baseAddr(), 14);
    };
    if (Config.Dup == DuplicationMode::FullDuplication &&
        (Config.Framework == SamplingFramework::CounterBased ||
         Config.Framework == SamplingFramework::BrrBased)) {
      auto Dup = B.label();
      auto Done = B.label();
      Emitter.emitDuplicationCheck(Dup);
      B.emit(Inst::add(4, 4, 2)); // clean body work
      B.emitJmp(Done);
      B.bind(Dup);
      Emitter.emitDupPrologue();
      Emitter.emitUnconditionalSite(Body);
      B.emit(Inst::add(4, 4, 2)); // duplicated body work
      B.bind(Done);
    } else {
      Emitter.emitSite(Body);
      B.emit(Inst::add(4, 4, 2));
    }
    B.emit(Inst::addi(2, 2, -1));
    B.emitBranch(Opcode::Bne, 2, 0, Loop);
    B.emit(Inst::halt());
    Emitter.flushOutOfLine();
    Prog = B.finish();
  }

  /// Runs to completion and returns (counter value, r4 work accumulator).
  std::pair<uint64_t, uint64_t> run(BrrDecider &D, uint64_t Iters) {
    Machine M;
    Interpreter I(Prog, M, D);
    I.run(200 * Iters + 1000);
    return {M.memory().readU64(CounterAddr), M.readReg(4)};
  }
};

} // namespace

TEST(Transform, FullInstrumentationCountsEveryVisit) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::Full;
  SiteLoop L(C, 1000);
  NeverTakenDecider D;
  auto [Counter, Work] = L.run(D, 1000);
  EXPECT_EQ(Counter, 1000u);
}

TEST(Transform, BaselineEmitsNothingAndCountsNothing) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::None;
  SiteLoop L(C, 1000);
  NeverTakenDecider D;
  auto [Counter, Work] = L.run(D, 1000);
  EXPECT_EQ(Counter, 0u);
}

TEST(Transform, CounterSamplingFiresExactlyEveryInterval) {
  for (uint64_t Interval : {4ull, 16ull, 64ull, 256ull}) {
    InstrumentationConfig C;
    C.Framework = SamplingFramework::CounterBased;
    C.Interval = Interval;
    const uint64_t Iters = Interval * 10;
    SiteLoop L(C, Iters);
    NeverTakenDecider D;
    auto [Counter, Work] = L.run(D, Iters);
    EXPECT_EQ(Counter, 10u) << "interval " << Interval;
  }
}

TEST(Transform, BrrSamplingMatchesFrequencyStatistically) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::BrrBased;
  C.Interval = 16;
  const uint64_t Iters = 64000;
  SiteLoop L(C, Iters);
  BrrUnitDecider D;
  auto [Counter, Work] = L.run(D, Iters);
  double Rate = static_cast<double>(Counter) / Iters;
  EXPECT_NEAR(Rate, 1.0 / 16, 0.01);
}

TEST(Transform, SamplingPreservesProgramSemantics) {
  // The non-instrumentation work (r4) must be identical across all
  // frameworks and modes: instrumentation may never perturb the program.
  const uint64_t Iters = 2048;
  uint64_t Expected = 0;
  {
    InstrumentationConfig C; // baseline
    SiteLoop L(C, Iters);
    NeverTakenDecider D;
    Expected = L.run(D, Iters).second;
  }
  std::vector<InstrumentationConfig> Configs;
  for (SamplingFramework F :
       {SamplingFramework::Full, SamplingFramework::CounterBased,
        SamplingFramework::BrrBased}) {
    InstrumentationConfig C;
    C.Framework = F;
    C.Interval = 64;
    Configs.push_back(C);
    if (F != SamplingFramework::Full) {
      C.Dup = DuplicationMode::FullDuplication;
      Configs.push_back(C);
      C.Dup = DuplicationMode::NoDuplication;
      C.IncludeBody = false;
      Configs.push_back(C);
    }
  }
  for (const InstrumentationConfig &C : Configs) {
    SiteLoop L(C, Iters);
    BrrUnitDecider D;
    EXPECT_EQ(L.run(D, Iters).second, Expected) << describeConfig(C);
  }
}

TEST(Transform, FrameworkOnlyRunsCollectNoSamples) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::CounterBased;
  C.Interval = 8;
  C.IncludeBody = false;
  SiteLoop L(C, 800);
  NeverTakenDecider D;
  EXPECT_EQ(L.run(D, 800).first, 0u);
}

TEST(Transform, FullDuplicationCounterSamplesOncePerInterval) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::CounterBased;
  C.Dup = DuplicationMode::FullDuplication;
  C.Interval = 32;
  const uint64_t Iters = 32 * 8;
  SiteLoop L(C, Iters);
  NeverTakenDecider D;
  auto [Counter, Work] = L.run(D, Iters);
  // Each firing runs the instrumented copy once, then the counter resets.
  EXPECT_NEAR(static_cast<double>(Counter), 8.0, 1.0);
}

TEST(Transform, FullDuplicationBrrSelectsDupAtFrequency) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::BrrBased;
  C.Dup = DuplicationMode::FullDuplication;
  C.Interval = 8;
  const uint64_t Iters = 32000;
  SiteLoop L(C, Iters);
  BrrUnitDecider D;
  auto [Counter, Work] = L.run(D, Iters);
  EXPECT_NEAR(static_cast<double>(Counter) / Iters, 1.0 / 8, 0.01);
}

TEST(Transform, BrrSiteIsOneInstructionCbsIsFour) {
  // Figure 4's instruction-count comparison, measured on the generated
  // code: count the framework instructions on the common path.
  auto CommonPathLen = [](SamplingFramework F) {
    InstrumentationConfig C;
    C.Framework = F;
    C.Interval = 64;
    SiteLoop L(C, 4);
    return L.Prog.numInsts();
  };
  size_t Baseline = CommonPathLen(SamplingFramework::None);
  size_t Brr = CommonPathLen(SamplingFramework::BrrBased);
  size_t Cbs = CommonPathLen(SamplingFramework::CounterBased);
  // brr adds: 1 brr + (out of line: body 3 + jmp) = 5 static.
  EXPECT_EQ(Brr - Baseline, 5u);
  // cbs adds: ld/beq/addi/st inline + (out of line: ld reset + body 3 +
  // jmp) = 9 static.
  EXPECT_EQ(Cbs - Baseline, 9u);
}

TEST(Transform, DescribeConfigStrings) {
  InstrumentationConfig C;
  EXPECT_EQ(describeConfig(C), "baseline");
  C.Framework = SamplingFramework::Full;
  EXPECT_EQ(describeConfig(C), "full-instrumentation");
  C.Framework = SamplingFramework::BrrBased;
  C.Dup = DuplicationMode::FullDuplication;
  C.Interval = 128;
  C.IncludeBody = false;
  EXPECT_EQ(describeConfig(C), "brr full-dup interval=128 framework-only");
  C.Framework = SamplingFramework::CounterBased;
  C.Dup = DuplicationMode::NoDuplication;
  C.IncludeBody = true;
  EXPECT_EQ(describeConfig(C), "cbs no-dup interval=128 +inst");
}

TEST(Transform, NamesAreStable) {
  EXPECT_STREQ(frameworkName(SamplingFramework::None), "baseline");
  EXPECT_STREQ(frameworkName(SamplingFramework::BrrBased), "brr");
  EXPECT_STREQ(duplicationName(DuplicationMode::NoDuplication), "no-dup");
  EXPECT_STREQ(duplicationName(DuplicationMode::FullDuplication),
               "full-dup");
}

TEST(ProfileTableTest, ReadBackMatchesMemory) {
  ProgramBuilder B;
  ProfileTable T(B, "t", 4);
  B.emit(Inst::halt());
  Program P = B.finish();
  Machine M;
  M.loadProgram(P);
  M.memory().writeU64(T.counterAddr(2), 77);
  std::vector<uint64_t> Values = T.read(M);
  EXPECT_EQ(Values, (std::vector<uint64_t>{0, 0, 77, 0}));
}

TEST(Transform, RegisterCounterFiresExactlyEveryInterval) {
  for (uint64_t Interval : {4ull, 64ull, 1024ull}) {
    InstrumentationConfig C;
    C.Framework = SamplingFramework::CounterBased;
    C.CounterPlacement = CounterHome::Register;
    C.Interval = Interval;
    const uint64_t Iters = Interval * 10;
    SiteLoop L(C, Iters);
    NeverTakenDecider D;
    auto [Counter, Work] = L.run(D, Iters);
    EXPECT_EQ(Counter, 10u) << "interval " << Interval;
  }
}

TEST(Transform, RegisterCounterMatchesMemoryCounterDecisions) {
  // Same sampling schedule regardless of where the countdown lives.
  const uint64_t Iters = 2000;
  InstrumentationConfig Mem;
  Mem.Framework = SamplingFramework::CounterBased;
  Mem.Interval = 128;
  InstrumentationConfig Reg = Mem;
  Reg.CounterPlacement = CounterHome::Register;

  NeverTakenDecider D1, D2;
  SiteLoop MemLoop(Mem, Iters);
  SiteLoop RegLoop(Reg, Iters);
  EXPECT_EQ(MemLoop.run(D1, Iters).first, RegLoop.run(D2, Iters).first);
}

TEST(Transform, RegisterCounterUsesFewerInstructions) {
  // Section 2 items 3-4: the register form's check/decrement is 2 inline
  // instructions instead of 4 (no load, no store), at the price of one
  // prologue setup instruction and a permanently-reserved register.
  auto ProgramLen = [](CounterHome Home) {
    InstrumentationConfig C;
    C.Framework = SamplingFramework::CounterBased;
    C.CounterPlacement = Home;
    C.Interval = 64;
    SiteLoop L(C, 4);
    return L.Prog.numInsts();
  };
  // One site: -2 inline, +1 setup, out-of-line block same length.
  EXPECT_EQ(ProgramLen(CounterHome::Memory) -
                ProgramLen(CounterHome::Register),
            1u);
}

TEST(Transform, RegisterCounterFullDuplication) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::CounterBased;
  C.CounterPlacement = CounterHome::Register;
  C.Dup = DuplicationMode::FullDuplication;
  C.Interval = 32;
  const uint64_t Iters = 32 * 8;
  SiteLoop L(C, Iters);
  NeverTakenDecider D;
  auto [Counter, Work] = L.run(D, Iters);
  EXPECT_NEAR(static_cast<double>(Counter), 8.0, 1.0);
}

TEST(Transform, DescribeConfigMentionsRegisterCounter) {
  InstrumentationConfig C;
  C.Framework = SamplingFramework::CounterBased;
  C.CounterPlacement = CounterHome::Register;
  C.Interval = 64;
  EXPECT_EQ(describeConfig(C), "cbs-reg no-dup interval=64 +inst");
}
