# End-to-end checks on the run-manifest / bor-report observatory:
#
#   1. --run-dir writes manifest.json + results + counters.json, and two
#      same-build runs (different thread counts) compare CLEAN (exit 0).
#   2. A synthetic >=10% roi_cycles slowdown in a copied run dir is
#      flagged: bor-report exits nonzero and names the metric.
#   3. Sampled runs write timeseries.json, byte-identical for --threads 1
#      and 8, and the sampled manifests also compare clean against each
#      other.
#   4. --update-baselines regenerates the committed BENCH_fig13.json and
#      BENCH_pgo_layout.json byte-identically (the baselines stay
#      reproducible from source).
#   5. --list-counters documents every counter a real run publishes.
#   6. --progress jsonl emits machine-readable progress lines on stderr.
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DREPORT=<bor-report>
#   -DBASELINE=<committed bench/BENCH_fig13.json> -DWORKDIR=<scratch dir>

file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

function(run_bench err_out)
  execute_process(COMMAND ${BENCH} ${ARGN}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR "bor-bench ${ARGN} failed (${RC}):\n${OUT}\n${ERR}")
  endif()
  set(${err_out} "${ERR}" PARENT_SCOPE)
endfunction()

# 1. Two unsampled run dirs at different thread counts compare clean.
run_bench(ERR_A --experiment fig13 --scale 100 --no-table --threads 1
          --run-dir ${WORKDIR}/runA)
run_bench(ERR_B --experiment fig13 --scale 100 --no-table --threads 2
          --run-dir ${WORKDIR}/runB)
foreach(F manifest.json fig13.json counters.json)
  if(NOT EXISTS ${WORKDIR}/runA/${F})
    message(FATAL_ERROR "--run-dir did not write ${F}")
  endif()
endforeach()
file(READ ${WORKDIR}/runA/manifest.json MANIFEST_TEXT)
string(JSON SCHEMA GET "${MANIFEST_TEXT}" schema)
if(NOT SCHEMA STREQUAL "bor-run-manifest-v1")
  message(FATAL_ERROR "unexpected manifest schema '${SCHEMA}'")
endif()
string(JSON GIT_REV GET "${MANIFEST_TEXT}" build git_rev)
string(JSON SCALE GET "${MANIFEST_TEXT}" config scale)
if(NOT SCALE EQUAL 100)
  message(FATAL_ERROR "manifest config.scale is ${SCALE}, wanted 100")
endif()

execute_process(COMMAND ${REPORT} ${WORKDIR}/runA ${WORKDIR}/runB
                        --out ${WORKDIR}/clean.md
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "clean comparison exited ${RC}:\n${OUT}\n${ERR}")
endif()
file(READ ${WORKDIR}/clean.md CLEAN_MD)
if(NOT CLEAN_MD MATCHES "Verdict: CLEAN")
  message(FATAL_ERROR "clean report lacks CLEAN verdict:\n${CLEAN_MD}")
endif()

# 2. Perturb one cell's roi_cycles by +15% in a copy of runB; the gate
# must trip. The results file is JSON lines, so patch line 2 (first cell).
file(COPY ${WORKDIR}/runB/ DESTINATION ${WORKDIR}/runBad)
file(STRINGS ${WORKDIR}/runBad/fig13.json LINES)
set(PATCHED "")
set(DONE 0)
foreach(LINE IN LISTS LINES)
  if(NOT DONE AND LINE MATCHES "\"kind\":\"cell\"")
    # string(JSON SET) pretty-prints, which would break the one-record-
    # per-line format, so patch the metric textually instead.
    string(JSON CYCLES GET "${LINE}" metrics roi_cycles)
    math(EXPR WORSE "${CYCLES} * 115 / 100")
    string(REGEX REPLACE "\"roi_cycles\":${CYCLES}" "\"roi_cycles\":${WORSE}"
           LINE "${LINE}")
    set(DONE 1)
  endif()
  string(APPEND PATCHED "${LINE}\n")
endforeach()
if(NOT DONE)
  message(FATAL_ERROR "found no cell record to perturb")
endif()
file(WRITE ${WORKDIR}/runBad/fig13.json "${PATCHED}")

execute_process(COMMAND ${REPORT} ${WORKDIR}/runA ${WORKDIR}/runBad
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(RC EQUAL 0)
  message(FATAL_ERROR "15% roi_cycles slowdown not flagged:\n${OUT}")
endif()
if(NOT OUT MATCHES "roi_cycles" OR NOT OUT MATCHES "regression")
  message(FATAL_ERROR "regression report does not name roi_cycles:\n${OUT}")
endif()

# A generous threshold lets the same perturbation through.
execute_process(COMMAND ${REPORT} ${WORKDIR}/runA ${WORKDIR}/runBad
                        --threshold-pct 50
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "--threshold-pct 50 still flagged (+15%):\n${OUT}")
endif()

# 3. Sampled runs: timeseries.json exists and is thread-count-invariant.
run_bench(ERR_S1 --experiment fig13 --scale 100 --no-table --sample
          --threads 1 --run-dir ${WORKDIR}/runS1)
run_bench(ERR_S8 --experiment fig13 --scale 100 --no-table --sample
          --threads 8 --run-dir ${WORKDIR}/runS8)
if(NOT EXISTS ${WORKDIR}/runS1/timeseries.json)
  message(FATAL_ERROR "sampled --run-dir wrote no timeseries.json")
endif()
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/runS1/timeseries.json
                        ${WORKDIR}/runS8/timeseries.json
                RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR "timeseries.json differs between --threads 1 and 8")
endif()
execute_process(COMMAND ${REPORT} ${WORKDIR}/runS1 ${WORKDIR}/runS8
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "sampled self-comparison exited ${RC}:\n${OUT}\n${ERR}")
endif()
if(NOT OUT MATCHES "Per-interval IPC")
  message(FATAL_ERROR "sampled report has no sparkline section:\n${OUT}")
endif()

# 4. The committed baseline is reproducible: --update-baselines into a
# scratch dir regenerates it byte-identically, and a run dir compares
# clean against it.
run_bench(ERR_BL --experiment fig13 --scale 100 --no-table
          --update-baselines --baseline-dir ${WORKDIR}/bench)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORKDIR}/bench/BENCH_fig13.json ${BASELINE}
                RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
          "--update-baselines does not reproduce committed ${BASELINE}")
endif()
if(DEFINED PGO_BASELINE)
  run_bench(ERR_PGO --experiment pgo_layout --scale 10 --no-table
            --update-baselines --baseline-dir ${WORKDIR}/bench)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                          ${WORKDIR}/bench/BENCH_pgo_layout.json
                          ${PGO_BASELINE}
                  RESULT_VARIABLE DIFF)
  if(NOT DIFF EQUAL 0)
    message(FATAL_ERROR
            "--update-baselines does not reproduce committed ${PGO_BASELINE}")
  endif()
endif()
execute_process(COMMAND ${REPORT} ${BASELINE} ${WORKDIR}/runA
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR
          "run dir vs committed baseline exited ${RC}:\n${OUT}\n${ERR}")
endif()

# 5. Every counter the runA snapshot holds is documented.
execute_process(COMMAND ${BENCH} --list-counters
                RESULT_VARIABLE RC OUTPUT_VARIABLE LIST ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "--list-counters failed (${RC}):\n${ERR}")
endif()
file(READ ${WORKDIR}/runA/counters.json COUNTERS_TEXT)
string(JSON COUNTERS_OBJ GET "${COUNTERS_TEXT}" counters)
string(JSON NCOUNTERS LENGTH "${COUNTERS_OBJ}")
if(NCOUNTERS LESS 10)
  message(FATAL_ERROR "suspiciously few counters (${NCOUNTERS}) in snapshot")
endif()
math(EXPR LAST "${NCOUNTERS} - 1")
foreach(I RANGE ${LAST})
  string(JSON NAME MEMBER "${COUNTERS_OBJ}" ${I})
  if(NOT LIST MATCHES "${NAME} ")
    message(FATAL_ERROR "counter '${NAME}' missing from --list-counters")
  endif()
endforeach()

# 6. --progress jsonl puts one parseable JSON object per line on stderr.
run_bench(ERR_PROG --experiment fig13 --scale 100 --no-table --no-json
          --progress jsonl)
string(REGEX MATCH "[^\n]*cells_done[^\n]*" PROG_LINE "${ERR_PROG}")
if(PROG_LINE STREQUAL "")
  message(FATAL_ERROR "--progress jsonl emitted no progress line:\n${ERR_PROG}")
endif()
string(JSON DONE_CELLS GET "${PROG_LINE}" cells_done)
string(JSON TOTAL_CELLS GET "${PROG_LINE}" cells_total)
string(JSON EXPNAME GET "${PROG_LINE}" experiment)
if(NOT EXPNAME STREQUAL "fig13" OR DONE_CELLS GREATER TOTAL_CELLS)
  message(FATAL_ERROR "malformed progress line: ${PROG_LINE}")
endif()

message(STATUS "report_smoke: all checks passed")
