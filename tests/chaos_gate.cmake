# Chaos gate for the distributed sweep service: injected worker crashes
# and a heartbeat stall must not change a single output byte, and
# exhausting the retry budget must degrade to a partial result with a
# distinct exit status — never a hang or a crash.
#
# Four runs:
#   1. baseline     svc_smoke via the in-process thread pool
#   2. chaos        --serve with 3 workers, two crash-at-cell faults and
#                   one stall-heartbeat fault; output must be
#                   byte-identical to (1) and the svc.* counters must show
#                   the re-queue/retry machinery actually fired
#   3. exhaustion   every worker incarnation crashes on its first lease
#                   and restarts run out: exit status 3, every cell
#                   explicitly marked lost
#   4. timeout      a local (non-serve) run with one deliberately slow
#                   cell and --cell-timeout: exit status 3, the cell
#                   marked timeout
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(BASELINE ${WORKDIR}/svc_smoke_local.json)
set(CHAOS ${WORKDIR}/svc_smoke_chaos.json)
set(COUNTERS ${WORKDIR}/svc_smoke_chaos.counters)
set(LOST ${WORKDIR}/svc_smoke_lost.json)
set(TIMEOUT ${WORKDIR}/svc_smoke_timeout.json)

# --- 1. baseline ------------------------------------------------------------

execute_process(COMMAND ${BENCH} --experiment svc_smoke --threads 4
                        --no-table --json ${BASELINE}
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "baseline svc_smoke run failed (${RC}):\n${OUT}\n${ERR}")
endif()

# --- 2. chaos: crashes + heartbeat stall must be invisible in the output ----

execute_process(COMMAND ${BENCH} --experiment svc_smoke
                        --serve 127.0.0.1:0 --spawn-workers 3
                        --fault-spec
                        "w0:crash-at-cell=2;w1:crash-at-cell=3;w2:stall-heartbeat=2"
                        --lease-heartbeat 0.25
                        --no-table --json ${CHAOS} --counters-out ${COUNTERS}
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "chaos serve run failed (${RC}):\n${OUT}\n${ERR}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${BASELINE} ${CHAOS}
                RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
          "chaos run output differs from the local run: "
          "${BASELINE} vs ${CHAOS} — injected faults leaked into results")
endif()

# The faults must actually have fired: re-queues and retries in the
# counters, plus at least one missed-heartbeat expiry from the stall.
file(READ ${COUNTERS} COUNTER_TEXT)
function(require_counter_at_least name minimum)
  string(REGEX MATCH "${name} +([0-9]+)" _ "${COUNTER_TEXT}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "counter ${name} missing from ${COUNTERS}")
  endif()
  if(CMAKE_MATCH_1 LESS ${minimum})
    message(FATAL_ERROR
            "counter ${name} = ${CMAKE_MATCH_1}, expected >= ${minimum} — "
            "the injected faults did not exercise the recovery path")
  endif()
endfunction()
require_counter_at_least("svc\\.requeues" 2)
require_counter_at_least("svc\\.retries" 2)
require_counter_at_least("svc\\.heartbeats\\.missed" 1)
require_counter_at_least("svc\\.workers\\.lost" 2)

# --- 3. retry-budget exhaustion degrades, never hangs -----------------------

execute_process(COMMAND ${BENCH} --experiment svc_smoke
                        --serve 127.0.0.1:0 --spawn-workers 2
                        --max-worker-restarts 2 --retry-budget 2
                        --fault-spec "all:crash-at-cell=1"
                        --lease-heartbeat 0.25
                        --no-table --json ${LOST}
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR
                TIMEOUT 120)
if(NOT RC EQUAL 3)
  message(FATAL_ERROR
          "budget-exhaustion run should exit 3 (partial result), got "
          "'${RC}':\n${OUT}\n${ERR}")
endif()
file(READ ${LOST} LOST_TEXT)
string(REGEX MATCHALL "\"cell_status\":\"lost\"" LOST_MARKERS "${LOST_TEXT}")
list(LENGTH LOST_MARKERS NUM_LOST)
if(NUM_LOST EQUAL 0)
  message(FATAL_ERROR
          "budget-exhaustion output has no cell_status=lost markers: ${LOST}")
endif()

# --- 4. local --cell-timeout marks the slow cell and exits 3 ----------------

execute_process(COMMAND ${CMAKE_COMMAND} -E env
                        BOR_SVC_SMOKE_SLEEP_MS=600 BOR_SVC_SMOKE_SLEEP_CELL=5
                        ${BENCH} --experiment svc_smoke --threads 2
                        --cell-timeout 0.2 --no-table --json ${TIMEOUT}
                RESULT_VARIABLE RC OUTPUT_VARIABLE OUT ERROR_VARIABLE ERR
                TIMEOUT 120)
if(NOT RC EQUAL 3)
  message(FATAL_ERROR
          "--cell-timeout run should exit 3 (partial result), got "
          "'${RC}':\n${OUT}\n${ERR}")
endif()
file(READ ${TIMEOUT} TIMEOUT_TEXT)
if(NOT TIMEOUT_TEXT MATCHES "\"cell_status\":\"timeout\"")
  message(FATAL_ERROR
          "--cell-timeout output has no cell_status=timeout marker: "
          "${TIMEOUT}")
endif()

message(STATUS "chaos gate passed: byte-identical under faults, "
               "graceful degradation on exhaustion (${NUM_LOST} lost cells)")
