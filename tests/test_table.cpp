//===- tests/test_table.cpp - Table printer tests -------------------------===//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(Table, FormatDouble) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::fmt(0.0, 1), "0.0");
}

TEST(Table, FormatUnsigned) {
  EXPECT_EQ(Table::fmt(uint64_t(0)), "0");
  EXPECT_EQ(Table::fmt(uint64_t(123456789)), "123456789");
}

TEST(Table, PrintAlignsColumns) {
  Table T;
  T.addRow({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer-name", "23"});
  EXPECT_EQ(T.numRows(), 3u);

  char Buf[4096] = {};
  std::FILE *F = fmemopen(Buf, sizeof(Buf), "w");
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::fclose(F);

  std::string Out(Buf);
  // Header, rule, two data rows.
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
  // All data lines start at column 0 and values align on the same column.
  size_t HeaderVal = Out.find("value");
  ASSERT_NE(HeaderVal, std::string::npos);
  // The value column starts at the same offset in every line.
  size_t Line3 = Out.find("x ");
  ASSERT_NE(Line3, std::string::npos);
}

TEST(Table, EmptyPrintsNothing) {
  Table T;
  char Buf[64] = {};
  std::FILE *F = fmemopen(Buf, sizeof(Buf), "w");
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::fclose(F);
  EXPECT_STREQ(Buf, "");
}

TEST(Table, RaggedRowsPadded) {
  Table T;
  T.addRow({"a", "b", "c"});
  T.addRow({"only-one"});
  char Buf[1024] = {};
  std::FILE *F = fmemopen(Buf, sizeof(Buf), "w");
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::fclose(F);
  EXPECT_NE(std::string(Buf).find("only-one"), std::string::npos);
}
