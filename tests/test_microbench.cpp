//===- tests/test_microbench.cpp - Microbenchmark builder tests -----------===//

#include "workloads/Microbench.h"

#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

struct MicrobenchRun {
  MicrobenchProgram MB;
  Machine M;
  RunStats Stats;
  std::vector<int32_t> Markers;

  MicrobenchRun(const InstrumentationConfig &Instr, size_t NumChars,
                BrrDecider &D) {
    MicrobenchConfig C;
    C.Text.NumChars = NumChars;
    C.Instr = Instr;
    MB = buildMicrobench(C);
    Interpreter I(MB.Prog, M, D);
    I.setMarkerHook([this](int32_t Id) { Markers.push_back(Id); });
    Stats = I.run(200 * NumChars + 10000);
  }

  uint64_t result(unsigned Slot) const {
    return M.memory().readU64(MB.ResultBase + 8 * Slot);
  }
  uint64_t edgeCount(unsigned Site) const {
    return M.memory().readU64(MB.ProfileBase + 8 * Site);
  }
};

InstrumentationConfig config(SamplingFramework F, DuplicationMode Dup,
                             uint64_t Interval, bool Body = true) {
  InstrumentationConfig C;
  C.Framework = F;
  C.Dup = Dup;
  C.Interval = Interval;
  C.IncludeBody = Body;
  return C;
}

} // namespace

TEST(Microbench, BaselineComputesReferenceChecksums) {
  NeverTakenDecider D;
  MicrobenchRun R(InstrumentationConfig(), 20000, D);

  // Checksums must equal the byte sums per class of the generated text.
  TextConfig TC;
  TC.NumChars = 20000;
  std::vector<uint8_t> Text = generateText(TC);
  uint64_t Upper = 0, Lower = 0, Other = 0;
  for (uint8_t Ch : Text) {
    if (Ch >= 'A' && Ch <= 'Z')
      Upper += Ch;
    else if (Ch >= 'a' && Ch <= 'z')
      Lower += Ch;
    else
      Other += Ch;
  }
  EXPECT_EQ(R.result(0), Upper);
  EXPECT_EQ(R.result(1), Lower);
  EXPECT_EQ(R.result(2), Other);
}

TEST(Microbench, MarkersBracketTheLoop) {
  NeverTakenDecider D;
  MicrobenchRun R(InstrumentationConfig(), 5000, D);
  EXPECT_EQ(R.Markers,
            (std::vector<int32_t>{MarkerRoiBegin, MarkerRoiEnd}));
}

TEST(Microbench, AllVariantsComputeIdenticalChecksums) {
  const size_t N = 20000;
  NeverTakenDecider Never;
  MicrobenchRun Baseline(InstrumentationConfig(), N, Never);
  uint64_t U = Baseline.result(0), L = Baseline.result(1),
           O = Baseline.result(2);

  std::vector<InstrumentationConfig> Configs = {
      config(SamplingFramework::Full, DuplicationMode::NoDuplication, 64),
      config(SamplingFramework::CounterBased,
             DuplicationMode::NoDuplication, 64),
      config(SamplingFramework::CounterBased,
             DuplicationMode::FullDuplication, 64),
      config(SamplingFramework::BrrBased, DuplicationMode::NoDuplication,
             64),
      config(SamplingFramework::BrrBased, DuplicationMode::FullDuplication,
             64),
      config(SamplingFramework::CounterBased,
             DuplicationMode::NoDuplication, 64, false),
      config(SamplingFramework::BrrBased, DuplicationMode::FullDuplication,
             64, false),
  };
  for (const InstrumentationConfig &C : Configs) {
    BrrUnitDecider D;
    MicrobenchRun R(C, N, D);
    EXPECT_EQ(R.result(0), U) << describeConfig(C);
    EXPECT_EQ(R.result(1), L) << describeConfig(C);
    EXPECT_EQ(R.result(2), O) << describeConfig(C);
  }
}

TEST(Microbench, FullInstrumentationEdgeProfileIsExact) {
  const size_t N = 30000;
  NeverTakenDecider D;
  MicrobenchRun R(
      config(SamplingFramework::Full, DuplicationMode::NoDuplication, 64),
      N, D);
  TextConfig TC;
  TC.NumChars = N;
  TextStats S = classifyText(generateText(TC));
  EXPECT_EQ(R.edgeCount(0), N); // loop-entry edge: every character
  EXPECT_EQ(R.edgeCount(1), S.Upper);
  EXPECT_EQ(R.edgeCount(2), S.Lower);
  EXPECT_EQ(R.edgeCount(3), S.Other);
  EXPECT_EQ(R.edgeCount(4), N); // rejoin edge: every character
}

TEST(Microbench, CounterSamplingCollectsOneInIntervalSamples) {
  const size_t N = 32768;
  NeverTakenDecider D;
  MicrobenchRun R(config(SamplingFramework::CounterBased,
                         DuplicationMode::NoDuplication, 64),
                  N, D);
  uint64_t Total = 0;
  for (unsigned Site = 0; Site != 5; ++Site)
    Total += R.edgeCount(Site);
  EXPECT_EQ(Total, 3 * N / 64); // three site visits per character
}

TEST(Microbench, BrrSamplingCollectsApproxOneInInterval) {
  const size_t N = 65536;
  BrrUnitDecider D;
  MicrobenchRun R(config(SamplingFramework::BrrBased,
                         DuplicationMode::NoDuplication, 64),
                  N, D);
  uint64_t Total = 0;
  for (unsigned Site = 0; Site != 5; ++Site)
    Total += R.edgeCount(Site);
  EXPECT_NEAR(static_cast<double>(Total), 3 * N / 64.0,
              0.25 * 3 * N / 64.0);
}

TEST(Microbench, SampledEdgeProfileMatchesFullShape) {
  // The sampled profile's per-class fractions should approximate the true
  // class mix (this is the accuracy claim at microbenchmark scale).
  const size_t N = 131072;
  BrrUnitDecider D;
  MicrobenchRun R(config(SamplingFramework::BrrBased,
                         DuplicationMode::NoDuplication, 16),
                  N, D);
  TextConfig TC;
  TC.NumChars = N;
  TextStats S = classifyText(generateText(TC));
  uint64_t ClassTotal = R.edgeCount(1) + R.edgeCount(2) + R.edgeCount(3);
  ASSERT_GT(ClassTotal, 0u);
  EXPECT_NEAR(static_cast<double>(R.edgeCount(2)) / ClassTotal,
              static_cast<double>(S.Lower) / N, 0.03);
}

TEST(Microbench, DynamicSiteVisitsEqualsCharacterCount) {
  NeverTakenDecider D;
  MicrobenchRun R(InstrumentationConfig(), 7777, D);
  EXPECT_EQ(R.MB.DynamicSiteVisits, 3u * 7777u);
  EXPECT_EQ(R.MB.NumStaticSites, 5u);
}

TEST(Microbench, FrameworkOnlyLeavesCountersZero) {
  const size_t N = 16384;
  BrrUnitDecider D;
  MicrobenchRun R(config(SamplingFramework::BrrBased,
                         DuplicationMode::NoDuplication, 64, false),
                  N, D);
  uint64_t Total = 0;
  for (unsigned Site = 0; Site != 5; ++Site)
    Total += R.edgeCount(Site);
  EXPECT_EQ(Total, 0u);
}

TEST(Microbench, SymbolsExported) {
  MicrobenchConfig C;
  C.Text.NumChars = 1000;
  MicrobenchProgram MB = buildMicrobench(C);
  EXPECT_TRUE(MB.Prog.hasSymbol("text"));
  EXPECT_TRUE(MB.Prog.hasSymbol("edges"));
  EXPECT_TRUE(MB.Prog.hasSymbol("results"));
  EXPECT_TRUE(MB.Prog.hasSymbol("dist"));
}
