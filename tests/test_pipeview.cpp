//===- tests/test_pipeview.cpp - Pipeline diagram tests -------------------===//

#include "uarch/Pipeview.h"

#include "isa/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

Program tinyProgram() {
  ProgramBuilder B;
  auto Skip = B.label();
  B.emit(Inst::add(3, 1, 2));
  B.emitBrr(FreqCode(9), Skip);
  B.bind(Skip);
  B.emit(Inst::ld(4, 0, 0x100));
  B.emit(Inst::halt());
  return B.finish();
}

} // namespace

TEST(Pipeview, RecordsBoundedWindow) {
  Program P = tinyProgram();
  NeverTakenDecider D;
  Pipeline Pipe(P, PipelineConfig(), &D);
  PipeviewRecorder R(2);
  R.attach(Pipe);
  Pipe.run(100);
  EXPECT_EQ(R.records().size(), 2u);
  EXPECT_EQ(R.records()[0].I.Op, Opcode::Add);
  EXPECT_EQ(R.records()[1].I.Op, Opcode::Brr);
}

TEST(Pipeview, SkipOffsetsTheWindow) {
  Program P = tinyProgram();
  NeverTakenDecider D;
  Pipeline Pipe(P, PipelineConfig(), &D);
  PipeviewRecorder R(2, /*SkipInsts=*/1);
  R.attach(Pipe);
  Pipe.run(100);
  ASSERT_EQ(R.records().size(), 2u);
  EXPECT_EQ(R.records()[0].I.Op, Opcode::Brr);
}

TEST(Pipeview, RenderShowsStagesAndDisassembly) {
  Program P = tinyProgram();
  NeverTakenDecider D;
  Pipeline Pipe(P, PipelineConfig(), &D);
  PipeviewRecorder R;
  R.attach(Pipe);
  Pipe.run(100);
  std::string Diagram = R.render();
  EXPECT_NE(Diagram.find("add r3, r1, r2"), std::string::npos);
  EXPECT_NE(Diagram.find("brr 1/1024"), std::string::npos);
  EXPECT_NE(Diagram.find('F'), std::string::npos);
  EXPECT_NE(Diagram.find('D'), std::string::npos);
  EXPECT_NE(Diagram.find('C'), std::string::npos);
  // One row per instruction plus the header line.
  size_t Lines = 0;
  for (char C : Diagram)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 1 + R.records().size());
}

TEST(Pipeview, BrrRowEndsAtDecode) {
  Program P = tinyProgram();
  NeverTakenDecider D;
  Pipeline Pipe(P, PipelineConfig(), &D);
  PipeviewRecorder R;
  R.attach(Pipe);
  Pipe.run(100);
  // The brr's record commits at decode; non-brr instructions must show an
  // issue and commit stage.
  ASSERT_GE(R.records().size(), 3u);
  EXPECT_TRUE(R.records()[1].CommittedAtDecode);
  EXPECT_FALSE(R.records()[2].CommittedAtDecode);
  EXPECT_GT(R.records()[2].Commit, R.records()[2].Decode);
}

TEST(Pipeview, EmptyRecorderRendersEmpty) {
  PipeviewRecorder R;
  EXPECT_EQ(R.render(), "");
}

TEST(Pipeview, TruncatesVeryLongRows) {
  // A load that misses to memory spans >100 cycles: the row is truncated
  // with a '+'.
  ProgramBuilder B;
  B.emitLoadConst(1, 0x40000);
  B.emit(Inst::ld(4, 1, 0)); // cold miss: 142 cycles
  B.emit(Inst::add(5, 4, 4));
  B.emit(Inst::halt());
  Program P = B.finish();
  Pipeline Pipe(P, PipelineConfig());
  PipeviewRecorder R;
  R.attach(Pipe);
  Pipe.run(100);
  std::string Diagram = R.render(/*MaxColumns=*/40);
  EXPECT_NE(Diagram.find('+'), std::string::npos);
}

TEST(PipelineTrapEmulation, CostsFarMoreThanNativeBrr) {
  // Section 3.4's SIGILL fallback: functional behaviour identical, timing
  // catastrophically worse - the reason the instruction wants real decode
  // support for production use.
  ProgramBuilder B;
  B.emitLoadConst(2, 5000);
  auto Loop = B.label();
  auto Skip = B.label();
  B.bind(Loop);
  B.emitBrr(FreqCode(9), Skip);
  B.bind(Skip);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  Program P = B.finish();

  PipelineConfig Native;
  PipelineConfig Trap;
  Trap.BrrTrapCycles = 300; // kernel entry + handler + return

  HwCounterDecider D1, D2;
  Pipeline NativePipe(P, Native, &D1);
  Pipeline TrapPipe(P, Trap, &D2);
  PipelineStats SNative = NativePipe.run(10000000).Stats;
  PipelineStats STrap = TrapPipe.run(10000000).Stats;

  EXPECT_EQ(SNative.BrrExecuted, STrap.BrrExecuted);
  EXPECT_EQ(SNative.BrrTaken, STrap.BrrTaken);
  EXPECT_EQ(SNative.Insts, STrap.Insts) << "same architectural work";
  EXPECT_GT(STrap.Cycles, SNative.Cycles * 20)
      << "every brr should pay the trap";
}

TEST(PipelineTrapEmulation, ArchitecturalStateUnchanged) {
  ProgramBuilder B;
  auto Skip = B.label();
  B.emitLoadConst(2, 100);
  auto Loop = B.label();
  B.bind(Loop);
  B.emitBrr(FreqCode(1), Skip);
  B.emit(Inst::addi(5, 5, 1)); // fall-through work
  B.bind(Skip);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  Program P = B.finish();

  PipelineConfig Trap;
  Trap.BrrTrapCycles = 200;
  HwCounterDecider D1, D2;
  Pipeline NativePipe(P, PipelineConfig(), &D1);
  Pipeline TrapPipe(P, Trap, &D2);
  NativePipe.run(1000000);
  TrapPipe.run(1000000);
  EXPECT_EQ(NativePipe.machine().readReg(5), TrapPipe.machine().readReg(5));
}
