//===- tests/test_opt.cpp - Profile maps and layout passes ----------------===//
//
// The src/opt/ subsystem: profile representation (JSON round-trip, oracle
// collection, sampled-site ingestion) and the three layout passes, each
// checked both structurally (the layout moved the way the pass promises)
// and semantically (the emitted program still computes the same thing).
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "instr/CfgTransform.h"
#include "instr/Sites.h"
#include "isa/Encoding.h"
#include "opt/Passes.h"
#include "opt/ProfileMap.h"
#include "sim/Interpreter.h"
#include "workloads/PgoGen.h"

#include "gtest/gtest.h"

#include <algorithm>

using namespace bor;

namespace {

uint64_t runChecksum(const Program &P, uint64_t ChecksumAddr,
                     RunStats *StatsOut = nullptr) {
  Machine M;
  BrrUnitDecider D;
  Interpreter I(P, M, D);
  RunStats S = I.run(1ULL << 24);
  EXPECT_TRUE(S.Halted);
  if (StatsOut)
    *StatsOut = S;
  return M.memory().readU64(ChecksumAddr);
}

TEST(ProfileMap, JsonRoundTripPreservesCountsAndCompleteness) {
  opt::ProfileMap P;
  P.add(0, 1000, 900);
  P.add(7, 3);
  P.add(7, 2); // accumulates
  P.setComplete(true);
  opt::ProfileMap Q;
  std::string Err;
  ASSERT_TRUE(opt::ProfileMap::fromJson(P.toJson(), Q, Err)) << Err;
  EXPECT_TRUE(Q.complete());
  EXPECT_EQ(Q.numBlocks(), 2u);
  EXPECT_EQ(Q.execCount(0), 1000u);
  EXPECT_EQ(Q.takenCount(0), 900u);
  EXPECT_EQ(Q.execCount(7), 5u);
  EXPECT_EQ(Q.takenCount(7), 0u);
  EXPECT_FALSE(Q.hasBlock(3));
  EXPECT_EQ(Q.maxExec(), 1000u);
  EXPECT_EQ(Q.totalExec(), 1005u);

  opt::ProfileMap Partial;
  Partial.add(1, 5);
  ASSERT_TRUE(opt::ProfileMap::fromJson(Partial.toJson(), Q, Err)) << Err;
  EXPECT_FALSE(Q.complete());
}

TEST(ProfileMap, FromJsonRejectsWrongVersionAndMalformedInput) {
  opt::ProfileMap Q;
  std::string Err;
  EXPECT_FALSE(opt::ProfileMap::fromJson("{\"version\":\"other\"}", Q, Err));
  EXPECT_FALSE(opt::ProfileMap::fromJson("not json", Q, Err));
  EXPECT_FALSE(opt::ProfileMap::fromJson(
      "{\"version\":\"bor-profile-v1\",\"blocks\":[{\"id\":1}]}", Q, Err));
}

TEST(ProfileMap, OracleCountsMatchLoopStructure) {
  // A 10-iteration counted loop: head executes 10 times, its backward
  // branch is taken 9 times, the epilogue once.
  ProgramBuilder B;
  B.emitLoadConst(2, 10);
  auto Loop = B.label();
  B.bind(Loop);
  B.emit(Inst::add(3, 3, 2));
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, RegZero, Loop);
  B.emit(Inst::halt());
  Program P = B.finish();

  BrrUnitDecider D;
  opt::ProfileMap Prof = opt::collectOracleProfile(P, D, 1 << 20);
  EXPECT_TRUE(Prof.complete());
  cfg::Module M = cfg::buildModule(P);
  cfg::BlockId Entry = M.layout().front();
  cfg::BlockId Head = M.blockForIndex(P.numInsts() - 2); // the branch block
  cfg::BlockId Epi = M.blockForIndex(P.numInsts() - 1);  // halt
  EXPECT_EQ(Prof.execCount(Entry), 1u);
  EXPECT_EQ(Prof.execCount(Head), 10u);
  EXPECT_EQ(Prof.takenCount(Head), 9u);
  EXPECT_EQ(Prof.execCount(Epi), 1u);
}

TEST(ProfileMap, SiteIngestSkipsUnmappedSlots) {
  opt::ProfileMap P = opt::profileFromSites({5, 9, 3}, {2, cfg::NoBlock, 4});
  EXPECT_FALSE(P.complete());
  EXPECT_EQ(P.numBlocks(), 2u);
  EXPECT_EQ(P.execCount(2), 5u);
  EXPECT_EQ(P.execCount(4), 3u);
}

TEST(LayoutPasses, OracleProfileFlipsBiasedBranchesAndPreservesExecution) {
  PgoGenConfig C;
  C.Iters = 300;
  PgoWorkload W = buildPgoWorkload(C);
  RunStats BaseStats;
  uint64_t BaseSum = runChecksum(W.Baseline, W.ChecksumAddr, &BaseStats);

  BrrUnitDecider D;
  opt::ProfileMap Prof = opt::collectOracleProfile(W.Baseline, D, 1 << 24);
  cfg::Module M = cfg::buildModule(W.Baseline);
  opt::LayoutStats LS = opt::optimizeLayout(M, Prof);
  EXPECT_GT(LS.HotFallthroughs, 0u);
  EXPECT_GT(LS.Traces, 0u);

  cfg::EmitOptions EO;
  EO.ElideJumpToNext = true;
  Program Opt = cfg::emitProgram(M, EO);
  RunStats OptStats;
  uint64_t OptSum = runChecksum(Opt, W.ChecksumAddr, &OptStats);
  EXPECT_EQ(OptSum, BaseSum);
  EXPECT_NE(OptSum, 0u);
  // The whole point: the hot path now runs on not-taken branches.
  EXPECT_LT(OptStats.CondTaken, BaseStats.CondTaken);
  EXPECT_EQ(OptStats.CondBranches, BaseStats.CondBranches);
  EXPECT_EQ(OptStats.Loads, BaseStats.Loads);
  EXPECT_EQ(OptStats.Stores, BaseStats.Stores);
}

TEST(LayoutPasses, SampledBrrProfileDrivesTheSameFlips) {
  PgoGenConfig C;
  C.Iters = 500;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 16;
  PgoWorkload W = buildPgoWorkload(C);

  // Collect sampled counts from the instrumented variant.
  Machine Mach;
  BrrUnitDecider D;
  Interpreter I(W.Instrumented, Mach, D);
  RunStats S = I.run(1ULL << 24);
  ASSERT_TRUE(S.Halted);
  ASSERT_GT(S.BrrExecuted, 0u);
  std::vector<uint64_t> Counts(W.NumSites);
  for (size_t SI = 0; SI != W.NumSites; ++SI)
    Counts[SI] = Mach.memory().readU64(W.ProfileBase + 8 * SI);
  opt::ProfileMap Prof = opt::profileFromSites(Counts, W.SiteBlocks);
  ASSERT_FALSE(Prof.empty());
  EXPECT_FALSE(Prof.complete());

  uint64_t BaseSum = runChecksum(W.Baseline, W.ChecksumAddr);
  cfg::Module M = cfg::buildModule(W.Baseline);
  opt::LayoutStats LS = opt::optimizeLayout(M, Prof);
  EXPECT_GT(LS.HotFallthroughs, 0u);
  cfg::EmitOptions EO;
  EO.ElideJumpToNext = true;
  Program Opt = cfg::emitProgram(M, EO);
  EXPECT_EQ(runChecksum(Opt, W.ChecksumAddr), BaseSum);
}

TEST(LayoutPasses, BrrUncommonBlocksAreOutlinedStructurally) {
  // Instrument a tight loop with a brr-sampled site: the uncommon block
  // sits out of line already, but move it back inline first to prove the
  // structural pass pushes it to the tail with no profile at all.
  ProgramBuilder B;
  ProfileTable Table(B, "prof", 1);
  B.emitLoadConst(RegGlobals, DefaultDataBase);
  B.emitLoadConst(RegProfBase, Table.baseAddr());
  B.emitLoadConst(2, 200);
  auto Loop = B.label();
  B.bind(Loop);
  const size_t SitePos = B.here();
  B.emit(Inst::add(3, 3, 2));
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, RegZero, Loop);
  B.emit(Inst::halt());
  Program P = B.finish();

  InstrumentationConfig IC;
  IC.Framework = SamplingFramework::BrrBased;
  IC.Interval = 8;
  cfg::Module M = cfg::buildModule(P);
  CfgSamplingTransform T(M, IC, DefaultDataBase);
  std::vector<Inst> Body;
  Table.appendIncrement(Body, 0, RegProfBase, Table.baseAddr(), RegScratch);
  cfg::BlockId SiteBlock = M.blockForIndex(SitePos);
  T.instrumentSites({{SiteBlock,
                      static_cast<uint32_t>(SitePos -
                                            M.block(SiteBlock).OrigIndex),
                      Body}});

  // Force the uncommon block inline right after the check.
  cfg::BlockId Uncommon = cfg::NoBlock;
  for (cfg::BlockId Id = 0; Id != M.numBlocks(); ++Id)
    for (const cfg::Edge &E : M.block(Id).Succs)
      if (E.Kind == cfg::EdgeKind::BrrTaken)
        Uncommon = E.Dst;
  ASSERT_NE(Uncommon, cfg::NoBlock);
  std::vector<cfg::BlockId> L = M.layout();
  L.erase(std::find(L.begin(), L.end(), Uncommon));
  L.insert(std::find(L.begin(), L.end(), SiteBlock) + 1, Uncommon);
  M.setLayout(L);

  opt::ProfileMap Empty;
  opt::LayoutStats LS = opt::optimizeLayout(M, Empty);
  EXPECT_EQ(LS.BrrOutlined, 1u);
  EXPECT_EQ(LS.ColdOutlined, 0u); // no profile, nothing profiled-cold
  // The uncommon block is at the tail (before sentinels, of which this
  // module has none).
  EXPECT_EQ(M.layout().back(), Uncommon);

  // Still samples correctly: counter ends nonzero, program halts.
  Program Q = cfg::emitProgram(M);
  Machine Mach;
  BrrUnitDecider D;
  Interpreter I(Q, Mach, D);
  RunStats S = I.run(1 << 20);
  EXPECT_TRUE(S.Halted);
  EXPECT_GT(S.BrrExecuted, 0u);
  EXPECT_EQ(Mach.memory().readU64(Table.counterAddr(0)), S.BrrTaken);
}

TEST(LayoutPasses, HotColdSplitNeedsPositiveEvidence) {
  // entry -> A (hot) -> B (cold) -> C, loop back. A partial profile that
  // is silent about B must not move it; a complete one with B at zero
  // must.
  ProgramBuilder B;
  B.emitLoadConst(2, 100);
  auto Loop = B.label();
  auto Skip = B.label();
  B.bind(Loop);
  B.emit(Inst::add(3, 3, 2));
  B.emitBranch(Opcode::Bne, 2, RegZero, Skip); // hop over the "cold" block
  B.emit(Inst::alui(Opcode::Xori, 3, 3, 1));
  B.emit(Inst::alui(Opcode::Xori, 3, 3, 2));
  B.bind(Skip);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, RegZero, Loop);
  B.emit(Inst::halt());
  Program P = B.finish();
  cfg::Module M0 = cfg::buildModule(P);
  cfg::BlockId Cold = cfg::NoBlock;
  for (cfg::BlockId Id : M0.layout()) {
    const cfg::BasicBlock &BB = M0.block(Id);
    if (!BB.Insts.empty() && BB.Insts.front().Op == Opcode::Xori)
      Cold = Id;
  }
  ASSERT_NE(Cold, cfg::NoBlock);

  opt::LayoutOptions Opts;
  Opts.BranchDirection = false; // isolate the split pass
  Opts.OutlineCold = false;

  // Partial profile, silent about Cold: conservative, nothing moves.
  {
    cfg::Module M = cfg::buildModule(P);
    opt::ProfileMap Prof;
    for (cfg::BlockId Id : M.layout())
      if (Id != Cold)
        Prof.add(Id, 100);
    opt::LayoutStats LS = opt::optimizeLayout(M, Prof, Opts);
    EXPECT_EQ(LS.ColdOutlined, 0u);
    EXPECT_EQ(M.layout(), M0.layout());
  }

  // Complete profile with Cold at zero: moved to the tail.
  {
    cfg::Module M = cfg::buildModule(P);
    opt::ProfileMap Prof;
    for (cfg::BlockId Id : M.layout())
      if (Id != Cold)
        Prof.add(Id, 100);
    Prof.setComplete(true);
    opt::LayoutStats LS = opt::optimizeLayout(M, Prof, Opts);
    EXPECT_EQ(LS.ColdOutlined, 1u);
    EXPECT_GE(LS.FunctionsSplit, 1u);
    ASSERT_FALSE(M.layout().empty());
    EXPECT_EQ(M.layout().back(), Cold);
  }
}

TEST(PgoWorkload, DeterministicAndSelfChecking) {
  PgoGenConfig C;
  C.Iters = 100;
  C.Instr.Framework = SamplingFramework::BrrBased;
  PgoWorkload A = buildPgoWorkload(C);
  PgoWorkload B = buildPgoWorkload(C);
  ASSERT_EQ(A.Baseline.numInsts(), B.Baseline.numInsts());
  for (size_t I = 0; I != A.Baseline.numInsts(); ++I)
    ASSERT_EQ(encode(A.Baseline.at(I)), encode(B.Baseline.at(I)));
  EXPECT_EQ(A.SiteBlocks, B.SiteBlocks);

  // The instrumented variant computes the identical checksum (the
  // framework is transparent to the program's own computation).
  uint64_t BaseSum = runChecksum(A.Baseline, A.ChecksumAddr);
  uint64_t InstrSum = runChecksum(A.Instrumented, A.ChecksumAddr);
  EXPECT_EQ(BaseSum, InstrSum);
  EXPECT_NE(BaseSum, 0u);

  // Different seeds give different control flow.
  PgoGenConfig C2 = C;
  C2.Seed = 2;
  PgoWorkload W2 = buildPgoWorkload(C2);
  EXPECT_NE(runChecksum(W2.Baseline, W2.ChecksumAddr), BaseSum);
}

} // namespace
