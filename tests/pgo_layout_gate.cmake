# PGO-loop gate: the pgo_layout experiment closes the paper's loop --
# collect a brr-sampled (or counter-sampled) profile, feed it to the
# layout optimizer, and measure the relinearized program on the detailed
# pipeline. The verdict is PASS only when every optimized run is
# execution-equivalent to its baseline (same checksum, clean halt) AND
# the brr-profile-driven layout's mean ROI cycles are separated from the
# baseline's by non-overlapping 95% CIs.
#
# The gate also repeats the run across worker-thread counts and requires
# byte-identical JSON, extending the runner's determinism guarantee to
# the profile-collection + optimization pipeline.
#
# --scale 10 drops the iteration count to 300 per workload seed, keeping
# the full grid (4 profile sources x 5 seeds, each with baseline +
# optimized + instrumented pipeline runs) affordable in CI.
#
# Invoked by ctest with:
#   -DBENCH=<bor-bench> -DWORKDIR=<scratch dir>

file(MAKE_DIRECTORY ${WORKDIR})
set(SERIAL ${WORKDIR}/pgo_layout_t1.json)
set(PARALLEL ${WORKDIR}/pgo_layout_t8.json)

function(run_bench outfile threads)
  execute_process(COMMAND ${BENCH} --experiment pgo_layout --scale 10
                          --threads ${threads} --no-table --json ${outfile}
                  RESULT_VARIABLE RC
                  OUTPUT_VARIABLE OUT
                  ERROR_VARIABLE ERR)
  if(NOT RC EQUAL 0)
    message(FATAL_ERROR
            "bor-bench --experiment pgo_layout --threads ${threads} "
            "failed (${RC}):\n${OUT}\n${ERR}")
  endif()
endfunction()

run_bench(${SERIAL} 1)
run_bench(${PARALLEL} 8)

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${SERIAL} ${PARALLEL}
                RESULT_VARIABLE DIFF)
if(NOT DIFF EQUAL 0)
  message(FATAL_ERROR
          "pgo_layout JSON differs between --threads 1 and --threads 8: "
          "${SERIAL} vs ${PARALLEL}")
endif()

file(READ ${SERIAL} CONTENT)
if(NOT CONTENT MATCHES "\"verdict\":\"PASS\"")
  message(FATAL_ERROR
          "pgo_layout verdict is not PASS (see ${SERIAL})")
endif()

message(STATUS "pgo layout gate passed")
