//===- tests/test_exp.cpp - Experiment-runner subsystem unit tests -------===//
//
// Covers the pieces of src/exp/ that the figure experiments themselves do
// not exercise deterministically: JSON rendering, the thread pool, the
// registry, and -- most importantly -- that the parallel runner produces
// byte-identical output for any thread count.
//
//===----------------------------------------------------------------------===//

#include "exp/Experiment.h"
#include "exp/Json.h"
#include "exp/ResultSink.h"
#include "exp/Runner.h"
#include "exp/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <thread>

using namespace bor::exp;

namespace {

//===----------------------------------------------------------------------===//
// JSON rendering
//===----------------------------------------------------------------------===//

TEST(JsonTest, EscapePassesPlainTextThrough) {
  EXPECT_EQ(jsonEscape("fig13 interval=1024"), "fig13 interval=1024");
}

TEST(JsonTest, EscapeQuotesAndBackslashes) {
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonTest, EscapeControlCharacters) {
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
  EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(jsonEscape(std::string_view("\x00", 1)), "\\u0000");
}

TEST(JsonTest, UnsignedNumbersAreExact) {
  EXPECT_EQ(jsonNumber(static_cast<uint64_t>(0)), "0");
  EXPECT_EQ(jsonNumber(static_cast<uint64_t>(18446744073709551615ull)),
            "18446744073709551615");
}

TEST(JsonTest, IntegralDoublesPrintWithoutDecimalPoint) {
  EXPECT_EQ(jsonNumber(0.0), "0");
  EXPECT_EQ(jsonNumber(42.0), "42");
  EXPECT_EQ(jsonNumber(-3.0), "-3");
}

TEST(JsonTest, FractionalDoublesRoundTrip) {
  for (double V : {0.1, 1.0 / 3.0, 99.95, -273.15, 6.02214076e23}) {
    std::string S = jsonNumber(V);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
    EXPECT_EQ(S.find('n'), std::string::npos) << S; // not nan/null
  }
}

TEST(JsonTest, NonFiniteBecomesNull) {
  EXPECT_EQ(jsonNumber(std::nan("")), "null");
  EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
  EXPECT_EQ(jsonNumber(-HUGE_VAL), "null");
}

TEST(JsonTest, ObjectWriterPreservesFieldOrder) {
  JsonObjectWriter W;
  W.field("name", "fig13");
  W.fieldRaw("cells", "82");
  W.field("quote", "a\"b");
  EXPECT_EQ(W.finish(),
            "{\"name\":\"fig13\",\"cells\":82,\"quote\":\"a\\\"b\"}");
}

TEST(JsonTest, EmptyObject) {
  JsonObjectWriter W;
  EXPECT_EQ(W.finish(), "{}");
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 200; ++I)
    Pool.submit([&Count] { Count.fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 1);
  Pool.submit([&Count] { ++Count; });
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 3);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool Pool(2);
  Pool.wait(); // must not deadlock
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  std::atomic<bool> Ran{false};
  Pool.submit([&Ran] { Ran = true; });
  Pool.wait();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(3);
    for (int I = 0; I != 50; ++I)
      Pool.submit([&Count] { Count.fetch_add(1); });
    // No wait(): the destructor must still run everything.
  }
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(RegistryTest, CreateStampsTheRegisteredName) {
  ExperimentRegistry R;
  R.add("toy", "a toy", [](const ExperimentOptions &) {
    ExperimentSpec S;
    S.Title = "toy experiment";
    return S;
  });
  EXPECT_TRUE(R.contains("toy"));
  EXPECT_FALSE(R.contains("fig99"));
  ExperimentSpec S = R.create("toy", ExperimentOptions());
  EXPECT_EQ(S.Name, "toy");
  EXPECT_EQ(S.Title, "toy experiment");
}

TEST(RegistryTest, ListIsSortedByName) {
  ExperimentRegistry R;
  auto Stub = [](const ExperimentOptions &) { return ExperimentSpec(); };
  R.add("zeta", "last", Stub);
  R.add("alpha", "first", Stub);
  R.add("mid", "middle", Stub);
  auto L = R.list();
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0].first, "alpha");
  EXPECT_EQ(L[1].first, "mid");
  EXPECT_EQ(L[2].first, "zeta");
  EXPECT_EQ(L[0].second, "first");
}

//===----------------------------------------------------------------------===//
// Runner determinism
//===----------------------------------------------------------------------===//

/// A synthetic experiment whose cells deliberately finish out of order
/// when run concurrently: cell 0 sleeps longest, the last cell not at
/// all. Any order-dependence in result collection or sink feeding shows
/// up as a diff between thread counts.
ExperimentSpec makeScrambledSpec(unsigned NumCells) {
  ExperimentSpec S;
  S.Name = "scrambled";
  S.Title = "determinism probe";
  for (unsigned I = 0; I != NumCells; ++I)
    S.Cells.push_back({{"cell", std::to_string(I)}});
  S.Run = [NumCells](const ParamSet &Cell, size_t Index) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(2 * (NumCells - Index)));
    RunRecord R;
    for (const auto &KV : Cell)
      R.param(KV.first, KV.second);
    R.metric("index", static_cast<uint64_t>(Index));
    R.metric("third", static_cast<double>(Index) / 3.0, 4);
    return R;
  };
  S.Summarize = [](const std::vector<RunRecord> &Cells) {
    uint64_t Sum = 0;
    for (const RunRecord &R : Cells)
      Sum += R.findMetric("index")->U;
    std::vector<RunRecord> Out;
    Out.push_back(RunRecord().param("cell", "sum").metric("index", Sum));
    return Out;
  };
  return S;
}

/// Runs \p Spec through a JsonLinesSink into a temporary file and returns
/// the bytes written.
std::string jsonOutput(const ExperimentSpec &Spec, unsigned Threads) {
  std::FILE *F = std::tmpfile();
  EXPECT_NE(F, nullptr);
  {
    JsonLinesSink Sink(F, /*Owned=*/false);
    std::vector<ResultSink *> Sinks{&Sink};
    runExperiment(Spec, Threads, Sinks);
  }
  std::rewind(F);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

TEST(RunnerTest, ResultsArriveInSpecOrder) {
  ExperimentSpec S = makeScrambledSpec(8);
  std::vector<ResultSink *> NoSinks;
  std::vector<RunRecord> Records = runExperiment(S, 4, NoSinks);
  ASSERT_EQ(Records.size(), 8u);
  for (size_t I = 0; I != Records.size(); ++I) {
    EXPECT_EQ(*Records[I].findParam("cell"), std::to_string(I));
    EXPECT_EQ(Records[I].findMetric("index")->U, I);
  }
}

TEST(RunnerTest, SetupRunsBeforeAnyCell) {
  ExperimentSpec S;
  S.Name = "setup-order";
  S.Cells = {{{"cell", "0"}}, {{"cell", "1"}}};
  auto Baseline = std::make_shared<uint64_t>(0);
  S.Setup = [Baseline] { *Baseline = 7; };
  S.Run = [Baseline](const ParamSet &, size_t Index) {
    RunRecord R;
    R.metric("base", *Baseline);
    R.metric("index", static_cast<uint64_t>(Index));
    return R;
  };
  std::vector<ResultSink *> NoSinks;
  for (const RunRecord &R : runExperiment(S, 2, NoSinks))
    EXPECT_EQ(R.findMetric("base")->U, 7u);
}

TEST(RunnerTest, JsonIsByteIdenticalAcrossThreadCounts) {
  ExperimentSpec S = makeScrambledSpec(12);
  std::string Serial = jsonOutput(S, 1);
  std::string Parallel4 = jsonOutput(S, 4);
  std::string Parallel8 = jsonOutput(S, 8);
  EXPECT_FALSE(Serial.empty());
  EXPECT_EQ(Serial, Parallel4);
  EXPECT_EQ(Serial, Parallel8);
}

TEST(RunnerTest, JsonSinkWritesNonFiniteMetricsAsNull) {
  // End-to-end version of JsonTest.NonFiniteBecomesNull: an experiment
  // whose metrics divide by zero must still produce parseable JSON.
  ExperimentSpec S;
  S.Name = "nonfinite";
  S.Cells = {{{"cell", "0"}}};
  S.Run = [](const ParamSet &, size_t) {
    RunRecord R;
    R.param("cell", "0");
    R.metric("nan", std::nan(""), 3);
    R.metric("inf", std::numeric_limits<double>::infinity(), 3);
    R.metric("finite", 1.5, 3);
    return R;
  };
  std::string Out = jsonOutput(S, 1);
  EXPECT_NE(Out.find("\"nan\":null"), std::string::npos);
  EXPECT_NE(Out.find("\"inf\":null"), std::string::npos);
  EXPECT_NE(Out.find("\"finite\":1.5"), std::string::npos);
  EXPECT_EQ(Out.find("nan("), std::string::npos);
}

TEST(RunnerTest, JsonCarriesHeaderCellsAndSummary) {
  ExperimentSpec S = makeScrambledSpec(3);
  std::string Out = jsonOutput(S, 2);
  // One header + three cells + one summary = five lines.
  size_t Lines = 0;
  for (char C : Out)
    Lines += C == '\n';
  EXPECT_EQ(Lines, 5u);
  EXPECT_NE(Out.find("\"kind\":\"header\""), std::string::npos);
  EXPECT_NE(Out.find("\"kind\":\"cell\""), std::string::npos);
  EXPECT_NE(Out.find("\"kind\":\"summary\""), std::string::npos);
  EXPECT_NE(Out.find("\"experiment\":\"scrambled\""), std::string::npos);
  // Summary: sum of indices 0+1+2.
  EXPECT_NE(Out.find("\"index\":3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// TableSink
//===----------------------------------------------------------------------===//

TEST(TableSinkTest, RendersTitleColumnsAndNotes) {
  ExperimentSpec S = makeScrambledSpec(2);
  S.Notes = "probe notes line";
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  {
    TableSink Sink(F);
    std::vector<ResultSink *> Sinks{&Sink};
    runExperiment(S, 1, Sinks);
  }
  std::rewind(F);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  EXPECT_NE(Out.find("determinism probe"), std::string::npos);
  EXPECT_NE(Out.find("cell"), std::string::npos);
  EXPECT_NE(Out.find("third"), std::string::npos);
  EXPECT_NE(Out.find("probe notes line"), std::string::npos);
}

} // namespace
