//===- tests/test_paper_claims.cpp - The paper's claims, as assertions ----===//
//
// Each test here encodes a specific quantitative or structural claim from
// the paper's text and verifies it against this implementation. The
// section/figure is cited in each test; together they act as an executable
// index into the paper.
//
//===----------------------------------------------------------------------===//

#include "core/BitSelection.h"
#include "core/BrrUnit.h"
#include "core/HwCostModel.h"
#include "lfsr/TapCatalog.h"
#include "profile/SamplingPolicy.h"
#include "uarch/PipelineConfig.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bor;

// §3.2: "This provides a wide range of frequencies from 50% ((1/2)^1) to
// .0015% ((1/2)^16)."
TEST(PaperClaims, Sec32FrequencyRange) {
  EXPECT_DOUBLE_EQ(FreqCode(0).probability(), 0.5);
  EXPECT_NEAR(100.0 * FreqCode(15).probability(), 0.0015, 0.0002);
}

// §3.2: "Adding 1 to the encoded value, freq, avoids re-encoding
// unconditional jumps (branching 100% ((1/2)^0) of the time)."
TEST(PaperClaims, Sec32NoEncodingIsAlwaysTaken) {
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw)
    EXPECT_LT(FreqCode(Raw).probability(), 1.0);
}

// Figure 6: "A 4-bit LFSR cycles through 15 possible values except 0."
TEST(PaperClaims, Fig6FourBitPeriodIs15) {
  Lfsr L = Lfsr::fromPolynomial(4, {4, 3}, 1);
  EXPECT_EQ(L.measurePeriod(), 15u);
}

// §3.3 footnote 2: "An n-bit LFSR actually goes through 2^n - 1 values,
// with each bit set to 1 for 2^(n-1) of the values. Thus, the likelihood
// for any bit to be 1 is 2^(n-1)/(2^n - 1). With n=16, the probability is
// 0.5000076." Verified EXACTLY over one full period.
TEST(PaperClaims, Sec33Footnote2ExactBitBias) {
  Lfsr L = defaultTapSet(16).makeLfsr(1);
  uint64_t Period = (1u << 16) - 1;
  uint64_t Ones = 0;
  for (uint64_t I = 0; I != Period; ++I) {
    Ones += L.bit(0);
    L.step();
  }
  EXPECT_EQ(Ones, 1u << 15); // each bit is 1 in exactly 2^(n-1) states
  double Bias = static_cast<double>(Ones) / static_cast<double>(Period);
  EXPECT_NEAR(Bias, 0.5000076, 0.0000001);
}

// §3.3: "the probability of x bits being all set to 1 is (1/2)^x" —
// exactly (2^(n-x))/(2^n - 1) over a full period, close to (1/2)^x.
TEST(PaperClaims, Sec33AndOfBitsGivesPowerOfTwoProbability) {
  BrrUnitConfig Cfg;
  Cfg.LfsrWidth = 16;
  Cfg.Policy = BitSelectPolicy::Spaced;
  BrrUnit Unit(Cfg);
  // Count takens over one full LFSR period for freq = 3 (4 AND inputs).
  uint64_t Period = (1u << 16) - 1;
  uint64_t Taken = 0;
  for (uint64_t I = 0; I != Period; ++I)
    Taken += Unit.evaluate(FreqCode(3));
  // Exactly 2^(16-4) = 4096 of the 65535 states have all four bits set.
  EXPECT_EQ(Taken, 1u << 12);
}

// §3.3: "while ANDing two adjacent LFSR bits will correctly result in the
// branch being taken 25% of the time, the conditional probability of
// taking the branch given that the previous (25% frequency) branch was
// taken is 50%".
TEST(PaperClaims, Sec33AdjacentBitCorrelationIsExactlyHalf) {
  BrrUnitConfig Cfg;
  Cfg.LfsrWidth = 16;
  Cfg.Policy = BitSelectPolicy::Contiguous;
  BrrUnit Unit(Cfg);
  uint64_t Period = (1u << 16) - 1;
  uint64_t PrevTaken = 0, BothTaken = 0;
  bool Prev = Unit.evaluate(FreqCode(1));
  for (uint64_t I = 0; I != Period; ++I) {
    bool Cur = Unit.evaluate(FreqCode(1));
    if (Prev) {
      ++PrevTaken;
      BothTaken += Cur;
    }
    Prev = Cur;
  }
  double Conditional =
      static_cast<double>(BothTaken) / static_cast<double>(PrevTaken);
  EXPECT_NEAR(Conditional, 0.5, 0.001);
}

// §3.3: the paper's mitigation example — "selecting bits 0, 2, 5, and 9 to
// compute a 6.25% probability".
TEST(PaperClaims, Sec33SpacedSelectionExample) {
  EXPECT_EQ(selectAndBits(BitSelectPolicy::Spaced, 4, 20),
            (std::vector<unsigned>{0, 2, 5, 9}));
  EXPECT_DOUBLE_EQ(FreqCode(3).probability(), 0.0625);
}

// §3.3 Summary: "15 AND gates, one of each size from 2 to 16 inputs" and
// "a 16-input multiplexer".
TEST(PaperClaims, Sec33SummaryAndGateSizes) {
  for (unsigned Size = 2; Size <= 16; ++Size)
    EXPECT_EQ(selectAndBits(BitSelectPolicy::Spaced, Size, 20).size(),
              Size);
  EXPECT_EQ(FreqCode::NumValues, 16u);
}

// Abstract: "for simple processors ... 20 bits of state and less than 100
// gates; for aggressive superscalars, this grows to less than 100 bits of
// state and at most a few hundred gates."
TEST(PaperClaims, AbstractHardwareBudgets) {
  HwCostInputs Single;
  HwCostEstimate E1 = estimateBrrCost(Single);
  EXPECT_EQ(E1.StateBits, 20u);
  EXPECT_LT(E1.MacroGates, 100u);

  HwCostInputs Wide;
  Wide.DecodeWidth = 4;
  HwCostEstimate E4 = estimateBrrCost(Wide);
  EXPECT_LT(E4.StateBits, 100u);
  EXPECT_LT(E4.MacroGates, 400u);
}

// §4.2 footnote 7: "for an interval of 2, if the first method is sampled,
// the second method will not ... the next [sample] happens to be the first
// method again" — the resonance mechanism, stated for interval 2.
TEST(PaperClaims, Sec42Footnote7IntervalTwoResonance) {
  SwCounterPolicy Counter(2);
  // A loop invoking methods A (even positions) and B (odd positions).
  uint64_t SampledA = 0, SampledB = 0;
  for (int I = 0; I != 10000; ++I) {
    if (Counter.sample())
      ++SampledA;
    if (Counter.sample())
      ++SampledB;
  }
  EXPECT_TRUE(SampledA == 0 || SampledB == 0);
  EXPECT_EQ(SampledA + SampledB, 10000u);
}

// §3.4: deterministic recovery needs only "additional storage for the bits
// that would have shifted off the end of the LFSR (one additional bit per
// speculative branch-on-random allowed)".
TEST(PaperClaims, Sec34OneRecoveryBitPerInflightBrr) {
  HwCostInputs Base;
  for (unsigned InFlight : {1u, 2u, 4u, 8u}) {
    HwCostInputs Det = Base;
    Det.Deterministic = true;
    Det.MaxInFlight = InFlight;
    unsigned CounterBits = 0;
    for (unsigned V = InFlight; V; V >>= 1)
      ++CounterBits; // ceil(log2(InFlight+1))
    EXPECT_EQ(estimateBrrCost(Det).StateBits,
              estimateBrrCost(Base).StateBits + InFlight + CounterBits);
  }
}

// §5.1: the simulated machine's headline parameters.
TEST(PaperClaims, Sec51MachineParameters) {
  PipelineConfig C;
  EXPECT_EQ(C.FetchWidth, 3u);
  EXPECT_EQ(C.DecodeWidth, 4u);
  EXPECT_EQ(C.RobEntries, 80u);
  EXPECT_EQ(C.Predictor.HistoryBits, 16u);
  EXPECT_EQ(C.Predictor.BimodalEntries, 1u << 16);
  EXPECT_EQ(C.BtbCfg.Entries, 1024u);
  EXPECT_EQ(C.RasEntries, 32u);
  EXPECT_EQ(C.MemHier.L2HitCycles, 8u);
  EXPECT_EQ(C.MemHier.MemCycles, 140u);
  // Decode (where brr resolves) is the 5th stage.
  EXPECT_EQ(C.FetchToDecode + 1, 5u);
  // Minimum back-end misprediction penalty ~11 cycles: depth to resolve
  // (fetch pipe + decode->dispatch + issue + execute) plus the redirect.
  unsigned MinPenalty = C.FetchToDecode + C.DecodeToDispatch +
                        C.DispatchToIssue + 1 + C.MispredictRedirect;
  EXPECT_EQ(MinPenalty, 11u);
}
