//===- tests/test_countersampling.cpp - CounterGlobals unit tests ---------===//

#include "instr/CounterSampling.h"

#include "sim/Interpreter.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(CounterGlobals, MemoryModeAllocatesAndInitializes) {
  ProgramBuilder B;
  CounterGlobals G(B, 64, DefaultDataBase);
  B.emit(Inst::halt());
  Program P = B.finish();
  EXPECT_TRUE(P.hasSymbol("cbs.count"));
  EXPECT_TRUE(P.hasSymbol("cbs.reset"));
  Machine M;
  M.loadProgram(P);
  EXPECT_EQ(M.memory().readU64(G.countAddr()), 63u);
  EXPECT_EQ(M.memory().readU64(G.resetAddr()), 64u);
}

TEST(CounterGlobals, RegisterModeAllocatesNothing) {
  ProgramBuilder B;
  CounterGlobals G(B, 64, DefaultDataBase, CounterHome::Register);
  B.emit(Inst::halt());
  Program P = B.finish();
  EXPECT_TRUE(P.data().empty());
  EXPECT_EQ(G.home(), CounterHome::Register);
}

TEST(CounterGlobals, MemorySetupIsEmpty) {
  ProgramBuilder B;
  CounterGlobals G(B, 16, DefaultDataBase);
  size_t Before = B.here();
  G.emitSetup(B);
  EXPECT_EQ(B.here(), Before);
}

TEST(CounterGlobals, RegisterSetupInitializesCountdown) {
  ProgramBuilder B;
  CounterGlobals G(B, 16, DefaultDataBase, CounterHome::Register);
  G.emitSetup(B);
  B.emit(Inst::halt());
  Machine M;
  NeverTakenDecider D;
  Program P = B.finish();
  Interpreter I(P, M, D);
  I.run(10);
  EXPECT_EQ(M.readReg(RegCounter), 15u);
}

TEST(CounterGlobals, CheckSequencesMatchFigure4Lengths) {
  // Memory: ld + beq inline, addi + st on the common tail = 4.
  // Register: beq inline, addi tail = 2.
  auto InlineLen = [](CounterHome Home) {
    ProgramBuilder B;
    CounterGlobals G(B, 8, DefaultDataBase, Home);
    auto L = B.label();
    size_t Start = B.here();
    G.emitLoadAndCheck(B, L);
    G.emitDecrementStore(B);
    B.bind(L);
    return B.here() - Start;
  };
  EXPECT_EQ(InlineLen(CounterHome::Memory), 4u);
  EXPECT_EQ(InlineLen(CounterHome::Register), 2u);
}

TEST(CounterGlobalsDeath, ZeroIntervalAsserts) {
  ProgramBuilder B;
  EXPECT_DEATH(CounterGlobals(B, 0, DefaultDataBase), "positive");
}
