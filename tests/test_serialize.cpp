//===- tests/test_serialize.cpp - BORB container tests --------------------===//

#include "isa/Serialize.h"

#include "sim/Interpreter.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace bor;

namespace {

void expectEqualPrograms(const Program &A, const Program &B) {
  ASSERT_EQ(A.numInsts(), B.numInsts());
  for (size_t I = 0; I != A.numInsts(); ++I)
    EXPECT_EQ(A.at(I), B.at(I)) << "instruction " << I;
  EXPECT_EQ(A.dataBase(), B.dataBase());
  EXPECT_EQ(A.data(), B.data());
  EXPECT_EQ(A.symbols(), B.symbols());
}

} // namespace

TEST(Serialize, RoundTripsEmptyProgram) {
  Program Empty;
  LoadResult R = deserializeProgram(serializeProgram(Empty));
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(Empty, R.Prog);
}

TEST(Serialize, RoundTripsMicrobenchmark) {
  // A real program with code, initialized data and symbols.
  MicrobenchConfig C;
  C.Text.NumChars = 5000;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 64;
  MicrobenchProgram MB = buildMicrobench(C);

  LoadResult R = deserializeProgram(serializeProgram(MB.Prog));
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(MB.Prog, R.Prog);
}

TEST(Serialize, DeserializedProgramExecutesIdentically) {
  MicrobenchConfig C;
  C.Text.NumChars = 5000;
  MicrobenchProgram MB = buildMicrobench(C);
  LoadResult R = deserializeProgram(serializeProgram(MB.Prog));
  ASSERT_TRUE(R.Ok);

  auto Run = [](const Program &P) {
    Machine M;
    NeverTakenDecider D;
    Interpreter I(P, M, D);
    I.run(1ULL << 24);
    return M.memory().readU64(P.symbol("results"));
  };
  EXPECT_EQ(Run(MB.Prog), Run(R.Prog));
}

TEST(Serialize, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = serializeProgram(Program());
  Bytes[0] = 'X';
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("magic"), std::string::npos);
}

TEST(Serialize, RejectsWrongVersion) {
  std::vector<uint8_t> Bytes = serializeProgram(Program());
  Bytes[4] = 99;
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("version"), std::string::npos);
}

TEST(Serialize, RejectsTruncation) {
  ProgramBuilder B;
  B.emit(Inst::add(1, 2, 3));
  B.emit(Inst::halt());
  std::vector<uint8_t> Bytes = serializeProgram(B.finish());
  for (size_t Cut : {size_t(2), Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(deserializeProgram(Truncated).Ok) << "cut at " << Cut;
  }
}

TEST(Serialize, RejectsTrailingBytes) {
  std::vector<uint8_t> Bytes = serializeProgram(Program());
  Bytes.push_back(0);
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("trailing"), std::string::npos);
}

TEST(Serialize, RejectsInvalidOpcodeBits) {
  ProgramBuilder B;
  B.emit(Inst::halt());
  std::vector<uint8_t> Bytes = serializeProgram(B.finish());
  // The single code word starts at offset 4+4+4+8+8+4 = 32; set opcode
  // bits to an out-of-range value.
  Bytes[32 + 3] = 0xff;
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("opcode"), std::string::npos);
}

TEST(Serialize, FileSaveAndLoad) {
  ProgramBuilder B;
  uint64_t Addr = B.allocData(8, 8);
  B.initDataU64(Addr, 777);
  B.nameData("x", Addr);
  B.emit(Inst::halt());
  Program P = B.finish();

  std::string Path = testing::TempDir() + "/bor_serialize_test.borb";
  ASSERT_TRUE(saveProgram(P, Path));
  LoadResult R = loadProgramFile(Path);
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(P, R.Prog);
  std::remove(Path.c_str());
}

TEST(Serialize, LoadMissingFileFails) {
  LoadResult R = loadProgramFile("/nonexistent/path/x.borb");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot open"), std::string::npos);
}

TEST(Serialize, SectionsRoundTrip) {
  ProgramBuilder B;
  B.emit(Inst::halt());
  Program P = B.finish();

  std::vector<ContainerSection> Sections;
  Sections.push_back(ContainerSection::make("CKPT", {1, 2, 3, 4, 5}));
  Sections.push_back(ContainerSection::make("NOTE", {}));

  LoadResult R = deserializeProgram(serializeProgram(P, Sections));
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(P, R.Prog);
  ASSERT_EQ(R.Sections.size(), 2u);
  const ContainerSection *Ckpt = R.findSection("CKPT");
  ASSERT_NE(Ckpt, nullptr);
  EXPECT_EQ(Ckpt->Bytes, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
  const ContainerSection *Note = R.findSection("NOTE");
  ASSERT_NE(Note, nullptr);
  EXPECT_TRUE(Note->Bytes.empty());
  EXPECT_EQ(R.findSection("ABSD"), nullptr);
}

TEST(Serialize, NoSectionsStaysVersionOne) {
  // Backwards compatibility: a program without sections must serialize to
  // the exact bytes previous revisions wrote (version 1, ending at the
  // symbol table).
  MicrobenchConfig C;
  C.Text.NumChars = 200;
  MicrobenchProgram MB = buildMicrobench(C);

  std::vector<uint8_t> Bytes = serializeProgram(MB.Prog);
  EXPECT_EQ(Bytes[4], 1); // u32 version, little-endian
  std::vector<uint8_t> WithEmpty = serializeProgram(MB.Prog, {});
  EXPECT_EQ(Bytes, WithEmpty);

  std::vector<ContainerSection> Sections;
  Sections.push_back(ContainerSection::make("CKPT", {9}));
  std::vector<uint8_t> V2 = serializeProgram(MB.Prog, Sections);
  EXPECT_EQ(V2[4], 2);
  // The v2 image is the v1 image plus the section block.
  ASSERT_GT(V2.size(), Bytes.size());
  EXPECT_TRUE(std::equal(Bytes.begin() + 8, Bytes.end(), V2.begin() + 8));
}

TEST(Serialize, RejectsTruncatedSections) {
  ProgramBuilder B;
  B.emit(Inst::halt());
  std::vector<ContainerSection> Sections;
  Sections.push_back(ContainerSection::make("CKPT", {1, 2, 3, 4}));
  std::vector<uint8_t> Bytes = serializeProgram(B.finish(), Sections);

  // Cut inside the section block: count, header, payload.
  for (size_t Keep : {Bytes.size() - 1, Bytes.size() - 4, Bytes.size() - 9}) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Keep);
    EXPECT_FALSE(deserializeProgram(Cut).Ok) << "kept " << Keep;
  }
  // Corrupt the declared payload size to overrun the buffer.
  std::vector<uint8_t> BadSize = Bytes;
  BadSize[BadSize.size() - 4 - 8] = 0xff; // low byte of the u64 size
  EXPECT_FALSE(deserializeProgram(BadSize).Ok);
}
