//===- tests/test_serialize.cpp - BORB container tests --------------------===//

#include "isa/Serialize.h"

#include "sim/Interpreter.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace bor;

namespace {

void expectEqualPrograms(const Program &A, const Program &B) {
  ASSERT_EQ(A.numInsts(), B.numInsts());
  for (size_t I = 0; I != A.numInsts(); ++I)
    EXPECT_EQ(A.at(I), B.at(I)) << "instruction " << I;
  EXPECT_EQ(A.dataBase(), B.dataBase());
  EXPECT_EQ(A.data(), B.data());
  EXPECT_EQ(A.symbols(), B.symbols());
}

} // namespace

TEST(Serialize, RoundTripsEmptyProgram) {
  Program Empty;
  LoadResult R = deserializeProgram(serializeProgram(Empty));
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(Empty, R.Prog);
}

TEST(Serialize, RoundTripsMicrobenchmark) {
  // A real program with code, initialized data and symbols.
  MicrobenchConfig C;
  C.Text.NumChars = 5000;
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 64;
  MicrobenchProgram MB = buildMicrobench(C);

  LoadResult R = deserializeProgram(serializeProgram(MB.Prog));
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(MB.Prog, R.Prog);
}

TEST(Serialize, DeserializedProgramExecutesIdentically) {
  MicrobenchConfig C;
  C.Text.NumChars = 5000;
  MicrobenchProgram MB = buildMicrobench(C);
  LoadResult R = deserializeProgram(serializeProgram(MB.Prog));
  ASSERT_TRUE(R.Ok);

  auto Run = [](const Program &P) {
    Machine M;
    NeverTakenDecider D;
    Interpreter I(P, M, D);
    I.run(1ULL << 24);
    return M.memory().readU64(P.symbol("results"));
  };
  EXPECT_EQ(Run(MB.Prog), Run(R.Prog));
}

TEST(Serialize, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = serializeProgram(Program());
  Bytes[0] = 'X';
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("magic"), std::string::npos);
}

TEST(Serialize, RejectsWrongVersion) {
  std::vector<uint8_t> Bytes = serializeProgram(Program());
  Bytes[4] = 99;
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("version"), std::string::npos);
}

TEST(Serialize, RejectsTruncation) {
  ProgramBuilder B;
  B.emit(Inst::add(1, 2, 3));
  B.emit(Inst::halt());
  std::vector<uint8_t> Bytes = serializeProgram(B.finish());
  for (size_t Cut : {size_t(2), Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> Truncated(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(deserializeProgram(Truncated).Ok) << "cut at " << Cut;
  }
}

TEST(Serialize, RejectsTrailingBytes) {
  std::vector<uint8_t> Bytes = serializeProgram(Program());
  Bytes.push_back(0);
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("trailing"), std::string::npos);
}

TEST(Serialize, RejectsInvalidOpcodeBits) {
  ProgramBuilder B;
  B.emit(Inst::halt());
  std::vector<uint8_t> Bytes = serializeProgram(B.finish());
  // The single code word starts at offset 4+4+4+8+8+4 = 32; set opcode
  // bits to an out-of-range value.
  Bytes[32 + 3] = 0xff;
  LoadResult R = deserializeProgram(Bytes);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("opcode"), std::string::npos);
}

TEST(Serialize, FileSaveAndLoad) {
  ProgramBuilder B;
  uint64_t Addr = B.allocData(8, 8);
  B.initDataU64(Addr, 777);
  B.nameData("x", Addr);
  B.emit(Inst::halt());
  Program P = B.finish();

  std::string Path = testing::TempDir() + "/bor_serialize_test.borb";
  ASSERT_TRUE(saveProgram(P, Path));
  LoadResult R = loadProgramFile(Path);
  ASSERT_TRUE(R.Ok) << R.Error;
  expectEqualPrograms(P, R.Prog);
  std::remove(Path.c_str());
}

TEST(Serialize, LoadMissingFileFails) {
  LoadResult R = loadProgramFile("/nonexistent/path/x.borb");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("cannot open"), std::string::npos);
}
