//===- tests/test_textgen.cpp - Synthetic text generator tests ------------===//

#include "workloads/TextGen.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(TextGen, ExactLength) {
  TextConfig C;
  C.NumChars = 12345;
  EXPECT_EQ(generateText(C).size(), 12345u);
}

TEST(TextGen, Deterministic) {
  TextConfig C;
  C.NumChars = 5000;
  EXPECT_EQ(generateText(C), generateText(C));
  TextConfig C2 = C;
  C2.Seed = C.Seed + 1;
  EXPECT_NE(generateText(C), generateText(C2));
}

TEST(TextGen, ClassMixIsPlausible) {
  TextConfig C;
  C.NumChars = 200000;
  TextStats S = classifyText(generateText(C));
  double Total = static_cast<double>(C.NumChars);
  // Mostly lower-case words, a solid minority of upper-case, and the
  // space/punctuation separators.
  EXPECT_GT(S.Lower / Total, 0.45);
  EXPECT_GT(S.Upper / Total, 0.08);
  EXPECT_LT(S.Upper / Total, 0.40);
  EXPECT_GT(S.Other / Total, 0.05);
  EXPECT_LT(S.Other / Total, 0.35);
}

TEST(TextGen, AllBytesAreClassifiable) {
  TextConfig C;
  C.NumChars = 50000;
  TextStats S = classifyText(generateText(C));
  EXPECT_EQ(S.Upper + S.Lower + S.Other, C.NumChars);
}

TEST(TextGen, WordsAreCaseCoherent) {
  // Within a run of letters, all characters share one case — the property
  // that shapes the paper's branch behaviour.
  TextConfig C;
  C.NumChars = 50000;
  std::vector<uint8_t> Text = generateText(C);
  bool InWord = false;
  bool WordIsUpper = false;
  for (uint8_t Ch : Text) {
    bool Upper = Ch >= 'A' && Ch <= 'Z';
    bool Lower = Ch >= 'a' && Ch <= 'z';
    if (!Upper && !Lower) {
      InWord = false;
      continue;
    }
    if (!InWord) {
      InWord = true;
      WordIsUpper = Upper;
      continue;
    }
    EXPECT_EQ(Upper, WordIsUpper) << "mixed-case word in generated text";
  }
}

TEST(TextGen, UpperProbabilityShiftsMix) {
  TextConfig Lo, Hi;
  Lo.NumChars = Hi.NumChars = 100000;
  Lo.UpperWordProb = 0.05;
  Hi.UpperWordProb = 0.6;
  TextStats SLo = classifyText(generateText(Lo));
  TextStats SHi = classifyText(generateText(Hi));
  EXPECT_GT(SHi.Upper, 3 * SLo.Upper);
}
