//===- tests/test_integration.cpp - End-to-end paper-shape tests ----------===//
//
// These tests run the full stack (workload generator -> instrumentation
// transform -> timing simulation) at reduced scale and check the *shape* of
// the paper's headline results: branch-on-random's framework overhead is a
// small fraction of counter-based sampling's at moderate-to-low sampling
// rates, and Full-Duplication helps both.
//
//===----------------------------------------------------------------------===//

#include "uarch/Pipeline.h"
#include "workloads/AppGen.h"
#include "workloads/Microbench.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

constexpr size_t TestChars = 40000;

/// Runs a microbenchmark variant through the timing model and returns the
/// region-of-interest cycle count (between the two markers).
uint64_t roiCycles(const InstrumentationConfig &Instr) {
  MicrobenchConfig C;
  C.Text.NumChars = TestChars;
  C.Instr = Instr;
  MicrobenchProgram MB = buildMicrobench(C);
  Pipeline Pipe(MB.Prog, PipelineConfig());
  const std::vector<MarkerEvent> Events = Pipe.run(100000000).Markers;
  EXPECT_EQ(Events.size(), 2u);
  return Events[1].CommitCycle - Events[0].CommitCycle;
}

InstrumentationConfig config(SamplingFramework F, DuplicationMode Dup,
                             uint64_t Interval, bool Body) {
  InstrumentationConfig C;
  C.Framework = F;
  C.Dup = Dup;
  C.Interval = Interval;
  C.IncludeBody = Body;
  return C;
}

} // namespace

TEST(Integration, MicrobenchBaselineIpcIsPlausible) {
  MicrobenchConfig C;
  C.Text.NumChars = TestChars;
  MicrobenchProgram MB = buildMicrobench(C);
  Pipeline Pipe(MB.Prog, PipelineConfig());
  PipelineStats S = Pipe.run(100000000).Stats;
  // Data-dependent branches hold the baseline well under peak, but the
  // machine is not pathological either.
  EXPECT_GT(S.ipc(), 0.7);
  EXPECT_LT(S.ipc(), 3.0);
  // Section 5.3: baseline caches hit over 99.5% once warm.
  EXPECT_GT(Pipe.memHier().l1d().stats().hitRate(), 0.99);
  EXPECT_GT(Pipe.memHier().l1i().stats().hitRate(), 0.99);
}

TEST(Integration, BrrFrameworkOverheadFarBelowCounterAt1024) {
  uint64_t Base = roiCycles(InstrumentationConfig());
  uint64_t Cbs = roiCycles(config(SamplingFramework::CounterBased,
                                  DuplicationMode::NoDuplication, 1024,
                                  false));
  uint64_t Brr = roiCycles(config(SamplingFramework::BrrBased,
                                  DuplicationMode::NoDuplication, 1024,
                                  false));
  ASSERT_GT(Cbs, Base);
  ASSERT_GE(Brr, Base);
  uint64_t CbsOver = Cbs - Base;
  uint64_t BrrOver = Brr - Base;
  // The paper's order-of-magnitude claim; allow 5x as the test-scale bound.
  EXPECT_LT(BrrOver * 5, CbsOver)
      << "cbs=" << CbsOver << " brr=" << BrrOver;
}

TEST(Integration, OverheadShrinksWithInterval) {
  uint64_t Base = roiCycles(InstrumentationConfig());
  uint64_t Brr16 = roiCycles(config(SamplingFramework::BrrBased,
                                    DuplicationMode::NoDuplication, 16,
                                    false));
  uint64_t Brr1024 = roiCycles(config(SamplingFramework::BrrBased,
                                      DuplicationMode::NoDuplication, 1024,
                                      false));
  EXPECT_GT(Brr16, Brr1024);
  EXPECT_GE(Brr1024, Base);
}

TEST(Integration, FullDuplicationReducesCounterOverhead) {
  uint64_t Base = roiCycles(InstrumentationConfig());
  uint64_t NoDup = roiCycles(config(SamplingFramework::CounterBased,
                                    DuplicationMode::NoDuplication, 1024,
                                    false));
  uint64_t FullDup = roiCycles(config(SamplingFramework::CounterBased,
                                      DuplicationMode::FullDuplication, 1024,
                                      false));
  // Figure 13: Full-Duplication amortizes the three per-site checks into
  // one per-iteration check.
  EXPECT_LT(FullDup - Base, NoDup - Base);
}

TEST(Integration, InstrumentationBodyAddsVariableCost) {
  uint64_t FrameworkOnly = roiCycles(config(
      SamplingFramework::BrrBased, DuplicationMode::NoDuplication, 16,
      false));
  uint64_t WithInst = roiCycles(config(SamplingFramework::BrrBased,
                                       DuplicationMode::NoDuplication, 16,
                                       true));
  EXPECT_GT(WithInst, FrameworkOnly);
}

TEST(Integration, FullInstrumentationCostsCyclesPerSite) {
  uint64_t Base = roiCycles(InstrumentationConfig());
  uint64_t Full = roiCycles(config(SamplingFramework::Full,
                                   DuplicationMode::NoDuplication, 1024,
                                   true));
  // Three site visits per character; Section 5.3's reference point is 4.3
  // cycles per site, and ours lands in the same ballpark.
  double PerSite = static_cast<double>(Full - Base) / (3.0 * TestChars);
  EXPECT_GT(PerSite, 0.5);
  EXPECT_LT(PerSite, 12.0);
}

TEST(Integration, AppOverheadOrderingMatchesFigure12) {
  AppConfig App = dacapoAppAnalogues()[2]; // luindex analogue
  // Enough driver calls that cold-I-cache warmup (paid equally by every
  // variant, but magnified by Full-Duplication's code growth) amortizes.
  App.NumTopCalls = 24000;

  auto Cycles = [&](SamplingFramework F) {
    AppConfig C = App;
    C.Instr.Framework = F;
    C.Instr.Dup = DuplicationMode::FullDuplication;
    C.Instr.Interval = 1024;
    AppProgram P = buildApp(C);
    Pipeline Pipe(P.Prog, PipelineConfig());
    const std::vector<MarkerEvent> Events = Pipe.run(200000000).Markers;
    EXPECT_EQ(Events.size(), 2u);
    return Events[1].CommitCycle - Events[0].CommitCycle;
  };

  uint64_t Base = Cycles(SamplingFramework::None);
  uint64_t Cbs = Cycles(SamplingFramework::CounterBased);
  uint64_t Brr = Cycles(SamplingFramework::BrrBased);
  double CbsOver = 100.0 * (static_cast<double>(Cbs) - Base) / Base;
  double BrrOver = 100.0 * (static_cast<double>(Brr) - Base) / Base;
  EXPECT_GT(CbsOver, BrrOver) << "Figure 12 ordering";
  EXPECT_GT(CbsOver, 0.5);
  EXPECT_LT(BrrOver, CbsOver / 2);
}
