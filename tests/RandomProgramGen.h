//===- tests/RandomProgramGen.h - Shared random-program generator ---------===//
//
// Structured random BOR-RISC programs used by the differential simulator
// tests and the assembler fuzzing tests: a counted loop whose body mixes
// ALU ops, scratch-buffer memory traffic, data-dependent forward branches,
// brr skips, and calls to a leaf helper. Always terminates.
//
//===----------------------------------------------------------------------===//

#ifndef BOR_TESTS_RANDOMPROGRAMGEN_H
#define BOR_TESTS_RANDOMPROGRAMGEN_H

#include "isa/ProgramBuilder.h"
#include "support/Rng.h"

namespace bor {
namespace testgen {

constexpr uint8_t FirstTemp = 3, LastTemp = 12; // r3..r12 fair game
constexpr uint8_t RBuf = 20;                    // scratch buffer base
constexpr size_t BufBytes = 1024;

inline uint8_t randTemp(Xoshiro256 &Rng) {
  return static_cast<uint8_t>(FirstTemp +
                              Rng.nextBelow(LastTemp - FirstTemp + 1));
}

/// Emits one random body instruction (possibly a short guarded block).
inline void emitRandomInst(ProgramBuilder &B, Xoshiro256 &Rng,
                           ProgramBuilder::LabelId Helper) {
  switch (Rng.nextBelow(8)) {
  case 0:
  case 1: { // register-register ALU
    static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::And,
                                 Opcode::Or,  Opcode::Xor, Opcode::Mul,
                                 Opcode::Slt, Opcode::Sltu};
    B.emit(Inst::alu(Ops[Rng.nextBelow(8)], randTemp(Rng), randTemp(Rng),
                     randTemp(Rng)));
    return;
  }
  case 2: { // register-immediate ALU
    static const Opcode Ops[] = {Opcode::Addi, Opcode::Andi, Opcode::Ori,
                                 Opcode::Xori, Opcode::Slti};
    int32_t Imm = static_cast<int32_t>(Rng.nextBelow(65536)) - 32768;
    B.emit(Inst::alui(Ops[Rng.nextBelow(5)], randTemp(Rng), randTemp(Rng),
                      Imm));
    return;
  }
  case 3: { // shifts with a legal shamt
    Opcode Op = Rng.nextBool(0.5) ? Opcode::Slli : Opcode::Srli;
    B.emit(Inst::alui(Op, randTemp(Rng), randTemp(Rng),
                      static_cast<int32_t>(Rng.nextBelow(64))));
    return;
  }
  case 4: { // 64-bit memory traffic within the scratch buffer
    int32_t Offset = static_cast<int32_t>(8 * Rng.nextBelow(BufBytes / 8));
    if (Rng.nextBool(0.5))
      B.emit(Inst::ld(randTemp(Rng), RBuf, Offset));
    else
      B.emit(Inst::st(randTemp(Rng), RBuf, Offset));
    return;
  }
  case 5: { // byte memory traffic
    int32_t Offset = static_cast<int32_t>(Rng.nextBelow(BufBytes));
    if (Rng.nextBool(0.5))
      B.emit(Inst::ldb(randTemp(Rng), RBuf, Offset));
    else
      B.emit(Inst::stb(randTemp(Rng), RBuf, Offset));
    return;
  }
  case 6: { // data-dependent forward branch over a short block
    static const Opcode Ops[] = {Opcode::Beq, Opcode::Bne, Opcode::Blt,
                                 Opcode::Bge};
    ProgramBuilder::LabelId Skip = B.label();
    B.emitBranch(Ops[Rng.nextBelow(4)], randTemp(Rng), randTemp(Rng),
                 Skip);
    unsigned Len = 1 + Rng.nextBelow(3);
    for (unsigned I = 0; I != Len; ++I)
      B.emit(Inst::add(randTemp(Rng), randTemp(Rng), randTemp(Rng)));
    B.bind(Skip);
    return;
  }
  case 7: { // brr over a short block, a helper call, or an LFSR read
    if (Rng.nextBool(0.2)) {
      B.emitJal(RegLr, Helper);
      return;
    }
    if (Rng.nextBool(0.15)) {
      B.emit(Inst::rdlfsr(randTemp(Rng)));
      return;
    }
    ProgramBuilder::LabelId Skip = B.label();
    FreqCode Freq(static_cast<unsigned>(Rng.nextBelow(4))); // 1/2..1/16
    B.emitBrr(Freq, Skip);
    unsigned Len = 1 + Rng.nextBelow(3);
    for (unsigned I = 0; I != Len; ++I)
      B.emit(Inst::alui(Opcode::Xori, randTemp(Rng), randTemp(Rng), 0x5a));
    B.bind(Skip);
    return;
  }
  }
}

/// A complete, halting random program. The scratch buffer is named "buf".
inline Program randomProgram(uint64_t Seed, uint64_t OuterIters = 40) {
  Xoshiro256 Rng(Seed);
  ProgramBuilder B;
  uint64_t Buf = B.allocData(BufBytes, 8);
  B.nameData("buf", Buf);

  ProgramBuilder::LabelId Helper = B.label();

  B.emitLoadConst(RBuf, Buf);
  for (uint8_t R = FirstTemp; R <= LastTemp; ++R)
    B.emit(Inst::li(R, static_cast<int32_t>(Rng.nextBelow(1000))));
  B.emitLoadConst(2, OuterIters);

  ProgramBuilder::LabelId Loop = B.label();
  B.bind(Loop);
  unsigned BodyLen = 20 + static_cast<unsigned>(Rng.nextBelow(40));
  for (unsigned I = 0; I != BodyLen; ++I)
    emitRandomInst(B, Rng, Helper);
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());

  // The helper: a small leaf function.
  B.bind(Helper);
  B.emit(Inst::add(FirstTemp, FirstTemp, LastTemp));
  B.emit(Inst::alui(Opcode::Xori, LastTemp, LastTemp, 0x77));
  B.emit(Inst::ret());

  return B.finish();
}

} // namespace testgen
} // namespace bor

#endif // BOR_TESTS_RANDOMPROGRAMGEN_H
