//===- tests/test_kernels.cpp - Kernel suite tests ------------------------===//

#include "workloads/Kernels.h"

#include "sim/Interpreter.h"
#include "uarch/Pipeline.h"

#include <gtest/gtest.h>

using namespace bor;

namespace {

uint64_t runResult(const KernelProgram &K, BrrDecider &D) {
  Machine M;
  Interpreter I(K.Prog, M, D);
  I.run(1ULL << 28);
  return M.memory().readU64(K.Prog.symbol("result"));
}

std::vector<uint64_t> siteCounts(const KernelProgram &K, BrrDecider &D) {
  Machine M;
  Interpreter I(K.Prog, M, D);
  I.run(1ULL << 28);
  uint64_t Base = K.Prog.symbol("sites");
  std::vector<uint64_t> Counts;
  for (unsigned S = 0; S != K.NumStaticSites; ++S)
    Counts.push_back(M.memory().readU64(Base + 8 * S));
  return Counts;
}

} // namespace

class KernelCorrectness : public ::testing::TestWithParam<KernelKind> {};

TEST_P(KernelCorrectness, BaselineComputesExpectedResult) {
  KernelConfig C;
  C.Kind = GetParam();
  KernelProgram K = buildKernel(C);
  NeverTakenDecider D;
  EXPECT_EQ(runResult(K, D), K.ExpectedResult) << K.Name;
}

TEST_P(KernelCorrectness, ResultInvariantUnderEveryFramework) {
  KernelConfig C;
  C.Kind = GetParam();
  C.Instr.Interval = 64;
  for (SamplingFramework F :
       {SamplingFramework::Full, SamplingFramework::CounterBased,
        SamplingFramework::BrrBased}) {
    C.Instr.Framework = F;
    KernelProgram K = buildKernel(C);
    BrrUnitDecider D;
    EXPECT_EQ(runResult(K, D), K.ExpectedResult)
        << K.Name << " under " << frameworkName(F);
  }
}

TEST_P(KernelCorrectness, FullInstrumentationCountsEveryVisit) {
  KernelConfig C;
  C.Kind = GetParam();
  C.Instr.Framework = SamplingFramework::Full;
  KernelProgram K = buildKernel(C);
  NeverTakenDecider D;
  std::vector<uint64_t> Counts = siteCounts(K, D);
  uint64_t Total = 0;
  for (uint64_t V : Counts)
    Total += V;
  EXPECT_EQ(Total, K.DynamicSiteVisits) << K.Name;
}

TEST_P(KernelCorrectness, CounterSamplingIsExactlyPeriodic) {
  KernelConfig C;
  C.Kind = GetParam();
  C.Instr.Framework = SamplingFramework::CounterBased;
  C.Instr.Interval = 32;
  KernelProgram K = buildKernel(C);
  NeverTakenDecider D;
  std::vector<uint64_t> Counts = siteCounts(K, D);
  uint64_t Total = 0;
  for (uint64_t V : Counts)
    Total += V;
  EXPECT_EQ(Total, K.DynamicSiteVisits / 32) << K.Name;
}

TEST_P(KernelCorrectness, RunsOnTheTimingModel) {
  KernelConfig C;
  C.Kind = GetParam();
  C.Instr.Framework = SamplingFramework::BrrBased;
  C.Instr.Interval = 64;
  KernelProgram K = buildKernel(C);
  Pipeline Pipe(K.Prog, PipelineConfig());
  RunResult R = Pipe.run(1ULL << 40);
  EXPECT_GT(R.Stats.Cycles, 0u);
  ASSERT_EQ(R.Markers.size(), 2u) << K.Name;
  EXPECT_EQ(Pipe.machine().memory().readU64(K.Prog.symbol("result")),
            K.ExpectedResult)
      << K.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, KernelCorrectness,
    ::testing::Values(KernelKind::Crc32, KernelKind::Sort,
                      KernelKind::StrSearch, KernelKind::MatMul,
                      KernelKind::ListSum),
    [](const auto &Info) { return std::string(kernelName(Info.param)); });

TEST(KernelSuite, BuildsAllFive) {
  std::vector<KernelProgram> Suite =
      buildKernelSuite(InstrumentationConfig());
  ASSERT_EQ(Suite.size(), 5u);
  EXPECT_EQ(Suite[0].Name, "crc32");
  EXPECT_EQ(Suite[4].Name, "listsum");
  for (const KernelProgram &K : Suite)
    EXPECT_GT(K.DynamicSiteVisits, 0u) << K.Name;
}

TEST(KernelSuite, KernelsHaveDistinctPersonalities) {
  // Sanity that the suite actually spans behaviours: listsum is latency
  // bound (low IPC), matmul keeps the machine busier.
  auto Ipc = [](KernelKind Kind) {
    KernelConfig C;
    C.Kind = Kind;
    KernelProgram K = buildKernel(C);
    Pipeline Pipe(K.Prog, PipelineConfig());
    return Pipe.run(1ULL << 40).Stats.ipc();
  };
  double ListIpc = Ipc(KernelKind::ListSum);
  double MatIpc = Ipc(KernelKind::MatMul);
  EXPECT_LT(ListIpc, MatIpc);
  EXPECT_LT(ListIpc, 1.5);
}

TEST(KernelSuite, SeedsChangeInputsNotStructure) {
  KernelConfig A, B;
  A.Kind = B.Kind = KernelKind::Crc32;
  B.Seed = A.Seed + 1;
  KernelProgram KA = buildKernel(A);
  KernelProgram KB = buildKernel(B);
  EXPECT_EQ(KA.Prog.numInsts(), KB.Prog.numInsts());
  EXPECT_NE(KA.ExpectedResult, KB.ExpectedResult);
}
