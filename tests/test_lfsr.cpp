//===- tests/test_lfsr.cpp - LFSR model tests -----------------------------===//

#include "lfsr/Lfsr.h"
#include "lfsr/TapCatalog.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace bor;

// The paper's Figure 6: a 4-bit LFSR with the right two bits XORed cycles
// through all 15 nonzero values. In polynomial notation those taps are
// (4, 3). The figure's full sequence, starting from 0001:
TEST(Lfsr, Figure6ExactSequence) {
  Lfsr L = Lfsr::fromPolynomial(4, {4, 3}, 0b0001);
  const uint64_t Expected[] = {0b1000, 0b0100, 0b0010, 0b1001, 0b1100,
                               0b0110, 0b1011, 0b0101, 0b1010, 0b1101,
                               0b1110, 0b1111, 0b0111, 0b0011, 0b0001};
  for (uint64_t Want : Expected) {
    L.step();
    EXPECT_EQ(L.state(), Want);
  }
}

TEST(Lfsr, Figure6SingleUpdate) {
  // The worked example in the figure: 0110 updates to 1011.
  Lfsr L = Lfsr::fromPolynomial(4, {4, 3}, 0b0110);
  L.step();
  EXPECT_EQ(L.state(), 0b1011u);
}

TEST(Lfsr, SeedIsMaskedToWidth) {
  Lfsr L = Lfsr::fromPolynomial(4, {4, 3}, 0xf1);
  EXPECT_EQ(L.state(), 0x1u);
}

TEST(Lfsr, FeedbackBitMatchesTapParity) {
  Lfsr L = Lfsr::fromPolynomial(4, {4, 3}, 0b0110);
  // Taps are bits 0 and 1; state 0110 has bit1 set only -> feedback 1.
  EXPECT_TRUE(L.feedbackBit());
  L.seed(0b0100);
  EXPECT_FALSE(L.feedbackBit());
}

TEST(Lfsr, BitAccessors) {
  Lfsr L = Lfsr::fromPolynomial(8, {8, 6, 5, 4}, 0b10100101);
  EXPECT_TRUE(L.bit(0));
  EXPECT_FALSE(L.bit(1));
  EXPECT_TRUE(L.bit(2));
  EXPECT_TRUE(L.bit(7));
}

// Property: every catalog tap set of width <= 24 is maximal-length: the
// period from any nonzero state is exactly 2^w - 1.
class LfsrPeriodTest : public ::testing::TestWithParam<TapSet> {};

TEST_P(LfsrPeriodTest, PeriodIsMaximal) {
  const TapSet &T = GetParam();
  if (T.Width > 24)
    GTEST_SKIP() << "period too long to enumerate";
  Lfsr L = T.makeLfsr(1);
  EXPECT_EQ(L.measurePeriod(), (1ULL << T.Width) - 1);
}

TEST_P(LfsrPeriodTest, StateNeverZero) {
  const TapSet &T = GetParam();
  Lfsr L = T.makeLfsr(1);
  for (int I = 0; I != 100000; ++I) {
    L.step();
    ASSERT_NE(L.state(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, LfsrPeriodTest,
                         ::testing::ValuesIn(allTapSets()),
                         [](const auto &Info) { return Info.param.Name; });

// Property: the paper's four 32-bit sensitivity tap sets produce at least
// 2^20 distinct states before any repeat (a maximal 32-bit LFSR repeats
// only after 2^32 - 1).
class PaperTapSetTest : public ::testing::TestWithParam<TapSet> {};

TEST_P(PaperTapSetTest, LongRunOfDistinctStates) {
  Lfsr L = GetParam().makeLfsr(0xace1);
  std::unordered_set<uint64_t> Seen;
  Seen.reserve(1u << 20);
  for (unsigned I = 0; I != (1u << 20); ++I) {
    ASSERT_TRUE(Seen.insert(L.state()).second)
        << "state repeated after " << I << " steps";
    L.step();
  }
}

TEST_P(PaperTapSetTest, BitBiasNearHalf) {
  // Any single register bit should be 1 about half the time.
  Lfsr L = GetParam().makeLfsr(0xace1);
  uint64_t Ones = 0;
  const uint64_t N = 200000;
  for (uint64_t I = 0; I != N; ++I) {
    Ones += L.bit(0);
    L.step();
  }
  EXPECT_NEAR(static_cast<double>(Ones) / N, 0.5, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sensitivity, PaperTapSetTest,
                         ::testing::ValuesIn(paperSensitivityTapSets()),
                         [](const auto &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

// Property (Section 3.4): a step can be exactly undone given the bit it
// shifted out.
TEST(Lfsr, StepBackInvertsStep) {
  for (const TapSet &T : allTapSets()) {
    Lfsr L = T.makeLfsr(0x5a5a % ((1ULL << T.Width) - 1) + 1);
    for (int Trial = 0; Trial != 200; ++Trial) {
      uint64_t Before = L.state();
      bool Out = L.step();
      L.stepBack(Out);
      ASSERT_EQ(L.state(), Before) << T.Name;
      L.step();
    }
  }
}

TEST(Lfsr, MultiStepShiftBackRecovery) {
  // Squash recovery: undo a whole burst of speculative steps.
  Lfsr L = Lfsr::fromPolynomial(20, {20, 17}, 0xbeef);
  Xoshiro256 Rng(5);
  for (int Trial = 0; Trial != 100; ++Trial) {
    uint64_t Checkpoint = L.state();
    unsigned Burst = 1 + Rng.nextBelow(17);
    std::vector<bool> Outs;
    for (unsigned I = 0; I != Burst; ++I)
      Outs.push_back(L.step());
    for (unsigned I = 0; I != Burst; ++I) {
      L.stepBack(Outs.back());
      Outs.pop_back();
    }
    ASSERT_EQ(L.state(), Checkpoint);
  }
}

TEST(Lfsr, FromPolynomialMapsExponentsToBits) {
  // Exponent t maps to bit Width - t: for (16,15,13,4) the taps are bits
  // 0, 1, 3 and 12.
  Lfsr L = Lfsr::fromPolynomial(16, {16, 15, 13, 4});
  EXPECT_EQ(L.tapMask(), (1u << 0) | (1u << 1) | (1u << 3) | (1u << 12));
}

TEST(Lfsr, DefaultTapSetLookup) {
  EXPECT_EQ(defaultTapSet(16).Width, 16u);
  EXPECT_EQ(defaultTapSet(20).Width, 20u);
  EXPECT_EQ(defaultTapSet(20).PolyTaps, (std::vector<unsigned>{20, 17}));
}

TEST(LfsrDeath, ZeroSeedAsserts) {
  EXPECT_DEATH(Lfsr::fromPolynomial(4, {4, 3}, 0), "absorbing");
}

TEST(LfsrDeath, OutOfRangeBitAsserts) {
  Lfsr L = Lfsr::fromPolynomial(4, {4, 3}, 1);
  EXPECT_DEATH((void)L.bit(4), "out of range");
}
