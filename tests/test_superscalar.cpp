//===- tests/test_superscalar.cpp - Wide-decode brr tests -----------------===//

#include "core/SuperscalarBrr.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bor;

TEST(SuperscalarBrr, ReplicatedHasOneLfsrPerDecoder) {
  SuperscalarBrrUnit U(SuperscalarBrrDesign::ReplicatedPerDecoder, 4);
  EXPECT_EQ(U.numLfsrs(), 4u);
}

TEST(SuperscalarBrr, SharedHasSingleLfsr) {
  SuperscalarBrrUnit U(SuperscalarBrrDesign::SharedArbitrated, 4);
  EXPECT_EQ(U.numLfsrs(), 1u);
}

TEST(SuperscalarBrr, ReplicatedUnitsStartDecoupled) {
  SuperscalarBrrUnit U(SuperscalarBrrDesign::ReplicatedPerDecoder, 4);
  // Distinct derived seeds: no two decoders march in lockstep.
  for (unsigned I = 0; I != 4; ++I)
    for (unsigned J = I + 1; J != 4; ++J)
      EXPECT_NE(U.unit(I).lfsr().state(), U.unit(J).lfsr().state());
}

TEST(SuperscalarBrr, ReplicatedGroupDecodesInOneCycle) {
  SuperscalarBrrUnit U(SuperscalarBrrDesign::ReplicatedPerDecoder, 4);
  std::vector<FreqCode> Freqs = {FreqCode(0), FreqCode(1), FreqCode(2),
                                 FreqCode(3)};
  BrrGroupResult R = U.evaluateGroup(Freqs);
  EXPECT_EQ(R.Taken.size(), 4u);
  EXPECT_EQ(R.DecodeCycles, 1u);
}

TEST(SuperscalarBrr, SharedGroupSplitsFetchPacket) {
  // Footnote 3: more brrs than LFSRs split the packet, one extra cycle per
  // additional brr.
  SuperscalarBrrUnit U(SuperscalarBrrDesign::SharedArbitrated, 4);
  BrrGroupResult One = U.evaluateGroup({FreqCode(0)});
  EXPECT_EQ(One.DecodeCycles, 1u);
  BrrGroupResult Three =
      U.evaluateGroup({FreqCode(0), FreqCode(0), FreqCode(0)});
  EXPECT_EQ(Three.DecodeCycles, 3u);
}

TEST(SuperscalarBrr, EmptyGroupStillTakesACycle) {
  SuperscalarBrrUnit U(SuperscalarBrrDesign::SharedArbitrated, 4);
  BrrGroupResult R = U.evaluateGroup({});
  EXPECT_EQ(R.DecodeCycles, 1u);
  EXPECT_TRUE(R.Taken.empty());
}

class SuperscalarConvergence
    : public ::testing::TestWithParam<SuperscalarBrrDesign> {};

TEST_P(SuperscalarConvergence, GroupOutcomesMatchFrequency) {
  SuperscalarBrrUnit U(GetParam(), 4);
  FreqCode F(2); // 1/8
  uint64_t Taken = 0, Total = 0;
  for (int I = 0; I != 100000; ++I) {
    BrrGroupResult R = U.evaluateGroup({F, F, F, F});
    for (bool T : R.Taken)
      Taken += T;
    Total += 4;
  }
  double P = F.probability();
  double Sigma = std::sqrt(P * (1 - P) / static_cast<double>(Total));
  EXPECT_NEAR(static_cast<double>(Taken) / static_cast<double>(Total), P,
              6 * Sigma);
}

INSTANTIATE_TEST_SUITE_P(
    BothDesigns, SuperscalarConvergence,
    ::testing::Values(SuperscalarBrrDesign::ReplicatedPerDecoder,
                      SuperscalarBrrDesign::SharedArbitrated),
    [](const auto &Info) {
      return Info.param == SuperscalarBrrDesign::ReplicatedPerDecoder
                 ? "replicated"
                 : "shared";
    });

TEST(SuperscalarBrrDeath, OversizedGroupAsserts) {
  SuperscalarBrrUnit U(SuperscalarBrrDesign::ReplicatedPerDecoder, 2);
  EXPECT_DEATH(U.evaluateGroup({FreqCode(0), FreqCode(0), FreqCode(0)}),
               "decode slots");
}
