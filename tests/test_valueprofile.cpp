//===- tests/test_valueprofile.cpp - TNV table tests ----------------------===//

#include "profile/ValueProfile.h"

#include "profile/SamplingPolicy.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(ValueProfile, EmptyTable) {
  ValueProfile V;
  EXPECT_EQ(V.samples(), 0u);
  EXPECT_DOUBLE_EQ(V.topValueFraction(), 0.0);
  EXPECT_TRUE(V.entries().empty());
}

TEST(ValueProfile, SingleInvariantValue) {
  ValueProfile V;
  for (int I = 0; I != 1000; ++I)
    V.record(42);
  EXPECT_EQ(V.topValue(), 42u);
  EXPECT_DOUBLE_EQ(V.topValueFraction(), 1.0);
  EXPECT_EQ(V.samples(), 1000u);
}

TEST(ValueProfile, TracksCountsPerValue) {
  ValueProfile V(8, 1 << 20); // epoch large enough to never clear
  for (int I = 0; I != 30; ++I)
    V.record(1);
  for (int I = 0; I != 20; ++I)
    V.record(2);
  for (int I = 0; I != 10; ++I)
    V.record(3);
  auto E = V.entries();
  ASSERT_EQ(E.size(), 3u);
  EXPECT_EQ(E[0], (std::pair<uint64_t, uint64_t>{1, 30}));
  EXPECT_EQ(E[1], (std::pair<uint64_t, uint64_t>{2, 20}));
  EXPECT_EQ(E[2], (std::pair<uint64_t, uint64_t>{3, 10}));
}

TEST(ValueProfile, SemiInvariantFraction) {
  ValueProfile V;
  Xoshiro256 Rng(7);
  for (int I = 0; I != 10000; ++I)
    V.record(Rng.nextBool(0.8) ? 99 : Rng.next());
  EXPECT_EQ(V.topValue(), 99u);
  EXPECT_NEAR(V.topValueFraction(), 0.8, 0.03);
}

TEST(ValueProfile, EpochClearingAdmitsNewHotValue) {
  // Fill the table with 8 early values, then switch the stream to a new
  // dominant value: without clearing it could never enter a full table.
  ValueProfile V(8, 256);
  for (int I = 0; I != 400; ++I)
    V.record(I % 8); // occupy all slots
  for (int I = 0; I != 4000; ++I)
    V.record(777);
  EXPECT_EQ(V.topValue(), 777u);
  EXPECT_GT(V.topValueFraction(), 0.5);
}

TEST(ValueProfile, FullTableDropsColdValuesGracefully) {
  ValueProfile V(4, 1 << 20);
  for (int I = 0; I != 100; ++I) {
    V.record(1);
    V.record(2);
    V.record(3);
    V.record(4);
    V.record(static_cast<uint64_t>(1000 + I)); // never fits
  }
  auto E = V.entries();
  ASSERT_EQ(E.size(), 4u);
  EXPECT_EQ(V.samples(), 500u);
  for (const auto &[Value, Count] : E)
    EXPECT_LE(Value, 4u);
}

TEST(ValueProfile, SampledProfileAgreesWithFullProfile) {
  // The paper's premise applied to value profiling: sampling at 1/64 via
  // brr preserves the dominant value and its approximate invariance.
  Xoshiro256 Rng(21);
  ValueProfile Full(8, 1024);
  ValueProfile Sampled(8, 1024);
  BrrPolicy Brr(64);
  for (int I = 0; I != 400000; ++I) {
    uint64_t Value = Rng.nextBool(0.7) ? 5 : Rng.nextBelow(1000);
    Full.record(Value);
    if (Brr.sample())
      Sampled.record(Value);
  }
  EXPECT_EQ(Full.topValue(), Sampled.topValue());
  EXPECT_NEAR(Full.topValueFraction(), Sampled.topValueFraction(), 0.05);
  EXPECT_LT(Sampled.samples(), Full.samples() / 32);
}

TEST(ValueProfileDeath, DegenerateConfigsAssert) {
  EXPECT_DEATH(ValueProfile(1, 10), "two slots");
  EXPECT_DEATH(ValueProfile(4, 0), "positive");
}
