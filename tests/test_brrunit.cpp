//===- tests/test_brrunit.cpp - Decode-stage brr unit tests ---------------===//

#include "core/BrrUnit.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace bor;

TEST(BrrUnit, AndOutputsMatchMaskedState) {
  BrrUnit U;
  auto Outputs = U.andOutputs();
  uint64_t State = U.lfsr().state();
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw) {
    uint64_t Mask = U.andMaskFor(FreqCode(Raw));
    EXPECT_EQ(Outputs[Raw], (State & Mask) == Mask);
  }
}

TEST(BrrUnit, EvaluateReturnsMuxedOutputThenClocks) {
  BrrUnit U;
  for (int I = 0; I != 1000; ++I) {
    auto Outputs = U.andOutputs();
    uint64_t StateBefore = U.lfsr().state();
    bool Taken = U.evaluate(FreqCode(2));
    EXPECT_EQ(Taken, Outputs[2]);
    EXPECT_NE(U.lfsr().state(), StateBefore) << "LFSR must clock";
  }
}

TEST(BrrUnit, EvaluationCountTracksClocks) {
  BrrUnit U;
  for (int I = 0; I != 37; ++I)
    U.evaluate(FreqCode(0));
  EXPECT_EQ(U.evaluationCount(), 37u);
}

TEST(BrrUnit, ContiguousMasksAreNested) {
  BrrUnitConfig C;
  C.Policy = BitSelectPolicy::Contiguous;
  BrrUnit U(C);
  for (unsigned Raw = 1; Raw != FreqCode::NumValues; ++Raw) {
    uint64_t Smaller = U.andMaskFor(FreqCode(Raw - 1));
    uint64_t Larger = U.andMaskFor(FreqCode(Raw));
    EXPECT_EQ(Smaller & Larger, Smaller)
        << "contiguous AND masks should nest";
  }
}

// Property (the headline architectural contract, Section 3.2): the taken
// fraction converges to (1/2)^(freq+1) for every encodable frequency.
class BrrConvergence
    : public ::testing::TestWithParam<std::tuple<unsigned, BitSelectPolicy>> {
};

TEST_P(BrrConvergence, TakenFractionMatchesEncoding) {
  auto [Raw, Policy] = GetParam();
  BrrUnitConfig C;
  C.Policy = Policy;
  BrrUnit U(C);
  FreqCode F(Raw);

  double P = F.probability();
  // Enough trials that 6 sigma is still a tight relative bound.
  uint64_t N = static_cast<uint64_t>(std::max(400000.0, 400.0 / P));
  uint64_t Taken = 0;
  for (uint64_t I = 0; I != N; ++I)
    Taken += U.evaluate(F);

  double Sigma = std::sqrt(P * (1 - P) / static_cast<double>(N));
  EXPECT_NEAR(static_cast<double>(Taken) / static_cast<double>(N), P,
              6 * Sigma + 1e-9)
      << "freq=" << Raw;
}

INSTANTIATE_TEST_SUITE_P(
    AllFrequencies, BrrConvergence,
    ::testing::Combine(::testing::Range(0u, 11u),
                       ::testing::Values(BitSelectPolicy::Contiguous,
                                         BitSelectPolicy::Spaced)),
    [](const auto &Info) {
      return std::string("freq") + std::to_string(std::get<0>(Info.param)) +
             "_" + bitSelectPolicyName(std::get<1>(Info.param));
    });

// Section 3.3's correlation discussion: with ADJACENT bits ANDed, the
// conditional probability of taking a 25% branch right after a taken 25%
// branch is 50% (one input is yesterday's other input, already known 1).
// Spaced selections restore near-independence.
TEST(BrrUnit, AdjacentBitsCorrelateConsecutiveOutcomes) {
  BrrUnitConfig C;
  C.Policy = BitSelectPolicy::Contiguous;
  BrrUnit U(C);
  FreqCode F(1); // 25%

  uint64_t TakenPairs = 0, TakenFirst = 0;
  bool Prev = U.evaluate(F);
  for (int I = 0; I != 2000000; ++I) {
    bool Cur = U.evaluate(F);
    if (Prev) {
      ++TakenFirst;
      TakenPairs += Cur;
    }
    Prev = Cur;
  }
  double Conditional =
      static_cast<double>(TakenPairs) / static_cast<double>(TakenFirst);
  EXPECT_NEAR(Conditional, 0.5, 0.02);
}

TEST(BrrUnit, SpacedBitsDecorrelateConsecutiveOutcomes) {
  BrrUnitConfig C;
  C.Policy = BitSelectPolicy::Spaced;
  BrrUnit U(C);
  FreqCode F(1); // 25%

  uint64_t TakenPairs = 0, TakenFirst = 0;
  bool Prev = U.evaluate(F);
  for (int I = 0; I != 2000000; ++I) {
    bool Cur = U.evaluate(F);
    if (Prev) {
      ++TakenFirst;
      TakenPairs += Cur;
    }
    Prev = Cur;
  }
  double Conditional =
      static_cast<double>(TakenPairs) / static_cast<double>(TakenFirst);
  // Not perfectly independent (shared register), but far below the 50%
  // pathology of adjacent bits.
  EXPECT_LT(Conditional, 0.35);
}

TEST(BrrUnit, DifferentSeedsGiveDifferentStreams) {
  BrrUnitConfig A, B;
  A.Seed = 0x1111;
  B.Seed = 0x2222;
  BrrUnit UA(A), UB(B);
  int Differences = 0;
  for (int I = 0; I != 1000; ++I)
    Differences += UA.evaluate(FreqCode(0)) != UB.evaluate(FreqCode(0));
  EXPECT_GT(Differences, 100);
}

TEST(BrrUnit, ConfigDefaultsMatchPaperDesignPoint) {
  // Section 3.3 suggests a 20-bit LFSR as a reasonable design point.
  BrrUnit U;
  EXPECT_EQ(U.config().LfsrWidth, 20u);
  EXPECT_EQ(U.config().Policy, BitSelectPolicy::Spaced);
  EXPECT_EQ(U.lfsr().width(), 20u);
}

TEST(DeterministicBrrUnit, SquashRestoresState) {
  BrrUnitConfig C;
  DeterministicBrrUnit U(C, /*MaxInFlight=*/16);
  for (int I = 0; I != 5; ++I)
    U.evaluate(FreqCode(3));
  U.retireOldest(5);

  uint64_t Checkpoint = U.lfsr().state();
  for (int I = 0; I != 7; ++I)
    U.evaluate(FreqCode(3));
  EXPECT_EQ(U.inFlight(), 7u);
  U.squashYoungest(7);
  EXPECT_EQ(U.lfsr().state(), Checkpoint);
  EXPECT_EQ(U.inFlight(), 0u);
}

TEST(DeterministicBrrUnit, ReplayAfterSquashIsIdentical) {
  // The whole point of the deterministic implementation (Section 3.4):
  // squashed wrong-path evaluations leave no trace, so re-executing
  // produces the same outcomes.
  BrrUnitConfig C;
  DeterministicBrrUnit U(C, 32);
  std::vector<bool> First;
  for (int I = 0; I != 10; ++I)
    First.push_back(U.evaluate(FreqCode(2)));
  U.squashYoungest(10);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(U.evaluate(FreqCode(2)), First[I]);
}

TEST(DeterministicBrrUnit, PartialSquashKeepsOlderEvaluations) {
  BrrUnitConfig C;
  DeterministicBrrUnit U(C, 32);
  for (int I = 0; I != 4; ++I)
    U.evaluate(FreqCode(1));
  uint64_t StateAfter4 = U.lfsr().state();
  for (int I = 0; I != 3; ++I)
    U.evaluate(FreqCode(1));
  U.squashYoungest(3);
  EXPECT_EQ(U.lfsr().state(), StateAfter4);
  EXPECT_EQ(U.inFlight(), 4u);
}

TEST(DeterministicBrrUnit, RetireFreesBufferSpace) {
  BrrUnitConfig C;
  DeterministicBrrUnit U(C, 4);
  for (int I = 0; I != 4; ++I)
    U.evaluate(FreqCode(0));
  U.retireOldest(2);
  EXPECT_EQ(U.inFlight(), 2u);
  U.evaluate(FreqCode(0));
  U.evaluate(FreqCode(0));
  EXPECT_EQ(U.inFlight(), 4u);
}

TEST(DeterministicBrrUnitDeath, OverflowingRecoveryBufferAsserts) {
  BrrUnitConfig C;
  DeterministicBrrUnit U(C, 2);
  U.evaluate(FreqCode(0));
  U.evaluate(FreqCode(0));
  EXPECT_DEATH(U.evaluate(FreqCode(0)), "recovery buffer");
}

TEST(DeterministicBrrUnitDeath, OverSquashAsserts) {
  BrrUnitConfig C;
  DeterministicBrrUnit U(C, 4);
  U.evaluate(FreqCode(0));
  EXPECT_DEATH(U.squashYoungest(2), "more brrs than are in flight");
}
