//===- tests/test_memhier.cpp - Memory hierarchy tests --------------------===//

#include "uarch/MemoryHierarchy.h"

#include <gtest/gtest.h>

using namespace bor;

TEST(MemoryHierarchy, FetchLatencyLevels) {
  MemoryHierarchy H;
  // Cold: L1I and L2 both miss -> memory latency.
  EXPECT_EQ(H.fetchAccess(0x0), H.config().MemCycles);
  // Warm L1I: free.
  EXPECT_EQ(H.fetchAccess(0x0), 0u);
}

TEST(MemoryHierarchy, DataLatencyLevels) {
  MemoryHierarchy H;
  unsigned Cold = H.dataAccess(0x4000, false);
  EXPECT_EQ(Cold, H.config().L1DHitCycles + H.config().MemCycles);
  unsigned Warm = H.dataAccess(0x4000, false);
  EXPECT_EQ(Warm, H.config().L1DHitCycles);
}

TEST(MemoryHierarchy, L2HitAfterL1Eviction) {
  MemHierConfig Cfg;
  Cfg.L1D = {1024, 2, 64}; // tiny L1D so we can evict easily
  MemoryHierarchy H(Cfg);

  H.dataAccess(0x0, false); // miss everywhere; fills L2 + L1
  // Evict 0x0 from L1D (same set, 2 ways): lines 8*64 and 16*64.
  H.dataAccess(8 * 64, false);
  H.dataAccess(16 * 64, false);
  EXPECT_FALSE(H.l1d().contains(0x0));
  EXPECT_TRUE(H.l2().contains(0x0));
  unsigned Lat = H.dataAccess(0x0, false);
  EXPECT_EQ(Lat, Cfg.L1DHitCycles + Cfg.L2HitCycles);
}

TEST(MemoryHierarchy, L2IsSharedBetweenInstAndData) {
  MemoryHierarchy H;
  H.fetchAccess(0x8000);     // fills L2 line via the I-side
  unsigned Lat = H.dataAccess(0x8000, false); // L1D miss, L2 hit
  EXPECT_EQ(Lat, H.config().L1DHitCycles + H.config().L2HitCycles);
}

TEST(MemoryHierarchy, WritesFillLikeReads) {
  MemoryHierarchy H;
  H.dataAccess(0x9000, true);
  EXPECT_EQ(H.dataAccess(0x9000, false), H.config().L1DHitCycles);
}

TEST(MemoryHierarchy, StatsAccumulatePerLevel) {
  MemoryHierarchy H;
  H.dataAccess(0x100, false);
  H.dataAccess(0x100, false);
  EXPECT_EQ(H.l1d().stats().Accesses, 2u);
  EXPECT_EQ(H.l1d().stats().Misses, 1u);
  EXPECT_EQ(H.l2().stats().Accesses, 1u);
}

TEST(MemoryHierarchy, PaperDefaultLatencies) {
  MemHierConfig Cfg;
  EXPECT_EQ(Cfg.L2HitCycles, 8u);   // "responds in 8 cycles"
  EXPECT_EQ(Cfg.MemCycles, 140u);   // "memory responds in 140 cycles"
  EXPECT_EQ(Cfg.L1I.SizeBytes, 32u * 1024);
  EXPECT_EQ(Cfg.L1D.Assoc, 4u);
  EXPECT_EQ(Cfg.L2.SizeBytes, 1024u * 1024);
  EXPECT_EQ(Cfg.L2.Assoc, 8u);
}
