//===- tests/test_pipeline_invariants.cpp - Timing-model structural laws --===//
//
// Property tests over the pipeline's per-instruction timestamps (via the
// observer API): for arbitrary random programs the stage ordering, stage
// widths, and ROB occupancy limits of the configured machine must hold for
// every committed instruction.
//
//===----------------------------------------------------------------------===//

#include "isa/ProgramBuilder.h"
#include "support/Rng.h"
#include "uarch/Pipeline.h"

#include <gtest/gtest.h>

#include <map>

using namespace bor;

namespace {

/// A random but structured program: a counted loop of ALU/memory/branch
/// soup (simplified variant of the differential test's generator).
Program randomProgram(uint64_t Seed) {
  Xoshiro256 Rng(Seed);
  ProgramBuilder B;
  uint64_t Buf = B.allocData(512, 8);
  B.emitLoadConst(20, Buf);
  B.emitLoadConst(2, 60);
  auto Loop = B.label();
  B.bind(Loop);
  unsigned Body = 10 + Rng.nextBelow(30);
  for (unsigned I = 0; I != Body; ++I) {
    uint8_t Rd = static_cast<uint8_t>(3 + Rng.nextBelow(8));
    uint8_t Rs = static_cast<uint8_t>(3 + Rng.nextBelow(8));
    switch (Rng.nextBelow(5)) {
    case 0:
      B.emit(Inst::add(Rd, Rs, 3));
      break;
    case 1:
      B.emit(Inst::alu(Opcode::Mul, Rd, Rs, 4));
      break;
    case 2:
      B.emit(Inst::ld(Rd, 20, static_cast<int32_t>(8 * Rng.nextBelow(64))));
      break;
    case 3:
      B.emit(Inst::st(Rs, 20, static_cast<int32_t>(8 * Rng.nextBelow(64))));
      break;
    case 4: {
      auto Skip = B.label();
      B.emitBrr(FreqCode(1), Skip);
      B.emit(Inst::add(Rd, Rd, Rd));
      B.bind(Skip);
      break;
    }
    }
  }
  B.emit(Inst::addi(2, 2, -1));
  B.emitBranch(Opcode::Bne, 2, 0, Loop);
  B.emit(Inst::halt());
  return B.finish();
}

} // namespace

class PipelineInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineInvariants, StageLawsHoldForEveryInstruction) {
  Program P = randomProgram(GetParam());
  PipelineConfig Cfg;

  std::vector<InstTimestamps> Trace;
  Pipeline Pipe(P, Cfg);
  Pipe.setObserver([&Trace](const InstTimestamps &TS) {
    Trace.push_back(TS);
  });
  PipelineStats S = Pipe.run(10000000).Stats;
  ASSERT_EQ(Trace.size(), S.Insts);

  std::map<uint64_t, unsigned> IssuePerCycle;
  std::map<uint64_t, unsigned> CommitPerCycle;
  std::map<uint64_t, unsigned> DecodePerCycle;
  uint64_t LastDecode = 0;
  uint64_t LastCommit = 0;

  // Sliding ROB-occupancy check: dispatch of instruction i must wait for
  // the commit of the instruction RobEntries slots earlier.
  std::vector<const InstTimestamps *> RobOrder;

  for (const InstTimestamps &TS : Trace) {
    // Front-end depth and ordering.
    EXPECT_GE(TS.Decode, TS.Fetch + Cfg.FetchToDecode) << "pc " << TS.Pc;
    EXPECT_GE(TS.Decode, LastDecode) << "decode must be in order";
    LastDecode = TS.Decode;
    ++DecodePerCycle[TS.Decode];

    if (TS.CommittedAtDecode) {
      EXPECT_TRUE(TS.I.isBrr());
      EXPECT_EQ(TS.Commit, TS.Decode);
      continue;
    }

    // Back-end ordering.
    EXPECT_GE(TS.Dispatch, TS.Decode + Cfg.DecodeToDispatch);
    EXPECT_GE(TS.Issue, TS.Dispatch + Cfg.DispatchToIssue);
    EXPECT_GT(TS.Done, TS.Issue);
    EXPECT_GE(TS.Commit, TS.Done + 1);
    EXPECT_GE(TS.Commit, LastCommit) << "commit must be in order";
    LastCommit = TS.Commit;

    ++IssuePerCycle[TS.Issue];
    ++CommitPerCycle[TS.Commit];

    RobOrder.push_back(&TS);
    size_t N = RobOrder.size();
    if (N > Cfg.RobEntries) {
      const InstTimestamps *Evictee = RobOrder[N - 1 - Cfg.RobEntries];
      EXPECT_GE(RobOrder.back()->Dispatch, Evictee->Commit + 1)
          << "ROB occupancy exceeded " << Cfg.RobEntries;
    }
  }

  for (const auto &[Cycle, Count] : DecodePerCycle)
    EXPECT_LE(Count, Cfg.DecodeWidth) << "decode width at cycle " << Cycle;
  for (const auto &[Cycle, Count] : IssuePerCycle)
    EXPECT_LE(Count, Cfg.IssueWidth) << "issue width at cycle " << Cycle;
  for (const auto &[Cycle, Count] : CommitPerCycle)
    EXPECT_LE(Count, Cfg.CommitWidth) << "commit width at cycle " << Cycle;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineInvariants,
                         ::testing::Range<uint64_t>(100, 112),
                         [](const auto &Info) {
                           return "seed" + std::to_string(Info.param);
                         });

TEST(PipelineObserver, BrrFastPathIsVisible) {
  ProgramBuilder B;
  auto Skip = B.label();
  B.emitBrr(FreqCode(9), Skip);
  B.bind(Skip);
  B.emit(Inst::add(3, 3, 3));
  B.emit(Inst::halt());

  Program P = B.finish();
  std::vector<InstTimestamps> Trace;
  NeverTakenDecider D;
  Pipeline Pipe(P, PipelineConfig(), &D);
  Pipe.setObserver([&Trace](const InstTimestamps &TS) {
    Trace.push_back(TS);
  });
  Pipe.run(100);
  ASSERT_EQ(Trace.size(), 3u);
  EXPECT_TRUE(Trace[0].CommittedAtDecode);
  EXPECT_FALSE(Trace[1].CommittedAtDecode);
  EXPECT_EQ(Trace[0].Commit, Trace[0].Decode);
}

TEST(PipelineObserver, DisabledByDefaultAndDetachable) {
  ProgramBuilder B;
  B.emit(Inst::halt());
  Program P = B.finish();
  Pipeline Pipe(P, PipelineConfig());
  int Calls = 0;
  Pipe.setObserver([&Calls](const InstTimestamps &) { ++Calls; });
  Pipe.setObserver(nullptr);
  Pipe.run(10);
  EXPECT_EQ(Calls, 0);
}

TEST(PipelineInvariantsConfig, NarrowMachineRespectsItsWidths) {
  Program P = randomProgram(4242);
  PipelineConfig Narrow;
  Narrow.FetchWidth = 1;
  Narrow.DecodeWidth = 1;
  Narrow.IssueWidth = 1;
  Narrow.CommitWidth = 1;
  Narrow.RobEntries = 4;

  std::map<uint64_t, unsigned> CommitPerCycle;
  Pipeline Pipe(P, Narrow);
  Pipe.setObserver([&CommitPerCycle](const InstTimestamps &TS) {
    if (!TS.CommittedAtDecode)
      ++CommitPerCycle[TS.Commit];
  });
  PipelineStats S = Pipe.run(10000000).Stats;
  for (const auto &[Cycle, Count] : CommitPerCycle)
    EXPECT_LE(Count, 1u);
  EXPECT_LT(S.ipc(), 1.01);
}
