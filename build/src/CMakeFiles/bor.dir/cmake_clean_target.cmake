file(REMOVE_RECURSE
  "libbor.a"
)
