
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BitSelection.cpp" "src/CMakeFiles/bor.dir/core/BitSelection.cpp.o" "gcc" "src/CMakeFiles/bor.dir/core/BitSelection.cpp.o.d"
  "/root/repo/src/core/BrrUnit.cpp" "src/CMakeFiles/bor.dir/core/BrrUnit.cpp.o" "gcc" "src/CMakeFiles/bor.dir/core/BrrUnit.cpp.o.d"
  "/root/repo/src/core/DeterministicBrr.cpp" "src/CMakeFiles/bor.dir/core/DeterministicBrr.cpp.o" "gcc" "src/CMakeFiles/bor.dir/core/DeterministicBrr.cpp.o.d"
  "/root/repo/src/core/FreqCode.cpp" "src/CMakeFiles/bor.dir/core/FreqCode.cpp.o" "gcc" "src/CMakeFiles/bor.dir/core/FreqCode.cpp.o.d"
  "/root/repo/src/core/HwCostModel.cpp" "src/CMakeFiles/bor.dir/core/HwCostModel.cpp.o" "gcc" "src/CMakeFiles/bor.dir/core/HwCostModel.cpp.o.d"
  "/root/repo/src/core/SuperscalarBrr.cpp" "src/CMakeFiles/bor.dir/core/SuperscalarBrr.cpp.o" "gcc" "src/CMakeFiles/bor.dir/core/SuperscalarBrr.cpp.o.d"
  "/root/repo/src/instr/BrrSampling.cpp" "src/CMakeFiles/bor.dir/instr/BrrSampling.cpp.o" "gcc" "src/CMakeFiles/bor.dir/instr/BrrSampling.cpp.o.d"
  "/root/repo/src/instr/CounterSampling.cpp" "src/CMakeFiles/bor.dir/instr/CounterSampling.cpp.o" "gcc" "src/CMakeFiles/bor.dir/instr/CounterSampling.cpp.o.d"
  "/root/repo/src/instr/FullInstrumentation.cpp" "src/CMakeFiles/bor.dir/instr/FullInstrumentation.cpp.o" "gcc" "src/CMakeFiles/bor.dir/instr/FullInstrumentation.cpp.o.d"
  "/root/repo/src/instr/Sites.cpp" "src/CMakeFiles/bor.dir/instr/Sites.cpp.o" "gcc" "src/CMakeFiles/bor.dir/instr/Sites.cpp.o.d"
  "/root/repo/src/instr/Transform.cpp" "src/CMakeFiles/bor.dir/instr/Transform.cpp.o" "gcc" "src/CMakeFiles/bor.dir/instr/Transform.cpp.o.d"
  "/root/repo/src/isa/Assembler.cpp" "src/CMakeFiles/bor.dir/isa/Assembler.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/Assembler.cpp.o.d"
  "/root/repo/src/isa/Disasm.cpp" "src/CMakeFiles/bor.dir/isa/Disasm.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/Disasm.cpp.o.d"
  "/root/repo/src/isa/Encoding.cpp" "src/CMakeFiles/bor.dir/isa/Encoding.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/Encoding.cpp.o.d"
  "/root/repo/src/isa/Inst.cpp" "src/CMakeFiles/bor.dir/isa/Inst.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/Inst.cpp.o.d"
  "/root/repo/src/isa/Program.cpp" "src/CMakeFiles/bor.dir/isa/Program.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/Program.cpp.o.d"
  "/root/repo/src/isa/ProgramBuilder.cpp" "src/CMakeFiles/bor.dir/isa/ProgramBuilder.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/ProgramBuilder.cpp.o.d"
  "/root/repo/src/isa/Serialize.cpp" "src/CMakeFiles/bor.dir/isa/Serialize.cpp.o" "gcc" "src/CMakeFiles/bor.dir/isa/Serialize.cpp.o.d"
  "/root/repo/src/lfsr/Lfsr.cpp" "src/CMakeFiles/bor.dir/lfsr/Lfsr.cpp.o" "gcc" "src/CMakeFiles/bor.dir/lfsr/Lfsr.cpp.o.d"
  "/root/repo/src/lfsr/TapCatalog.cpp" "src/CMakeFiles/bor.dir/lfsr/TapCatalog.cpp.o" "gcc" "src/CMakeFiles/bor.dir/lfsr/TapCatalog.cpp.o.d"
  "/root/repo/src/profile/Accuracy.cpp" "src/CMakeFiles/bor.dir/profile/Accuracy.cpp.o" "gcc" "src/CMakeFiles/bor.dir/profile/Accuracy.cpp.o.d"
  "/root/repo/src/profile/Convergent.cpp" "src/CMakeFiles/bor.dir/profile/Convergent.cpp.o" "gcc" "src/CMakeFiles/bor.dir/profile/Convergent.cpp.o.d"
  "/root/repo/src/profile/Profile.cpp" "src/CMakeFiles/bor.dir/profile/Profile.cpp.o" "gcc" "src/CMakeFiles/bor.dir/profile/Profile.cpp.o.d"
  "/root/repo/src/profile/SamplingPolicy.cpp" "src/CMakeFiles/bor.dir/profile/SamplingPolicy.cpp.o" "gcc" "src/CMakeFiles/bor.dir/profile/SamplingPolicy.cpp.o.d"
  "/root/repo/src/profile/TraceGen.cpp" "src/CMakeFiles/bor.dir/profile/TraceGen.cpp.o" "gcc" "src/CMakeFiles/bor.dir/profile/TraceGen.cpp.o.d"
  "/root/repo/src/profile/ValueProfile.cpp" "src/CMakeFiles/bor.dir/profile/ValueProfile.cpp.o" "gcc" "src/CMakeFiles/bor.dir/profile/ValueProfile.cpp.o.d"
  "/root/repo/src/sim/Interpreter.cpp" "src/CMakeFiles/bor.dir/sim/Interpreter.cpp.o" "gcc" "src/CMakeFiles/bor.dir/sim/Interpreter.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/CMakeFiles/bor.dir/sim/Machine.cpp.o" "gcc" "src/CMakeFiles/bor.dir/sim/Machine.cpp.o.d"
  "/root/repo/src/support/Rng.cpp" "src/CMakeFiles/bor.dir/support/Rng.cpp.o" "gcc" "src/CMakeFiles/bor.dir/support/Rng.cpp.o.d"
  "/root/repo/src/support/Stats.cpp" "src/CMakeFiles/bor.dir/support/Stats.cpp.o" "gcc" "src/CMakeFiles/bor.dir/support/Stats.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/bor.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/bor.dir/support/Table.cpp.o.d"
  "/root/repo/src/uarch/BranchPredictor.cpp" "src/CMakeFiles/bor.dir/uarch/BranchPredictor.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/BranchPredictor.cpp.o.d"
  "/root/repo/src/uarch/Btb.cpp" "src/CMakeFiles/bor.dir/uarch/Btb.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/Btb.cpp.o.d"
  "/root/repo/src/uarch/Cache.cpp" "src/CMakeFiles/bor.dir/uarch/Cache.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/Cache.cpp.o.d"
  "/root/repo/src/uarch/MemoryHierarchy.cpp" "src/CMakeFiles/bor.dir/uarch/MemoryHierarchy.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/MemoryHierarchy.cpp.o.d"
  "/root/repo/src/uarch/Pipeline.cpp" "src/CMakeFiles/bor.dir/uarch/Pipeline.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/Pipeline.cpp.o.d"
  "/root/repo/src/uarch/PipelineConfig.cpp" "src/CMakeFiles/bor.dir/uarch/PipelineConfig.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/PipelineConfig.cpp.o.d"
  "/root/repo/src/uarch/Pipeview.cpp" "src/CMakeFiles/bor.dir/uarch/Pipeview.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/Pipeview.cpp.o.d"
  "/root/repo/src/uarch/ReturnAddressStack.cpp" "src/CMakeFiles/bor.dir/uarch/ReturnAddressStack.cpp.o" "gcc" "src/CMakeFiles/bor.dir/uarch/ReturnAddressStack.cpp.o.d"
  "/root/repo/src/workloads/AppGen.cpp" "src/CMakeFiles/bor.dir/workloads/AppGen.cpp.o" "gcc" "src/CMakeFiles/bor.dir/workloads/AppGen.cpp.o.d"
  "/root/repo/src/workloads/Kernels.cpp" "src/CMakeFiles/bor.dir/workloads/Kernels.cpp.o" "gcc" "src/CMakeFiles/bor.dir/workloads/Kernels.cpp.o.d"
  "/root/repo/src/workloads/Microbench.cpp" "src/CMakeFiles/bor.dir/workloads/Microbench.cpp.o" "gcc" "src/CMakeFiles/bor.dir/workloads/Microbench.cpp.o.d"
  "/root/repo/src/workloads/TextGen.cpp" "src/CMakeFiles/bor.dir/workloads/TextGen.cpp.o" "gcc" "src/CMakeFiles/bor.dir/workloads/TextGen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
