# Empty dependencies file for bor.
# This may be replaced when dependencies are built.
