# Empty dependencies file for fig13_micro_overhead.
# This may be replaced when dependencies are built.
