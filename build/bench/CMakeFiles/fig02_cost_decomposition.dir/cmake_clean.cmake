file(REMOVE_RECURSE
  "CMakeFiles/fig02_cost_decomposition.dir/fig02_cost_decomposition.cpp.o"
  "CMakeFiles/fig02_cost_decomposition.dir/fig02_cost_decomposition.cpp.o.d"
  "fig02_cost_decomposition"
  "fig02_cost_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_cost_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
