# Empty dependencies file for fig02_cost_decomposition.
# This may be replaced when dependencies are built.
