# Empty compiler generated dependencies file for predictor_pollution.
# This may be replaced when dependencies are built.
