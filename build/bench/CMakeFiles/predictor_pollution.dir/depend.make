# Empty dependencies file for predictor_pollution.
# This may be replaced when dependencies are built.
