file(REMOVE_RECURSE
  "CMakeFiles/predictor_pollution.dir/predictor_pollution.cpp.o"
  "CMakeFiles/predictor_pollution.dir/predictor_pollution.cpp.o.d"
  "predictor_pollution"
  "predictor_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
