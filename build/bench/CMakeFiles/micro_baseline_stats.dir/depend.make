# Empty dependencies file for micro_baseline_stats.
# This may be replaced when dependencies are built.
