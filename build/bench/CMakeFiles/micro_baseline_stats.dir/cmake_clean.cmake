file(REMOVE_RECURSE
  "CMakeFiles/micro_baseline_stats.dir/micro_baseline_stats.cpp.o"
  "CMakeFiles/micro_baseline_stats.dir/micro_baseline_stats.cpp.o.d"
  "micro_baseline_stats"
  "micro_baseline_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_baseline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
