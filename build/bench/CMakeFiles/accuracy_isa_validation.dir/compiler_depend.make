# Empty compiler generated dependencies file for accuracy_isa_validation.
# This may be replaced when dependencies are built.
