file(REMOVE_RECURSE
  "CMakeFiles/accuracy_isa_validation.dir/accuracy_isa_validation.cpp.o"
  "CMakeFiles/accuracy_isa_validation.dir/accuracy_isa_validation.cpp.o.d"
  "accuracy_isa_validation"
  "accuracy_isa_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_isa_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
