# Empty dependencies file for sens_lfsr_config.
# This may be replaced when dependencies are built.
