file(REMOVE_RECURSE
  "CMakeFiles/sens_lfsr_config.dir/sens_lfsr_config.cpp.o"
  "CMakeFiles/sens_lfsr_config.dir/sens_lfsr_config.cpp.o.d"
  "sens_lfsr_config"
  "sens_lfsr_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sens_lfsr_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
