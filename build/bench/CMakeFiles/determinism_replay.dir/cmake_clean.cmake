file(REMOVE_RECURSE
  "CMakeFiles/determinism_replay.dir/determinism_replay.cpp.o"
  "CMakeFiles/determinism_replay.dir/determinism_replay.cpp.o.d"
  "determinism_replay"
  "determinism_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinism_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
