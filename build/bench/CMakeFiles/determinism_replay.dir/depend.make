# Empty dependencies file for determinism_replay.
# This may be replaced when dependencies are built.
