file(REMOVE_RECURSE
  "CMakeFiles/fig10_accuracy_8k.dir/fig10_accuracy_8k.cpp.o"
  "CMakeFiles/fig10_accuracy_8k.dir/fig10_accuracy_8k.cpp.o.d"
  "fig10_accuracy_8k"
  "fig10_accuracy_8k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accuracy_8k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
