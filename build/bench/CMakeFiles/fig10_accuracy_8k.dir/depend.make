# Empty dependencies file for fig10_accuracy_8k.
# This may be replaced when dependencies are built.
