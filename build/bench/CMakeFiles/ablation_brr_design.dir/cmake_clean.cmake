file(REMOVE_RECURSE
  "CMakeFiles/ablation_brr_design.dir/ablation_brr_design.cpp.o"
  "CMakeFiles/ablation_brr_design.dir/ablation_brr_design.cpp.o.d"
  "ablation_brr_design"
  "ablation_brr_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_brr_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
