# Empty dependencies file for ablation_brr_design.
# This may be replaced when dependencies are built.
