# Empty dependencies file for core_microbench.
# This may be replaced when dependencies are built.
