# Empty compiler generated dependencies file for convergent_profiling.
# This may be replaced when dependencies are built.
