file(REMOVE_RECURSE
  "CMakeFiles/convergent_profiling.dir/convergent_profiling.cpp.o"
  "CMakeFiles/convergent_profiling.dir/convergent_profiling.cpp.o.d"
  "convergent_profiling"
  "convergent_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergent_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
