file(REMOVE_RECURSE
  "CMakeFiles/kernels_overhead.dir/kernels_overhead.cpp.o"
  "CMakeFiles/kernels_overhead.dir/kernels_overhead.cpp.o.d"
  "kernels_overhead"
  "kernels_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
