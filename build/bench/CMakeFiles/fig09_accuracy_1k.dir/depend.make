# Empty dependencies file for fig09_accuracy_1k.
# This may be replaced when dependencies are built.
