file(REMOVE_RECURSE
  "CMakeFiles/fig09_accuracy_1k.dir/fig09_accuracy_1k.cpp.o"
  "CMakeFiles/fig09_accuracy_1k.dir/fig09_accuracy_1k.cpp.o.d"
  "fig09_accuracy_1k"
  "fig09_accuracy_1k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_accuracy_1k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
