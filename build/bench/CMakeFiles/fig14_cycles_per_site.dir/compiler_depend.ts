# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14_cycles_per_site.
