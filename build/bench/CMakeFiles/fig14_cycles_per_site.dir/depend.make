# Empty dependencies file for fig14_cycles_per_site.
# This may be replaced when dependencies are built.
