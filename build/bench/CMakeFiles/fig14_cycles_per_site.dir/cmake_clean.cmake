file(REMOVE_RECURSE
  "CMakeFiles/fig14_cycles_per_site.dir/fig14_cycles_per_site.cpp.o"
  "CMakeFiles/fig14_cycles_per_site.dir/fig14_cycles_per_site.cpp.o.d"
  "fig14_cycles_per_site"
  "fig14_cycles_per_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_cycles_per_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
