# Empty compiler generated dependencies file for fig12_app_overhead.
# This may be replaced when dependencies are built.
