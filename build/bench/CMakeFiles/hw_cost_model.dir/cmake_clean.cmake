file(REMOVE_RECURSE
  "CMakeFiles/hw_cost_model.dir/hw_cost_model.cpp.o"
  "CMakeFiles/hw_cost_model.dir/hw_cost_model.cpp.o.d"
  "hw_cost_model"
  "hw_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
