
; toolchain smoke test: count 1/16-sampled iterations
.alloc hits 8 8
        lc r28, @hits
        lc r2, 4096
loop:
        brr 1/16, sample
back:
        addi r2, r2, -1
        bne r2, r0, loop
        halt
sample:
        ld r15, 0(r28)
        addi r15, r15, 1
        st r15, 0(r28)
        jmp back
