file(REMOVE_RECURSE
  "CMakeFiles/test_instr.dir/test_appgen.cpp.o"
  "CMakeFiles/test_instr.dir/test_appgen.cpp.o.d"
  "CMakeFiles/test_instr.dir/test_countersampling.cpp.o"
  "CMakeFiles/test_instr.dir/test_countersampling.cpp.o.d"
  "CMakeFiles/test_instr.dir/test_kernels.cpp.o"
  "CMakeFiles/test_instr.dir/test_kernels.cpp.o.d"
  "CMakeFiles/test_instr.dir/test_microbench.cpp.o"
  "CMakeFiles/test_instr.dir/test_microbench.cpp.o.d"
  "CMakeFiles/test_instr.dir/test_textgen.cpp.o"
  "CMakeFiles/test_instr.dir/test_textgen.cpp.o.d"
  "CMakeFiles/test_instr.dir/test_transform.cpp.o"
  "CMakeFiles/test_instr.dir/test_transform.cpp.o.d"
  "test_instr"
  "test_instr.pdb"
  "test_instr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
