file(REMOVE_RECURSE
  "CMakeFiles/test_uarch.dir/test_btb.cpp.o"
  "CMakeFiles/test_uarch.dir/test_btb.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_cache.cpp.o"
  "CMakeFiles/test_uarch.dir/test_cache.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_memhier.cpp.o"
  "CMakeFiles/test_uarch.dir/test_memhier.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_pipeline.cpp.o"
  "CMakeFiles/test_uarch.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_pipeline_invariants.cpp.o"
  "CMakeFiles/test_uarch.dir/test_pipeline_invariants.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_pipeline_scaling.cpp.o"
  "CMakeFiles/test_uarch.dir/test_pipeline_scaling.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_pipeview.cpp.o"
  "CMakeFiles/test_uarch.dir/test_pipeview.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_predictor.cpp.o"
  "CMakeFiles/test_uarch.dir/test_predictor.cpp.o.d"
  "CMakeFiles/test_uarch.dir/test_ras.cpp.o"
  "CMakeFiles/test_uarch.dir/test_ras.cpp.o.d"
  "test_uarch"
  "test_uarch.pdb"
  "test_uarch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
