
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_btb.cpp" "tests/CMakeFiles/test_uarch.dir/test_btb.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_btb.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/test_uarch.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_memhier.cpp" "tests/CMakeFiles/test_uarch.dir/test_memhier.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_memhier.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/test_uarch.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pipeline_invariants.cpp" "tests/CMakeFiles/test_uarch.dir/test_pipeline_invariants.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_pipeline_invariants.cpp.o.d"
  "/root/repo/tests/test_pipeline_scaling.cpp" "tests/CMakeFiles/test_uarch.dir/test_pipeline_scaling.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_pipeline_scaling.cpp.o.d"
  "/root/repo/tests/test_pipeview.cpp" "tests/CMakeFiles/test_uarch.dir/test_pipeview.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_pipeview.cpp.o.d"
  "/root/repo/tests/test_predictor.cpp" "tests/CMakeFiles/test_uarch.dir/test_predictor.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_predictor.cpp.o.d"
  "/root/repo/tests/test_ras.cpp" "tests/CMakeFiles/test_uarch.dir/test_ras.cpp.o" "gcc" "tests/CMakeFiles/test_uarch.dir/test_ras.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
