file(REMOVE_RECURSE
  "CMakeFiles/test_profile.dir/test_accuracy.cpp.o"
  "CMakeFiles/test_profile.dir/test_accuracy.cpp.o.d"
  "CMakeFiles/test_profile.dir/test_convergent.cpp.o"
  "CMakeFiles/test_profile.dir/test_convergent.cpp.o.d"
  "CMakeFiles/test_profile.dir/test_sampling_policy.cpp.o"
  "CMakeFiles/test_profile.dir/test_sampling_policy.cpp.o.d"
  "CMakeFiles/test_profile.dir/test_tracegen.cpp.o"
  "CMakeFiles/test_profile.dir/test_tracegen.cpp.o.d"
  "CMakeFiles/test_profile.dir/test_valueprofile.cpp.o"
  "CMakeFiles/test_profile.dir/test_valueprofile.cpp.o.d"
  "test_profile"
  "test_profile.pdb"
  "test_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
