
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accuracy.cpp" "tests/CMakeFiles/test_profile.dir/test_accuracy.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_accuracy.cpp.o.d"
  "/root/repo/tests/test_convergent.cpp" "tests/CMakeFiles/test_profile.dir/test_convergent.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_convergent.cpp.o.d"
  "/root/repo/tests/test_sampling_policy.cpp" "tests/CMakeFiles/test_profile.dir/test_sampling_policy.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_sampling_policy.cpp.o.d"
  "/root/repo/tests/test_tracegen.cpp" "tests/CMakeFiles/test_profile.dir/test_tracegen.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_tracegen.cpp.o.d"
  "/root/repo/tests/test_valueprofile.cpp" "tests/CMakeFiles/test_profile.dir/test_valueprofile.cpp.o" "gcc" "tests/CMakeFiles/test_profile.dir/test_valueprofile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
