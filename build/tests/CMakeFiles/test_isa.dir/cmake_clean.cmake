file(REMOVE_RECURSE
  "CMakeFiles/test_isa.dir/test_assembler.cpp.o"
  "CMakeFiles/test_isa.dir/test_assembler.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_disasm.cpp.o"
  "CMakeFiles/test_isa.dir/test_disasm.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_encoding.cpp.o"
  "CMakeFiles/test_isa.dir/test_encoding.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_interpreter.cpp.o"
  "CMakeFiles/test_isa.dir/test_interpreter.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_machine.cpp.o"
  "CMakeFiles/test_isa.dir/test_machine.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_program_builder.cpp.o"
  "CMakeFiles/test_isa.dir/test_program_builder.cpp.o.d"
  "CMakeFiles/test_isa.dir/test_serialize.cpp.o"
  "CMakeFiles/test_isa.dir/test_serialize.cpp.o.d"
  "test_isa"
  "test_isa.pdb"
  "test_isa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
