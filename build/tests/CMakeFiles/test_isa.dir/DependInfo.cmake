
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/test_isa.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_disasm.cpp" "tests/CMakeFiles/test_isa.dir/test_disasm.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_disasm.cpp.o.d"
  "/root/repo/tests/test_encoding.cpp" "tests/CMakeFiles/test_isa.dir/test_encoding.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_encoding.cpp.o.d"
  "/root/repo/tests/test_interpreter.cpp" "tests/CMakeFiles/test_isa.dir/test_interpreter.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_interpreter.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/test_isa.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_program_builder.cpp" "tests/CMakeFiles/test_isa.dir/test_program_builder.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_program_builder.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/test_isa.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
