file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_bitselection.cpp.o"
  "CMakeFiles/test_core.dir/test_bitselection.cpp.o.d"
  "CMakeFiles/test_core.dir/test_brrunit.cpp.o"
  "CMakeFiles/test_core.dir/test_brrunit.cpp.o.d"
  "CMakeFiles/test_core.dir/test_deterministic_brr.cpp.o"
  "CMakeFiles/test_core.dir/test_deterministic_brr.cpp.o.d"
  "CMakeFiles/test_core.dir/test_freqcode.cpp.o"
  "CMakeFiles/test_core.dir/test_freqcode.cpp.o.d"
  "CMakeFiles/test_core.dir/test_hwcost.cpp.o"
  "CMakeFiles/test_core.dir/test_hwcost.cpp.o.d"
  "CMakeFiles/test_core.dir/test_lfsr.cpp.o"
  "CMakeFiles/test_core.dir/test_lfsr.cpp.o.d"
  "CMakeFiles/test_core.dir/test_superscalar.cpp.o"
  "CMakeFiles/test_core.dir/test_superscalar.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
