
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bitselection.cpp" "tests/CMakeFiles/test_core.dir/test_bitselection.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_bitselection.cpp.o.d"
  "/root/repo/tests/test_brrunit.cpp" "tests/CMakeFiles/test_core.dir/test_brrunit.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_brrunit.cpp.o.d"
  "/root/repo/tests/test_deterministic_brr.cpp" "tests/CMakeFiles/test_core.dir/test_deterministic_brr.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_deterministic_brr.cpp.o.d"
  "/root/repo/tests/test_freqcode.cpp" "tests/CMakeFiles/test_core.dir/test_freqcode.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_freqcode.cpp.o.d"
  "/root/repo/tests/test_hwcost.cpp" "tests/CMakeFiles/test_core.dir/test_hwcost.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_hwcost.cpp.o.d"
  "/root/repo/tests/test_lfsr.cpp" "tests/CMakeFiles/test_core.dir/test_lfsr.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_lfsr.cpp.o.d"
  "/root/repo/tests/test_superscalar.cpp" "tests/CMakeFiles/test_core.dir/test_superscalar.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_superscalar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
