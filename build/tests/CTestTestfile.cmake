# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_instr[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
add_test(tools_smoke "/usr/bin/cmake" "-DAS=/root/repo/build/tools/bor-as" "-DDIS=/root/repo/build/tools/bor-dis" "-DRUN=/root/repo/build/tools/bor-run" "-DPIPEVIEW=/root/repo/build/tools/bor-pipeview" "-DGEN=/root/repo/build/tools/bor-gen" "-DEXAMPLE_ASM=/root/repo/tests/../examples/asm/sampling.s" "-DWORKDIR=/root/repo/build/tests/tools_smoke_work" "-P" "/root/repo/tests/tools_smoke.cmake")
set_tests_properties(tools_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;72;add_test;/root/repo/tests/CMakeLists.txt;0;")
