# Empty dependencies file for gil_scheduler.
# This may be replaced when dependencies are built.
