file(REMOVE_RECURSE
  "CMakeFiles/gil_scheduler.dir/gil_scheduler.cpp.o"
  "CMakeFiles/gil_scheduler.dir/gil_scheduler.cpp.o.d"
  "gil_scheduler"
  "gil_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gil_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
