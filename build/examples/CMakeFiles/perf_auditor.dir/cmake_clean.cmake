file(REMOVE_RECURSE
  "CMakeFiles/perf_auditor.dir/perf_auditor.cpp.o"
  "CMakeFiles/perf_auditor.dir/perf_auditor.cpp.o.d"
  "perf_auditor"
  "perf_auditor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_auditor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
