# Empty dependencies file for perf_auditor.
# This may be replaced when dependencies are built.
