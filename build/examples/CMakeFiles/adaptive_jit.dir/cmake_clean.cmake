file(REMOVE_RECURSE
  "CMakeFiles/adaptive_jit.dir/adaptive_jit.cpp.o"
  "CMakeFiles/adaptive_jit.dir/adaptive_jit.cpp.o.d"
  "adaptive_jit"
  "adaptive_jit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_jit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
