# Empty dependencies file for profiling_jvm.
# This may be replaced when dependencies are built.
