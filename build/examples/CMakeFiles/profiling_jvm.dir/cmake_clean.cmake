file(REMOVE_RECURSE
  "CMakeFiles/profiling_jvm.dir/profiling_jvm.cpp.o"
  "CMakeFiles/profiling_jvm.dir/profiling_jvm.cpp.o.d"
  "profiling_jvm"
  "profiling_jvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_jvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
