# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profiling_jvm "/root/repo/build/examples/profiling_jvm")
set_tests_properties(example_profiling_jvm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gil_scheduler "/root/repo/build/examples/gil_scheduler")
set_tests_properties(example_gil_scheduler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_perf_auditor "/root/repo/build/examples/perf_auditor")
set_tests_properties(example_perf_auditor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_value_profiler "/root/repo/build/examples/value_profiler")
set_tests_properties(example_value_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_jit "/root/repo/build/examples/adaptive_jit")
set_tests_properties(example_adaptive_jit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
