file(REMOVE_RECURSE
  "CMakeFiles/bor-run.dir/bor-run.cpp.o"
  "CMakeFiles/bor-run.dir/bor-run.cpp.o.d"
  "bor-run"
  "bor-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bor-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
