# Empty compiler generated dependencies file for bor-run.
# This may be replaced when dependencies are built.
