# Empty compiler generated dependencies file for bor-gen.
# This may be replaced when dependencies are built.
