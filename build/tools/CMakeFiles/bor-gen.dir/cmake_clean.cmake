file(REMOVE_RECURSE
  "CMakeFiles/bor-gen.dir/bor-gen.cpp.o"
  "CMakeFiles/bor-gen.dir/bor-gen.cpp.o.d"
  "bor-gen"
  "bor-gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bor-gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
