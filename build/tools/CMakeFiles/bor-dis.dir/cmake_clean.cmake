file(REMOVE_RECURSE
  "CMakeFiles/bor-dis.dir/bor-dis.cpp.o"
  "CMakeFiles/bor-dis.dir/bor-dis.cpp.o.d"
  "bor-dis"
  "bor-dis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bor-dis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
