# Empty compiler generated dependencies file for bor-dis.
# This may be replaced when dependencies are built.
