file(REMOVE_RECURSE
  "CMakeFiles/bor-pipeview.dir/bor-pipeview.cpp.o"
  "CMakeFiles/bor-pipeview.dir/bor-pipeview.cpp.o.d"
  "bor-pipeview"
  "bor-pipeview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bor-pipeview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
