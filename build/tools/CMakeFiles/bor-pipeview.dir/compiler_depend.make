# Empty compiler generated dependencies file for bor-pipeview.
# This may be replaced when dependencies are built.
