file(REMOVE_RECURSE
  "CMakeFiles/bor-as.dir/bor-as.cpp.o"
  "CMakeFiles/bor-as.dir/bor-as.cpp.o.d"
  "bor-as"
  "bor-as.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bor-as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
