# Empty dependencies file for bor-as.
# This may be replaced when dependencies are built.
