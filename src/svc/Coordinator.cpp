//===- svc/Coordinator.cpp - The sweep service's serving side ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "svc/Coordinator.h"

#include "support/Path.h"
#include "svc/Protocol.h"
#include "telemetry/Counters.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

namespace bor {
namespace svc {

namespace {

/// Set from a signal handler; polled by the event loop. A relaxed atomic
/// store is async-signal-safe.
std::atomic<bool> DrainFlag{false};

struct SvcCounters {
  telemetry::Counter Leases{"svc.leases"};
  telemetry::Counter Retries{"svc.retries"};
  telemetry::Counter Requeues{"svc.requeues"};
  telemetry::Counter HeartbeatsRecv{"svc.heartbeats.recv"};
  telemetry::Counter HeartbeatsMissed{"svc.heartbeats.missed"};
  telemetry::Counter CellsTimeout{"svc.cells.timeout"};
  telemetry::Counter CellsLost{"svc.cells.lost"};
  telemetry::Counter ResultsStale{"svc.results.stale"};
  telemetry::Counter WorkersConnected{"svc.workers.connected"};
  telemetry::Counter WorkersLost{"svc.workers.lost"};
  telemetry::Counter WorkersSpawned{"svc.workers.spawned"};
  telemetry::Counter FramesSent{"svc.frames.sent"};
  telemetry::Counter FramesRecv{"svc.frames.recv"};
};

SvcCounters &counters() {
  static SvcCounters C;
  return C;
}

void setCloexec(int Fd) {
  int Flags = fcntl(Fd, F_GETFD);
  if (Flags >= 0)
    fcntl(Fd, F_SETFD, Flags | FD_CLOEXEC);
}

} // namespace

void Coordinator::requestDrain() {
  DrainFlag.store(true, std::memory_order_relaxed);
}

Coordinator::Coordinator(const CoordinatorConfig &Config) : Config(Config) {
  ListenFd = net::listenTcp(Config.Host, Config.Port, Err);
  if (ListenFd < 0)
    return;
  setCloexec(ListenFd);
  if (!Config.AddrFile.empty()) {
    std::string Addr =
        Config.Host + ":" + std::to_string(net::boundPort(ListenFd)) + "\n";
    std::string WErr;
    if (!writeFileAtomic(Config.AddrFile, Addr, WErr)) {
      Err = "cannot write --addr-file: " + WErr;
      net::closeFd(ListenFd);
      ListenFd = -1;
    }
  }
}

Coordinator::~Coordinator() { shutdown(); }

int Coordinator::port() const { return net::boundPort(ListenFd); }

double Coordinator::now() const {
  static const auto Origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Origin)
      .count();
}

bool Coordinator::spawnOneWorker() {
  int Id = NextSpawnId++;
  std::string Addr =
      Config.Host + ":" + std::to_string(net::boundPort(ListenFd));
  std::string IdStr = std::to_string(Id);

  pid_t Pid = fork();
  if (Pid < 0) {
    Err = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (Pid == 0) {
    // Child: exec ourselves in worker mode. The worker inherits stdio so
    // its diagnostics land next to the coordinator's.
    std::vector<const char *> Args;
    Args.push_back("bor-bench");
    Args.push_back("--worker");
    Args.push_back(Addr.c_str());
    Args.push_back("--worker-id");
    Args.push_back(IdStr.c_str());
    if (!Config.FaultSpecText.empty()) {
      Args.push_back("--fault-spec");
      Args.push_back(Config.FaultSpecText.c_str());
    }
    Args.push_back(nullptr);
    execv("/proc/self/exe", const_cast<char *const *>(Args.data()));
    _exit(127);
  }
  LiveWorkers.push_back(Pid);
  counters().WorkersSpawned.add();
  return true;
}

bool Coordinator::spawnWorkers() {
  if (SpawnedOnce || Config.SpawnWorkers == 0)
    return true;
  SpawnedOnce = true;
  RestartsLeft = Config.MaxWorkerRestarts >= 0
                     ? Config.MaxWorkerRestarts
                     : static_cast<int>(2 * Config.SpawnWorkers);
  for (unsigned I = 0; I != Config.SpawnWorkers; ++I)
    if (!spawnOneWorker())
      return false;
  return true;
}

void Coordinator::sendFrame(int Fd, const std::string &Payload) {
  // A failed send means the peer died; the read side will see the EOF on
  // the next poll round and run the worker-lost path, so errors are not
  // handled here.
  std::string Wire = net::encodeFrame(Payload);
  net::sendAll(Fd, Wire.data(), Wire.size());
  counters().FramesSent.add();
}

void Coordinator::reapAndRespawn(bool WantMore) {
  for (size_t I = 0; I != LiveWorkers.size();) {
    int Status = 0;
    pid_t R = waitpid(LiveWorkers[I], &Status, WNOHANG);
    if (R == 0) {
      ++I;
      continue;
    }
    LiveWorkers.erase(LiveWorkers.begin() + I);
    if (WantMore && RestartsLeft > 0 &&
        !DrainFlag.load(std::memory_order_relaxed)) {
      --RestartsLeft;
      spawnOneWorker();
    }
  }
}

std::vector<exp::CellOutcome>
Coordinator::runGrid(const exp::ExperimentSpec &Spec,
                     std::vector<exp::RunRecord> &Results,
                     const exp::CellExecutor::DoneFn &OnCellDone) {
  SchedulerConfig SC;
  SC.HeartbeatS = Config.HeartbeatS;
  SC.MissedHeartbeats = Config.MissedHeartbeats;
  SC.CellTimeoutS = Config.CellTimeoutS;
  SC.Backoff = Config.Backoff;
  SC.FirstJob = NextJob;
  CellScheduler Sched(Spec.Cells.size(), SC);
  const CellScheduler::Totals Before = Sched.totals();
  (void)Before;

  auto Drop = [&](int Fd, const char *Why) {
    auto It = Conns.find(Fd);
    if (It == Conns.end())
      return;
    if (It->second.HelloSeen) {
      Sched.workerLost(It->second.Id, now());
      counters().WorkersLost.add();
      std::fprintf(stderr, "[bor-svc] worker %s gone (%s)\n",
                   It->second.Name.c_str(), Why);
    }
    net::closeFd(Fd);
    Conns.erase(It);
  };

  auto TryLease = [&](int Fd, Conn &C) {
    double Now = now();
    if (auto Grant = Sched.assign(C.Id, Now)) {
      sendFrame(Fd, encodeLease(Grant->Job, Spec.Name, Grant->Cell,
                                Grant->Attempt, Config.HeartbeatS,
                                Config.CellTimeoutS, LeaseOptions));
      return;
    }
    double Next = Sched.nextEventTime();
    double WaitS = 0.25;
    if (Next > Now && Next - Now < WaitS)
      WaitS = std::max(0.05, Next - Now);
    sendFrame(Fd, encodeIdle(WaitS));
  };

  auto Handle = [&](int Fd, Conn &C, const std::string &Payload) {
    counters().FramesRecv.add();
    Frame F;
    std::string DErr;
    if (!decodeFrame(Payload, F, DErr)) {
      std::fprintf(stderr, "[bor-svc] bad frame from fd %d: %s\n", Fd,
                   DErr.c_str());
      Drop(Fd, "bad frame");
      return;
    }
    if (!C.HelloSeen && F.Type != FrameType::Hello) {
      Drop(Fd, "no hello");
      return;
    }
    switch (F.Type) {
    case FrameType::Hello:
      if (F.Proto != ProtocolVersion) {
        std::fprintf(stderr,
                     "[bor-svc] worker %s speaks '%s', need '%s'; dropping\n",
                     F.Worker.c_str(), F.Proto.c_str(), ProtocolVersion);
        net::closeFd(Fd);
        Conns.erase(Fd);
        return;
      }
      C.HelloSeen = true;
      C.Id = NextWorkerId++;
      C.Name = F.Worker;
      counters().WorkersConnected.add();
      break;
    case FrameType::Ready:
      TryLease(Fd, C);
      break;
    case FrameType::Heartbeat:
      if (Sched.heartbeat(F.Job, now()))
        counters().HeartbeatsRecv.add();
      break;
    case FrameType::Result: {
      std::optional<size_t> Cell = Sched.cellForJob(F.Job);
      if (F.Ok) {
        if (Sched.complete(F.Job) == CellScheduler::ResultDisposition::Accepted) {
          Results[*Cell] = std::move(F.Record);
          if (OnCellDone)
            OnCellDone(*Cell);
        }
      } else {
        if (Cell)
          std::fprintf(stderr, "[bor-svc] cell %zu failed on worker %s: %s\n",
                       *Cell, C.Name.c_str(), F.Error.c_str());
        Sched.fail(F.Job, now());
      }
      break;
    }
    default:
      // Lease/Idle/Shutdown only flow coordinator -> worker.
      Drop(Fd, "unexpected frame type");
      return;
    }
  };

  while (!Sched.finished()) {
    if (DrainFlag.load(std::memory_order_relaxed) && !Sched.draining()) {
      std::fprintf(stderr,
                   "[bor-svc] drain requested: no new leases, finishing "
                   "in-flight cells\n");
      Sched.drain();
    }
    if (Sched.draining() && Sched.leasesInFlight() == 0)
      Sched.abandonPending();

    // Degradation: nothing is connected, nothing is running, and nothing
    // more can be respawned — waiting would hang forever, so the
    // remaining cells are explicitly lost instead.
    if (SpawnedOnce && Conns.empty() && LiveWorkers.empty() &&
        RestartsLeft <= 0 && !Sched.finished()) {
      std::fprintf(stderr,
                   "[bor-svc] no workers left and restart budget spent; "
                   "abandoning pending cells\n");
      Sched.abandonPending();
      continue;
    }

    std::vector<pollfd> Fds;
    Fds.push_back({ListenFd, POLLIN, 0});
    for (auto &[Fd, C] : Conns)
      Fds.push_back({Fd, POLLIN, 0});

    int TimeoutMs = 100;
    double Next = Sched.nextEventTime();
    double Now = now();
    if (Next < Now + 0.1)
      TimeoutMs = std::max(10, static_cast<int>((Next - Now) * 1000));
    int R = poll(Fds.data(), Fds.size(), TimeoutMs);
    if (R < 0 && errno != EINTR) {
      std::fprintf(stderr, "[bor-svc] poll: %s\n", std::strerror(errno));
      break;
    }

    // One accept per readiness report: the listen fd is blocking, and
    // level-triggered poll will flag it again while the backlog is
    // non-empty.
    if (R > 0 && (Fds[0].revents & POLLIN)) {
      int Fd = accept(ListenFd, nullptr, nullptr);
      if (Fd >= 0) {
        setCloexec(Fd);
        Conns.emplace(Fd, Conn());
      }
    }

    for (size_t I = 1; I < Fds.size(); ++I) {
      if (!(Fds[I].revents & (POLLIN | POLLERR | POLLHUP)))
        continue;
      int Fd = Fds[I].fd;
      auto It = Conns.find(Fd);
      if (It == Conns.end())
        continue;
      char Buf[64 * 1024];
      ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
      if (N <= 0) {
        if (N < 0 && (errno == EINTR || errno == EAGAIN))
          continue;
        Drop(Fd, "connection closed");
        continue;
      }
      It->second.Frames.append(Buf, static_cast<size_t>(N));
      std::string Payload;
      while (Conns.count(Fd) && It->second.Frames.next(Payload))
        Handle(Fd, It->second, Payload);
      if (Conns.count(Fd) && It->second.Frames.bad())
        Drop(Fd, "corrupt frame stream");
    }

    for (const LeaseExpiry &E : Sched.expireDeadlines(now())) {
      const char *Why = E.HeartbeatMissed ? "missed heartbeats"
                                          : "cell wall-clock timeout";
      std::fprintf(stderr, "[bor-svc] lease %llu (cell %llu) expired: %s\n",
                   static_cast<unsigned long long>(E.Job),
                   static_cast<unsigned long long>(E.Cell), Why);
      // The worker is presumed wedged or dead; drop its connection so a
      // late result cannot race the re-lease (its job id is stale anyway).
      for (auto It = Conns.begin(); It != Conns.end(); ++It) {
        if (It->second.HelloSeen && It->second.Id == E.Worker) {
          Drop(It->first, Why);
          break;
        }
      }
    }

    reapAndRespawn(/*WantMore=*/!Sched.finished() && !Sched.draining());
  }

  NextJob = Sched.nextJob();

  const CellScheduler::Totals &T = Sched.totals();
  counters().Leases.add(T.Leases);
  counters().Retries.add(T.Retries);
  counters().Requeues.add(T.Requeues);
  counters().HeartbeatsMissed.add(T.HeartbeatExpiries);
  counters().CellsTimeout.add(T.TimeoutExpiries);
  counters().CellsLost.add(T.CellsLost);
  counters().ResultsStale.add(T.StaleResults);

  std::vector<exp::CellOutcome> Outcomes(Spec.Cells.size());
  for (size_t I = 0; I != Spec.Cells.size(); ++I) {
    Outcomes[I].S = Sched.cellState(I) == CellState::Done
                        ? exp::CellOutcome::State::Done
                        : exp::CellOutcome::State::Lost;
    Outcomes[I].Attempts = std::max(1u, Sched.cellAttempts(I));
  }
  return Outcomes;
}

void Coordinator::shutdown() {
  if (ListenFd < 0 && Conns.empty() && LiveWorkers.empty())
    return;

  for (auto &[Fd, C] : Conns) {
    sendFrame(Fd, encodeShutdown("sweep complete"));
    net::closeFd(Fd);
  }
  Conns.clear();
  net::closeFd(ListenFd);
  ListenFd = -1;

  // Give spawned workers a grace period to see the shutdown (or the
  // closed socket), then make sure nothing outlives us — an abandoned
  // cell may still be burning CPU in a worker that lost its lease.
  for (int Tries = 0; Tries != 40 && !LiveWorkers.empty(); ++Tries) {
    reapAndRespawn(/*WantMore=*/false);
    if (LiveWorkers.empty())
      break;
    usleep(50 * 1000);
  }
  for (pid_t Pid : LiveWorkers) {
    kill(Pid, SIGKILL);
    waitpid(Pid, nullptr, 0);
  }
  LiveWorkers.clear();
}

} // namespace svc
} // namespace bor
