//===- svc/Protocol.cpp - Coordinator/worker wire protocol ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "svc/Protocol.h"

#include "exp/Json.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

namespace bor {
namespace svc {

using exp::JsonObjectWriter;
using exp::JsonValue;
using exp::jsonEscape;
using exp::jsonNumber;
using exp::jsonParse;
using exp::Metric;
using exp::RunRecord;

const char *const ProtocolVersion = "bor-svc-1";

namespace {

std::string quoted(std::string_view S) {
  return "\"" + jsonEscape(S) + "\"";
}

/// Exact u64 as a JSON string literal (the DOM's numbers are doubles).
std::string u64Str(uint64_t V) { return quoted(jsonNumber(V)); }

bool parseU64Field(const JsonValue &V, uint64_t &Out) {
  if (V.isNumber()) {
    if (V.Num < 0)
      return false;
    Out = static_cast<uint64_t>(V.Num);
    return true;
  }
  if (!V.isString() || V.Str.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(V.Str.c_str(), &End, 10);
  if (errno == ERANGE || End == V.Str.c_str() || *End != '\0')
    return false;
  Out = N;
  return true;
}

bool fail(std::string &Err, const std::string &What) {
  Err = What;
  return false;
}

const JsonValue *need(const JsonValue &Obj, const char *Key,
                      std::string &Err) {
  const JsonValue *F = Obj.find(Key);
  if (!F)
    Err = std::string("frame missing field '") + Key + "'";
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// RunRecord codec
//===----------------------------------------------------------------------===//

std::string encodeRunRecord(const RunRecord &R) {
  std::string Params = "[";
  for (size_t I = 0; I != R.Params.size(); ++I) {
    if (I)
      Params += ",";
    Params += "[" + quoted(R.Params[I].first) + "," +
              quoted(R.Params[I].second) + "]";
  }
  Params += "]";

  std::string Metrics = "[";
  for (size_t I = 0; I != R.Metrics.size(); ++I) {
    if (I)
      Metrics += ",";
    const Metric &M = R.Metrics[I].second;
    Metrics += "[" + quoted(R.Metrics[I].first) + ",";
    switch (M.K) {
    case Metric::Kind::UInt:
      Metrics += "\"u\"," + u64Str(M.U);
      break;
    case Metric::Kind::Real:
      Metrics += "\"r\"," + jsonNumber(M.D);
      break;
    case Metric::Kind::Text:
      Metrics += "\"t\"," + quoted(M.S);
      break;
    }
    Metrics += "," + jsonNumber(static_cast<uint64_t>(
                         M.TablePrecision < 0 ? 0 : M.TablePrecision)) +
               "]";
  }
  Metrics += "]";

  JsonObjectWriter W;
  W.fieldRaw("params", Params);
  W.fieldRaw("metrics", Metrics);
  return W.finish();
}

namespace {

bool decodeRunRecordValue(const JsonValue &V, RunRecord &Out,
                          std::string &Err) {
  const JsonValue *Params = V.find("params");
  const JsonValue *Metrics = V.find("metrics");
  if (!Params || !Params->isArray() || !Metrics || !Metrics->isArray())
    return fail(Err, "record missing params/metrics arrays");
  for (const JsonValue &P : Params->Elems) {
    if (!P.isArray() || P.Elems.size() != 2 || !P.Elems[0].isString() ||
        !P.Elems[1].isString())
      return fail(Err, "malformed record param entry");
    Out.Params.emplace_back(P.Elems[0].Str, P.Elems[1].Str);
  }
  for (const JsonValue &M : Metrics->Elems) {
    if (!M.isArray() || M.Elems.size() != 4 || !M.Elems[0].isString() ||
        !M.Elems[1].isString() || !M.Elems[3].isNumber())
      return fail(Err, "malformed record metric entry");
    const std::string &Kind = M.Elems[1].Str;
    Metric Val;
    if (Kind == "u") {
      Val.K = Metric::Kind::UInt;
      if (!parseU64Field(M.Elems[2], Val.U))
        return fail(Err, "malformed u64 metric value");
    } else if (Kind == "r") {
      if (!M.Elems[2].isNumber() && !M.Elems[2].isNull())
        return fail(Err, "malformed real metric value");
      Val.K = Metric::Kind::Real;
      // jsonNumber renders non-finite reals as null; restore a NaN so the
      // re-rendered record prints null again, byte-identically.
      Val.D = M.Elems[2].isNull()
                  ? std::numeric_limits<double>::quiet_NaN()
                  : M.Elems[2].Num;
    } else if (Kind == "t") {
      if (!M.Elems[2].isString())
        return fail(Err, "malformed text metric value");
      Val.K = Metric::Kind::Text;
      Val.S = M.Elems[2].Str;
    } else {
      return fail(Err, "unknown metric kind '" + Kind + "'");
    }
    Val.TablePrecision = static_cast<int>(M.Elems[3].Num);
    Out.Metrics.emplace_back(M.Elems[0].Str, std::move(Val));
  }
  return true;
}

} // namespace

bool decodeRunRecord(const std::string &Json, RunRecord &Out,
                     std::string &Err) {
  JsonValue V;
  if (!jsonParse(Json, V, Err))
    return false;
  if (!V.isObject())
    return fail(Err, "record is not a JSON object");
  Out = RunRecord();
  return decodeRunRecordValue(V, Out, Err);
}

//===----------------------------------------------------------------------===//
// ExperimentOptions codec
//===----------------------------------------------------------------------===//

std::string encodeOptions(const exp::ExperimentOptions &Opt) {
  JsonObjectWriter W;
  W.fieldRaw("scale", u64Str(Opt.Scale));
  W.fieldRaw("sample", Opt.Sample ? "true" : "false");
  if (Opt.Sample) {
    W.fieldRaw("period", u64Str(Opt.Plan.PeriodInsts));
    W.fieldRaw("warm", u64Str(Opt.Plan.WarmupInsts));
    W.fieldRaw("measure", u64Str(Opt.Plan.MeasureInsts));
    W.fieldRaw("preroll", u64Str(Opt.Plan.DetailedWarmupInsts));
  }
  return W.finish();
}

bool decodeOptions(const std::string &Json, exp::ExperimentOptions &Out,
                   std::string &Err) {
  JsonValue V;
  if (!jsonParse(Json, V, Err))
    return false;
  if (!V.isObject())
    return fail(Err, "options is not a JSON object");
  Out = exp::ExperimentOptions();
  const JsonValue *Scale = need(V, "scale", Err);
  const JsonValue *Sample = need(V, "sample", Err);
  if (!Scale || !Sample)
    return false;
  if (!parseU64Field(*Scale, Out.Scale) || Out.Scale == 0)
    return fail(Err, "bad options scale");
  if (!Sample->isBool())
    return fail(Err, "bad options sample flag");
  Out.Sample = Sample->BoolVal;
  if (Out.Sample) {
    const JsonValue *Period = need(V, "period", Err);
    const JsonValue *Warm = need(V, "warm", Err);
    const JsonValue *Measure = need(V, "measure", Err);
    const JsonValue *Preroll = need(V, "preroll", Err);
    if (!Period || !Warm || !Measure || !Preroll)
      return false;
    if (!parseU64Field(*Period, Out.Plan.PeriodInsts) ||
        !parseU64Field(*Warm, Out.Plan.WarmupInsts) ||
        !parseU64Field(*Measure, Out.Plan.MeasureInsts) ||
        !parseU64Field(*Preroll, Out.Plan.DetailedWarmupInsts))
      return fail(Err, "bad sampling plan field");
    if (!Out.Plan.valid())
      return fail(Err, "invalid sampling plan in options");
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Frames
//===----------------------------------------------------------------------===//

std::string encodeHello(const std::string &Worker, uint64_t Pid) {
  JsonObjectWriter W;
  W.field("t", "hello");
  W.field("worker", Worker);
  W.fieldRaw("pid", jsonNumber(Pid));
  W.field("proto", ProtocolVersion);
  return W.finish();
}

std::string encodeReady() {
  JsonObjectWriter W;
  W.field("t", "ready");
  return W.finish();
}

std::string encodeHeartbeat(uint64_t Job) {
  JsonObjectWriter W;
  W.field("t", "heartbeat");
  W.fieldRaw("job", u64Str(Job));
  return W.finish();
}

std::string encodeResultOk(uint64_t Job, const RunRecord &Record) {
  JsonObjectWriter W;
  W.field("t", "result");
  W.fieldRaw("job", u64Str(Job));
  W.fieldRaw("ok", "true");
  W.fieldRaw("record", encodeRunRecord(Record));
  return W.finish();
}

std::string encodeResultError(uint64_t Job, const std::string &Error) {
  JsonObjectWriter W;
  W.field("t", "result");
  W.fieldRaw("job", u64Str(Job));
  W.fieldRaw("ok", "false");
  W.field("error", Error);
  return W.finish();
}

std::string encodeLease(uint64_t Job, const std::string &Experiment,
                        uint64_t Cell, uint64_t Attempt, double HeartbeatS,
                        double TimeoutS, const std::string &OptionsJson) {
  JsonObjectWriter W;
  W.field("t", "lease");
  W.fieldRaw("job", u64Str(Job));
  W.field("experiment", Experiment);
  W.fieldRaw("cell", u64Str(Cell));
  W.fieldRaw("attempt", u64Str(Attempt));
  W.fieldRaw("heartbeat_s", jsonNumber(HeartbeatS));
  W.fieldRaw("timeout_s", jsonNumber(TimeoutS));
  W.fieldRaw("options", OptionsJson);
  return W.finish();
}

std::string encodeIdle(double WaitS) {
  JsonObjectWriter W;
  W.field("t", "idle");
  W.fieldRaw("wait_s", jsonNumber(WaitS));
  return W.finish();
}

std::string encodeShutdown(const std::string &Reason) {
  JsonObjectWriter W;
  W.field("t", "shutdown");
  W.field("reason", Reason);
  return W.finish();
}

namespace {

/// Re-renders a parsed JSON value (used to carry lease options verbatim).
std::string renderValue(const JsonValue &V) {
  switch (V.K) {
  case JsonValue::Kind::Null:
    return "null";
  case JsonValue::Kind::Bool:
    return V.BoolVal ? "true" : "false";
  case JsonValue::Kind::Number:
    return jsonNumber(V.Num);
  case JsonValue::Kind::String:
    return quoted(V.Str);
  case JsonValue::Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I != V.Elems.size(); ++I) {
      if (I)
        Out += ",";
      Out += renderValue(V.Elems[I]);
    }
    return Out + "]";
  }
  case JsonValue::Kind::Object: {
    std::string Out = "{";
    for (size_t I = 0; I != V.Fields.size(); ++I) {
      if (I)
        Out += ",";
      Out += quoted(V.Fields[I].first) + ":" + renderValue(V.Fields[I].second);
    }
    return Out + "}";
  }
  }
  return "null";
}

} // namespace

bool decodeFrame(const std::string &Payload, Frame &Out, std::string &Err) {
  JsonValue V;
  if (!jsonParse(Payload, V, Err))
    return false;
  if (!V.isObject())
    return fail(Err, "frame is not a JSON object");
  const JsonValue *T = need(V, "t", Err);
  if (!T)
    return false;
  if (!T->isString())
    return fail(Err, "frame type is not a string");

  Out = Frame();
  const std::string &Type = T->Str;
  if (Type == "hello") {
    Out.Type = FrameType::Hello;
    const JsonValue *Worker = need(V, "worker", Err);
    const JsonValue *Proto = need(V, "proto", Err);
    if (!Worker || !Proto)
      return false;
    if (!Worker->isString() || !Proto->isString())
      return fail(Err, "malformed hello frame");
    Out.Worker = Worker->Str;
    Out.Proto = Proto->Str;
    if (const JsonValue *Pid = V.find("pid"))
      if (Pid->isNumber() && Pid->Num >= 0)
        Out.Pid = static_cast<uint64_t>(Pid->Num);
    return true;
  }
  if (Type == "ready") {
    Out.Type = FrameType::Ready;
    return true;
  }
  if (Type == "heartbeat") {
    Out.Type = FrameType::Heartbeat;
    const JsonValue *Job = need(V, "job", Err);
    if (!Job || !parseU64Field(*Job, Out.Job))
      return fail(Err, "malformed heartbeat frame");
    return true;
  }
  if (Type == "result") {
    Out.Type = FrameType::Result;
    const JsonValue *Job = need(V, "job", Err);
    const JsonValue *Ok = need(V, "ok", Err);
    if (!Job || !Ok)
      return false;
    if (!parseU64Field(*Job, Out.Job) || !Ok->isBool())
      return fail(Err, "malformed result frame");
    Out.Ok = Ok->BoolVal;
    if (Out.Ok) {
      const JsonValue *Record = need(V, "record", Err);
      if (!Record)
        return false;
      if (!Record->isObject() ||
          !decodeRunRecordValue(*Record, Out.Record, Err))
        return false;
    } else if (const JsonValue *E = V.find("error")) {
      if (E->isString())
        Out.Error = E->Str;
    }
    return true;
  }
  if (Type == "lease") {
    Out.Type = FrameType::Lease;
    const JsonValue *Job = need(V, "job", Err);
    const JsonValue *Experiment = need(V, "experiment", Err);
    const JsonValue *Cell = need(V, "cell", Err);
    const JsonValue *Attempt = need(V, "attempt", Err);
    const JsonValue *Hb = need(V, "heartbeat_s", Err);
    const JsonValue *To = need(V, "timeout_s", Err);
    const JsonValue *Options = need(V, "options", Err);
    if (!Job || !Experiment || !Cell || !Attempt || !Hb || !To || !Options)
      return false;
    if (!parseU64Field(*Job, Out.Job) || !Experiment->isString() ||
        !parseU64Field(*Cell, Out.Cell) ||
        !parseU64Field(*Attempt, Out.Attempt) || !Hb->isNumber() ||
        !To->isNumber() || !Options->isObject())
      return fail(Err, "malformed lease frame");
    Out.Experiment = Experiment->Str;
    Out.HeartbeatS = Hb->Num;
    Out.TimeoutS = To->Num;
    Out.OptionsJson = renderValue(*Options);
    return true;
  }
  if (Type == "idle") {
    Out.Type = FrameType::Idle;
    const JsonValue *Wait = need(V, "wait_s", Err);
    if (!Wait || !Wait->isNumber())
      return fail(Err, "malformed idle frame");
    Out.WaitS = Wait->Num;
    return true;
  }
  if (Type == "shutdown") {
    Out.Type = FrameType::Shutdown;
    if (const JsonValue *Reason = V.find("reason"))
      if (Reason->isString())
        Out.Reason = Reason->Str;
    return true;
  }
  return fail(Err, "unknown frame type '" + Type + "'");
}

} // namespace svc
} // namespace bor
