//===- svc/FaultSpec.h - Deterministic fault injection for the service ---===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The --fault-spec grammar and its worker-side interpretation. Faults
/// are deterministic — keyed to the ordinal of the lease a worker is
/// executing, never to wall clock — so every failure a test injects
/// reproduces exactly. Grammar:
///
///   spec    := clause ((';' | ',') clause)*
///   clause  := [target ':'] fault '=' N
///   target  := 'w' INT        apply only to worker id INT
///            | 'all'          apply to every worker (the default)
///   fault   := 'crash-at-cell'     _exit(86) on lease number N, before
///                                  reporting any result
///            | 'stall-heartbeat'   on lease number N: execute the cell
///                                  but send no heartbeats and no result,
///                                  then drop the connection and exit —
///                                  a stalled-then-dead worker
///            | 'drop-conn-after'   close the connection and exit after
///                                  completing N leases — a network
///                                  partition plus process death
///
/// N is 1-based: "crash-at-cell=1" dies on the first lease. Respawned
/// workers get fresh ids, so a targeted fault fires once; "all:" faults
/// apply to every incarnation.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SVC_FAULTSPEC_H
#define BOR_SVC_FAULTSPEC_H

#include <cstdint>
#include <string>
#include <vector>

namespace bor {
namespace svc {

enum class FaultKind { CrashAtCell, StallHeartbeat, DropConnAfter };

/// One parsed clause.
struct FaultClause {
  int WorkerId = -1; ///< -1 = all workers
  FaultKind Kind = FaultKind::CrashAtCell;
  uint64_t N = 0; ///< 1-based lease ordinal
};

/// The full parsed --fault-spec.
struct FaultSpec {
  std::vector<FaultClause> Clauses;

  /// Parses \p Text. Returns false with \p Err set on a malformed
  /// clause. An empty string parses to an empty (fault-free) spec.
  static bool parse(const std::string &Text, FaultSpec &Out,
                    std::string &Err);

  /// Re-renders the spec in canonical form (';'-separated), for
  /// forwarding to spawned workers.
  std::string render() const;

  bool empty() const { return Clauses.empty(); }
};

/// The faults that apply to one worker incarnation; 0 means "off".
struct FaultPlan {
  uint64_t CrashAtCell = 0;
  uint64_t StallHeartbeat = 0;
  uint64_t DropConnAfter = 0;

  bool any() const {
    return CrashAtCell || StallHeartbeat || DropConnAfter;
  }
};

/// Resolves \p Spec for worker \p WorkerId (clauses targeting another id
/// are dropped; 'all' clauses always apply; when several clauses set the
/// same fault, the last one wins).
FaultPlan planForWorker(const FaultSpec &Spec, int WorkerId);

} // namespace svc
} // namespace bor

#endif // BOR_SVC_FAULTSPEC_H
