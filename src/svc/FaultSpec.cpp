//===- svc/FaultSpec.cpp - Deterministic fault injection for the service -===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "svc/FaultSpec.h"

#include <cerrno>
#include <cstdlib>

namespace bor {
namespace svc {

namespace {

const char *faultName(FaultKind K) {
  switch (K) {
  case FaultKind::CrashAtCell:
    return "crash-at-cell";
  case FaultKind::StallHeartbeat:
    return "stall-heartbeat";
  case FaultKind::DropConnAfter:
    return "drop-conn-after";
  }
  return "?";
}

bool parseClause(const std::string &Text, FaultClause &Out,
                 std::string &Err) {
  std::string Body = Text;
  Out.WorkerId = -1;
  size_t Colon = Body.find(':');
  if (Colon != std::string::npos) {
    std::string Target = Body.substr(0, Colon);
    Body = Body.substr(Colon + 1);
    if (Target == "all") {
      Out.WorkerId = -1;
    } else if (Target.size() >= 2 && Target[0] == 'w') {
      errno = 0;
      char *End = nullptr;
      long Id = std::strtol(Target.c_str() + 1, &End, 10);
      if (errno == ERANGE || *End != '\0' || Id < 0) {
        Err = "bad fault target '" + Target + "' (want wN or all)";
        return false;
      }
      Out.WorkerId = static_cast<int>(Id);
    } else {
      Err = "bad fault target '" + Target + "' (want wN or all)";
      return false;
    }
  }
  size_t Eq = Body.find('=');
  if (Eq == std::string::npos) {
    Err = "fault clause '" + Text + "' has no '=N'";
    return false;
  }
  std::string Name = Body.substr(0, Eq);
  std::string Num = Body.substr(Eq + 1);
  if (Name == "crash-at-cell")
    Out.Kind = FaultKind::CrashAtCell;
  else if (Name == "stall-heartbeat")
    Out.Kind = FaultKind::StallHeartbeat;
  else if (Name == "drop-conn-after")
    Out.Kind = FaultKind::DropConnAfter;
  else {
    Err = "unknown fault '" + Name +
          "' (want crash-at-cell, stall-heartbeat or drop-conn-after)";
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long N = std::strtoull(Num.c_str(), &End, 10);
  if (Num.empty() || errno == ERANGE || *End != '\0' || N == 0) {
    Err = "fault '" + Name + "' needs a whole number >= 1, got '" + Num +
          "'";
    return false;
  }
  Out.N = N;
  return true;
}

} // namespace

bool FaultSpec::parse(const std::string &Text, FaultSpec &Out,
                      std::string &Err) {
  Out.Clauses.clear();
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find_first_of(";,", Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Clause = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Clause.empty())
      continue;
    FaultClause C;
    if (!parseClause(Clause, C, Err))
      return false;
    Out.Clauses.push_back(C);
  }
  return true;
}

std::string FaultSpec::render() const {
  std::string Out;
  for (const FaultClause &C : Clauses) {
    if (!Out.empty())
      Out += ";";
    if (C.WorkerId >= 0)
      Out += "w" + std::to_string(C.WorkerId) + ":";
    Out += std::string(faultName(C.Kind)) + "=" + std::to_string(C.N);
  }
  return Out;
}

FaultPlan planForWorker(const FaultSpec &Spec, int WorkerId) {
  FaultPlan Plan;
  for (const FaultClause &C : Spec.Clauses) {
    if (C.WorkerId >= 0 && C.WorkerId != WorkerId)
      continue;
    switch (C.Kind) {
    case FaultKind::CrashAtCell:
      Plan.CrashAtCell = C.N;
      break;
    case FaultKind::StallHeartbeat:
      Plan.StallHeartbeat = C.N;
      break;
    case FaultKind::DropConnAfter:
      Plan.DropConnAfter = C.N;
      break;
    }
  }
  return Plan;
}

} // namespace svc
} // namespace bor
