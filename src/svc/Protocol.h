//===- svc/Protocol.h - Coordinator/worker wire protocol -----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sweep service's wire protocol: length-prefixed JSON frames (see
/// support/Socket.h FrameBuffer for the framing) carrying one small
/// object each. Frame vocabulary, with direction:
///
///   worker -> coordinator
///     hello      {t, worker, pid, proto}         once, after connect
///     ready      {t}                             "lease me a cell"
///     heartbeat  {t, job}                        while executing a lease
///     result     {t, job, ok, record | error}    lease finished
///
///   coordinator -> worker
///     lease      {t, job, experiment, cell, attempt,
///                 heartbeat_s, timeout_s, options}
///     idle       {t, wait_s}                     nothing leasable now
///     shutdown   {t, reason}                     drain and exit
///
/// Every u64 that must survive the double-typed JSON parser exactly
/// (checksums, sampling-plan instruction counts) travels as a decimal
/// string. RunRecord metrics carry their Kind and table precision so a
/// record round-tripped through the wire re-renders byte-identically —
/// the service's headline determinism guarantee depends on this codec
/// being lossless.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SVC_PROTOCOL_H
#define BOR_SVC_PROTOCOL_H

#include "exp/Experiment.h"
#include "exp/RunRecord.h"

#include <cstdint>
#include <optional>
#include <string>

namespace bor {
namespace svc {

/// Protocol revision; coordinator and worker must agree exactly.
extern const char *const ProtocolVersion;

enum class FrameType {
  Hello,
  Ready,
  Heartbeat,
  Result,
  Lease,
  Idle,
  Shutdown,
  Invalid
};

/// One decoded frame; only the fields of the matching type are
/// meaningful.
struct Frame {
  FrameType Type = FrameType::Invalid;

  // hello
  std::string Worker; ///< display name ("w0", "host-1234", ...)
  uint64_t Pid = 0;
  std::string Proto;

  // heartbeat / result / lease
  uint64_t Job = 0;

  // result
  bool Ok = false;
  exp::RunRecord Record;
  std::string Error;

  // lease
  std::string Experiment;
  uint64_t Cell = 0;
  uint64_t Attempt = 1;
  double HeartbeatS = 0;
  double TimeoutS = 0;
  std::string OptionsJson; ///< re-encoded verbatim for spec cache keys

  // idle
  double WaitS = 0;

  // shutdown
  std::string Reason;
};

//===----------------------------------------------------------------------===//
// Frame encoding (each returns the JSON payload, not the framed bytes)
//===----------------------------------------------------------------------===//

std::string encodeHello(const std::string &Worker, uint64_t Pid);
std::string encodeReady();
std::string encodeHeartbeat(uint64_t Job);
std::string encodeResultOk(uint64_t Job, const exp::RunRecord &Record);
std::string encodeResultError(uint64_t Job, const std::string &Error);
std::string encodeLease(uint64_t Job, const std::string &Experiment,
                        uint64_t Cell, uint64_t Attempt, double HeartbeatS,
                        double TimeoutS, const std::string &OptionsJson);
std::string encodeIdle(double WaitS);
std::string encodeShutdown(const std::string &Reason);

/// Decodes one frame payload. Returns false with \p Err set on malformed
/// JSON, an unknown type, or missing fields.
bool decodeFrame(const std::string &Payload, Frame &Out, std::string &Err);

//===----------------------------------------------------------------------===//
// RunRecord codec
//===----------------------------------------------------------------------===//

/// {"params":[["k","v"],...],"metrics":[[name,kind,value,precision],...]}
/// where kind is "u" (value: decimal string), "r" (value: JSON number) or
/// "t" (value: string).
std::string encodeRunRecord(const exp::RunRecord &R);
bool decodeRunRecord(const std::string &Json, exp::RunRecord &Out,
                     std::string &Err);

//===----------------------------------------------------------------------===//
// ExperimentOptions codec (the grid-shaping subset a lease must carry)
//===----------------------------------------------------------------------===//

/// Serializes the option fields that change a spec's cells or results:
/// scale and the sampling plan. Telemetry/checkpoint knobs stay
/// process-local and are not shipped.
std::string encodeOptions(const exp::ExperimentOptions &Opt);
bool decodeOptions(const std::string &Json, exp::ExperimentOptions &Out,
                   std::string &Err);

} // namespace svc
} // namespace bor

#endif // BOR_SVC_PROTOCOL_H
