//===- svc/Scheduler.h - Cell lease table and retry queue ----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator's brain, factored out of its socket loop as a pure
/// state machine so every failure path has a deterministic unit test.
/// One CellScheduler tracks one experiment grid: which cells are pending
/// (with a backoff not-before time), which are leased (to which worker,
/// with heartbeat and wall-clock deadlines), and which are done or lost.
///
/// Time is a plain double (seconds, any monotonic origin) passed into
/// every event — the scheduler never reads a clock, so tests drive it
/// with synthetic timestamps and no sleeps. Job ids are unique per lease
/// attempt; a result or heartbeat quoting an expired job id is Stale and
/// ignored, which is how results from workers presumed dead are kept from
/// corrupting a re-leased cell.
///
/// Failure handling: a missed heartbeat deadline, an expired wall-clock
/// deadline, a worker-reported error, or a lost worker all re-queue the
/// cell under support/Retry's capped exponential backoff. Once the retry
/// budget is exhausted the cell degrades to Lost — the sweep completes
/// with the cell explicitly marked, never hangs.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SVC_SCHEDULER_H
#define BOR_SVC_SCHEDULER_H

#include "support/Retry.h"

#include <cstdint>
#include <optional>
#include <vector>

namespace bor {
namespace svc {

struct SchedulerConfig {
  /// Maximum silence between heartbeats before a lease is presumed dead:
  /// deadline = last heartbeat + HeartbeatS * MissedHeartbeats.
  double HeartbeatS = 2.0;
  unsigned MissedHeartbeats = 3;

  /// Per-lease wall-clock limit (0 = unlimited). Shares the value of the
  /// local runner's --cell-timeout.
  double CellTimeoutS = 0;

  /// Re-queue backoff and per-cell attempt budget.
  support::BackoffPolicy Backoff;

  /// First job id this scheduler hands out. The coordinator threads its
  /// running counter through here so job ids never repeat across grids —
  /// a straggler's result from a previous grid must decode as Stale, not
  /// collide with a fresh lease.
  uint64_t FirstJob = 1;
};

enum class CellState { Pending, Leased, Done, Lost };

/// What a granted lease tells the transport layer to send.
struct LeaseGrant {
  uint64_t Job = 0;
  uint64_t Cell = 0;
  unsigned Attempt = 1; ///< 1-based
};

/// Why a lease expired (for counters).
struct LeaseExpiry {
  uint64_t Job = 0;
  uint64_t Cell = 0;
  uint64_t Worker = 0;
  bool HeartbeatMissed = false; ///< false = wall-clock timeout
};

class CellScheduler {
public:
  CellScheduler(size_t NumCells, const SchedulerConfig &Config);

  /// Leases the lowest-indexed ready cell to \p Worker at time \p Now.
  /// Returns nullopt when nothing is leasable (drained, all leased/done,
  /// or every pending cell still backing off).
  std::optional<LeaseGrant> assign(uint64_t Worker, double Now);

  /// Records a heartbeat for \p Job. Returns false when the job id is
  /// unknown (expired or bogus).
  bool heartbeat(uint64_t Job, double Now);

  enum class ResultDisposition { Accepted, Stale };

  /// A successful result for \p Job. Accepted moves the cell to Done and
  /// resets its retry ladder; Stale means the lease had already expired —
  /// discard the payload.
  ResultDisposition complete(uint64_t Job);

  /// A worker-reported failure for \p Job: re-queue (or lose) the cell.
  ResultDisposition fail(uint64_t Job, double Now);

  /// Every lease held by \p Worker is re-queued (connection lost).
  /// Returns the number of cells re-queued.
  size_t workerLost(uint64_t Worker, double Now);

  /// Expires leases whose heartbeat or wall-clock deadline passed,
  /// re-queueing their cells. Returns the expiries for counters; the
  /// caller should drop the named workers' connections.
  std::vector<LeaseExpiry> expireDeadlines(double Now);

  /// Stops granting new leases; in-flight leases may still complete
  /// (the SIGTERM drain path).
  void drain() { Draining = true; }
  bool draining() const { return Draining; }

  /// Marks every non-done cell Lost — the no-workers-left degradation.
  void abandonPending();

  /// True when every cell is Done or Lost and nothing is leased.
  bool finished() const;

  /// The earliest future instant the scheduler needs to act (a lease
  /// deadline or a backoff expiry), or +inf when there is none.
  double nextEventTime() const;

  CellState cellState(size_t Cell) const { return Cells[Cell].State; }
  unsigned cellAttempts(size_t Cell) const { return Cells[Cell].Attempts; }
  size_t numCells() const { return Cells.size(); }

  /// The cell a live lease is executing, or nullopt for an expired or
  /// unknown job id. The transport layer maps an incoming result frame's
  /// job to its cell before accepting the payload.
  std::optional<size_t> cellForJob(uint64_t Job) const;

  /// One past the last job id granted (the next grid's FirstJob).
  uint64_t nextJob() const { return NextJob; }

  /// Leases currently outstanding (the drain loop waits for zero).
  size_t leasesInFlight() const { return Leases.size(); }

  struct Totals {
    uint64_t Leases = 0;       ///< leases granted
    uint64_t Retries = 0;      ///< leases granted with attempt > 1
    uint64_t Requeues = 0;     ///< cells returned to the queue
    uint64_t HeartbeatExpiries = 0;
    uint64_t TimeoutExpiries = 0;
    uint64_t StaleResults = 0;
    size_t CellsDone = 0;
    size_t CellsLost = 0;
  };
  const Totals &totals() const { return Stats; }

private:
  struct Cell {
    CellState State = CellState::Pending;
    unsigned Attempts = 0; ///< leases granted for this cell
    support::RetryState Retry;
  };

  struct Lease {
    uint64_t Job = 0;
    size_t Cell = 0;
    uint64_t Worker = 0;
    double HeartbeatDeadline = 0;
    double WallDeadline = 0; ///< 0 = none
  };

  /// Re-queues (or loses) \p CellIndex after a failed lease.
  void requeue(size_t CellIndex, double Now);
  const Lease *findLease(uint64_t Job) const;
  void eraseLease(uint64_t Job);

  SchedulerConfig Config;
  std::vector<Cell> Cells;
  std::vector<Lease> Leases; ///< small; linear scans are fine
  uint64_t NextJob = 1;
  bool Draining = false;
  Totals Stats;
};

} // namespace svc
} // namespace bor

#endif // BOR_SVC_SCHEDULER_H
