//===- svc/Worker.h - The sweep service's worker loop --------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The loop behind `bor-bench --worker ADDR`: connect to a coordinator,
/// introduce ourselves (hello), then ready/lease/result until told to
/// shut down. Cells execute by re-instantiating the named experiment
/// from this process's ExperimentRegistry — the same binary runs both
/// sides, so only (experiment, options JSON, cell index) travels.
///
/// Specs are cached per (experiment, options) with their serial Setup
/// stage run exactly once, mirroring the in-process runner. While a cell
/// executes, a heartbeat thread pings the coordinator every lease
/// interval so slow cells are distinguishable from dead workers.
///
/// Fault injection (svc/FaultSpec.h) hooks in here, keyed to the 1-based
/// ordinal of the lease being processed, so chaos tests reproduce
/// exactly. An injected death exits with code 86 — recognizably
/// deliberate in test logs.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SVC_WORKER_H
#define BOR_SVC_WORKER_H

#include "svc/FaultSpec.h"

#include <string>

namespace bor {
namespace svc {

/// Exit code of an injected fault death (never a real failure path).
constexpr int FaultExitCode = 86;

struct WorkerConfig {
  std::string Host = "127.0.0.1";
  int Port = 0;
  int WorkerId = 0; ///< names the worker ("w<id>") and keys fault clauses
  FaultPlan Faults;
  double ConnectTimeoutS = 10.0;
};

/// Runs the worker loop until the coordinator says shutdown (returns 0)
/// or the connection fails (returns 1). The caller must have registered
/// the experiments first.
int runWorker(const WorkerConfig &Config);

} // namespace svc
} // namespace bor

#endif // BOR_SVC_WORKER_H
