//===- svc/Scheduler.cpp - Cell lease table and retry queue --------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "svc/Scheduler.h"

#include <algorithm>
#include <limits>

namespace bor {
namespace svc {

static constexpr double Inf = std::numeric_limits<double>::infinity();

CellScheduler::CellScheduler(size_t NumCells, const SchedulerConfig &Config)
    : Config(Config), Cells(NumCells), NextJob(Config.FirstJob) {
  for (Cell &C : Cells)
    C.Retry = support::RetryState(Config.Backoff);
}

std::optional<size_t> CellScheduler::cellForJob(uint64_t Job) const {
  if (const Lease *L = findLease(Job))
    return L->Cell;
  return std::nullopt;
}

std::optional<LeaseGrant> CellScheduler::assign(uint64_t Worker,
                                                double Now) {
  if (Draining)
    return std::nullopt;
  for (size_t I = 0; I != Cells.size(); ++I) {
    Cell &C = Cells[I];
    if (C.State != CellState::Pending || !C.Retry.ready(Now))
      continue;
    C.State = CellState::Leased;
    C.Retry.beginAttempt();
    ++C.Attempts;
    Lease L;
    L.Job = NextJob++;
    L.Cell = I;
    L.Worker = Worker;
    L.HeartbeatDeadline =
        Now + Config.HeartbeatS * Config.MissedHeartbeats;
    L.WallDeadline = Config.CellTimeoutS > 0 ? Now + Config.CellTimeoutS : 0;
    Leases.push_back(L);
    ++Stats.Leases;
    if (C.Attempts > 1)
      ++Stats.Retries;
    return LeaseGrant{L.Job, I, C.Attempts};
  }
  return std::nullopt;
}

bool CellScheduler::heartbeat(uint64_t Job, double Now) {
  for (Lease &L : Leases) {
    if (L.Job != Job)
      continue;
    L.HeartbeatDeadline =
        Now + Config.HeartbeatS * Config.MissedHeartbeats;
    return true;
  }
  return false;
}

const CellScheduler::Lease *CellScheduler::findLease(uint64_t Job) const {
  for (const Lease &L : Leases)
    if (L.Job == Job)
      return &L;
  return nullptr;
}

void CellScheduler::eraseLease(uint64_t Job) {
  Leases.erase(std::remove_if(Leases.begin(), Leases.end(),
                              [Job](const Lease &L) { return L.Job == Job; }),
               Leases.end());
}

CellScheduler::ResultDisposition CellScheduler::complete(uint64_t Job) {
  const Lease *L = findLease(Job);
  if (!L) {
    ++Stats.StaleResults;
    return ResultDisposition::Stale;
  }
  Cell &C = Cells[L->Cell];
  C.State = CellState::Done;
  C.Retry.reset();
  ++Stats.CellsDone;
  eraseLease(Job);
  return ResultDisposition::Accepted;
}

CellScheduler::ResultDisposition CellScheduler::fail(uint64_t Job,
                                                     double Now) {
  const Lease *L = findLease(Job);
  if (!L) {
    ++Stats.StaleResults;
    return ResultDisposition::Stale;
  }
  size_t CellIndex = L->Cell;
  eraseLease(Job);
  requeue(CellIndex, Now);
  return ResultDisposition::Accepted;
}

void CellScheduler::requeue(size_t CellIndex, double Now) {
  Cell &C = Cells[CellIndex];
  if (C.Retry.exhausted()) {
    C.State = CellState::Lost;
    ++Stats.CellsLost;
    return;
  }
  C.Retry.scheduleRetry(Now);
  C.State = CellState::Pending;
  ++Stats.Requeues;
}

size_t CellScheduler::workerLost(uint64_t Worker, double Now) {
  std::vector<size_t> Requeued;
  Leases.erase(std::remove_if(Leases.begin(), Leases.end(),
                              [&](const Lease &L) {
                                if (L.Worker != Worker)
                                  return false;
                                Requeued.push_back(L.Cell);
                                return true;
                              }),
               Leases.end());
  for (size_t CellIndex : Requeued)
    requeue(CellIndex, Now);
  return Requeued.size();
}

std::vector<LeaseExpiry> CellScheduler::expireDeadlines(double Now) {
  std::vector<LeaseExpiry> Expired;
  Leases.erase(
      std::remove_if(Leases.begin(), Leases.end(),
                     [&](const Lease &L) {
                       bool HbMissed = Now >= L.HeartbeatDeadline;
                       bool TimedOut =
                           L.WallDeadline > 0 && Now >= L.WallDeadline;
                       if (!HbMissed && !TimedOut)
                         return false;
                       // Wall-clock expiry wins the label when both
                       // tripped: the cell ran its full budget.
                       Expired.push_back(
                           {L.Job, L.Cell, L.Worker, !TimedOut});
                       return true;
                     }),
      Leases.end());
  for (const LeaseExpiry &E : Expired) {
    if (E.HeartbeatMissed)
      ++Stats.HeartbeatExpiries;
    else
      ++Stats.TimeoutExpiries;
    requeue(E.Cell, Now);
  }
  return Expired;
}

void CellScheduler::abandonPending() {
  for (Cell &C : Cells) {
    if (C.State == CellState::Pending || C.State == CellState::Leased) {
      C.State = CellState::Lost;
      ++Stats.CellsLost;
    }
  }
  Leases.clear();
}

bool CellScheduler::finished() const {
  if (!Leases.empty())
    return false;
  for (const Cell &C : Cells)
    if (C.State == CellState::Pending || C.State == CellState::Leased)
      return false;
  return true;
}

double CellScheduler::nextEventTime() const {
  double Next = Inf;
  for (const Lease &L : Leases) {
    Next = std::min(Next, L.HeartbeatDeadline);
    if (L.WallDeadline > 0)
      Next = std::min(Next, L.WallDeadline);
  }
  for (const Cell &C : Cells)
    if (C.State == CellState::Pending && C.Retry.readyAt() > 0)
      Next = std::min(Next, C.Retry.readyAt());
  return Next;
}

} // namespace svc
} // namespace bor
