//===- svc/Coordinator.h - The sweep service's serving side --------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator behind `bor-bench --serve ADDR`: a poll()-based TCP
/// front-end that leases grid cells to `bor-bench --worker` processes and
/// merges their results into the same spec-order record vector the
/// in-process runner fills — so a distributed sweep's table and JSON are
/// byte-identical to a `--threads N` run of the same grid.
///
/// The Coordinator owns everything that outlives one grid: the listening
/// socket, worker connections, spawned worker processes (fork/exec of
/// this binary with --worker, via --spawn-workers) and their respawn
/// budget, and the monotonically increasing job-id counter. ServeExecutor
/// adapts it to the exp::CellExecutor seam: each execute() call builds a
/// CellScheduler for the grid and runs the event loop until every cell is
/// Done or Lost.
///
/// Failure model (decisions live in svc/Scheduler.h; this file is the
/// transport): a connection EOF, a poisoned frame stream, a missed
/// heartbeat deadline or an expired wall-clock budget all re-queue the
/// worker's cells under capped exponential backoff; once a cell's retry
/// budget is spent it degrades to Lost and the sweep still terminates.
/// Spawned workers that die are respawned with fresh ids until the
/// restart budget runs out; when no worker remains and none can be
/// respawned, pending cells are abandoned rather than waited for.
/// SIGTERM (requestDrain) stops new leases, lets in-flight cells finish,
/// and abandons the rest.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SVC_COORDINATOR_H
#define BOR_SVC_COORDINATOR_H

#include "exp/CellExecutor.h"
#include "support/Socket.h"
#include "svc/Scheduler.h"

#include <map>
#include <string>
#include <vector>

#include <sys/types.h>

namespace bor {
namespace svc {

struct CoordinatorConfig {
  std::string Host = "127.0.0.1";
  int Port = 0; ///< 0 = ephemeral; see Coordinator::port()

  /// Scheduler knobs (see SchedulerConfig for semantics).
  double HeartbeatS = 2.0;
  unsigned MissedHeartbeats = 3;
  double CellTimeoutS = 0;
  support::BackoffPolicy Backoff;

  /// Workers to fork/exec from this binary (0 = external workers only).
  unsigned SpawnWorkers = 0;

  /// Total respawns allowed across the run; < 0 picks the default
  /// (2 * SpawnWorkers).
  int MaxWorkerRestarts = -1;

  /// Forwarded verbatim to every spawned worker's --fault-spec.
  std::string FaultSpecText;

  /// When non-empty, the actual "host:port" is written here (atomically)
  /// after bind — how tests using an ephemeral port find the service.
  std::string AddrFile;
};

class Coordinator {
public:
  /// Binds and listens. Check ok() before use; error() says what failed.
  explicit Coordinator(const CoordinatorConfig &Config);
  ~Coordinator();

  Coordinator(const Coordinator &) = delete;
  Coordinator &operator=(const Coordinator &) = delete;

  bool ok() const { return ListenFd >= 0; }
  const std::string &error() const { return Err; }
  int port() const; ///< the bound port (resolves Port == 0)

  /// The options JSON shipped in every lease frame (and the worker-side
  /// spec cache key). Set once per driver invocation, before any grid.
  void setLeaseOptions(std::string OptionsJson) {
    LeaseOptions = std::move(OptionsJson);
  }

  /// Forks the configured --spawn-workers worker processes. Safe to call
  /// once; returns false with error() set when a fork fails.
  bool spawnWorkers();

  /// Runs \p Spec's grid to completion (every cell Done or Lost), filling
  /// \p Results[i] for Done cells via the worker fleet. \p RunCell is
  /// unused (cells execute in workers) but kept for the executor seam's
  /// signature. Returns one CellOutcome per cell.
  std::vector<exp::CellOutcome>
  runGrid(const exp::ExperimentSpec &Spec, std::vector<exp::RunRecord> &Results,
          const exp::CellExecutor::DoneFn &OnCellDone);

  /// Sends shutdown to every connected worker, closes the listener, and
  /// reaps spawned processes (SIGKILL after a grace period). Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Flags a drain from a signal handler (async-signal-safe): stop
  /// granting leases, finish in-flight cells, abandon the rest.
  static void requestDrain();

private:
  struct Conn {
    net::FrameBuffer Frames;
    uint64_t Id = 0;       ///< coordinator-side worker identity
    std::string Name;      ///< display name from hello
    bool HelloSeen = false;
  };

  bool spawnOneWorker();
  void sendFrame(int Fd, const std::string &Payload);
  void reapAndRespawn(bool WantMore);
  double now() const;

  CoordinatorConfig Config;
  std::string Err;
  int ListenFd = -1;
  std::string LeaseOptions = "{}";

  std::map<int, Conn> Conns; ///< by fd
  uint64_t NextWorkerId = 1;
  uint64_t NextJob = 1; ///< never reused across grids

  std::vector<pid_t> LiveWorkers;
  int NextSpawnId = 0;
  int RestartsLeft = 0;
  bool SpawnedOnce = false;
};

/// The distributed backend for exp::runExperimentWith: delegates the grid
/// to a Coordinator's worker fleet.
class ServeExecutor : public exp::CellExecutor {
public:
  explicit ServeExecutor(Coordinator &C) : C(C) {}

  std::vector<exp::CellOutcome>
  execute(const exp::ExperimentSpec &Spec,
          std::vector<exp::RunRecord> &Results, const CellFn &RunCell,
          const DoneFn &OnCellDone) override {
    (void)RunCell; // cells run in worker processes
    return C.runGrid(Spec, Results, OnCellDone);
  }

private:
  Coordinator &C;
};

} // namespace svc
} // namespace bor

#endif // BOR_SVC_COORDINATOR_H
