//===- svc/Worker.cpp - The sweep service's worker loop ------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "svc/Worker.h"

#include "exp/Experiment.h"
#include "support/Socket.h"
#include "svc/Protocol.h"

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

namespace bor {
namespace svc {

namespace {

/// Sends heartbeat frames for one job every \p IntervalS seconds until
/// stopped. Send failures are ignored — if the coordinator is gone the
/// main loop will find out on its next send.
class HeartbeatPump {
public:
  HeartbeatPump(int Fd, uint64_t Job, double IntervalS)
      : T([this, Fd, Job, IntervalS] {
          std::unique_lock<std::mutex> Lock(M);
          while (!Stop) {
            if (CV.wait_for(Lock, std::chrono::duration<double>(IntervalS),
                            [this] { return Stop; }))
              break;
            std::string Wire = net::encodeFrame(encodeHeartbeat(Job));
            net::sendAll(Fd, Wire.data(), Wire.size());
          }
        }) {}

  ~HeartbeatPump() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Stop = true;
    }
    CV.notify_all();
    T.join();
  }

private:
  std::mutex M;
  std::condition_variable CV;
  bool Stop = false;
  std::thread T;
};

/// One cached instantiated experiment: the spec with Setup already run.
struct CachedSpec {
  exp::ExperimentSpec Spec;
  bool Valid = false;
};

/// Instantiates (and caches) the lease's experiment. The cache key is the
/// verbatim options JSON, so a coordinator changing options mid-run (it
/// does not) would instantiate a fresh spec rather than corrupt an old
/// one.
CachedSpec &specFor(const std::string &Experiment,
                    const std::string &OptionsJson, std::string &Err) {
  static std::map<std::string, CachedSpec> Cache;
  std::string Key = Experiment + '\n' + OptionsJson;
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  CachedSpec &Entry = Cache[Key];
  exp::ExperimentRegistry &Registry = exp::ExperimentRegistry::instance();
  if (!Registry.contains(Experiment)) {
    Err = "unknown experiment '" + Experiment + "'";
    return Entry;
  }
  exp::ExperimentOptions Opt;
  if (!decodeOptions(OptionsJson, Opt, Err))
    return Entry;
  Entry.Spec = Registry.create(Experiment, Opt);
  if (Entry.Spec.Setup)
    Entry.Spec.Setup();
  Entry.Valid = true;
  return Entry;
}

bool sendFrame(int Fd, const std::string &Payload) {
  std::string Wire = net::encodeFrame(Payload);
  return net::sendAll(Fd, Wire.data(), Wire.size());
}

} // namespace

int runWorker(const WorkerConfig &Config) {
  std::string Err;
  int Fd = net::connectTcp(Config.Host, Config.Port, Config.ConnectTimeoutS,
                           Err);
  if (Fd < 0) {
    std::fprintf(stderr, "bor-bench: --worker: %s\n", Err.c_str());
    return 1;
  }

  std::string Name = "w" + std::to_string(Config.WorkerId);
  if (!sendFrame(Fd, encodeHello(Name, static_cast<uint64_t>(getpid()))) ||
      !sendFrame(Fd, encodeReady())) {
    net::closeFd(Fd);
    return 1;
  }

  net::FrameBuffer Frames;
  uint64_t LeasesReceived = 0;  ///< 1-based fault ordinals key off this
  uint64_t LeasesCompleted = 0; ///< drop-conn-after counts completions

  auto HandleLease = [&](const Frame &F) -> bool {
    ++LeasesReceived;
    if (Config.Faults.CrashAtCell == LeasesReceived) {
      std::fprintf(stderr, "[%s] fault: crash-at-cell on lease %llu\n",
                   Name.c_str(),
                   static_cast<unsigned long long>(LeasesReceived));
      _exit(FaultExitCode);
    }

    std::string SpecErr;
    CachedSpec &Cached = specFor(F.Experiment, F.OptionsJson, SpecErr);
    if (!Cached.Valid)
      return sendFrame(Fd, encodeResultError(F.Job, SpecErr));
    const exp::ExperimentSpec &Spec = Cached.Spec;
    if (F.Cell >= Spec.Cells.size())
      return sendFrame(Fd, encodeResultError(
                               F.Job, "cell index out of range"));

    if (Config.Faults.StallHeartbeat == LeasesReceived) {
      // A stalled worker: do the work but report nothing — and, unlike a
      // crash, keep the connection open and silent, so the coordinator
      // can only detect us via the missed-heartbeat deadline. Once it
      // drops us (recv sees EOF) we die for real.
      std::fprintf(stderr, "[%s] fault: stall-heartbeat on lease %llu\n",
                   Name.c_str(),
                   static_cast<unsigned long long>(LeasesReceived));
      Spec.Run(Spec.Cells[F.Cell], F.Cell);
      char Sink[4096];
      while (recv(Fd, Sink, sizeof(Sink), 0) > 0) {
      }
      net::closeFd(Fd);
      _exit(FaultExitCode);
    }

    exp::RunRecord Record;
    {
      HeartbeatPump Pump(Fd, F.Job, F.HeartbeatS > 0 ? F.HeartbeatS : 1.0);
      Record = Spec.Run(Spec.Cells[F.Cell], F.Cell);
    }
    if (!sendFrame(Fd, encodeResultOk(F.Job, Record)))
      return false;

    ++LeasesCompleted;
    if (Config.Faults.DropConnAfter == LeasesCompleted) {
      std::fprintf(stderr, "[%s] fault: drop-conn-after %llu leases\n",
                   Name.c_str(),
                   static_cast<unsigned long long>(LeasesCompleted));
      net::closeFd(Fd);
      _exit(FaultExitCode);
    }
    return sendFrame(Fd, encodeReady());
  };

  char Buf[64 * 1024];
  for (;;) {
    std::string Payload;
    while (Frames.next(Payload)) {
      Frame F;
      std::string DErr;
      if (!decodeFrame(Payload, F, DErr)) {
        std::fprintf(stderr, "[%s] bad frame from coordinator: %s\n",
                     Name.c_str(), DErr.c_str());
        net::closeFd(Fd);
        return 1;
      }
      switch (F.Type) {
      case FrameType::Lease:
        if (!HandleLease(F)) {
          net::closeFd(Fd);
          return 1;
        }
        break;
      case FrameType::Idle:
        std::this_thread::sleep_for(
            std::chrono::duration<double>(F.WaitS > 0 ? F.WaitS : 0.1));
        if (!sendFrame(Fd, encodeReady())) {
          net::closeFd(Fd);
          return 1;
        }
        break;
      case FrameType::Shutdown:
        net::closeFd(Fd);
        return 0;
      default:
        // hello/ready/heartbeat/result only flow worker -> coordinator.
        net::closeFd(Fd);
        return 1;
      }
    }
    if (Frames.bad()) {
      net::closeFd(Fd);
      return 1;
    }

    ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
    if (N == 0) {
      // Coordinator gone without a shutdown frame (crash, or it dropped
      // us after a lease expiry). Not an error worth a diagnostic storm.
      net::closeFd(Fd);
      return 1;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      net::closeFd(Fd);
      return 1;
    }
    Frames.append(Buf, static_cast<size_t>(N));
  }
}

} // namespace svc
} // namespace bor
