//===- profile/TraceGen.cpp - Synthetic method-invocation streams --------===//

#include "profile/TraceGen.h"

#include <algorithm>
#include <cassert>

using namespace bor;

InvocationStream::InvocationStream(const BenchmarkModel &Model)
    : Model(Model), Rng(Model.Seed),
      Zipf(Model.NumMethods, Model.ZipfSkew) {
  assert(Model.NumMethods >= 16 && "models need a reasonable method count");
  startSegment();
}

void InvocationStream::startSegment() {
  Tuple.clear();
  TuplePos = 0;

  // ResonantFraction is a target *event mass*: since loop segments are
  // orders of magnitude longer than random segments, segment-type choice
  // tracks the mass emitted so far rather than flipping a coin.
  bool Loop = !Model.TuplePeriods.empty() &&
              Model.ResonantFraction > 0.0 &&
              (Emitted == 0 ||
               static_cast<double>(LoopEmitted) <
                   Model.ResonantFraction * static_cast<double>(Emitted));
  if (!Loop) {
    // A random segment: Zipf-distributed independent invocations.
    SegmentRemaining = 200 + Rng.nextBelow(1800);
    return;
  }

  // A periodic loop segment: a fixed tuple of methods per iteration. The
  // tuple methods come from the hot end of the id space so they carry real
  // profile weight (as leaf methods called from a hot loop do).
  unsigned Period =
      Model.TuplePeriods[Rng.nextBelow(Model.TuplePeriods.size())];
  uint32_t First = static_cast<uint32_t>(Rng.nextBelow(16));
  for (unsigned I = 0; I != Period; ++I)
    Tuple.push_back((First + I) % Model.NumMethods);

  uint64_t Iters = Model.LoopItersMin +
                   Rng.nextBelow(Model.LoopItersMax - Model.LoopItersMin + 1);
  SegmentRemaining = Iters * Period;

  // Keep the total loop mass close to the target: truncate a segment that
  // would overshoot the whole-stream budget (still a whole number of
  // iterations).
  uint64_t Budget = static_cast<uint64_t>(
      Model.ResonantFraction * static_cast<double>(Model.Invocations));
  if (LoopEmitted < Budget) {
    uint64_t Left = Budget - LoopEmitted;
    if (SegmentRemaining > Left)
      SegmentRemaining = std::max<uint64_t>(Left / Period, 1) * Period;
  }
}

uint32_t InvocationStream::next() {
  assert(!done() && "stream exhausted");
  while (SegmentRemaining == 0)
    startSegment();

  ++Emitted;
  --SegmentRemaining;

  if (Tuple.empty())
    return static_cast<uint32_t>(Zipf.sample(Rng));

  ++LoopEmitted;
  uint32_t Method = Tuple[TuplePos];
  TuplePos = (TuplePos + 1) % Tuple.size();
  return Method;
}

std::vector<BenchmarkModel> bor::dacapoAnalogues(uint64_t ScaleDivisor) {
  assert(ScaleDivisor >= 1);
  auto Scaled = [ScaleDivisor](uint64_t PaperMillions) {
    return PaperMillions * 1000000 / ScaleDivisor;
  };

  std::vector<BenchmarkModel> Models;

  // Invocation counts follow the paper's Section 4.2 ordering (millions):
  // fop 7, antlr 17, bloat 93, lusearch 108, xalan 109, jython 170,
  // pmd 195, luindex 212. Structural parameters are synthetic: odd tuple
  // periods for the benchmarks counters handle well; long even-period
  // loops for the jython/pmd resonance pathology.
  Models.push_back({"fop", Scaled(7), 200, 1.3, 0.10, {3, 5}, 1000, 10000,
                    0xf0f1});
  Models.push_back({"antlr", Scaled(17), 250, 1.3, 0.15, {3}, 1000, 10000,
                    0xa171});
  Models.push_back({"bloat", Scaled(93), 400, 1.2, 0.20, {3, 5, 7}, 2000,
                    20000, 0xb10a});
  Models.push_back({"lusearch", Scaled(108), 250, 1.2, 0.10, {3}, 1000,
                    10000, 0x105e});
  Models.push_back({"xalan", Scaled(109), 350, 1.2, 0.15, {5}, 1000, 10000,
                    0xa1a9});
  // jython's hot loop is modelled as one long period-2 segment so the
  // counter phase-locks for the whole run, as in the paper.
  Models.push_back({"jython", Scaled(170), 300, 1.2, 0.14, {2}, 2200000,
                    3000000, 0x9e51});
  Models.push_back({"pmd", Scaled(195), 400, 1.2, 0.07, {2}, 1000000,
                    2000000, 0x90d3});
  Models.push_back({"luindex", Scaled(212), 250, 1.3, 0.10, {3}, 1000,
                    10000, 0x10d5});
  return Models;
}
