//===- profile/TraceGen.h - Synthetic method-invocation streams ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the DaCapo-on-Jikes method-invocation streams of
/// the accuracy study (Section 4.2). What the accuracy experiments consume
/// is only the sequence of instrumentation-site visits, so each benchmark
/// is modelled by the properties that matter to sampling:
///
///  * total invocation count (the paper's ordering: fop 7M ... luindex
///    212M, scaled down by a configurable divisor);
///  * a Zipf-skewed hot-method distribution; and
///  * structural periodicity: long-running loops whose bodies invoke a
///    fixed tuple of leaf methods each iteration. An even-period tuple
///    resonates with power-of-two counter intervals — the footnote-7
///    pathology that makes jython (and pmd at 2^13) lose accuracy under
///    counter-based sampling while branch-on-random is immune.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_PROFILE_TRACEGEN_H
#define BOR_PROFILE_TRACEGEN_H

#include "support/Rng.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bor {

/// The generative model for one benchmark's invocation stream.
struct BenchmarkModel {
  std::string Name;
  uint64_t Invocations = 1000000;
  uint32_t NumMethods = 400;
  double ZipfSkew = 1.0;
  /// Approximate fraction of invocations emitted by periodic loops.
  double ResonantFraction = 0.1;
  /// Tuple sizes of the periodic loops. Even periods alias with
  /// power-of-two sampling intervals; odd periods do not.
  std::vector<unsigned> TuplePeriods = {3};
  /// Iteration-count range of one loop segment (long segments keep the
  /// counter phase pinned for a long time, which is what creates bias).
  uint64_t LoopItersMin = 1000;
  uint64_t LoopItersMax = 10000;
  uint64_t Seed = 1;
};

/// Pull-based generator for a BenchmarkModel's invocation stream.
class InvocationStream {
public:
  explicit InvocationStream(const BenchmarkModel &Model);

  bool done() const { return Emitted >= Model.Invocations; }
  uint64_t total() const { return Model.Invocations; }
  uint64_t emitted() const { return Emitted; }

  /// The next invoked method id.
  uint32_t next();

private:
  void startSegment();

  BenchmarkModel Model;
  Xoshiro256 Rng;
  ZipfSampler Zipf;
  uint64_t Emitted = 0;
  uint64_t LoopEmitted = 0;

  // Current segment: either a periodic loop over Tuple, or random draws.
  std::vector<uint32_t> Tuple; ///< empty in a random segment.
  size_t TuplePos = 0;
  uint64_t SegmentRemaining = 0;
};

/// The eight benchmark models in the paper's invocation-count order: fop,
/// antlr, bloat, lusearch, xalan, jython, pmd, luindex. \p ScaleDivisor
/// divides the paper's invocation counts (the default of 5 keeps runtimes
/// laptop-scale while preserving enough samples per stream that accuracy
/// levels are comparable to the paper's).
std::vector<BenchmarkModel> dacapoAnalogues(uint64_t ScaleDivisor = 5);

} // namespace bor

#endif // BOR_PROFILE_TRACEGEN_H
