//===- profile/Profile.h - Method-invocation profiles --------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile representation used by the accuracy experiments (Section 4):
/// per-method invocation counts, normalizable to fractions of all collected
/// samples.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_PROFILE_PROFILE_H
#define BOR_PROFILE_PROFILE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bor {

/// Per-method sample counts.
class MethodProfile {
public:
  explicit MethodProfile(size_t NumMethods) : Counts(NumMethods, 0) {}

  void record(size_t Method) {
    assert(Method < Counts.size() && "method id out of range");
    ++Counts[Method];
    ++Total;
  }

  uint64_t count(size_t Method) const {
    assert(Method < Counts.size() && "method id out of range");
    return Counts[Method];
  }
  uint64_t total() const { return Total; }
  size_t numMethods() const { return Counts.size(); }

  /// Fraction of all samples attributed to \p Method (0 when empty).
  double fraction(size_t Method) const {
    if (Total == 0)
      return 0.0;
    return static_cast<double>(count(Method)) / static_cast<double>(Total);
  }

  const std::vector<uint64_t> &counts() const { return Counts; }

  /// Builds a profile from raw counter values (e.g. read back from
  /// simulated memory).
  static MethodProfile fromCounts(const std::vector<uint64_t> &Raw);

private:
  std::vector<uint64_t> Counts;
  uint64_t Total = 0;
};

} // namespace bor

#endif // BOR_PROFILE_PROFILE_H
