//===- profile/SamplingPolicy.cpp - Trace-level sampling policies --------===//

#include "profile/SamplingPolicy.h"

using namespace bor;

SamplingPolicy::~SamplingPolicy() = default;
