//===- profile/ValueProfile.cpp - Top-N-value tables ----------------------===//

#include "profile/ValueProfile.h"

#include <algorithm>
#include <cassert>

using namespace bor;

ValueProfile::ValueProfile(size_t Capacity, uint64_t EpochLen)
    : Slots(Capacity), EpochLen(EpochLen) {
  assert(Capacity >= 2 && "a TNV table needs at least two slots");
  assert(EpochLen >= 1 && "epoch length must be positive");
}

void ValueProfile::record(uint64_t Value) {
  ++Samples;

  Slot *Free = nullptr;
  Slot *Min = nullptr;
  for (Slot &S : Slots) {
    if (S.Occupied && S.Value == Value) {
      ++S.Count;
      goto epoch;
    }
    if (!S.Occupied && !Free)
      Free = &S;
    if (S.Occupied && (!Min || S.Count < Min->Count))
      Min = &S;
  }

  if (Free) {
    Free->Occupied = true;
    Free->Value = Value;
    Free->Count = 1;
  } else if (Min && Min->Count == 0) {
    // A cleared slot's ghost: steal it.
    Min->Value = Value;
    Min->Count = 1;
  }
  // Otherwise the value is dropped; it gets another chance after the next
  // epoch clearing.

epoch:
  if (++SinceEpoch >= EpochLen) {
    SinceEpoch = 0;
    clearLowerHalf();
  }
}

void ValueProfile::clearLowerHalf() {
  // Keep the hotter half of the occupied slots, evict the rest — even when
  // counts tie, half the table must open up or a saturated table could
  // never admit a newly-hot value.
  std::vector<Slot *> Occupied;
  for (Slot &S : Slots)
    if (S.Occupied)
      Occupied.push_back(&S);
  if (Occupied.size() < 2)
    return;
  std::sort(Occupied.begin(), Occupied.end(),
            [](const Slot *A, const Slot *B) { return A->Count > B->Count; });
  for (size_t I = Occupied.size() / 2; I < Occupied.size(); ++I)
    Occupied[I]->Occupied = false;
}

uint64_t ValueProfile::topValue() const {
  const Slot *Best = nullptr;
  for (const Slot &S : Slots)
    if (S.Occupied && (!Best || S.Count > Best->Count))
      Best = &S;
  return Best ? Best->Value : 0;
}

double ValueProfile::topValueFraction() const {
  if (Samples == 0)
    return 0.0;
  uint64_t Best = 0;
  for (const Slot &S : Slots)
    if (S.Occupied)
      Best = std::max(Best, S.Count);
  return static_cast<double>(Best) / static_cast<double>(Samples);
}

std::vector<std::pair<uint64_t, uint64_t>> ValueProfile::entries() const {
  std::vector<std::pair<uint64_t, uint64_t>> Out;
  for (const Slot &S : Slots)
    if (S.Occupied)
      Out.emplace_back(S.Value, S.Count);
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    if (A.second != B.second)
      return A.second > B.second;
    return A.first < B.first;
  });
  return Out;
}
