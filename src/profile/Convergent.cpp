//===- profile/Convergent.cpp - Convergent profiling (Section 7) ---------===//

#include "profile/Convergent.h"

#include <algorithm>
#include <cmath>

using namespace bor;

ConvergentProfiler::ConvergentProfiler(size_t NumMethods,
                                       const ConvergentConfig &Config)
    : Config(Config), Unit(Config.Brr), FreqRaw(Config.InitialFreqRaw),
      Accumulated(NumMethods), Epoch(NumMethods) {
  assert(Config.MinFreqRaw <= Config.InitialFreqRaw &&
         Config.InitialFreqRaw <= Config.MaxFreqRaw &&
         "initial frequency outside the allowed band");
  assert(Config.MaxFreqRaw < FreqCode::NumValues);
}

bool ConvergentProfiler::visit(uint32_t Method) {
  ++Visits;
  if (!Unit.evaluate(FreqCode(FreqRaw)))
    return false;

  Accumulated.record(Method);
  Epoch.record(Method);
  if (Epoch.total() >= Config.EpochSamples)
    endEpoch();
  return true;
}

double ConvergentProfiler::expectedSamplingNoise(const MethodProfile &P,
                                                 uint64_t N) {
  if (N == 0)
    return 1.0;
  // E|p_hat - p| for a binomial estimate is about sqrt(2 p (1-p) / (pi N));
  // total variation halves the L1 sum of those.
  double Sum = 0.0;
  for (size_t I = 0; I != P.numMethods(); ++I) {
    double Pk = P.fraction(I);
    Sum += std::sqrt(2.0 * Pk * (1.0 - Pk) /
                     (3.14159265358979 * static_cast<double>(N)));
  }
  return 0.5 * Sum;
}

void ConvergentProfiler::endEpoch() {
  // Total-variation distance between the epoch's distribution and the
  // accumulated profile.
  double Distance = 0.0;
  for (size_t I = 0; I != Accumulated.numMethods(); ++I)
    Distance += std::abs(Epoch.fraction(I) - Accumulated.fraction(I));
  Distance *= 0.5;

  History.push_back({FreqRaw, Distance, Visits});

  double Converge = Config.ConvergeThreshold;
  double Diverge = Config.DivergeThreshold;
  if (Config.AdaptiveThresholds) {
    double Noise = expectedSamplingNoise(Accumulated, Config.EpochSamples);
    Converge = Config.ConvergeNoiseMultiple * Noise;
    Diverge = std::max(Config.DivergeNoiseMultiple * Noise, 0.10);
  }

  if (Distance < Converge && FreqRaw < Config.MaxFreqRaw) {
    ++FreqRaw; // converged: halve the sampling rate.
  } else if (Distance > Diverge) {
    // Behaviour shifted: re-characterize quickly by quadrupling the rate
    // (two steps of the 4-bit field, bounded below) AND discarding the
    // stale characterization — the old accumulated profile would otherwise
    // keep every future epoch "divergent" and pin the rate at maximum.
    if (FreqRaw > Config.MinFreqRaw)
      FreqRaw = FreqRaw >= Config.MinFreqRaw + 2 ? FreqRaw - 2
                                                 : Config.MinFreqRaw;
    Accumulated = Epoch;
  }

  Epoch = MethodProfile(Accumulated.numMethods());
}
