//===- profile/Accuracy.h - The overlap-percentage metric ----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The accuracy metric of Section 4.1 (after Arnold–Ryder):
///
///   accuracy = sum_i min(f_full(i), f_sampled(i))
///
/// where f(i) is the fraction of all collected samples attributed to method
/// i. A method over-counted by sampling contributes only its true fraction;
/// the over-count necessarily under-counts others, so a perfect sampling
/// yields 100%.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_PROFILE_ACCURACY_H
#define BOR_PROFILE_ACCURACY_H

#include "profile/Profile.h"

namespace bor {

/// Overlap percentage in [0, 100]. Profiles must cover the same method
/// universe. Returns 0 if the sampled profile collected nothing.
double overlapAccuracy(const MethodProfile &Full,
                       const MethodProfile &Sampled);

} // namespace bor

#endif // BOR_PROFILE_ACCURACY_H
