//===- profile/Convergent.h - Convergent profiling (Section 7) -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convergent profiling, the extension sketched in the paper's conclusion:
/// because every branch-on-random instruction encodes its own frequency,
/// the sampling rate can be lowered as the collected profile converges —
/// and raised again if low-frequency samples start disagreeing with the
/// established characterization. This controller implements that loop: it
/// samples with a BrrUnit at a current frequency, compares each completed
/// epoch of samples against the accumulated profile (total-variation
/// distance), and walks the 4-bit freq field up (slower) on convergence or
/// down (faster) on divergence.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_PROFILE_CONVERGENT_H
#define BOR_PROFILE_CONVERGENT_H

#include "core/BrrUnit.h"
#include "profile/Profile.h"

#include <vector>

namespace bor {

struct ConvergentConfig {
  unsigned InitialFreqRaw = 4; ///< start at 1/32 sampling.
  unsigned MinFreqRaw = 0;     ///< fastest allowed: 1/2.
  unsigned MaxFreqRaw = 12;    ///< slowest allowed: 1/8192.
  uint64_t EpochSamples = 512; ///< samples per convergence check.
  /// Epoch-vs-accumulated total-variation distance below which the profile
  /// is considered converged (rate is lowered).
  double ConvergeThreshold = 0.05;
  /// Distance above which behaviour is considered changed (rate is raised).
  double DivergeThreshold = 0.20;
  /// When set, the fixed thresholds are replaced each epoch by multiples
  /// of the *expected sampling noise* of a converged profile — the
  /// total-variation distance an epoch of EpochSamples draws from the
  /// accumulated distribution would show by chance. This removes the need
  /// to tune thresholds per workload shape.
  bool AdaptiveThresholds = false;
  double ConvergeNoiseMultiple = 1.5;
  double DivergeNoiseMultiple = 4.0;
  BrrUnitConfig Brr;
};

/// The adaptive sampling controller.
class ConvergentProfiler {
public:
  struct EpochRecord {
    unsigned FreqRaw;    ///< frequency during the epoch.
    double Distance;     ///< epoch-vs-accumulated total variation.
    uint64_t VisitsSoFar;
  };

  /// Expected total-variation distance between an N-sample epoch and the
  /// distribution \p P it was drawn from (half-normal approximation per
  /// method). This is the controller's noise floor in adaptive mode.
  static double expectedSamplingNoise(const MethodProfile &P, uint64_t N);

  ConvergentProfiler(size_t NumMethods,
                     const ConvergentConfig &Config = ConvergentConfig());

  /// One instrumentation-site visit for \p Method; returns true if it was
  /// sampled.
  bool visit(uint32_t Method);

  FreqCode currentFreq() const { return FreqCode(FreqRaw); }
  const MethodProfile &profile() const { return Accumulated; }
  const std::vector<EpochRecord> &history() const { return History; }
  uint64_t visits() const { return Visits; }
  uint64_t samples() const { return Accumulated.total(); }

private:
  void endEpoch();

  ConvergentConfig Config;
  BrrUnit Unit;
  unsigned FreqRaw;
  MethodProfile Accumulated;
  MethodProfile Epoch;
  uint64_t Visits = 0;
  std::vector<EpochRecord> History;
};

} // namespace bor

#endif // BOR_PROFILE_CONVERGENT_H
