//===- profile/Accuracy.cpp - The overlap-percentage metric --------------===//

#include "profile/Accuracy.h"

#include <algorithm>

using namespace bor;

double bor::overlapAccuracy(const MethodProfile &Full,
                            const MethodProfile &Sampled) {
  assert(Full.numMethods() == Sampled.numMethods() &&
         "profiles cover different method universes");
  if (Sampled.total() == 0 || Full.total() == 0)
    return 0.0;
  double Overlap = 0.0;
  for (size_t I = 0; I != Full.numMethods(); ++I)
    Overlap += std::min(Full.fraction(I), Sampled.fraction(I));
  return 100.0 * Overlap;
}
