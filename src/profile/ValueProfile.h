//===- profile/ValueProfile.h - Top-N-value tables for value profiling ---===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value profiling is the paper's canonical example of expensive
/// instrumentation (Section 1 cites slowdowns up to 10x for Calder et
/// al.'s value profiler; Section 2 lists it among the profiles sampling
/// handles well). This file implements the classic top-N-value (TNV)
/// table used by those profilers: a small table of (value, count) pairs
/// tracking the most frequent values observed at a site, with periodic
/// clearing of the lower half so newly-hot values can displace stale ones.
///
/// Combined with a sampling policy (one TNV record per *sampled* site
/// visit), this is exactly the kind of client a brr-based framework makes
/// affordable in production.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_PROFILE_VALUEPROFILE_H
#define BOR_PROFILE_VALUEPROFILE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bor {

/// A top-N-value table for one instrumentation site.
class ValueProfile {
public:
  /// \p Capacity entries; every \p EpochLen recorded values, the lower
  /// half of the table (by count) is cleared to admit newly-hot values.
  explicit ValueProfile(size_t Capacity = 8, uint64_t EpochLen = 1024);

  /// Records one observed value.
  void record(uint64_t Value);

  /// Total values recorded (including ones that never earned a slot).
  uint64_t samples() const { return Samples; }

  /// The hottest tracked value; only meaningful once samples() > 0.
  uint64_t topValue() const;

  /// Fraction of all recorded samples attributed to the hottest tracked
  /// value — the "invariance" of the site (1.0 = the value never varies).
  double topValueFraction() const;

  /// Tracked (value, count) pairs, hottest first.
  std::vector<std::pair<uint64_t, uint64_t>> entries() const;

  size_t capacity() const { return Slots.size(); }

private:
  struct Slot {
    uint64_t Value = 0;
    uint64_t Count = 0;
    bool Occupied = false;
  };

  void clearLowerHalf();

  std::vector<Slot> Slots;
  uint64_t EpochLen;
  uint64_t SinceEpoch = 0;
  uint64_t Samples = 0;
};

} // namespace bor

#endif // BOR_PROFILE_VALUEPROFILE_H
