//===- profile/Profile.cpp - Method-invocation profiles ------------------===//

#include "profile/Profile.h"

using namespace bor;

MethodProfile MethodProfile::fromCounts(const std::vector<uint64_t> &Raw) {
  MethodProfile P(Raw.size());
  for (size_t I = 0; I != Raw.size(); ++I) {
    P.Counts[I] = Raw[I];
    P.Total += Raw[I];
  }
  return P;
}
