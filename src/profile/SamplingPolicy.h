//===- profile/SamplingPolicy.h - Trace-level sampling policies ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three sampling techniques Figures 9 and 10 compare, expressed at the
/// level of a stream of instrumentation-site visits: the software countdown
/// counter ("sw count"), the deterministic hardware counter triggered by a
/// brr instruction ("hw count", Section 4.1), and the LFSR-driven
/// branch-on-random ("random"). Each policy answers one question per site
/// visit: is this visit sampled?
///
/// The brr policy wraps the same core::BrrUnit the decode-stage model uses,
/// so accuracy experiments exercise the exact hardware decision logic.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_PROFILE_SAMPLINGPOLICY_H
#define BOR_PROFILE_SAMPLINGPOLICY_H

#include "core/BrrUnit.h"
#include "core/DeterministicBrr.h"

#include <memory>
#include <string>

namespace bor {

/// One sampling decision per instrumentation-site visit.
class SamplingPolicy {
public:
  virtual ~SamplingPolicy();
  virtual bool sample() = 0;
  virtual std::string name() const = 0;
};

/// Figure 1's software counter: decrement at every visit, sample (and
/// reset) when it reaches zero. Fires exactly every Interval-th visit.
class SwCounterPolicy : public SamplingPolicy {
public:
  explicit SwCounterPolicy(uint64_t Interval)
      : Interval(Interval), Count(Interval - 1) {
    assert(Interval >= 1 && "interval must be positive");
  }

  bool sample() override {
    if (Count == 0) {
      Count = Interval - 1;
      return true;
    }
    --Count;
    return false;
  }

  std::string name() const override { return "sw-count"; }

private:
  uint64_t Interval;
  uint64_t Count;
};

/// Section 4.1's deterministic brr: a hardware counter taking every
/// Interval-th branch. \p Phase shifts which visit within the period fires.
class HwCounterPolicy : public SamplingPolicy {
public:
  explicit HwCounterPolicy(uint64_t Interval, uint64_t Phase = 0)
      : Unit(Phase), Freq(FreqCode::forInterval(Interval)) {}

  bool sample() override { return Unit.evaluate(Freq); }

  std::string name() const override { return "hw-count"; }

private:
  HwCounterUnit Unit;
  FreqCode Freq;
};

/// The LFSR-driven branch-on-random.
class BrrPolicy : public SamplingPolicy {
public:
  BrrPolicy(uint64_t Interval, const BrrUnitConfig &Config = BrrUnitConfig())
      : Unit(Config), Freq(FreqCode::forInterval(Interval)) {}

  bool sample() override { return Unit.evaluate(Freq); }

  std::string name() const override { return "brr-random"; }

  const BrrUnit &unit() const { return Unit; }

private:
  BrrUnit Unit;
  FreqCode Freq;
};

} // namespace bor

#endif // BOR_PROFILE_SAMPLINGPOLICY_H
