//===- core/HwCostModel.h - State/gate estimates (Section 3.3) -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's hardware cost estimates: branch-on-random needs
/// roughly 20 bits of state and fewer than 100 gates on a single-issue
/// machine, growing to under 100 bits and under 400 gates for a 4-wide
/// superscalar with replicated units (Section 3.3, Summary; abstract).
///
/// Two gate counts are reported: "macro" gates count each multi-input AND
/// and the 16:1 mux the way the paper does (15 AND gates, one of each size
/// from 2 to 16 inputs), while the 2-input-equivalent count decomposes every
/// structure into 2-input gates for a technology-neutral comparison.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CORE_HWCOSTMODEL_H
#define BOR_CORE_HWCOSTMODEL_H

#include <string>

namespace bor {

/// Parameters of a branch-on-random implementation to be costed.
struct HwCostInputs {
  unsigned LfsrWidth = 20;
  /// Feedback taps of the LFSR polynomial (a w-bit maximal LFSR needs
  /// NumTaps-1 XOR2 gates of feedback logic).
  unsigned NumTaps = 2;
  /// Frequencies supported (16 for the 4-bit encoding).
  unsigned NumFreqs = 16;
  unsigned DecodeWidth = 1;
  /// Replicate the unit per decoder (true) or share one LFSR behind a
  /// priority encoder (false).
  bool Replicated = true;
  /// Deterministic implementation (Section 3.4): adds the shift-back
  /// recovery bits and the in-flight counter.
  bool Deterministic = false;
  /// Maximum speculative brrs in flight (sizes the recovery buffer when
  /// Deterministic is set).
  unsigned MaxInFlight = 0;
};

/// The resulting estimate.
struct HwCostEstimate {
  unsigned StateBits = 0;
  unsigned MacroGates = 0;
  unsigned TwoInputEquivGates = 0;
};

/// Estimates the hardware cost of the configuration \p In.
HwCostEstimate estimateBrrCost(const HwCostInputs &In);

/// One-line human-readable summary used by the hw_cost_model bench.
std::string describeBrrCost(const HwCostInputs &In);

} // namespace bor

#endif // BOR_CORE_HWCOSTMODEL_H
