//===- core/SuperscalarBrr.h - brr in a wide decode stage ----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3 sketches two ways to support branch-on-random in a
/// superscalar decode stage:
///
///  * Replicate the whole unit at every decoder. Each brr is logically
///    independent, so fully decoupled LFSRs are architecturally valid.
///
///  * Share one LFSR among the decoders, with a priority encoder (program
///    order) arbitrating. If a fetch packet contains more brrs than LFSRs,
///    the packet is split and the excess brrs decode the following cycle
///    (footnote 3).
///
/// This class models both, reporting how many decode cycles a group of
/// simultaneously-decoded brrs consumes so the pipeline model can charge the
/// packet-split penalty.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CORE_SUPERSCALARBRR_H
#define BOR_CORE_SUPERSCALARBRR_H

#include "core/BrrUnit.h"

#include <vector>

namespace bor {

enum class SuperscalarBrrDesign {
  /// One complete unit per decoder; decoupled LFSRs with distinct seeds.
  ReplicatedPerDecoder,
  /// A single LFSR; simultaneous brrs arbitrate in program order and split
  /// the fetch packet when oversubscribed.
  SharedArbitrated,
};

/// The outcome of decoding one group of simultaneous branch-on-randoms.
struct BrrGroupResult {
  std::vector<bool> Taken;
  /// Decode cycles consumed: 1 unless a shared design splits the packet.
  unsigned DecodeCycles = 1;
};

/// A decode-width-aware branch-on-random stage.
class SuperscalarBrrUnit {
public:
  SuperscalarBrrUnit(SuperscalarBrrDesign Design, unsigned DecodeWidth,
                     const BrrUnitConfig &BaseConfig = BrrUnitConfig());

  /// Evaluates the brrs of one fetch packet, in program order. \p Freqs has
  /// one entry per brr in the packet (at most DecodeWidth).
  BrrGroupResult evaluateGroup(const std::vector<FreqCode> &Freqs);

  SuperscalarBrrDesign design() const { return Design; }
  unsigned decodeWidth() const { return DecodeWidth; }

  /// Units in the stage: DecodeWidth for the replicated design, 1 for the
  /// shared design.
  unsigned numLfsrs() const { return static_cast<unsigned>(Units.size()); }

  const BrrUnit &unit(unsigned I) const { return Units[I]; }

private:
  SuperscalarBrrDesign Design;
  unsigned DecodeWidth;
  std::vector<BrrUnit> Units;
};

} // namespace bor

#endif // BOR_CORE_SUPERSCALARBRR_H
