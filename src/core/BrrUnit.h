//===- core/BrrUnit.h - The decode-stage branch-on-random unit -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the hardware of Section 3.3: an LFSR whose bits feed fifteen AND
/// gates (one of each size from 2 to 16 inputs, plus the single-bit 50%
/// output), a 16-input mux driven by the instruction's freq field, and
/// clock gating so the LFSR only advances on cycles in which a
/// branch-on-random is actually decoded.
///
/// The architectural contract (Section 3.2) deliberately does NOT promise
/// any particular outcome sequence, only that the taken fraction approaches
/// (1/2)^(freq+1) asymptotically. That freedom is what lets implementations
/// update the LFSR speculatively without checkpointing.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CORE_BRRUNIT_H
#define BOR_CORE_BRRUNIT_H

#include "core/BitSelection.h"
#include "core/FreqCode.h"
#include "lfsr/Lfsr.h"

#include <array>
#include <cstdint>

namespace bor {

/// Configuration of a single branch-on-random evaluation unit.
struct BrrUnitConfig {
  unsigned LfsrWidth = 20;
  /// Zero means "use the default maximal tap set for LfsrWidth".
  uint64_t TapMask = 0;
  uint64_t Seed = 0x2c9277b5;
  BitSelectPolicy Policy = BitSelectPolicy::Spaced;
};

/// One decode-slot branch-on-random unit.
class BrrUnit {
public:
  explicit BrrUnit(const BrrUnitConfig &Config = BrrUnitConfig());

  /// Evaluates a branch-on-random with frequency \p Freq: reads the muxed
  /// AND-gate output for the current LFSR state, then clocks the LFSR (the
  /// register only advances when a brr is decoded). Returns true if the
  /// branch is taken.
  bool evaluate(FreqCode Freq);

  /// All sixteen AND-gate outputs for the *current* LFSR state, as the
  /// hardware computes them in parallel before the mux; index = freq field.
  /// Does not advance the LFSR.
  std::array<bool, FreqCode::NumValues> andOutputs() const;

  /// The AND-input mask used for frequency \p Freq (for tests and the cost
  /// model).
  uint64_t andMaskFor(FreqCode Freq) const {
    return AndMasks[Freq.raw()];
  }

  const Lfsr &lfsr() const { return Register; }
  Lfsr &lfsr() { return Register; }

  const BrrUnitConfig &config() const { return Config; }

  /// Number of evaluations performed (LFSR clock ticks).
  uint64_t evaluationCount() const { return Evaluations; }

  /// Checkpoint restore: re-installs an evaluation count captured together
  /// with the LFSR state, so a resumed run's tick accounting continues
  /// where the snapshotted run left off.
  void restoreEvaluationCount(uint64_t Count) { Evaluations = Count; }

protected:
  /// Advances the LFSR one tick, returning the shifted-out bit; the
  /// deterministic subclass records it for shift-back recovery.
  bool clockLfsr();

private:
  BrrUnitConfig Config;
  Lfsr Register;
  std::array<uint64_t, FreqCode::NumValues> AndMasks;
  uint64_t Evaluations = 0;
};

/// Deterministic branch-on-random unit (Section 3.4): identical datapath,
/// but every LFSR step records the shifted-out bit in a small FIFO so that
/// steps belonging to squashed (wrong-path) instructions can be undone by
/// shifting back, restoring a precise architectural sequence. The FIFO depth
/// bounds how many branch-on-randoms may be speculatively in flight.
class DeterministicBrrUnit : public BrrUnit {
public:
  DeterministicBrrUnit(const BrrUnitConfig &Config, unsigned MaxInFlight);

  bool evaluate(FreqCode Freq);

  /// Undoes the \p N youngest speculative evaluations (e.g. those decoded
  /// after a mispredicted branch). Asserts that at most the number of
  /// currently-unretired evaluations is undone.
  void squashYoungest(unsigned N);

  /// Marks the \p N oldest in-flight evaluations as retired; their recovery
  /// bits are released (cannot be squashed anymore).
  void retireOldest(unsigned N);

  unsigned inFlight() const { return static_cast<unsigned>(History.size()); }
  unsigned maxInFlight() const { return MaxInFlight; }

private:
  unsigned MaxInFlight;
  /// Shifted-out bits of un-retired evaluations, oldest first. One bit per
  /// speculative branch-on-random, exactly the storage Section 3.4 sizes.
  std::vector<bool> History;
};

} // namespace bor

#endif // BOR_CORE_BRRUNIT_H
