//===- core/SuperscalarBrr.cpp - brr in a wide decode stage --------------===//

#include "core/SuperscalarBrr.h"

#include "support/Rng.h"

using namespace bor;

SuperscalarBrrUnit::SuperscalarBrrUnit(SuperscalarBrrDesign Design,
                                       unsigned DecodeWidth,
                                       const BrrUnitConfig &BaseConfig)
    : Design(Design), DecodeWidth(DecodeWidth) {
  assert(DecodeWidth >= 1 && "decode stage needs at least one slot");
  unsigned NumUnits =
      Design == SuperscalarBrrDesign::ReplicatedPerDecoder ? DecodeWidth : 1;
  // Decoupled LFSRs must not march in lockstep; derive a distinct nonzero
  // seed per unit from the base seed.
  SplitMix64 Seeder(BaseConfig.Seed);
  for (unsigned I = 0; I != NumUnits; ++I) {
    BrrUnitConfig Config = BaseConfig;
    uint64_t Seed;
    do {
      Seed = Seeder.next();
    } while ((Seed & ((1ULL << Config.LfsrWidth) - 1)) == 0);
    Config.Seed = Seed;
    Units.emplace_back(Config);
  }
}

BrrGroupResult SuperscalarBrrUnit::evaluateGroup(
    const std::vector<FreqCode> &Freqs) {
  assert(Freqs.size() <= DecodeWidth &&
         "more brrs in the packet than decode slots");
  BrrGroupResult Result;
  Result.Taken.reserve(Freqs.size());

  if (Design == SuperscalarBrrDesign::ReplicatedPerDecoder) {
    for (size_t I = 0; I != Freqs.size(); ++I)
      Result.Taken.push_back(Units[I].evaluate(Freqs[I]));
    Result.DecodeCycles = 1;
    return Result;
  }

  // Shared LFSR: the priority encoder grants one brr per cycle; additional
  // brrs split the packet and decode on following cycles.
  for (FreqCode Freq : Freqs)
    Result.Taken.push_back(Units[0].evaluate(Freq));
  Result.DecodeCycles =
      Freqs.empty() ? 1 : static_cast<unsigned>(Freqs.size());
  return Result;
}
