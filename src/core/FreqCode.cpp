//===- core/FreqCode.cpp - The brr 4-bit frequency encoding --------------===//

#include "core/FreqCode.h"

#include <bit>
#include <cmath>

using namespace bor;

double FreqCode::probability() const {
  return std::ldexp(1.0, -static_cast<int>(Raw + 1));
}

FreqCode FreqCode::forInterval(uint64_t Interval) {
  assert(Interval >= 2 && Interval <= 65536 && "interval outside brr range");
  assert(std::has_single_bit(Interval) && "brr intervals are powers of two");
  unsigned Log = std::countr_zero(Interval);
  return FreqCode(Log - 1);
}

FreqCode FreqCode::nearest(double P) {
  if (P >= 0.5)
    return FreqCode(0);
  if (P <= std::ldexp(1.0, -16))
    return FreqCode(15);
  double Log = -std::log2(P);
  int Raw = static_cast<int>(std::lround(Log)) - 1;
  if (Raw < 0)
    Raw = 0;
  if (Raw > 15)
    Raw = 15;
  return FreqCode(static_cast<unsigned>(Raw));
}
