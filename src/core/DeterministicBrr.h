//===- core/DeterministicBrr.h - Counter-triggered brr (Section 4.1) -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's accuracy study compares LFSR-driven sampling against taking
/// the branch at *defined intervals* — "essentially a hardware counter
/// triggered by the branch-on-random instruction" (Section 4.1). This file
/// models that unit: a countdown register that fires exactly every
/// 2^(freq+1)-th evaluation. It has perfect interval regularity, which is
/// exactly the property that makes it resonate with periodic code patterns
/// (the jython/pmd pathology of Figures 9 and 10).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CORE_DETERMINISTICBRR_H
#define BOR_CORE_DETERMINISTICBRR_H

#include "core/FreqCode.h"

#include <cstdint>

namespace bor {

/// Branch-on-random implemented as a deterministic hardware countdown: the
/// branch is taken on every 2^(freq+1)-th evaluation.
class HwCounterUnit {
public:
  /// \p Phase offsets where in the interval the counter starts (0 means the
  /// first taken evaluation is the 2^(freq+1)-th one).
  explicit HwCounterUnit(uint64_t Phase = 0) : Count(Phase) {}

  /// Evaluates one branch-on-random of frequency \p Freq. Like the paper's
  /// hardware counter, a single count register is shared by all sites; the
  /// interval is taken from the instruction being evaluated.
  bool evaluate(FreqCode Freq) {
    uint64_t Interval = Freq.expectedInterval();
    ++Count;
    if (Count % Interval != 0)
      return false;
    return true;
  }

  uint64_t evaluationCount() const { return Count; }

private:
  uint64_t Count;
};

} // namespace bor

#endif // BOR_CORE_DETERMINISTICBRR_H
