//===- core/BitSelection.h - Choosing LFSR bits for each AND gate --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Selects which LFSR register bits feed the k-input AND gate for each
/// frequency. Section 3.3 observes that ANDing *adjacent* bits yields the
/// right marginal probability but correlated consecutive outcomes (after a
/// taken 25% branch, the next 25% evaluation is taken 50% of the time,
/// because one of its inputs is yesterday's other input shifted over). The
/// paper's mitigation is to AND non-contiguous bits with varied spacing,
/// e.g. bits 0, 2, 5 and 9 for the 6.25% frequency. Both policies are
/// implemented so the sensitivity study (and the ablation bench) can compare
/// them.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CORE_BITSELECTION_H
#define BOR_CORE_BITSELECTION_H

#include <cstdint>
#include <vector>

namespace bor {

/// How the AND-gate inputs are placed within the LFSR register.
enum class BitSelectPolicy {
  /// Bits 0..k-1: minimal wiring, correlated consecutive outcomes.
  Contiguous,
  /// Bits with increasing gaps (0, 2, 5, 9, 14, ...), falling back to the
  /// lowest unused positions once the register width is exhausted. This is
  /// the paper's recommended design.
  Spaced,
};

/// Returns the \p NumBits register bit positions (each < \p Width, all
/// distinct, sorted ascending) that feed the AND gate for a frequency
/// requiring \p NumBits random bits.
std::vector<unsigned> selectAndBits(BitSelectPolicy Policy, unsigned NumBits,
                                    unsigned Width);

/// The mask form of selectAndBits.
uint64_t selectAndMask(BitSelectPolicy Policy, unsigned NumBits,
                       unsigned Width);

/// Human-readable policy name for bench/test output.
const char *bitSelectPolicyName(BitSelectPolicy Policy);

} // namespace bor

#endif // BOR_CORE_BITSELECTION_H
