//===- core/HwCostModel.cpp - State/gate estimates (Section 3.3) ---------===//

#include "core/HwCostModel.h"

#include <bit>
#include <cassert>
#include <cstdio>

using namespace bor;

static unsigned ceilLog2(unsigned X) {
  assert(X > 0);
  return X == 1 ? 0 : 32 - std::countl_zero(X - 1);
}

HwCostEstimate bor::estimateBrrCost(const HwCostInputs &In) {
  assert(In.NumTaps >= 2 && "maximal LFSRs have at least two taps");
  assert(In.NumFreqs >= 2 && "need at least two frequencies");
  assert((!In.Deterministic || In.MaxInFlight > 0) &&
         "deterministic units must size the recovery buffer");

  HwCostEstimate Per; // Cost of one evaluation unit.

  // State: the LFSR register itself; a deterministic unit also keeps one
  // recovery bit per speculative brr in flight plus a counter wide enough to
  // remember how many to shift back (Section 3.4).
  Per.StateBits = In.LfsrWidth;
  if (In.Deterministic)
    Per.StateBits += In.MaxInFlight + ceilLog2(In.MaxInFlight + 1);

  // Gates, macro view (the paper's accounting):
  //  * feedback XOR network: NumTaps-1 two-input XORs,
  //  * NumFreqs-1 AND gates, one of each size from 2 inputs up (the 50%
  //    output taps a register bit directly and needs no gate),
  //  * one NumFreqs-input mux driven by the freq field,
  //  * decode-recognition and BTB-suppression control, a small constant.
  constexpr unsigned ControlGates = 8;
  Per.MacroGates =
      (In.NumTaps - 1) + (In.NumFreqs - 1) + 1 + ControlGates;

  // Gates, 2-input-equivalent view: a k-input AND is k-1 AND2s, so the AND
  // tree costs sum_{k=2}^{NumFreqs} (k-1); an N:1 mux is N-1 2:1 muxes at
  // ~3 gates each.
  unsigned AndTree = 0;
  for (unsigned K = 2; K <= In.NumFreqs; ++K)
    AndTree += K - 1;
  unsigned Mux = (In.NumFreqs - 1) * 3;
  Per.TwoInputEquivGates =
      (In.NumTaps - 1) + AndTree + Mux + ControlGates;

  HwCostEstimate Total;
  if (In.Replicated) {
    Total.StateBits = Per.StateBits * In.DecodeWidth;
    Total.MacroGates = Per.MacroGates * In.DecodeWidth;
    Total.TwoInputEquivGates = Per.TwoInputEquivGates * In.DecodeWidth;
    return Total;
  }

  // Shared design: one LFSR, but each decoder still needs its own AND tree
  // and mux to evaluate in parallel with target computation; arbitration
  // adds a priority encoder of roughly DecodeWidth gates.
  Total.StateBits = Per.StateBits;
  Total.MacroGates = (In.NumTaps - 1) + ControlGates +
                     In.DecodeWidth * (In.NumFreqs - 1 + 1) + In.DecodeWidth;
  Total.TwoInputEquivGates = (In.NumTaps - 1) + ControlGates +
                             In.DecodeWidth * (AndTree + Mux) +
                             In.DecodeWidth;
  return Total;
}

std::string bor::describeBrrCost(const HwCostInputs &In) {
  HwCostEstimate E = estimateBrrCost(In);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "%u-wide %s%s: lfsr=%u bits, state=%u bits, gates=%u macro "
                "(%u two-input equiv)",
                In.DecodeWidth, In.Replicated ? "replicated" : "shared",
                In.Deterministic ? " deterministic" : "", In.LfsrWidth,
                E.StateBits, E.MacroGates, E.TwoInputEquivGates);
  return Buf;
}
