//===- core/BitSelection.cpp - Choosing LFSR bits for each AND gate ------===//

#include "core/BitSelection.h"

#include <cassert>
#include <cstddef>
#include <utility>

using namespace bor;

std::vector<unsigned> bor::selectAndBits(BitSelectPolicy Policy,
                                         unsigned NumBits, unsigned Width) {
  assert(NumBits >= 1 && "an AND gate needs at least one input");
  assert(NumBits <= Width && "cannot select more distinct bits than exist");

  std::vector<unsigned> Bits;
  Bits.reserve(NumBits);

  if (Policy == BitSelectPolicy::Contiguous) {
    for (unsigned I = 0; I != NumBits; ++I)
      Bits.push_back(I);
    return Bits;
  }

  // Spaced: positions 0, 2, 5, 9, 14, ... (gap grows by one each step, per
  // the paper's 0/2/5/9 example). Once the next position would leave the
  // register, fall back to the lowest positions not already used; providing
  // spacing for *all* inputs of the largest gates is exactly why the paper
  // suggests extending the LFSR beyond 16 bits (e.g. to 20).
  std::vector<bool> Used(Width, false);
  unsigned Pos = 0;
  unsigned Gap = 2;
  while (Bits.size() < NumBits && Pos < Width) {
    Bits.push_back(Pos);
    Used[Pos] = true;
    Pos += Gap;
    ++Gap;
  }
  for (unsigned I = 0; Bits.size() < NumBits; ++I) {
    assert(I < Width && "ran out of register bits");
    if (Used[I])
      continue;
    Bits.push_back(I);
    Used[I] = true;
  }

  // Keep the result sorted so callers see a canonical selection.
  for (size_t I = 1; I < Bits.size(); ++I)
    for (size_t J = I; J > 0 && Bits[J - 1] > Bits[J]; --J)
      std::swap(Bits[J - 1], Bits[J]);
  return Bits;
}

uint64_t bor::selectAndMask(BitSelectPolicy Policy, unsigned NumBits,
                            unsigned Width) {
  uint64_t Mask = 0;
  for (unsigned B : selectAndBits(Policy, NumBits, Width))
    Mask |= 1ULL << B;
  return Mask;
}

const char *bor::bitSelectPolicyName(BitSelectPolicy Policy) {
  switch (Policy) {
  case BitSelectPolicy::Contiguous:
    return "contiguous";
  case BitSelectPolicy::Spaced:
    return "spaced";
  }
  assert(false && "unknown policy");
  return "unknown";
}
