//===- core/FreqCode.h - The brr 4-bit frequency encoding ----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-on-random instruction encodes its taken-frequency in a 4-bit
/// field, freq, mapped to the probability (1/2)^(freq+1) (Section 3.2).
/// This gives sixteen frequencies from 50% (freq=0) down to about 0.0015%
/// (freq=15); the "+1" avoids wasting an encoding on a 100%-taken branch,
/// which is just an unconditional jump.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CORE_FREQCODE_H
#define BOR_CORE_FREQCODE_H

#include <cassert>
#include <cstdint>

namespace bor {

/// The 4-bit frequency field of a branch-on-random instruction.
class FreqCode {
public:
  static constexpr unsigned NumValues = 16;

  /// Constructs from the raw 4-bit field value (0..15).
  explicit FreqCode(unsigned Raw) : Raw(Raw) {
    assert(Raw < NumValues && "freq field is 4 bits");
  }

  unsigned raw() const { return Raw; }

  /// Taken probability, (1/2)^(freq+1).
  double probability() const;

  /// Expected number of instruction executions per taken branch, 2^(freq+1).
  uint64_t expectedInterval() const { return 1ULL << (Raw + 1); }

  /// Number of (nominally independent) random bits that must all be 1 for
  /// the branch to be taken: freq+1 (Section 3.3's AND-gate sizes 2..16 are
  /// for freq >= 1; freq=0 sources a single LFSR bit directly).
  unsigned numRandomBits() const { return Raw + 1; }

  /// The encoding whose expected interval is \p Interval, which must be a
  /// power of two in [2, 65536].
  static FreqCode forInterval(uint64_t Interval);

  /// The encodable frequency closest to \p P (in log space); \p P is clamped
  /// to the representable range (1/2 .. 1/65536].
  static FreqCode nearest(double P);

  friend bool operator==(FreqCode A, FreqCode B) { return A.Raw == B.Raw; }
  friend bool operator!=(FreqCode A, FreqCode B) { return !(A == B); }

private:
  unsigned Raw;
};

} // namespace bor

#endif // BOR_CORE_FREQCODE_H
