//===- core/BrrUnit.cpp - The decode-stage branch-on-random unit ---------===//

#include "core/BrrUnit.h"

#include "lfsr/TapCatalog.h"

#include <bit>

using namespace bor;

static Lfsr makeRegister(const BrrUnitConfig &Config) {
  if (Config.TapMask != 0)
    return Lfsr(Config.LfsrWidth, Config.TapMask, Config.Seed);
  return defaultTapSet(Config.LfsrWidth).makeLfsr(Config.Seed);
}

BrrUnit::BrrUnit(const BrrUnitConfig &Config)
    : Config(Config), Register(makeRegister(Config)) {
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw)
    AndMasks[Raw] =
        selectAndMask(Config.Policy, Raw + 1, Config.LfsrWidth);
}

std::array<bool, FreqCode::NumValues> BrrUnit::andOutputs() const {
  std::array<bool, FreqCode::NumValues> Outputs;
  uint64_t State = Register.state();
  for (unsigned Raw = 0; Raw != FreqCode::NumValues; ++Raw)
    Outputs[Raw] = (State & AndMasks[Raw]) == AndMasks[Raw];
  return Outputs;
}

bool BrrUnit::clockLfsr() {
  ++Evaluations;
  return Register.step();
}

bool BrrUnit::evaluate(FreqCode Freq) {
  uint64_t Mask = AndMasks[Freq.raw()];
  bool Taken = (Register.state() & Mask) == Mask;
  clockLfsr();
  return Taken;
}

DeterministicBrrUnit::DeterministicBrrUnit(const BrrUnitConfig &Config,
                                           unsigned MaxInFlight)
    : BrrUnit(Config), MaxInFlight(MaxInFlight) {
  assert(MaxInFlight > 0 && "need room for at least one in-flight brr");
}

bool DeterministicBrrUnit::evaluate(FreqCode Freq) {
  uint64_t Mask = andMaskFor(Freq);
  bool Taken = (lfsr().state() & Mask) == Mask;
  assert(History.size() < MaxInFlight &&
         "more speculative brrs in flight than the recovery buffer holds; "
         "retire or squash first");
  History.push_back(clockLfsr());
  return Taken;
}

void DeterministicBrrUnit::squashYoungest(unsigned N) {
  assert(N <= History.size() && "squashing more brrs than are in flight");
  for (unsigned I = 0; I != N; ++I) {
    lfsr().stepBack(History.back());
    History.pop_back();
  }
}

void DeterministicBrrUnit::retireOldest(unsigned N) {
  assert(N <= History.size() && "retiring more brrs than are in flight");
  History.erase(History.begin(), History.begin() + N);
}
