//===- core/DeterministicBrr.cpp - Counter-triggered brr ------------------===//

#include "core/DeterministicBrr.h"

// Header-only today; this file anchors the translation unit so the build
// keeps a stable home for future out-of-line definitions.
