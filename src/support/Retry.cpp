//===- support/Retry.cpp - Capped exponential backoff with a retry budget ===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Retry.h"

namespace bor {
namespace support {

double BackoffPolicy::delayFor(unsigned Retry) const {
  double D = InitialS;
  for (unsigned I = 0; I != Retry; ++I) {
    D *= Multiplier;
    if (D >= CapS)
      return CapS;
  }
  return D < CapS ? D : CapS;
}

void RetryState::scheduleRetry(double Now) {
  if (exhausted())
    return;
  double Delay = Policy.delayFor(Retries);
  ++Retries;
  NotBefore = Now + Delay;
}

} // namespace support
} // namespace bor
