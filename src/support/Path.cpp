//===- support/Path.cpp - Small filesystem helpers for output files ------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Path.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

namespace fs = std::filesystem;

bool bor::ensureDirs(const std::string &Dir, std::string &Err) {
  if (Dir.empty())
    return true;
  std::error_code Ec;
  // create_directories returns false both for "already existed" and for
  // failure; only the error code distinguishes them.
  fs::create_directories(fs::path(Dir), Ec);
  if (Ec) {
    Err = "cannot create directory '" + Dir + "': " + Ec.message();
    return false;
  }
  if (!fs::is_directory(fs::path(Dir), Ec)) {
    Err = "'" + Dir + "' exists but is not a directory";
    return false;
  }
  return true;
}

bool bor::ensureParentDirs(const std::string &Path, std::string &Err) {
  fs::path Parent = fs::path(Path).parent_path();
  if (Parent.empty())
    return true;
  return ensureDirs(Parent.string(), Err);
}

std::string bor::joinPath(const std::string &A, const std::string &B) {
  if (A.empty())
    return B;
  if (B.empty())
    return A;
  if (A.back() == '/')
    return A + B;
  return A + "/" + B;
}

std::string bor::atomicTempPath(const std::string &Path) {
  return Path + ".tmp";
}

bool bor::writeFileAtomic(const std::string &Path,
                          const std::string &Contents, std::string &Err) {
  if (!ensureParentDirs(Path, Err))
    return false;
  const std::string Tmp = atomicTempPath(Path);
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    Err = "cannot open '" + Tmp + "' for writing";
    return false;
  }
  bool Ok = Contents.empty() ||
            std::fwrite(Contents.data(), 1, Contents.size(), F) ==
                Contents.size();
  Ok = std::fflush(F) == 0 && Ok;
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    Err = "error writing '" + Tmp + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Err = "cannot rename '" + Tmp + "' to '" + Path + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
