//===- support/Socket.h - Minimal TCP utilities for the sweep service ----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX socket layer under src/svc/: address parsing
/// ("host:port", ":port", bare "port"), a listener with ephemeral-port
/// support, blocking connect with a timeout, signal-safe full-buffer
/// sends, and a FrameBuffer that reassembles the service's
/// length-prefixed frames from a byte stream. Everything reports errors
/// through return values + an Err string — no exceptions, no global
/// state. SIGPIPE is suppressed per-send (MSG_NOSIGNAL) so a peer
/// vanishing mid-write surfaces as an error, not a process kill.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_SOCKET_H
#define BOR_SUPPORT_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace bor {
namespace net {

/// Splits "host:port" (or ":port", or a bare "port") into components.
/// An empty host defaults to 127.0.0.1. Returns false with \p Err set on
/// a malformed port (not a number, or outside 0..65535; 0 requests an
/// ephemeral port from the kernel).
bool parseHostPort(const std::string &Addr, std::string &Host, int &Port,
                   std::string &Err);

/// Binds and listens on \p Host:\p Port (SO_REUSEADDR). Returns the
/// listening fd, or -1 with \p Err set.
int listenTcp(const std::string &Host, int Port, std::string &Err);

/// The port a socket is actually bound to (resolves port 0 requests).
/// Returns -1 on failure.
int boundPort(int Fd);

/// Blocking connect to \p Host:\p Port, giving up after \p TimeoutS
/// seconds. Returns the connected fd, or -1 with \p Err set.
int connectTcp(const std::string &Host, int Port, double TimeoutS,
               std::string &Err);

/// Writes all \p Len bytes of \p Data (retrying short writes, EINTR).
/// Returns false when the peer is gone or the fd errors.
bool sendAll(int Fd, const void *Data, size_t Len);

/// Closes \p Fd, ignoring EINTR/EBADF noise. Safe on -1.
void closeFd(int Fd);

/// Reassembles length-prefixed frames from a TCP byte stream. The wire
/// format (see svc/Protocol.h) is
///
///   <decimal payload length> '\n' <payload bytes> '\n'
///
/// Feed raw bytes with append(); next() pops one complete payload at a
/// time. A malformed prefix or an oversized frame poisons the buffer
/// (bad() turns true) — the connection should be dropped, not resynced.
class FrameBuffer {
public:
  /// Frames above this size indicate a corrupt stream, not real data.
  static constexpr size_t MaxFrameBytes = 64u << 20;

  void append(const char *Data, size_t Len) { Buf.append(Data, Len); }

  /// Extracts the next complete frame payload into \p Payload. Returns
  /// false when no complete frame is buffered (or the stream is bad).
  bool next(std::string &Payload);

  bool bad() const { return Bad; }
  size_t buffered() const { return Buf.size(); }

private:
  std::string Buf;
  bool Bad = false;
};

/// Encodes one frame payload in the wire format FrameBuffer decodes.
std::string encodeFrame(const std::string &Payload);

} // namespace net
} // namespace bor

#endif // BOR_SUPPORT_SOCKET_H
