//===- support/Path.h - Small filesystem helpers for output files --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one filesystem policy every output writer shares: a path given on
/// the command line (--json, --trace, --counters-out, --run-dir, ...) gets
/// its missing parent directories created, and a path that cannot be
/// written fails loudly with a diagnostic naming the path — never silent
/// loss of a run's results.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_PATH_H
#define BOR_SUPPORT_PATH_H

#include <string>

namespace bor {

/// Creates every missing parent directory of file path \p Path (a no-op
/// when the parent already exists or \p Path has no directory component).
/// Returns false and sets \p Err to a message naming the offending path
/// when a component cannot be created (e.g. a parent is a regular file).
bool ensureParentDirs(const std::string &Path, std::string &Err);

/// Creates directory \p Dir itself, plus any missing parents.
bool ensureDirs(const std::string &Dir, std::string &Err);

/// Joins two path components with exactly one separator.
std::string joinPath(const std::string &A, const std::string &B);

} // namespace bor

#endif // BOR_SUPPORT_PATH_H
