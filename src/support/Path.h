//===- support/Path.h - Small filesystem helpers for output files --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one filesystem policy every output writer shares: a path given on
/// the command line (--json, --trace, --counters-out, --run-dir, ...) gets
/// its missing parent directories created, and a path that cannot be
/// written fails loudly with a diagnostic naming the path — never silent
/// loss of a run's results.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_PATH_H
#define BOR_SUPPORT_PATH_H

#include <string>

namespace bor {

/// Creates every missing parent directory of file path \p Path (a no-op
/// when the parent already exists or \p Path has no directory component).
/// Returns false and sets \p Err to a message naming the offending path
/// when a component cannot be created (e.g. a parent is a regular file).
bool ensureParentDirs(const std::string &Path, std::string &Err);

/// Creates directory \p Dir itself, plus any missing parents.
bool ensureDirs(const std::string &Dir, std::string &Err);

/// Joins two path components with exactly one separator.
std::string joinPath(const std::string &A, const std::string &B);

/// The scratch name atomic writers stage into before renaming over
/// \p Path: "<path>.tmp". A crash mid-write leaves only this file behind;
/// the next writer overwrites it, and readers never see it.
std::string atomicTempPath(const std::string &Path);

/// Writes \p Contents to \p Path atomically: parent directories are
/// created, the bytes go to atomicTempPath(Path) first, and only a
/// successful write + close renames the temp file over \p Path. A killed
/// process therefore never leaves a truncated \p Path — either the old
/// file (or nothing) or the complete new file. Any pre-existing stale
/// temp file is simply overwritten. Returns false with \p Err naming the
/// path on failure (the temp file is removed best-effort).
bool writeFileAtomic(const std::string &Path, const std::string &Contents,
                     std::string &Err);

} // namespace bor

#endif // BOR_SUPPORT_PATH_H
