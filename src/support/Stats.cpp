//===- support/Stats.cpp - Streaming statistics helpers ------------------===//

#include "support/Stats.h"

#include <cmath>
#include <limits>

using namespace bor;

void RunningStat::add(double X) {
  ++N;
  if (N == 1) {
    Mean = Min = Max = X;
    M2 = 0.0;
    return;
  }
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
  if (X < Min)
    Min = X;
  if (X > Max)
    Max = X;
}

double RunningStat::min() const {
  return N ? Min : std::numeric_limits<double>::quiet_NaN();
}

double RunningStat::max() const {
  return N ? Max : std::numeric_limits<double>::quiet_NaN();
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95HalfWidth() const {
  if (N < 2)
    return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(N));
}

double bor::percent(double Part, double Whole) {
  if (Whole == 0.0)
    return 0.0;
  return 100.0 * Part / Whole;
}

GapHistogram::GapHistogram(size_t NumBuckets) : Buckets(NumBuckets, 0) {}

void GapHistogram::add(uint64_t Gap) {
  ++Total;
  SumGaps += static_cast<double>(Gap);
  if (Gap < Buckets.size()) {
    ++Buckets[Gap];
    return;
  }
  ++Overflow;
}

uint64_t GapHistogram::bucket(size_t I) const {
  assert(I < Buckets.size() && "bucket index out of range");
  return Buckets[I];
}

double GapHistogram::meanGap() const {
  if (Total == 0)
    return 0.0;
  return SumGaps / static_cast<double>(Total);
}
