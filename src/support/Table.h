//===- support/Table.h - Column-aligned text tables for bench output -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal column-aligned table printer. The benchmark harness uses it to
/// print the rows/series corresponding to each figure of the paper so that
/// results can be diffed against EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_TABLE_H
#define BOR_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace bor {

/// Accumulates rows of string cells and prints them with columns padded to
/// the widest cell. The first row added is treated as the header.
class Table {
public:
  void addRow(std::vector<std::string> Cells);

  /// Convenience: formats a double with \p Precision digits after the point.
  static std::string fmt(double Value, int Precision = 2);
  static std::string fmt(uint64_t Value);

  /// Renders the table to \p Out (defaults to stdout) with a separator rule
  /// under the header row.
  void print(std::FILE *Out = stdout) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace bor

#endif // BOR_SUPPORT_TABLE_H
