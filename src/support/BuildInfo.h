//===- support/BuildInfo.h - Build provenance for run manifests -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What produced this binary: the git revision (captured at configure
/// time), the compiler, and the build type. A run manifest embeds these so
/// a regression report can say *which build* a number came from — without
/// it, two run dirs are just anonymous piles of metrics.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_BUILDINFO_H
#define BOR_SUPPORT_BUILDINFO_H

namespace bor {

struct BuildInfo {
  const char *GitRevision; ///< short hash, "+dirty" suffixed; "unknown"
  const char *Compiler;    ///< e.g. "GNU 13.2.0"
  const char *BuildType;   ///< CMAKE_BUILD_TYPE, may be ""
  const char *Flags;       ///< CXX flags in effect, may be ""
};

/// The build this translation unit was compiled into.
const BuildInfo &buildInfo();

} // namespace bor

#endif // BOR_SUPPORT_BUILDINFO_H
