//===- support/Rng.h - Deterministic RNG for workload synthesis ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generators used to *synthesize
/// workloads* (text, call traces, program shapes). These are deliberately
/// separate from the LFSR in src/lfsr/: the LFSR models the proposed
/// hardware, whereas these generators model the environment the hardware is
/// evaluated in. Keeping them apart ensures experiments never accidentally
/// correlate the workload with the sampling hardware.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_RNG_H
#define BOR_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bor {

/// SplitMix64: tiny, fast generator mainly used to seed Xoshiro256 and to
/// derive independent sub-streams from a single experiment seed.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next();

private:
  uint64_t State;
};

/// Xoshiro256**: the workhorse generator for workload synthesis. Seeded via
/// SplitMix64 so that any 64-bit seed yields a well-mixed state.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed);

  uint64_t next();

  /// Returns a uniform double in [0, 1).
  double nextDouble();

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P);

private:
  uint64_t State[4];
};

/// Samples from a Zipf distribution over ranks {0, ..., N-1} with skew
/// parameter S (probability of rank k proportional to 1/(k+1)^S). Used to
/// model hot-method distributions in synthetic managed-runtime workloads.
///
/// Sampling is O(log N) via binary search on the precomputed CDF.
class ZipfSampler {
public:
  ZipfSampler(size_t N, double S);

  size_t sample(Xoshiro256 &Rng) const;

  /// Exact probability of rank \p K under this distribution.
  double probability(size_t K) const;

  size_t size() const { return Cdf.size(); }

private:
  std::vector<double> Cdf;
};

} // namespace bor

#endif // BOR_SUPPORT_RNG_H
