//===- support/Rng.cpp - Deterministic RNG for workload synthesis --------===//

#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace bor;

uint64_t SplitMix64::next() {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

Xoshiro256::Xoshiro256(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (uint64_t &Word : State)
    Word = Seeder.next();
}

static inline uint64_t rotl64(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Xoshiro256::next() {
  uint64_t Result = rotl64(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl64(State[3], 45);
  return Result;
}

double Xoshiro256::nextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t Xoshiro256::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Rejection sampling to avoid modulo bias; the retry probability is
  // negligible for the bounds used in workload synthesis.
  uint64_t Threshold = (0 - Bound) % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

bool Xoshiro256::nextBool(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return nextDouble() < P;
}

ZipfSampler::ZipfSampler(size_t N, double S) {
  assert(N > 0 && "Zipf distribution needs at least one rank");
  Cdf.resize(N);
  double Sum = 0.0;
  for (size_t K = 0; K != N; ++K) {
    Sum += 1.0 / std::pow(static_cast<double>(K + 1), S);
    Cdf[K] = Sum;
  }
  for (double &V : Cdf)
    V /= Sum;
  Cdf.back() = 1.0;
}

size_t ZipfSampler::sample(Xoshiro256 &Rng) const {
  double U = Rng.nextDouble();
  auto It = std::lower_bound(Cdf.begin(), Cdf.end(), U);
  if (It == Cdf.end())
    return Cdf.size() - 1;
  return static_cast<size_t>(It - Cdf.begin());
}

double ZipfSampler::probability(size_t K) const {
  assert(K < Cdf.size() && "rank out of range");
  if (K == 0)
    return Cdf[0];
  return Cdf[K] - Cdf[K - 1];
}
