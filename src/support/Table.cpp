//===- support/Table.cpp - Column-aligned text tables --------------------===//

#include "support/Table.h"

#include <algorithm>
#include <cinttypes>

using namespace bor;

void Table::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string Table::fmt(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string Table::fmt(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, Value);
  return Buf;
}

void Table::print(std::FILE *Out) const {
  if (Rows.empty())
    return;

  size_t NumCols = 0;
  for (const auto &Row : Rows)
    NumCols = std::max(NumCols, Row.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto printRow = [&](const std::vector<std::string> &Row) {
    for (size_t C = 0; C != NumCols; ++C) {
      const std::string Cell = C < Row.size() ? Row[C] : "";
      std::fprintf(Out, "%-*s", static_cast<int>(Widths[C] + 2), Cell.c_str());
    }
    std::fprintf(Out, "\n");
  };

  printRow(Rows.front());
  size_t RuleWidth = 0;
  for (size_t W : Widths)
    RuleWidth += W + 2;
  std::fprintf(Out, "%s\n", std::string(RuleWidth, '-').c_str());
  for (size_t R = 1; R < Rows.size(); ++R)
    printRow(Rows[R]);
}
