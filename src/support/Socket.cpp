//===- support/Socket.cpp - Minimal TCP utilities for the sweep service --===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace bor {
namespace net {

bool parseHostPort(const std::string &Addr, std::string &Host, int &Port,
                   std::string &Err) {
  std::string PortStr;
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos) {
    Host = "";
    PortStr = Addr;
  } else {
    Host = Addr.substr(0, Colon);
    PortStr = Addr.substr(Colon + 1);
  }
  if (Host.empty())
    Host = "127.0.0.1";
  if (PortStr.empty()) {
    Err = "address '" + Addr + "' has no port";
    return false;
  }
  char *End = nullptr;
  long P = std::strtol(PortStr.c_str(), &End, 10);
  if (*End != '\0' || P < 0 || P > 65535) {
    Err = "bad port '" + PortStr + "' in address '" + Addr + "'";
    return false;
  }
  Port = static_cast<int>(P);
  return true;
}

namespace {

bool fillSockaddr(const std::string &Host, int Port, sockaddr_in &SA,
                  std::string &Err) {
  std::memset(&SA, 0, sizeof(SA));
  SA.sin_family = AF_INET;
  SA.sin_port = htons(static_cast<uint16_t>(Port));
  if (inet_pton(AF_INET, Host.c_str(), &SA.sin_addr) != 1) {
    Err = "cannot resolve host '" + Host + "' (IPv4 dotted quad expected)";
    return false;
  }
  return true;
}

} // namespace

int listenTcp(const std::string &Host, int Port, std::string &Err) {
  sockaddr_in SA;
  if (!fillSockaddr(Host, Port, SA, Err))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA)) != 0) {
    Err = "cannot bind " + Host + ":" + std::to_string(Port) + ": " +
          std::strerror(errno);
    closeFd(Fd);
    return -1;
  }
  if (::listen(Fd, 64) != 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    closeFd(Fd);
    return -1;
  }
  return Fd;
}

int boundPort(int Fd) {
  sockaddr_in SA;
  socklen_t Len = sizeof(SA);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&SA), &Len) != 0)
    return -1;
  return static_cast<int>(ntohs(SA.sin_port));
}

int connectTcp(const std::string &Host, int Port, double TimeoutS,
               std::string &Err) {
  sockaddr_in SA;
  if (!fillSockaddr(Host, Port, SA, Err))
    return -1;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  int RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&SA), sizeof(SA));
  if (RC != 0 && errno != EINPROGRESS) {
    Err = "cannot connect to " + Host + ":" + std::to_string(Port) + ": " +
          std::strerror(errno);
    closeFd(Fd);
    return -1;
  }
  if (RC != 0) {
    pollfd PFd{Fd, POLLOUT, 0};
    int Ready = ::poll(&PFd, 1, static_cast<int>(TimeoutS * 1000.0));
    int SoErr = 0;
    socklen_t SoLen = sizeof(SoErr);
    if (Ready > 0)
      ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &SoLen);
    if (Ready <= 0 || SoErr != 0) {
      Err = "cannot connect to " + Host + ":" + std::to_string(Port) + ": " +
            (Ready <= 0 ? "timed out" : std::strerror(SoErr));
      closeFd(Fd);
      return -1;
    }
  }
  ::fcntl(Fd, F_SETFL, Flags); // back to blocking
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

bool sendAll(int Fd, const void *Data, size_t Len) {
  const char *P = static_cast<const char *>(Data);
  while (Len != 0) {
    ssize_t N = ::send(Fd, P, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

void closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}

bool FrameBuffer::next(std::string &Payload) {
  if (Bad)
    return false;
  size_t Nl = Buf.find('\n');
  if (Nl == std::string::npos) {
    // A sane decimal prefix fits in far fewer bytes than this.
    if (Buf.size() > 32)
      Bad = true;
    return false;
  }
  uint64_t Len = 0;
  if (Nl == 0 || Nl > 20) {
    Bad = true;
    return false;
  }
  for (size_t I = 0; I != Nl; ++I) {
    char C = Buf[I];
    if (C < '0' || C > '9') {
      Bad = true;
      return false;
    }
    Len = Len * 10 + static_cast<uint64_t>(C - '0');
  }
  if (Len > MaxFrameBytes) {
    Bad = true;
    return false;
  }
  // Payload plus its trailing newline must be fully buffered.
  if (Buf.size() < Nl + 1 + Len + 1)
    return false;
  if (Buf[Nl + 1 + Len] != '\n') {
    Bad = true;
    return false;
  }
  Payload.assign(Buf, Nl + 1, Len);
  Buf.erase(0, Nl + 1 + Len + 1);
  return true;
}

std::string encodeFrame(const std::string &Payload) {
  std::string Out = std::to_string(Payload.size());
  Out += '\n';
  Out += Payload;
  Out += '\n';
  return Out;
}

} // namespace net
} // namespace bor
