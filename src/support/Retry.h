//===- support/Retry.h - Capped exponential backoff with a retry budget --===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one retry policy the sweep service (and anything else that retries)
/// shares: deterministic capped exponential backoff plus a bounded
/// attempt budget. Time never comes from a wall clock inside this file —
/// callers pass "now" in as seconds (any monotonic origin), so the policy
/// is a pure state machine and its tests need no sleeps.
///
/// A RetryState tracks one retried operation: record a failure with
/// scheduleRetry(now), ask readyAt()/ready(now) when the next attempt may
/// run, and reset() on success so later failures start the backoff ladder
/// from the bottom again. exhausted() turns true once the budget is
/// spent; the caller then degrades gracefully (the service marks the cell
/// lost) instead of retrying forever.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_RETRY_H
#define BOR_SUPPORT_RETRY_H

namespace bor {
namespace support {

/// The shape of the backoff ladder. Delays are InitialS * Multiplier^k,
/// clamped to CapS; Budget bounds the total number of attempts (the
/// first attempt counts, so Budget == 1 means "never retry").
struct BackoffPolicy {
  double InitialS = 0.1;
  double Multiplier = 2.0;
  double CapS = 5.0;
  unsigned Budget = 3;

  /// The delay before retry number \p Retry (0-based: the delay after the
  /// first failure is delayFor(0) == InitialS).
  double delayFor(unsigned Retry) const;
};

/// Mutable retry state for one operation under a BackoffPolicy.
class RetryState {
public:
  explicit RetryState(BackoffPolicy Policy = BackoffPolicy())
      : Policy(Policy) {}

  /// Records one spent attempt. Call when the attempt is issued (the
  /// service counts a lease as an attempt whether or not it reports
  /// back).
  void beginAttempt() { ++Attempts; }

  /// Records a failure at time \p Now: the next attempt becomes ready
  /// after the current rung's delay. Does nothing once exhausted.
  void scheduleRetry(double Now);

  /// True when the budget allows no further attempts.
  bool exhausted() const { return Attempts >= Policy.Budget; }

  /// Earliest time the next attempt may run (0 until a retry is
  /// scheduled).
  double readyAt() const { return NotBefore; }
  bool ready(double Now) const { return Now >= NotBefore; }

  /// A success resets the ladder: attempt count and delay start over.
  void reset() {
    Attempts = 0;
    Retries = 0;
    NotBefore = 0;
  }

  unsigned attempts() const { return Attempts; }

private:
  BackoffPolicy Policy;
  unsigned Attempts = 0; ///< attempts issued (lease grants)
  unsigned Retries = 0;  ///< failures recorded (backoff rung)
  double NotBefore = 0;
};

} // namespace support
} // namespace bor

#endif // BOR_SUPPORT_RETRY_H
