//===- support/BuildInfo.cpp - Build provenance for run manifests ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/BuildInfo.h"

// The build system stamps these onto this one source file
// (set_source_files_properties in src/CMakeLists.txt); standalone builds
// of the file still compile, they just report "unknown".
#ifndef BOR_GIT_REVISION
#define BOR_GIT_REVISION "unknown"
#endif
#ifndef BOR_BUILD_TYPE
#define BOR_BUILD_TYPE ""
#endif
#ifndef BOR_CXX_FLAGS
#define BOR_CXX_FLAGS ""
#endif

#if defined(__clang__)
#define BOR_COMPILER "Clang " __clang_version__
#elif defined(__GNUC__)
#define BOR_COMPILER "GNU " __VERSION__
#else
#define BOR_COMPILER "unknown"
#endif

const bor::BuildInfo &bor::buildInfo() {
  static const BuildInfo Info{BOR_GIT_REVISION, BOR_COMPILER, BOR_BUILD_TYPE,
                              BOR_CXX_FLAGS};
  return Info;
}
