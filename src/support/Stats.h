//===- support/Stats.h - Streaming statistics helpers --------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics utilities used by the accuracy experiments and the
/// benchmark harness: streaming mean/variance (Welford), ratio helpers, and
/// a fixed-bucket histogram for inter-sample-gap analysis.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SUPPORT_STATS_H
#define BOR_SUPPORT_STATS_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bor {

/// Streaming mean / variance accumulator (Welford's algorithm).
class RunningStat {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }

  /// Sample variance (divides by N-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Half-width of an approximate 95% confidence interval on the mean
  /// (normal approximation, 1.96 * stderr); 0 for fewer than two samples.
  double ci95HalfWidth() const;

  /// Smallest / largest sample seen. An empty accumulator has no extrema:
  /// both return quiet NaN rather than a fake 0.0 that could be mistaken
  /// for data (check count() first when NaN must not propagate).
  double min() const;
  double max() const;

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Percentage helper: 100 * Part / Whole, 0 when Whole == 0.
double percent(double Part, double Whole);

/// Histogram with unit-width integer buckets [0, NumBuckets) plus an
/// overflow bucket; used to characterize gaps between taken samples.
class GapHistogram {
public:
  explicit GapHistogram(size_t NumBuckets);

  void add(uint64_t Gap);

  uint64_t bucket(size_t I) const;
  uint64_t overflow() const { return Overflow; }
  uint64_t total() const { return Total; }

  /// Mean of all recorded gaps (overflow gaps contribute their true value).
  double meanGap() const;

  size_t numBuckets() const { return Buckets.size(); }

private:
  std::vector<uint64_t> Buckets;
  uint64_t Overflow = 0;
  uint64_t Total = 0;
  double SumGaps = 0.0;
};

} // namespace bor

#endif // BOR_SUPPORT_STATS_H
