//===- uarch/ReturnAddressStack.h - 32-entry RAS --------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A circular return-address stack (32 entries, Section 5.1): calls push
/// their return address, returns pop a predicted target. Overflow wraps and
/// silently overwrites the oldest entry; underflow predicts 0 (a guaranteed
/// misprediction, as in real hardware with an empty RAS).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_RETURNADDRESSSTACK_H
#define BOR_UARCH_RETURNADDRESSSTACK_H

#include <cstdint>
#include <vector>

namespace bor {

struct RasStats {
  uint64_t Pushes = 0;
  uint64_t Pops = 0;
  uint64_t Underflows = 0; ///< pops of an empty stack (predict 0).
};

class ReturnAddressStack {
public:
  explicit ReturnAddressStack(unsigned Entries = 32)
      : Slots(Entries, 0) {}

  void push(uint64_t ReturnAddr);

  /// Pops the predicted return target; 0 when empty.
  uint64_t pop();

  unsigned depth() const { return Depth; }
  unsigned capacity() const { return static_cast<unsigned>(Slots.size()); }
  const RasStats &stats() const { return Stats; }

private:
  std::vector<uint64_t> Slots;
  unsigned Top = 0;   ///< Index of the next free slot (mod capacity).
  unsigned Depth = 0; ///< Live entries, saturating at capacity.
  RasStats Stats;
};

} // namespace bor

#endif // BOR_UARCH_RETURNADDRESSSTACK_H
