//===- uarch/ReturnAddressStack.cpp - 32-entry RAS ------------------------===//

#include "uarch/ReturnAddressStack.h"

using namespace bor;

void ReturnAddressStack::push(uint64_t ReturnAddr) {
  ++Stats.Pushes;
  Slots[Top] = ReturnAddr;
  Top = (Top + 1) % Slots.size();
  if (Depth < Slots.size())
    ++Depth;
}

uint64_t ReturnAddressStack::pop() {
  ++Stats.Pops;
  if (Depth == 0) {
    ++Stats.Underflows;
    return 0;
  }
  Top = (Top + static_cast<unsigned>(Slots.size()) - 1) % Slots.size();
  --Depth;
  return Slots[Top];
}
