//===- uarch/Pipeview.h - Pipeline diagram rendering ----------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic pipeline ("pipeview") diagrams built from the Pipeline's
/// per-instruction timestamp observer: one row per committed instruction,
/// one column per cycle, with stage letters
///
///   F fetch   D decode   S dispatch   I issue   E execute-complete
///   C commit  (a brr that commits at decode ends at its D column)
///
/// Used by the bor-pipeview tool and handy when debugging timing-model
/// changes; the rendering itself is deterministic and unit-tested.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_PIPEVIEW_H
#define BOR_UARCH_PIPEVIEW_H

#include "uarch/Pipeline.h"

#include <string>
#include <vector>

namespace bor {

/// Collects a bounded window of per-instruction timestamps from a Pipeline
/// and renders them as a diagram.
class PipeviewRecorder {
public:
  /// Records the first \p MaxInsts instructions after skipping
  /// \p SkipInsts committed ones.
  explicit PipeviewRecorder(size_t MaxInsts = 48, uint64_t SkipInsts = 0)
      : MaxInsts(MaxInsts), SkipInsts(SkipInsts) {}

  /// Installs this recorder as \p Pipe's observer. The recorder must
  /// outlive the pipeline's run() call.
  void attach(Pipeline &Pipe);

  const std::vector<InstTimestamps> &records() const { return Records; }

  /// Renders the diagram; empty string if nothing was recorded. Rows wider
  /// than \p MaxColumns cycles are truncated with a '+' marker.
  std::string render(size_t MaxColumns = 96) const;

private:
  size_t MaxInsts;
  uint64_t SkipInsts;
  uint64_t Seen = 0;
  std::vector<InstTimestamps> Records;
};

} // namespace bor

#endif // BOR_UARCH_PIPEVIEW_H
