//===- uarch/PipelineConfig.cpp - Section 5.1 machine configuration ------===//

#include "uarch/PipelineConfig.h"

// Configuration is an aggregate; this file anchors the translation unit.
