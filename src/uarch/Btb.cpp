//===- uarch/Btb.cpp - Branch target buffer --------------------------------===//

#include "uarch/Btb.h"

#include <bit>
#include <cassert>

using namespace bor;

Btb::Btb(const BtbConfig &Config) : Config(Config) {
  assert(Config.Assoc >= 1 && Config.Entries % Config.Assoc == 0);
  NumSets = Config.Entries / Config.Assoc;
  assert(std::has_single_bit(NumSets) && "BTB sets must be a power of two");
  Entries.resize(Config.Entries);
}

uint32_t Btb::setFor(uint64_t Pc) const {
  return static_cast<uint32_t>((Pc >> 2) & (NumSets - 1));
}

uint64_t Btb::tagFor(uint64_t Pc) const {
  return (Pc >> 2) >> std::countr_zero(NumSets);
}

std::optional<uint64_t> Btb::lookup(uint64_t Pc) {
  ++Stats.Lookups;
  ++UseClock;
  Entry *SetBase = &Entries[static_cast<size_t>(setFor(Pc)) * Config.Assoc];
  uint64_t Tag = tagFor(Pc);
  for (uint32_t W = 0; W != Config.Assoc; ++W) {
    Entry &E = SetBase[W];
    if (E.Valid && E.Tag == Tag) {
      E.LastUse = UseClock;
      ++Stats.Hits;
      return E.Target;
    }
  }
  return std::nullopt;
}

void Btb::insert(uint64_t Pc, uint64_t Target) {
  ++Stats.Inserts;
  ++UseClock;
  Entry *SetBase = &Entries[static_cast<size_t>(setFor(Pc)) * Config.Assoc];
  uint64_t Tag = tagFor(Pc);
  Entry *Victim = SetBase;
  for (uint32_t W = 0; W != Config.Assoc; ++W) {
    Entry &E = SetBase[W];
    if (E.Valid && E.Tag == Tag) {
      E.Target = Target;
      E.LastUse = UseClock;
      return;
    }
    if (!E.Valid) {
      Victim = &E;
    } else if (Victim->Valid && E.LastUse < Victim->LastUse) {
      Victim = &E;
    }
  }
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->Target = Target;
  Victim->LastUse = UseClock;
}
