//===- uarch/Pipeline.cpp - Out-of-order timing model ---------------------===//

#include "uarch/Pipeline.h"

#include "telemetry/Counters.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace bor;

void bor::publishUarchCounters(const MicroarchState &Uarch) {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter L1IAcc("cache.l1i.accesses");
  static const telemetry::Counter L1IMiss("cache.l1i.misses");
  static const telemetry::Counter L1DAcc("cache.l1d.accesses");
  static const telemetry::Counter L1DMiss("cache.l1d.misses");
  static const telemetry::Counter L2Acc("cache.l2.accesses");
  static const telemetry::Counter L2Miss("cache.l2.misses");
  static const telemetry::Counter Preds("predictor.predictions");
  static const telemetry::Counter Mispreds("predictor.mispredictions");
  static const telemetry::Counter BtbLookups("btb.lookups");
  static const telemetry::Counter BtbHits("btb.hits");
  static const telemetry::Counter BtbInserts("btb.inserts");
  static const telemetry::Counter RasPushes("ras.pushes");
  static const telemetry::Counter RasPops("ras.pops");
  static const telemetry::Counter RasUnderflows("ras.underflows");
  L1IAcc.add(Uarch.MemHier.l1i().stats().Accesses);
  L1IMiss.add(Uarch.MemHier.l1i().stats().Misses);
  L1DAcc.add(Uarch.MemHier.l1d().stats().Accesses);
  L1DMiss.add(Uarch.MemHier.l1d().stats().Misses);
  L2Acc.add(Uarch.MemHier.l2().stats().Accesses);
  L2Miss.add(Uarch.MemHier.l2().stats().Misses);
  Preds.add(Uarch.Predictor.stats().Predictions);
  Mispreds.add(Uarch.Predictor.stats().Mispredictions);
  BtbLookups.add(Uarch.TargetBuffer.stats().Lookups);
  BtbHits.add(Uarch.TargetBuffer.stats().Hits);
  BtbInserts.add(Uarch.TargetBuffer.stats().Inserts);
  RasPushes.add(Uarch.Ras.stats().Pushes);
  RasPops.add(Uarch.Ras.stats().Pops);
  RasUnderflows.add(Uarch.Ras.stats().Underflows);
}

std::string bor::describeStats(const PipelineStats &S) {
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "cycles              %" PRIu64 "\n"
      "instructions        %" PRIu64 " (IPC %.2f)\n"
      "cond branches       %" PRIu64 " (%" PRIu64 " mispredicted)\n"
      "indirect branches   %" PRIu64 " (%" PRIu64 " mispredicted)\n"
      "direct jumps        %" PRIu64 " (%" PRIu64 " decode redirects)\n"
      "brr executed        %" PRIu64 " (%" PRIu64 " taken)\n"
      "fetch stalls        icache %" PRIu64 ", backend flush %" PRIu64
      ", frontend flush %" PRIu64 "\n",
      S.Cycles, S.Insts, S.ipc(), S.CondBranches, S.CondMispredicts,
      S.IndirectBranches, S.IndirectMispredicts, S.DirectJumps,
      S.DirectJumpDecodeRedirects, S.BrrExecuted, S.BrrTaken,
      S.FetchIcacheStallCycles, S.BackendFlushCycles,
      S.FrontendFlushCycles);
  return Buf;
}

Pipeline::Pipeline(const DecodedProgram &DP, const PipelineConfig &Config,
                   BrrDecider *Decider)
    : Config(Config), Dec(DP), OwnedMach(std::make_unique<Machine>()),
      OwnedUarch(std::make_unique<MicroarchState>(Config)),
      Mach(*OwnedMach), Uarch(*OwnedUarch),
      OwnedDecider(Decider ? nullptr
                           : std::make_unique<BrrUnitDecider>(Config.Brr)),
      Oracle(DP, Mach, Decider ? *Decider : *OwnedDecider),
      Policy(this->Uarch, this->Config), DecodeStage(Config.DecodeWidth),
      DispatchStage(Config.DecodeWidth), CommitStage(Config.CommitWidth),
      RobSlotFree(Config.RobEntries, 0) {
  RegReady.fill(0); // the Oracle's constructor loads the program image
}

Pipeline::Pipeline(const Program &P, const PipelineConfig &Config,
                   BrrDecider *Decider)
    : Config(Config), OwnedDec(std::make_unique<DecodedProgram>(P)),
      Dec(*OwnedDec), OwnedMach(std::make_unique<Machine>()),
      OwnedUarch(std::make_unique<MicroarchState>(Config)),
      Mach(*OwnedMach), Uarch(*OwnedUarch),
      OwnedDecider(Decider ? nullptr
                           : std::make_unique<BrrUnitDecider>(Config.Brr)),
      Oracle(Dec, Mach, Decider ? *Decider : *OwnedDecider),
      Policy(this->Uarch, this->Config), DecodeStage(Config.DecodeWidth),
      DispatchStage(Config.DecodeWidth), CommitStage(Config.CommitWidth),
      RobSlotFree(Config.RobEntries, 0) {
  RegReady.fill(0); // the Oracle's constructor loads the program image
}

Pipeline::Pipeline(const DecodedProgram &DP, Machine &M,
                   MicroarchState &Uarch, const PipelineConfig &Config,
                   BrrDecider &Decider)
    : Config(Config), Dec(DP), Mach(M), Uarch(Uarch),
      Oracle(DP, Mach, Decider, /*LoadImage=*/false),
      Policy(this->Uarch, this->Config), DecodeStage(Config.DecodeWidth),
      DispatchStage(Config.DecodeWidth), CommitStage(Config.CommitWidth),
      RobSlotFree(Config.RobEntries, 0) {
  RegReady.fill(0);
}

Pipeline::Pipeline(const Program &P, Machine &M, MicroarchState &Uarch,
                   const PipelineConfig &Config, BrrDecider &Decider)
    : Config(Config), OwnedDec(std::make_unique<DecodedProgram>(P)),
      Dec(*OwnedDec), Mach(M), Uarch(Uarch),
      Oracle(Dec, Mach, Decider, /*LoadImage=*/false),
      Policy(this->Uarch, this->Config), DecodeStage(Config.DecodeWidth),
      DispatchStage(Config.DecodeWidth), CommitStage(Config.CommitWidth),
      RobSlotFree(Config.RobEntries, 0) {
  RegReady.fill(0);
}

Pipeline::~Pipeline() {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter Runs("pipeline.runs");
  static const telemetry::Counter Cycles("pipeline.cycles");
  static const telemetry::Counter Insts("pipeline.insts");
  static const telemetry::Counter CondBranches("pipeline.cond_branches");
  static const telemetry::Counter CondMisp("pipeline.cond_mispredicts");
  static const telemetry::Counter Indirect("pipeline.indirect_branches");
  static const telemetry::Counter IndirectMisp(
      "pipeline.indirect_mispredicts");
  static const telemetry::Counter DirectJumps("pipeline.direct_jumps");
  static const telemetry::Counter DirectRedirects(
      "pipeline.direct_jump_decode_redirects");
  static const telemetry::Counter BrrExecuted("pipeline.brr.executed");
  static const telemetry::Counter BrrTaken("pipeline.brr.taken");
  static const telemetry::Counter IcacheStalls(
      "pipeline.fetch.icache_stall_cycles");
  static const telemetry::Counter BackendFlush(
      "pipeline.fetch.backend_flush_cycles");
  static const telemetry::Counter FrontendFlush(
      "pipeline.fetch.frontend_flush_cycles");
  static const telemetry::Counter FullWidth(
      "pipeline.fetch.full_width_cycles");
  static const telemetry::HistogramCounter RunInsts("pipeline.run.insts");
  static const telemetry::HistogramCounter RunCycles("pipeline.run.cycles");
  Runs.add();
  Cycles.add(Stats.Cycles);
  Insts.add(Stats.Insts);
  CondBranches.add(Stats.CondBranches);
  CondMisp.add(Stats.CondMispredicts);
  Indirect.add(Stats.IndirectBranches);
  IndirectMisp.add(Stats.IndirectMispredicts);
  DirectJumps.add(Stats.DirectJumps);
  DirectRedirects.add(Stats.DirectJumpDecodeRedirects);
  BrrExecuted.add(Stats.BrrExecuted);
  BrrTaken.add(Stats.BrrTaken);
  IcacheStalls.add(Stats.FetchIcacheStallCycles);
  BackendFlush.add(Stats.BackendFlushCycles);
  FrontendFlush.add(Stats.FrontendFlushCycles);
  FullWidth.add(Stats.FullWidthFetchCycles);
  RunInsts.observe(Stats.Insts);
  RunCycles.observe(Stats.Cycles);
  // Attached runs borrow the sampled runner's structures; publishing them
  // here would double-count across intervals.
  if (OwnedUarch)
    publishUarchCounters(*OwnedUarch);
}

uint64_t Pipeline::fetchInstruction(const ExecRecord &R) {
  if (RedirectPending) {
    if (RedirectCycle > FetchCycle) {
      uint64_t Lost = RedirectCycle - FetchCycle;
      if (RedirectIsFrontend)
        Stats.FrontendFlushCycles += Lost;
      else
        Stats.BackendFlushCycles += Lost;
      FetchCycle = RedirectCycle;
    }
    FetchedThisCycle = 0;
    FetchBreak = false;
    RedirectPending = false;
  } else if (FetchBreak) {
    ++FetchCycle;
    FetchedThisCycle = 0;
    FetchBreak = false;
  } else if (FetchedThisCycle >= Config.FetchWidth) {
    ++FetchCycle;
    FetchedThisCycle = 0;
  }

  // One I-cache probe per distinct line; a miss stalls fetch for the fill.
  uint64_t Line = R.Pc & ~static_cast<uint64_t>(Config.MemHier.L1I.LineBytes - 1);
  if (Line != LastFetchLine) {
    unsigned Stall = Uarch.MemHier.fetchAccess(R.Pc);
    if (Stall != 0) {
      Stats.FetchIcacheStallCycles += Stall;
      FetchCycle += Stall;
      FetchedThisCycle = 0;
    }
    LastFetchLine = Line;
  }

  ++FetchedThisCycle;
  if (FetchedThisCycle == Config.FetchWidth)
    ++Stats.FullWidthFetchCycles;
  return FetchCycle;
}

uint64_t Pipeline::placeIssue(uint64_t Earliest) {
  uint64_t C = Earliest;
  for (;;) {
    unsigned &Used = IssueCount[C];
    if (Used < Config.IssueWidth) {
      ++Used;
      break;
    }
    ++C;
  }
  if ((Stats.Insts & 0x3fff) == 0 && LastCommitCycle > 1024)
    trimIssueWindow(LastCommitCycle - 1024);
  return C;
}

void Pipeline::trimIssueWindow(uint64_t Frontier) {
  IssueCount.erase(IssueCount.begin(), IssueCount.lower_bound(Frontier));
}

uint64_t Pipeline::completeExecution(const ExecRecord &R, uint64_t Issue) {
  if (R.I.isLoad()) {
    uint64_t Done =
        Issue + Uarch.MemHier.dataAccess(R.MemAddr, /*IsWrite=*/false);
    // Store-to-load forwarding: data from an in-flight store to the same
    // word is available one cycle after the store produces it.
    auto It = StoreReady.find(R.MemAddr & ~7ULL);
    if (It != StoreReady.end() &&
        It->second + Config.StoreForwardDelay > Done)
      Done = It->second + Config.StoreForwardDelay;
    return Done;
  }
  if (R.I.isStore()) {
    // Stores retire from a store buffer; the cache access is charged for
    // hit-rate accounting but does not delay commit.
    Uarch.MemHier.dataAccess(R.MemAddr, /*IsWrite=*/true);
    uint64_t Done = Issue + 1;
    StoreReady[R.MemAddr & ~7ULL] = Done;
    return Done;
  }
  if (R.I.Op == Opcode::Mul)
    return Issue + Config.MulLatency;
  return Issue + 1;
}

RunResult Pipeline::run(uint64_t MaxInsts, bool RequireHalt) {
  telemetry::TraceWriter *Detail =
      Telemetry ? Telemetry->detailTrace() : nullptr;
  while (!Oracle.halted() && Stats.Insts < MaxInsts) {
    ExecRecord R = Oracle.step();
    uint64_t F = fetchInstruction(R);

    // --- Fetch-time prediction and control classification. -------------
    bool PredictedTakenAtFetch = false; ///< fetch break, no bubble.
    bool DecodeRedirect = false;        ///< resolved in decode, short flush.
    bool BackendRedirect = false;       ///< resolved at execute, full flush.

    // Count the control classes (identically under the oracle and real
    // front ends), then let the shared update policy train the structures
    // and classify the front-end outcome.
    if (R.I.isBrr()) {
      ++Stats.BrrExecuted;
      if (R.Taken)
        ++Stats.BrrTaken;
    } else if (R.I.isCondBranch()) {
      ++Stats.CondBranches;
    } else if (R.I.isDirectJump()) {
      ++Stats.DirectJumps;
    } else if (R.I.isIndirect()) {
      ++Stats.IndirectBranches;
    }

    if (Config.PerfectBranchPrediction) {
      // Oracle front end: redirect with zero penalty, never touch the
      // real predictor structures.
      if (R.Taken && R.I.isControl() && R.I.Op != Opcode::Halt)
        PredictedTakenAtFetch = true;
    } else {
      switch (Policy.observeTimed(R)) {
      case BranchOutcome::None:
        break;
      case BranchOutcome::PredictedTaken:
        PredictedTakenAtFetch = true;
        break;
      case BranchOutcome::DecodeRedirect:
        // A taken brr's short flush, or a direct jump's BTB-miss bubble.
        if (R.I.isDirectJump())
          ++Stats.DirectJumpDecodeRedirects;
        DecodeRedirect = true;
        break;
      case BranchOutcome::BackendRedirect:
        if (R.I.isCondBranch())
          ++Stats.CondMispredicts;
        else if (R.I.isIndirect())
          ++Stats.IndirectMispredicts;
        BackendRedirect = true;
        break;
      }
    }

    // --- Timestamp the instruction through the stages. ------------------
    uint64_t D = DecodeStage.place(F + Config.FetchToDecode);
    uint64_t Done;
    uint64_t C;
    uint64_t Disp = 0;
    uint64_t Issue = 0;

    bool CommitsAtDecode = R.I.isBrr() && !Config.BrrAsBackendBranch &&
                           Config.BrrCommitsAtDecode &&
                           Config.BrrTrapCycles == 0;
    if (CommitsAtDecode) {
      // No ROB entry, no rename, no issue slot, no commit bandwidth: the
      // instruction is architecturally complete once decode resolves it.
      Done = D;
      C = D;
    } else {
      uint64_t RobReady = 0;
      if (RobAllocated >= Config.RobEntries)
        RobReady = RobSlotFree[RobAllocated % Config.RobEntries] + 1;
      Disp = DispatchStage.place(
          std::max(D + Config.DecodeToDispatch, RobReady));

      uint64_t Earliest = Disp + Config.DispatchToIssue;
      uint8_t Srcs[2];
      unsigned NumSrcs = R.I.sourceRegs(Srcs);
      for (unsigned S = 0; S != NumSrcs; ++S)
        Earliest = std::max(Earliest, RegReady[Srcs[S]]);

      Issue = placeIssue(Earliest);
      Done = completeExecution(R, Issue);
      if (R.I.writesReg())
        RegReady[R.I.Rd] = Done;

      C = CommitStage.place(Done + 1);
      RobSlotFree[RobAllocated % Config.RobEntries] = C;
      ++RobAllocated;
      LastCommitCycle = C;
    }

    if (Observer) {
      InstTimestamps TS;
      TS.Pc = R.Pc;
      TS.I = R.I;
      TS.Fetch = F;
      TS.Decode = D;
      TS.Dispatch = Disp;
      TS.Issue = Issue;
      TS.Done = Done;
      TS.Commit = C;
      TS.CommittedAtDecode = CommitsAtDecode;
      TS.Mispredicted = BackendRedirect;
      TS.FrontEndFlush = DecodeRedirect;
      Observer(TS);
    }

    ++Stats.Insts;
    Stats.Cycles = std::max({Stats.Cycles, C, D});

    if (R.I.Op == Opcode::Marker)
      Markers.push_back({R.I.Imm, C, Stats.Insts});

    // --- Redirect scheduling. -------------------------------------------
    if (R.I.isBrr() && Config.BrrTrapCycles != 0 &&
        !Config.BrrAsBackendBranch) {
      // Trap emulation: the invalid opcode excepts at decode; the handler
      // emulates the LFSR and resumes at the fall-through or the target.
      RedirectPending = true;
      RedirectCycle = D + Config.BrrTrapCycles;
      RedirectIsFrontend = false;
    } else if (BackendRedirect) {
      RedirectPending = true;
      RedirectCycle = Done + Config.MispredictRedirect;
      RedirectIsFrontend = false;
    } else if (DecodeRedirect) {
      RedirectPending = true;
      RedirectCycle = D + Config.FrontEndRedirect;
      RedirectIsFrontend = true;
    } else if (PredictedTakenAtFetch && Config.FetchStopsAtTakenBranch) {
      FetchBreak = true;
    }

    if (Detail) {
      if (R.I.isBrr() && R.Taken)
        Detail->instant("brr taken", "pipeline",
                        {telemetry::TraceArg::num("pc", R.Pc),
                         telemetry::TraceArg::num("cycle", C)});
      if (RedirectPending)
        Detail->instant(RedirectIsFrontend ? "frontend flush"
                                           : "backend flush",
                        "pipeline",
                        {telemetry::TraceArg::num("pc", R.Pc),
                         telemetry::TraceArg::num("cycle", RedirectCycle)});
    }
  }

  assert((!RequireHalt || Oracle.halted()) &&
         "program did not halt within the instruction budget");
  (void)RequireHalt;
  return {Stats, Markers};
}
