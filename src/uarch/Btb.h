//===- uarch/Btb.h - Branch target buffer ---------------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tagged, set-associative branch target buffer (1024 entries, Section
/// 5.1). Taken branches and jumps install their targets; branch-on-random
/// deliberately never does (Section 3.3 summary, item 7), so it cannot
/// evict program branches or trigger spurious taken predictions by
/// aliasing — one of the pollution effects the paper measures for the
/// counter-based framework.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_BTB_H
#define BOR_UARCH_BTB_H

#include <cstdint>
#include <optional>
#include <vector>

namespace bor {

struct BtbConfig {
  uint32_t Entries = 1024;
  uint32_t Assoc = 4;
};

struct BtbStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Inserts = 0;
};

class Btb {
public:
  explicit Btb(const BtbConfig &Config = BtbConfig());

  /// Returns the stored target for the branch at \p Pc, if present.
  std::optional<uint64_t> lookup(uint64_t Pc);

  /// Installs (or refreshes) the mapping Pc -> Target, evicting LRU.
  void insert(uint64_t Pc, uint64_t Target);

  const BtbStats &stats() const { return Stats; }
  const BtbConfig &config() const { return Config; }

private:
  struct Entry {
    uint64_t Tag = 0;
    uint64_t Target = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  uint32_t setFor(uint64_t Pc) const;
  uint64_t tagFor(uint64_t Pc) const;

  BtbConfig Config;
  uint32_t NumSets;
  uint64_t UseClock = 0;
  std::vector<Entry> Entries;
  BtbStats Stats;
};

} // namespace bor

#endif // BOR_UARCH_BTB_H
