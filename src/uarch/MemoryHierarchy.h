//===- uarch/MemoryHierarchy.h - L1I/L1D/L2/memory latencies -------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.1 memory system: 32KB 4-way 64B-line L1 caches, a shared
/// 1MB 8-way L2 responding in 8 cycles, and 140-cycle memory.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_MEMORYHIERARCHY_H
#define BOR_UARCH_MEMORYHIERARCHY_H

#include "uarch/Cache.h"

namespace bor {

struct MemHierConfig {
  CacheConfig L1I = {32 * 1024, 4, 64};
  CacheConfig L1D = {32 * 1024, 4, 64};
  CacheConfig L2 = {1024 * 1024, 8, 64};
  /// Load-to-use latency on an L1D hit.
  unsigned L1DHitCycles = 2;
  /// Additional latency when the L1 misses but the L2 hits.
  unsigned L2HitCycles = 8;
  /// Additional latency when the L2 misses.
  unsigned MemCycles = 140;
};

/// Two-level hierarchy with split L1s over a shared L2.
class MemoryHierarchy {
public:
  explicit MemoryHierarchy(const MemHierConfig &Config = MemHierConfig());

  /// Instruction-fetch access for the line containing \p Addr. Returns the
  /// stall cycles this access adds to fetch: 0 on an L1I hit.
  unsigned fetchAccess(uint64_t Addr);

  /// Data access (load or store) for \p Addr. Returns the total access
  /// latency in cycles (L1DHitCycles on a hit).
  unsigned dataAccess(uint64_t Addr, bool IsWrite);

  const Cache &l1i() const { return L1I; }
  const Cache &l1d() const { return L1D; }
  const Cache &l2() const { return L2; }
  const MemHierConfig &config() const { return Config; }

private:
  MemHierConfig Config;
  Cache L1I;
  Cache L1D;
  Cache L2;
};

} // namespace bor

#endif // BOR_UARCH_MEMORYHIERARCHY_H
