//===- uarch/BranchPolicy.h - Shared predictor/BTB/RAS update policy -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end structure-update policy applied to every committed
/// control-flow instruction, shared by the two consumers of a
/// MicroarchState: the timed Pipeline and the untimed FunctionalWarmer.
/// Keeping both on one policy type guarantees structures functionally
/// warmed between detailed intervals are in exactly the state a detailed
/// run would have left them in — the property sampled simulation depends
/// on (docs/SAMPLING.md).
///
/// The rules (Section 5.1, and Section 3.3 for brr):
///  * conditional branches predict through the tournament predictor gated
///    by a BTB hit, train on resolution, repair history on mispredicts,
///    and insert their target when taken;
///  * branch-on-random never touches predictor, BTB or RAS;
///  * direct jumps push the RAS when they link, and insert into the BTB
///    on a miss;
///  * returns (jalr r0, lr) predict through the RAS; other indirects
///    predict through the BTB and insert their target; linking indirects
///    push the RAS.
///
/// The timed and warming entry points perform the same structure
/// operations in the same order, with one deliberate exception: a
/// non-return indirect's BTB *lookup* happens only on the timed path,
/// where a target prediction is actually made and validated. Functional
/// warming predicts nothing, so it applies only the insert/update rules —
/// matching the recency state an interleaved warm/detailed schedule has
/// always produced, which keeps sampled results bit-stable.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_BRANCHPOLICY_H
#define BOR_UARCH_BRANCHPOLICY_H

#include "sim/Interpreter.h"
#include "uarch/MicroarchState.h"

namespace bor {

/// Front-end classification of one committed control instruction under the
/// update policy.
enum class BranchOutcome : uint8_t {
  /// Not subject to the policy (non-control, halt, or an invisible brr
  /// falling through).
  None,
  /// Correctly predicted taken at fetch: fetch breaks, no bubble.
  PredictedTaken,
  /// Resolved in decode (taken brr, BTB-missing direct jump): short flush.
  DecodeRedirect,
  /// Resolved in the back end (cond/indirect mispredict): full flush.
  BackendRedirect,
};

/// The shared update policy. Stateless beyond its references; both
/// consumers construct one over the MicroarchState they train.
class BranchUpdatePolicy {
public:
  BranchUpdatePolicy(MicroarchState &Uarch, const PipelineConfig &Config)
      : Uarch(Uarch), Config(Config) {}

  /// Timed path (Pipeline): applies the update rules and classifies the
  /// front-end outcome for timing. Must not be called under
  /// PerfectBranchPrediction (the oracle front end bypasses the
  /// structures entirely).
  BranchOutcome observeTimed(const ExecRecord &R);

  /// Warming path (FunctionalWarmer): applies the same update rules
  /// without forming a target prediction. No-op under
  /// PerfectBranchPrediction.
  void observeWarming(const ExecRecord &R);

private:
  MicroarchState &Uarch;
  const PipelineConfig &Config;
};

} // namespace bor

#endif // BOR_UARCH_BRANCHPOLICY_H
