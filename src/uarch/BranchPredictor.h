//===- uarch/BranchPredictor.h - Tournament predictor (Section 5.1) ------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's front end uses a tournament predictor combining a 16-bit
/// gshare with a 64K-entry bimodal predictor. Global history is updated
/// speculatively at prediction time and repaired on mispredictions.
///
/// Two of the paper's overhead sources live here (Section 2, item 6):
/// sampling branches from a counter-based framework enter these tables,
/// (a) diluting the useful global history with low-entropy outcomes and
/// (b) aliasing destructively with program branches. Branch-on-random
/// instructions never touch the predictor at all (Section 3.3), which is
/// modelled simply by the pipeline never calling into it for brr.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_BRANCHPREDICTOR_H
#define BOR_UARCH_BRANCHPREDICTOR_H

#include <cstdint>
#include <vector>

namespace bor {

/// Which direction predictor the front end uses. The paper's machine is a
/// tournament (gshare + bimodal); the single-component variants exist for
/// sensitivity studies of the framework-pollution effects (Section 2,
/// item 6), which hit history-based predictors hardest.
enum class PredictorKind {
  Tournament,
  GshareOnly,
  BimodalOnly,
};

struct PredictorConfig {
  PredictorKind Kind = PredictorKind::Tournament;
  unsigned HistoryBits = 16;      ///< gshare history length / table index.
  unsigned BimodalEntries = 1u << 16; ///< 64K-entry bimodal.
  unsigned ChooserEntries = 1u << 16;
};

struct PredictorStats {
  uint64_t Predictions = 0;
  uint64_t Mispredictions = 0;
};

/// A prediction plus the pre-prediction global history, which the pipeline
/// keeps with the in-flight branch so tables can be updated with the
/// history that produced the prediction and history can be repaired on a
/// squash.
struct BranchPrediction {
  bool Taken = false;
  uint32_t HistBefore = 0;
};

/// gshare + bimodal tournament predictor with 2-bit counters throughout.
class TournamentPredictor {
public:
  explicit TournamentPredictor(
      const PredictorConfig &Config = PredictorConfig());

  /// Predicts the branch at \p Pc and speculatively shifts the prediction
  /// into the global history.
  BranchPrediction predict(uint64_t Pc);

  /// Trains tables for a resolved branch: \p HistBefore must be the value
  /// captured by predict(), \p PredictedTaken its output, \p Taken the
  /// actual outcome.
  void resolve(uint64_t Pc, uint32_t HistBefore, bool PredictedTaken,
               bool Taken);

  /// Restores history after a misprediction flush: everything younger than
  /// the branch is squashed and the branch's actual outcome is shifted in.
  void repairHistory(uint32_t HistBefore, bool Taken);

  uint32_t history() const { return History; }
  const PredictorStats &stats() const { return Stats; }
  const PredictorConfig &config() const { return Config; }

  /// Storage bits across all tables (for reporting).
  uint64_t stateBits() const;

private:
  static void train(uint8_t &Counter, bool Taken);

  unsigned gshareIndex(uint64_t Pc, uint32_t Hist) const;
  unsigned bimodalIndex(uint64_t Pc) const;
  unsigned chooserIndex(uint64_t Pc) const;

  PredictorConfig Config;
  uint32_t History = 0;
  uint32_t HistoryMask;
  std::vector<uint8_t> Gshare;  ///< 2-bit counters.
  std::vector<uint8_t> Bimodal; ///< 2-bit counters.
  std::vector<uint8_t> Chooser; ///< 2-bit counters; >=2 selects gshare.
  PredictorStats Stats;
};

} // namespace bor

#endif // BOR_UARCH_BRANCHPREDICTOR_H
