//===- uarch/Pipeline.h - Out-of-order timing model -----------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A timing-first out-of-order pipeline model in the spirit of the paper's
/// simulator (Section 5.1): a functional interpreter acts as the golden
/// model supplying the committed instruction stream, and this class assigns
/// per-instruction fetch/decode/dispatch/issue/commit timestamps subject to
/// the machine's structural constraints:
///
///  * fetch: FetchWidth per cycle, stops at a predicted-taken branch,
///    stalls on L1I misses, and restarts after redirects;
///  * in-order decode/dispatch bounded by DecodeWidth and ROB occupancy;
///  * out-of-order issue bounded by IssueWidth, register dependences and
///    load latencies from the cache hierarchy;
///  * in-order commit bounded by CommitWidth.
///
/// Control flow:
///  * conditional branches predict via the tournament predictor + BTB at
///    fetch and resolve in the back end (minimum 11-cycle penalty);
///  * direct jumps resolve in decode (BTB hit at fetch avoids the bubble);
///  * returns predict via the RAS, other indirect jumps via the BTB;
///  * branch-on-random is always predicted not-taken, never touches the
///    predictor or BTB, resolves in decode, and (when taken) pays only the
///    short front-end flush; a not-taken brr commits at decode and uses no
///    back-end resources at all (Section 3.3).
///
/// Wrong-path instructions are modelled as lost fetch cycles (the redirect
/// gap), not as occupants of back-end resources; docs/INTERNALS.md
/// discusses this and the model's other approximations.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_PIPELINE_H
#define BOR_UARCH_PIPELINE_H

#include "sim/Interpreter.h"
#include "uarch/BranchPolicy.h"
#include "uarch/MicroarchState.h"
#include "uarch/PipelineConfig.h"
#include "uarch/ReturnAddressStack.h"

#include <cassert>
#include <map>
#include <unordered_map>
#include <vector>

namespace bor {

namespace telemetry {
struct TelemetrySink;
} // namespace telemetry

/// Cycle-level results of a timed execution.
struct PipelineStats {
  uint64_t Cycles = 0;
  uint64_t Insts = 0;

  uint64_t CondBranches = 0;
  uint64_t CondMispredicts = 0;
  uint64_t IndirectBranches = 0;
  uint64_t IndirectMispredicts = 0;
  uint64_t DirectJumps = 0;
  uint64_t DirectJumpDecodeRedirects = 0; ///< BTB-miss bubbles.
  uint64_t BrrExecuted = 0;
  uint64_t BrrTaken = 0; ///< each costs one front-end flush.

  uint64_t FetchIcacheStallCycles = 0;
  uint64_t BackendFlushCycles = 0;  ///< fetch cycles lost to back-end redirects.
  uint64_t FrontendFlushCycles = 0; ///< fetch cycles lost to decode redirects.

  /// Cycles in which fetch delivered its full width (for the Section 5.3
  /// baseline characterization).
  uint64_t FullWidthFetchCycles = 0;

  double ipc() const {
    return Cycles ? static_cast<double>(Insts) / static_cast<double>(Cycles)
                  : 0.0;
  }
};

/// A committed marker instruction, used by the harness to delimit regions
/// of interest exactly as the paper uses Simics magic instructions.
struct MarkerEvent {
  int32_t Id = 0;
  uint64_t CommitCycle = 0;
  uint64_t InstsRetired = 0;
};

/// Everything a timed execution produces: the cycle-level statistics and
/// the committed region-of-interest markers, returned together so callers
/// never have to reach back into the Pipeline for half the result.
struct RunResult {
  PipelineStats Stats;
  std::vector<MarkerEvent> Markers;

  /// Cycles between the first two markers (the harness convention for the
  /// region of interest). Requires at least two committed markers.
  uint64_t roiCycles() const {
    assert(Markers.size() >= 2 && "run committed fewer than two markers");
    return Markers[1].CommitCycle - Markers[0].CommitCycle;
  }
};

/// Multi-line human-readable rendering of a run's statistics (used by the
/// bor-run tool and available for ad-hoc debugging).
std::string describeStats(const PipelineStats &S);

/// Per-instruction stage timestamps, published to the observer callback.
/// Useful for pipeline visualization and for property tests of the timing
/// model's structural invariants (stage ordering, widths, ROB occupancy).
struct InstTimestamps {
  uint64_t Pc = 0;
  Inst I;
  uint64_t Fetch = 0;
  uint64_t Decode = 0;
  /// Dispatch/Issue are meaningful only when !CommittedAtDecode.
  uint64_t Dispatch = 0;
  uint64_t Issue = 0;
  uint64_t Done = 0;
  uint64_t Commit = 0;
  /// brr fast path: no ROB entry, no issue slot (Section 3.3).
  bool CommittedAtDecode = false;
  /// Back-end misprediction (conditional or indirect) charged to this
  /// instruction.
  bool Mispredicted = false;
  /// Decode-resolved redirect (taken brr or BTB-missing direct jump).
  bool FrontEndFlush = false;
};

/// The timing model. In the classic (cold) form it owns the machine
/// state, functional oracle, branch predictor, BTB, RAS and cache
/// hierarchy for one run. In the attached form it borrows an existing
/// Machine and MicroarchState, resuming execution from the machine's
/// current PC with pre-warmed structures -- the detailed-interval mode of
/// the sampled-simulation subsystem. Either way every committed
/// instruction's architectural effects land in the (owned or borrowed)
/// Machine, so state drains back to the caller naturally.
class Pipeline {
public:
  /// Cold run over a fresh machine: loads the program and starts at PC 0
  /// with empty caches and untrained predictors. \p DP must outlive the
  /// Pipeline; decode once per workload and share the image across every
  /// Pipeline (and thread) that runs it. \p Decider resolves brr
  /// outcomes; pass nullptr to use an LFSR-based BrrUnitDecider built
  /// from \p Config.Brr.
  Pipeline(const DecodedProgram &DP,
           const PipelineConfig &Config = PipelineConfig(),
           BrrDecider *Decider = nullptr);

  /// Convenience cold-run form that decodes \p P privately. Prefer the
  /// DecodedProgram overload when the same program is run more than once.
  Pipeline(const Program &P, const PipelineConfig &Config = PipelineConfig(),
           BrrDecider *Decider = nullptr);

  /// Attached run: resumes \p M from its current PC (no image reload)
  /// against the caller's \p Uarch structures, which are read AND trained
  /// in place. \p DP, \p M, \p Uarch and \p Decider must outlive the
  /// Pipeline. This is the form the sampled runner attaches once per
  /// detailed interval, so sharing the decoded image matters most here.
  Pipeline(const DecodedProgram &DP, Machine &M, MicroarchState &Uarch,
           const PipelineConfig &Config, BrrDecider &Decider);

  /// Convenience attached form that decodes \p P privately.
  Pipeline(const Program &P, Machine &M, MicroarchState &Uarch,
           const PipelineConfig &Config, BrrDecider &Decider);

  /// Publishes the run's aggregate statistics to the telemetry counter
  /// registry (pipeline.*), plus the owned microarchitectural structures'
  /// stats in the cold-run form (an attached run's structures belong to
  /// the sampled runner, which publishes them once at the end).
  ~Pipeline();

  /// Attaches a telemetry sink for the duration of the runs that follow.
  /// Only the detail-event switch matters here: with DetailEvents set, the
  /// run loop emits instant trace events for pipeline flushes and taken
  /// brr. Null (the default) disables everything.
  void setTelemetry(const telemetry::TelemetrySink *T) { Telemetry = T; }

  /// Runs until the program halts or \p MaxInsts instructions commit.
  /// Asserts that the program halts within the budget when \p RequireHalt.
  RunResult run(uint64_t MaxInsts, bool RequireHalt = true);

  const PipelineStats &stats() const { return Stats; }

  /// Installs a per-instruction timestamp observer (nullptr to disable).
  /// Invoked once per committed instruction, in program order.
  void setObserver(std::function<void(const InstTimestamps &)> Callback) {
    Observer = std::move(Callback);
  }

  const MemoryHierarchy &memHier() const { return Uarch.MemHier; }
  const TournamentPredictor &predictor() const { return Uarch.Predictor; }
  const Btb &btb() const { return Uarch.TargetBuffer; }
  Machine &machine() { return Mach; }

private:
  /// Bandwidth tracker for an in-order stage: places events at the earliest
  /// cycle >= the requested one with spare width.
  struct InOrderStage {
    uint64_t Cycle = 0;
    unsigned Used = 0;
    unsigned Width;

    explicit InOrderStage(unsigned Width) : Width(Width) {}

    uint64_t place(uint64_t Earliest) {
      if (Earliest > Cycle) {
        Cycle = Earliest;
        Used = 0;
      }
      if (Used == Width) {
        ++Cycle;
        Used = 0;
      }
      ++Used;
      return Cycle;
    }
  };

  uint64_t fetchInstruction(const ExecRecord &R);
  uint64_t placeIssue(uint64_t Earliest);
  void trimIssueWindow(uint64_t Frontier);
  /// Completion cycle of \p R when it issues at \p Issue, including cache
  /// latencies and store-to-load forwarding constraints.
  uint64_t completeExecution(const ExecRecord &R, uint64_t Issue);

  PipelineConfig Config;

  /// Owned by the Program-taking convenience ctors, null when the caller
  /// shares a decoded image; Dec references whichever instance applies.
  std::unique_ptr<DecodedProgram> OwnedDec;
  const DecodedProgram &Dec;

  /// Owned in the cold-run form, null in the attached form; Mach/Uarch
  /// reference whichever instance applies.
  std::unique_ptr<Machine> OwnedMach;
  std::unique_ptr<MicroarchState> OwnedUarch;
  Machine &Mach;
  MicroarchState &Uarch;
  std::unique_ptr<BrrDecider> OwnedDecider;
  Interpreter Oracle;
  BranchUpdatePolicy Policy;

  // Front-end state.
  uint64_t FetchCycle = 0;
  unsigned FetchedThisCycle = 0;
  bool FetchBreak = false;
  bool RedirectPending = false;
  uint64_t RedirectCycle = 0;
  bool RedirectIsFrontend = false;
  uint64_t LastFetchLine = ~0ULL;

  // In-order stage trackers.
  InOrderStage DecodeStage;
  InOrderStage DispatchStage;
  InOrderStage CommitStage;

  // Back-end state.
  std::array<uint64_t, 32> RegReady;
  /// Store-to-load forwarding: cycle at which the youngest store to each
  /// 8-byte-aligned address has produced its data. A later load to the
  /// same address cannot complete before this (this is what serializes a
  /// counter-based framework's load/decrement/store chain across sites).
  std::unordered_map<uint64_t, uint64_t> StoreReady;
  std::map<uint64_t, unsigned> IssueCount; ///< OoO issue-width tracking.
  std::vector<uint64_t> RobSlotFree; ///< commit cycle per ROB slot (ring).
  uint64_t RobAllocated = 0;
  uint64_t LastCommitCycle = 0;

  PipelineStats Stats;
  std::vector<MarkerEvent> Markers;
  std::function<void(const InstTimestamps &)> Observer;
  const telemetry::TelemetrySink *Telemetry = nullptr;
};

/// Publishes one MicroarchState's structure statistics (cache.*,
/// predictor.*, btb.*, ras.*) to the telemetry counter registry. Called by
/// ~Pipeline for cold-run state and by the sampled runner for the state it
/// keeps warm across intervals.
void publishUarchCounters(const MicroarchState &Uarch);

} // namespace bor

#endif // BOR_UARCH_PIPELINE_H
