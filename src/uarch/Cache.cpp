//===- uarch/Cache.cpp - Set-associative LRU cache model ------------------===//

#include "uarch/Cache.h"

#include <bit>
#include <cstddef>

using namespace bor;

Cache::Cache(const CacheConfig &Config) : Config(Config) {
  assert(std::has_single_bit(Config.LineBytes) && "line size: power of two");
  assert(Config.Assoc >= 1 && "cache needs at least one way");
  uint32_t Lines = Config.SizeBytes / Config.LineBytes;
  assert(Lines % Config.Assoc == 0 && "size/assoc/line mismatch");
  NumSets = Lines / Config.Assoc;
  assert(std::has_single_bit(NumSets) && "set count must be a power of two");
  LineMask = Config.LineBytes - 1;
  Ways.resize(static_cast<size_t>(NumSets) * Config.Assoc);
}

bool Cache::access(uint64_t Addr) {
  ++Stats.Accesses;
  ++UseClock;

  uint64_t Line = Addr / Config.LineBytes;
  uint32_t Set = static_cast<uint32_t>(Line & (NumSets - 1));
  uint64_t Tag = Line >> std::countr_zero(NumSets);
  Way *SetBase = &Ways[static_cast<size_t>(Set) * Config.Assoc];

  Way *Victim = SetBase;
  for (uint32_t W = 0; W != Config.Assoc; ++W) {
    Way &Candidate = SetBase[W];
    if (Candidate.Valid && Candidate.Tag == Tag) {
      Candidate.LastUse = UseClock;
      return true;
    }
    if (!Candidate.Valid) {
      Victim = &Candidate;
    } else if (Victim->Valid && Candidate.LastUse < Victim->LastUse) {
      Victim = &Candidate;
    }
  }

  ++Stats.Misses;
  Victim->Valid = true;
  Victim->Tag = Tag;
  Victim->LastUse = UseClock;
  return false;
}

bool Cache::contains(uint64_t Addr) const {
  uint64_t Line = Addr / Config.LineBytes;
  uint32_t Set = static_cast<uint32_t>(Line & (NumSets - 1));
  uint64_t Tag = Line >> std::countr_zero(NumSets);
  const Way *SetBase = &Ways[static_cast<size_t>(Set) * Config.Assoc];
  for (uint32_t W = 0; W != Config.Assoc; ++W)
    if (SetBase[W].Valid && SetBase[W].Tag == Tag)
      return true;
  return false;
}
