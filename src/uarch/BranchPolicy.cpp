//===- uarch/BranchPolicy.cpp - Shared predictor/BTB/RAS update policy ---===//

#include "uarch/BranchPolicy.h"

using namespace bor;

BranchOutcome BranchUpdatePolicy::observeTimed(const ExecRecord &R) {
  assert(!Config.PerfectBranchPrediction &&
         "oracle front end never consults the update policy");

  bool TreatAsCondBranch =
      R.I.isCondBranch() || (R.I.isBrr() && Config.BrrAsBackendBranch);

  if (TreatAsCondBranch) {
    BranchPrediction Pred = Uarch.Predictor.predict(R.Pc);
    bool BtbHit = Uarch.TargetBuffer.lookup(R.Pc).has_value();
    bool Effective = Pred.Taken && BtbHit;
    Uarch.Predictor.resolve(R.Pc, Pred.HistBefore, Effective, R.Taken);
    BranchOutcome O = BranchOutcome::None;
    if (Effective != R.Taken) {
      Uarch.Predictor.repairHistory(Pred.HistBefore, R.Taken);
      O = BranchOutcome::BackendRedirect;
    } else if (Effective) {
      O = BranchOutcome::PredictedTaken;
    }
    if (R.Taken)
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
    return O;
  }

  if (R.I.isBrr()) {
    // The real design: always predicted not-taken, invisible to every
    // structure, resolved in decode (Section 3.3). Under trap emulation
    // the redirect is scheduled by the pipeline once the decode cycle is
    // known, so a taken brr classifies as a decode redirect only when the
    // hardware instruction exists.
    return R.Taken && Config.BrrTrapCycles == 0
               ? BranchOutcome::DecodeRedirect
               : BranchOutcome::None;
  }

  if (R.I.isDirectJump()) {
    if (R.I.Op == Opcode::Jal && R.I.Rd != RegZero)
      Uarch.Ras.push(R.Pc + 4);
    if (Uarch.TargetBuffer.lookup(R.Pc))
      return BranchOutcome::PredictedTaken;
    Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
    return BranchOutcome::DecodeRedirect;
  }

  if (R.I.isIndirect()) {
    bool IsReturn = R.I.Rd == RegZero && R.I.Rs1 == RegLr;
    uint64_t PredTarget;
    if (IsReturn) {
      PredTarget = Uarch.Ras.pop();
    } else {
      std::optional<uint64_t> T = Uarch.TargetBuffer.lookup(R.Pc);
      PredTarget = T ? *T : ~0ULL;
    }
    if (R.I.Rd != RegZero)
      Uarch.Ras.push(R.Pc + 4);
    BranchOutcome O = PredTarget == R.NextPc
                          ? BranchOutcome::PredictedTaken
                          : BranchOutcome::BackendRedirect;
    if (!IsReturn)
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
    return O;
  }

  return BranchOutcome::None;
}

void BranchUpdatePolicy::observeWarming(const ExecRecord &R) {
  if (Config.PerfectBranchPrediction)
    return; // oracle front end never touches the predictor structures

  bool TreatAsCondBranch =
      R.I.isCondBranch() || (R.I.isBrr() && Config.BrrAsBackendBranch);

  if (TreatAsCondBranch) {
    BranchPrediction Pred = Uarch.Predictor.predict(R.Pc);
    bool BtbHit = Uarch.TargetBuffer.lookup(R.Pc).has_value();
    bool Effective = Pred.Taken && BtbHit;
    Uarch.Predictor.resolve(R.Pc, Pred.HistBefore, Effective, R.Taken);
    if (Effective != R.Taken)
      Uarch.Predictor.repairHistory(Pred.HistBefore, R.Taken);
    if (R.Taken)
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
  } else if (R.I.isBrr()) {
    // Invisible to predictor and BTB (Section 3.3).
  } else if (R.I.isDirectJump()) {
    if (R.I.Op == Opcode::Jal && R.I.Rd != RegZero)
      Uarch.Ras.push(R.Pc + 4);
    if (!Uarch.TargetBuffer.lookup(R.Pc))
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
  } else if (R.I.isIndirect()) {
    // No target prediction is made while warming, so unlike the timed
    // path a non-return indirect performs no BTB lookup here.
    bool IsReturn = R.I.Rd == RegZero && R.I.Rs1 == RegLr;
    if (IsReturn)
      Uarch.Ras.pop();
    if (R.I.Rd != RegZero)
      Uarch.Ras.push(R.Pc + 4);
    if (!IsReturn)
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
  }
}
