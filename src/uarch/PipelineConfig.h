//===- uarch/PipelineConfig.h - Section 5.1 machine configuration --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the out-of-order timing model, defaulting to the
/// paper's simulated machine (Section 5.1): 4-wide decode/execute/retire,
/// 80-entry ROB, fetch of up to three instructions per cycle stopping at a
/// predicted-taken branch, tournament predictor with 16-bit gshare and a
/// 64K-entry bimodal table, 32-entry RAS, 1024-entry BTB, a minimum
/// back-end misprediction penalty of 11 cycles, and branch-on-random
/// resolved in the decode stage — the 5th pipeline stage.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_PIPELINECONFIG_H
#define BOR_UARCH_PIPELINECONFIG_H

#include "core/BrrUnit.h"
#include "uarch/BranchPredictor.h"
#include "uarch/Btb.h"
#include "uarch/MemoryHierarchy.h"

namespace bor {

struct PipelineConfig {
  // Widths.
  unsigned FetchWidth = 3;
  unsigned DecodeWidth = 4;
  unsigned IssueWidth = 4;
  unsigned CommitWidth = 4;
  unsigned RobEntries = 80;

  // Depths. Fetch occupies stages 1..FetchToDecode, so with the default of
  // 4 the decode stage — where brr resolves — is stage 5, as in the paper.
  unsigned FetchToDecode = 4;
  unsigned DecodeToDispatch = 2; ///< rename + dispatch stages.
  unsigned DispatchToIssue = 1;  ///< earliest wakeup after dispatch.

  /// Extra cycles between back-end branch resolution and the first correct-
  /// path fetch (flush + refetch). With the stage depths above this yields
  /// the paper's minimum back-end misprediction penalty of 11 cycles.
  unsigned MispredictRedirect = 3;

  /// Cycles between decode-stage resolution (taken brr, BTB-missing direct
  /// jump) and the first redirected fetch: the short "front-end
  /// misprediction" of Section 3.3.
  unsigned FrontEndRedirect = 1;

  unsigned MulLatency = 3;
  unsigned RasEntries = 32;

  /// Section 5.1: "stops fetch at a predicted taken branch". Clearing this
  /// models an ideal redirecting front end that keeps filling the fetch
  /// group across taken branches (ablation for DESIGN.md decision 3).
  bool FetchStopsAtTakenBranch = true;

  /// Store-to-load forwarding delay: cycles after a store produces its
  /// data before a dependent load can consume it (store-queue lookup and
  /// forward). This is what makes a memory-resident sampling counter's
  /// load/decrement/store chain expensive across closely-spaced sites.
  unsigned StoreForwardDelay = 3;

  /// brr commits at decode: it occupies no ROB entry, no issue slot and no
  /// rename resources, because it has no side effects on data state
  /// (Section 3.3, "Prediction and Expected Performance").
  bool BrrCommitsAtDecode = true;

  /// Ablation switch: treat brr like an ordinary conditional branch — it
  /// consults and trains the predictor and BTB and resolves in the back
  /// end. Used to quantify how much of brr's advantage comes from the
  /// decode-stage design rather than from the instruction-count reduction.
  bool BrrAsBackendBranch = false;

  /// Ablation switch: oracle branch prediction. Every control instruction
  /// (including brr and the sampling frameworks' check branches) redirects
  /// fetch with zero penalty. Used to isolate how much of a framework's
  /// overhead is branch-handling versus raw instruction bandwidth.
  bool PerfectBranchPrediction = false;

  /// Section 3.4's software fallback: treat brr as an invalid opcode that
  /// traps to a handler emulating the LFSR in software (the paper's SIGILL
  /// scheme for machines without the instruction). When nonzero, every brr
  /// costs a full flush plus this many handler cycles. Architectural
  /// outcomes are unchanged — only the timing differs.
  unsigned BrrTrapCycles = 0;

  MemHierConfig MemHier;
  PredictorConfig Predictor;
  BtbConfig BtbCfg;
  BrrUnitConfig Brr;
};

} // namespace bor

#endif // BOR_UARCH_PIPELINECONFIG_H
