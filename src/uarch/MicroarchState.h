//===- uarch/MicroarchState.h - Pollutable µarch structures ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The microarchitectural state a timing run accumulates and a sampled
/// simulation must keep warm between detailed intervals: the cache
/// hierarchy, the tournament predictor, the BTB and the RAS. Pipeline owns
/// one per cold run; the sampled-simulation subsystem constructs one per
/// workload, warms it functionally between intervals, and lends it to each
/// interval's Pipeline so detailed measurement starts from a trained
/// front end rather than a cold one.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_MICROARCHSTATE_H
#define BOR_UARCH_MICROARCHSTATE_H

#include "uarch/PipelineConfig.h"
#include "uarch/ReturnAddressStack.h"

namespace bor {

/// The non-architectural machine state that persists across a sampled
/// run's intervals. Purely a state bundle: the branch-structure update
/// policy lives in BranchUpdatePolicy (uarch/BranchPolicy.h), shared by
/// Pipeline (timed) and FunctionalWarmer (untimed); cache-warming rules
/// live in FunctionalWarmer.
struct MicroarchState {
  MemoryHierarchy MemHier;
  TournamentPredictor Predictor;
  Btb TargetBuffer;
  ReturnAddressStack Ras;

  explicit MicroarchState(const PipelineConfig &Config = PipelineConfig())
      : MemHier(Config.MemHier), Predictor(Config.Predictor),
        TargetBuffer(Config.BtbCfg), Ras(Config.RasEntries) {}
};

} // namespace bor

#endif // BOR_UARCH_MICROARCHSTATE_H
