//===- uarch/BranchPredictor.cpp - Tournament predictor ------------------===//

#include "uarch/BranchPredictor.h"

#include <bit>
#include <cassert>

using namespace bor;

TournamentPredictor::TournamentPredictor(const PredictorConfig &Config)
    : Config(Config) {
  assert(Config.HistoryBits >= 1 && Config.HistoryBits <= 32);
  assert(std::has_single_bit(Config.BimodalEntries));
  assert(std::has_single_bit(Config.ChooserEntries));
  HistoryMask = Config.HistoryBits == 32
                    ? ~0u
                    : ((1u << Config.HistoryBits) - 1);
  // Weakly not-taken start for the direction tables; weakly-prefer-gshare
  // for the chooser.
  Gshare.assign(1u << Config.HistoryBits, 1);
  Bimodal.assign(Config.BimodalEntries, 1);
  Chooser.assign(Config.ChooserEntries, 2);
}

unsigned TournamentPredictor::gshareIndex(uint64_t Pc, uint32_t Hist) const {
  return static_cast<unsigned>(((Pc >> 2) ^ Hist) & HistoryMask);
}

unsigned TournamentPredictor::bimodalIndex(uint64_t Pc) const {
  return static_cast<unsigned>((Pc >> 2) & (Config.BimodalEntries - 1));
}

unsigned TournamentPredictor::chooserIndex(uint64_t Pc) const {
  return static_cast<unsigned>((Pc >> 2) & (Config.ChooserEntries - 1));
}

BranchPrediction TournamentPredictor::predict(uint64_t Pc) {
  BranchPrediction P;
  P.HistBefore = History;

  bool GsharePred = Gshare[gshareIndex(Pc, History)] >= 2;
  bool BimodalPred = Bimodal[bimodalIndex(Pc)] >= 2;
  switch (Config.Kind) {
  case PredictorKind::Tournament:
    P.Taken = Chooser[chooserIndex(Pc)] >= 2 ? GsharePred : BimodalPred;
    break;
  case PredictorKind::GshareOnly:
    P.Taken = GsharePred;
    break;
  case PredictorKind::BimodalOnly:
    P.Taken = BimodalPred;
    break;
  }

  // Speculative history update with the *predicted* outcome; repaired on a
  // misprediction by repairHistory().
  History = ((History << 1) | (P.Taken ? 1 : 0)) & HistoryMask;
  ++Stats.Predictions;
  return P;
}

void TournamentPredictor::train(uint8_t &Counter, bool Taken) {
  if (Taken) {
    if (Counter < 3)
      ++Counter;
    return;
  }
  if (Counter > 0)
    --Counter;
}

void TournamentPredictor::resolve(uint64_t Pc, uint32_t HistBefore,
                                  bool PredictedTaken, bool Taken) {
  uint8_t &G = Gshare[gshareIndex(Pc, HistBefore)];
  uint8_t &B = Bimodal[bimodalIndex(Pc)];
  bool GshareWasRight = (G >= 2) == Taken;
  bool BimodalWasRight = (B >= 2) == Taken;

  // The chooser trains only when the components disagree (and only
  // matters in tournament mode).
  if (Config.Kind == PredictorKind::Tournament &&
      GshareWasRight != BimodalWasRight)
    train(Chooser[chooserIndex(Pc)], GshareWasRight);

  train(G, Taken);
  train(B, Taken);

  if (PredictedTaken != Taken)
    ++Stats.Mispredictions;
}

void TournamentPredictor::repairHistory(uint32_t HistBefore, bool Taken) {
  History = ((HistBefore << 1) | (Taken ? 1 : 0)) & HistoryMask;
}

uint64_t TournamentPredictor::stateBits() const {
  return 2ull * (Gshare.size() + Bimodal.size() + Chooser.size()) +
         Config.HistoryBits;
}
