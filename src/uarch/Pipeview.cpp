//===- uarch/Pipeview.cpp - Pipeline diagram rendering --------------------===//

#include "uarch/Pipeview.h"

#include "isa/Disasm.h"

#include <algorithm>
#include <cstdio>

using namespace bor;

void PipeviewRecorder::attach(Pipeline &Pipe) {
  Pipe.setObserver([this](const InstTimestamps &TS) {
    if (Seen++ < SkipInsts)
      return;
    if (Records.size() < MaxInsts)
      Records.push_back(TS);
  });
}

std::string PipeviewRecorder::render(size_t MaxColumns) const {
  if (Records.empty())
    return "";

  uint64_t Base = Records.front().Fetch;
  std::string Out;

  for (const InstTimestamps &TS : Records) {
    std::string Row(MaxColumns, ' ');
    bool Truncated = false;

    auto Put = [&](uint64_t Cycle, char Mark) {
      if (Cycle < Base)
        return; // can't happen, but stay safe
      uint64_t Col = Cycle - Base;
      if (Col >= MaxColumns) {
        Truncated = true;
        return;
      }
      // Later stages overwrite '.' fill but not other stage letters.
      if (Row[Col] == ' ' || Row[Col] == '.')
        Row[Col] = Mark;
    };
    auto Fill = [&](uint64_t From, uint64_t To) {
      for (uint64_t Cycle = From + 1; Cycle < To; ++Cycle)
        Put(Cycle, '.');
    };

    Put(TS.Fetch, 'F');
    Fill(TS.Fetch, TS.Decode);
    Put(TS.Decode, 'D');
    if (!TS.CommittedAtDecode) {
      Fill(TS.Decode, TS.Dispatch);
      Put(TS.Dispatch, 'S');
      Fill(TS.Dispatch, TS.Issue);
      Put(TS.Issue, 'I');
      Fill(TS.Issue, TS.Done);
      Put(TS.Done, 'E');
      Fill(TS.Done, TS.Commit);
    }
    Put(TS.Commit, 'C');

    // Trim trailing spaces; mark truncation.
    size_t Last = Row.find_last_not_of(' ');
    Row.resize(Last == std::string::npos ? 0 : Last + 1);
    if (Truncated)
      Row += '+';

    char Prefix[64];
    std::snprintf(Prefix, sizeof(Prefix), "%6llu  ",
                  static_cast<unsigned long long>(TS.Pc / 4));
    Out += Prefix;
    Out += Row;
    // Right-annotate with the disassembly.
    Out += "  | ";
    Out += disassemble(TS.I);
    Out += '\n';
  }

  char Header[128];
  std::snprintf(Header, sizeof(Header),
                " index  cycles %llu..  (F fetch, D decode, S dispatch, "
                "I issue, E complete, C commit)\n",
                static_cast<unsigned long long>(Base));
  return std::string(Header) + Out;
}
