//===- uarch/Cache.h - Set-associative LRU cache model --------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache model used for the L1
/// instruction, L1 data, and shared L2 caches of the Section 5.1 machine
/// configuration. Only hit/miss behaviour is modelled (latencies are
/// assigned by the MemoryHierarchy); coherence and writeback traffic are
/// out of scope for the paper's single-core experiments.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_UARCH_CACHE_H
#define BOR_UARCH_CACHE_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace bor {

struct CacheConfig {
  uint32_t SizeBytes = 32 * 1024;
  uint32_t Assoc = 4;
  uint32_t LineBytes = 64;
};

struct CacheStats {
  uint64_t Accesses = 0;
  uint64_t Misses = 0;

  double hitRate() const {
    if (Accesses == 0)
      return 1.0;
    return 1.0 - static_cast<double>(Misses) / static_cast<double>(Accesses);
  }
};

/// One level of cache.
class Cache {
public:
  explicit Cache(const CacheConfig &Config);

  /// Looks up the line containing \p Addr; on a miss the line is filled
  /// (LRU victim evicted). Returns true on hit.
  bool access(uint64_t Addr);

  /// Hit/miss check without fill or LRU update (for tests).
  bool contains(uint64_t Addr) const;

  uint64_t lineAddr(uint64_t Addr) const { return Addr & ~LineMask; }

  const CacheConfig &config() const { return Config; }
  const CacheStats &stats() const { return Stats; }
  void resetStats() { Stats = CacheStats(); }

  uint32_t numSets() const { return NumSets; }

private:
  struct Way {
    uint64_t Tag = 0;
    uint64_t LastUse = 0;
    bool Valid = false;
  };

  CacheConfig Config;
  uint32_t NumSets;
  uint64_t LineMask;
  uint64_t UseClock = 0;
  std::vector<Way> Ways; ///< NumSets * Assoc entries, set-major.
  CacheStats Stats;
};

} // namespace bor

#endif // BOR_UARCH_CACHE_H
