//===- uarch/MemoryHierarchy.cpp - L1I/L1D/L2/memory latencies -----------===//

#include "uarch/MemoryHierarchy.h"

using namespace bor;

MemoryHierarchy::MemoryHierarchy(const MemHierConfig &Config)
    : Config(Config), L1I(Config.L1I), L1D(Config.L1D), L2(Config.L2) {}

unsigned MemoryHierarchy::fetchAccess(uint64_t Addr) {
  if (L1I.access(Addr))
    return 0;
  if (L2.access(Addr))
    return Config.L2HitCycles;
  return Config.MemCycles;
}

unsigned MemoryHierarchy::dataAccess(uint64_t Addr, bool IsWrite) {
  (void)IsWrite; // Write-allocate: reads and writes fill identically.
  if (L1D.access(Addr))
    return Config.L1DHitCycles;
  if (L2.access(Addr))
    return Config.L1DHitCycles + Config.L2HitCycles;
  return Config.L1DHitCycles + Config.MemCycles;
}
