//===- ckpt/PageStore.h - Refcounted immutable page storage --------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared backing store of a checkpoint library: every memory page a
/// checkpoint captures is interned here exactly once. Interning hashes the
/// page content, so consecutive checkpoints of the same stream share every
/// page the program did not touch in between — the store holds the union
/// of distinct page images, not numCheckpoints copies of the working set.
///
/// Stored pages are immutable and refcounted (Memory::PageRef); a Machine
/// COW-attaches them read-only and copies only on its first write, so any
/// number of concurrent cells can resume from the same checkpoint without
/// duplicating the prefix state. The handles keep pages alive, so a store
/// may be destroyed while attached Machines still run.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CKPT_PAGESTORE_H
#define BOR_CKPT_PAGESTORE_H

#include "sim/Machine.h"

#include <unordered_map>
#include <vector>

namespace bor {
namespace ckpt {

/// Content-interning storage of immutable memory pages.
class PageStore {
public:
  using Page = Memory::Page;
  using PageRef = Memory::PageRef;

  /// Interns one page of content (Memory::pageBytes() bytes): returns a
  /// handle to an already-stored page with identical bytes when one
  /// exists, otherwise stores a copy and returns that. Handles from the
  /// same store compare equal iff the content does, which is what lets a
  /// resume skip re-attaching unchanged pages.
  PageRef intern(const uint8_t *Data);

  /// Distinct page images stored.
  size_t numStoredPages() const { return NumStored; }
  /// intern() calls satisfied by an existing page (the dedup win).
  uint64_t numDedupHits() const { return DedupHits; }
  uint64_t bytesStored() const { return NumStored * sizeof(Page); }

private:
  static uint64_t hashPage(const uint8_t *Data);

  /// Content hash -> stored pages with that hash (collisions resolved by
  /// byte comparison).
  std::unordered_map<uint64_t, std::vector<PageRef>> ByHash;
  size_t NumStored = 0;
  uint64_t DedupHits = 0;
};

} // namespace ckpt
} // namespace bor

#endif // BOR_CKPT_PAGESTORE_H
