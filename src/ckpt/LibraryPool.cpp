//===- ckpt/LibraryPool.cpp - Build-once cache of checkpoint libraries ---===//

#include "ckpt/LibraryPool.h"

#include "isa/Serialize.h"
#include "support/Path.h"
#include "telemetry/Counters.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

using namespace bor;
using namespace bor::ckpt;

uint64_t LibraryPool::keyFor(const Program &P, const BrrUnitConfig &Brr,
                             uint64_t PeriodInsts) {
  // FNV-1a over the serialized program, then the decider configuration and
  // the period folded in word-wise. Purely content-derived, so the same
  // workload maps to the same cache file across processes.
  uint64_t H = 0xcbf29ce484222325ULL;
  auto foldByte = [&H](uint8_t B) { H = (H ^ B) * 0x100000001b3ULL; };
  auto foldU64 = [&](uint64_t V) {
    for (int I = 0; I != 8; ++I)
      foldByte(static_cast<uint8_t>(V >> (8 * I)));
  };
  for (uint8_t B : serializeProgram(P))
    foldByte(B);
  foldU64(Brr.LfsrWidth);
  foldU64(Brr.TapMask);
  foldU64(Brr.Seed);
  foldU64(static_cast<uint64_t>(Brr.Policy));
  foldU64(PeriodInsts);
  return H;
}

std::string LibraryPool::cachePathFor(uint64_t Key) const {
  if (CacheDir.empty())
    return "";
  char Name[32];
  std::snprintf(Name, sizeof(Name), "ckpt_%016" PRIx64 ".borb", Key);
  return CacheDir + "/" + Name;
}

size_t LibraryPool::numLibraries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

std::shared_ptr<const CheckpointLibrary>
LibraryPool::getOrBuild(const DecodedProgram &DP, const BrrUnitConfig &Brr,
                        uint64_t PeriodInsts,
                        const telemetry::TelemetrySink *Telemetry) {
  const uint64_t Key = keyFor(DP.program(), Brr, PeriodInsts);
  std::shared_ptr<Entry> E;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    std::shared_ptr<Entry> &Slot = Entries[Key];
    if (!Slot)
      Slot = std::make_shared<Entry>();
    E = Slot;
  }

  std::call_once(E->Once, [&] {
    const std::string Path = cachePathFor(Key);
    if (!Path.empty()) {
      std::error_code Ec;
      const bool Exists = std::filesystem::exists(Path, Ec);
      Program Cached;
      CheckpointLibrary Lib;
      std::string Error = "header mismatch (wrong period or decider)";
      if (Exists && loadLibraryFile(Path, Cached, Lib, Error) &&
          Lib.periodInsts() == PeriodInsts &&
          Lib.deciderKind() == "lfsr") {
        if (telemetry::CounterRegistry::enabled()) {
          static const telemetry::Counter Loaded("ckpt.libraries.loaded");
          Loaded.add();
        }
        E->Lib = std::make_shared<CheckpointLibrary>(std::move(Lib));
        return;
      }
      if (Exists) {
        // A cache file that exists but will not load is corruption (e.g. a
        // torn write from a killed process, or bit rot) — never fatal: warn,
        // count it, and fall through to a clean rebuild that overwrites it.
        std::fprintf(stderr,
                     "warning: checkpoint library cache '%s' is corrupt "
                     "(%s); rebuilding\n",
                     Path.c_str(), Error.c_str());
        if (telemetry::CounterRegistry::enabled()) {
          static const telemetry::Counter Corrupt("ckpt.libraries.corrupt");
          Corrupt.add();
        }
      }
    }

    CheckpointLibrary::BuildOptions Options;
    Options.EveryInsts = PeriodInsts;
    auto Built = std::make_shared<CheckpointLibrary>(
        CheckpointLibrary::build(DP, Brr, Options, Telemetry));
    if (!Path.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(CacheDir, Ec);
      // Stage into the sibling temp name and rename so a concurrent sweep
      // process (or a kill mid-save) can never observe a half-written
      // library — at worst the corruption path above rebuilds once.
      const std::string Tmp = atomicTempPath(Path);
      bool Saved = saveLibraryFile(DP.program(), *Built, Tmp);
      if (Saved && std::rename(Tmp.c_str(), Path.c_str()) != 0)
        Saved = false;
      if (!Saved) {
        std::remove(Tmp.c_str());
        std::fprintf(stderr,
                     "warning: could not persist checkpoint library to '%s'\n",
                     Path.c_str());
      }
    }
    E->Lib = std::move(Built);
  });
  return E->Lib;
}
