//===- ckpt/LibraryPool.h - Build-once cache of checkpoint libraries -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharing point of the checkpoint subsystem: one pool lives for an
/// experiment grid (or a bor-run invocation), and every cell asks it for
/// the library of its (program, decider config, period) triple. The first
/// request builds the library — exactly once, even when many ThreadPool
/// workers ask concurrently — and every later request returns the same
/// immutable, refcounted object; the build cost amortizes over the whole
/// sweep and the ckpt.* counters stay thread-count-invariant.
///
/// With a cache directory configured, built libraries persist as BORB v2
/// images ("CKPL" section next to the program), keyed by a content hash of
/// the program plus the decider configuration and period, so a re-run of
/// the same sweep skips the functional pass entirely
/// (ckpt.libraries.loaded counts those wins).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CKPT_LIBRARYPOOL_H
#define BOR_CKPT_LIBRARYPOOL_H

#include "ckpt/CheckpointLibrary.h"

#include <memory>
#include <mutex>
#include <unordered_map>

namespace bor {
namespace ckpt {

/// Thread-safe cache of checkpoint libraries, keyed by (program bytes,
/// BrrUnitConfig, period).
class LibraryPool {
public:
  /// \p CacheDir: directory for cross-invocation persistence (created on
  /// first save if missing); empty keeps the pool memory-only.
  explicit LibraryPool(std::string CacheDir = "")
      : CacheDir(std::move(CacheDir)) {}

  LibraryPool(const LibraryPool &) = delete;
  LibraryPool &operator=(const LibraryPool &) = delete;

  /// Returns the library for \p DP under \p Brr with capture period \p
  /// PeriodInsts, building (or loading from the cache directory) on first
  /// request. Concurrent callers for the same key block until the one
  /// build finishes and then share the result. The returned pointer is
  /// never null and keeps the library alive independently of the pool.
  std::shared_ptr<const CheckpointLibrary>
  getOrBuild(const DecodedProgram &DP, const BrrUnitConfig &Brr,
             uint64_t PeriodInsts,
             const telemetry::TelemetrySink *Telemetry = nullptr);

  /// Content key for one (program, decider config, period) triple — the
  /// disk cache filename stem (exposed for tests).
  static uint64_t keyFor(const Program &P, const BrrUnitConfig &Brr,
                         uint64_t PeriodInsts);

  /// The cache file path for \p Key, or "" when the pool is memory-only.
  std::string cachePathFor(uint64_t Key) const;

  size_t numLibraries() const;

private:
  struct Entry {
    std::once_flag Once;
    std::shared_ptr<const CheckpointLibrary> Lib;
  };

  std::string CacheDir;
  mutable std::mutex Mutex; ///< guards Entries only; builds run unlocked
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> Entries;
};

} // namespace ckpt
} // namespace bor

#endif // BOR_CKPT_LIBRARYPOOL_H
