//===- ckpt/CheckpointLibrary.cpp - Shared COW checkpoint library --------===//

#include "ckpt/CheckpointLibrary.h"

#include "isa/Serialize.h"
#include "sim/Interpreter.h"
#include "telemetry/Counters.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

using namespace bor;
using namespace bor::ckpt;

namespace {

// Version 2: BBV entries are keyed on cfg::BlockId instead of terminator
// instruction indices. Version-1 images are rejected so stale on-disk
// caches rebuild rather than silently mixing key spaces.
constexpr uint32_t LibraryVersion = 2;
constexpr char LibraryTag[5] = "CKPL";
constexpr uint32_t MaxDeciderKindLen = 64;
constexpr uint32_t MaxDeciderWords = 64;

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian reader (the same shape as
/// sample/Checkpoint.cpp's; the payloads are independent formats, so no
/// shared header).
class Reader {
public:
  Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool failed() const { return Failed; }
  bool atEnd() const { return Pos == Bytes.size(); }
  size_t remaining() const { return Bytes.size() - Pos; }

  uint32_t u32() { return static_cast<uint32_t>(uint(4)); }
  uint64_t u64() { return uint(8); }
  uint8_t u8() { return static_cast<uint8_t>(uint(1)); }

  bool bytes(void *Dst, size_t N) {
    if (Pos + N > Bytes.size()) {
      Failed = true;
      return false;
    }
    std::memcpy(Dst, Bytes.data() + Pos, N);
    Pos += N;
    return true;
  }

private:
  uint64_t uint(unsigned N) {
    if (Pos + N > Bytes.size()) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
    Pos += N;
    return V;
  }

  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

bool fail(std::string &Error, const std::string &Message) {
  Error = Message;
  return false;
}

bool isAllZero(const uint8_t *Data, uint64_t N) {
  for (uint64_t I = 0; I != N; ++I)
    if (Data[I] != 0)
      return false;
  return true;
}

} // namespace

CheckpointLibrary
CheckpointLibrary::build(const DecodedProgram &DP, const BrrUnitConfig &Brr,
                         const BuildOptions &Options,
                         const telemetry::TelemetrySink *Telemetry) {
  assert(Options.EveryInsts > 0 && "checkpoint period must be positive");
  CheckpointLibrary Lib;
  Lib.PeriodInsts = Options.EveryInsts;

  telemetry::TraceWriter *TW = Telemetry ? Telemetry->Trace : nullptr;
  telemetry::TraceSpan Span(
      TW, "ckpt-build", "ckpt",
      {telemetry::TraceArg::num("period_insts", Options.EveryInsts)});

  Machine M;
  BrrUnitDecider Decider(Brr);
  Lib.DeciderKind = Decider.checkpointKind();
  // LoadImage=true: the interpreter resets memory and installs the data
  // segment, which is exactly checkpoint 0's state.
  Interpreter Fn(DP, M, Decider);

  PageStore Store;
  auto capture = [&](uint64_t Insts) {
    LibraryCheckpoint C;
    C.InstsRetired = Insts;
    C.Pc = M.pc();
    C.Halted = M.halted();
    for (unsigned R = 0; R != 32; ++R)
      C.Regs[R] = M.readReg(R);
    C.DeciderWords = Decider.checkpointWords();
    const uint64_t PageBytes = Memory::pageBytes();
    M.memory().forEachPage([&](uint64_t Base, const uint8_t *Data) {
      // Skip all-zero pages: a reset Machine reproduces them implicitly.
      if (isAllZero(Data, PageBytes))
        return;
      size_t Before = Store.numStoredPages();
      PageStore::PageRef P = Store.intern(Data);
      if (Store.numStoredPages() != Before)
        Lib.StorePages.push_back(P); // first-intern order = encoding order
      C.Pages.emplace_back(Base, std::move(P));
    });
    Lib.Checkpoints.push_back(std::move(C));
  };

  // The build pass runs from instruction 0, so the interpreter's private
  // count *is* the global index; markers record 1-based inclusive
  // positions, matching what the sampled runner's phases report.
  Fn.setMarkerHook([&](int32_t Id) {
    Lib.Markers.push_back({Id, Fn.stats().Insts + 1});
  });

  std::vector<uint64_t> BlockCounts, PrevCounts;
  if (Options.CollectBbv) {
    BlockCounts.assign(DP.numInsts(), 0);
    PrevCounts.assign(DP.numInsts(), 0);
    Fn.setBlockProfile(BlockCounts.data());
  }

  capture(0);
  while (!M.halted() && Fn.stats().Insts < Options.MaxInsts) {
    uint64_t Chunk =
        std::min(Options.EveryInsts, Options.MaxInsts - Fn.stats().Insts);
    Fn.run(Chunk, /*RequireHalt=*/false);
    if (Options.CollectBbv) {
      // Keyed on cfg::BlockId, not raw terminator indices: instBlockId is
      // monotone in the instruction index and each CFG block holds at
      // most one terminator, so entries stay sorted and collision-free
      // while the keys survive any relinearization of the module.
      Bbv V;
      for (size_t I = 0; I != BlockCounts.size(); ++I)
        if (BlockCounts[I] != PrevCounts[I]) {
          V.emplace_back(DP.instBlockId(I), BlockCounts[I] - PrevCounts[I]);
          PrevCounts[I] = BlockCounts[I];
        }
      Lib.Bbvs.push_back(std::move(V));
    }
    // Full chunks end exactly on a period boundary (the engine honors its
    // budget precisely); a short final chunk captures the halt state.
    capture(Fn.stats().Insts);
  }

  Lib.TotalInsts = Fn.stats().Insts;
  Lib.StreamHalted = M.halted();
  Lib.DedupHits = Store.numDedupHits();

  Span.arg(telemetry::TraceArg::num("insts", Lib.TotalInsts));
  Span.arg(telemetry::TraceArg::num("checkpoints", Lib.Checkpoints.size()));
  Span.arg(telemetry::TraceArg::num("pages_stored", Lib.StorePages.size()));

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Built("ckpt.libraries.built");
    static const telemetry::Counter BuildInsts("ckpt.build.insts");
    static const telemetry::Counter BuildCkpts("ckpt.build.checkpoints");
    static const telemetry::Counter PagesStored("ckpt.pages.stored");
    static const telemetry::Counter PagesDeduped("ckpt.pages.deduped");
    Built.add();
    BuildInsts.add(Lib.TotalInsts);
    BuildCkpts.add(Lib.Checkpoints.size());
    PagesStored.add(Lib.StorePages.size());
    PagesDeduped.add(Lib.DedupHits);
  }
  return Lib;
}

const LibraryCheckpoint *CheckpointLibrary::checkpointAt(uint64_t Insts) const {
  auto It = std::lower_bound(
      Checkpoints.begin(), Checkpoints.end(), Insts,
      [](const LibraryCheckpoint &C, uint64_t V) { return C.InstsRetired < V; });
  if (It == Checkpoints.end() || It->InstsRetired != Insts)
    return nullptr;
  return &*It;
}

const LibraryCheckpoint *
CheckpointLibrary::nearestAtOrBefore(uint64_t Insts) const {
  auto It = std::upper_bound(
      Checkpoints.begin(), Checkpoints.end(), Insts,
      [](uint64_t V, const LibraryCheckpoint &C) { return V < C.InstsRetired; });
  if (It == Checkpoints.begin())
    return nullptr;
  return &*(It - 1);
}

bool CheckpointLibrary::resume(const LibraryCheckpoint &C, Machine &M,
                               BrrDecider &Decider,
                               std::string &Error) const {
  if (DeciderKind != Decider.checkpointKind())
    return fail(Error, "library was built with decider '" + DeciderKind +
                           "' but resuming with '" +
                           Decider.checkpointKind() + "'");
  Decider.restoreCheckpointWords(C.DeciderWords);

  // Reset drops every stale page — owned or shared — from whatever ran on
  // this machine before; the attach then aliases the library's pages
  // read-only, so the resume copies nothing.
  M.memory().reset();
  for (const auto &[Base, P] : C.Pages)
    M.memory().attachShared(Base, P);
  for (unsigned R = 1; R != 32; ++R) // r0 is hardwired zero
    M.writeReg(R, C.Regs[R]);
  M.setPc(C.Pc);
  M.setHalted(C.Halted);
  return true;
}

std::vector<LibraryMarker> CheckpointLibrary::markersIn(uint64_t Lo,
                                                        uint64_t Hi) const {
  auto Cmp = [](uint64_t V, const LibraryMarker &M) {
    return V < M.GlobalInst;
  };
  auto First = std::upper_bound(Markers.begin(), Markers.end(), Lo, Cmp);
  auto Last = std::upper_bound(Markers.begin(), Markers.end(), Hi, Cmp);
  return std::vector<LibraryMarker>(First, Last);
}

std::vector<uint8_t> CheckpointLibrary::encode() const {
  std::vector<uint8_t> Out;
  putU32(Out, LibraryVersion);
  putU64(Out, PeriodInsts);
  putU64(Out, TotalInsts);
  Out.push_back(StreamHalted ? 1 : 0);
  putU32(Out, static_cast<uint32_t>(DeciderKind.size()));
  Out.insert(Out.end(), DeciderKind.begin(), DeciderKind.end());

  putU64(Out, StorePages.size());
  std::unordered_map<const Memory::Page *, uint64_t> PageIndex;
  PageIndex.reserve(StorePages.size());
  for (size_t I = 0; I != StorePages.size(); ++I) {
    PageIndex.emplace(StorePages[I].get(), I);
    Out.insert(Out.end(), StorePages[I]->begin(), StorePages[I]->end());
  }

  putU64(Out, Checkpoints.size());
  for (const LibraryCheckpoint &C : Checkpoints) {
    putU64(Out, C.InstsRetired);
    putU64(Out, C.Pc);
    Out.push_back(C.Halted ? 1 : 0);
    for (uint64_t R : C.Regs)
      putU64(Out, R);
    putU32(Out, static_cast<uint32_t>(C.DeciderWords.size()));
    for (uint64_t W : C.DeciderWords)
      putU64(Out, W);
    putU64(Out, C.Pages.size());
    for (const auto &[Base, P] : C.Pages) {
      putU64(Out, Base);
      auto It = PageIndex.find(P.get());
      assert(It != PageIndex.end() && "checkpoint page not in store");
      putU64(Out, It->second);
    }
  }

  putU64(Out, Markers.size());
  for (const LibraryMarker &M : Markers) {
    putU32(Out, static_cast<uint32_t>(M.Id));
    putU64(Out, M.GlobalInst);
  }

  putU64(Out, Bbvs.size());
  for (const Bbv &V : Bbvs) {
    putU32(Out, static_cast<uint32_t>(V.size()));
    for (const auto &[Idx, N] : V) {
      putU32(Out, Idx);
      putU64(Out, N);
    }
  }
  return Out;
}

bool CheckpointLibrary::decode(const std::vector<uint8_t> &Bytes,
                               CheckpointLibrary &Lib, std::string &Error) {
  const uint64_t PageBytes = Memory::pageBytes();
  CheckpointLibrary L;
  Reader R(Bytes);
  uint32_t Ver = R.u32();
  if (R.failed())
    return fail(Error, "truncated library header");
  if (Ver != LibraryVersion)
    return fail(Error, "unsupported library version " + std::to_string(Ver));
  L.PeriodInsts = R.u64();
  L.TotalInsts = R.u64();
  L.StreamHalted = R.u8() != 0;
  if (R.failed() || L.PeriodInsts == 0)
    return fail(Error, "bad library header");

  uint32_t KindLen = R.u32();
  if (R.failed() || KindLen > MaxDeciderKindLen)
    return fail(Error, "bad library decider kind");
  L.DeciderKind.assign(KindLen, '\0');
  if (KindLen != 0 && !R.bytes(L.DeciderKind.data(), KindLen))
    return fail(Error, "truncated library decider kind");

  uint64_t NumStorePages = R.u64();
  if (R.failed() || NumStorePages > (Bytes.size() / PageBytes) + 1)
    return fail(Error, "bad library page store size");
  L.StorePages.reserve(NumStorePages);
  for (uint64_t I = 0; I != NumStorePages; ++I) {
    auto P = std::make_shared<Memory::Page>();
    if (!R.bytes(P->data(), PageBytes))
      return fail(Error, "truncated library store page");
    L.StorePages.push_back(std::move(P));
  }

  uint64_t NumCheckpoints = R.u64();
  if (R.failed() || NumCheckpoints > R.remaining())
    return fail(Error, "bad library checkpoint count");
  L.Checkpoints.reserve(NumCheckpoints);
  uint64_t PrevInsts = 0;
  for (uint64_t I = 0; I != NumCheckpoints; ++I) {
    LibraryCheckpoint C;
    C.InstsRetired = R.u64();
    C.Pc = R.u64();
    C.Halted = R.u8() != 0;
    for (unsigned J = 0; J != 32; ++J)
      C.Regs[J] = R.u64();
    uint32_t NumWords = R.u32();
    if (R.failed() || NumWords > MaxDeciderWords)
      return fail(Error, "bad library decider state");
    for (uint32_t J = 0; J != NumWords; ++J)
      C.DeciderWords.push_back(R.u64());
    if (I != 0 && !R.failed() && C.InstsRetired <= PrevInsts)
      return fail(Error, "library checkpoints out of order");
    PrevInsts = C.InstsRetired;

    uint64_t NumPages = R.u64();
    if (R.failed() || NumPages > R.remaining() / 16 + 1)
      return fail(Error, "bad library checkpoint page count");
    C.Pages.reserve(NumPages);
    uint64_t PrevBase = 0;
    for (uint64_t J = 0; J != NumPages; ++J) {
      uint64_t Base = R.u64();
      uint64_t Index = R.u64();
      if (R.failed() || Base % PageBytes != 0 || Index >= L.StorePages.size())
        return fail(Error, "bad library checkpoint page reference");
      if (J != 0 && Base <= PrevBase)
        return fail(Error, "library checkpoint pages out of order");
      PrevBase = Base;
      C.Pages.emplace_back(Base, L.StorePages[Index]);
    }
    L.Checkpoints.push_back(std::move(C));
  }
  if (L.Checkpoints.empty())
    return fail(Error, "library has no checkpoints");

  uint64_t NumMarkers = R.u64();
  if (R.failed() || NumMarkers > R.remaining())
    return fail(Error, "bad library marker count");
  L.Markers.reserve(NumMarkers);
  for (uint64_t I = 0; I != NumMarkers; ++I) {
    LibraryMarker M;
    M.Id = static_cast<int32_t>(R.u32());
    M.GlobalInst = R.u64();
    L.Markers.push_back(M);
  }

  uint64_t NumBbvs = R.u64();
  if (R.failed() || NumBbvs > R.remaining() + 1)
    return fail(Error, "bad library bbv count");
  L.Bbvs.reserve(NumBbvs);
  for (uint64_t I = 0; I != NumBbvs; ++I) {
    uint32_t NumEntries = R.u32();
    if (R.failed() || NumEntries > R.remaining() / 12 + 1)
      return fail(Error, "bad library bbv size");
    Bbv V;
    V.reserve(NumEntries);
    for (uint32_t J = 0; J != NumEntries; ++J) {
      uint32_t Idx = R.u32();
      uint64_t N = R.u64();
      V.emplace_back(Idx, N);
    }
    L.Bbvs.push_back(std::move(V));
  }
  if (R.failed())
    return fail(Error, "truncated library payload");
  if (!R.atEnd())
    return fail(Error, "trailing bytes after library payload");

  Lib = std::move(L);
  return true;
}

ContainerSection CheckpointLibrary::section() const {
  return ContainerSection::make(LibraryTag, encode());
}

bool bor::ckpt::saveLibraryFile(const Program &P,
                                const CheckpointLibrary &Lib,
                                const std::string &Path) {
  return saveProgram(P, Path, {Lib.section()});
}

bool bor::ckpt::loadLibraryFile(const std::string &Path, Program &P,
                                CheckpointLibrary &Lib, std::string &Error) {
  LoadResult R = loadProgramFile(Path);
  if (!R.Ok)
    return fail(Error, R.Error);
  const ContainerSection *S = R.findSection(LibraryTag);
  if (!S)
    return fail(Error, "'" + Path + "' has no CKPL section");
  if (!CheckpointLibrary::decode(S->Bytes, Lib, Error))
    return false;
  P = std::move(R.Prog);
  return true;
}
