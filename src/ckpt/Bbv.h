//===- ckpt/Bbv.h - Basic-block vectors and region selection -------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SimPoint-style representative-region selection over the per-period
/// basic-block vectors a checkpoint library collects during its build
/// pass. Each period's BBV counts how often every static basic block
/// executed its terminator in that period (collected by
/// Interpreter::setBlockProfile and keyed on the block's cfg::BlockId,
/// the same id space sim/Decode and the src/opt profile machinery use);
/// periods with near-identical vectors are the same program phase, so a
/// sweep can measure one representative per phase and weight it by how
/// many periods it stands for.
///
/// Selection is a deterministic farthest-first traversal — no random
/// seeding, ties broken toward the lowest period index — so region-mode
/// results are byte-stable across runs and thread counts.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CKPT_BBV_H
#define BOR_CKPT_BBV_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bor {
namespace ckpt {

/// One period's basic-block vector: (cfg::BlockId, execution count)
/// pairs, sorted by id, zero counts omitted.
using Bbv = std::vector<std::pair<uint32_t, uint64_t>>;

/// Manhattan distance between the frequency-normalized vectors (each
/// scaled to sum to 1, so period length does not dominate). Ranges over
/// [0, 2]; 0 means identical block mix. An empty vector is the zero
/// vector.
double bbvDistance(const Bbv &A, const Bbv &B);

/// The result of clustering periods into at most MaxRegions phases.
struct RegionSelection {
  /// Representative period indices, ascending. Every representative's
  /// period starts at a library checkpoint, so it can be measured by a
  /// single resume.
  std::vector<uint32_t> Reps;
  /// Per period: the representative period standing in for it (RepOf[r]
  /// == r for representatives themselves).
  std::vector<uint32_t> RepOf;

  std::size_t numPeriods() const { return RepOf.size(); }
  /// Periods represented by \p Rep (its cluster weight).
  uint64_t weightOf(uint32_t Rep) const {
    uint64_t W = 0;
    for (uint32_t R : RepOf)
      W += (R == Rep);
    return W;
  }
};

/// Farthest-first traversal over \p Bbvs: period 0 seeds the
/// representative set; each round adds the period farthest from its
/// nearest representative (ties toward the lowest index) until MaxRegions
/// representatives are chosen or every period is within distance 0 of
/// one. Each period is then assigned to its nearest representative (ties
/// toward the earliest). Deterministic by construction.
RegionSelection selectRegions(const std::vector<Bbv> &Bbvs,
                              std::size_t MaxRegions);

} // namespace ckpt
} // namespace bor

#endif // BOR_CKPT_BBV_H
