//===- ckpt/Bbv.cpp - Basic-block vectors and region selection -----------===//

#include "ckpt/Bbv.h"

#include <algorithm>
#include <cassert>

using namespace bor;
using namespace bor::ckpt;

double bor::ckpt::bbvDistance(const Bbv &A, const Bbv &B) {
  uint64_t TotalA = 0, TotalB = 0;
  for (const auto &[Idx, N] : A)
    TotalA += N;
  for (const auto &[Idx, N] : B)
    TotalB += N;
  double InvA = TotalA ? 1.0 / static_cast<double>(TotalA) : 0.0;
  double InvB = TotalB ? 1.0 / static_cast<double>(TotalB) : 0.0;

  // Merge-walk the two sorted sparse vectors.
  double D = 0;
  size_t I = 0, J = 0;
  while (I != A.size() || J != B.size()) {
    if (J == B.size() || (I != A.size() && A[I].first < B[J].first)) {
      D += static_cast<double>(A[I].second) * InvA;
      ++I;
    } else if (I == A.size() || B[J].first < A[I].first) {
      D += static_cast<double>(B[J].second) * InvB;
      ++J;
    } else {
      double FA = static_cast<double>(A[I].second) * InvA;
      double FB = static_cast<double>(B[J].second) * InvB;
      D += FA > FB ? FA - FB : FB - FA;
      ++I;
      ++J;
    }
  }
  return D;
}

RegionSelection bor::ckpt::selectRegions(const std::vector<Bbv> &Bbvs,
                                         size_t MaxRegions) {
  RegionSelection Sel;
  const size_t N = Bbvs.size();
  if (N == 0 || MaxRegions == 0)
    return Sel;

  // NearestDist[p] = distance from period p to its nearest representative
  // so far; maintained incrementally as representatives are added.
  Sel.Reps.push_back(0);
  std::vector<double> NearestDist(N);
  for (size_t P = 0; P != N; ++P)
    NearestDist[P] = bbvDistance(Bbvs[P], Bbvs[0]);

  while (Sel.Reps.size() < MaxRegions && Sel.Reps.size() < N) {
    size_t Farthest = 0;
    double MaxD = 0;
    for (size_t P = 0; P != N; ++P)
      if (NearestDist[P] > MaxD) {
        MaxD = NearestDist[P];
        Farthest = P;
      }
    if (MaxD == 0)
      break; // every period already has an exact-phase representative
    Sel.Reps.push_back(static_cast<uint32_t>(Farthest));
    for (size_t P = 0; P != N; ++P) {
      double D = bbvDistance(Bbvs[P], Bbvs[Farthest]);
      if (D < NearestDist[P])
        NearestDist[P] = D;
    }
  }
  std::sort(Sel.Reps.begin(), Sel.Reps.end());

  Sel.RepOf.resize(N);
  for (size_t P = 0; P != N; ++P) {
    uint32_t Best = Sel.Reps[0];
    double BestD = bbvDistance(Bbvs[P], Bbvs[Sel.Reps[0]]);
    for (size_t R = 1; R != Sel.Reps.size(); ++R) {
      double D = bbvDistance(Bbvs[P], Bbvs[Sel.Reps[R]]);
      if (D < BestD) { // strict: ties stay with the earliest rep
        BestD = D;
        Best = Sel.Reps[R];
      }
    }
    Sel.RepOf[P] = Best;
  }
  return Sel;
}
