//===- ckpt/PageStore.cpp - Refcounted immutable page storage ------------===//

#include "ckpt/PageStore.h"

#include <cstring>

using namespace bor;
using namespace bor::ckpt;

/// FNV-1a over the page, folded eight bytes at a time. Collisions are
/// harmless (resolved by memcmp below); the hash only has to keep the
/// bucket lists short.
uint64_t PageStore::hashPage(const uint8_t *Data) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (size_t I = 0; I != sizeof(Page); I += 8) {
    uint64_t W;
    std::memcpy(&W, Data + I, 8);
    H = (H ^ W) * 0x100000001b3ULL;
  }
  return H;
}

PageStore::PageRef PageStore::intern(const uint8_t *Data) {
  std::vector<PageRef> &Bucket = ByHash[hashPage(Data)];
  for (const PageRef &P : Bucket)
    if (std::memcmp(P->data(), Data, sizeof(Page)) == 0) {
      ++DedupHits;
      return P;
    }
  auto P = std::make_shared<Page>();
  std::memcpy(P->data(), Data, sizeof(Page));
  Bucket.push_back(P);
  ++NumStored;
  return P;
}
