//===- ckpt/CheckpointLibrary.h - Shared COW checkpoint library ----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CheckpointLibrary turns one functional pass over a workload into
/// shared, copy-on-write state for any number of later runs. build()
/// executes the stream once through the block-chained interpreter,
/// capturing a checkpoint at instruction 0, at every multiple of the
/// period, and at the halt point; page images are interned in a PageStore
/// so consecutive checkpoints share every untouched page. Because both
/// execution engines honor instruction budgets exactly, those capture
/// points are precisely where a sampled run's fast-forward spans end —
/// resume() COW-attaches a checkpoint's pages into a Machine and the run
/// continues bit-identically to one that executed the prefix itself.
///
/// The build pass also records every marker (so a resuming run can splice
/// the markers its skipped spans would have executed) and, optionally, a
/// per-period basic-block vector for the representative-region selector
/// (ckpt/Bbv.h).
///
/// On disk a library travels as a "CKPL" section of the BORB v2 container
/// next to its program, so `bor-run --ckpt-dir` and `bor-bench
/// --ckpt-dir` reuse libraries across invocations. See docs/CHECKPOINTS.md.
///
/// Payload layout (little-endian), version 2 (version 2 rekeyed BBV
/// entries from terminator instruction indices to cfg::BlockIds; v1
/// images are rejected and rebuilt):
///   u32 version | u64 periodInsts | u64 totalInsts | u8 streamHalted
///   | u32 deciderKindLen, kind bytes
///   | u64 numStorePages | numStorePages x 4096 page bytes
///   | u64 numCheckpoints | checkpoints:
///       (u64 instsRetired, u64 pc, u8 halted, 32 x u64 regs,
///        u32 numDeciderWords, u64 words,
///        u64 numPages, (u64 base, u64 storePageIndex)*)*
///   | u64 numMarkers | (u32 id, u64 globalInst)*
///   | u64 numBbvs | (u32 numEntries, (u32 cfgBlockId, u64 count)*)*
///
//===----------------------------------------------------------------------===//

#ifndef BOR_CKPT_CHECKPOINTLIBRARY_H
#define BOR_CKPT_CHECKPOINTLIBRARY_H

#include "ckpt/Bbv.h"
#include "ckpt/PageStore.h"
#include "sim/Decode.h"
#include "telemetry/Telemetry.h"

#include <string>
#include <vector>

namespace bor {

struct ContainerSection;

namespace ckpt {

/// One snapshot in a library. Unlike the standalone MachineCheckpoint
/// (sample/Checkpoint.h), its pages are refcounted handles into the
/// library's shared store, not private copies.
struct LibraryCheckpoint {
  uint64_t InstsRetired = 0;
  uint64_t Pc = 0;
  bool Halted = false;
  std::array<uint64_t, 32> Regs{};
  std::vector<uint64_t> DeciderWords;
  /// (page base address, shared page) sorted by base; all-zero pages
  /// omitted (a reset Machine reproduces them implicitly).
  std::vector<std::pair<uint64_t, PageStore::PageRef>> Pages;
};

/// A marker executed during the build pass, at its 1-based global
/// committed-instruction index — the library's copy of what a run's
/// skipped fast-forward spans would have observed.
struct LibraryMarker {
  int32_t Id = 0;
  uint64_t GlobalInst = 0;
};

/// One workload's checkpoint set plus the shared page store behind it.
/// Immutable after build()/decode; safe to share read-only across
/// ThreadPool workers (resume() only reads).
class CheckpointLibrary {
public:
  struct BuildOptions {
    /// Capture period in instructions (a sampled run resuming from this
    /// library must use the same SamplingPlan::PeriodInsts).
    uint64_t EveryInsts = 100000;
    /// Stream budget for the build pass (checkpoints beyond it are
    /// simply absent, and resumes there fall back to execution).
    uint64_t MaxInsts = ~0ULL;
    /// Collect per-period basic-block vectors for region selection.
    bool CollectBbv = true;
  };

  /// Runs \p DP once under a fresh LFSR decider configured by \p Brr,
  /// capturing the library. Publishes ckpt.* build counters and one
  /// "ckpt-build" trace span through \p Telemetry.
  static CheckpointLibrary build(const DecodedProgram &DP,
                                 const BrrUnitConfig &Brr,
                                 const BuildOptions &Options,
                                 const telemetry::TelemetrySink *Telemetry);

  /// The checkpoint whose capture point is exactly \p Insts retired
  /// instructions, or nullptr.
  const LibraryCheckpoint *checkpointAt(uint64_t Insts) const;

  /// The latest checkpoint at or before \p Insts, or nullptr when the
  /// library is empty.
  const LibraryCheckpoint *nearestAtOrBefore(uint64_t Insts) const;

  /// Checkpoint 0: the freshly-loaded program with a fresh decider.
  const LibraryCheckpoint &front() const { return Checkpoints.front(); }
  /// The last capture point (the halt state when streamHalted()).
  const LibraryCheckpoint *finalCheckpoint() const {
    return Checkpoints.empty() ? nullptr : &Checkpoints.back();
  }

  /// Restores \p C into \p M (COW-attaching the shared pages) and \p
  /// Decider. Returns false with \p Error set when the decider kind does
  /// not match the library's.
  bool resume(const LibraryCheckpoint &C, Machine &M, BrrDecider &Decider,
              std::string &Error) const;

  /// Markers with global index in (\p Lo, \p Hi] — the ones a skipped
  /// fast-forward span from \p Lo to \p Hi would have executed.
  std::vector<LibraryMarker> markersIn(uint64_t Lo, uint64_t Hi) const;
  const std::vector<LibraryMarker> &markers() const { return Markers; }

  const std::vector<Bbv> &periodBbvs() const { return Bbvs; }
  /// Periods the build pass executed (including a final partial one).
  size_t numPeriods() const { return Bbvs.size(); }

  uint64_t periodInsts() const { return PeriodInsts; }
  uint64_t totalInsts() const { return TotalInsts; }
  bool streamHalted() const { return StreamHalted; }
  const std::string &deciderKind() const { return DeciderKind; }
  size_t numCheckpoints() const { return Checkpoints.size(); }
  const std::vector<LibraryCheckpoint> &checkpoints() const {
    return Checkpoints;
  }
  /// Distinct page images in the store (what the library actually holds).
  size_t numStoredPages() const { return StorePages.size(); }
  /// Page captures satisfied by an already-stored image (build only;
  /// zero after decode).
  uint64_t numDedupHits() const { return DedupHits; }

  /// Payload (de)serialization; decode returns false and sets \p Error
  /// on malformed bytes.
  std::vector<uint8_t> encode() const;
  static bool decode(const std::vector<uint8_t> &Bytes,
                     CheckpointLibrary &Lib, std::string &Error);

  /// The "CKPL" container section carrying this library.
  ContainerSection section() const;

private:
  uint64_t PeriodInsts = 0;
  uint64_t TotalInsts = 0;
  bool StreamHalted = false;
  std::string DeciderKind;
  /// Distinct stored pages in first-intern order (the serialization
  /// index space; checkpoints alias into this set).
  std::vector<PageStore::PageRef> StorePages;
  std::vector<LibraryCheckpoint> Checkpoints; ///< ascending InstsRetired
  std::vector<LibraryMarker> Markers;         ///< ascending GlobalInst
  std::vector<Bbv> Bbvs;                      ///< one per period
  uint64_t DedupHits = 0;
};

/// Writes \p P plus \p Lib as a BORB v2 image at \p Path.
bool saveLibraryFile(const Program &P, const CheckpointLibrary &Lib,
                     const std::string &Path);

/// Loads a library image: program into \p P, library into \p Lib.
/// Returns false with a diagnostic for I/O errors, format errors, or
/// images without a "CKPL" section.
bool loadLibraryFile(const std::string &Path, Program &P,
                     CheckpointLibrary &Lib, std::string &Error);

} // namespace ckpt
} // namespace bor

#endif // BOR_CKPT_CHECKPOINTLIBRARY_H
