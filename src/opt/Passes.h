//===- opt/Passes.h - Profile-guided layout passes ------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layout optimizer that closes the paper's PGO loop: profiles
/// collected by the sampling frameworks (Sections 4-5) feed passes that
/// re-linearize a cfg::Module for the pipeline model's fetch behaviour.
/// Only the Layout changes — block ids, instructions, and data are
/// untouched, so profiles stay valid across runs of the optimizer and
/// emitProgram proves the result executable by construction.
///
/// Three passes, composable via LayoutOptions:
///
///  * Branch-direction layout: greedy trace formation that places each
///    block's hottest successor as its fall-through. emitProgram then
///    inverts conditional branches whose taken arm became adjacent, so
///    the hot path runs on not-taken branches (no fetch break, no BTB
///    pressure).
///  * Hot/cold splitting: per function, blocks the profile shows cold are
///    moved out of the function body into a shared cold section at the
///    module tail, keeping the hot instruction footprint dense.
///  * Cold-path outlining: the Figure 8 flip, generalized — blocks
///    reachable only through brr-taken edges are sampling's uncommon
///    paths and are placed out of line even with no profile at all.
///
/// All passes are conservative with partial profiles: a block is treated
/// as cold only on positive evidence (profiled and far below the hottest
/// block), never because the profile is silent about it.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_OPT_PASSES_H
#define BOR_OPT_PASSES_H

#include "cfg/Cfg.h"
#include "opt/ProfileMap.h"

namespace bor {
namespace opt {

struct LayoutOptions {
  bool BranchDirection = true; ///< hot-successor trace layout
  bool HotColdSplit = true;    ///< per-function cold sectioning
  bool OutlineCold = true;     ///< structural brr-uncommon outlining
  /// Cold threshold: a profiled block is cold when its count times this
  /// divisor is still below the hottest block's count.
  uint64_t ColdDivisor = 64;
};

struct LayoutStats {
  size_t Traces = 0;          ///< traces formed by branch-direction layout
  size_t HotFallthroughs = 0; ///< non-Fall hot edges made adjacent
  size_t ColdOutlined = 0;    ///< blocks moved to the cold section
  size_t BrrOutlined = 0;     ///< brr-uncommon blocks moved out of line
  size_t FunctionsSplit = 0;  ///< functions that shed at least one block
};

/// Runs the enabled passes over \p M's layout, guided by \p Prof (which
/// may be empty — only the structural pass then has any effect). The
/// entry block always stays first; empty sentinel blocks always stay
/// last. Publishes opt.pass.* counters.
LayoutStats optimizeLayout(cfg::Module &M, const ProfileMap &Prof,
                           const LayoutOptions &Opts = {});

} // namespace opt
} // namespace bor

#endif // BOR_OPT_PASSES_H
