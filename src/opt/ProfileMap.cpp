//===- opt/ProfileMap.cpp - Block-keyed execution profiles ----------------===//

#include "opt/ProfileMap.h"

#include "exp/Json.h"
#include "sim/Interpreter.h"
#include "telemetry/Counters.h"

using namespace bor;
using namespace bor::opt;

void ProfileMap::add(cfg::BlockId Id, uint64_t Exec, uint64_t Taken) {
  auto &Slot = Counts[Id];
  Slot.first += Exec;
  Slot.second += Taken;
}

uint64_t ProfileMap::execCount(cfg::BlockId Id) const {
  auto It = Counts.find(Id);
  return It == Counts.end() ? 0 : It->second.first;
}

uint64_t ProfileMap::takenCount(cfg::BlockId Id) const {
  auto It = Counts.find(Id);
  return It == Counts.end() ? 0 : It->second.second;
}

uint64_t ProfileMap::totalExec() const {
  uint64_t Total = 0;
  for (const auto &[Id, C] : Counts)
    Total += C.first;
  return Total;
}

uint64_t ProfileMap::maxExec() const {
  uint64_t Max = 0;
  for (const auto &[Id, C] : Counts)
    Max = std::max(Max, C.first);
  return Max;
}

std::string ProfileMap::toJson() const {
  std::string Blocks = "[";
  bool First = true;
  for (const auto &[Id, C] : Counts) {
    if (!First)
      Blocks += ",";
    First = false;
    exp::JsonObjectWriter W;
    W.fieldRaw("id", exp::jsonNumber(static_cast<uint64_t>(Id)));
    W.fieldRaw("count", exp::jsonNumber(C.first));
    if (C.second != 0)
      W.fieldRaw("taken", exp::jsonNumber(C.second));
    Blocks += W.finish();
  }
  Blocks += "]";
  exp::JsonObjectWriter W;
  W.field("version", "bor-profile-v1");
  W.fieldRaw("complete", Complete ? "true" : "false");
  W.fieldRaw("blocks", Blocks);
  return W.finish();
}

bool ProfileMap::fromJson(const std::string &Text, ProfileMap &Out,
                          std::string &Err) {
  exp::JsonValue V;
  if (!exp::jsonParse(Text, V, Err))
    return false;
  const exp::JsonValue *Version = V.find("version");
  if (!Version || !Version->isString() || Version->Str != "bor-profile-v1") {
    Err = "not a bor-profile-v1 document";
    return false;
  }
  const exp::JsonValue *Blocks = V.find("blocks");
  if (!Blocks || !Blocks->isArray()) {
    Err = "missing blocks array";
    return false;
  }
  ProfileMap P;
  for (const exp::JsonValue &B : Blocks->Elems) {
    const exp::JsonValue *Id = B.find("id");
    const exp::JsonValue *Count = B.find("count");
    if (!Id || !Id->isNumber() || !Count || !Count->isNumber()) {
      Err = "block entry missing id/count";
      return false;
    }
    const exp::JsonValue *Taken = B.find("taken");
    P.add(static_cast<cfg::BlockId>(Id->Num),
          static_cast<uint64_t>(Count->Num),
          Taken && Taken->isNumber() ? static_cast<uint64_t>(Taken->Num)
                                     : 0);
  }
  const exp::JsonValue *Complete = V.find("complete");
  P.setComplete(Complete && Complete->isBool() && Complete->BoolVal);
  Out = std::move(P);
  return true;
}

ProfileMap opt::collectOracleProfile(const Program &P, BrrDecider &D,
                                     uint64_t MaxSteps) {
  cfg::Module M = cfg::buildModule(P);
  Machine Mach;
  Interpreter I(P, Mach, D);
  ProfileMap Prof;
  uint64_t Steps = 0;
  while (!I.halted() && Steps != MaxSteps) {
    size_t Idx = P.indexForPc(Mach.pc());
    cfg::BlockId Blk = M.blockForIndex(Idx);
    ExecRecord R = I.step();
    ++Steps;
    // A block is entered exactly when its head instruction executes
    // (every head is a leader, so control can reach it no other way).
    if (Idx == M.block(Blk).OrigIndex)
      Prof.add(Blk, 1);
    if (R.I.isCondBranch() && R.Taken)
      Prof.add(Blk, 0, 1);
  }
  Prof.setComplete(true);
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Profiles("opt.profile.oracle_runs");
    static const telemetry::Counter StepsC("opt.profile.oracle_steps");
    Profiles.add(1);
    StepsC.add(Steps);
  }
  return Prof;
}

ProfileMap opt::profileFromSites(const std::vector<uint64_t> &SiteCounts,
                                 const std::vector<cfg::BlockId> &SiteBlocks) {
  assert(SiteCounts.size() == SiteBlocks.size() &&
         "one block per profiled site");
  ProfileMap Prof;
  for (size_t I = 0; I != SiteCounts.size(); ++I)
    if (SiteBlocks[I] != cfg::NoBlock)
      Prof.add(SiteBlocks[I], SiteCounts[I]);
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Ingests("opt.profile.site_ingests");
    Ingests.add(1);
  }
  return Prof;
}
