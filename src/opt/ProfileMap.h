//===- opt/ProfileMap.h - Block-keyed execution profiles ------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile representation the layout optimizer consumes: execution
/// counts (and, when known, conditional-branch taken counts) keyed on
/// cfg::BlockId — the same id space sim/Decode derives and ckpt/Bbv keys
/// on, so every profile source in the repo speaks one language.
///
/// Profiles come from three places:
///  * collectOracleProfile() steps the interpreter and counts every block
///    entry and branch outcome — exact, but costs a full functional run
///    (the reference a sampled profile is judged against);
///  * fromSites() ingests sampled site counts (a ProfileTable read back
///    after a brr- or counter-sampled run) through a site-to-block map —
///    statistical, cheap, the paper's proposal;
///  * fromJson()/toJson() round-trip the "bor-profile-v1" format that
///    bor-opt and bor-dis --profile exchange on disk.
///
/// A ProfileMap is deliberately partial: hasBlock() distinguishes "never
/// executed" from "not profiled", and the passes only treat a block as
/// cold on positive evidence.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_OPT_PROFILEMAP_H
#define BOR_OPT_PROFILEMAP_H

#include "cfg/Cfg.h"
#include "sim/Machine.h"

#include <map>
#include <string>

namespace bor {
namespace opt {

/// Per-block execution profile, keyed on cfg::BlockId.
class ProfileMap {
public:
  /// Accumulates \p Exec block executions (and \p Taken taken outcomes of
  /// the block's terminating conditional branch) into block \p Id.
  void add(cfg::BlockId Id, uint64_t Exec, uint64_t Taken = 0);

  /// Whether block \p Id was profiled at all. In a partial profile an
  /// absent block is unknown, not cold; in a complete() profile absence
  /// means the block never executed.
  bool hasBlock(cfg::BlockId Id) const { return Counts.count(Id) != 0; }

  /// A complete profile observed every execution (the oracle collector):
  /// blocks it does not mention have a true count of zero. Sampled
  /// profiles are partial and leave this false.
  bool complete() const { return Complete; }
  void setComplete(bool C) { Complete = C; }
  /// Executions of block \p Id (0 when absent).
  uint64_t execCount(cfg::BlockId Id) const;
  /// Taken outcomes of \p Id's conditional terminator (0 when absent).
  uint64_t takenCount(cfg::BlockId Id) const;

  size_t numBlocks() const { return Counts.size(); }
  bool empty() const { return Counts.empty(); }
  uint64_t totalExec() const;
  /// The hottest single block count (0 for an empty profile).
  uint64_t maxExec() const;

  /// Blocks in ascending id order (deterministic iteration for passes).
  const std::map<cfg::BlockId, std::pair<uint64_t, uint64_t>> &
  blocks() const {
    return Counts;
  }

  /// Serializes as "bor-profile-v1" JSON.
  std::string toJson() const;
  /// Parses toJson() output. Returns false and sets \p Err on malformed
  /// or wrong-version input.
  static bool fromJson(const std::string &Text, ProfileMap &Out,
                       std::string &Err);

private:
  /// BlockId -> (exec count, taken count), ordered for determinism.
  std::map<cfg::BlockId, std::pair<uint64_t, uint64_t>> Counts;
  bool Complete = false;
};

/// Exact profile: steps \p P to completion (at most \p MaxSteps
/// instructions) under \p D and counts every block entry and every
/// conditional-branch taken outcome, keyed to buildModule(P)'s block ids.
/// Publishes opt.profile.* counters.
ProfileMap collectOracleProfile(const Program &P, BrrDecider &D,
                                uint64_t MaxSteps);

/// Sampled profile: \p SiteCounts[i] is the sampled count of site i (a
/// ProfileTable read back after an instrumented run) and \p SiteBlocks[i]
/// the block that site profiles (cfg::NoBlock entries are skipped).
/// Sampling scales all counts by 1/interval uniformly, so relative
/// hotness — all the passes use — is preserved in expectation.
ProfileMap profileFromSites(const std::vector<uint64_t> &SiteCounts,
                            const std::vector<cfg::BlockId> &SiteBlocks);

} // namespace opt
} // namespace bor

#endif // BOR_OPT_PROFILEMAP_H
