//===- opt/Passes.cpp - Profile-guided layout passes ----------------------===//

#include "opt/Passes.h"

#include "telemetry/Counters.h"

#include <algorithm>
#include <set>

using namespace bor;
using namespace bor::cfg;
using namespace bor::opt;

namespace {

/// Greedy trace formation: seeds in current layout order, each trace
/// extended along the hottest extendable successor. Call edges never
/// extend a trace (control returns to the Fall block), and brr-taken
/// edges never do either (their probability makes them cold by
/// construction — the optimizer must keep the fall-through path hot).
std::vector<BlockId> formTraces(const Module &M, const ProfileMap &Prof,
                                const std::vector<BlockId> &Layout,
                                LayoutStats &S) {
  std::vector<char> Placed(M.numBlocks(), 0);
  std::vector<BlockId> Out;
  Out.reserve(Layout.size());
  for (BlockId Seed : Layout) {
    if (Placed[Seed])
      continue;
    ++S.Traces;
    BlockId Cur = Seed;
    for (;;) {
      Placed[Cur] = 1;
      Out.push_back(Cur);
      const BasicBlock &B = M.block(Cur);
      BlockId Fall = B.fallThrough();
      BlockId Taken = NoBlock;
      const Inst *T = B.terminator();
      if (T && (T->isCondBranch() || T->Op == Opcode::Jmp))
        Taken = B.succ(EdgeKind::Taken);

      BlockId Next;
      bool Flipped = false;
      if (Taken == NoBlock) {
        Next = Fall;
      } else if (Fall == NoBlock) {
        Next = Taken; // jmp: adjacency enables later elision
      } else {
        // Conditional branch with both arms: weigh the edges. The block's
        // own taken counts are exact edge weights; otherwise fall back to
        // the successors' execution counts (an upper bound that still
        // ranks the arms). Ties keep the original direction.
        uint64_t WFall, WTaken;
        if (T && T->isCondBranch() && Prof.hasBlock(Cur)) {
          uint64_t E = Prof.execCount(Cur);
          uint64_t Tk = Prof.takenCount(Cur);
          WTaken = Tk;
          WFall = E >= Tk ? E - Tk : 0;
        } else {
          WFall = Prof.execCount(Fall);
          WTaken = Prof.execCount(Taken);
        }
        Flipped = WTaken > WFall;
        Next = Flipped ? Taken : Fall;
      }
      if (Next == NoBlock || Placed[Next])
        break;
      if (Flipped)
        ++S.HotFallthroughs;
      Cur = Next;
    }
  }
  return Out;
}

} // namespace

LayoutStats opt::optimizeLayout(Module &M, const ProfileMap &Prof,
                                const LayoutOptions &Opts) {
  LayoutStats S;
  if (M.layout().empty())
    return S;
  std::vector<BlockId> Layout = M.layout();
  const BlockId Entry = Layout.front();

  if (Opts.BranchDirection && !Prof.empty())
    Layout = formTraces(M, Prof, Layout, S);

  // Hot/cold splitting: profiled-cold blocks leave the function body for
  // a shared cold section at the tail, grouped by function so each
  // function's cold part stays contiguous.
  uint64_t Max = Prof.maxExec();
  if (Opts.HotColdSplit && Max > 0) {
    M.setLayout(Layout);
    M.computeFunctions();
    auto IsCold = [&](BlockId Id) {
      if (Id == Entry || M.block(Id).Insts.empty())
        return false;
      if (!Prof.hasBlock(Id) && !Prof.complete())
        return false; // unknown, not cold
      return Prof.execCount(Id) * Opts.ColdDivisor < Max;
    };
    std::vector<BlockId> Hot, Cold;
    std::set<uint32_t> SplitFns;
    for (BlockId Id : Layout) {
      if (IsCold(Id)) {
        Cold.push_back(Id);
        SplitFns.insert(M.functionOf(Id));
      } else {
        Hot.push_back(Id);
      }
    }
    std::stable_sort(Cold.begin(), Cold.end(), [&](BlockId A, BlockId B) {
      return M.functionOf(A) < M.functionOf(B);
    });
    S.ColdOutlined = Cold.size();
    S.FunctionsSplit = SplitFns.size();
    Hot.insert(Hot.end(), Cold.begin(), Cold.end());
    Layout = std::move(Hot);
  }

  // Structural outlining: a block whose every predecessor edge is
  // brr-taken is a sampling uncommon path — out of line regardless of
  // profile (the Figure 8 flip, applied generically).
  if (Opts.OutlineCold) {
    std::vector<uint8_t> HasPred(M.numBlocks(), 0);
    std::vector<uint8_t> HasNonBrrPred(M.numBlocks(), 0);
    for (BlockId Id = 0; Id != M.numBlocks(); ++Id)
      for (const Edge &E : M.block(Id).Succs) {
        HasPred[E.Dst] = 1;
        if (E.Kind != EdgeKind::BrrTaken)
          HasNonBrrPred[E.Dst] = 1;
      }
    std::vector<BlockId> Inline, Outlined;
    for (BlockId Id : Layout) {
      bool BrrOnly =
          Id != Entry && HasPred[Id] && !HasNonBrrPred[Id];
      (BrrOnly ? Outlined : Inline).push_back(Id);
    }
    S.BrrOutlined = Outlined.size();
    Inline.insert(Inline.end(), Outlined.begin(), Outlined.end());
    Layout = std::move(Inline);
  }

  // Empty successor-less blocks (the branch-to-end sentinel) must stay at
  // the very end: they emit no instructions, so anything placed after one
  // would share its address.
  std::vector<BlockId> Final, Sentinels;
  for (BlockId Id : Layout) {
    const BasicBlock &B = M.block(Id);
    (Id != Entry && B.Insts.empty() && B.Succs.empty() ? Sentinels : Final)
        .push_back(Id);
  }
  Final.insert(Final.end(), Sentinels.begin(), Sentinels.end());
  assert(!Final.empty() && Final.front() == Entry &&
         "layout passes must keep the entry block first");
  M.setLayout(std::move(Final));

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Runs("opt.pass.runs");
    static const telemetry::Counter Traces("opt.pass.traces");
    static const telemetry::Counter Flips("opt.pass.hot_fallthroughs");
    static const telemetry::Counter ColdC("opt.pass.cold_outlined");
    static const telemetry::Counter BrrC("opt.pass.brr_outlined");
    static const telemetry::Counter Fns("opt.pass.functions_split");
    Runs.add(1);
    Traces.add(S.Traces);
    Flips.add(S.HotFallthroughs);
    ColdC.add(S.ColdOutlined);
    BrrC.add(S.BrrOutlined);
    Fns.add(S.FunctionsSplit);
  }
  return S;
}
