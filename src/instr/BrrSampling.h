//===- instr/BrrSampling.h - brr-based sampling framework -----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The branch-on-random sampling framework (Figure 4, right): a single brr
/// instruction per site replaces the entire load/check/decrement/store
/// counter framework. Because a low-overhead brr implementation requires
/// the common-case outcome to be fall-through, the instrumentation code is
/// placed out of line (at the method end) and unconditionally jumps back —
/// the code-layout flip of Figure 8.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_INSTR_BRRSAMPLING_H
#define BOR_INSTR_BRRSAMPLING_H

#include "isa/ProgramBuilder.h"

namespace bor {

/// brr framework state: just the frequency. There is no memory or register
/// state at all — that absence is the paper's point.
class BrrFramework {
public:
  /// \p Interval must be a power of two in brr's encodable range; it maps
  /// to the frequency (1/2)^(freq+1) = 1/Interval.
  explicit BrrFramework(uint64_t Interval)
      : Freq(FreqCode::forInterval(Interval)) {}

  FreqCode freq() const { return Freq; }

  /// Emits the site check: one brr to \p Uncommon. Returns the brr's
  /// instruction index.
  size_t emitCheck(ProgramBuilder &B,
                   ProgramBuilder::LabelId Uncommon) const {
    return B.emitBrr(Freq, Uncommon);
  }

private:
  FreqCode Freq;
};

} // namespace bor

#endif // BOR_INSTR_BRRSAMPLING_H
