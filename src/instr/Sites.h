//===- instr/Sites.h - Instrumentation sites and profile counters --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instrumentation in this reproduction is what it is in the paper:
/// ordinary code, with full access to architectural state, that records
/// information into memory — here, 64-bit counters in the program's data
/// segment. A ProfileTable allocates a block of counters close to the
/// globals base (so 16-bit displacements reach them) and reads them back
/// out of simulated memory after a run.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_INSTR_SITES_H
#define BOR_INSTR_SITES_H

#include "isa/ProgramBuilder.h"
#include "sim/Machine.h"

#include <vector>

namespace bor {

namespace cfg {
class Module;
}

/// A block of profile counters in the data segment.
class ProfileTable {
public:
  /// Reserves \p NumCounters zeroed 64-bit counters and names the block
  /// \p Name in the program's symbol table.
  ProfileTable(ProgramBuilder &B, const std::string &Name,
               size_t NumCounters);

  /// CFG-path variant: reserves the counters in a module's data segment.
  ProfileTable(cfg::Module &M, const std::string &Name, size_t NumCounters);

  uint64_t baseAddr() const { return Base; }
  size_t numCounters() const { return NumCounters; }

  uint64_t counterAddr(size_t I) const {
    assert(I < NumCounters && "counter index out of range");
    return Base + 8 * I;
  }

  /// Emits the canonical instrumentation body: a load/add/store increment
  /// of counter \p I, addressed off \p BaseReg, which the caller guarantees
  /// holds the address \p BaseRegValue at runtime. This 3-instruction
  /// load/add/store is the "do_profile" used throughout the overhead
  /// experiments.
  void emitIncrement(ProgramBuilder &B, size_t I, uint8_t BaseReg,
                     uint64_t BaseRegValue, uint8_t ScratchReg) const;

  /// Appends the same load/add/store increment as plain instructions —
  /// the CFG-path transform splices these into basic blocks directly.
  void appendIncrement(std::vector<Inst> &Out, size_t I, uint8_t BaseReg,
                       uint64_t BaseRegValue, uint8_t ScratchReg) const;

  /// Reads all counters back from a machine after simulation.
  std::vector<uint64_t> read(const Machine &M) const;

private:
  uint64_t Base;
  size_t NumCounters;
};

} // namespace bor

#endif // BOR_INSTR_SITES_H
