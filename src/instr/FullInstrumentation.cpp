//===- instr/FullInstrumentation.cpp - Unsampled instrumentation ----------===//

#include "instr/FullInstrumentation.h"

using namespace bor;

void bor::emitFullInstrumentationSite(
    ProgramBuilder &B, const std::function<void(ProgramBuilder &)> &Body) {
  Body(B);
}
