//===- instr/Transform.h - The sampling-framework transform ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile-time transform that converts instrumentation sites into
/// sampled instrumentation, mirroring the Arnold–Ryder framework in Jikes
/// (Section 4.1) and its branch-on-random replacement (Section 5.2):
///
///  * SamplingFramework selects {None, Full, CounterBased, BrrBased};
///  * DuplicationMode selects the per-site transformation (No-Duplication:
///    a check in front of every site) or the region transformation
///    (Full-Duplication: one check selecting between a clean and a fully
///    instrumented copy of the region — Figure 11);
///  * IncludeBody distinguishes the paper's "+inst" runs from the
///    framework-only runs that expose the fixed cost of Figure 2.
///
/// Workload generators call the emitter while building the program, so all
/// compared binaries share every non-framework instruction, register
/// assignment, and code layout — the guarantee the paper obtained by
/// post-processing one fixed assembly file.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_INSTR_TRANSFORM_H
#define BOR_INSTR_TRANSFORM_H

#include "instr/BrrSampling.h"
#include "instr/CounterSampling.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace bor {

enum class SamplingFramework {
  None,         ///< Uninstrumented baseline.
  Full,         ///< Instrumentation at every site, no sampling.
  CounterBased, ///< Software countdown counter (Figures 1 and 4, left).
  BrrBased,     ///< One branch-on-random per site (Figure 4, right).
};

enum class DuplicationMode {
  NoDuplication,   ///< A sampling check in front of every site.
  FullDuplication, ///< One check selects a duplicated instrumented region.
};

struct InstrumentationConfig {
  SamplingFramework Framework = SamplingFramework::None;
  DuplicationMode Dup = DuplicationMode::NoDuplication;
  /// Sampling interval (power of two within brr's encodable range when the
  /// framework is BrrBased).
  uint64_t Interval = 1024;
  /// Include the instrumentation body itself ("+inst"), or only the
  /// framework (isolating the fixed cost).
  bool IncludeBody = true;
  /// CounterBased only — where the countdown lives (Section 2, items 3-4):
  /// in memory (extra loads/stores at every site, the Jikes scheme) or
  /// pinned in a register (fewer instructions, but a register permanently
  /// lost to the program — "a large cost in an ISA with few registers").
  CounterHome CounterPlacement = CounterHome::Memory;
};

const char *frameworkName(SamplingFramework F);
const char *duplicationName(DuplicationMode D);
std::string describeConfig(const InstrumentationConfig &C);

/// Emits sampling frameworks around instrumentation sites while a workload
/// generator builds its program.
///
/// No-Duplication usage: call emitSite() at each site; call
/// flushOutOfLine() wherever out-of-line blocks may live (method end).
///
/// Full-Duplication usage: at the region head call emitDuplicationCheck()
/// targeting the instrumented copy; build the clean copy with no
/// instrumentation; at the instrumented copy's entry call emitDupPrologue()
/// and use emitUnconditionalSite() for each site inside it.
class SamplingFrameworkEmitter {
public:
  using Body = std::function<void(ProgramBuilder &)>;

  /// \p GlobalsBase is the runtime value of RegGlobals (the counter-based
  /// framework addresses its globals off that register).
  SamplingFrameworkEmitter(ProgramBuilder &B,
                           const InstrumentationConfig &Config,
                           uint64_t GlobalsBase);

  /// One-time framework initialization, emitted by the generator in its
  /// program prologue (outside the timed region). Currently only the
  /// register-resident counter variant emits anything.
  void emitSetup();

  /// Wraps one instrumentation site (No-Duplication / Full / None modes).
  void emitSite(const Body &InstrBody);

  /// Full-Duplication: the check at a region head. Branches to
  /// \p InstrumentedCopy when a sample fires; falls through to the clean
  /// code. No code is emitted for None/Full frameworks.
  void emitDuplicationCheck(ProgramBuilder::LabelId InstrumentedCopy);

  /// Full-Duplication: emitted at the instrumented copy's entry (resets the
  /// counter for the counter-based framework; empty for brr).
  void emitDupPrologue();

  /// Full-Duplication: an instrumentation site inside the instrumented
  /// copy — the body runs unconditionally there.
  void emitUnconditionalSite(const Body &InstrBody);

  /// Emits all pending out-of-line uncommon blocks and their jumps back.
  void flushOutOfLine();

  unsigned numSites() const { return NumSites; }
  const InstrumentationConfig &config() const { return Config; }

  /// Byte PCs of every sampling-check branch this emitter produced (the
  /// cbs check beq or the brr itself). Lets experiments attribute branch
  /// mispredictions to the framework vs the program (Section 5.2's
  /// decomposition).
  const std::vector<uint64_t> &checkBranchPcs() const {
    return CheckBranchPcs;
  }

  ~SamplingFrameworkEmitter();

private:
  struct PendingBlock {
    ProgramBuilder::LabelId Entry;
    ProgramBuilder::LabelId Resume;
    Body InstrBody; ///< may be null when IncludeBody is false.
    bool LoadResetFirst;
  };

  ProgramBuilder &B;
  InstrumentationConfig Config;
  std::unique_ptr<CounterGlobals> Counter; ///< CounterBased only.
  std::unique_ptr<BrrFramework> Brr;       ///< BrrBased only.
  std::vector<PendingBlock> Pending;
  std::vector<uint64_t> CheckBranchPcs;
  unsigned NumSites = 0;
};

} // namespace bor

#endif // BOR_INSTR_TRANSFORM_H
