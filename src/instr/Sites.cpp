//===- instr/Sites.cpp - Instrumentation sites and profile counters ------===//

#include "instr/Sites.h"

#include "cfg/Cfg.h"

using namespace bor;

ProfileTable::ProfileTable(ProgramBuilder &B, const std::string &Name,
                           size_t NumCounters)
    : NumCounters(NumCounters) {
  Base = B.allocData(8 * NumCounters, 8);
  B.nameData(Name, Base);
}

ProfileTable::ProfileTable(cfg::Module &M, const std::string &Name,
                           size_t NumCounters)
    : NumCounters(NumCounters) {
  Base = M.allocData(8 * NumCounters, 8);
  M.nameData(Name, Base);
}

void ProfileTable::appendIncrement(std::vector<Inst> &Out, size_t I,
                                   uint8_t BaseReg, uint64_t BaseRegValue,
                                   uint8_t ScratchReg) const {
  int64_t Disp = static_cast<int64_t>(counterAddr(I)) -
                 static_cast<int64_t>(BaseRegValue);
  // The displacement must fit the 16-bit load/store immediate; allocating
  // profile tables before bulk data keeps it small.
  assert(Disp >= -32768 && Disp <= 32767 &&
         "profile counter out of displacement range");
  int32_t D = static_cast<int32_t>(Disp);
  Out.push_back(Inst::ld(ScratchReg, BaseReg, D));
  Out.push_back(Inst::addi(ScratchReg, ScratchReg, 1));
  Out.push_back(Inst::st(ScratchReg, BaseReg, D));
}

void ProfileTable::emitIncrement(ProgramBuilder &B, size_t I, uint8_t BaseReg,
                                 uint64_t BaseRegValue,
                                 uint8_t ScratchReg) const {
  std::vector<Inst> Seq;
  appendIncrement(Seq, I, BaseReg, BaseRegValue, ScratchReg);
  for (const Inst &In : Seq)
    B.emit(In);
}

std::vector<uint64_t> ProfileTable::read(const Machine &M) const {
  std::vector<uint64_t> Values(NumCounters);
  for (size_t I = 0; I != NumCounters; ++I)
    Values[I] = M.memory().readU64(counterAddr(I));
  return Values;
}
