//===- instr/CounterSampling.h - Software counter-based sampling ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The software counter-based sampling framework of Figure 1 / Figure 4
/// (left), as implemented by the Arnold–Ryder transform in Jikes: a global
/// countdown counter in memory, checked and decremented at every sampling
/// site, reloaded from a reset value whenever a sample fires. These helpers
/// emit exactly the Figure-4 instruction sequence:
///
///     load rCount, (mCount)
///     br=  rCount, 0, uncommon
///   common:
///     sub  rCount, 1
///     stor rCount, (mCount)
///     ...
///   uncommon:
///     load rCount, (mReset)
///     # collect profile...
///     goto common
///
//===----------------------------------------------------------------------===//

#ifndef BOR_INSTR_COUNTERSAMPLING_H
#define BOR_INSTR_COUNTERSAMPLING_H

#include "isa/ProgramBuilder.h"

namespace bor {

/// Where the countdown lives; see InstrumentationConfig::CounterHome.
enum class CounterHome {
  Memory,   ///< mCount/mReset in the data segment (the Jikes scheme).
  Register, ///< pinned in RegCounter (r27), reserved program-wide.
};

/// The framework's global state: either mCount and mReset in the data
/// segment (addressed off RegGlobals with 16-bit displacements), or a
/// dedicated countdown register.
class CounterGlobals {
public:
  /// Allocates and statically initializes the counter state so that the
  /// first sample fires on the Interval-th site execution and every
  /// Interval-th one after that. \p GlobalsBase is the runtime value of
  /// RegGlobals. Register-resident counters also need emitSetup() in the
  /// program prologue.
  CounterGlobals(ProgramBuilder &B, uint64_t Interval, uint64_t GlobalsBase,
                 CounterHome Home = CounterHome::Memory);

  /// Emits one-time initialization (register-resident counters only; a
  /// no-op for memory counters, whose state is data-initialized).
  void emitSetup(ProgramBuilder &B) const;

  /// load rCount / branch-if-zero to \p Uncommon. Falls through to the
  /// common path.
  void emitLoadAndCheck(ProgramBuilder &B,
                        ProgramBuilder::LabelId Uncommon) const;

  /// sub rCount, 1 / stor rCount — the tail of the common path.
  void emitDecrementStore(ProgramBuilder &B) const;

  /// load rCount, (mReset) — head of the uncommon (sample) path, which then
  /// falls through the common decrement/store.
  void emitLoadReset(ProgramBuilder &B) const;

  /// Full-Duplication variant: reset mCount directly (load reset, store to
  /// count), used at the entry of the instrumented code version.
  void emitResetCounter(ProgramBuilder &B) const;

  uint64_t countAddr() const { return CountAddr; }
  uint64_t resetAddr() const { return ResetAddr; }
  CounterHome home() const { return Home; }

private:
  int32_t countDisp() const;
  int32_t resetDisp() const;

  uint64_t CountAddr = 0;
  uint64_t ResetAddr = 0;
  uint64_t GlobalsBase;
  uint64_t Interval;
  CounterHome Home;
};

} // namespace bor

#endif // BOR_INSTR_COUNTERSAMPLING_H
