//===- instr/CounterSampling.cpp - Software counter-based sampling -------===//

#include "instr/CounterSampling.h"

using namespace bor;

CounterGlobals::CounterGlobals(ProgramBuilder &B, uint64_t Interval,
                               uint64_t GlobalsBase, CounterHome Home)
    : GlobalsBase(GlobalsBase), Interval(Interval), Home(Home) {
  assert(Interval >= 1 && "sampling interval must be positive");
  if (Home == CounterHome::Register)
    return; // all state lives in RegCounter; see emitSetup().

  CountAddr = B.allocData(8, 8);
  ResetAddr = B.allocData(8, 8);
  // The check fires when the *loaded* count is zero and the uncommon path
  // reloads mReset before falling through the decrement. Starting at
  // Interval-1 and resetting to Interval makes every period exactly
  // Interval executions, including the first.
  B.initDataU64(CountAddr, Interval - 1);
  B.initDataU64(ResetAddr, Interval);
  B.nameData("cbs.count", CountAddr);
  B.nameData("cbs.reset", ResetAddr);
}

void CounterGlobals::emitSetup(ProgramBuilder &B) const {
  if (Home == CounterHome::Register)
    B.emitLoadConst(RegCounter, Interval - 1);
}

int32_t CounterGlobals::countDisp() const {
  int64_t D = static_cast<int64_t>(CountAddr) -
              static_cast<int64_t>(GlobalsBase);
  assert(D >= -32768 && D <= 32767 && "counter outside displacement range");
  return static_cast<int32_t>(D);
}

int32_t CounterGlobals::resetDisp() const {
  int64_t D = static_cast<int64_t>(ResetAddr) -
              static_cast<int64_t>(GlobalsBase);
  assert(D >= -32768 && D <= 32767 && "reset outside displacement range");
  return static_cast<int32_t>(D);
}

void CounterGlobals::emitLoadAndCheck(
    ProgramBuilder &B, ProgramBuilder::LabelId Uncommon) const {
  if (Home == CounterHome::Register) {
    B.emitBranch(Opcode::Beq, RegCounter, RegZero, Uncommon);
    return;
  }
  B.emit(Inst::ld(RegScratch, RegGlobals, countDisp()));
  B.emitBranch(Opcode::Beq, RegScratch, RegZero, Uncommon);
}

void CounterGlobals::emitDecrementStore(ProgramBuilder &B) const {
  if (Home == CounterHome::Register) {
    B.emit(Inst::addi(RegCounter, RegCounter, -1));
    return;
  }
  B.emit(Inst::addi(RegScratch, RegScratch, -1));
  B.emit(Inst::st(RegScratch, RegGlobals, countDisp()));
}

void CounterGlobals::emitLoadReset(ProgramBuilder &B) const {
  if (Home == CounterHome::Register) {
    // The uncommon path falls through the common decrement, so materialize
    // Interval here (decremented to Interval-1 on the way out).
    B.emitLoadConst(RegCounter, Interval);
    return;
  }
  B.emit(Inst::ld(RegScratch, RegGlobals, resetDisp()));
}

void CounterGlobals::emitResetCounter(ProgramBuilder &B) const {
  if (Home == CounterHome::Register) {
    B.emitLoadConst(RegCounter, Interval);
    return;
  }
  B.emit(Inst::ld(RegScratch, RegGlobals, resetDisp()));
  B.emit(Inst::st(RegScratch, RegGlobals, countDisp()));
}
