//===- instr/BrrSampling.cpp - brr-based sampling framework ---------------===//

#include "instr/BrrSampling.h"

// Header-only today; this file anchors the translation unit.
