//===- instr/CfgTransform.h - Sampling transform as CFG edits -------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CFG-edit counterpart of instr/Transform.h: the same sampling
/// frameworks (counter-based and branch-on-random, No-Duplication and
/// Full-Duplication), expressed as edits on a cfg::Module instead of
/// instructions streamed through a ProgramBuilder.
///
/// The emitter path bakes the framework into the instruction stream while
/// the generator runs, which freezes layout decisions at build time. The
/// CFG path works on blocks and edges, so the result composes with the
/// src/opt/ layout passes: a check block's uncommon path is just another
/// block whose placement the optimizer may choose. Semantics are identical
/// to the emitter path — the check sequences, counter state, initial
/// values, and per-site instruction counts are the same, which
/// tests/test_instr_cfg.cpp verifies differentially.
///
/// No-Duplication site insertion splits the site's block: the prefix keeps
/// the original BlockId (so edges into it, profiles keyed on it, and code
/// symbols at its head all stay valid), grows the check as its terminator,
/// and the remainder becomes a continuation block. The out-of-line sample
/// block is appended to the layout end — the Figure 8 placement.
///
/// Full-Duplication clones a region subgraph (Figure 11): internal edges
/// are remapped into the clone, exits rejoin the original continuation,
/// the clone entry gains the counter-reset prologue, and the region head
/// gains the check choosing between the copies. Region-internal back edges
/// to the head re-run the check, i.e. checks sit on method entries and
/// loop back edges, the Arnold–Ryder placement.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_INSTR_CFGTRANSFORM_H
#define BOR_INSTR_CFGTRANSFORM_H

#include "cfg/Cfg.h"
#include "instr/Transform.h"

#include <vector>

namespace bor {

/// One instrumentation site for the CFG path: the body is spliced (under
/// the framework's sampling discipline) immediately before instruction
/// \p Offset of block \p Block.
struct CfgSite {
  cfg::BlockId Block = cfg::NoBlock;
  uint32_t Offset = 0;
  /// The instrumentation body (e.g. a ProfileTable::appendIncrement
  /// sequence). May be empty; ignored when the config's IncludeBody is
  /// false.
  std::vector<Inst> Body;
};

/// Applies a sampling framework to a module by CFG edits.
class CfgSamplingTransform {
public:
  /// Allocates the framework's global state in \p M's data segment (the
  /// counter-based framework's count/reset words, statically initialized
  /// exactly as CounterGlobals does). \p GlobalsBase is the runtime value
  /// of RegGlobals.
  CfgSamplingTransform(cfg::Module &M, const InstrumentationConfig &Config,
                       uint64_t GlobalsBase);

  /// One-time setup instructions for the program prologue (non-empty only
  /// for the register-resident counter). The caller splices them into its
  /// entry block before the measured region.
  std::vector<Inst> setupInsts() const;

  /// No-Duplication (and Full / None) path: wraps every site. Sites may
  /// share a block; offsets refer to the block's contents at call time.
  void instrumentSites(std::vector<CfgSite> Sites);

  /// Full-Duplication path: \p Region lists the region's blocks with the
  /// region head first. Clones the region, instruments the clone's sites
  /// unconditionally, and inserts the selecting check at the head. For the
  /// None and Full frameworks this is a no-op (no check, no clone) — the
  /// emitter path likewise emits no duplication check for them.
  void duplicateRegion(const std::vector<cfg::BlockId> &Region,
                       std::vector<CfgSite> Sites);

  unsigned numSites() const { return NumSites; }
  const InstrumentationConfig &config() const { return Config; }

  /// Post-transform location of every sampling-check branch (block id and
  /// instruction offset of the cbs beq or the brr). The blocks' final
  /// byte PCs exist only after emitProgram; each check also gets a code
  /// symbol "instr.check.<n>" so emitted programs carry the PCs.
  const std::vector<std::pair<cfg::BlockId, uint32_t>> &checkBranches() const {
    return Checks;
  }

private:
  void recordCheck(cfg::BlockId Block);
  std::vector<Inst> commonPathInsts() const; ///< decrement/store sequence
  std::vector<Inst> uncommonPreludeInsts() const; ///< counter reload
  std::vector<Inst> resetCounterInsts() const;    ///< full-dup prologue
  int32_t countDisp() const;
  int32_t resetDisp() const;

  cfg::Module &M;
  InstrumentationConfig Config;
  uint64_t GlobalsBase;
  uint64_t CountAddr = 0; ///< CounterBased/Memory only
  uint64_t ResetAddr = 0; ///< CounterBased/Memory only
  std::vector<std::pair<cfg::BlockId, uint32_t>> Checks;
  unsigned NumSites = 0;
};

} // namespace bor

#endif // BOR_INSTR_CFGTRANSFORM_H
