//===- instr/Transform.cpp - The sampling-framework transform -------------===//

#include "instr/Transform.h"

#include "instr/FullInstrumentation.h"

using namespace bor;

const char *bor::frameworkName(SamplingFramework F) {
  switch (F) {
  case SamplingFramework::None:
    return "baseline";
  case SamplingFramework::Full:
    return "full-instrumentation";
  case SamplingFramework::CounterBased:
    return "cbs";
  case SamplingFramework::BrrBased:
    return "brr";
  }
  assert(false && "unknown framework");
  return "?";
}

const char *bor::duplicationName(DuplicationMode D) {
  switch (D) {
  case DuplicationMode::NoDuplication:
    return "no-dup";
  case DuplicationMode::FullDuplication:
    return "full-dup";
  }
  assert(false && "unknown duplication mode");
  return "?";
}

std::string bor::describeConfig(const InstrumentationConfig &C) {
  std::string S = frameworkName(C.Framework);
  if (C.Framework == SamplingFramework::CounterBased &&
      C.CounterPlacement == CounterHome::Register)
    S += "-reg";
  if (C.Framework == SamplingFramework::CounterBased ||
      C.Framework == SamplingFramework::BrrBased) {
    S += " ";
    S += duplicationName(C.Dup);
    S += " interval=" + std::to_string(C.Interval);
    S += C.IncludeBody ? " +inst" : " framework-only";
  }
  return S;
}

SamplingFrameworkEmitter::SamplingFrameworkEmitter(
    ProgramBuilder &B, const InstrumentationConfig &Config,
    uint64_t GlobalsBase)
    : B(B), Config(Config) {
  switch (Config.Framework) {
  case SamplingFramework::None:
  case SamplingFramework::Full:
    break;
  case SamplingFramework::CounterBased:
    Counter = std::make_unique<CounterGlobals>(B, Config.Interval,
                                               GlobalsBase,
                                               Config.CounterPlacement);
    break;
  case SamplingFramework::BrrBased:
    Brr = std::make_unique<BrrFramework>(Config.Interval);
    break;
  }
}

void SamplingFrameworkEmitter::emitSetup() {
  if (Counter)
    Counter->emitSetup(B);
}

SamplingFrameworkEmitter::~SamplingFrameworkEmitter() {
  assert(Pending.empty() &&
         "out-of-line instrumentation blocks were never flushed");
}

void SamplingFrameworkEmitter::emitSite(const Body &InstrBody) {
  ++NumSites;
  switch (Config.Framework) {
  case SamplingFramework::None:
    return;
  case SamplingFramework::Full:
    if (Config.IncludeBody)
      emitFullInstrumentationSite(B, InstrBody);
    return;

  case SamplingFramework::CounterBased: {
    assert(Config.Dup == DuplicationMode::NoDuplication &&
           "use the duplication-check API for Full-Duplication");
    // Figure 4 (left): load, check, then the common-path decrement/store;
    // the uncommon path (reset + body) goes out of line.
    ProgramBuilder::LabelId Uncommon = B.label();
    ProgramBuilder::LabelId Common = B.label();
    Counter->emitLoadAndCheck(B, Uncommon);
    CheckBranchPcs.push_back(Program::pcForIndex(B.here() - 1));
    B.bind(Common);
    Counter->emitDecrementStore(B);
    Pending.push_back({Uncommon, Common, InstrBody,
                       /*LoadResetFirst=*/true});
    return;
  }

  case SamplingFramework::BrrBased: {
    assert(Config.Dup == DuplicationMode::NoDuplication &&
           "use the duplication-check API for Full-Duplication");
    // Figure 4 (right): a single brr; the body is out of line and jumps
    // back (Figure 8 layout).
    ProgramBuilder::LabelId Uncommon = B.label();
    ProgramBuilder::LabelId Resume = B.label();
    CheckBranchPcs.push_back(
        Program::pcForIndex(Brr->emitCheck(B, Uncommon)));
    B.bind(Resume);
    Pending.push_back({Uncommon, Resume, InstrBody,
                       /*LoadResetFirst=*/false});
    return;
  }
  }
  assert(false && "unknown framework");
}

void SamplingFrameworkEmitter::emitDuplicationCheck(
    ProgramBuilder::LabelId InstrumentedCopy) {
  assert(Config.Dup == DuplicationMode::FullDuplication &&
         "duplication checks only exist in Full-Duplication mode");
  switch (Config.Framework) {
  case SamplingFramework::None:
  case SamplingFramework::Full:
    return;
  case SamplingFramework::CounterBased: {
    // Check at the region head (Figure 11): when the counter hits zero,
    // run the instrumented version; otherwise decrement and stay clean.
    ProgramBuilder::LabelId Common = B.label();
    Counter->emitLoadAndCheck(B, InstrumentedCopy);
    CheckBranchPcs.push_back(Program::pcForIndex(B.here() - 1));
    B.bind(Common);
    Counter->emitDecrementStore(B);
    return;
  }
  case SamplingFramework::BrrBased:
    CheckBranchPcs.push_back(
        Program::pcForIndex(Brr->emitCheck(B, InstrumentedCopy)));
    return;
  }
  assert(false && "unknown framework");
}

void SamplingFrameworkEmitter::emitDupPrologue() {
  assert(Config.Dup == DuplicationMode::FullDuplication &&
         "dup prologues only exist in Full-Duplication mode");
  if (Config.Framework == SamplingFramework::CounterBased)
    Counter->emitResetCounter(B);
}

void SamplingFrameworkEmitter::emitUnconditionalSite(const Body &InstrBody) {
  ++NumSites;
  if (Config.Framework == SamplingFramework::None)
    return;
  if (Config.IncludeBody)
    InstrBody(B);
}

void SamplingFrameworkEmitter::flushOutOfLine() {
  for (const PendingBlock &P : Pending) {
    B.bind(P.Entry);
    if (P.LoadResetFirst)
      Counter->emitLoadReset(B);
    if (Config.IncludeBody)
      P.InstrBody(B);
    B.emitJmp(P.Resume);
  }
  Pending.clear();
}
