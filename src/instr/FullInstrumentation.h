//===- instr/FullInstrumentation.h - Unsampled instrumentation ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The no-sampling reference points of the evaluation: `Full` executes the
/// instrumentation body inline at every site (Section 5.3's
/// full-instrumentation, ~4.3 cycles/site on the microbenchmark), and
/// `None` is the uninstrumented baseline all overheads are normalized to.
/// Both are trivially expressible, but naming them keeps the experiment
/// configurations self-describing.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_INSTR_FULLINSTRUMENTATION_H
#define BOR_INSTR_FULLINSTRUMENTATION_H

#include "isa/ProgramBuilder.h"

#include <functional>

namespace bor {

/// Emits the instrumentation body inline, unconditionally.
void emitFullInstrumentationSite(
    ProgramBuilder &B, const std::function<void(ProgramBuilder &)> &Body);

} // namespace bor

#endif // BOR_INSTR_FULLINSTRUMENTATION_H
