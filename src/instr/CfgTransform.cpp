//===- instr/CfgTransform.cpp - Sampling transform as CFG edits -----------===//

#include "instr/CfgTransform.h"

#include "telemetry/Counters.h"

#include <algorithm>

using namespace bor;
using namespace bor::cfg;

CfgSamplingTransform::CfgSamplingTransform(cfg::Module &M,
                                           const InstrumentationConfig &Config,
                                           uint64_t GlobalsBase)
    : M(M), Config(Config), GlobalsBase(GlobalsBase) {
  if (Config.Framework != SamplingFramework::CounterBased ||
      Config.CounterPlacement != CounterHome::Memory)
    return;
  assert(Config.Interval >= 1 && "sampling interval must be positive");
  CountAddr = M.allocData(8, 8);
  ResetAddr = M.allocData(8, 8);
  // Same static initialization as CounterGlobals: the check fires when the
  // loaded count is zero and the uncommon path reloads mReset before the
  // decrement, so Interval-1 / Interval gives exactly Interval executions
  // per period, including the first.
  M.initDataU64(CountAddr, Config.Interval - 1);
  M.initDataU64(ResetAddr, Config.Interval);
  M.nameData("cbs.count", CountAddr);
  M.nameData("cbs.reset", ResetAddr);
}

int32_t CfgSamplingTransform::countDisp() const {
  int64_t D =
      static_cast<int64_t>(CountAddr) - static_cast<int64_t>(GlobalsBase);
  assert(D >= -32768 && D <= 32767 && "counter outside displacement range");
  return static_cast<int32_t>(D);
}

int32_t CfgSamplingTransform::resetDisp() const {
  int64_t D =
      static_cast<int64_t>(ResetAddr) - static_cast<int64_t>(GlobalsBase);
  assert(D >= -32768 && D <= 32767 && "reset outside displacement range");
  return static_cast<int32_t>(D);
}

std::vector<Inst> CfgSamplingTransform::setupInsts() const {
  std::vector<Inst> Out;
  if (Config.Framework == SamplingFramework::CounterBased &&
      Config.CounterPlacement == CounterHome::Register)
    appendLoadConst(Out, RegCounter, Config.Interval - 1);
  return Out;
}

std::vector<Inst> CfgSamplingTransform::commonPathInsts() const {
  if (Config.CounterPlacement == CounterHome::Register)
    return {Inst::addi(RegCounter, RegCounter, -1)};
  return {Inst::addi(RegScratch, RegScratch, -1),
          Inst::st(RegScratch, RegGlobals, countDisp())};
}

std::vector<Inst> CfgSamplingTransform::uncommonPreludeInsts() const {
  if (Config.CounterPlacement == CounterHome::Register) {
    // The uncommon path falls through the common decrement, so materialize
    // Interval here (decremented to Interval-1 on the way out).
    std::vector<Inst> Out;
    appendLoadConst(Out, RegCounter, Config.Interval);
    return Out;
  }
  return {Inst::ld(RegScratch, RegGlobals, resetDisp())};
}

std::vector<Inst> CfgSamplingTransform::resetCounterInsts() const {
  if (Config.Framework != SamplingFramework::CounterBased)
    return {};
  if (Config.CounterPlacement == CounterHome::Register) {
    std::vector<Inst> Out;
    appendLoadConst(Out, RegCounter, Config.Interval);
    return Out;
  }
  return {Inst::ld(RegScratch, RegGlobals, resetDisp()),
          Inst::st(RegScratch, RegGlobals, countDisp())};
}

void CfgSamplingTransform::recordCheck(BlockId Block) {
  uint32_t Offset = static_cast<uint32_t>(M.block(Block).Insts.size() - 1);
  Checks.emplace_back(Block, Offset);
  M.addCodeSymbol("instr.check." + std::to_string(Checks.size() - 1), Block,
                  Offset);
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter ChecksC("cfg.transform.checks");
    ChecksC.add(1);
  }
}

void CfgSamplingTransform::instrumentSites(std::vector<CfgSite> Sites) {
  // Per block, process the highest offset first: every split moves the
  // suffix out, so the offsets of remaining (lower) sites in the block
  // stay valid.
  std::stable_sort(Sites.begin(), Sites.end(),
                   [](const CfgSite &A, const CfgSite &B) {
                     if (A.Block != B.Block)
                       return A.Block < B.Block;
                     return A.Offset > B.Offset;
                   });
  NumSites += static_cast<unsigned>(Sites.size());
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter SitesC("cfg.transform.sites");
    SitesC.add(Sites.size());
  }

  for (const CfgSite &S : Sites) {
    switch (Config.Framework) {
    case SamplingFramework::None:
      continue;

    case SamplingFramework::Full:
      if (Config.IncludeBody)
        M.insertInsts(S.Block, S.Offset, S.Body);
      continue;

    case SamplingFramework::CounterBased:
    case SamplingFramework::BrrBased:
      break;
    }

    assert(Config.Dup == DuplicationMode::NoDuplication &&
           "use duplicateRegion() for Full-Duplication");
    bool Cbs = Config.Framework == SamplingFramework::CounterBased;

    BlockId Cont = M.splitBlock(S.Block, S.Offset);
    // splitBlock remapped code symbols past the split point; earlier
    // checks recorded in this block move the same way.
    for (auto &C : Checks)
      if (C.first == S.Block && C.second >= S.Offset) {
        C.first = Cont;
        C.second -= S.Offset;
      }

    // Out-of-line sample block at the layout end (the Figure 8 placement):
    // counter reload (cbs only), the body, and a jump back.
    BlockId U = M.addBlock();
    M.appendToLayout(U);
    {
      BasicBlock &UB = M.block(U);
      if (Cbs)
        UB.Insts = uncommonPreludeInsts();
      if (Config.IncludeBody)
        UB.Insts.insert(UB.Insts.end(), S.Body.begin(), S.Body.end());
      UB.Insts.push_back(Inst::jmp(0));
      UB.setSucc(EdgeKind::Taken, Cont);
    }

    // The check becomes the site block's terminator; the split already
    // gave it a Fall edge to the continuation.
    BasicBlock &B = M.block(S.Block);
    if (Cbs) {
      if (Config.CounterPlacement == CounterHome::Memory)
        B.Insts.push_back(Inst::ld(RegScratch, RegGlobals, countDisp()));
      uint8_t CheckReg = Config.CounterPlacement == CounterHome::Memory
                             ? static_cast<uint8_t>(RegScratch)
                             : static_cast<uint8_t>(RegCounter);
      B.Insts.push_back(Inst::branch(Opcode::Beq, CheckReg, RegZero, 0));
      B.setSucc(EdgeKind::Taken, U);
      // Common path: decrement/store at the continuation's head, shared by
      // the fall-through and the sample path's jump back.
      M.insertInsts(Cont, 0, commonPathInsts());
    } else {
      B.Insts.push_back(
          Inst::brr(FreqCode::forInterval(Config.Interval), 0));
      B.setSucc(EdgeKind::BrrTaken, U);
    }
    recordCheck(S.Block);

    if (telemetry::CounterRegistry::enabled()) {
      static const telemetry::Counter Uncommon("cfg.transform.uncommon_blocks");
      Uncommon.add(1);
    }
  }
}

void CfgSamplingTransform::duplicateRegion(
    const std::vector<cfg::BlockId> &Region, std::vector<CfgSite> Sites) {
  assert(Config.Dup == DuplicationMode::FullDuplication &&
         "duplicateRegion() only exists in Full-Duplication mode");
  assert(!Region.empty() && "region needs at least its head block");
  NumSites += static_cast<unsigned>(Sites.size());
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter SitesC("cfg.transform.sites");
    SitesC.add(Sites.size());
  }
  // No check is emitted for the None/Full frameworks (mirroring
  // emitDuplicationCheck), so the instrumented copy would be unreachable —
  // skip creating it.
  if (Config.Framework == SamplingFramework::None ||
      Config.Framework == SamplingFramework::Full)
    return;
  bool Cbs = Config.Framework == SamplingFramework::CounterBased;
  BlockId Entry = Region.front();

  // Clone the region subgraph out of line: internal edges go to clone
  // counterparts, exits rejoin the original continuation blocks.
  std::vector<std::pair<BlockId, BlockId>> CloneOf;
  for (BlockId R : Region) {
    BlockId N = M.addBlock();
    M.appendToLayout(N);
    CloneOf.emplace_back(R, N);
  }
  auto cloneFor = [&](BlockId R) {
    for (const auto &[Orig, N] : CloneOf)
      if (Orig == R)
        return N;
    return NoBlock;
  };
  for (const auto &[Orig, N] : CloneOf) {
    BasicBlock &NB = M.block(N);
    const BasicBlock &OB = M.block(Orig);
    NB.Insts = OB.Insts;
    NB.Succs = OB.Succs;
    for (Edge &E : NB.Succs) {
      // Back edges to the region head leave the clone and re-enter
      // through the check, so a sample instruments exactly one region
      // iteration (the Arnold–Ryder back-edge check placement).
      if (E.Dst == Entry)
        continue;
      if (BlockId Mapped = cloneFor(E.Dst); Mapped != NoBlock)
        E.Dst = Mapped;
    }
  }
  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Cloned("cfg.transform.cloned_blocks");
    Cloned.add(Region.size());
  }

  // Instrumentation runs unconditionally inside the clone. Descending
  // offsets per block keep earlier insertions from shifting later ones.
  if (Config.IncludeBody) {
    std::stable_sort(Sites.begin(), Sites.end(),
                     [](const CfgSite &A, const CfgSite &B) {
                       if (A.Block != B.Block)
                         return A.Block < B.Block;
                       return A.Offset > B.Offset;
                     });
    for (const CfgSite &S : Sites) {
      BlockId N = cloneFor(S.Block);
      assert(N != NoBlock && "site outside the duplicated region");
      M.insertInsts(N, S.Offset, S.Body);
    }
  }

  // Clone-entry prologue: reset the counter so a full sampling period
  // elapses before the next sample (empty for brr — no state to reset).
  M.insertInsts(cloneFor(Entry), 0, resetCounterInsts());

  // The check at the region head chooses the copy. Splitting at offset 0
  // keeps the head's BlockId (and every edge into it, including region
  // back edges, which therefore re-run the check).
  BlockId Cont = M.splitBlock(Entry, 0);
  for (auto &C : Checks)
    if (C.first == Entry) {
      C.first = Cont;
    }
  BasicBlock &B = M.block(Entry);
  if (Cbs) {
    if (Config.CounterPlacement == CounterHome::Memory)
      B.Insts.push_back(Inst::ld(RegScratch, RegGlobals, countDisp()));
    uint8_t CheckReg = Config.CounterPlacement == CounterHome::Memory
                           ? static_cast<uint8_t>(RegScratch)
                           : static_cast<uint8_t>(RegCounter);
    B.Insts.push_back(Inst::branch(Opcode::Beq, CheckReg, RegZero, 0));
    B.setSucc(EdgeKind::Taken, cloneFor(Entry));
    M.insertInsts(Cont, 0, commonPathInsts());
  } else {
    B.Insts.push_back(Inst::brr(FreqCode::forInterval(Config.Interval), 0));
    B.setSucc(EdgeKind::BrrTaken, cloneFor(Entry));
  }
  recordCheck(Entry);
}
