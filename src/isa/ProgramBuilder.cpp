//===- isa/ProgramBuilder.cpp - Label-based BOR-RISC assembler -----------===//

#include "isa/ProgramBuilder.h"

#include "cfg/Cfg.h"
#include "isa/Encoding.h"

using namespace bor;

ProgramBuilder::LabelId ProgramBuilder::label() {
  LabelPositions.push_back(-1);
  return static_cast<LabelId>(LabelPositions.size() - 1);
}

void ProgramBuilder::bind(LabelId L) {
  assert(L < LabelPositions.size() && "unknown label");
  assert(LabelPositions[L] == -1 && "label bound twice");
  LabelPositions[L] = static_cast<int64_t>(Code.size());
}

size_t ProgramBuilder::emit(Inst I) {
  Code.push_back(I);
  return Code.size() - 1;
}

size_t ProgramBuilder::emitBranch(Opcode Op, uint8_t Rs1, uint8_t Rs2,
                                  LabelId Target) {
  size_t Index = emit(Inst::branch(Op, Rs1, Rs2, 0));
  Fixups.push_back({Index, Target});
  return Index;
}

size_t ProgramBuilder::emitJmp(LabelId Target) {
  size_t Index = emit(Inst::jmp(0));
  Fixups.push_back({Index, Target});
  return Index;
}

size_t ProgramBuilder::emitJal(uint8_t Rd, LabelId Target) {
  size_t Index = emit(Inst::jal(Rd, 0));
  Fixups.push_back({Index, Target});
  return Index;
}

size_t ProgramBuilder::emitBrr(FreqCode Freq, LabelId Target) {
  size_t Index = emit(Inst::brr(Freq, 0));
  Fixups.push_back({Index, Target});
  return Index;
}

void bor::appendLoadConst(std::vector<Inst> &Out, uint8_t Rd,
                          uint64_t Value) {
  // Small signed immediates fit a single li.
  int64_t Signed = static_cast<int64_t>(Value);
  if (Signed >= -32768 && Signed <= 32767) {
    Out.push_back(Inst::li(Rd, static_cast<int32_t>(Signed)));
    return;
  }
  // Build from 15-bit chunks, most significant first, so every ori operand
  // is a nonnegative 16-bit immediate.
  bool Started = false;
  for (int Shift = 60; Shift >= 0; Shift -= 15) {
    uint32_t Chunk = static_cast<uint32_t>((Value >> Shift) & 0x7fff);
    if (!Started) {
      if (Chunk == 0)
        continue;
      Out.push_back(Inst::li(Rd, static_cast<int32_t>(Chunk)));
      Started = true;
      continue;
    }
    Out.push_back(Inst::alui(Opcode::Slli, Rd, Rd, 15));
    if (Chunk != 0)
      Out.push_back(
          Inst::alui(Opcode::Ori, Rd, Rd, static_cast<int32_t>(Chunk)));
  }
  if (!Started)
    Out.push_back(Inst::li(Rd, 0));
}

void ProgramBuilder::emitLoadConst(uint8_t Rd, uint64_t Value) {
  std::vector<Inst> Seq;
  appendLoadConst(Seq, Rd, Value);
  for (const Inst &I : Seq)
    emit(I);
}

uint64_t ProgramBuilder::allocData(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  size_t Offset = Data.size();
  Offset = (Offset + Align - 1) & ~(Align - 1);
  Data.resize(Offset + Size, 0);
  return DataBase + Offset;
}

void ProgramBuilder::initDataU64(uint64_t Addr, uint64_t Value) {
  assert(Addr >= DataBase && Addr + 8 <= DataBase + Data.size() &&
         "u64 init outside allocated data");
  size_t Offset = Addr - DataBase;
  for (unsigned I = 0; I != 8; ++I)
    Data[Offset + I] = static_cast<uint8_t>(Value >> (8 * I));
}

void ProgramBuilder::initDataBytes(uint64_t Addr,
                                   const std::vector<uint8_t> &Bytes) {
  assert(Addr >= DataBase && Addr + Bytes.size() <= DataBase + Data.size() &&
         "byte init outside allocated data");
  size_t Offset = Addr - DataBase;
  for (size_t I = 0; I != Bytes.size(); ++I)
    Data[Offset + I] = Bytes[I];
}

void ProgramBuilder::nameData(const std::string &Name, uint64_t Addr) {
  DataSymbols.emplace_back(Name, Addr);
}

void ProgramBuilder::nameLabel(const std::string &Name, LabelId L) {
  LabelSymbols.emplace_back(Name, L);
}

Program ProgramBuilder::finish() {
  for (const Fixup &F : Fixups) {
    assert(F.Target < LabelPositions.size() && "unknown label in fixup");
    int64_t Pos = LabelPositions[F.Target];
    assert(Pos >= 0 && "branch to a label that was never bound");
    Inst &I = Code[F.InstIndex];
    int64_t Offset = Pos - static_cast<int64_t>(F.InstIndex);
    I.Imm = static_cast<int32_t>(Offset);
    assert(immediateFits(I) && "branch offset exceeds encoding range");
  }

  Program P(std::move(Code), DataBase, std::move(Data));
  for (const auto &[Name, Addr] : DataSymbols)
    P.setSymbol(Name, Addr);
  for (const auto &[Name, L] : LabelSymbols) {
    assert(LabelPositions[L] >= 0 && "named label was never bound");
    P.setSymbol(Name,
                Program::pcForIndex(static_cast<size_t>(LabelPositions[L])));
  }
  return P;
}

cfg::Module ProgramBuilder::finishModule(std::vector<uint32_t> *LabelBlocks) {
  // Label positions survive finish() (only code and data move out), so the
  // label -> block mapping can be derived after the lift.
  std::vector<int64_t> Positions = LabelPositions;
  Program P = finish();
  cfg::Module M = cfg::buildModule(P);
  if (LabelBlocks) {
    LabelBlocks->assign(Positions.size(), cfg::NoBlock);
    for (size_t L = 0; L != Positions.size(); ++L) {
      int64_t Pos = Positions[L];
      if (Pos < 0)
        continue;
      if (static_cast<size_t>(Pos) < P.numInsts()) {
        (*LabelBlocks)[L] = M.blockForIndex(static_cast<size_t>(Pos));
        continue;
      }
      // Bound one past the end: the sentinel block, when targets forced
      // one into existence.
      for (cfg::BlockId Id = 0; Id != M.numBlocks(); ++Id)
        if (M.block(Id).OrigIndex == P.numInsts() &&
            M.block(Id).Insts.empty())
          (*LabelBlocks)[L] = Id;
    }
  }
  return M;
}
