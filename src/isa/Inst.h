//===- isa/Inst.h - The BOR-RISC instruction set -------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BOR-RISC is the small 64-bit RISC instruction set this reproduction
/// evaluates branch-on-random in (standing in for the paper's x86/PTLsim
/// substrate; see DESIGN.md). It has 32 general registers (r0 hardwired to
/// zero), byte-addressed memory, 4-byte instructions, conditional branches
/// resolved in the back end, direct jumps resolved in decode — and the new
/// `brr freq, target` instruction, a conditional branch whose 4-bit freq
/// field encodes the probability (1/2)^(freq+1) with which it is taken
/// (paper Figure 5).
///
/// The `marker` instruction reproduces the paper's use of the Simics "magic
/// instruction" for delimiting simulation regions (Section 5.1).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_INST_H
#define BOR_ISA_INST_H

#include "core/FreqCode.h"

#include <cassert>
#include <cstdint>

namespace bor {

/// Register conventions used by the code generators in this repository.
enum : uint8_t {
  RegZero = 0,  ///< Hardwired zero.
  RegScratch = 15, ///< Scratch register reserved for sampling frameworks.
  RegCounter = 27, ///< Countdown register for register-resident counters.
  RegGlobals = 28, ///< Base of framework globals in the data segment.
  RegProfBase = 29, ///< Base of the profile-counter table.
  RegSp = 30,   ///< Stack pointer.
  RegLr = 31,   ///< Link register.
};

enum class Opcode : uint8_t {
  Nop,
  Halt,
  // Register-register ALU.
  Add,
  Sub,
  And,
  Or,
  Xor,
  Sll,
  Srl,
  Mul,
  Slt,  ///< rd = (int64)rs1 < (int64)rs2
  Sltu, ///< rd = (uint64)rs1 < (uint64)rs2
  // Register-immediate ALU (Imm is the sign-extended operand).
  Addi,
  Andi,
  Ori,
  Xori,
  Slli,
  Srli,
  Slti,
  // Memory: address = rs1 + Imm.
  Ld,  ///< 64-bit load into rd.
  Ldb, ///< zero-extending byte load into rd.
  St,  ///< 64-bit store of rs2.
  Stb, ///< byte store of rs2's low byte.
  // Control. Branch/jump offsets (Imm) are in instruction words relative to
  // the branch itself: target = PC + 4*Imm.
  Beq,
  Bne,
  Blt, ///< signed rs1 < rs2
  Bge, ///< signed rs1 >= rs2
  Jmp,  ///< unconditional direct jump (resolved in decode)
  Jal,  ///< direct call: rd = return address, then jump
  Jalr, ///< indirect jump/call: rd = return address, target = rs1
  Brr,  ///< branch-on-random: taken with probability (1/2)^(Freq+1)
  // Infrastructure.
  Marker, ///< simulation marker (the paper's "magic instruction"); id = Imm
  /// Reads the LFSR into rd and steps it: Section 3.4's observation that a
  /// software-visible LFSR doubles as "a very fast pseudo-random number
  /// generator by randomized algorithms".
  RdLfsr,
};

/// Number of opcodes (for table sizing).
constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::RdLfsr) + 1;

/// A decoded BOR-RISC instruction. The simulators operate on this form; the
/// 32-bit binary encoding lives in isa/Encoding.h.
struct Inst {
  Opcode Op = Opcode::Nop;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  /// ALU immediate, memory displacement (bytes), branch/jump offset
  /// (instruction words), or marker id.
  int32_t Imm = 0;
  /// brr only: the 4-bit frequency field.
  uint8_t Freq = 0;

  // --- Factories -------------------------------------------------------
  static Inst nop() { return {}; }
  static Inst halt() { return {Opcode::Halt, 0, 0, 0, 0, 0}; }

  static Inst alu(Opcode Op, uint8_t Rd, uint8_t Rs1, uint8_t Rs2) {
    return {Op, Rd, Rs1, Rs2, 0, 0};
  }
  static Inst add(uint8_t Rd, uint8_t Rs1, uint8_t Rs2) {
    return alu(Opcode::Add, Rd, Rs1, Rs2);
  }
  static Inst sub(uint8_t Rd, uint8_t Rs1, uint8_t Rs2) {
    return alu(Opcode::Sub, Rd, Rs1, Rs2);
  }
  static Inst alui(Opcode Op, uint8_t Rd, uint8_t Rs1, int32_t Imm) {
    return {Op, Rd, Rs1, 0, Imm, 0};
  }
  static Inst addi(uint8_t Rd, uint8_t Rs1, int32_t Imm) {
    return alui(Opcode::Addi, Rd, Rs1, Imm);
  }
  /// rd = Imm (addi rd, r0, Imm).
  static Inst li(uint8_t Rd, int32_t Imm) { return addi(Rd, RegZero, Imm); }
  /// rd = rs (addi rd, rs, 0).
  static Inst mv(uint8_t Rd, uint8_t Rs) { return addi(Rd, Rs, 0); }

  static Inst ld(uint8_t Rd, uint8_t Rs1, int32_t Disp) {
    return {Opcode::Ld, Rd, Rs1, 0, Disp, 0};
  }
  static Inst ldb(uint8_t Rd, uint8_t Rs1, int32_t Disp) {
    return {Opcode::Ldb, Rd, Rs1, 0, Disp, 0};
  }
  static Inst st(uint8_t Rs2, uint8_t Rs1, int32_t Disp) {
    return {Opcode::St, 0, Rs1, Rs2, Disp, 0};
  }
  static Inst stb(uint8_t Rs2, uint8_t Rs1, int32_t Disp) {
    return {Opcode::Stb, 0, Rs1, Rs2, Disp, 0};
  }

  static Inst branch(Opcode Op, uint8_t Rs1, uint8_t Rs2, int32_t Offset) {
    return {Op, 0, Rs1, Rs2, Offset, 0};
  }
  static Inst jmp(int32_t Offset) {
    return {Opcode::Jmp, 0, 0, 0, Offset, 0};
  }
  static Inst jal(uint8_t Rd, int32_t Offset) {
    return {Opcode::Jal, Rd, 0, 0, Offset, 0};
  }
  static Inst jalr(uint8_t Rd, uint8_t Rs1) {
    return {Opcode::Jalr, Rd, Rs1, 0, 0, 0};
  }
  /// Return: jalr r0, lr.
  static Inst ret() { return jalr(RegZero, RegLr); }

  static Inst brr(FreqCode Freq, int32_t Offset) {
    return {Opcode::Brr, 0, 0, 0, Offset,
            static_cast<uint8_t>(Freq.raw())};
  }
  static Inst marker(int32_t Id) { return {Opcode::Marker, 0, 0, 0, Id, 0}; }
  /// rd = current LFSR state; the register then steps (Section 3.4).
  static Inst rdlfsr(uint8_t Rd) { return {Opcode::RdLfsr, Rd, 0, 0, 0, 0}; }

  // --- Classification ---------------------------------------------------
  bool isCondBranch() const {
    return Op == Opcode::Beq || Op == Opcode::Bne || Op == Opcode::Blt ||
           Op == Opcode::Bge;
  }
  bool isBrr() const { return Op == Opcode::Brr; }
  bool isDirectJump() const { return Op == Opcode::Jmp || Op == Opcode::Jal; }
  bool isIndirect() const { return Op == Opcode::Jalr; }
  /// Any instruction that can redirect fetch.
  bool isControl() const {
    return isCondBranch() || isBrr() || isDirectJump() || isIndirect() ||
           Op == Opcode::Halt;
  }
  bool isLoad() const { return Op == Opcode::Ld || Op == Opcode::Ldb; }
  bool isStore() const { return Op == Opcode::St || Op == Opcode::Stb; }
  bool isMem() const { return isLoad() || isStore(); }

  /// True if the instruction architecturally writes Rd (and Rd != r0).
  bool writesReg() const;
  /// Number of source registers read (0..2) written into \p Srcs.
  unsigned sourceRegs(uint8_t Srcs[2]) const;

  friend bool operator==(const Inst &A, const Inst &B) {
    return A.Op == B.Op && A.Rd == B.Rd && A.Rs1 == B.Rs1 &&
           A.Rs2 == B.Rs2 && A.Imm == B.Imm && A.Freq == B.Freq;
  }
};

/// Mnemonic for an opcode ("add", "brr", ...).
const char *opcodeName(Opcode Op);

} // namespace bor

#endif // BOR_ISA_INST_H
