//===- isa/Serialize.cpp - Binary program images ---------------------------===//

#include "isa/Serialize.h"

#include "isa/Encoding.h"

#include <cstdio>
#include <cstring>

using namespace bor;

namespace {

constexpr char Magic[4] = {'B', 'O', 'R', 'B'};
constexpr uint32_t VersionNoSections = 1;
constexpr uint32_t VersionWithSections = 2;
constexpr uint64_t MaxSectionBytes = 1ULL << 32; ///< corruption guard

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian reader.
class Reader {
public:
  Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool failed() const { return Failed; }

  uint32_t u32() { return static_cast<uint32_t>(uint(4)); }
  uint64_t u64() { return uint(8); }

  bool bytes(void *Dst, size_t N) {
    if (Pos + N > Bytes.size()) {
      Failed = true;
      return false;
    }
    std::memcpy(Dst, Bytes.data() + Pos, N);
    Pos += N;
    return true;
  }

  bool atEnd() const { return Pos == Bytes.size(); }

private:
  uint64_t uint(unsigned N) {
    if (Pos + N > Bytes.size()) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
    Pos += N;
    return V;
  }

  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

LoadResult fail(const std::string &Message) {
  LoadResult R;
  R.Error = Message;
  return R;
}

} // namespace

std::vector<uint8_t>
bor::serializeProgram(const Program &P,
                      const std::vector<ContainerSection> &Sections) {
  std::vector<uint8_t> Out;
  Out.insert(Out.end(), Magic, Magic + 4);
  putU32(Out, Sections.empty() ? VersionNoSections : VersionWithSections);
  putU32(Out, static_cast<uint32_t>(P.numInsts()));
  putU64(Out, P.dataBase());
  putU64(Out, P.data().size());
  putU32(Out, static_cast<uint32_t>(P.symbols().size()));

  for (const Inst &I : P.code())
    putU32(Out, encode(I));
  Out.insert(Out.end(), P.data().begin(), P.data().end());
  for (const auto &[Name, Addr] : P.symbols()) {
    putU32(Out, static_cast<uint32_t>(Name.size()));
    Out.insert(Out.end(), Name.begin(), Name.end());
    putU64(Out, Addr);
  }
  if (!Sections.empty()) {
    putU32(Out, static_cast<uint32_t>(Sections.size()));
    for (const ContainerSection &S : Sections) {
      Out.insert(Out.end(), S.Tag.begin(), S.Tag.end());
      putU64(Out, S.Bytes.size());
      Out.insert(Out.end(), S.Bytes.begin(), S.Bytes.end());
    }
  }
  return Out;
}

LoadResult bor::deserializeProgram(const std::vector<uint8_t> &Bytes) {
  Reader R(Bytes);
  char Got[4];
  if (!R.bytes(Got, 4) || std::memcmp(Got, Magic, 4) != 0)
    return fail("not a BORB image (bad magic)");
  uint32_t Ver = R.u32();
  if (Ver != VersionNoSections && Ver != VersionWithSections)
    return fail("unsupported BORB version " + std::to_string(Ver));

  uint32_t NumInsts = R.u32();
  uint64_t DataBase = R.u64();
  uint64_t DataSize = R.u64();
  uint32_t NumSymbols = R.u32();
  if (R.failed())
    return fail("truncated header");
  if (DataBase % 8 != 0)
    return fail("data base must be 8-byte aligned");

  std::vector<Inst> Code;
  Code.reserve(NumInsts);
  for (uint32_t I = 0; I != NumInsts; ++I) {
    uint32_t Word = R.u32();
    if (R.failed())
      return fail("truncated code segment");
    if ((Word >> 26) >= NumOpcodes)
      return fail("invalid opcode in instruction " + std::to_string(I));
    Code.push_back(decode(Word));
  }

  std::vector<uint8_t> Data(DataSize);
  if (DataSize != 0 && !R.bytes(Data.data(), DataSize))
    return fail("truncated data segment");

  Program P(std::move(Code), DataBase, std::move(Data));
  for (uint32_t I = 0; I != NumSymbols; ++I) {
    uint32_t Len = R.u32();
    if (R.failed() || Len > 4096)
      return fail("bad symbol table");
    std::string Name(Len, '\0');
    if (Len != 0 && !R.bytes(Name.data(), Len))
      return fail("truncated symbol name");
    uint64_t Addr = R.u64();
    if (R.failed())
      return fail("truncated symbol address");
    P.setSymbol(Name, Addr);
  }

  std::vector<ContainerSection> Sections;
  if (Ver >= VersionWithSections) {
    uint32_t NumSections = R.u32();
    if (R.failed())
      return fail("truncated section table");
    for (uint32_t I = 0; I != NumSections; ++I) {
      ContainerSection S;
      if (!R.bytes(S.Tag.data(), 4))
        return fail("truncated section tag");
      uint64_t Size = R.u64();
      if (R.failed() || Size > MaxSectionBytes)
        return fail("bad section size");
      S.Bytes.resize(Size);
      if (Size != 0 && !R.bytes(S.Bytes.data(), Size))
        return fail("truncated section payload");
      Sections.push_back(std::move(S));
    }
  }
  if (!R.atEnd())
    return fail("trailing bytes after image");

  LoadResult Result;
  Result.Ok = true;
  Result.Prog = std::move(P);
  Result.Sections = std::move(Sections);
  return Result;
}

bool bor::saveProgram(const Program &P, const std::string &Path,
                      const std::vector<ContainerSection> &Sections) {
  std::vector<uint8_t> Bytes = serializeProgram(P, Sections);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Bytes.size();
  return Ok;
}

LoadResult bor::loadProgramFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return fail("cannot open '" + Path + "'");
  std::vector<uint8_t> Bytes;
  uint8_t Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return deserializeProgram(Bytes);
}
