//===- isa/Program.cpp - An executable BOR-RISC image ---------------------===//

#include "isa/Program.h"

// Program is fully inline today; this file anchors the translation unit.
