//===- isa/Encoding.h - 32-bit binary encoding of BOR-RISC ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BOR-RISC instructions encode into 32-bit words: a 6-bit opcode in the top
/// bits, then format-specific register and immediate fields. The key point
/// for the paper is the brr format (Figure 5): opcode, a 4-bit freq field,
/// and a branch target offset — the frequency replaces the condition
/// registers of an ordinary conditional branch, so brr reads no registers
/// at all and can be resolved in decode.
///
/// Formats (bit ranges inclusive):
///   R   op[31:26] rd[25:21] rs1[20:16] rs2[15:11]
///   I   op[31:26] rd[25:21] rs1[20:16] imm16[15:0]     (ALU-imm, loads, jalr)
///   S   op[31:26] rs2[25:21] rs1[20:16] imm16[15:0]    (stores)
///   B   op[31:26] rs1[25:21] rs2[20:16] imm16[15:0]    (cond branches)
///   J   op[31:26] imm26[25:0]                          (jmp, marker)
///   JAL op[31:26] rd[25:21] imm21[20:0]
///   BRR op[31:26] freq[25:22] imm22[21:0]
///
/// All immediates are signed (two's complement) except marker ids.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_ENCODING_H
#define BOR_ISA_ENCODING_H

#include "isa/Inst.h"

#include <vector>

namespace bor {

/// Encodes \p I into its 32-bit word. Asserts if an immediate does not fit
/// its field.
uint32_t encode(const Inst &I);

/// Decodes a 32-bit word back into an instruction. encode/decode round-trip
/// exactly for all well-formed instructions.
Inst decode(uint32_t Word);

/// True if \p I's immediate fits the field its format provides (useful for
/// generators to validate before encoding).
bool immediateFits(const Inst &I);

std::vector<uint32_t> encodeProgram(const std::vector<Inst> &Code);
std::vector<Inst> decodeProgram(const std::vector<uint32_t> &Words);

} // namespace bor

#endif // BOR_ISA_ENCODING_H
