//===- isa/Assembler.h - Text assembler for BOR-RISC ---------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A two-pass text assembler accepting the disassembler's syntax, so
/// `assemble(disassemble(P))` round-trips any program. Grammar, one
/// statement per line:
///
///   label:                      ; define a code label
///   add r3, r1, r2              ; register-register ALU
///   addi r3, r1, -7             ; register-immediate ALU
///   ld r1, 16(r2)  /  st r3, -8(r4)
///   beq r1, r2, target          ; branch to a label...
///   bne r1, r2, +5              ; ...or a numeric word offset
///   jmp loop   /  jal r31, fn   /  jalr r0, r31
///   brr 1/1024, target          ; branch-on-random at the given interval
///   marker 1  /  nop  /  halt
///   li r4, 123                  ; pseudo: addi r4, r0, 123
///   mv r4, r5                   ; pseudo: addi r4, r5, 0
///   ret                         ; pseudo: jalr r0, r31
///   lc r28, @blob               ; pseudo: load a data symbol's address
///   lc r2, 123456               ; pseudo: load an arbitrary constant
///
/// Data directives:
///
///   .alloc blob 64 8            ; reserve 64 bytes, 8-aligned, named blob
///   .u64 blob 8 42              ; init u64 at blob+8 with 42
///
/// `;` and `#` start comments; a trailing parenthesized annotation after a
/// numeric branch offset (the disassembler's "(-> 12)") is ignored.
///
/// Errors are reported by line with a message; assembly is all-or-nothing.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_ASSEMBLER_H
#define BOR_ISA_ASSEMBLER_H

#include "isa/Program.h"

#include <string>

namespace bor {

/// Result of assembling a source string: either a program or a diagnostic.
struct AssemblyResult {
  bool Ok = false;
  Program Prog;
  /// On failure: "line N: message".
  std::string Error;

  static AssemblyResult success(Program P) {
    AssemblyResult R;
    R.Ok = true;
    R.Prog = std::move(P);
    return R;
  }
  static AssemblyResult failure(unsigned Line, const std::string &Message) {
    AssemblyResult R;
    R.Error = "line " + std::to_string(Line) + ": " + Message;
    return R;
  }
};

/// Assembles \p Source into a program.
AssemblyResult assemble(const std::string &Source);

} // namespace bor

#endif // BOR_ISA_ASSEMBLER_H
