//===- isa/Disasm.cpp - BOR-RISC disassembler -----------------------------===//

#include "isa/Disasm.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace bor;

static std::string formatImpl(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

static std::string formatImpl(const char *Fmt, ...) {
  char Buf[128];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  return Buf;
}

static std::string targetSuffix(int32_t Offset, int64_t Index) {
  if (Index < 0)
    return formatImpl("%+d", Offset);
  return formatImpl("%+d (-> %" PRId64 ")", Offset, Index + Offset);
}

std::string bor::disassemble(const Inst &I, int64_t Index) {
  const char *Name = opcodeName(I.Op);
  switch (I.Op) {
  case Opcode::Nop:
  case Opcode::Halt:
    return Name;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Mul:
  case Opcode::Slt:
  case Opcode::Sltu:
    return formatImpl("%s r%u, r%u, r%u", Name, I.Rd, I.Rs1, I.Rs2);
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Slti:
    return formatImpl("%s r%u, r%u, %d", Name, I.Rd, I.Rs1, I.Imm);
  case Opcode::Ld:
  case Opcode::Ldb:
    return formatImpl("%s r%u, %d(r%u)", Name, I.Rd, I.Imm, I.Rs1);
  case Opcode::St:
  case Opcode::Stb:
    return formatImpl("%s r%u, %d(r%u)", Name, I.Rs2, I.Imm, I.Rs1);
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    return formatImpl("%s r%u, r%u, %s", Name, I.Rs1, I.Rs2,
                      targetSuffix(I.Imm, Index).c_str());
  case Opcode::Jmp:
    return formatImpl("%s %s", Name, targetSuffix(I.Imm, Index).c_str());
  case Opcode::Jal:
    return formatImpl("%s r%u, %s", Name, I.Rd,
                      targetSuffix(I.Imm, Index).c_str());
  case Opcode::Jalr:
    return formatImpl("%s r%u, r%u", Name, I.Rd, I.Rs1);
  case Opcode::Brr:
    return formatImpl("%s 1/%" PRIu64 ", %s", Name,
                      FreqCode(I.Freq).expectedInterval(),
                      targetSuffix(I.Imm, Index).c_str());
  case Opcode::Marker:
    return formatImpl("%s %d", Name, I.Imm);
  case Opcode::RdLfsr:
    return formatImpl("%s r%u", Name, I.Rd);
  }
  assert(false && "unknown opcode");
  return "?";
}

std::string bor::disassemble(const Program &P) {
  std::string Out;
  for (size_t I = 0; I != P.numInsts(); ++I) {
    Out += formatImpl("%5zu:  ", I);
    Out += disassemble(P.at(I), static_cast<int64_t>(I));
    Out += '\n';
  }
  return Out;
}
