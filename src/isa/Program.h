//===- isa/Program.h - An executable BOR-RISC image ----------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is a code image (instructions starting at address 0, 4 bytes
/// each) plus an initialized data segment and optional symbolic annotations
/// used by the instrumentation transforms and the benchmark harness.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_PROGRAM_H
#define BOR_ISA_PROGRAM_H

#include "isa/Inst.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bor {

/// Default base address of the data segment; far from code so instruction
/// and data footprints never collide in the simulated address space.
constexpr uint64_t DefaultDataBase = 0x100000;

/// An executable image.
class Program {
public:
  Program() = default;
  Program(std::vector<Inst> Code, uint64_t DataBase,
          std::vector<uint8_t> Data)
      : Code(std::move(Code)), DataBase(DataBase), Data(std::move(Data)) {}

  const std::vector<Inst> &code() const { return Code; }
  std::vector<Inst> &code() { return Code; }

  size_t numInsts() const { return Code.size(); }

  const Inst &at(size_t Index) const {
    assert(Index < Code.size() && "instruction index out of range");
    return Code[Index];
  }

  /// Instruction index for a byte PC (asserts alignment and range).
  size_t indexForPc(uint64_t Pc) const {
    assert(Pc % 4 == 0 && "PC must be instruction aligned");
    size_t Index = Pc / 4;
    assert(Index < Code.size() && "PC outside code segment");
    return Index;
  }
  static uint64_t pcForIndex(size_t Index) { return Index * 4; }

  uint64_t dataBase() const { return DataBase; }
  const std::vector<uint8_t> &data() const { return Data; }

  /// Named addresses (data symbols and code labels) for tooling/tests.
  void setSymbol(const std::string &Name, uint64_t Addr) {
    Symbols[Name] = Addr;
  }
  bool hasSymbol(const std::string &Name) const {
    return Symbols.count(Name) != 0;
  }
  uint64_t symbol(const std::string &Name) const {
    auto It = Symbols.find(Name);
    assert(It != Symbols.end() && "unknown symbol");
    return It->second;
  }
  const std::map<std::string, uint64_t> &symbols() const { return Symbols; }

private:
  std::vector<Inst> Code;
  uint64_t DataBase = DefaultDataBase;
  std::vector<uint8_t> Data;
  std::map<std::string, uint64_t> Symbols;
};

} // namespace bor

#endif // BOR_ISA_PROGRAM_H
