//===- isa/Inst.cpp - The BOR-RISC instruction set ------------------------===//

#include "isa/Inst.h"

using namespace bor;

bool Inst::writesReg() const {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Mul:
  case Opcode::Slt:
  case Opcode::Sltu:
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Slti:
  case Opcode::Ld:
  case Opcode::Ldb:
  case Opcode::Jal:
  case Opcode::Jalr:
  case Opcode::RdLfsr:
    return Rd != RegZero;
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::St:
  case Opcode::Stb:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
  case Opcode::Jmp:
  case Opcode::Brr:
  case Opcode::Marker:
    return false;
  }
  assert(false && "unknown opcode");
  return false;
}

unsigned Inst::sourceRegs(uint8_t Srcs[2]) const {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Mul:
  case Opcode::Slt:
  case Opcode::Sltu:
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    Srcs[0] = Rs1;
    Srcs[1] = Rs2;
    return 2;
  case Opcode::St:
  case Opcode::Stb:
    Srcs[0] = Rs1; // address base
    Srcs[1] = Rs2; // stored value
    return 2;
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Slti:
  case Opcode::Ld:
  case Opcode::Ldb:
  case Opcode::Jalr:
    Srcs[0] = Rs1;
    return 1;
  case Opcode::Nop:
  case Opcode::Halt:
  case Opcode::Jmp:
  case Opcode::Jal:
  case Opcode::Brr:
  case Opcode::Marker:
  case Opcode::RdLfsr:
    return 0;
  }
  assert(false && "unknown opcode");
  return 0;
}

const char *bor::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
    return "nop";
  case Opcode::Halt:
    return "halt";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Sll:
    return "sll";
  case Opcode::Srl:
    return "srl";
  case Opcode::Mul:
    return "mul";
  case Opcode::Slt:
    return "slt";
  case Opcode::Sltu:
    return "sltu";
  case Opcode::Addi:
    return "addi";
  case Opcode::Andi:
    return "andi";
  case Opcode::Ori:
    return "ori";
  case Opcode::Xori:
    return "xori";
  case Opcode::Slli:
    return "slli";
  case Opcode::Srli:
    return "srli";
  case Opcode::Slti:
    return "slti";
  case Opcode::Ld:
    return "ld";
  case Opcode::Ldb:
    return "ldb";
  case Opcode::St:
    return "st";
  case Opcode::Stb:
    return "stb";
  case Opcode::Beq:
    return "beq";
  case Opcode::Bne:
    return "bne";
  case Opcode::Blt:
    return "blt";
  case Opcode::Bge:
    return "bge";
  case Opcode::Jmp:
    return "jmp";
  case Opcode::Jal:
    return "jal";
  case Opcode::Jalr:
    return "jalr";
  case Opcode::Brr:
    return "brr";
  case Opcode::Marker:
    return "marker";
  case Opcode::RdLfsr:
    return "rdlfsr";
  }
  assert(false && "unknown opcode");
  return "?";
}
