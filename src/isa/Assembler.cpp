//===- isa/Assembler.cpp - Text assembler for BOR-RISC --------------------===//

#include "isa/Assembler.h"

#include "isa/Encoding.h"
#include "isa/ProgramBuilder.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <vector>

using namespace bor;

namespace {

/// Thrown-free error signalling: handlers set Failed/Message and bail.
class LineParser {
public:
  LineParser(const std::string &Text) : Text(Text) {}

  bool failed() const { return Failed; }
  const std::string &message() const { return Message; }

  void fail(const std::string &M) {
    if (!Failed) {
      Failed = true;
      Message = M;
    }
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(
                                    Text[Pos])))
      ++Pos;
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  void expect(char C) {
    if (!consume(C))
      fail(std::string("expected '") + C + "'");
  }

  /// Identifier or mnemonic: [A-Za-z_.][A-Za-z0-9_.]*
  std::string ident() {
    skipSpace();
    size_t Start = Pos;
    auto IsIdent = [](char C, bool First) {
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.')
        return true;
      return !First && std::isdigit(static_cast<unsigned char>(C));
    };
    while (Pos < Text.size() && IsIdent(Text[Pos], Pos == Start))
      ++Pos;
    if (Pos == Start)
      fail("expected identifier");
    return Text.substr(Start, Pos - Start);
  }

  /// Signed integer, decimal or 0x hex, with optional leading +/-.
  int64_t number() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    bool Hex = Pos + 1 < Text.size() && Text[Pos] == '0' &&
               (Text[Pos + 1] == 'x' || Text[Pos + 1] == 'X');
    if (Hex)
      Pos += 2;
    size_t DigitsStart = Pos;
    while (Pos < Text.size() &&
           (Hex ? std::isxdigit(static_cast<unsigned char>(Text[Pos]))
                : std::isdigit(static_cast<unsigned char>(Text[Pos]))))
      ++Pos;
    if (Pos == DigitsStart) {
      fail("expected number");
      return 0;
    }
    return std::strtoll(Text.substr(Start, Pos - Start).c_str(), nullptr,
                        0);
  }

  uint8_t reg() {
    skipSpace();
    if (Pos >= Text.size() || (Text[Pos] != 'r' && Text[Pos] != 'R')) {
      fail("expected register");
      return 0;
    }
    ++Pos;
    int64_t N = number();
    if (N < 0 || N > 31) {
      fail("register index out of range");
      return 0;
    }
    return static_cast<uint8_t>(N);
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  bool Failed = false;
  std::string Message;
};

/// Strips comments, the disassembler's leading "N:" instruction indices,
/// and its "(-> N)" target annotations.
std::string cleanLine(const std::string &Raw) {
  std::string Line = Raw;
  size_t Comment = Line.find_first_of(";#");
  if (Comment != std::string::npos)
    Line.resize(Comment);

  // "   12:  addi ..." -> "  addi ..." (labels start with a non-digit, so
  // a leading digits-then-colon run can only be a disassembly index).
  size_t I = 0;
  while (I < Line.size() &&
         std::isspace(static_cast<unsigned char>(Line[I])))
    ++I;
  size_t DigitsStart = I;
  while (I < Line.size() &&
         std::isdigit(static_cast<unsigned char>(Line[I])))
    ++I;
  if (I > DigitsStart && I < Line.size() && Line[I] == ':')
    Line.erase(0, I + 1);
  size_t Paren = Line.find('(');
  // Keep "imm(rN)" memory operands: an annotation paren is preceded by a
  // space and starts with "(->".
  while (Paren != std::string::npos) {
    if (Line.compare(Paren, 3, "(->") == 0) {
      size_t Close = Line.find(')', Paren);
      Line.erase(Paren, Close == std::string::npos
                            ? std::string::npos
                            : Close - Paren + 1);
      break;
    }
    Paren = Line.find('(', Paren + 1);
  }
  return Line;
}

class Assembler {
public:
  AssemblyResult run(const std::string &Source) {
    unsigned LineNo = 0;
    size_t Start = 0;
    while (Start <= Source.size()) {
      size_t End = Source.find('\n', Start);
      if (End == std::string::npos)
        End = Source.size();
      std::string Line = cleanLine(Source.substr(Start, End - Start));
      ++LineNo;
      CurrentLine = LineNo;
      std::string Error = parseLine(Line);
      if (!Error.empty())
        return AssemblyResult::failure(LineNo, Error);
      if (End == Source.size())
        break;
      Start = End + 1;
    }
    for (const auto &[Name, Info] : Labels)
      if (!Info.Defined)
        return AssemblyResult::failure(Info.FirstUseLine,
                                       "undefined label '" + Name + "'");
    return AssemblyResult::success(B.finish());
  }

private:
  struct LabelInfo {
    ProgramBuilder::LabelId Id = 0;
    bool Defined = false;
    unsigned FirstUseLine = 0;
  };

  ProgramBuilder B;
  std::map<std::string, LabelInfo> Labels;
  std::map<std::string, uint64_t> DataSymbols;
  unsigned CurrentLine = 0;

  ProgramBuilder::LabelId labelFor(const std::string &Name) {
    auto It = Labels.find(Name);
    if (It != Labels.end())
      return It->second.Id;
    LabelInfo Info;
    Info.Id = B.label();
    Info.FirstUseLine = CurrentLine;
    Labels.emplace(Name, Info);
    return Info.Id;
  }

  /// Returns an error message, or empty on success.
  std::string parseLine(const std::string &Line) {
    LineParser P(Line);
    if (P.atEnd())
      return "";

    if (P.peek() == '.')
      return parseDirective(P);

    std::string Word = P.ident();
    if (P.failed())
      return P.message();

    // Label definition?
    if (P.consume(':')) {
      auto It = Labels.find(Word);
      if (It != Labels.end() && It->second.Defined)
        return "label '" + Word + "' defined twice";
      ProgramBuilder::LabelId Id = labelFor(Word);
      Labels[Word].Id = Id;
      Labels[Word].Defined = true;
      B.bind(Id);
      if (!P.atEnd())
        return "trailing characters after label";
      return "";
    }

    std::string Error = parseInstruction(P, Word);
    if (!Error.empty())
      return Error;
    if (P.failed())
      return P.message();
    if (!P.atEnd())
      return "trailing characters after instruction";
    return "";
  }

  std::string parseDirective(LineParser &P) {
    std::string Name = P.ident();
    if (P.failed())
      return P.message();
    if (Name == ".alloc") {
      std::string Sym = P.ident();
      int64_t Size = P.number();
      int64_t Align = 8;
      if (!P.atEnd())
        Align = P.number();
      if (P.failed())
        return P.message();
      if (Size <= 0 || Align <= 0 || (Align & (Align - 1)) != 0)
        return "invalid .alloc size or alignment";
      if (DataSymbols.count(Sym))
        return "data symbol '" + Sym + "' allocated twice";
      uint64_t Addr = B.allocData(static_cast<size_t>(Size),
                                  static_cast<size_t>(Align));
      DataSymbols[Sym] = Addr;
      B.nameData(Sym, Addr);
      return "";
    }
    if (Name == ".u64") {
      std::string Sym = P.ident();
      int64_t Offset = P.number();
      int64_t Value = P.number();
      if (P.failed())
        return P.message();
      auto It = DataSymbols.find(Sym);
      if (It == DataSymbols.end())
        return "unknown data symbol '" + Sym + "'";
      B.initDataU64(It->second + static_cast<uint64_t>(Offset),
                    static_cast<uint64_t>(Value));
      return "";
    }
    return "unknown directive '" + Name + "'";
  }

  /// Branch target: a label name or a numeric word offset.
  std::string emitControl(LineParser &P, Opcode Op, uint8_t Rs1,
                          uint8_t Rs2, uint8_t Rd, FreqCode Freq) {
    char C = P.peek();
    if (C == '+' || C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      int64_t Offset = P.number();
      if (P.failed())
        return P.message();
      Inst I;
      switch (Op) {
      case Opcode::Jmp:
        I = Inst::jmp(static_cast<int32_t>(Offset));
        break;
      case Opcode::Jal:
        I = Inst::jal(Rd, static_cast<int32_t>(Offset));
        break;
      case Opcode::Brr:
        I = Inst::brr(Freq, static_cast<int32_t>(Offset));
        break;
      default:
        I = Inst::branch(Op, Rs1, Rs2, static_cast<int32_t>(Offset));
        break;
      }
      if (!immediateFits(I))
        return "branch offset out of range";
      B.emit(I);
      return "";
    }
    std::string Target = P.ident();
    if (P.failed())
      return P.message();
    ProgramBuilder::LabelId L = labelFor(Target);
    switch (Op) {
    case Opcode::Jmp:
      B.emitJmp(L);
      break;
    case Opcode::Jal:
      B.emitJal(Rd, L);
      break;
    case Opcode::Brr:
      B.emitBrr(Freq, L);
      break;
    default:
      B.emitBranch(Op, Rs1, Rs2, L);
      break;
    }
    return "";
  }

  std::string parseInstruction(LineParser &P, const std::string &Mnemonic) {
    // Pseudo-instructions first.
    if (Mnemonic == "li") {
      uint8_t Rd = P.reg();
      P.expect(',');
      int64_t Imm = P.number();
      if (Imm < -32768 || Imm > 32767)
        return "li immediate out of range (use lc)";
      B.emit(Inst::li(Rd, static_cast<int32_t>(Imm)));
      return "";
    }
    if (Mnemonic == "mv") {
      uint8_t Rd = P.reg();
      P.expect(',');
      uint8_t Rs = P.reg();
      B.emit(Inst::mv(Rd, Rs));
      return "";
    }
    if (Mnemonic == "ret") {
      B.emit(Inst::ret());
      return "";
    }
    if (Mnemonic == "lc") {
      uint8_t Rd = P.reg();
      P.expect(',');
      if (P.consume('@')) {
        std::string Sym = P.ident();
        if (P.failed())
          return P.message();
        auto It = DataSymbols.find(Sym);
        if (It == DataSymbols.end())
          return "unknown data symbol '" + Sym + "'";
        B.emitLoadConst(Rd, It->second);
        return "";
      }
      int64_t Value = P.number();
      B.emitLoadConst(Rd, static_cast<uint64_t>(Value));
      return "";
    }

    // Real opcodes, by mnemonic.
    Opcode Op = Opcode::Nop;
    bool Found = false;
    for (unsigned Raw = 0; Raw != NumOpcodes; ++Raw) {
      if (Mnemonic == opcodeName(static_cast<Opcode>(Raw))) {
        Op = static_cast<Opcode>(Raw);
        Found = true;
        break;
      }
    }
    if (!Found)
      return "unknown mnemonic '" + Mnemonic + "'";

    switch (Op) {
    case Opcode::Nop:
      B.emit(Inst::nop());
      return "";
    case Opcode::Halt:
      B.emit(Inst::halt());
      return "";

    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Sll:
    case Opcode::Srl:
    case Opcode::Mul:
    case Opcode::Slt:
    case Opcode::Sltu: {
      uint8_t Rd = P.reg();
      P.expect(',');
      uint8_t Rs1 = P.reg();
      P.expect(',');
      uint8_t Rs2 = P.reg();
      B.emit(Inst::alu(Op, Rd, Rs1, Rs2));
      return "";
    }

    case Opcode::Addi:
    case Opcode::Andi:
    case Opcode::Ori:
    case Opcode::Xori:
    case Opcode::Slli:
    case Opcode::Srli:
    case Opcode::Slti: {
      uint8_t Rd = P.reg();
      P.expect(',');
      uint8_t Rs1 = P.reg();
      P.expect(',');
      int64_t Imm = P.number();
      Inst I = Inst::alui(Op, Rd, Rs1, static_cast<int32_t>(Imm));
      if (!immediateFits(I))
        return "immediate out of range";
      B.emit(I);
      return "";
    }

    case Opcode::Ld:
    case Opcode::Ldb:
    case Opcode::St:
    case Opcode::Stb: {
      uint8_t RegA = P.reg(); // rd for loads, rs2 for stores
      P.expect(',');
      int64_t Disp = P.number();
      P.expect('(');
      uint8_t Base = P.reg();
      P.expect(')');
      Inst I;
      if (Op == Opcode::Ld)
        I = Inst::ld(RegA, Base, static_cast<int32_t>(Disp));
      else if (Op == Opcode::Ldb)
        I = Inst::ldb(RegA, Base, static_cast<int32_t>(Disp));
      else if (Op == Opcode::St)
        I = Inst::st(RegA, Base, static_cast<int32_t>(Disp));
      else
        I = Inst::stb(RegA, Base, static_cast<int32_t>(Disp));
      if (!immediateFits(I))
        return "displacement out of range";
      B.emit(I);
      return "";
    }

    case Opcode::Beq:
    case Opcode::Bne:
    case Opcode::Blt:
    case Opcode::Bge: {
      uint8_t Rs1 = P.reg();
      P.expect(',');
      uint8_t Rs2 = P.reg();
      P.expect(',');
      return emitControl(P, Op, Rs1, Rs2, 0, FreqCode(0));
    }

    case Opcode::Jmp:
      return emitControl(P, Op, 0, 0, 0, FreqCode(0));

    case Opcode::Jal: {
      uint8_t Rd = P.reg();
      P.expect(',');
      return emitControl(P, Op, 0, 0, Rd, FreqCode(0));
    }

    case Opcode::Jalr: {
      uint8_t Rd = P.reg();
      P.expect(',');
      uint8_t Rs1 = P.reg();
      B.emit(Inst::jalr(Rd, Rs1));
      return "";
    }

    case Opcode::Brr: {
      // "brr 1/1024, target".
      int64_t One = P.number();
      if (One != 1)
        return "brr frequency must be written 1/<interval>";
      P.expect('/');
      int64_t Interval = P.number();
      if (P.failed())
        return P.message();
      if (Interval < 2 || Interval > 65536 ||
          (Interval & (Interval - 1)) != 0)
        return "brr interval must be a power of two in [2, 65536]";
      P.expect(',');
      return emitControl(P, Op, 0, 0, 0,
                         FreqCode::forInterval(
                             static_cast<uint64_t>(Interval)));
    }

    case Opcode::Marker: {
      int64_t Id = P.number();
      B.emit(Inst::marker(static_cast<int32_t>(Id)));
      return "";
    }

    case Opcode::RdLfsr: {
      uint8_t Rd = P.reg();
      B.emit(Inst::rdlfsr(Rd));
      return "";
    }
    }
    return "unhandled opcode";
  }
};

} // namespace

AssemblyResult bor::assemble(const std::string &Source) {
  Assembler A;
  return A.run(Source);
}
