//===- isa/Encoding.cpp - 32-bit binary encoding of BOR-RISC -------------===//

#include "isa/Encoding.h"

using namespace bor;

namespace {

/// Instruction formats; see the file header of Encoding.h.
enum class Format { R, I, S, B, J, Jal, Brr, None };

Format formatFor(Opcode Op) {
  switch (Op) {
  case Opcode::Nop:
  case Opcode::Halt:
    return Format::None;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Sll:
  case Opcode::Srl:
  case Opcode::Mul:
  case Opcode::Slt:
  case Opcode::Sltu:
    return Format::R;
  case Opcode::Addi:
  case Opcode::Andi:
  case Opcode::Ori:
  case Opcode::Xori:
  case Opcode::Slli:
  case Opcode::Srli:
  case Opcode::Slti:
  case Opcode::Ld:
  case Opcode::Ldb:
  case Opcode::Jalr:
  case Opcode::RdLfsr:
    return Format::I;
  case Opcode::St:
  case Opcode::Stb:
    return Format::S;
  case Opcode::Beq:
  case Opcode::Bne:
  case Opcode::Blt:
  case Opcode::Bge:
    return Format::B;
  case Opcode::Jmp:
  case Opcode::Marker:
    return Format::J;
  case Opcode::Jal:
    return Format::Jal;
  case Opcode::Brr:
    return Format::Brr;
  }
  assert(false && "unknown opcode");
  return Format::None;
}

bool fitsSigned(int64_t Value, unsigned Bits) {
  int64_t Lo = -(1LL << (Bits - 1));
  int64_t Hi = (1LL << (Bits - 1)) - 1;
  return Value >= Lo && Value <= Hi;
}

uint32_t field(uint32_t Value, unsigned Shift) { return Value << Shift; }

uint32_t immField(int32_t Imm, unsigned Bits) {
  assert(fitsSigned(Imm, Bits) && "immediate does not fit encoding field");
  return static_cast<uint32_t>(Imm) & ((1u << Bits) - 1);
}

int32_t signExtend(uint32_t Raw, unsigned Bits) {
  uint32_t SignBit = 1u << (Bits - 1);
  uint32_t Mask = (1u << Bits) - 1;
  Raw &= Mask;
  if (Raw & SignBit)
    return static_cast<int32_t>(Raw | ~Mask);
  return static_cast<int32_t>(Raw);
}

} // namespace

bool bor::immediateFits(const Inst &I) {
  switch (formatFor(I.Op)) {
  case Format::R:
  case Format::None:
    return true;
  case Format::I:
  case Format::S:
  case Format::B:
    return fitsSigned(I.Imm, 16);
  case Format::J:
    return fitsSigned(I.Imm, 26);
  case Format::Jal:
    return fitsSigned(I.Imm, 21);
  case Format::Brr:
    return fitsSigned(I.Imm, 22);
  }
  assert(false && "unknown format");
  return false;
}

uint32_t bor::encode(const Inst &I) {
  uint32_t Word = field(static_cast<uint32_t>(I.Op), 26);
  switch (formatFor(I.Op)) {
  case Format::None:
    return Word;
  case Format::R:
    return Word | field(I.Rd, 21) | field(I.Rs1, 16) | field(I.Rs2, 11);
  case Format::I:
    return Word | field(I.Rd, 21) | field(I.Rs1, 16) | immField(I.Imm, 16);
  case Format::S:
    return Word | field(I.Rs2, 21) | field(I.Rs1, 16) | immField(I.Imm, 16);
  case Format::B:
    return Word | field(I.Rs1, 21) | field(I.Rs2, 16) | immField(I.Imm, 16);
  case Format::J:
    return Word | immField(I.Imm, 26);
  case Format::Jal:
    return Word | field(I.Rd, 21) | immField(I.Imm, 21);
  case Format::Brr:
    assert(I.Freq < FreqCode::NumValues && "freq field is 4 bits");
    return Word | field(I.Freq, 22) | immField(I.Imm, 22);
  }
  assert(false && "unknown format");
  return 0;
}

Inst bor::decode(uint32_t Word) {
  Inst I;
  uint32_t OpRaw = Word >> 26;
  assert(OpRaw < NumOpcodes && "invalid opcode bits");
  I.Op = static_cast<Opcode>(OpRaw);

  auto Reg = [Word](unsigned Shift) {
    return static_cast<uint8_t>((Word >> Shift) & 31);
  };

  switch (formatFor(I.Op)) {
  case Format::None:
    return I;
  case Format::R:
    I.Rd = Reg(21);
    I.Rs1 = Reg(16);
    I.Rs2 = Reg(11);
    return I;
  case Format::I:
    I.Rd = Reg(21);
    I.Rs1 = Reg(16);
    I.Imm = signExtend(Word, 16);
    return I;
  case Format::S:
    I.Rs2 = Reg(21);
    I.Rs1 = Reg(16);
    I.Imm = signExtend(Word, 16);
    return I;
  case Format::B:
    I.Rs1 = Reg(21);
    I.Rs2 = Reg(16);
    I.Imm = signExtend(Word, 16);
    return I;
  case Format::J:
    I.Imm = signExtend(Word, 26);
    return I;
  case Format::Jal:
    I.Rd = Reg(21);
    I.Imm = signExtend(Word, 21);
    return I;
  case Format::Brr:
    I.Freq = static_cast<uint8_t>((Word >> 22) & 15);
    I.Imm = signExtend(Word, 22);
    return I;
  }
  assert(false && "unknown format");
  return I;
}

std::vector<uint32_t> bor::encodeProgram(const std::vector<Inst> &Code) {
  std::vector<uint32_t> Words;
  Words.reserve(Code.size());
  for (const Inst &I : Code)
    Words.push_back(encode(I));
  return Words;
}

std::vector<Inst> bor::decodeProgram(const std::vector<uint32_t> &Words) {
  std::vector<Inst> Code;
  Code.reserve(Words.size());
  for (uint32_t W : Words)
    Code.push_back(decode(W));
  return Code;
}
