//===- isa/Serialize.h - Binary program images ("BORB" container) --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple binary container for BOR-RISC programs, so workloads can be
/// built once and shipped between the tools (bor-as, bor-dis, bor-run):
///
///   magic "BORB" | u32 version | u32 numInsts | u64 dataBase
///   | u64 dataSize | u32 numSymbols
///   | numInsts x u32 encoded instruction words
///   | dataSize bytes of initialized data
///   | symbols: (u32 nameLen, name bytes, u64 addr)*
///   | version >= 2 only: u32 numSections
///   | sections: (4 tag bytes, u64 size, size payload bytes)*
///
/// Version 1 images end at the symbol table; version 2 appends named
/// sections whose payloads the container treats as opaque bytes. The
/// sampled-simulation subsystem stores machine checkpoints in a "CKPT"
/// section (src/sample/Checkpoint.h owns that payload's encoding); images
/// without sections keep serializing as version 1 so existing files and
/// byte-comparison tests are unaffected.
///
/// All integers are little-endian. Loading validates structure and decodes
/// instructions through the checked isa/Encoding path.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_SERIALIZE_H
#define BOR_ISA_SERIALIZE_H

#include "isa/Program.h"

#include <array>
#include <string>
#include <vector>

namespace bor {

/// A named opaque payload appended to a version >= 2 container. The
/// container layer neither interprets nor validates payload bytes; owners
/// of a tag (e.g. the checkpoint code for "CKPT") define the encoding.
struct ContainerSection {
  std::array<char, 4> Tag = {{0, 0, 0, 0}};
  std::vector<uint8_t> Bytes;

  bool hasTag(const char (&T)[5]) const {
    return Tag[0] == T[0] && Tag[1] == T[1] && Tag[2] == T[2] &&
           Tag[3] == T[3];
  }
  static ContainerSection make(const char (&T)[5],
                               std::vector<uint8_t> Payload) {
    ContainerSection S;
    S.Tag = {{T[0], T[1], T[2], T[3]}};
    S.Bytes = std::move(Payload);
    return S;
  }
};

/// Serializes \p P into the container format. With no sections the output
/// is a version 1 image, byte-identical to what previous revisions wrote;
/// with sections it is a version 2 image carrying them after the symbols.
std::vector<uint8_t>
serializeProgram(const Program &P,
                 const std::vector<ContainerSection> &Sections = {});

/// Result of deserialization: a program (plus any container sections) or
/// a diagnostic.
struct LoadResult {
  bool Ok = false;
  Program Prog;
  std::vector<ContainerSection> Sections;
  std::string Error;

  /// First section with tag \p T, or nullptr.
  const ContainerSection *findSection(const char (&T)[5]) const {
    for (const ContainerSection &S : Sections)
      if (S.hasTag(T))
        return &S;
    return nullptr;
  }
};

/// Parses a container image produced by serializeProgram.
LoadResult deserializeProgram(const std::vector<uint8_t> &Bytes);

/// File convenience wrappers. saveProgram returns false on I/O failure;
/// loadProgramFile reports I/O and format errors through LoadResult.
bool saveProgram(const Program &P, const std::string &Path,
                 const std::vector<ContainerSection> &Sections = {});
LoadResult loadProgramFile(const std::string &Path);

} // namespace bor

#endif // BOR_ISA_SERIALIZE_H
