//===- isa/Serialize.h - Binary program images ("BORB" container) --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple binary container for BOR-RISC programs, so workloads can be
/// built once and shipped between the tools (bor-as, bor-dis, bor-run):
///
///   magic "BORB" | u32 version | u32 numInsts | u64 dataBase
///   | u64 dataSize | u32 numSymbols
///   | numInsts x u32 encoded instruction words
///   | dataSize bytes of initialized data
///   | symbols: (u32 nameLen, name bytes, u64 addr)*
///
/// All integers are little-endian. Loading validates structure and decodes
/// instructions through the checked isa/Encoding path.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_SERIALIZE_H
#define BOR_ISA_SERIALIZE_H

#include "isa/Program.h"

#include <string>
#include <vector>

namespace bor {

/// Serializes \p P into the container format.
std::vector<uint8_t> serializeProgram(const Program &P);

/// Result of deserialization: a program or a diagnostic.
struct LoadResult {
  bool Ok = false;
  Program Prog;
  std::string Error;
};

/// Parses a container image produced by serializeProgram.
LoadResult deserializeProgram(const std::vector<uint8_t> &Bytes);

/// File convenience wrappers. saveProgram returns false on I/O failure;
/// loadProgramFile reports I/O and format errors through LoadResult.
bool saveProgram(const Program &P, const std::string &Path);
LoadResult loadProgramFile(const std::string &Path);

} // namespace bor

#endif // BOR_ISA_SERIALIZE_H
