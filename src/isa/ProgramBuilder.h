//===- isa/ProgramBuilder.h - Label-based BOR-RISC assembler -------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ProgramBuilder plays the role of the paper's assembly post-processing
/// step (Section 5.3): workload generators construct a baseline program
/// once, and instrumentation transforms splice sampling frameworks into it
/// with label-based control flow, guaranteeing that the non-framework
/// instructions, register usage, and layout are identical across the
/// compared binaries.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_PROGRAMBUILDER_H
#define BOR_ISA_PROGRAMBUILDER_H

#include "isa/Program.h"

#include <string>
#include <vector>

namespace bor {

namespace cfg {
class Module;
}

/// Incrementally builds a Program with forward-referencable labels and an
/// initialized data segment.
class ProgramBuilder {
public:
  using LabelId = unsigned;

  explicit ProgramBuilder(uint64_t DataBase = DefaultDataBase)
      : DataBase(DataBase) {}

  // --- Code ------------------------------------------------------------

  /// Creates a fresh, unbound label.
  LabelId label();

  /// Binds \p L to the next emitted instruction.
  void bind(LabelId L);

  /// Current instruction index (== the index the next emit() will use).
  size_t here() const { return Code.size(); }

  /// Appends \p I verbatim; returns its index.
  size_t emit(Inst I);

  /// Control-flow emitters resolving label offsets at finish() time.
  size_t emitBranch(Opcode Op, uint8_t Rs1, uint8_t Rs2, LabelId Target);
  size_t emitJmp(LabelId Target);
  size_t emitJal(uint8_t Rd, LabelId Target);
  size_t emitBrr(FreqCode Freq, LabelId Target);

  /// Materializes an arbitrary 64-bit constant into \p Rd using li/slli/ori
  /// sequences (1..9 instructions depending on the value).
  void emitLoadConst(uint8_t Rd, uint64_t Value);

  // --- Data ------------------------------------------------------------

  /// Reserves \p Size zero-initialized bytes in the data segment with the
  /// given power-of-two alignment and returns their address.
  uint64_t allocData(size_t Size, size_t Align = 8);

  /// Writes a little-endian u64 into previously allocated data.
  void initDataU64(uint64_t Addr, uint64_t Value);
  void initDataBytes(uint64_t Addr, const std::vector<uint8_t> &Bytes);

  // --- Symbols ---------------------------------------------------------

  void nameData(const std::string &Name, uint64_t Addr);
  void nameLabel(const std::string &Name, LabelId L);

  /// Resolves all fixups and produces the final Program. Asserts that every
  /// referenced label was bound and every offset fits its encoding field.
  Program finish();

  /// The CFG-emitting path: finishes the program and lifts it into a
  /// cfg::Module in one step. When \p LabelBlocks is non-null it receives,
  /// per LabelId, the cfg::BlockId whose head the label binds to
  /// (0xffffffff for unbound labels) — the handle CFG-path transforms and
  /// the layout passes use to keep talking about generator-created points
  /// after linearization is no longer fixed.
  cfg::Module finishModule(std::vector<uint32_t> *LabelBlocks = nullptr);

private:
  struct Fixup {
    size_t InstIndex;
    LabelId Target;
  };

  std::vector<Inst> Code;
  std::vector<int64_t> LabelPositions; ///< -1 while unbound.
  std::vector<Fixup> Fixups;
  uint64_t DataBase;
  std::vector<uint8_t> Data;
  std::vector<std::pair<std::string, uint64_t>> DataSymbols;
  std::vector<std::pair<std::string, LabelId>> LabelSymbols;
};

/// Appends the li/slli/ori sequence materializing \p Value into \p Rd —
/// the same instructions ProgramBuilder::emitLoadConst emits, reusable by
/// CFG-path transforms that splice instructions without a builder.
void appendLoadConst(std::vector<Inst> &Out, uint8_t Rd, uint64_t Value);

} // namespace bor

#endif // BOR_ISA_PROGRAMBUILDER_H
