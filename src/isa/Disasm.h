//===- isa/Disasm.h - BOR-RISC disassembler -------------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual rendering of instructions and programs, used in tests and when
/// debugging generated workloads.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_ISA_DISASM_H
#define BOR_ISA_DISASM_H

#include "isa/Program.h"

#include <string>

namespace bor {

/// Renders one instruction, e.g. "add r3, r1, r2" or "brr 1/1024, +12".
/// \p Index (the instruction's own position) is used to print absolute
/// branch targets next to relative offsets when nonnegative.
std::string disassemble(const Inst &I, int64_t Index = -1);

/// Renders the whole code segment, one instruction per line with indices.
std::string disassemble(const Program &P);

} // namespace bor

#endif // BOR_ISA_DISASM_H
