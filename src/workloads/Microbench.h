//===- workloads/Microbench.h - The Section 5.3 microbenchmark -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checksum/character-distribution microbenchmark of Section 5.3: a
/// loop over a character buffer with three data-dependent execution paths
/// (upper-case, lower-case, other), each updating its own checksum, plus a
/// per-character distribution-table increment. One instrumentation site
/// sits at the head of each class path (an edge profile, as in the paper).
///
/// All variants — baseline, full instrumentation, counter-based and
/// brr-based sampling with No- or Full-Duplication — are generated from the
/// same builder, so every binary shares its non-framework instructions,
/// register usage and layout; only the sampling framework differs. This is
/// the exact methodological guarantee of the paper's assembly
/// post-processing.
///
/// The region of interest (the loop; prologue/epilogue excluded, as in the
/// paper) is delimited by marker(1)/marker(2).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_WORKLOADS_MICROBENCH_H
#define BOR_WORKLOADS_MICROBENCH_H

#include "instr/Transform.h"
#include "workloads/TextGen.h"

namespace bor {

/// Marker ids delimiting the timed region.
enum : int32_t { MarkerRoiBegin = 1, MarkerRoiEnd = 2 };

struct MicrobenchConfig {
  TextConfig Text;
  InstrumentationConfig Instr;
};

/// A built microbenchmark image plus the metadata experiments need.
struct MicrobenchProgram {
  Program Prog;
  /// Static instrumentation sites: the loop-entry edge, the three class
  /// edges (upper/lower/other), and the rejoin edge — an edge profile of
  /// the character-processing loop, as in Section 5.3.
  unsigned NumStaticSites = 5;
  /// Dynamic site visits in the region of interest (3 per character: the
  /// entry edge, one class edge, and the rejoin edge).
  uint64_t DynamicSiteVisits = 0;
  /// Base of the 3-entry edge-profile counter table.
  uint64_t ProfileBase = 0;
  /// Base of the 3-u64 checksum result block (upper, lower, other), written
  /// in the epilogue for cross-variant semantic checks.
  uint64_t ResultBase = 0;
  /// Byte PCs of the sampling-check branches (empty for baseline/full
  /// instrumentation); see SamplingFrameworkEmitter::checkBranchPcs().
  std::vector<uint64_t> CheckBranchPcs;
};

MicrobenchProgram buildMicrobench(const MicrobenchConfig &Config);

} // namespace bor

#endif // BOR_WORKLOADS_MICROBENCH_H
