//===- workloads/PgoGen.cpp - Pessimal-layout PGO workload ----------------===//

#include "workloads/PgoGen.h"

#include "instr/CfgTransform.h"
#include "instr/Sites.h"
#include "isa/ProgramBuilder.h"
#include "workloads/Microbench.h"

using namespace bor;

namespace {

// Register plan (RegScratch/RegCounter/RegGlobals/RegProfBase stay free
// for the instrumentation transform, exactly as in the other workloads).
constexpr uint8_t RegLcg = 1;      ///< LCG state x
constexpr uint8_t RegIter = 2;     ///< remaining iterations
constexpr uint8_t RegChecksum = 3; ///< self-check accumulator
constexpr uint8_t RegT1 = 4;       ///< arm decision bits
constexpr uint8_t RegT2 = 5;       ///< function decision bits
constexpr uint8_t RegLcgMul = 10;  ///< LCG multiplier constant

constexpr uint64_t LcgMultiplier = 6364136223846793005ULL;

} // namespace

PgoWorkload bor::buildPgoWorkload(const PgoGenConfig &C) {
  PgoWorkload W;
  W.NumSites = 2 * C.Arms + 2 * C.Functions;

  ProgramBuilder B;
  ProfileTable Table(B, "pgo.profile", W.NumSites);
  W.ProfileBase = Table.baseAddr();
  W.ChecksumAddr = B.allocData(8, 8);
  B.nameData("pgo.checksum", W.ChecksumAddr);

  // Per profile slot, the baseline instruction index of the point it
  // counts. Every one is a block leader (branch target or fall-through of
  // a conditional branch), so slot counts are block-entry counts.
  std::vector<size_t> SlotPos(W.NumSites, 0);

  // Prologue (outside the ROI; identical across layout variants because
  // the optimizer pins the entry block first).
  B.emitLoadConst(RegGlobals, DefaultDataBase);
  B.emitLoadConst(RegProfBase, Table.baseAddr());
  B.emitLoadConst(RegLcgMul, LcgMultiplier);
  B.emitLoadConst(RegLcg, C.Seed * 0x9E3779B97F4A7C15ULL + 0x1234567ULL);
  B.emitLoadConst(RegIter, C.Iters);
  B.emit(Inst::li(RegChecksum, 0));
  const size_t SetupPos = B.here(); // framework setup splices here
  B.emit(Inst::marker(MarkerRoiBegin));

  auto LoopHead = B.label();
  B.bind(LoopHead);
  B.nameLabel("pgo.loop", LoopHead);

  std::vector<ProgramBuilder::LabelId> FnLabels;
  for (unsigned F = 0; F != C.Functions; ++F)
    FnLabels.push_back(B.label());

  // The arms: each steps the LCG, extracts 6 bias bits, and branches to
  // its hot path — TAKEN with probability 63/64, hopping over the inline
  // cold chunk. This is the pessimal shape branch-direction layout fixes.
  for (unsigned A = 0; A != C.Arms; ++A) {
    unsigned Shift = 8 + static_cast<unsigned>((C.Seed * 7 + 11 * A) % 40);
    B.emit(Inst::alu(Opcode::Mul, RegLcg, RegLcg, RegLcgMul));
    B.emit(Inst::addi(RegLcg, RegLcg,
                      static_cast<int32_t>((C.Seed * 2 + 2 * A + 1) & 0x3ff)));
    B.emit(Inst::alui(Opcode::Srli, RegT1, RegLcg, static_cast<int32_t>(Shift)));
    B.emit(Inst::alui(Opcode::Andi, RegT1, RegT1, 63));
    auto Hot = B.label();
    auto Join = B.label();
    B.emitBranch(Opcode::Bne, RegT1, RegZero, Hot);
    // Inline cold chunk on the fall-through path.
    SlotPos[2 * A + 1] = B.here();
    for (unsigned I = 0; I != C.ColdChunk; ++I)
      B.emit(Inst::alui(Opcode::Xori, RegChecksum, RegChecksum,
                        static_cast<int32_t>((A * 131 + I * 7 + 3) & 0x7fff)));
    B.emit(Inst::addi(RegChecksum, RegChecksum, 1));
    B.emitJmp(Join);
    B.bind(Hot);
    SlotPos[2 * A] = B.here();
    B.emit(Inst::add(RegChecksum, RegChecksum, RegT1));
    B.emit(Inst::alu(Opcode::Xor, RegChecksum, RegChecksum, RegLcg));
    B.bind(Join);
  }

  for (unsigned F = 0; F != C.Functions; ++F)
    B.emitJal(RegLr, FnLabels[F]);

  B.emit(Inst::addi(RegIter, RegIter, -1));
  B.emitBranch(Opcode::Bne, RegIter, RegZero, LoopHead);
  B.emit(Inst::marker(MarkerRoiEnd));
  B.emit(Inst::st(RegChecksum, RegGlobals,
                  static_cast<int32_t>(W.ChecksumAddr - DefaultDataBase)));
  B.emit(Inst::halt());

  // Helper functions, each with its cold tail inline before the shared
  // return — the shape hot/cold splitting moves out of the body.
  for (unsigned F = 0; F != C.Functions; ++F) {
    B.bind(FnLabels[F]);
    B.nameLabel("pgo.fn" + std::to_string(F), FnLabels[F]);
    SlotPos[2 * C.Arms + 2 * F] = B.here();
    unsigned Shift = 8 + static_cast<unsigned>((C.Seed * 5 + 13 * F + 19) % 40);
    B.emit(Inst::alui(Opcode::Xori, RegChecksum, RegChecksum,
                      static_cast<int32_t>(0x40 + F)));
    B.emit(Inst::alui(Opcode::Srli, RegT2, RegLcg, static_cast<int32_t>(Shift)));
    B.emit(Inst::alui(Opcode::Andi, RegT2, RegT2, 15));
    auto Ret = B.label();
    B.emitBranch(Opcode::Bne, RegT2, RegZero, Ret);
    SlotPos[2 * C.Arms + 2 * F + 1] = B.here();
    for (unsigned I = 0; I != C.ColdChunk; ++I)
      B.emit(Inst::alui(Opcode::Xori, RegChecksum, RegChecksum,
                        static_cast<int32_t>((F * 257 + I * 11 + 5) & 0x7fff)));
    B.bind(Ret);
    B.emit(Inst::add(RegChecksum, RegChecksum, RegT2));
    B.emit(Inst::ret());
  }

  W.Baseline = B.finish();

  // Slot -> block map, valid for every buildModule(Baseline) lift (block
  // ids are a deterministic function of the program).
  cfg::Module M = cfg::buildModule(W.Baseline);
  W.SiteBlocks.resize(W.NumSites);
  for (size_t S = 0; S != W.NumSites; ++S)
    W.SiteBlocks[S] = M.blockForIndex(SlotPos[S]);

  // The profiling variant: same instruction stream, lifted again, with the
  // sampling framework and one counter increment per site spliced in.
  InstrumentationConfig IC = C.Instr;
  IC.Dup = DuplicationMode::NoDuplication;
  IC.IncludeBody = true;
  cfg::Module MI = cfg::buildModule(W.Baseline);
  CfgSamplingTransform T(MI, IC, DefaultDataBase);
  std::vector<Inst> Setup = T.setupInsts();
  if (!Setup.empty()) {
    cfg::BlockId Entry = MI.blockForIndex(SetupPos);
    MI.insertInsts(Entry, static_cast<uint32_t>(
                              SetupPos - MI.block(Entry).OrigIndex),
                   Setup);
  }
  std::vector<CfgSite> Sites;
  for (size_t S = 0; S != W.NumSites; ++S) {
    std::vector<Inst> Body;
    Table.appendIncrement(Body, S, RegProfBase, Table.baseAddr(), RegScratch);
    cfg::BlockId Blk = MI.blockForIndex(SlotPos[S]);
    Sites.push_back({Blk,
                     static_cast<uint32_t>(SlotPos[S] -
                                           MI.block(Blk).OrigIndex),
                     std::move(Body)});
  }
  T.instrumentSites(std::move(Sites));
  W.Instrumented = cfg::emitProgram(MI);
  return W;
}
