//===- workloads/Kernels.cpp - A small suite of instrumentable kernels ---===//

#include "workloads/Kernels.h"

#include "instr/Sites.h"
#include "support/Rng.h"
#include "workloads/Microbench.h" // marker ids
#include "workloads/TextGen.h"

#include <algorithm>

using namespace bor;

namespace {

/// Registers left to kernels: r1..r13, r16..r26. r14/r15 belong to the
/// instrumentation body/framework, r27/r28 to the framework conventions.

/// Common build scaffolding: emitter + result slot + site-counter table,
/// allocated before any bulk data so displacements stay small.
struct KernelBuild {
  ProgramBuilder B;
  SamplingFrameworkEmitter Emitter;
  uint64_t ResultAddr;
  ProfileTable Sites;

  KernelBuild(const InstrumentationConfig &Instr, unsigned NumSites)
      : Emitter(B, Instr, DefaultDataBase), ResultAddr(B.allocData(8, 8)),
        Sites(B, "sites", NumSites) {
    B.nameData("result", ResultAddr);
  }

  /// Globals base, framework setup, ROI start.
  void prologue() {
    B.emitLoadConst(RegGlobals, DefaultDataBase);
    Emitter.emitSetup();
    B.emit(Inst::marker(MarkerRoiBegin));
  }

  /// One instrumentation site: the body bumps the site counter.
  void site(unsigned Index) {
    Emitter.emitSite([this, Index](ProgramBuilder &PB) {
      Sites.emitIncrement(PB, Index, RegGlobals, DefaultDataBase, 14);
    });
  }

  /// ROI end, result store, halt, out-of-line blocks.
  Program finish(uint8_t ResultReg) {
    B.emit(Inst::marker(MarkerRoiEnd));
    B.emit(Inst::st(ResultReg, RegGlobals,
                    static_cast<int32_t>(ResultAddr - DefaultDataBase)));
    B.emit(Inst::halt());
    Emitter.flushOutOfLine();
    return B.finish();
  }
};

// --- crc32: bit-serial CRC-32 over a byte buffer. -----------------------

KernelProgram buildCrc32(const KernelConfig &Config) {
  uint64_t Size = Config.Size ? Config.Size : 12000;
  constexpr uint64_t Poly = 0xEDB88320;

  KernelBuild K(Config.Instr, 1);
  ProgramBuilder &B = K.B;

  Xoshiro256 Rng(Config.Seed);
  std::vector<uint8_t> Buf(Size);
  for (uint8_t &Byte : Buf)
    Byte = static_cast<uint8_t>(Rng.nextBelow(256));
  uint64_t BufAddr = B.allocData(Size, 8);
  B.initDataBytes(BufAddr, Buf);

  B.emitLoadConst(1, BufAddr);
  B.emitLoadConst(2, BufAddr + Size);
  B.emitLoadConst(3, 0xFFFFFFFF);
  B.emitLoadConst(6, Poly);
  K.prologue();

  auto ByteLoop = B.label();
  B.bind(ByteLoop);
  B.emit(Inst::ldb(4, 1, 0));
  B.emit(Inst::addi(1, 1, 1));
  B.emit(Inst::alu(Opcode::Xor, 3, 3, 4));
  // Fully unrolled bit loop (as a tuned CRC would be): eight genuinely
  // data-dependent ~50/50 branches per byte, nothing for history luck.
  for (int Bit = 0; Bit != 8; ++Bit) {
    auto SkipXor = B.label();
    B.emit(Inst::alui(Opcode::Andi, 7, 3, 1));
    B.emit(Inst::alui(Opcode::Srli, 3, 3, 1));
    B.emitBranch(Opcode::Beq, 7, 0, SkipXor);
    B.emit(Inst::alu(Opcode::Xor, 3, 3, 6));
    B.bind(SkipXor);
  }
  K.site(0); // one edge profile visit per byte
  B.emitBranch(Opcode::Bne, 1, 2, ByteLoop);

  KernelProgram Out;
  Out.Name = "crc32";
  Out.NumStaticSites = 1;
  Out.DynamicSiteVisits = Size;
  uint64_t Crc = 0xFFFFFFFF;
  for (uint8_t Byte : Buf) {
    Crc ^= Byte;
    for (int Bit = 0; Bit != 8; ++Bit)
      Crc = (Crc & 1) ? (Crc >> 1) ^ Poly : Crc >> 1;
  }
  Out.ExpectedResult = Crc;
  Out.Prog = K.finish(3);
  return Out;
}

// --- sort: insertion sort + weighted checksum. ---------------------------

KernelProgram buildSort(const KernelConfig &Config) {
  uint64_t N = Config.Size ? Config.Size : 400;

  KernelBuild K(Config.Instr, 2);
  ProgramBuilder &B = K.B;

  Xoshiro256 Rng(Config.Seed);
  std::vector<uint64_t> Values(N);
  for (uint64_t &V : Values)
    V = Rng.next() >> 2; // keep below 2^62: signed compares stay valid
  uint64_t Arr = B.allocData(8 * N, 8);
  for (uint64_t I = 0; I != N; ++I)
    B.initDataU64(Arr + 8 * I, Values[I]);

  B.emitLoadConst(1, Arr);
  B.emitLoadConst(2, N);
  B.emit(Inst::li(3, 1)); // i
  K.prologue();

  auto Outer = B.label();
  auto Inner = B.label();
  auto Insert = B.label();
  B.bind(Outer);
  B.emit(Inst::alui(Opcode::Slli, 8, 3, 3));
  B.emit(Inst::add(8, 8, 1));  // &arr[i]
  B.emit(Inst::ld(4, 8, 0));   // key
  B.emit(Inst::addi(8, 8, -8)); // &arr[j], j = i-1
  B.bind(Inner);
  B.emitBranch(Opcode::Blt, 8, 1, Insert); // j < 0
  B.emit(Inst::ld(9, 8, 0));
  B.emitBranch(Opcode::Bge, 4, 9, Insert); // key >= arr[j]
  B.emit(Inst::st(9, 8, 8));               // arr[j+1] = arr[j]
  K.site(1);                               // inner-shift edge
  B.emit(Inst::addi(8, 8, -8));
  B.emitJmp(Inner);
  B.bind(Insert);
  B.emit(Inst::st(4, 8, 8)); // arr[j+1] = key
  K.site(0);                 // per-element insertion edge
  B.emit(Inst::addi(3, 3, 1));
  B.emitBranch(Opcode::Blt, 3, 2, Outer);

  // Weighted checksum of the sorted array: sum of arr[i]*(i+1).
  auto CsLoop = B.label();
  B.emit(Inst::mv(8, 1));
  B.emitLoadConst(5, Arr + 8 * N);
  B.emit(Inst::li(11, 0));
  B.emit(Inst::li(12, 0));
  B.bind(CsLoop);
  B.emit(Inst::ld(9, 8, 0));
  B.emit(Inst::addi(12, 12, 1));
  B.emit(Inst::alu(Opcode::Mul, 10, 9, 12));
  B.emit(Inst::add(11, 11, 10));
  B.emit(Inst::addi(8, 8, 8));
  B.emitBranch(Opcode::Bne, 8, 5, CsLoop);

  KernelProgram Out;
  Out.Name = "sort";
  Out.NumStaticSites = 2;
  // Reference: count shifts while insertion-sorting a copy.
  std::vector<uint64_t> Ref = Values;
  uint64_t Shifts = 0;
  for (size_t I = 1; I < Ref.size(); ++I) {
    uint64_t Key = Ref[I];
    size_t J = I;
    while (J > 0 && Ref[J - 1] > Key) {
      Ref[J] = Ref[J - 1];
      --J;
      ++Shifts;
    }
    Ref[J] = Key;
  }
  Out.DynamicSiteVisits = (N - 1) + Shifts;
  uint64_t Checksum = 0;
  for (size_t I = 0; I != Ref.size(); ++I)
    Checksum += Ref[I] * static_cast<uint64_t>(I + 1);
  Out.ExpectedResult = Checksum;
  Out.Prog = K.finish(11);
  return Out;
}

// --- strsearch: naive substring search. ----------------------------------

KernelProgram buildStrSearch(const KernelConfig &Config) {
  uint64_t M = Config.Size ? Config.Size : 12000;
  constexpr uint64_t PatLen = 6;

  KernelBuild K(Config.Instr, 2);
  ProgramBuilder &B = K.B;

  TextConfig TC;
  TC.NumChars = M;
  TC.Seed = Config.Seed;
  std::vector<uint8_t> Text = generateText(TC);
  std::vector<uint8_t> Pattern(Text.begin() + M / 3,
                               Text.begin() + M / 3 + PatLen);
  uint64_t TextAddr = B.allocData(M, 8);
  B.initDataBytes(TextAddr, Text);
  uint64_t PatAddr = B.allocData(PatLen, 8);
  B.initDataBytes(PatAddr, Pattern);

  B.emitLoadConst(1, TextAddr);
  B.emitLoadConst(2, TextAddr + (M - PatLen) + 1); // one past last start
  B.emitLoadConst(3, PatAddr);
  B.emit(Inst::li(7, 0)); // match count
  B.emit(Inst::li(10, PatLen));
  K.prologue();

  auto Outer = B.label();
  auto Inner = B.label();
  auto NoMatch = B.label();
  B.bind(Outer);
  B.emit(Inst::li(4, 0));
  B.bind(Inner);
  B.emit(Inst::add(8, 1, 4));
  B.emit(Inst::ldb(5, 8, 0));
  B.emit(Inst::add(9, 3, 4));
  B.emit(Inst::ldb(6, 9, 0));
  B.emitBranch(Opcode::Bne, 5, 6, NoMatch);
  B.emit(Inst::addi(4, 4, 1));
  B.emitBranch(Opcode::Blt, 4, 10, Inner);
  B.emit(Inst::addi(7, 7, 1));
  K.site(1); // match edge
  B.bind(NoMatch);
  K.site(0); // per-position edge
  B.emit(Inst::addi(1, 1, 1));
  B.emitBranch(Opcode::Bne, 1, 2, Outer);

  KernelProgram Out;
  Out.Name = "strsearch";
  Out.NumStaticSites = 2;
  uint64_t Matches = 0;
  for (size_t Pos = 0; Pos + PatLen <= Text.size(); ++Pos)
    if (std::equal(Pattern.begin(), Pattern.end(), Text.begin() + Pos))
      ++Matches;
  Out.ExpectedResult = Matches;
  Out.DynamicSiteVisits = (M - PatLen + 1) + Matches;
  Out.Prog = K.finish(7);
  return Out;
}

// --- matmul: dense u64 matrix multiply, checksum of C. --------------------

KernelProgram buildMatMul(const KernelConfig &Config) {
  uint64_t N = Config.Size ? Config.Size : 20;

  KernelBuild K(Config.Instr, 1);
  ProgramBuilder &B = K.B;

  Xoshiro256 Rng(Config.Seed);
  std::vector<uint64_t> A(N * N), Bm(N * N);
  for (uint64_t &V : A)
    V = Rng.nextBelow(1 << 20);
  for (uint64_t &V : Bm)
    V = Rng.nextBelow(1 << 20);
  uint64_t AAddr = B.allocData(8 * N * N, 8);
  uint64_t BAddr = B.allocData(8 * N * N, 8);
  uint64_t CAddr = B.allocData(8 * N * N, 8);
  for (uint64_t I = 0; I != N * N; ++I) {
    B.initDataU64(AAddr + 8 * I, A[I]);
    B.initDataU64(BAddr + 8 * I, Bm[I]);
  }

  B.emitLoadConst(1, AAddr);
  B.emitLoadConst(2, BAddr);
  B.emitLoadConst(20, CAddr);
  B.emitLoadConst(13, 8 * N); // row stride in bytes
  B.emitLoadConst(16, N);
  B.emit(Inst::li(4, 0));    // i
  B.emit(Inst::mv(18, 1));   // row pointer into A
  B.emit(Inst::li(19, 0));   // checksum
  K.prologue();

  auto ILoop = B.label();
  auto JLoop = B.label();
  auto KLoop = B.label();
  B.bind(ILoop);
  B.emit(Inst::li(5, 0)); // j
  B.bind(JLoop);
  B.emit(Inst::li(7, 0));  // acc
  B.emit(Inst::mv(8, 18)); // pA = &A[i][0]
  B.emit(Inst::alui(Opcode::Slli, 9, 5, 3));
  B.emit(Inst::add(9, 9, 2)); // pB = &B[0][j]
  B.emit(Inst::mv(6, 16));    // k = N
  B.bind(KLoop);
  B.emit(Inst::ld(10, 8, 0));
  B.emit(Inst::ld(11, 9, 0));
  B.emit(Inst::alu(Opcode::Mul, 12, 10, 11));
  B.emit(Inst::add(7, 7, 12));
  B.emit(Inst::addi(8, 8, 8));
  B.emit(Inst::add(9, 9, 13));
  B.emit(Inst::addi(6, 6, -1));
  B.emitBranch(Opcode::Bne, 6, 0, KLoop);
  B.emit(Inst::st(7, 20, 0)); // C[i][j]
  B.emit(Inst::addi(20, 20, 8));
  B.emit(Inst::add(19, 19, 7)); // checksum += dot
  K.site(0);                    // per-(i,j) edge
  B.emit(Inst::addi(5, 5, 1));
  B.emitBranch(Opcode::Blt, 5, 16, JLoop);
  B.emit(Inst::add(18, 18, 13));
  B.emit(Inst::addi(4, 4, 1));
  B.emitBranch(Opcode::Blt, 4, 16, ILoop);

  KernelProgram Out;
  Out.Name = "matmul";
  Out.NumStaticSites = 1;
  uint64_t Checksum = 0;
  for (uint64_t I = 0; I != N; ++I)
    for (uint64_t J = 0; J != N; ++J) {
      uint64_t Acc = 0;
      for (uint64_t Kk = 0; Kk != N; ++Kk)
        Acc += A[I * N + Kk] * Bm[Kk * N + J];
      Checksum += Acc;
    }
  Out.ExpectedResult = Checksum;
  Out.DynamicSiteVisits = N * N;
  Out.Prog = K.finish(19);
  return Out;
}

// --- listsum: pointer-chasing linked-list sum. ----------------------------

KernelProgram buildListSum(const KernelConfig &Config) {
  uint64_t N = Config.Size ? Config.Size : 4000;

  KernelBuild K(Config.Instr, 1);
  ProgramBuilder &B = K.B;

  Xoshiro256 Rng(Config.Seed);
  // Nodes are {value, next} pairs; the chain visits a random permutation
  // so consecutive loads hit scattered lines (latency bound).
  uint64_t Nodes = B.allocData(16 * N, 8);
  std::vector<uint64_t> Order(N);
  for (uint64_t I = 0; I != N; ++I)
    Order[I] = I;
  for (uint64_t I = N - 1; I > 0; --I)
    std::swap(Order[I], Order[Rng.nextBelow(I + 1)]);

  uint64_t Sum = 0;
  for (uint64_t I = 0; I != N; ++I) {
    uint64_t Node = Nodes + 16 * Order[I];
    uint64_t Value = Rng.nextBelow(1 << 30);
    Sum += Value;
    B.initDataU64(Node, Value);
    B.initDataU64(Node + 8,
                  I + 1 == N ? 0 : Nodes + 16 * Order[I + 1]);
  }

  B.emitLoadConst(1, Nodes + 16 * Order[0]); // head
  B.emit(Inst::li(3, 0));
  K.prologue();

  auto Loop = B.label();
  B.bind(Loop);
  B.emit(Inst::ld(2, 1, 0));
  B.emit(Inst::add(3, 3, 2));
  B.emit(Inst::ld(1, 1, 8));
  K.site(0); // per-node edge
  B.emitBranch(Opcode::Bne, 1, 0, Loop);

  KernelProgram Out;
  Out.Name = "listsum";
  Out.NumStaticSites = 1;
  Out.ExpectedResult = Sum;
  Out.DynamicSiteVisits = N;
  Out.Prog = K.finish(3);
  return Out;
}

} // namespace

const char *bor::kernelName(KernelKind Kind) {
  switch (Kind) {
  case KernelKind::Crc32:
    return "crc32";
  case KernelKind::Sort:
    return "sort";
  case KernelKind::StrSearch:
    return "strsearch";
  case KernelKind::MatMul:
    return "matmul";
  case KernelKind::ListSum:
    return "listsum";
  }
  assert(false && "unknown kernel");
  return "?";
}

KernelProgram bor::buildKernel(const KernelConfig &Config) {
  switch (Config.Kind) {
  case KernelKind::Crc32:
    return buildCrc32(Config);
  case KernelKind::Sort:
    return buildSort(Config);
  case KernelKind::StrSearch:
    return buildStrSearch(Config);
  case KernelKind::MatMul:
    return buildMatMul(Config);
  case KernelKind::ListSum:
    return buildListSum(Config);
  }
  assert(false && "unknown kernel");
  return KernelProgram();
}

std::vector<KernelProgram>
bor::buildKernelSuite(const InstrumentationConfig &Instr) {
  std::vector<KernelProgram> Suite;
  for (KernelKind Kind :
       {KernelKind::Crc32, KernelKind::Sort, KernelKind::StrSearch,
        KernelKind::MatMul, KernelKind::ListSum}) {
    KernelConfig Config;
    Config.Kind = Kind;
    Config.Instr = Instr;
    Suite.push_back(buildKernel(Config));
  }
  return Suite;
}
