//===- workloads/AppGen.h - Synthetic managed-runtime applications -------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic stand-ins for the DaCapo applications of the Figure-12
/// overhead experiment: programs with many methods dispatched indirectly
/// through a function table from a driver loop replaying a method-call
/// sequence, with Zipf-skewed hot methods, nested direct calls, per-method
/// data accesses and inner loops. Each method carries one instrumentation
/// site at its entry (method execution frequency profiling — the same
/// profile Jikes collects in Section 5.2), wrapped in the configured
/// sampling framework: No-Duplication checks in front of every site, or
/// Full-Duplication with a per-method clean/instrumented body pair chosen
/// by a check at method entry (Figure 11).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_WORKLOADS_APPGEN_H
#define BOR_WORKLOADS_APPGEN_H

#include "instr/Transform.h"

#include <map>
#include <string>
#include <vector>

namespace bor {

struct AppConfig {
  std::string Name = "app";
  uint32_t NumMethods = 48;
  /// Length of the driver's indirect-call sequence (top-level invocations).
  uint64_t NumTopCalls = 40000;
  /// Iterations of each method's inner work loop.
  unsigned InnerIters = 12;
  /// Probability that a method (in the callers' half of the id space)
  /// makes a direct call to a hotter child method.
  double CallFanoutProb = 0.5;
  /// Zipf skew of the top-level call distribution.
  double ZipfSkew = 1.0;
  /// Fraction of the top-level sequence emitted as alternating two-method
  /// patterns (the jython-style periodicity; affects accuracy, not
  /// overhead, but keeps the workloads structurally honest).
  double AlternatingFraction = 0.0;
  uint64_t Seed = 1;
  InstrumentationConfig Instr;

  // --- Adaptive-JIT scenario support (see examples/adaptive_jit.cpp) ---
  /// Methods the "optimizing compiler" has recompiled: their bodies run
  /// with half the inner-loop work (the speedup the JIT bought).
  std::vector<uint32_t> OptimizedMethods;
  /// Per-method instrumentation override (e.g. optimized methods keep brr
  /// sampling while baseline-compiled ones stay fully instrumented).
  /// Overrides require Instr.Dup == NoDuplication.
  std::map<uint32_t, SamplingFramework> MethodFramework;
};

struct AppProgram {
  Program Prog;
  uint32_t NumMethods = 0;
  /// Base of the per-method invocation-counter table.
  uint64_t ProfileBase = 0;
  /// Total method invocations the run will execute (driver calls plus
  /// nested direct calls), i.e. dynamic instrumentation-site visits.
  uint64_t DynamicSiteVisits = 0;
};

AppProgram buildApp(const AppConfig &Config);

/// The five application models of Figure 12 (bloat, fop, luindex,
/// lusearch, jython analogues), without instrumentation configured; the
/// bench harness fills Instr per experiment arm.
std::vector<AppConfig> dacapoAppAnalogues();

} // namespace bor

#endif // BOR_WORKLOADS_APPGEN_H
