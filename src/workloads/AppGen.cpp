//===- workloads/AppGen.cpp - Synthetic managed-runtime applications -----===//

#include "workloads/AppGen.h"

#include "instr/Sites.h"
#include "support/Rng.h"
#include "workloads/Microbench.h" // marker ids

#include <algorithm>
#include <array>
#include <memory>

using namespace bor;

namespace {

enum : uint8_t {
  RSeq = 1,      ///< driver: call-sequence cursor.
  RSeqEnd = 2,   ///< driver: sequence end.
  RFptrs = 3,    ///< driver: function-table base.
  RTarget = 4,   ///< driver: method id, then code address.
  RBodyScratch = 14,
  RIter = 16,    ///< method inner-loop counter.
  RAcc1 = 17,    ///< method work accumulators (parallel chains).
  RAcc2 = 18,
  RMethodData = 19, ///< per-method data-slot table base.
  RSlot = 20,
  RAcc3 = 21,
  RAcc4 = 22,
};

/// Per-method shape decisions, fixed by the seed so every framework variant
/// of an application has identical non-framework code.
struct MethodShape {
  int32_t Child = -1; ///< callee method id, or -1 for none.
};

void emitMethodBody(ProgramBuilder &B, unsigned InnerIters,
                    uint32_t Method, const MethodShape &Shape,
                    const std::vector<ProgramBuilder::LabelId> &Entries) {
  // Inner work loop: parallel ALU chains, so the baseline keeps the fetch
  // and issue slots busy and framework instructions have a real cost (a
  // serial chain would hide them in idle slots).
  B.emit(Inst::li(RIter, static_cast<int32_t>(InnerIters)));
  ProgramBuilder::LabelId Work = B.label();
  B.bind(Work);
  B.emit(Inst::add(RAcc1, RAcc1, RIter));
  B.emit(Inst::alu(Opcode::Xor, RAcc2, RAcc2, RIter));
  B.emit(Inst::addi(RAcc3, RAcc3, 3));
  B.emit(Inst::alui(Opcode::Xori, RAcc4, RAcc4, 0x55));
  B.emit(Inst::addi(RIter, RIter, -1));
  B.emitBranch(Opcode::Bne, RIter, RegZero, Work);

  // Touch this method's data slot.
  B.emit(Inst::ld(RSlot, RMethodData, static_cast<int32_t>(8 * Method)));
  B.emit(Inst::addi(RSlot, RSlot, 1));
  B.emit(Inst::st(RSlot, RMethodData, static_cast<int32_t>(8 * Method)));

  // Optional nested direct call (callee-save of the link register).
  if (Shape.Child >= 0) {
    B.emit(Inst::addi(RegSp, RegSp, -8));
    B.emit(Inst::st(RegLr, RegSp, 0));
    B.emitJal(RegLr, Entries[Shape.Child]);
    B.emit(Inst::ld(RegLr, RegSp, 0));
    B.emit(Inst::addi(RegSp, RegSp, 8));
  }
  B.emit(Inst::ret());
}

std::vector<uint32_t> generateCallSequence(const AppConfig &Config) {
  Xoshiro256 Rng(Config.Seed);
  ZipfSampler Zipf(Config.NumMethods, Config.ZipfSkew);
  std::vector<uint32_t> Seq;
  Seq.reserve(Config.NumTopCalls);
  while (Seq.size() < Config.NumTopCalls) {
    if (Rng.nextBool(Config.AlternatingFraction)) {
      // An alternating two-method run (jython-style periodicity).
      uint64_t Len = 200 + Rng.nextBelow(2000);
      for (uint64_t I = 0; I != Len && Seq.size() < Config.NumTopCalls; ++I)
        Seq.push_back(I % 2 == 0 ? 0 : 1);
      continue;
    }
    Seq.push_back(static_cast<uint32_t>(Zipf.sample(Rng)));
  }
  return Seq;
}

} // namespace

AppProgram bor::buildApp(const AppConfig &Config) {
  assert(Config.NumMethods >= 4 && "applications need a few methods");
  ProgramBuilder B;
  AppProgram Out;
  Out.NumMethods = Config.NumMethods;

  // Method shapes: the lower (hotter) half of the id space may call a leaf
  // in the upper half. Derived from a separate RNG stream so the shapes do
  // not depend on the instrumentation configuration.
  Xoshiro256 ShapeRng(Config.Seed ^ 0x5ca1ab1e);
  std::vector<MethodShape> Shapes(Config.NumMethods);
  uint32_t Half = Config.NumMethods / 2;
  for (uint32_t M = 0; M != Half; ++M)
    if (ShapeRng.nextBool(Config.CallFanoutProb))
      Shapes[M].Child =
          static_cast<int32_t>(Half + ShapeRng.nextBelow(Half));

  assert((Config.MethodFramework.empty() ||
          Config.Instr.Dup == DuplicationMode::NoDuplication) &&
         "per-method framework overrides require No-Duplication");

  // --- Data layout (small framework tables first). ----------------------
  // One emitter per framework that appears (the default plus any
  // per-method overrides), created up front so counter globals stay within
  // displacement range of RegGlobals.
  std::array<std::unique_ptr<SamplingFrameworkEmitter>, 4> Emitters;
  auto EmitterFor =
      [&](SamplingFramework F) -> SamplingFrameworkEmitter & {
    auto &Slot = Emitters[static_cast<size_t>(F)];
    assert(Slot && "framework emitter was not pre-created");
    return *Slot;
  };
  {
    auto Ensure = [&](SamplingFramework F) {
      auto &Slot = Emitters[static_cast<size_t>(F)];
      if (!Slot) {
        InstrumentationConfig C = Config.Instr;
        C.Framework = F;
        Slot = std::make_unique<SamplingFrameworkEmitter>(B, C,
                                                          DefaultDataBase);
      }
    };
    Ensure(Config.Instr.Framework);
    for (const auto &[Method, F] : Config.MethodFramework) {
      assert(Method < Config.NumMethods && "override for unknown method");
      Ensure(F);
    }
  }
  SamplingFrameworkEmitter &Emitter = EmitterFor(Config.Instr.Framework);
  ProfileTable Invocations(B, "invocations", Config.NumMethods);
  Out.ProfileBase = Invocations.baseAddr();
  uint64_t MethodData = B.allocData(8 * Config.NumMethods, 8);
  B.nameData("methoddata", MethodData);
  uint64_t FptrTable = B.allocData(8 * Config.NumMethods, 8);
  B.nameData("fptrs", FptrTable);
  uint64_t StackBase = B.allocData(16 * 1024, 8);
  uint64_t StackTop = StackBase + 16 * 1024;

  std::vector<uint32_t> Seq = generateCallSequence(Config);
  uint64_t SeqBase = B.allocData(8 * Seq.size(), 8);
  for (size_t I = 0; I != Seq.size(); ++I)
    B.initDataU64(SeqBase + 8 * I, Seq[I]);
  B.nameData("callseq", SeqBase);

  Out.DynamicSiteVisits = 0;
  for (uint32_t Id : Seq)
    Out.DynamicSiteVisits += 1 + (Shapes[Id].Child >= 0 ? 1 : 0);

  // --- Prologue. ---------------------------------------------------------
  B.emitLoadConst(RegGlobals, DefaultDataBase);
  B.emitLoadConst(RegProfBase, Invocations.baseAddr());
  B.emitLoadConst(RMethodData, MethodData);
  B.emitLoadConst(RegSp, StackTop);
  B.emitLoadConst(RSeq, SeqBase);
  B.emitLoadConst(RSeqEnd, SeqBase + 8 * Seq.size());
  B.emitLoadConst(RFptrs, FptrTable);
  B.emit(Inst::li(RAcc1, 0));
  B.emit(Inst::li(RAcc2, 0));
  for (auto &E : Emitters)
    if (E)
      E->emitSetup();
  B.emit(Inst::marker(MarkerRoiBegin));

  // --- Driver: replay the call sequence through the function table. ------
  ProgramBuilder::LabelId Driver = B.label();
  B.bind(Driver);
  B.emit(Inst::ld(RTarget, RSeq, 0));
  B.emit(Inst::alui(Opcode::Slli, RTarget, RTarget, 3));
  B.emit(Inst::add(RTarget, RTarget, RFptrs));
  B.emit(Inst::ld(RTarget, RTarget, 0));
  B.emit(Inst::addi(RSeq, RSeq, 8));
  B.emit(Inst::jalr(RegLr, RTarget));
  B.emitBranch(Opcode::Bne, RSeq, RSeqEnd, Driver);

  B.emit(Inst::marker(MarkerRoiEnd));
  B.emit(Inst::halt());

  // --- Methods. -----------------------------------------------------------
  bool FullDup = Config.Instr.Dup == DuplicationMode::FullDuplication &&
                 (Config.Instr.Framework == SamplingFramework::CounterBased ||
                  Config.Instr.Framework == SamplingFramework::BrrBased);

  std::vector<ProgramBuilder::LabelId> Entries;
  Entries.reserve(Config.NumMethods);
  for (uint32_t M = 0; M != Config.NumMethods; ++M)
    Entries.push_back(B.label());

  std::vector<bool> Optimized(Config.NumMethods, false);
  for (uint32_t M : Config.OptimizedMethods) {
    assert(M < Config.NumMethods && "optimized id out of range");
    Optimized[M] = true;
  }

  std::vector<uint64_t> EntryAddrs(Config.NumMethods, 0);
  for (uint32_t M = 0; M != Config.NumMethods; ++M) {
    B.bind(Entries[M]);
    EntryAddrs[M] = Program::pcForIndex(B.here());

    auto SiteBody = [&](ProgramBuilder &PB) {
      Invocations.emitIncrement(PB, M, RegProfBase,
                                Invocations.baseAddr(), RBodyScratch);
    };

    auto OverrideIt = Config.MethodFramework.find(M);
    SamplingFrameworkEmitter &MethodEmitter =
        OverrideIt == Config.MethodFramework.end()
            ? Emitter
            : EmitterFor(OverrideIt->second);
    // The "optimized" compile of a method does half the inner-loop work.
    unsigned Iters = Optimized[M]
                         ? std::max(1u, Config.InnerIters / 2)
                         : Config.InnerIters;

    if (FullDup) {
      // Figure 11: a check at method entry selects the instrumented
      // duplicate; the clean version carries zero instrumentation.
      ProgramBuilder::LabelId Dup = B.label();
      MethodEmitter.emitDuplicationCheck(Dup);
      emitMethodBody(B, Iters, M, Shapes[M], Entries);
      B.bind(Dup);
      MethodEmitter.emitDupPrologue();
      MethodEmitter.emitUnconditionalSite(SiteBody);
      emitMethodBody(B, Iters, M, Shapes[M], Entries);
    } else {
      MethodEmitter.emitSite(SiteBody);
      emitMethodBody(B, Iters, M, Shapes[M], Entries);
    }
    // Out-of-line uncommon blocks live at the end of their method, as in
    // the Jikes implementation (Section 4.1).
    MethodEmitter.flushOutOfLine();
  }

  for (uint32_t M = 0; M != Config.NumMethods; ++M)
    B.initDataU64(FptrTable + 8 * M, EntryAddrs[M]);

  Out.Prog = B.finish();
  return Out;
}

std::vector<AppConfig> bor::dacapoAppAnalogues() {
  std::vector<AppConfig> Apps(5);

  Apps[0].Name = "bloat";
  Apps[0].NumMethods = 64;
  Apps[0].NumTopCalls = 36000;
  Apps[0].InnerIters = 4;
  Apps[0].CallFanoutProb = 0.55;
  Apps[0].ZipfSkew = 1.0;
  Apps[0].Seed = 0xb10a7;

  Apps[1].Name = "fop";
  Apps[1].NumMethods = 48;
  Apps[1].NumTopCalls = 24000;
  Apps[1].InnerIters = 5;
  Apps[1].CallFanoutProb = 0.4;
  Apps[1].ZipfSkew = 1.1;
  Apps[1].Seed = 0xf0b7;

  Apps[2].Name = "luindex";
  Apps[2].NumMethods = 40;
  Apps[2].NumTopCalls = 40000;
  Apps[2].InnerIters = 3;
  Apps[2].CallFanoutProb = 0.5;
  Apps[2].ZipfSkew = 0.9;
  Apps[2].Seed = 0x10d57;

  Apps[3].Name = "lusearch";
  Apps[3].NumMethods = 32;
  Apps[3].NumTopCalls = 44000;
  Apps[3].InnerIters = 3;
  Apps[3].CallFanoutProb = 0.45;
  Apps[3].ZipfSkew = 0.9;
  Apps[3].Seed = 0x105ea;

  Apps[4].Name = "jython";
  Apps[4].NumMethods = 56;
  Apps[4].NumTopCalls = 32000;
  Apps[4].InnerIters = 4;
  Apps[4].CallFanoutProb = 0.5;
  Apps[4].ZipfSkew = 0.8;
  Apps[4].AlternatingFraction = 0.3;
  Apps[4].Seed = 0x94710;

  return Apps;
}
