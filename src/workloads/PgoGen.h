//===- workloads/PgoGen.h - Pessimal-layout PGO workload ------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload the pgo_layout experiment optimizes: a self-checking
/// microbenchmark whose baseline layout is deliberately pessimal — every
/// hot arm is reached through a *taken* conditional branch that hops over
/// an inline cold chunk, and every helper function carries its cold tail
/// inline — exactly the shape the layout optimizer exists to fix. The
/// generator also produces an instrumented profiling variant (the same
/// program with a sampling framework and per-block profile counters
/// spliced in via the CFG-path transform) and the site-to-block map the
/// optimizer needs to consume the collected counts.
///
/// Hot/cold decisions come from a register-resident LCG, so control flow
/// is deterministic per seed, identical across layout variants, and
/// independent of the brr decider — the checksum each variant stores to
/// the data segment must match bit-for-bit, which the experiment uses as
/// its execution-equivalence self-check.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_WORKLOADS_PGOGEN_H
#define BOR_WORKLOADS_PGOGEN_H

#include "cfg/Cfg.h"
#include "instr/Transform.h"
#include "isa/Program.h"

#include <vector>

namespace bor {

struct PgoGenConfig {
  uint64_t Iters = 2000;  ///< ROI loop iterations
  unsigned Arms = 6;      ///< biased decision points per iteration
  unsigned ColdChunk = 24; ///< straight-line insts in each inline cold path
  unsigned Functions = 2; ///< helper functions (cold tails inline)
  uint64_t Seed = 1;      ///< varies bit selections and LCG increments
  /// Framework for the profiling variant. Dup/IncludeBody are forced to
  /// NoDuplication/true — profile counters are the body.
  InstrumentationConfig Instr;
};

struct PgoWorkload {
  Program Baseline;     ///< pessimal layout, uninstrumented
  Program Instrumented; ///< Baseline + framework + profile-count sites
  /// Profile slot i counts entries of Baseline-CFG block SiteBlocks[i]
  /// (block ids are stable across every buildModule(Baseline) lift).
  std::vector<cfg::BlockId> SiteBlocks;
  uint64_t ProfileBase = 0; ///< profile table base address (both variants)
  size_t NumSites = 0;
  uint64_t ChecksumAddr = 0; ///< data address of the self-check checksum
};

/// Builds the baseline once, lifts it, and derives the instrumented
/// variant and site map from the same instruction stream. Deterministic
/// for a given config.
PgoWorkload buildPgoWorkload(const PgoGenConfig &C);

} // namespace bor

#endif // BOR_WORKLOADS_PGOGEN_H
