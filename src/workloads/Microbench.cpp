//===- workloads/Microbench.cpp - The Section 5.3 microbenchmark ---------===//

#include "workloads/Microbench.h"

#include "instr/Sites.h"

using namespace bor;

namespace {

/// Registers used by the microbenchmark (RegScratch/r15 stays reserved for
/// the sampling framework, r14 for instrumentation bodies).
enum : uint8_t {
  RText = 1,
  RTextEnd = 2,
  RSumUpper = 3,
  RSumLower = 4,
  RSumOther = 5,
  RChar = 6,
  RTmp1 = 7,
  RTmp2 = 8,
  RBodyScratch = 14,
  RUpperA = 20,  ///< 'A'
  RUpperEnd = 21, ///< 'Z'+1
  RLowerA = 22,  ///< 'a'
  RLowerEnd = 23, ///< 'z'+1
  RDist = 26,
};

/// How sites are materialized inside one copy of the loop body.
enum class SiteMode {
  PerSiteFramework, ///< No-Duplication (or Full/None): wrap each site.
  CleanCopy,        ///< Full-Duplication clean version: no sites at all.
  InstrumentedCopy, ///< Full-Duplication dup version: unconditional sites.
};

void emitLoopBody(ProgramBuilder &B, SamplingFrameworkEmitter &Emitter,
                  const ProfileTable &Edges, uint64_t ProfileBase,
                  SiteMode Mode, ProgramBuilder::LabelId LoopHead,
                  ProgramBuilder::LabelId Exit) {
  auto SiteBody = [&](size_t Site) {
    return [&Edges, ProfileBase, Site](ProgramBuilder &PB) {
      Edges.emitIncrement(PB, Site, RegProfBase, ProfileBase, RBodyScratch);
    };
  };
  auto EmitSite = [&](size_t Site) {
    switch (Mode) {
    case SiteMode::PerSiteFramework:
      Emitter.emitSite(SiteBody(Site));
      return;
    case SiteMode::CleanCopy:
      return;
    case SiteMode::InstrumentedCopy:
      Emitter.emitUnconditionalSite(SiteBody(Site));
      return;
    }
  };

  ProgramBuilder::LabelId Upper = B.label();
  ProgramBuilder::LabelId Lower = B.label();
  ProgramBuilder::LabelId Other = B.label();
  ProgramBuilder::LabelId Next = B.label();

  // Edge profile of the loop: the entry edge (site 0) and rejoin edge
  // (site 4) execute every iteration; exactly one class edge (sites 1-3)
  // executes per character. Three site visits per character in total, so
  // Full-Duplication's single per-iteration check amortizes three
  // No-Duplication checks — the effect Figure 11 is after.
  EmitSite(0);
  B.emit(Inst::ldb(RChar, RText, 0));
  B.emit(Inst::addi(RText, RText, 1));
  // Character classification: the data-dependent branches whose ~84.5%
  // prediction accuracy characterizes the baseline (Section 5.3).
  B.emitBranch(Opcode::Blt, RChar, RUpperA, Other);   // c < 'A'  -> other
  B.emitBranch(Opcode::Blt, RChar, RUpperEnd, Upper); // c <= 'Z' -> upper
  B.emitBranch(Opcode::Blt, RChar, RLowerA, Other);   // c < 'a'  -> other
  B.emitBranch(Opcode::Blt, RChar, RLowerEnd, Lower); // c <= 'z' -> lower

  B.bind(Other);
  EmitSite(3);
  B.emit(Inst::add(RSumOther, RSumOther, RChar));
  B.emitJmp(Next);

  B.bind(Upper);
  EmitSite(1);
  B.emit(Inst::add(RSumUpper, RSumUpper, RChar));
  B.emitJmp(Next);

  B.bind(Lower);
  EmitSite(2);
  B.emit(Inst::add(RSumLower, RSumLower, RChar));

  B.bind(Next);
  EmitSite(4);
  // Character-distribution update: dist[c]++.
  B.emit(Inst::alui(Opcode::Slli, RTmp1, RChar, 3));
  B.emit(Inst::add(RTmp1, RTmp1, RDist));
  B.emit(Inst::ld(RTmp2, RTmp1, 0));
  B.emit(Inst::addi(RTmp2, RTmp2, 1));
  B.emit(Inst::st(RTmp2, RTmp1, 0));

  B.emitBranch(Opcode::Bne, RText, RTextEnd, LoopHead);
  if (Mode == SiteMode::CleanCopy || Mode == SiteMode::PerSiteFramework)
    B.emitJmp(Exit);
  // The instrumented copy falls through to Exit, which the caller binds
  // immediately after it.
}

} // namespace

MicrobenchProgram bor::buildMicrobench(const MicrobenchConfig &Config) {
  ProgramBuilder B;
  MicrobenchProgram Out;

  // Framework globals and small tables first so 16-bit displacements off
  // RegGlobals/RegProfBase reach them; the big text buffer goes last.
  SamplingFrameworkEmitter Emitter(B, Config.Instr, DefaultDataBase);
  ProfileTable Edges(B, "edges", 5);
  uint64_t ResultBase = B.allocData(3 * 8, 8);
  B.nameData("results", ResultBase);
  uint64_t DistBase = B.allocData(256 * 8, 8);
  B.nameData("dist", DistBase);

  std::vector<uint8_t> Text = generateText(Config.Text);
  uint64_t TextBase = B.allocData(Text.size(), 8);
  B.initDataBytes(TextBase, Text);
  B.nameData("text", TextBase);

  Out.ProfileBase = Edges.baseAddr();
  Out.ResultBase = ResultBase;
  Out.DynamicSiteVisits = 3 * Text.size();

  // --- Prologue (outside the timed region). -----------------------------
  B.emitLoadConst(RegGlobals, DefaultDataBase);
  B.emitLoadConst(RegProfBase, Edges.baseAddr());
  B.emitLoadConst(RDist, DistBase);
  B.emitLoadConst(RText, TextBase);
  B.emitLoadConst(RTextEnd, TextBase + Text.size());
  B.emit(Inst::li(RSumUpper, 0));
  B.emit(Inst::li(RSumLower, 0));
  B.emit(Inst::li(RSumOther, 0));
  B.emit(Inst::li(RUpperA, 'A'));
  B.emit(Inst::li(RUpperEnd, 'Z' + 1));
  B.emit(Inst::li(RLowerA, 'a'));
  B.emit(Inst::li(RLowerEnd, 'z' + 1));
  Emitter.emitSetup();
  B.emit(Inst::marker(MarkerRoiBegin));

  // --- The character-processing loop. -----------------------------------
  ProgramBuilder::LabelId LoopHead = B.label();
  ProgramBuilder::LabelId Exit = B.label();
  bool FullDup = Config.Instr.Dup == DuplicationMode::FullDuplication &&
                 (Config.Instr.Framework == SamplingFramework::CounterBased ||
                  Config.Instr.Framework == SamplingFramework::BrrBased);

  B.bind(LoopHead);
  if (FullDup) {
    ProgramBuilder::LabelId DupBody = B.label();
    Emitter.emitDuplicationCheck(DupBody);
    emitLoopBody(B, Emitter, Edges, Edges.baseAddr(), SiteMode::CleanCopy,
                 LoopHead, Exit);
    B.bind(DupBody);
    Emitter.emitDupPrologue();
    emitLoopBody(B, Emitter, Edges, Edges.baseAddr(),
                 SiteMode::InstrumentedCopy, LoopHead, Exit);
  } else {
    emitLoopBody(B, Emitter, Edges, Edges.baseAddr(),
                 SiteMode::PerSiteFramework, LoopHead, Exit);
  }
  B.bind(Exit);

  // --- Epilogue (outside the timed region). -----------------------------
  B.emit(Inst::marker(MarkerRoiEnd));
  auto StoreResult = [&](uint8_t Reg, unsigned Slot) {
    int64_t Disp = static_cast<int64_t>(ResultBase + 8 * Slot) -
                   static_cast<int64_t>(DefaultDataBase);
    B.emit(Inst::st(Reg, RegGlobals, static_cast<int32_t>(Disp)));
  };
  StoreResult(RSumUpper, 0);
  StoreResult(RSumLower, 1);
  StoreResult(RSumOther, 2);
  B.emit(Inst::halt());

  // Out-of-line uncommon blocks live past the halt, reachable only from
  // their sampling checks (the Figure-8 layout).
  Emitter.flushOutOfLine();

  Out.CheckBranchPcs = Emitter.checkBranchPcs();
  Out.Prog = B.finish();
  return Out;
}
