//===- workloads/Kernels.h - A small suite of instrumentable kernels -----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Five self-checking BOR-RISC kernels with very different pipeline
/// personalities, used to test the sampling frameworks across code shapes
/// beyond the Section 5.3 microbenchmark (supporting the paper's claim
/// that with brr "programmers can exhaustively instrument their code with
/// negligible impact on performance"):
///
///   crc32      bit-serial CRC-32: data-dependent branch per bit,
///              branch-misprediction bound;
///   sort       insertion sort: nested data-dependent loops, store heavy;
///   strsearch  naive substring search: short inner loops, early exits;
///   matmul     dense u64 matrix multiply: multiplier and ILP bound;
///   listsum    pointer-chasing linked-list sum: load-latency bound.
///
/// Every kernel writes a checksum to the data symbol "result"; builders
/// return the expected value (computed by an independent C++ reference on
/// the same generated input), so any simulator or framework bug that
/// perturbs semantics is caught by comparing one u64. Instrumentation
/// sites sit on each kernel's interesting edges and are wrapped by the
/// configured sampling framework.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_WORKLOADS_KERNELS_H
#define BOR_WORKLOADS_KERNELS_H

#include "instr/Transform.h"

#include <string>
#include <vector>

namespace bor {

enum class KernelKind {
  Crc32,
  Sort,
  StrSearch,
  MatMul,
  ListSum,
};

const char *kernelName(KernelKind K);

struct KernelConfig {
  KernelKind Kind = KernelKind::Crc32;
  /// Problem size; interpretation is per-kernel (bytes, elements, text
  /// length, matrix dimension, nodes). 0 = the kernel's default.
  uint64_t Size = 0;
  uint64_t Seed = 0x5eed;
  InstrumentationConfig Instr;
};

struct KernelProgram {
  std::string Name;
  Program Prog;
  /// Value the program must leave at the "result" symbol.
  uint64_t ExpectedResult = 0;
  /// Instrumentation-site visits executed in the region of interest.
  uint64_t DynamicSiteVisits = 0;
  /// Static instrumentation sites.
  unsigned NumStaticSites = 0;
};

/// Builds one kernel.
KernelProgram buildKernel(const KernelConfig &Config);

/// Builds the whole suite with a common instrumentation configuration and
/// default sizes.
std::vector<KernelProgram> buildKernelSuite(const InstrumentationConfig &I);

} // namespace bor

#endif // BOR_WORKLOADS_KERNELS_H
