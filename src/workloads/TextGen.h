//===- workloads/TextGen.h - Synthetic character-stream generator --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The microbenchmark of Section 5.3 processes half a million characters of
/// Shakespearian plays, whose "words that are all upper-case or all
/// lower-case" give the character-class branches their ~84.5% baseline
/// prediction accuracy. This generator synthesizes text with the same
/// statistical structure: words of Zipf-ish length, each word uniformly
/// upper- or lower-case, with spaces, punctuation and digits mixed in.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_WORKLOADS_TEXTGEN_H
#define BOR_WORKLOADS_TEXTGEN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bor {

struct TextConfig {
  size_t NumChars = 500000;
  /// Probability that a word is all upper-case (stage directions, speaker
  /// names and emphatic lines in the plays).
  double UpperWordProb = 0.22;
  /// Probability that a separator position carries punctuation or a digit
  /// instead of a space.
  double OtherCharProb = 0.25;
  uint64_t Seed = 0x5eaf00d;
};

/// Character-class statistics of a generated text.
struct TextStats {
  uint64_t Upper = 0;
  uint64_t Lower = 0;
  uint64_t Other = 0;
};

std::vector<uint8_t> generateText(const TextConfig &Config);

TextStats classifyText(const std::vector<uint8_t> &Text);

} // namespace bor

#endif // BOR_WORKLOADS_TEXTGEN_H
