//===- workloads/TextGen.cpp - Synthetic character-stream generator ------===//

#include "workloads/TextGen.h"

#include "support/Rng.h"

using namespace bor;

std::vector<uint8_t> bor::generateText(const TextConfig &Config) {
  std::vector<uint8_t> Text;
  Text.reserve(Config.NumChars);
  Xoshiro256 Rng(Config.Seed);
  // Word lengths weighted toward short words, as in English prose.
  ZipfSampler LengthDist(10, 0.9);

  static const char Punct[] = {'.', ',', ';', '!', '?', '\'', '-',
                               '0', '1', '7', '9', '\n'};

  while (Text.size() < Config.NumChars) {
    bool Upper = Rng.nextBool(Config.UpperWordProb);
    size_t Len = 2 + LengthDist.sample(Rng);
    for (size_t I = 0; I != Len && Text.size() < Config.NumChars; ++I) {
      uint8_t Base = Upper ? 'A' : 'a';
      Text.push_back(static_cast<uint8_t>(Base + Rng.nextBelow(26)));
    }
    if (Text.size() >= Config.NumChars)
      break;
    if (Rng.nextBool(Config.OtherCharProb))
      Text.push_back(
          static_cast<uint8_t>(Punct[Rng.nextBelow(sizeof(Punct))]));
    else
      Text.push_back(' ');
  }
  return Text;
}

TextStats bor::classifyText(const std::vector<uint8_t> &Text) {
  TextStats S;
  for (uint8_t C : Text) {
    if (C >= 'A' && C <= 'Z')
      ++S.Upper;
    else if (C >= 'a' && C <= 'z')
      ++S.Lower;
    else
      ++S.Other;
  }
  return S;
}
