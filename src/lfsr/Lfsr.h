//===- lfsr/Lfsr.h - Linear feedback shift register model ----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Fibonacci linear feedback shift register, modelled exactly as in the
/// paper's Figure 6: on each update every bit shifts one position toward the
/// LSB, the LSB is shifted out, and the MSB receives the XOR of a selected
/// set of tap bits of the previous state. A maximal-length tap selection
/// cycles through all 2^n - 1 nonzero states.
///
/// The register also supports the "shift-back" recovery of Section 3.4: a
/// step can be undone exactly given the bit it shifted out, which is how a
/// deterministic implementation checkpoints the LFSR across pipeline
/// squashes without copying the whole register.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_LFSR_LFSR_H
#define BOR_LFSR_LFSR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace bor {

/// Fibonacci LFSR with configurable width (2..64) and tap mask.
///
/// Bit 0 is the LSB (the bit shifted out on a step); bit Width-1 is the MSB
/// (the bit receiving the feedback XOR). The tap mask selects the state bits
/// XORed to form the feedback.
class Lfsr {
public:
  /// \p TapMask must select at least one bit within \p Width; \p Seed is
  /// masked to the register width and must be nonzero afterwards.
  Lfsr(unsigned Width, uint64_t TapMask, uint64_t Seed = 1);

  /// Builds an LFSR from polynomial-exponent notation (n, a, b, ...), the
  /// notation used in the paper's Section 4.2 (e.g. taps "(32, 31, 30, 10)"
  /// for x^32 + x^31 + x^30 + x^10 + 1). Exponent t maps to state bit n - t.
  static Lfsr fromPolynomial(unsigned Width,
                             const std::vector<unsigned> &PolyTaps,
                             uint64_t Seed = 1);

  unsigned width() const { return Width; }
  uint64_t tapMask() const { return TapMask; }
  uint64_t mask() const { return StateMask; }
  uint64_t state() const { return State; }

  /// Replaces the register contents. The value is masked to the register
  /// width and must be nonzero afterwards (the all-zero state is absorbing).
  void seed(uint64_t S);

  /// Reads an individual register bit (0 = LSB).
  bool bit(unsigned I) const {
    assert(I < Width && "LFSR bit index out of range");
    return (State >> I) & 1;
  }

  /// The feedback value the next step will shift into the MSB.
  bool feedbackBit() const;

  /// Advances one tick and returns the bit shifted out of the LSB, which is
  /// exactly the storage a deterministic implementation must retain to be
  /// able to undo the step (Section 3.4).
  bool step();

  /// Undoes one step() given the bit it shifted out. Asserts that the
  /// restored state is consistent with the feedback bit that was shifted in.
  void stepBack(bool ShiftedOutBit);

  /// The sequence period from the current state: steps until the state
  /// recurs. Intended for tests on small widths; cost is O(period).
  uint64_t measurePeriod() const;

private:
  unsigned Width;
  uint64_t TapMask;
  uint64_t StateMask;
  uint64_t State;
};

} // namespace bor

#endif // BOR_LFSR_LFSR_H
