//===- lfsr/Lfsr.cpp - Linear feedback shift register model ---------------===//

#include "lfsr/Lfsr.h"

#include <bit>

using namespace bor;

static uint64_t maskForWidth(unsigned Width) {
  assert(Width >= 2 && Width <= 64 && "LFSR width out of range");
  if (Width == 64)
    return ~0ULL;
  return (1ULL << Width) - 1;
}

Lfsr::Lfsr(unsigned Width, uint64_t TapMask, uint64_t Seed)
    : Width(Width), TapMask(TapMask), StateMask(maskForWidth(Width)) {
  assert((TapMask & ~StateMask) == 0 && "tap mask selects bits beyond width");
  assert(TapMask != 0 && "LFSR needs at least one tap");
  seed(Seed);
}

Lfsr Lfsr::fromPolynomial(unsigned Width,
                          const std::vector<unsigned> &PolyTaps,
                          uint64_t Seed) {
  uint64_t TapMask = 0;
  for (unsigned T : PolyTaps) {
    assert(T >= 1 && T <= Width && "polynomial exponent out of range");
    TapMask |= 1ULL << (Width - T);
  }
  return Lfsr(Width, TapMask, Seed);
}

void Lfsr::seed(uint64_t S) {
  State = S & StateMask;
  assert(State != 0 && "the all-zero LFSR state is absorbing");
}

bool Lfsr::feedbackBit() const {
  return std::popcount(State & TapMask) & 1;
}

bool Lfsr::step() {
  bool ShiftedOut = State & 1;
  uint64_t Feedback = feedbackBit() ? 1ULL : 0ULL;
  State = (State >> 1) | (Feedback << (Width - 1));
  assert(State != 0 && "maximal LFSR can never reach the zero state");
  return ShiftedOut;
}

void Lfsr::stepBack(bool ShiftedOutBit) {
  uint64_t FeedbackThatWasInserted = State >> (Width - 1);
  State = ((State << 1) | (ShiftedOutBit ? 1ULL : 0ULL)) & StateMask;
  assert(State != 0 && "shift-back produced the absorbing zero state");
  assert(FeedbackThatWasInserted == (feedbackBit() ? 1ULL : 0ULL) &&
         "shifted-out bit inconsistent with the feedback that was inserted");
  (void)FeedbackThatWasInserted;
}

uint64_t Lfsr::measurePeriod() const {
  Lfsr Copy = *this;
  uint64_t Start = Copy.state();
  uint64_t Steps = 0;
  do {
    Copy.step();
    ++Steps;
  } while (Copy.state() != Start);
  return Steps;
}
