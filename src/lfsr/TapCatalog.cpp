//===- lfsr/TapCatalog.cpp - Maximal-length LFSR tap selections ----------===//

#include "lfsr/TapCatalog.h"

using namespace bor;

// Classic maximal-length selections (XAPP052-style tables) for the default
// widths, plus the paper's Figure 6 4-bit example which corresponds to
// polynomial (4, 3).
static const std::vector<TapSet> &catalogStorage() {
  static const std::vector<TapSet> Catalog = {
      {"w4", 4, {4, 3}},
      {"w8", 8, {8, 6, 5, 4}},
      {"w16", 16, {16, 15, 13, 4}},
      {"w20", 20, {20, 17}},
      {"w24", 24, {24, 23, 22, 17}},
      {"w32", 32, {32, 22, 2, 1}},
  };
  return Catalog;
}

const TapSet &bor::defaultTapSet(unsigned Width) {
  for (const TapSet &T : catalogStorage())
    if (T.Width == Width)
      return T;
  assert(false && "no default tap set for this width");
  return catalogStorage().front();
}

const std::vector<TapSet> &bor::allTapSets() { return catalogStorage(); }

const std::vector<TapSet> &bor::paperSensitivityTapSets() {
  static const std::vector<TapSet> Sets = {
      {"taps4-a", 32, {32, 31, 30, 10}},
      {"taps4-b", 32, {32, 19, 18, 13}},
      {"taps6-a", 32, {32, 31, 30, 29, 28, 22}},
      {"taps6-b", 32, {32, 22, 16, 15, 12, 11}},
  };
  return Sets;
}
