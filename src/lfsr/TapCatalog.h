//===- lfsr/TapCatalog.h - Maximal-length LFSR tap selections ------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A catalog of maximal-length LFSR tap selections in polynomial-exponent
/// notation, including the four 32-bit configurations the paper's Section
/// 4.2 sensitivity study compares, and default selections for the widths a
/// branch-on-random unit would plausibly use (16 bits minimum to reach the
/// (1/2)^16 frequency; 20 bits as the paper's suggested design point that
/// keeps spaced AND-bit selections available at low probabilities).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_LFSR_TAPCATALOG_H
#define BOR_LFSR_TAPCATALOG_H

#include "lfsr/Lfsr.h"

#include <string>
#include <vector>

namespace bor {

/// A named maximal-length tap selection.
struct TapSet {
  std::string Name;
  unsigned Width;
  std::vector<unsigned> PolyTaps;

  Lfsr makeLfsr(uint64_t Seed = 1) const {
    return Lfsr::fromPolynomial(Width, PolyTaps, Seed);
  }
};

/// The default (maximal-length) tap selection for \p Width. Supported
/// widths: 4, 8, 16, 20, 24, 32; asserts on anything else.
const TapSet &defaultTapSet(unsigned Width);

/// All catalog entries, for parameterized property tests.
const std::vector<TapSet> &allTapSets();

/// The four 32-bit tap selections of the paper's Section 4.2 sensitivity
/// analysis: four taps at (32,31,30,10) and (32,19,18,13); six taps at
/// (32,31,30,29,28,22) and (32,22,16,15,12,11).
const std::vector<TapSet> &paperSensitivityTapSets();

} // namespace bor

#endif // BOR_LFSR_TAPCATALOG_H
