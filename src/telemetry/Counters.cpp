//===- telemetry/Counters.cpp - Low-overhead counter/metric registry ------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Counters.h"

#include "exp/Json.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace bor;
using namespace bor::telemetry;

std::atomic<bool> CounterRegistry::Enabled{false};

namespace {

/// Monotonic registry ids so the thread-local shard cache can never
/// confuse a new registry allocated at a dead registry's address.
std::atomic<uint64_t> NextRegistryId{1};

constexpr unsigned NumLogBuckets = 65; ///< bucket 0 = zeros, 1+log2 else.

unsigned logBucket(uint64_t Value) {
  if (Value == 0)
    return 0;
  unsigned B = 0;
  while (Value != 0) {
    Value >>= 1;
    ++B;
  }
  return B; // floor(log2(V)) + 1, in [1, 64]
}

} // namespace

CounterRegistry::CounterRegistry() : RegistryId(NextRegistryId++) {}

CounterRegistry::~CounterRegistry() = default;

CounterRegistry &CounterRegistry::instance() {
  static CounterRegistry R;
  return R;
}

unsigned CounterRegistry::counterId(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = CounterIds.find(Name);
  if (It != CounterIds.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(CounterNames.size());
  CounterNames.emplace_back(Name);
  CounterIds.emplace(std::string(Name), Id);
  return Id;
}

unsigned CounterRegistry::histogramId(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = HistogramIds.find(Name);
  if (It != HistogramIds.end())
    return It->second;
  unsigned Id = static_cast<unsigned>(HistogramNames.size());
  HistogramNames.emplace_back(Name);
  HistogramIds.emplace(std::string(Name), Id);
  return Id;
}

CounterRegistry::Shard &CounterRegistry::localShard() {
  // One cached (registry-id, shard) pair per thread. A thread touches at
  // most a couple of registries (the process one, plus test-local ones),
  // so a small vector beats a hash map.
  thread_local std::vector<std::pair<uint64_t, std::shared_ptr<Shard>>>
      Cache;
  for (auto &[Id, S] : Cache)
    if (Id == RegistryId)
      return *S;
  auto S = std::make_shared<Shard>();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Shards.push_back(S);
  }
  Cache.emplace_back(RegistryId, S);
  return *S;
}

void CounterRegistry::add(unsigned Id, uint64_t Delta) {
  Shard &S = localShard();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Counters.size() <= Id)
    S.Counters.resize(Id + 1, 0);
  S.Counters[Id] += Delta;
}

void CounterRegistry::observe(unsigned Id, uint64_t Value) {
  Shard &S = localShard();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (S.Histograms.size() <= Id)
    S.Histograms.resize(Id + 1);
  HistogramShard &H = S.Histograms[Id];
  if (H.Buckets.empty())
    H.Buckets.assign(NumLogBuckets, 0);
  ++H.Count;
  H.Sum += Value;
  H.Min = std::min(H.Min, Value);
  H.Max = std::max(H.Max, Value);
  ++H.Buckets[logBucket(Value)];
}

CounterSnapshot CounterRegistry::snapshot() const {
  // Copy the name tables and shard list under the registry lock, then
  // merge shard by shard under each shard's own lock.
  std::vector<std::string> CNames, HNames;
  std::vector<std::shared_ptr<Shard>> Merge;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    CNames = CounterNames;
    HNames = HistogramNames;
    Merge = Shards;
  }

  std::vector<uint64_t> Totals(CNames.size(), 0);
  std::vector<HistogramShard> Hists(HNames.size());
  for (const auto &S : Merge) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    for (size_t I = 0; I != S->Counters.size() && I != Totals.size(); ++I)
      Totals[I] += S->Counters[I];
    for (size_t I = 0; I != S->Histograms.size() && I != Hists.size(); ++I) {
      const HistogramShard &From = S->Histograms[I];
      if (From.Count == 0)
        continue;
      HistogramShard &To = Hists[I];
      if (To.Buckets.empty())
        To.Buckets.assign(NumLogBuckets, 0);
      To.Count += From.Count;
      To.Sum += From.Sum;
      To.Min = std::min(To.Min, From.Min);
      To.Max = std::max(To.Max, From.Max);
      for (unsigned B = 0; B != NumLogBuckets; ++B)
        To.Buckets[B] += From.Buckets[B];
    }
  }

  CounterSnapshot Snap;
  for (size_t I = 0; I != CNames.size(); ++I)
    Snap.Counters.emplace_back(CNames[I], Totals[I]);
  std::sort(Snap.Counters.begin(), Snap.Counters.end());

  for (size_t I = 0; I != HNames.size(); ++I) {
    CounterSnapshot::Histogram H;
    H.Name = HNames[I];
    H.Count = Hists[I].Count;
    H.Sum = Hists[I].Sum;
    H.Min = H.Count ? Hists[I].Min : 0;
    H.Max = Hists[I].Max;
    for (unsigned B = 0; B != NumLogBuckets; ++B)
      if (!Hists[I].Buckets.empty() && Hists[I].Buckets[B] != 0)
        H.Buckets.emplace_back(B, Hists[I].Buckets[B]);
    Snap.Histograms.push_back(std::move(H));
  }
  std::sort(Snap.Histograms.begin(), Snap.Histograms.end(),
            [](const CounterSnapshot::Histogram &A,
               const CounterSnapshot::Histogram &B) {
              return A.Name < B.Name;
            });
  return Snap;
}

void CounterRegistry::reset() {
  std::vector<std::shared_ptr<Shard>> Merge;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Merge = Shards;
  }
  for (const auto &S : Merge) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    std::fill(S->Counters.begin(), S->Counters.end(), 0);
    for (HistogramShard &H : S->Histograms)
      H = HistogramShard();
  }
}

uint64_t CounterSnapshot::Histogram::percentile(double Q) const {
  if (Count == 0)
    return 0;
  // Rank of the quantile in the sorted sample, 1-based; clamp so Q = 1.0
  // lands on the last value rather than past it.
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Q * static_cast<double>(Count) > static_cast<double>(Rank))
    ++Rank; // ceil
  Rank = std::max<uint64_t>(1, std::min(Rank, Count));
  uint64_t Seen = 0;
  for (const auto &[Bucket, N] : Buckets) {
    Seen += N;
    if (Seen >= Rank)
      return Bucket == 0 ? 0 : 1ULL << (Bucket - 1);
  }
  return Max; // unreachable when bucket counts sum to Count
}

std::string CounterSnapshot::render() const {
  std::string Out;
  char Buf[256];
  Out += "== counters ==\n";
  for (const auto &[Name, Value] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%-44s %" PRIu64 "\n", Name.c_str(),
                  Value);
    Out += Buf;
  }
  for (const Histogram &H : Histograms) {
    std::snprintf(Buf, sizeof(Buf),
                  "== histogram %s: count %" PRIu64 ", sum %" PRIu64
                  ", min %" PRIu64 ", max %" PRIu64 ", p50 %" PRIu64
                  ", p90 %" PRIu64 ", p99 %" PRIu64 " ==\n",
                  H.Name.c_str(), H.Count, H.Sum, H.Min, H.Max,
                  H.percentile(0.50), H.percentile(0.90), H.percentile(0.99));
    Out += Buf;
    for (const auto &[Bucket, N] : H.Buckets) {
      // Bucket 0 holds exact zeros; bucket B holds [2^(B-1), 2^B).
      uint64_t Lo = Bucket == 0 ? 0 : 1ULL << (Bucket - 1);
      std::snprintf(Buf, sizeof(Buf), "  >=%-20" PRIu64 " %" PRIu64 "\n",
                    Lo, N);
      Out += Buf;
    }
  }
  return Out;
}

std::string CounterSnapshot::renderJson() const {
  std::string Out = "{\"schema\":\"bor-counters-v1\",\"counters\":{";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\n\"" + exp::jsonEscape(Name) + "\":" + exp::jsonNumber(Value);
  }
  Out += First ? "},\"histograms\":[" : "\n},\"histograms\":[";
  First = true;
  for (const Histogram &H : Histograms) {
    Out += First ? "\n" : ",\n";
    First = false;
    exp::JsonObjectWriter W;
    W.field("name", H.Name);
    W.fieldRaw("count", exp::jsonNumber(H.Count));
    W.fieldRaw("sum", exp::jsonNumber(H.Sum));
    W.fieldRaw("min", exp::jsonNumber(H.Min));
    W.fieldRaw("max", exp::jsonNumber(H.Max));
    W.fieldRaw("p50", exp::jsonNumber(H.percentile(0.50)));
    W.fieldRaw("p90", exp::jsonNumber(H.percentile(0.90)));
    W.fieldRaw("p99", exp::jsonNumber(H.percentile(0.99)));
    std::string Buckets = "[";
    for (size_t I = 0; I != H.Buckets.size(); ++I) {
      if (I)
        Buckets += ",";
      uint64_t Lo = H.Buckets[I].first == 0
                        ? 0
                        : 1ULL << (H.Buckets[I].first - 1);
      Buckets += "[" + exp::jsonNumber(Lo) + "," +
                 exp::jsonNumber(H.Buckets[I].second) + "]";
    }
    Buckets += "]";
    W.fieldRaw("buckets", Buckets);
    Out += W.finish();
  }
  Out += First ? "]}\n" : "\n]}\n";
  return Out;
}
