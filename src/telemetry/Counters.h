//===- telemetry/Counters.h - Low-overhead counter/metric registry --------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulator's self-observability counters: a process-wide registry of
/// lazily-registered named uint64 counters and log2-bucket histograms.
/// Writes go to thread-local shards (one per thread per registry, each
/// guarded by its own uncontended mutex), so experiment cells running on
/// the ThreadPool never serialize on a shared counter line; snapshots
/// merge all shards and report name-sorted totals, which makes a snapshot
/// byte-deterministic for any --threads value as long as the same work ran.
///
/// Counting is off by default. Components publish *aggregate* deltas at
/// run granularity (a Pipeline's stats on destruction, an Interpreter's on
/// destruction, the sampler's phase totals at the end of a sampled run),
/// never per instruction, so the enabled path stays off the simulators'
/// hot loops entirely and the disabled path is a single relaxed atomic
/// load. See docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_TELEMETRY_COUNTERS_H
#define BOR_TELEMETRY_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bor {
namespace telemetry {

/// A merged, deterministic view of every registered counter and histogram:
/// totals summed over all thread shards, sorted by name. Two snapshots of
/// the same completed work render byte-identically regardless of how many
/// threads produced it.
struct CounterSnapshot {
  std::vector<std::pair<std::string, uint64_t>> Counters;

  struct Histogram {
    std::string Name;
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0; ///< meaningful only when Count > 0
    uint64_t Max = 0;
    /// Non-empty log2 buckets only: bucket B counts values in
    /// [2^(B-1), 2^B), bucket 0 counts exact zeros.
    std::vector<std::pair<unsigned, uint64_t>> Buckets;

    double mean() const {
      return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                   : 0.0;
    }

    /// Percentile estimate from the log2 buckets: the lower bound of the
    /// bucket holding the ceil(Q * Count)-th smallest value (so p50 of
    /// values all in [256, 512) reports 256). Exact to within the bucket's
    /// factor-of-two resolution; 0 when the histogram is empty.
    uint64_t percentile(double Q) const;
  };
  std::vector<Histogram> Histograms;

  /// Deterministic human-readable rendering, one line per counter plus a
  /// block per histogram (the --counters output).
  std::string render() const;

  /// Deterministic JSON rendering (the run manifest's counters.json):
  /// {"schema":"bor-counters-v1","counters":{name:value,...},
  ///  "histograms":[{name,count,sum,min,max,p50,p90,p99,buckets},...]}.
  std::string renderJson() const;
};

/// Process-wide counter/histogram registry with thread-local shards.
/// Normally used through instance(); tests may construct private
/// registries.
class CounterRegistry {
public:
  CounterRegistry();
  ~CounterRegistry();

  CounterRegistry(const CounterRegistry &) = delete;
  CounterRegistry &operator=(const CounterRegistry &) = delete;

  static CounterRegistry &instance();

  /// Global on/off switch for all counting. Off by default; the disabled
  /// fast path in enabled() is one relaxed atomic load.
  static void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }
  static bool enabled() { return Enabled.load(std::memory_order_relaxed); }

  /// Lazily registers a named counter / histogram and returns its stable
  /// id. Registering an existing name returns the existing id.
  unsigned counterId(std::string_view Name);
  unsigned histogramId(std::string_view Name);

  /// Adds \p Delta to counter \p Id in this thread's shard.
  void add(unsigned Id, uint64_t Delta);

  /// Records \p Value into histogram \p Id in this thread's shard.
  void observe(unsigned Id, uint64_t Value);

  /// Merges every shard into a deterministic snapshot. Values written by
  /// threads that have since exited are retained.
  CounterSnapshot snapshot() const;

  /// Zeroes every shard's values (registrations are kept).
  void reset();

private:
  struct HistogramShard {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = ~0ULL;
    uint64_t Max = 0;
    std::vector<uint64_t> Buckets; ///< 65 log2 buckets once touched.
  };

  struct Shard {
    std::mutex Mutex; ///< uncontended except while a snapshot merges
    std::vector<uint64_t> Counters;
    std::vector<HistogramShard> Histograms;
  };

  Shard &localShard();

  static std::atomic<bool> Enabled;

  const uint64_t RegistryId; ///< keys the thread-local shard cache
  mutable std::mutex Mutex;  ///< guards names/ids and the shard list
  std::map<std::string, unsigned, std::less<>> CounterIds;
  std::vector<std::string> CounterNames;
  std::map<std::string, unsigned, std::less<>> HistogramIds;
  std::vector<std::string> HistogramNames;
  std::vector<std::shared_ptr<Shard>> Shards;
};

/// A cached handle to one named counter of the process-wide registry.
/// Construct once (function-local static), then add() per event; add() is
/// a no-op unless counting is enabled.
class Counter {
public:
  explicit Counter(std::string_view Name)
      : Id(CounterRegistry::instance().counterId(Name)) {}

  void add(uint64_t Delta = 1) const {
    if (CounterRegistry::enabled())
      CounterRegistry::instance().add(Id, Delta);
  }

private:
  unsigned Id;
};

/// A cached handle to one named histogram of the process-wide registry.
class HistogramCounter {
public:
  explicit HistogramCounter(std::string_view Name)
      : Id(CounterRegistry::instance().histogramId(Name)) {}

  void observe(uint64_t Value) const {
    if (CounterRegistry::enabled())
      CounterRegistry::instance().observe(Id, Value);
  }

private:
  unsigned Id;
};

} // namespace telemetry
} // namespace bor

#endif // BOR_TELEMETRY_COUNTERS_H
