//===- telemetry/Telemetry.h - TelemetrySink and RAII trace spans ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The handle that threads observability through the experiment and
/// simulator layers. A TelemetrySink is a cheap value type bundling the
/// optional tracer and a detail-event switch; components receive it as a
/// nullable pointer, so "telemetry off" is simply a null sink (or a sink
/// with a null Trace) and costs nothing in the instrumented code paths.
///
/// TraceSpan is the RAII wall-clock span: construct it around a region
/// (an experiment cell, a sampled-run phase) and it records an "X"
/// complete event when it goes out of scope. With a null writer it
/// compiles down to two pointer checks.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_TELEMETRY_TELEMETRY_H
#define BOR_TELEMETRY_TELEMETRY_H

#include "telemetry/TimeSeries.h"
#include "telemetry/Trace.h"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace bor {
namespace telemetry {

/// Bundles the observability outputs a run may feed. Passed by const
/// pointer; a null sink (or null members) disables the respective output.
struct TelemetrySink {
  /// Span/event tracer, null when --trace was not requested.
  TraceWriter *Trace = nullptr;

  /// Per-interval time-series collector, null unless a run manifest is
  /// being written (--run-dir). Sampled runs append one series per run.
  TimeSeries *Series = nullptr;

  /// When true, the simulator also emits high-rate instant events
  /// (pipeline flushes, taken brr samples). Only bor-run turns this on:
  /// under a bench grid those events would swamp the trace.
  bool DetailEvents = false;

  TraceWriter *detailTrace() const { return DetailEvents ? Trace : nullptr; }
};

/// RAII scope that emits one complete ("X") trace event covering its
/// lifetime. Safe to construct with a null writer (no-op). Arguments may
/// be attached at construction or added before the span closes.
class TraceSpan {
public:
  TraceSpan(TraceWriter *Writer, std::string_view Name, std::string_view Cat,
            std::vector<TraceArg> Args = {})
      : Writer(Writer), Name(Name), Cat(Cat), Args(std::move(Args)),
        StartUs(Writer ? Writer->nowUs() : 0.0) {}

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  ~TraceSpan() { close(); }

  /// Attaches one more argument to the event emitted at close.
  void arg(TraceArg A) {
    if (Writer)
      Args.push_back(std::move(A));
  }

  /// Emits the event now (normally done by the destructor). Idempotent.
  void close() {
    if (!Writer)
      return;
    Writer->complete(Name, Cat, StartUs, Writer->nowUs() - StartUs,
                     std::move(Args));
    Writer = nullptr;
  }

  /// Elapsed wall-clock milliseconds since the span opened, usable even
  /// with a null writer (falls back to 0; callers needing timing without
  /// tracing should use PhaseTimer below).
  double elapsedMs() const {
    return Writer ? (Writer->nowUs() - StartUs) / 1000.0 : 0.0;
  }

private:
  TraceWriter *Writer;
  std::string Name;
  std::string Cat;
  std::vector<TraceArg> Args;
  double StartUs;
};

/// Accumulating wall-clock stopwatch for the sampled runner's phase
/// timers. Always on — the sampler reports fast-forward vs warm vs
/// measure time whether or not a trace is being collected — so it stays
/// trivially cheap: one steady_clock read per start/stop pair per phase,
/// a few dozen pairs per sampled run.
class PhaseTimer {
public:
  void start() { StartNs = nowNs(); }
  void stop() { TotalNs += nowNs() - StartNs; }

  double totalMs() const { return static_cast<double>(TotalNs) / 1e6; }

private:
  static uint64_t nowNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  uint64_t TotalNs = 0;
  uint64_t StartNs = 0;
};

} // namespace telemetry
} // namespace bor

#endif // BOR_TELEMETRY_TELEMETRY_H
