//===- telemetry/TimeSeries.h - Per-interval sampled-run time series ------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-interval view of a sampled run: where counters give one merged
/// total and RunRecord metrics give one mean with a CI, the TimeSeries
/// sink keeps the *sequence* — IPC, flush fraction, brr rate and executed
/// fast-forward instructions for every detailed interval, in stream order.
/// bor-report renders these as sparklines; the columnar JSON it writes is
/// the manifest's `timeseries.json`.
///
/// Determinism contract: a series is tagged by (experiment, cell, run)
/// through the RAII Scope the experiment Runner installs around each cell
/// (cells execute wholly on one worker thread, and runs within a cell are
/// sequential), so writeTo() output is byte-identical for any --threads
/// value — the same guarantee result records and counter snapshots give.
///
/// Cost contract: a null TimeSeries pointer in the TelemetrySink is the
/// off switch; the sampled runner then never allocates or records, so the
/// feature costs one pointer test per sampled run when off.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_TELEMETRY_TIMESERIES_H
#define BOR_TELEMETRY_TIMESERIES_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bor {
namespace telemetry {

/// One detailed interval's measurements, in the order the intervals ran.
struct IntervalSample {
  double Ipc = 0.0;       ///< measured-window instructions per cycle
  double FlushFrac = 0.0; ///< flush cycles / interval cycles
  double BrrRate = 0.0;   ///< brr executions per kilo-instruction
  uint64_t FfInsts = 0;   ///< fast-forward instructions *executed* after
                          ///< this interval (0 when a checkpoint resume
                          ///< skipped the span, or in region mode)
};

/// Collects per-interval series from sampled runs, each tagged with the
/// (experiment, cell, run) it came from. Thread-safe; rendering sorts by
/// tag, never by arrival order.
class TimeSeries {
public:
  /// Tags every record() call made on the current thread while alive.
  /// The Runner wraps Setup (Cell = kSetupCell), each cell (its index)
  /// and Summarize (kSummarizeCell); sampled runs outside any scope land
  /// under ("", kUntaggedCell). Scopes nest: destruction restores the
  /// previous tag.
  class Scope {
  public:
    Scope(std::string Experiment, int64_t Cell);
    ~Scope();

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    std::string PrevExperiment;
    int64_t PrevCell;
    uint64_t PrevNextRun;
  };

  static constexpr int64_t kSetupCell = -1;
  static constexpr int64_t kSummarizeCell = -2;
  static constexpr int64_t kUntaggedCell = -3;

  /// Adds one complete sampled run's interval sequence under the current
  /// thread's scope tag. Consecutive runs under one scope get run indices
  /// 0, 1, 2, ...
  void record(std::vector<IntervalSample> Samples);

  size_t numSeries() const;

  /// Columnar JSON, one line per series, sorted by (experiment, cell,
  /// run): {"schema":"bor-timeseries-v1","series":[...]}. Deterministic
  /// for identical work regardless of thread count.
  std::string renderJson() const;

  /// Renders to \p Path (creating parent directories). Returns false with
  /// \p Err set when the file cannot be written.
  bool writeTo(const std::string &Path, std::string &Err) const;

private:
  struct Series {
    std::string Experiment;
    int64_t Cell = kUntaggedCell;
    uint64_t Run = 0;
    std::vector<IntervalSample> Samples;
  };

  mutable std::mutex Mutex;
  std::vector<Series> All;
};

} // namespace telemetry
} // namespace bor

#endif // BOR_TELEMETRY_TIMESERIES_H
