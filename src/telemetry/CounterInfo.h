//===- telemetry/CounterInfo.h - Central counter/histogram descriptions ---===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one table that says what every telemetry counter and histogram
/// means. Counters register lazily by name all over the simulator; this
/// table is the discoverability companion — `bor-bench --list-counters`
/// prints it, and a test cross-checks that every counter a real run
/// publishes is documented here.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_TELEMETRY_COUNTERINFO_H
#define BOR_TELEMETRY_COUNTERINFO_H

#include <string>
#include <string_view>
#include <vector>

namespace bor {
namespace telemetry {

struct CounterInfo {
  std::string_view Name;
  std::string_view Description;
  bool IsHistogram = false;
};

/// Every documented counter/histogram, sorted by name.
const std::vector<CounterInfo> &allCounterInfo();

/// One-line description for \p Name; empty view when undocumented.
std::string_view describeCounter(std::string_view Name);

/// The --list-counters rendering: one "kind name description" line per
/// entry, counters first then histograms, each block name-sorted.
std::string renderCounterList();

} // namespace telemetry
} // namespace bor

#endif // BOR_TELEMETRY_COUNTERINFO_H
