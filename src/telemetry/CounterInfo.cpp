//===- telemetry/CounterInfo.cpp - Central counter/histogram descriptions -===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/CounterInfo.h"

#include <algorithm>
#include <cstdio>

using namespace bor;
using namespace bor::telemetry;

namespace {

// Keep sorted by name within each group; allCounterInfo() re-sorts
// defensively. Every name a component registers must appear here — the
// report_smoke ctest diffs a real run's snapshot against this table.
const CounterInfo Table[] = {
    {"brr_unit.evaluations", "LFSR/deterministic brr-unit decisions taken"},
    {"btb.hits", "BTB lookups that returned a target"},
    {"btb.inserts", "BTB entries written (new or replaced)"},
    {"btb.lookups", "fetch-stage BTB target lookups"},
    {"cache.l1d.accesses", "L1 data-cache accesses (loads + stores)"},
    {"cache.l1d.misses", "L1 data-cache misses"},
    {"cache.l1i.accesses", "L1 instruction-cache fetch accesses"},
    {"cache.l1i.misses", "L1 instruction-cache misses"},
    {"cache.l2.accesses", "unified L2 accesses (L1 miss traffic)"},
    {"cache.l2.misses", "unified L2 misses (memory traffic)"},
    {"cfg.build.blocks", "basic blocks discovered by buildModule"},
    {"cfg.build.edges", "CFG edges discovered by buildModule"},
    {"cfg.build.functions", "functions derived by computeFunctions"},
    {"cfg.build.modules", "programs lifted into cfg::Module form"},
    {"cfg.emit.elided_jumps", "jmp-to-next terminators dropped (opt-in)"},
    {"cfg.emit.inserted_jumps",
     "jmps inserted for displaced fall-through edges"},
    {"cfg.emit.insts", "instructions emitted by relinearization"},
    {"cfg.emit.inverted_branches",
     "conditional branches inverted for layout adjacency"},
    {"cfg.emit.programs", "programs emitted from cfg::Module form"},
    {"cfg.emit.relaxed_branches",
     "out-of-range branches relaxed to branch-around-jump"},
    {"cfg.transform.checks", "sampling checks inserted by the CFG transform"},
    {"cfg.transform.cloned_blocks",
     "blocks duplicated for Full-Duplication regions"},
    {"cfg.transform.sites",
     "instrumentation sites processed by the CFG transform"},
    {"cfg.transform.uncommon_blocks",
     "out-of-line sample blocks created by the CFG transform"},
    {"ckpt.build.checkpoints", "checkpoints captured during library builds"},
    {"ckpt.build.insts", "instructions executed by library build passes"},
    {"ckpt.insts.skipped",
     "fast-forward instructions replaced by checkpoint resumes"},
    {"ckpt.libraries.built", "checkpoint libraries built in-process"},
    {"ckpt.libraries.corrupt",
     "cached checkpoint libraries rejected as corrupt and rebuilt"},
    {"ckpt.libraries.loaded", "checkpoint libraries loaded from disk"},
    {"ckpt.pages.copied", "COW pages privatized by a write after resume"},
    {"ckpt.pages.deduped",
     "pages interned to an existing PageStore entry during capture"},
    {"ckpt.pages.shared", "pages attached copy-on-write at resume"},
    {"ckpt.pages.stored", "distinct pages stored in the PageStore"},
    {"ckpt.resumes", "checkpoint resumes (library fast-forward skips)"},
    {"exp.cells", "experiment grid cells executed"},
    {"exp.cells.timedout", "cells abandoned at the local --cell-timeout"},
    {"exp.experiments", "experiment grids executed"},
    {"exp.pool.pools", "ThreadPools constructed"},
    {"exp.pool.tasks", "tasks submitted to ThreadPools"},
    {"interp.block.blocks", "decoded basic blocks executed via chaining"},
    {"interp.block.chains", "block-chained dispatch loop entries"},
    {"interp.block.insts", "instructions retired inside chained blocks"},
    {"interp.brr.executed", "brr instructions executed functionally"},
    {"interp.brr.taken", "functional brr executions that branched"},
    {"interp.cond_branches", "conditional branches executed functionally"},
    {"interp.cond_taken", "functional conditional branches taken"},
    {"interp.decode.blocks", "basic blocks formed by the pre-decoder"},
    {"interp.decode.insts", "static instructions pre-decoded"},
    {"interp.decode.programs", "programs pre-decoded (DecodedProgram built)"},
    {"interp.insts", "instructions retired by the functional interpreter"},
    {"interp.loads", "functional loads executed"},
    {"interp.runs", "functional interpreter runs (dtor publications)"},
    {"interp.run.insts", "instructions retired per interpreter run", true},
    {"interp.stores", "functional stores executed"},
    {"opt.pass.brr_outlined",
     "brr-uncommon blocks moved out of line structurally"},
    {"opt.pass.cold_outlined", "profiled-cold blocks moved to cold sections"},
    {"opt.pass.functions_split",
     "functions that shed at least one cold block"},
    {"opt.pass.hot_fallthroughs",
     "non-fall hot edges made adjacent by trace layout"},
    {"opt.pass.runs", "layout-optimizer pass pipelines run"},
    {"opt.pass.traces", "traces formed by branch-direction layout"},
    {"opt.profile.oracle_runs", "exact interpreter profiles collected"},
    {"opt.profile.oracle_steps",
     "instructions traced by oracle profile collection"},
    {"opt.profile.site_ingests", "sampled site-count profiles ingested"},
    {"pipeline.brr.executed", "brr instructions retired by the pipeline"},
    {"pipeline.brr.taken", "pipeline brr retirements that branched"},
    {"pipeline.cond_branches", "conditional branches retired"},
    {"pipeline.cond_mispredicts", "conditional branches mispredicted"},
    {"pipeline.cycles", "detailed-model cycles simulated"},
    {"pipeline.direct_jump_decode_redirects",
     "direct jumps redirected at decode (BTB miss, no flush)"},
    {"pipeline.direct_jumps", "direct jumps retired"},
    {"pipeline.fetch.backend_flush_cycles",
     "fetch cycles lost to backend (mispredict) flushes"},
    {"pipeline.fetch.frontend_flush_cycles",
     "fetch cycles lost to frontend (decode-redirect) flushes"},
    {"pipeline.fetch.full_width_cycles",
     "cycles fetch delivered its full width"},
    {"pipeline.fetch.icache_stall_cycles",
     "fetch cycles stalled on instruction-cache misses"},
    {"pipeline.indirect_branches", "indirect branches retired"},
    {"pipeline.indirect_mispredicts", "indirect branch target mispredicts"},
    {"pipeline.insts", "instructions retired by the detailed pipeline"},
    {"pipeline.runs", "detailed pipeline runs (dtor publications)"},
    {"pipeline.run.cycles", "cycles simulated per pipeline run", true},
    {"pipeline.run.insts", "instructions retired per pipeline run", true},
    {"predictor.mispredictions", "direction predictions that were wrong"},
    {"predictor.predictions", "conditional-branch direction predictions"},
    {"ras.pops", "return-address-stack pops"},
    {"ras.pushes", "return-address-stack pushes"},
    {"ras.underflows", "RAS pops from an empty stack"},
    {"sample.insts.fast_forward",
     "fast-forward instructions actually executed (resumes excluded)"},
    {"sample.insts.measured", "instructions in measured detailed windows"},
    {"sample.insts.preroll", "discarded detailed pre-roll instructions"},
    {"sample.insts.total", "total committed stream length of sampled runs"},
    {"sample.insts.warmed", "functional-warming instructions executed"},
    {"sample.intervals", "detailed intervals measured"},
    {"sample.runs", "sampled runs completed"},
    {"svc.cells.lost", "cells abandoned after exhausting the retry budget"},
    {"svc.cells.timeout", "leases expired at the cell wall-clock timeout"},
    {"svc.frames.recv", "protocol frames received from workers"},
    {"svc.frames.sent", "protocol frames sent to workers"},
    {"svc.heartbeats.missed", "leases expired at the heartbeat deadline"},
    {"svc.heartbeats.recv", "heartbeat frames received from workers"},
    {"svc.leases", "cell leases granted to workers"},
    {"svc.requeues", "expired or orphaned leases returned to the queue"},
    {"svc.results.stale", "results discarded for superseded or unknown jobs"},
    {"svc.retries", "cells re-leased after a prior attempt failed"},
    {"svc.workers.connected", "worker connections accepted"},
    {"svc.workers.lost", "worker connections dropped before shutdown"},
    {"svc.workers.spawned", "worker processes forked by the coordinator"},
};

} // namespace

const std::vector<CounterInfo> &bor::telemetry::allCounterInfo() {
  static const std::vector<CounterInfo> Sorted = [] {
    std::vector<CounterInfo> V(std::begin(Table), std::end(Table));
    std::sort(V.begin(), V.end(),
              [](const CounterInfo &A, const CounterInfo &B) {
                return A.Name < B.Name;
              });
    return V;
  }();
  return Sorted;
}

std::string_view bor::telemetry::describeCounter(std::string_view Name) {
  const std::vector<CounterInfo> &All = allCounterInfo();
  auto It = std::lower_bound(All.begin(), All.end(), Name,
                             [](const CounterInfo &I, std::string_view N) {
                               return I.Name < N;
                             });
  if (It != All.end() && It->Name == Name)
    return It->Description;
  return {};
}

std::string bor::telemetry::renderCounterList() {
  std::string Out;
  char Buf[256];
  for (bool Histograms : {false, true}) {
    Out += Histograms ? "== histograms ==\n" : "== counters ==\n";
    for (const CounterInfo &I : allCounterInfo()) {
      if (I.IsHistogram != Histograms)
        continue;
      std::snprintf(Buf, sizeof(Buf), "%-44.*s %.*s\n",
                    static_cast<int>(I.Name.size()), I.Name.data(),
                    static_cast<int>(I.Description.size()),
                    I.Description.data());
      Out += Buf;
    }
  }
  return Out;
}
