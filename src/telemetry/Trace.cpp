//===- telemetry/Trace.cpp - Chrome trace-event span/event export ---------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Trace.h"

#include "exp/Json.h"
#include "support/Path.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>

using namespace bor;
using namespace bor::telemetry;

namespace {

uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string renderArgs(const std::vector<TraceArg> &Args) {
  if (Args.empty())
    return {};
  exp::JsonObjectWriter W;
  for (const TraceArg &A : Args)
    W.fieldRaw(A.Key, A.Raw);
  return W.finish();
}

/// Trace timestamps carry sub-microsecond detail; three decimals (1 ns)
/// round-trips everything steady_clock can say without scientific
/// notation.
std::string formatUs(double Us) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Us);
  return Buf;
}

} // namespace

TraceArg TraceArg::str(std::string_view Key, std::string_view Value) {
  return {std::string(Key), "\"" + exp::jsonEscape(Value) + "\""};
}

TraceArg TraceArg::num(std::string_view Key, uint64_t Value) {
  return {std::string(Key), exp::jsonNumber(Value)};
}

TraceArg TraceArg::num(std::string_view Key, double Value) {
  return {std::string(Key), exp::jsonNumber(Value)};
}

TraceWriter::TraceWriter(size_t MaxEvents)
    : MaxEvents(MaxEvents), OriginNs(steadyNowNs()) {}

double TraceWriter::nowUs() const {
  return static_cast<double>(steadyNowNs() - OriginNs) / 1000.0;
}

uint32_t TraceWriter::threadId() {
  static std::atomic<uint32_t> Next{1};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

void TraceWriter::append(Event E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    return;
  }
  Events.push_back(std::move(E));
}

void TraceWriter::complete(std::string_view Name, std::string_view Cat,
                           double TsUs, double DurUs,
                           std::vector<TraceArg> Args) {
  append({std::string(Name), std::string(Cat), 'X', TsUs, DurUs, threadId(),
          renderArgs(Args)});
}

void TraceWriter::instant(std::string_view Name, std::string_view Cat,
                          std::vector<TraceArg> Args) {
  append({std::string(Name), std::string(Cat), 'i', nowUs(), 0, threadId(),
          renderArgs(Args)});
}

size_t TraceWriter::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

uint64_t TraceWriter::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Dropped;
}

std::string TraceWriter::foldToCollapsedStacks() const {
  std::vector<Event> Spans;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const Event &E : Events)
      if (E.Phase == 'X')
        Spans.push_back(E);
  }

  // Per thread, in start order; at equal starts the wider span first, so a
  // parent always precedes the children it contains.
  std::stable_sort(Spans.begin(), Spans.end(),
                   [](const Event &A, const Event &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.TsUs != B.TsUs)
                       return A.TsUs < B.TsUs;
                     return A.DurUs > B.DurUs;
                   });

  // One pass with an open-span stack: a span is a child of the innermost
  // open span that still covers its start. Each span adds its duration to
  // its own stack and subtracts it from its parent's, leaving self time.
  std::map<std::string, double> SelfUs;
  struct Frame {
    double EndUs;
    std::string Path;
  };
  std::vector<Frame> Stack;
  uint32_t Tid = 0;
  for (const Event &E : Spans) {
    if (E.Tid != Tid) {
      Stack.clear();
      Tid = E.Tid;
    }
    while (!Stack.empty() && E.TsUs >= Stack.back().EndUs)
      Stack.pop_back();
    std::string Path =
        (Stack.empty() ? "thread-" + std::to_string(E.Tid) : Stack.back().Path)
            .append(1, ';')
            .append(E.Name);
    SelfUs[Path] += E.DurUs;
    if (!Stack.empty())
      SelfUs[Stack.back().Path] -= E.DurUs;
    Stack.push_back({E.TsUs + E.DurUs, std::move(Path)});
  }

  // Map order keys the output deterministically; frames whose time went
  // entirely to children still appear as prefixes of their children's
  // lines, so zero rows add nothing and are dropped.
  std::string Out;
  for (const auto &[Path, Us] : SelfUs) {
    long long V = std::llround(Us);
    if (V <= 0)
      continue;
    Out += Path;
    Out += ' ';
    Out += std::to_string(V);
    Out += '\n';
  }
  return Out;
}

bool TraceWriter::writeTo(const std::string &Path, std::string &Err) const {
  std::string Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Out = "{\"traceEvents\":[\n";
    bool First = true;
    for (const Event &E : Events) {
      exp::JsonObjectWriter W;
      W.field("name", E.Name);
      W.field("cat", E.Cat);
      W.field("ph", std::string_view(&E.Phase, 1));
      W.fieldRaw("ts", formatUs(E.TsUs));
      if (E.Phase == 'X')
        W.fieldRaw("dur", formatUs(E.DurUs));
      if (E.Phase == 'i')
        W.field("s", "t"); // thread-scoped instant
      W.fieldRaw("pid", "1");
      W.fieldRaw("tid", exp::jsonNumber(static_cast<uint64_t>(E.Tid)));
      if (!E.ArgsJson.empty())
        W.fieldRaw("args", E.ArgsJson);
      if (!First)
        Out += ",\n";
      Out += W.finish();
      First = false;
    }
    Out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
    Out += "\"tool\":\"branch-on-random\",\"dropped_events\":";
    Out += std::to_string(Dropped);
    Out += "}}\n";
  }
  return writeFileAtomic(Path, Out, Err);
}
