//===- telemetry/TimeSeries.cpp - Per-interval sampled-run time series ----===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TimeSeries.h"

#include "exp/Json.h"
#include "support/Path.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

using namespace bor;
using namespace bor::telemetry;

namespace {

/// The current thread's scope tag. Cells execute wholly on one worker
/// thread and sampled runs within a cell are sequential, so a thread-local
/// tag (rather than anything keyed on arrival order) is what makes the
/// rendered output thread-count-invariant.
struct ScopeTag {
  std::string Experiment;
  int64_t Cell = TimeSeries::kUntaggedCell;
  uint64_t NextRun = 0;
};

ScopeTag &currentTag() {
  thread_local ScopeTag Tag;
  return Tag;
}

} // namespace

TimeSeries::Scope::Scope(std::string Experiment, int64_t Cell) {
  ScopeTag &Tag = currentTag();
  PrevExperiment = std::move(Tag.Experiment);
  PrevCell = Tag.Cell;
  PrevNextRun = Tag.NextRun;
  Tag.Experiment = std::move(Experiment);
  Tag.Cell = Cell;
  Tag.NextRun = 0;
}

TimeSeries::Scope::~Scope() {
  ScopeTag &Tag = currentTag();
  Tag.Experiment = std::move(PrevExperiment);
  Tag.Cell = PrevCell;
  Tag.NextRun = PrevNextRun;
}

void TimeSeries::record(std::vector<IntervalSample> Samples) {
  ScopeTag &Tag = currentTag();
  Series S;
  S.Experiment = Tag.Experiment;
  S.Cell = Tag.Cell;
  S.Run = Tag.NextRun++;
  S.Samples = std::move(Samples);
  std::lock_guard<std::mutex> Lock(Mutex);
  All.push_back(std::move(S));
}

size_t TimeSeries::numSeries() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return All.size();
}

std::string TimeSeries::renderJson() const {
  std::vector<Series> Sorted;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Sorted = All;
  }
  std::sort(Sorted.begin(), Sorted.end(),
            [](const Series &A, const Series &B) {
              return std::tie(A.Experiment, A.Cell, A.Run) <
                     std::tie(B.Experiment, B.Cell, B.Run);
            });

  auto Column = [](const std::vector<IntervalSample> &Samples, auto Get) {
    std::string Out = "[";
    for (size_t I = 0; I != Samples.size(); ++I) {
      if (I)
        Out += ",";
      Out += Get(Samples[I]);
    }
    Out += "]";
    return Out;
  };

  std::string Out = "{\"schema\":\"bor-timeseries-v1\",\"series\":[";
  for (size_t I = 0; I != Sorted.size(); ++I) {
    const Series &S = Sorted[I];
    Out += I ? ",\n" : "\n";
    exp::JsonObjectWriter W;
    W.field("experiment", S.Experiment);
    W.fieldRaw("cell", std::to_string(S.Cell));
    W.fieldRaw("run", exp::jsonNumber(S.Run));
    W.fieldRaw("n", exp::jsonNumber(static_cast<uint64_t>(S.Samples.size())));
    W.fieldRaw("ipc", Column(S.Samples, [](const IntervalSample &P) {
                 return exp::jsonNumber(P.Ipc);
               }));
    W.fieldRaw("flush_frac", Column(S.Samples, [](const IntervalSample &P) {
                 return exp::jsonNumber(P.FlushFrac);
               }));
    W.fieldRaw("brr_rate", Column(S.Samples, [](const IntervalSample &P) {
                 return exp::jsonNumber(P.BrrRate);
               }));
    W.fieldRaw("ff_insts", Column(S.Samples, [](const IntervalSample &P) {
                 return exp::jsonNumber(P.FfInsts);
               }));
    Out += W.finish();
  }
  Out += Sorted.empty() ? "]}\n" : "\n]}\n";
  return Out;
}

bool TimeSeries::writeTo(const std::string &Path, std::string &Err) const {
  return writeFileAtomic(Path, renderJson(), Err);
}
