//===- telemetry/Trace.h - Chrome trace-event span/event export -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small span/event tracer that writes the Chrome trace-event JSON
/// object format (load the file in chrome://tracing or Perfetto). The
/// writer buffers events in memory — experiment runs emit a few thousand
/// spans at most — and serializes them once at the end of the run:
///
///   * TraceSpan: RAII wall-clock span ("X" complete events) for
///     experiment cells, sampled-run phases, whole tool runs;
///   * TraceWriter::instant(): "i" instant events for high-rate simulator
///     occurrences (pipeline flushes, taken brr samples), bounded by a
///     configurable event cap so a long run cannot exhaust memory — the
///     drop count is recorded in the trace's otherData block.
///
/// Thread ids are small dense integers assigned per OS thread on first
/// use, so fan-out across the experiment ThreadPool renders as parallel
/// tracks. All methods are thread-safe. Everything is a no-op through
/// null-writer pointers in TelemetrySink (see Telemetry.h): tracing off
/// means no TraceWriter exists at all.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_TELEMETRY_TRACE_H
#define BOR_TELEMETRY_TRACE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace bor {
namespace telemetry {

/// One "key": <json> argument of a trace event. Raw must already be valid
/// JSON (string helpers quote for you).
struct TraceArg {
  std::string Key;
  std::string Raw;

  static TraceArg str(std::string_view Key, std::string_view Value);
  static TraceArg num(std::string_view Key, uint64_t Value);
  static TraceArg num(std::string_view Key, double Value);
};

/// Buffers trace events and writes one Chrome trace-event JSON object.
class TraceWriter {
public:
  /// \p MaxEvents bounds the buffer; further events are counted as
  /// dropped rather than stored.
  explicit TraceWriter(size_t MaxEvents = 1 << 22);

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  /// Microseconds since this writer was constructed (the trace's time
  /// origin).
  double nowUs() const;

  /// Appends a complete ("X") event covering [TsUs, TsUs + DurUs].
  void complete(std::string_view Name, std::string_view Cat, double TsUs,
                double DurUs, std::vector<TraceArg> Args = {});

  /// Appends an instant ("i") event at the current time.
  void instant(std::string_view Name, std::string_view Cat,
               std::vector<TraceArg> Args = {});

  size_t eventCount() const;
  uint64_t droppedCount() const;

  /// Serializes {"traceEvents": [...], "otherData": {...}} to \p Path.
  /// Returns false with \p Err set when the file cannot be written.
  bool writeTo(const std::string &Path, std::string &Err) const;

  /// Folds the buffered complete ("X") spans into collapsed-stack lines
  /// ("root;child;leaf <self-us>\n", one per distinct stack, sorted),
  /// the format flamegraph.pl and speedscope consume directly. Spans nest
  /// by time containment per thread, with a synthetic "thread-N" root, and
  /// each line's value is the stack's *self* time in integer microseconds
  /// (child time subtracted), so phase data from a run is readable at a
  /// glance without loading the trace in a viewer.
  std::string foldToCollapsedStacks() const;

private:
  struct Event {
    std::string Name;
    std::string Cat;
    char Phase;
    double TsUs;
    double DurUs; ///< "X" only
    uint32_t Tid;
    std::string ArgsJson; ///< pre-rendered {"k":v,...}, may be empty
  };

  void append(Event E);
  static uint32_t threadId();

  const size_t MaxEvents;
  uint64_t OriginNs;
  mutable std::mutex Mutex;
  std::vector<Event> Events;
  uint64_t Dropped = 0;
};

} // namespace telemetry
} // namespace bor

#endif // BOR_TELEMETRY_TRACE_H
