//===- sample/SamplingPlan.h - Systematic sampling schedule ---------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule of a SMARTS-style systematically sampled simulation: the
/// committed instruction stream is divided into fixed-length periods, and
/// each period opens with a functionally-warmed detailed measurement
/// interval. Within one period of PeriodInsts instructions:
///
///   functional warming (caches, BP)     WarmupInsts
///   detailed measurement (Pipeline)     MeasureInsts (+ discarded pre-roll)
///   fast-forward (functional only)      the rest of the period
///
/// The per-interval IPC samples feed a standard-error estimate, so sampled
/// results carry their own confidence intervals (docs/SAMPLING.md).
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SAMPLE_SAMPLINGPLAN_H
#define BOR_SAMPLE_SAMPLINGPLAN_H

#include <cstdint>

namespace bor {

struct SamplingPlan {
  /// Instructions per sampling period (fast-forward + warm + measure).
  uint64_t PeriodInsts = 100000;

  /// Functional-warming instructions immediately before each detailed
  /// interval: committed stream drives the caches, predictor, BTB and RAS
  /// without timing, so measurement starts from trained structures.
  uint64_t WarmupInsts = 3000;

  /// Detailed (cycle-timed) instructions per interval.
  uint64_t MeasureInsts = 1000;

  /// Detailed pre-roll: extra timed instructions at the head of each
  /// interval whose cycles are discarded, absorbing the pipeline-fill
  /// ramp so the measured window reflects steady state.
  uint64_t DetailedWarmupInsts = 200;

  bool valid() const {
    return PeriodInsts > 0 && MeasureInsts > 0 &&
           WarmupInsts + MeasureInsts + DetailedWarmupInsts <= PeriodInsts;
  }

  /// Fraction of the stream that runs through the detailed model.
  double detailedFraction() const {
    return PeriodInsts ? static_cast<double>(MeasureInsts +
                                             DetailedWarmupInsts) /
                             static_cast<double>(PeriodInsts)
                       : 0.0;
  }
};

} // namespace bor

#endif // BOR_SAMPLE_SAMPLINGPLAN_H
