//===- sample/Warmup.cpp - Functional µarch warming -----------------------===//

#include "sample/Warmup.h"

using namespace bor;

void FunctionalWarmer::observe(const ExecRecord &R) {
  // Caches: one I-cache probe per distinct line, one D-cache access per
  // load/store — the same accesses a detailed run would make, minus the
  // latency bookkeeping.
  uint64_t Line =
      R.Pc & ~static_cast<uint64_t>(Config.MemHier.L1I.LineBytes - 1);
  if (Line != LastFetchLine) {
    Uarch.MemHier.fetchAccess(R.Pc);
    LastFetchLine = Line;
  }
  if (R.I.isLoad())
    Uarch.MemHier.dataAccess(R.MemAddr, /*IsWrite=*/false);
  else if (R.I.isStore())
    Uarch.MemHier.dataAccess(R.MemAddr, /*IsWrite=*/true);

  if (Config.PerfectBranchPrediction)
    return; // oracle front end never touches the predictor structures

  bool TreatAsCondBranch =
      R.I.isCondBranch() || (R.I.isBrr() && Config.BrrAsBackendBranch);

  if (TreatAsCondBranch) {
    BranchPrediction Pred = Uarch.Predictor.predict(R.Pc);
    bool BtbHit = Uarch.TargetBuffer.lookup(R.Pc).has_value();
    bool Effective = Pred.Taken && BtbHit;
    Uarch.Predictor.resolve(R.Pc, Pred.HistBefore, Effective, R.Taken);
    if (Effective != R.Taken)
      Uarch.Predictor.repairHistory(Pred.HistBefore, R.Taken);
    if (R.Taken)
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
  } else if (R.I.isBrr()) {
    // Invisible to predictor and BTB (Section 3.3).
  } else if (R.I.isDirectJump()) {
    if (R.I.Op == Opcode::Jal && R.I.Rd != RegZero)
      Uarch.Ras.push(R.Pc + 4);
    if (!Uarch.TargetBuffer.lookup(R.Pc))
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
  } else if (R.I.isIndirect()) {
    bool IsReturn = R.I.Rd == RegZero && R.I.Rs1 == RegLr;
    if (IsReturn)
      Uarch.Ras.pop();
    if (R.I.Rd != RegZero)
      Uarch.Ras.push(R.Pc + 4);
    if (!IsReturn)
      Uarch.TargetBuffer.insert(R.Pc, R.NextPc);
  }
}

uint64_t FunctionalWarmer::warm(Interpreter &Oracle, uint64_t Insts) {
  uint64_t Consumed = 0;
  while (Consumed != Insts && !Oracle.halted()) {
    observe(Oracle.step());
    ++Consumed;
  }
  return Consumed;
}
