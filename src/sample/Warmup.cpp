//===- sample/Warmup.cpp - Functional µarch warming -----------------------===//

#include "sample/Warmup.h"

using namespace bor;

void FunctionalWarmer::observe(const ExecRecord &R) {
  // Caches: one I-cache probe per distinct line, one D-cache access per
  // load/store — the same accesses a detailed run would make, minus the
  // latency bookkeeping.
  uint64_t Line =
      R.Pc & ~static_cast<uint64_t>(Config.MemHier.L1I.LineBytes - 1);
  if (Line != LastFetchLine) {
    Uarch.MemHier.fetchAccess(R.Pc);
    LastFetchLine = Line;
  }
  if (R.I.isLoad())
    Uarch.MemHier.dataAccess(R.MemAddr, /*IsWrite=*/false);
  else if (R.I.isStore())
    Uarch.MemHier.dataAccess(R.MemAddr, /*IsWrite=*/true);

  Policy.observeWarming(R);
}

uint64_t FunctionalWarmer::warm(Interpreter &Oracle, uint64_t Insts) {
  uint64_t Consumed = 0;
  while (Consumed != Insts && !Oracle.halted()) {
    observe(Oracle.step());
    ++Consumed;
  }
  return Consumed;
}
