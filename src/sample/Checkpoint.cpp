//===- sample/Checkpoint.cpp - Architectural state snapshots --------------===//

#include "sample/Checkpoint.h"

#include "isa/Serialize.h"

#include <algorithm>
#include <cstring>

using namespace bor;

namespace {

constexpr uint32_t CheckpointVersion = 1;
constexpr char CheckpointTag[5] = "CKPT";
constexpr uint32_t MaxDeciderKindLen = 64;
constexpr uint32_t MaxDeciderWords = 64;

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

/// Bounds-checked little-endian reader (mirrors isa/Serialize.cpp's; the
/// two formats are deliberately independent, so no shared header).
class Reader {
public:
  Reader(const std::vector<uint8_t> &Bytes) : Bytes(Bytes) {}

  bool failed() const { return Failed; }
  bool atEnd() const { return Pos == Bytes.size(); }

  uint32_t u32() { return static_cast<uint32_t>(uint(4)); }
  uint64_t u64() { return uint(8); }
  uint8_t u8() { return static_cast<uint8_t>(uint(1)); }

  bool bytes(void *Dst, size_t N) {
    if (Pos + N > Bytes.size()) {
      Failed = true;
      return false;
    }
    std::memcpy(Dst, Bytes.data() + Pos, N);
    Pos += N;
    return true;
  }

private:
  uint64_t uint(unsigned N) {
    if (Pos + N > Bytes.size()) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I != N; ++I)
      V |= static_cast<uint64_t>(Bytes[Pos + I]) << (8 * I);
    Pos += N;
    return V;
  }

  const std::vector<uint8_t> &Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

bool fail(std::string &Error, const std::string &Message) {
  Error = Message;
  return false;
}

} // namespace

MachineCheckpoint bor::captureCheckpoint(const Machine &M,
                                         const BrrDecider &Decider,
                                         uint64_t InstsRetired) {
  MachineCheckpoint C;
  C.Pc = M.pc();
  C.Halted = M.halted();
  C.InstsRetired = InstsRetired;
  for (unsigned R = 0; R != 32; ++R)
    C.Regs[R] = M.readReg(R);
  C.DeciderKind = Decider.checkpointKind();
  C.DeciderWords = Decider.checkpointWords();

  const uint64_t PageBytes = Memory::pageBytes();
  M.memory().forEachPage([&](uint64_t Base, const uint8_t *Data) {
    // Skip all-zero pages: a reset Machine reproduces them implicitly.
    bool AllZero = true;
    for (uint64_t I = 0; I != PageBytes; ++I)
      if (Data[I] != 0) {
        AllZero = false;
        break;
      }
    if (AllZero)
      return;
    MachineCheckpoint::Page P;
    P.Base = Base;
    P.Data.assign(Data, Data + PageBytes);
    C.Pages.push_back(std::move(P));
  });
  return C;
}

bool bor::restoreCheckpoint(const MachineCheckpoint &C, Machine &M,
                            BrrDecider &Decider, std::string &Error) {
  if (C.DeciderKind != Decider.checkpointKind())
    return fail(Error, "checkpoint was taken with decider '" + C.DeciderKind +
                           "' but resuming with '" +
                           Decider.checkpointKind() + "'");
  Decider.restoreCheckpointWords(C.DeciderWords);

  M.memory().reset();
  for (const MachineCheckpoint::Page &P : C.Pages)
    M.memory().restorePage(P.Base, P.Data.data());
  for (unsigned R = 1; R != 32; ++R) // r0 is hardwired zero
    M.writeReg(R, C.Regs[R]);
  M.setPc(C.Pc);
  M.setHalted(C.Halted);
  return true;
}

std::vector<uint8_t> bor::encodeCheckpoint(const MachineCheckpoint &C) {
  std::vector<uint8_t> Out;
  putU32(Out, CheckpointVersion);
  putU64(Out, C.Pc);
  Out.push_back(C.Halted ? 1 : 0);
  putU64(Out, C.InstsRetired);
  putU32(Out, static_cast<uint32_t>(C.DeciderKind.size()));
  Out.insert(Out.end(), C.DeciderKind.begin(), C.DeciderKind.end());
  putU32(Out, static_cast<uint32_t>(C.DeciderWords.size()));
  for (uint64_t W : C.DeciderWords)
    putU64(Out, W);
  for (uint64_t R : C.Regs)
    putU64(Out, R);
  putU64(Out, C.Pages.size());
  for (const MachineCheckpoint::Page &P : C.Pages) {
    putU64(Out, P.Base);
    Out.insert(Out.end(), P.Data.begin(), P.Data.end());
  }
  return Out;
}

bool bor::decodeCheckpoint(const std::vector<uint8_t> &Bytes,
                           MachineCheckpoint &C, std::string &Error) {
  const uint64_t PageBytes = Memory::pageBytes();
  Reader R(Bytes);
  uint32_t Ver = R.u32();
  if (R.failed())
    return fail(Error, "truncated checkpoint header");
  if (Ver != CheckpointVersion)
    return fail(Error,
                "unsupported checkpoint version " + std::to_string(Ver));
  C.Pc = R.u64();
  C.Halted = R.u8() != 0;
  C.InstsRetired = R.u64();

  uint32_t KindLen = R.u32();
  if (R.failed() || KindLen > MaxDeciderKindLen)
    return fail(Error, "bad checkpoint decider kind");
  C.DeciderKind.assign(KindLen, '\0');
  if (KindLen != 0 && !R.bytes(C.DeciderKind.data(), KindLen))
    return fail(Error, "truncated checkpoint decider kind");

  uint32_t NumWords = R.u32();
  if (R.failed() || NumWords > MaxDeciderWords)
    return fail(Error, "bad checkpoint decider state");
  C.DeciderWords.clear();
  for (uint32_t I = 0; I != NumWords; ++I)
    C.DeciderWords.push_back(R.u64());

  for (unsigned I = 0; I != 32; ++I)
    C.Regs[I] = R.u64();
  if (R.failed())
    return fail(Error, "truncated checkpoint registers");

  uint64_t NumPages = R.u64();
  if (R.failed() ||
      NumPages > (Bytes.size() / PageBytes) + 1) // corruption guard
    return fail(Error, "bad checkpoint page count");
  C.Pages.clear();
  C.Pages.reserve(NumPages);
  for (uint64_t I = 0; I != NumPages; ++I) {
    MachineCheckpoint::Page P;
    P.Base = R.u64();
    if (R.failed() || P.Base % PageBytes != 0)
      return fail(Error, "bad checkpoint page base");
    P.Data.resize(PageBytes);
    if (!R.bytes(P.Data.data(), PageBytes))
      return fail(Error, "truncated checkpoint page");
    C.Pages.push_back(std::move(P));
  }
  if (!R.atEnd())
    return fail(Error, "trailing bytes after checkpoint");
  return true;
}

ContainerSection bor::checkpointSection(const MachineCheckpoint &C) {
  return ContainerSection::make(CheckpointTag, encodeCheckpoint(C));
}

bool bor::saveCheckpointFile(const Program &P, const MachineCheckpoint &C,
                             const std::string &Path) {
  return saveProgram(P, Path, {checkpointSection(C)});
}

bool bor::loadCheckpointFile(const std::string &Path, Program &P,
                             MachineCheckpoint &C, std::string &Error) {
  LoadResult R = loadProgramFile(Path);
  if (!R.Ok)
    return fail(Error, R.Error);
  const ContainerSection *S = R.findSection(CheckpointTag);
  if (!S)
    return fail(Error, "'" + Path + "' has no CKPT section");
  if (!decodeCheckpoint(S->Bytes, C, Error))
    return false;
  P = std::move(R.Prog);
  return true;
}
