//===- sample/SampledRunner.h - SMARTS-style sampled simulation -----------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Systematic interval sampling over one workload: the committed stream is
/// executed functionally end to end (so architectural results are exactly
/// those of a full run — every instruction executes once, through one
/// Machine and one BrrDecider), while only a small periodic slice runs
/// through the detailed Pipeline:
///
///   per period: functional warming | detailed interval | fast-forward
///
/// Each detailed interval opens with a discarded pre-roll that absorbs the
/// pipeline-fill ramp, then measures MeasureInsts instructions. The
/// per-interval IPC, flush-fraction and brr-rate samples aggregate into
/// mean estimates with 95% confidence intervals (support/Stats.h), so a
/// sampled result quantifies its own statistical error. Validation lives
/// in the `sample_error` experiment (src/exp/ExperimentsSample.cpp) and
/// docs/SAMPLING.md.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SAMPLE_SAMPLEDRUNNER_H
#define BOR_SAMPLE_SAMPLEDRUNNER_H

#include "sample/SamplingPlan.h"
#include "support/Stats.h"
#include "telemetry/Telemetry.h"
#include "uarch/Pipeline.h"

namespace bor {

namespace ckpt {
class CheckpointLibrary;
struct RegionSelection;
} // namespace ckpt

/// A marker observed anywhere in a sampled run, positioned by its global
/// committed-instruction index (1-based, counting every instruction in the
/// stream regardless of which phase executed it). Sampled runs estimate
/// ROI cycles as an instruction span divided by the mean IPC, so the
/// instruction index — exact in every phase — replaces the commit cycle.
struct SampledMarker {
  int32_t Id = 0;
  uint64_t GlobalInst = 0;
};

/// Everything a sampled execution produces.
struct SampledResult {
  SamplingPlan Plan;

  /// Phase totals; TotalInsts is the full stream length and always equals
  /// what an uninterrupted functional run retires.
  uint64_t TotalInsts = 0;
  uint64_t FastForwardInsts = 0;
  uint64_t WarmedInsts = 0;
  uint64_t PrerollInsts = 0;
  uint64_t MeasuredInsts = 0;
  uint64_t NumIntervals = 0;
  bool Halted = false;

  /// Detailed-model statistics summed over the measured windows only
  /// (pre-roll excluded).
  PipelineStats Detailed;

  /// Per-interval samples: IPC, flush fraction (flush cycles over interval
  /// cycles) and brr executions per kilo-instruction.
  RunningStat IpcSamples;
  RunningStat FlushFracSamples;
  RunningStat BrrRateSamples;

  /// Self-profiling phase timers: wall-clock spent fast-forwarding vs
  /// functionally warming vs running the detailed intervals (pre-roll +
  /// measurement). Always collected — one steady_clock read per phase
  /// transition — so sampled cells can report where their time went (the
  /// ROADMAP's interpreter-profiling question) without a trace attached.
  double FastForwardMs = 0;
  double WarmMs = 0;
  double MeasureMs = 0;

  std::vector<SampledMarker> Markers;

  double ipcMean() const { return IpcSamples.mean(); }
  double ipcCi95() const { return IpcSamples.ci95HalfWidth(); }

  /// Estimated cycles for a span of \p Insts committed instructions, from
  /// the sampled mean IPC; 0 when nothing was measured.
  double estimatedCycles(uint64_t Insts) const {
    return ipcMean() > 0.0 ? static_cast<double>(Insts) / ipcMean() : 0.0;
  }

  /// Instruction span between the first two markers (the harness ROI
  /// convention, as RunResult::roiCycles but in instructions).
  uint64_t roiInsts() const {
    assert(Markers.size() >= 2 && "run committed fewer than two markers");
    return Markers[1].GlobalInst - Markers[0].GlobalInst;
  }
};

/// Runs \p DP's program to completion under \p Plan. \p Decider resolves
/// every brr in the stream (all phases share it, so the outcome sequence
/// is identical to an unsampled run's); pass nullptr for a config-default
/// LFSR decider. \p MaxInsts bounds the total stream as Pipeline::run's
/// budget does. \p Telemetry (optional) adds one trace span per phase
/// (warm / detailed / fast-forward) and publishes sample.* counters at the
/// end of the run. \p DP must outlive the call; decode once per workload
/// and share the image across every sampled (and full) run of it.
SampledResult runSampled(const DecodedProgram &DP, const SamplingPlan &Plan,
                         const PipelineConfig &Config = PipelineConfig(),
                         BrrDecider *Decider = nullptr,
                         uint64_t MaxInsts = ~0ULL,
                         const telemetry::TelemetrySink *Telemetry = nullptr);

/// Convenience form that decodes \p P privately. Prefer the DecodedProgram
/// overload when the same program runs more than once.
SampledResult runSampled(const Program &P, const SamplingPlan &Plan,
                         const PipelineConfig &Config = PipelineConfig(),
                         BrrDecider *Decider = nullptr,
                         uint64_t MaxInsts = ~0ULL,
                         const telemetry::TelemetrySink *Telemetry = nullptr);

/// As above, but resumes from existing architectural state in \p M (e.g. a
/// restored checkpoint; the image is not reloaded) and leaves the final
/// state in place. \p StartInsts seeds the global instruction index so
/// marker positions line up with the original stream.
SampledResult runSampled(const DecodedProgram &DP, Machine &M,
                         const SamplingPlan &Plan,
                         const PipelineConfig &Config, BrrDecider &Decider,
                         uint64_t MaxInsts = ~0ULL, uint64_t StartInsts = 0,
                         const telemetry::TelemetrySink *Telemetry = nullptr);

/// Convenience resuming form that decodes \p P privately.
SampledResult runSampled(const Program &P, Machine &M,
                         const SamplingPlan &Plan,
                         const PipelineConfig &Config, BrrDecider &Decider,
                         uint64_t MaxInsts = ~0ULL, uint64_t StartInsts = 0,
                         const telemetry::TelemetrySink *Telemetry = nullptr);

/// Library-backed sampled run: identical phase structure to runSampled,
/// but every fast-forward span whose end point has a checkpoint in \p Lib
/// is replaced by a COW resume — the machine re-attaches the library's
/// shared pages instead of re-executing the prefix, and the markers the
/// span would have observed are spliced from the library's record. The
/// library must have been built for the same program, the same
/// PipelineConfig::Brr decider configuration and Plan.PeriodInsts as its
/// capture period; spans without a matching checkpoint (library truncated
/// by its build budget, MaxInsts mid-period) execute functionally, so the
/// result is ALWAYS field-identical to the plain runSampled result except
/// for the wall-clock phase timers.
///
/// With \p Regions set (selectRegions over Lib.periodBbvs()), only each
/// representative period is warmed and measured, and its interval stats
/// are weighted by the number of periods it represents: a deterministic
/// estimate — no longer field-identical to plain sampling — that cuts
/// execution to the distinct program phases. Markers come verbatim from
/// the library (exact); MaxInsts is ignored (the library's stream bounds
/// the run).
///
/// Publishes ckpt.resumes, ckpt.insts.skipped and the
/// ckpt.pages.{shared,copied} COW totals alongside the usual sample.*
/// counters; sample.insts.fast_forward counts only instructions actually
/// executed, so the plain-vs-library ratio of that counter is the
/// measured redundancy win.
SampledResult
runSampledFromLibrary(const DecodedProgram &DP,
                      const ckpt::CheckpointLibrary &Lib,
                      const SamplingPlan &Plan, const PipelineConfig &Config,
                      uint64_t MaxInsts = ~0ULL,
                      const telemetry::TelemetrySink *Telemetry = nullptr,
                      const ckpt::RegionSelection *Regions = nullptr);

} // namespace bor

#endif // BOR_SAMPLE_SAMPLEDRUNNER_H
