//===- sample/SampledRunner.cpp - SMARTS-style sampled simulation ---------===//

#include "sample/SampledRunner.h"

#include "sample/Warmup.h"
#include "telemetry/Counters.h"

#include <algorithm>

using namespace bor;

namespace {

/// Field-wise difference of two cumulative PipelineStats snapshots (After
/// was taken later on the same Pipeline, so every counter is >= Before's).
PipelineStats statsDelta(const PipelineStats &After,
                         const PipelineStats &Before) {
  PipelineStats D;
  D.Cycles = After.Cycles - Before.Cycles;
  D.Insts = After.Insts - Before.Insts;
  D.CondBranches = After.CondBranches - Before.CondBranches;
  D.CondMispredicts = After.CondMispredicts - Before.CondMispredicts;
  D.IndirectBranches = After.IndirectBranches - Before.IndirectBranches;
  D.IndirectMispredicts =
      After.IndirectMispredicts - Before.IndirectMispredicts;
  D.DirectJumps = After.DirectJumps - Before.DirectJumps;
  D.DirectJumpDecodeRedirects =
      After.DirectJumpDecodeRedirects - Before.DirectJumpDecodeRedirects;
  D.BrrExecuted = After.BrrExecuted - Before.BrrExecuted;
  D.BrrTaken = After.BrrTaken - Before.BrrTaken;
  D.FetchIcacheStallCycles =
      After.FetchIcacheStallCycles - Before.FetchIcacheStallCycles;
  D.BackendFlushCycles = After.BackendFlushCycles - Before.BackendFlushCycles;
  D.FrontendFlushCycles =
      After.FrontendFlushCycles - Before.FrontendFlushCycles;
  D.FullWidthFetchCycles =
      After.FullWidthFetchCycles - Before.FullWidthFetchCycles;
  return D;
}

void accumulate(PipelineStats &Sum, const PipelineStats &D) {
  Sum.Cycles += D.Cycles;
  Sum.Insts += D.Insts;
  Sum.CondBranches += D.CondBranches;
  Sum.CondMispredicts += D.CondMispredicts;
  Sum.IndirectBranches += D.IndirectBranches;
  Sum.IndirectMispredicts += D.IndirectMispredicts;
  Sum.DirectJumps += D.DirectJumps;
  Sum.DirectJumpDecodeRedirects += D.DirectJumpDecodeRedirects;
  Sum.BrrExecuted += D.BrrExecuted;
  Sum.BrrTaken += D.BrrTaken;
  Sum.FetchIcacheStallCycles += D.FetchIcacheStallCycles;
  Sum.BackendFlushCycles += D.BackendFlushCycles;
  Sum.FrontendFlushCycles += D.FrontendFlushCycles;
  Sum.FullWidthFetchCycles += D.FullWidthFetchCycles;
}

} // namespace

SampledResult bor::runSampled(const DecodedProgram &DP, Machine &M,
                              const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider &Decider, uint64_t MaxInsts,
                              uint64_t StartInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  assert(Plan.valid() && "invalid sampling plan");
  SampledResult Result;
  Result.Plan = Plan;

  telemetry::TraceWriter *TW = Telemetry ? Telemetry->Trace : nullptr;
  telemetry::PhaseTimer FfTimer, WarmTimer, MeasureTimer;
  uint64_t Period = 0;

  // One functional interpreter and one microarchitectural state bundle
  // span the whole run; detailed intervals attach Pipelines to the same
  // Machine (and the same decoded image), so every instruction retires
  // exactly once.
  Interpreter Fn(DP, M, Decider, /*LoadImage=*/false);
  MicroarchState Uarch(Config);
  FunctionalWarmer Warmer(Uarch, Config);

  uint64_t Global = StartInsts; // committed instructions, all phases
  uint64_t Budget = MaxInsts;

  // Markers in the functional phases arrive through the interpreter's
  // hook, which fires with Fn.stats().Insts equal to the count *before*
  // the marker; +1 makes the recorded index 1-based inclusive, matching
  // the detailed path. FnGlobalOffset re-anchors Fn's private instruction
  // counter to the global stream at each functional-phase start (detailed
  // intervals advance Global through a different engine).
  uint64_t FnGlobalOffset = 0;
  Fn.setMarkerHook([&](int32_t Id) {
    Result.Markers.push_back({Id, FnGlobalOffset + Fn.stats().Insts + 1});
  });

  // Each period runs warm | measure | fast-forward, with the detailed
  // interval at the period's head: the first interval then measures the
  // program's true cold start (as a full detailed run would), and even a
  // stream shorter than one period yields at least one sample.
  while (!M.halted() && Result.TotalInsts < Budget) {
    // --- Functional warming: same stream, structures trained. ----------
    {
      telemetry::TraceSpan Span(TW, "warm", "sample",
                                {telemetry::TraceArg::num("period", Period)});
      WarmTimer.start();
      FnGlobalOffset = Global - Fn.stats().Insts;
      for (uint64_t I = 0; I != Plan.WarmupInsts && !M.halted() &&
                           Result.TotalInsts < Budget;
           ++I) {
        Warmer.observe(Fn.step());
        ++Global;
        ++Result.TotalInsts;
        ++Result.WarmedInsts;
      }
      WarmTimer.stop();
    }

    if (M.halted() || Result.TotalInsts >= Budget)
      break;

    // --- Detailed interval: pre-roll (discarded) then measurement. -----
    uint64_t IntervalBase = Global;
    telemetry::TraceSpan MeasureSpan(
        TW, "measure", "sample",
        {telemetry::TraceArg::num("period", Period)});
    MeasureTimer.start();
    Pipeline Pipe(DP, M, Uarch, Config, Decider);
    Pipe.setTelemetry(Telemetry);

    uint64_t Remaining = Budget - Result.TotalInsts;
    uint64_t PrerollTarget = std::min(Plan.DetailedWarmupInsts, Remaining);
    Pipe.run(PrerollTarget, /*RequireHalt=*/false);
    PipelineStats Before = Pipe.stats();

    uint64_t MeasureTarget =
        std::min(PrerollTarget + Plan.MeasureInsts, Remaining);
    RunResult R = Pipe.run(MeasureTarget, /*RequireHalt=*/false);
    MeasureTimer.stop();

    uint64_t IntervalInsts = R.Stats.Insts;
    MeasureSpan.arg(telemetry::TraceArg::num("insts", IntervalInsts));
    MeasureSpan.close();
    Global += IntervalInsts;
    Result.TotalInsts += IntervalInsts;
    Result.PrerollInsts += Before.Insts;

    for (const MarkerEvent &E : R.Markers)
      Result.Markers.push_back({E.Id, IntervalBase + E.InstsRetired});

    PipelineStats D = statsDelta(R.Stats, Before);
    if (D.Insts != 0) {
      Result.MeasuredInsts += D.Insts;
      ++Result.NumIntervals;
      accumulate(Result.Detailed, D);
      if (D.Cycles != 0) {
        Result.IpcSamples.add(static_cast<double>(D.Insts) /
                              static_cast<double>(D.Cycles));
        Result.FlushFracSamples.add(
            static_cast<double>(D.BackendFlushCycles +
                                D.FrontendFlushCycles) /
            static_cast<double>(D.Cycles));
      }
      Result.BrrRateSamples.add(1000.0 * static_cast<double>(D.BrrExecuted) /
                                static_cast<double>(D.Insts));
    }

    // --- Fast-forward: functional only, rest of the period. ------------
    {
      telemetry::TraceSpan Span(TW, "fast-forward", "sample",
                                {telemetry::TraceArg::num("period", Period)});
      FfTimer.start();
      uint64_t FastForward = Plan.PeriodInsts - Plan.WarmupInsts -
                             Plan.DetailedWarmupInsts - Plan.MeasureInsts;
      // No per-record observer here, so the whole span runs through the
      // engine's block-chained dispatch loop in one call.
      FnGlobalOffset = Global - Fn.stats().Insts;
      uint64_t InstsBefore = Fn.stats().Insts;
      Fn.run(std::min(FastForward, Budget - Result.TotalInsts),
             /*RequireHalt=*/false);
      uint64_t Done = Fn.stats().Insts - InstsBefore;
      Global += Done;
      Result.TotalInsts += Done;
      Result.FastForwardInsts += Done;
      FfTimer.stop();
    }
    ++Period;
  }

  Result.Halted = M.halted();
  Result.FastForwardMs = FfTimer.totalMs();
  Result.WarmMs = WarmTimer.totalMs();
  Result.MeasureMs = MeasureTimer.totalMs();

  if (telemetry::CounterRegistry::enabled()) {
    static const telemetry::Counter Runs("sample.runs");
    static const telemetry::Counter Intervals("sample.intervals");
    static const telemetry::Counter Total("sample.insts.total");
    static const telemetry::Counter Warmed("sample.insts.warmed");
    static const telemetry::Counter Preroll("sample.insts.preroll");
    static const telemetry::Counter Measured("sample.insts.measured");
    static const telemetry::Counter Ff("sample.insts.fast_forward");
    Runs.add();
    Intervals.add(Result.NumIntervals);
    Total.add(Result.TotalInsts);
    Warmed.add(Result.WarmedInsts);
    Preroll.add(Result.PrerollInsts);
    Measured.add(Result.MeasuredInsts);
    Ff.add(Result.FastForwardInsts);
    // The structures the sampler kept warm across intervals (attached
    // Pipelines deliberately skip them).
    publishUarchCounters(Uarch);
  }
  return Result;
}

SampledResult bor::runSampled(const DecodedProgram &DP,
                              const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider *Decider, uint64_t MaxInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  Machine M;
  M.loadProgram(DP.program());
  std::unique_ptr<BrrDecider> Owned;
  if (!Decider) {
    Owned = std::make_unique<BrrUnitDecider>(Config.Brr);
    Decider = Owned.get();
  }
  return runSampled(DP, M, Plan, Config, *Decider, MaxInsts,
                    /*StartInsts=*/0, Telemetry);
}

SampledResult bor::runSampled(const Program &P, const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider *Decider, uint64_t MaxInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  DecodedProgram DP(P);
  return runSampled(DP, Plan, Config, Decider, MaxInsts, Telemetry);
}

SampledResult bor::runSampled(const Program &P, Machine &M,
                              const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider &Decider, uint64_t MaxInsts,
                              uint64_t StartInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  DecodedProgram DP(P);
  return runSampled(DP, M, Plan, Config, Decider, MaxInsts, StartInsts,
                    Telemetry);
}
