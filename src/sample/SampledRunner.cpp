//===- sample/SampledRunner.cpp - SMARTS-style sampled simulation ---------===//

#include "sample/SampledRunner.h"

#include "ckpt/CheckpointLibrary.h"
#include "sample/Warmup.h"
#include "telemetry/Counters.h"

#include <algorithm>

using namespace bor;

namespace {

/// Field-wise difference of two cumulative PipelineStats snapshots (After
/// was taken later on the same Pipeline, so every counter is >= Before's).
PipelineStats statsDelta(const PipelineStats &After,
                         const PipelineStats &Before) {
  PipelineStats D;
  D.Cycles = After.Cycles - Before.Cycles;
  D.Insts = After.Insts - Before.Insts;
  D.CondBranches = After.CondBranches - Before.CondBranches;
  D.CondMispredicts = After.CondMispredicts - Before.CondMispredicts;
  D.IndirectBranches = After.IndirectBranches - Before.IndirectBranches;
  D.IndirectMispredicts =
      After.IndirectMispredicts - Before.IndirectMispredicts;
  D.DirectJumps = After.DirectJumps - Before.DirectJumps;
  D.DirectJumpDecodeRedirects =
      After.DirectJumpDecodeRedirects - Before.DirectJumpDecodeRedirects;
  D.BrrExecuted = After.BrrExecuted - Before.BrrExecuted;
  D.BrrTaken = After.BrrTaken - Before.BrrTaken;
  D.FetchIcacheStallCycles =
      After.FetchIcacheStallCycles - Before.FetchIcacheStallCycles;
  D.BackendFlushCycles = After.BackendFlushCycles - Before.BackendFlushCycles;
  D.FrontendFlushCycles =
      After.FrontendFlushCycles - Before.FrontendFlushCycles;
  D.FullWidthFetchCycles =
      After.FullWidthFetchCycles - Before.FullWidthFetchCycles;
  return D;
}

void accumulate(PipelineStats &Sum, const PipelineStats &D) {
  Sum.Cycles += D.Cycles;
  Sum.Insts += D.Insts;
  Sum.CondBranches += D.CondBranches;
  Sum.CondMispredicts += D.CondMispredicts;
  Sum.IndirectBranches += D.IndirectBranches;
  Sum.IndirectMispredicts += D.IndirectMispredicts;
  Sum.DirectJumps += D.DirectJumps;
  Sum.DirectJumpDecodeRedirects += D.DirectJumpDecodeRedirects;
  Sum.BrrExecuted += D.BrrExecuted;
  Sum.BrrTaken += D.BrrTaken;
  Sum.FetchIcacheStallCycles += D.FetchIcacheStallCycles;
  Sum.BackendFlushCycles += D.BackendFlushCycles;
  Sum.FrontendFlushCycles += D.FrontendFlushCycles;
  Sum.FullWidthFetchCycles += D.FullWidthFetchCycles;
}

/// Folds one interval's delta into the aggregate result and returns the
/// interval's point measurements (the time-series entry, minus the
/// fast-forward count the caller backfills after the ff phase runs).
telemetry::IntervalSample recordInterval(SampledResult &Result,
                                         const PipelineStats &D) {
  telemetry::IntervalSample S;
  accumulate(Result.Detailed, D);
  if (D.Cycles != 0) {
    S.Ipc = static_cast<double>(D.Insts) / static_cast<double>(D.Cycles);
    S.FlushFrac =
        static_cast<double>(D.BackendFlushCycles + D.FrontendFlushCycles) /
        static_cast<double>(D.Cycles);
    Result.IpcSamples.add(S.Ipc);
    Result.FlushFracSamples.add(S.FlushFrac);
  }
  S.BrrRate = 1000.0 * static_cast<double>(D.BrrExecuted) /
              static_cast<double>(D.Insts);
  Result.BrrRateSamples.add(S.BrrRate);
  return S;
}

/// What a library-backed run did beyond plain sampling.
struct LibraryRunStats {
  uint64_t Resumes = 0;      ///< fast-forward spans replaced by a resume
  uint64_t SkippedInsts = 0; ///< instructions those spans did not execute
};

/// End-of-run counter publication shared by every sampled mode. \p
/// ExecutedFf is the fast-forward work that actually ran — a library
/// resume skips it, which is exactly the win the ckpt_perf_smoke gate
/// measures through this counter.
void publishSampleCounters(const SampledResult &Result, uint64_t ExecutedFf,
                           const MicroarchState &Uarch) {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter Runs("sample.runs");
  static const telemetry::Counter Intervals("sample.intervals");
  static const telemetry::Counter Total("sample.insts.total");
  static const telemetry::Counter Warmed("sample.insts.warmed");
  static const telemetry::Counter Preroll("sample.insts.preroll");
  static const telemetry::Counter Measured("sample.insts.measured");
  static const telemetry::Counter Ff("sample.insts.fast_forward");
  Runs.add();
  Intervals.add(Result.NumIntervals);
  Total.add(Result.TotalInsts);
  Warmed.add(Result.WarmedInsts);
  Preroll.add(Result.PrerollInsts);
  Measured.add(Result.MeasuredInsts);
  Ff.add(ExecutedFf);
  // The structures the sampler kept warm across intervals (attached
  // Pipelines deliberately skip them).
  publishUarchCounters(Uarch);
}

void publishLibraryCounters(const LibraryRunStats &LS, const Memory &Mem) {
  if (!telemetry::CounterRegistry::enabled())
    return;
  static const telemetry::Counter Resumes("ckpt.resumes");
  static const telemetry::Counter Skipped("ckpt.insts.skipped");
  static const telemetry::Counter Shared("ckpt.pages.shared");
  static const telemetry::Counter Copied("ckpt.pages.copied");
  Resumes.add(LS.Resumes);
  Skipped.add(LS.SkippedInsts);
  Shared.add(Mem.cowCounts().Attached);
  Copied.add(Mem.cowCounts().Copied);
}

/// The sampled-execution loop. With \p Lib null this IS runSampled; with a
/// library attached, fast-forward spans whose end point has a checkpoint
/// resume instead of executing (and \p LS records the skips). Everything
/// else — phase order, budgets, marker positions, interval accounting — is
/// one code path, which is what guarantees the two modes produce
/// field-identical results.
SampledResult runSampledLoop(const DecodedProgram &DP, Machine &M,
                             const SamplingPlan &Plan,
                             const PipelineConfig &Config,
                             BrrDecider &Decider, uint64_t MaxInsts,
                             uint64_t StartInsts,
                             const telemetry::TelemetrySink *Telemetry,
                             const ckpt::CheckpointLibrary *Lib,
                             LibraryRunStats *LS) {
  assert(Plan.valid() && "invalid sampling plan");
  SampledResult Result;
  Result.Plan = Plan;

  telemetry::TraceWriter *TW = Telemetry ? Telemetry->Trace : nullptr;
  telemetry::PhaseTimer FfTimer, WarmTimer, MeasureTimer;
  uint64_t Period = 0;

  // Per-interval time series, collected locally and published once at the
  // end. With no TimeSeries sink the vector never allocates: time-series
  // off costs one pointer test per interval.
  telemetry::TimeSeries *TS = Telemetry ? Telemetry->Series : nullptr;
  std::vector<telemetry::IntervalSample> Series;
  bool PeriodSampled = false; // did this period contribute an interval?

  // One functional interpreter and one microarchitectural state bundle
  // span the whole run; detailed intervals attach Pipelines to the same
  // Machine (and the same decoded image), so every instruction retires
  // exactly once.
  Interpreter Fn(DP, M, Decider, /*LoadImage=*/false);
  MicroarchState Uarch(Config);
  FunctionalWarmer Warmer(Uarch, Config);

  uint64_t Global = StartInsts; // committed instructions, all phases
  uint64_t Budget = MaxInsts;

  // Markers in the functional phases arrive through the interpreter's
  // hook, which fires with Fn.stats().Insts equal to the count *before*
  // the marker; +1 makes the recorded index 1-based inclusive, matching
  // the detailed path. FnGlobalOffset re-anchors Fn's private instruction
  // counter to the global stream at each functional-phase start (detailed
  // intervals advance Global through a different engine).
  uint64_t FnGlobalOffset = 0;
  Fn.setMarkerHook([&](int32_t Id) {
    Result.Markers.push_back({Id, FnGlobalOffset + Fn.stats().Insts + 1});
  });

  // Each period runs warm | measure | fast-forward, with the detailed
  // interval at the period's head: the first interval then measures the
  // program's true cold start (as a full detailed run would), and even a
  // stream shorter than one period yields at least one sample.
  while (!M.halted() && Result.TotalInsts < Budget) {
    // --- Functional warming: same stream, structures trained. ----------
    {
      telemetry::TraceSpan Span(TW, "warm", "sample",
                                {telemetry::TraceArg::num("period", Period)});
      WarmTimer.start();
      FnGlobalOffset = Global - Fn.stats().Insts;
      for (uint64_t I = 0; I != Plan.WarmupInsts && !M.halted() &&
                           Result.TotalInsts < Budget;
           ++I) {
        Warmer.observe(Fn.step());
        ++Global;
        ++Result.TotalInsts;
        ++Result.WarmedInsts;
      }
      WarmTimer.stop();
    }

    if (M.halted() || Result.TotalInsts >= Budget)
      break;

    // --- Detailed interval: pre-roll (discarded) then measurement. -----
    uint64_t IntervalBase = Global;
    telemetry::TraceSpan MeasureSpan(
        TW, "measure", "sample",
        {telemetry::TraceArg::num("period", Period)});
    MeasureTimer.start();
    Pipeline Pipe(DP, M, Uarch, Config, Decider);
    Pipe.setTelemetry(Telemetry);

    uint64_t Remaining = Budget - Result.TotalInsts;
    uint64_t PrerollTarget = std::min(Plan.DetailedWarmupInsts, Remaining);
    Pipe.run(PrerollTarget, /*RequireHalt=*/false);
    PipelineStats Before = Pipe.stats();

    uint64_t MeasureTarget =
        std::min(PrerollTarget + Plan.MeasureInsts, Remaining);
    RunResult R = Pipe.run(MeasureTarget, /*RequireHalt=*/false);
    MeasureTimer.stop();

    uint64_t IntervalInsts = R.Stats.Insts;
    MeasureSpan.arg(telemetry::TraceArg::num("insts", IntervalInsts));
    MeasureSpan.close();
    Global += IntervalInsts;
    Result.TotalInsts += IntervalInsts;
    Result.PrerollInsts += Before.Insts;

    for (const MarkerEvent &E : R.Markers)
      Result.Markers.push_back({E.Id, IntervalBase + E.InstsRetired});

    PipelineStats D = statsDelta(R.Stats, Before);
    PeriodSampled = D.Insts != 0;
    if (D.Insts != 0) {
      Result.MeasuredInsts += D.Insts;
      ++Result.NumIntervals;
      telemetry::IntervalSample S = recordInterval(Result, D);
      if (TS)
        Series.push_back(S);
    }

    // --- Fast-forward: functional only, rest of the period. ------------
    {
      telemetry::TraceSpan Span(TW, "fast-forward", "sample",
                                {telemetry::TraceArg::num("period", Period)});
      FfTimer.start();
      uint64_t FastForward = Plan.PeriodInsts - Plan.WarmupInsts -
                             Plan.DetailedWarmupInsts - Plan.MeasureInsts;
      uint64_t Want =
          std::min(FastForward, Budget - Result.TotalInsts);

      // Library mode: both engines honor their budgets exactly, so the
      // span's end point Global + Want lands on a period boundary — where
      // the library captured. Resuming that checkpoint (and splicing the
      // markers the span would have executed) is bit-identical to
      // executing, minus the execution. A halt inside the span maps to
      // the library's final checkpoint; anything else (library truncated
      // by its build budget, MaxInsts mid-period) executes as usual.
      const ckpt::LibraryCheckpoint *C = nullptr;
      if (Lib && Want != 0 && !M.halted()) {
        C = Lib->checkpointAt(Global + Want);
        if (!C) {
          const ckpt::LibraryCheckpoint *F = Lib->finalCheckpoint();
          if (F && F->Halted && F->InstsRetired > Global &&
              F->InstsRetired <= Global + Want)
            C = F;
        }
      }
      if (C) {
        for (const ckpt::LibraryMarker &LM :
             Lib->markersIn(Global, C->InstsRetired))
          Result.Markers.push_back({LM.Id, LM.GlobalInst});
        std::string Error;
        bool Ok = Lib->resume(*C, M, Decider, Error);
        assert(Ok && "library resume failed after up-front kind check");
        (void)Ok;
        uint64_t Skipped = C->InstsRetired - Global;
        Global += Skipped;
        Result.TotalInsts += Skipped;
        Result.FastForwardInsts += Skipped;
        LS->SkippedInsts += Skipped;
        ++LS->Resumes;
      } else {
        // No per-record observer here, so the whole span runs through the
        // engine's block-chained dispatch loop in one call.
        FnGlobalOffset = Global - Fn.stats().Insts;
        uint64_t InstsBefore = Fn.stats().Insts;
        Fn.run(Want, /*RequireHalt=*/false);
        uint64_t Done = Fn.stats().Insts - InstsBefore;
        Global += Done;
        Result.TotalInsts += Done;
        Result.FastForwardInsts += Done;
        // Attribute the span's *executed* instructions to the interval it
        // follows (a resume above skips them, leaving the entry 0 — the
        // time series shows the library win period by period).
        if (TS && PeriodSampled)
          Series.back().FfInsts = Done;
      }
      FfTimer.stop();
    }
    ++Period;
  }

  Result.Halted = M.halted();
  Result.FastForwardMs = FfTimer.totalMs();
  Result.WarmMs = WarmTimer.totalMs();
  Result.MeasureMs = MeasureTimer.totalMs();

  if (TS)
    TS->record(std::move(Series));

  publishSampleCounters(
      Result, Result.FastForwardInsts - (LS ? LS->SkippedInsts : 0), Uarch);
  return Result;
}

/// Region mode: measure only each representative period, weight its
/// interval by the periods it stands for. Deterministic, but an estimate
/// (see runSampledFromLibrary's contract).
SampledResult runSampledRegions(const DecodedProgram &DP,
                                const ckpt::CheckpointLibrary &Lib,
                                const ckpt::RegionSelection &Regions,
                                Machine &M, const SamplingPlan &Plan,
                                const PipelineConfig &Config,
                                BrrDecider &Decider,
                                const telemetry::TelemetrySink *Telemetry,
                                LibraryRunStats &LS) {
  SampledResult Result;
  Result.Plan = Plan;

  telemetry::TraceWriter *TW = Telemetry ? Telemetry->Trace : nullptr;
  telemetry::PhaseTimer WarmTimer, MeasureTimer;

  // Region mode's series holds one entry per *measured* representative
  // (weights apply to the aggregate stats, not the sequence); FfInsts
  // stays 0 — region mode never executes fast-forward.
  telemetry::TimeSeries *TS = Telemetry ? Telemetry->Series : nullptr;
  std::vector<telemetry::IntervalSample> Series;

  Interpreter Fn(DP, M, Decider, /*LoadImage=*/false);
  MicroarchState Uarch(Config);
  FunctionalWarmer Warmer(Uarch, Config);

  // The library recorded every marker with its exact global position
  // during the build pass; no marker hook is installed, so the measured
  // snippets do not record duplicates.
  for (const ckpt::LibraryMarker &LM : Lib.markers())
    Result.Markers.push_back({LM.Id, LM.GlobalInst});

  uint64_t ExecutedMeasured = 0;
  for (uint32_t Rep : Regions.Reps) {
    const ckpt::LibraryCheckpoint *C =
        Lib.checkpointAt(static_cast<uint64_t>(Rep) * Lib.periodInsts());
    if (!C || C->Halted)
      continue; // defensive: selections derive from the library's periods
    std::string Error;
    bool Ok = Lib.resume(*C, M, Decider, Error);
    assert(Ok && "library resume failed after up-front kind check");
    (void)Ok;
    ++LS.Resumes;

    telemetry::TraceSpan Span(
        TW, "region", "sample",
        {telemetry::TraceArg::num("period", static_cast<uint64_t>(Rep))});
    WarmTimer.start();
    for (uint64_t I = 0; I != Plan.WarmupInsts && !M.halted(); ++I) {
      Warmer.observe(Fn.step());
      ++Result.WarmedInsts;
    }
    WarmTimer.stop();
    if (M.halted())
      continue; // the final (partial) period may end inside the warmup

    MeasureTimer.start();
    Pipeline Pipe(DP, M, Uarch, Config, Decider);
    Pipe.setTelemetry(Telemetry);
    Pipe.run(Plan.DetailedWarmupInsts, /*RequireHalt=*/false);
    PipelineStats Before = Pipe.stats();
    RunResult R = Pipe.run(Plan.DetailedWarmupInsts + Plan.MeasureInsts,
                           /*RequireHalt=*/false);
    MeasureTimer.stop();
    Result.PrerollInsts += Before.Insts;

    PipelineStats D = statsDelta(R.Stats, Before);
    if (D.Insts == 0)
      continue;
    ++Result.NumIntervals;
    ExecutedMeasured += D.Insts;
    uint64_t Weight = Regions.weightOf(Rep);
    Result.MeasuredInsts += Weight * D.Insts;
    telemetry::IntervalSample S;
    for (uint64_t W = 0; W != Weight; ++W)
      S = recordInterval(Result, D);
    if (TS)
      Series.push_back(S);
  }

  // The library's stream is the run: totals come from its record, and
  // everything the representatives did not execute counts as skipped
  // fast-forward.
  Result.TotalInsts = Lib.totalInsts();
  Result.Halted = Lib.streamHalted();
  uint64_t Executed =
      Result.WarmedInsts + Result.PrerollInsts + ExecutedMeasured;
  Result.FastForwardInsts =
      Result.TotalInsts > Executed ? Result.TotalInsts - Executed : 0;
  LS.SkippedInsts += Result.FastForwardInsts;
  Result.WarmMs = WarmTimer.totalMs();
  Result.MeasureMs = MeasureTimer.totalMs();

  if (TS)
    TS->record(std::move(Series));

  publishSampleCounters(Result, /*ExecutedFf=*/0, Uarch);
  return Result;
}

} // namespace

SampledResult bor::runSampled(const DecodedProgram &DP, Machine &M,
                              const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider &Decider, uint64_t MaxInsts,
                              uint64_t StartInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  return runSampledLoop(DP, M, Plan, Config, Decider, MaxInsts, StartInsts,
                        Telemetry, /*Lib=*/nullptr, /*LS=*/nullptr);
}

SampledResult bor::runSampled(const DecodedProgram &DP,
                              const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider *Decider, uint64_t MaxInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  Machine M;
  M.loadProgram(DP.program());
  std::unique_ptr<BrrDecider> Owned;
  if (!Decider) {
    Owned = std::make_unique<BrrUnitDecider>(Config.Brr);
    Decider = Owned.get();
  }
  return runSampled(DP, M, Plan, Config, *Decider, MaxInsts,
                    /*StartInsts=*/0, Telemetry);
}

SampledResult bor::runSampled(const Program &P, const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider *Decider, uint64_t MaxInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  DecodedProgram DP(P);
  return runSampled(DP, Plan, Config, Decider, MaxInsts, Telemetry);
}

SampledResult bor::runSampled(const Program &P, Machine &M,
                              const SamplingPlan &Plan,
                              const PipelineConfig &Config,
                              BrrDecider &Decider, uint64_t MaxInsts,
                              uint64_t StartInsts,
                              const telemetry::TelemetrySink *Telemetry) {
  DecodedProgram DP(P);
  return runSampled(DP, M, Plan, Config, Decider, MaxInsts, StartInsts,
                    Telemetry);
}

SampledResult bor::runSampledFromLibrary(
    const DecodedProgram &DP, const ckpt::CheckpointLibrary &Lib,
    const SamplingPlan &Plan, const PipelineConfig &Config,
    uint64_t MaxInsts, const telemetry::TelemetrySink *Telemetry,
    const ckpt::RegionSelection *Regions) {
  assert(Lib.periodInsts() == Plan.PeriodInsts &&
         "library capture period must match the sampling plan");
  Machine M;
  BrrUnitDecider Decider(Config.Brr);
  std::string Error;
  if (Lib.numCheckpoints() == 0 ||
      !Lib.resume(Lib.front(), M, Decider, Error)) {
    // Unusable library (wrong decider kind, empty): run the stream
    // plainly — correctness over speed.
    return runSampled(DP, Plan, Config, nullptr, MaxInsts, Telemetry);
  }

  LibraryRunStats LS;
  SampledResult Result =
      Regions ? runSampledRegions(DP, Lib, *Regions, M, Plan, Config,
                                  Decider, Telemetry, LS)
              : runSampledLoop(DP, M, Plan, Config, Decider, MaxInsts,
                               /*StartInsts=*/0, Telemetry, &Lib, &LS);
  publishLibraryCounters(LS, M.memory());
  return Result;
}
