//===- sample/Checkpoint.h - Architectural state snapshots ----------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Capture and restore of full architectural machine state — registers, PC,
/// halt flag, retired-instruction count, every touched memory page, and the
/// brr decider's internal state (LFSR word and evaluation count) — so a
/// functional run can be suspended and resumed bit-identically, and so the
/// sampled-simulation subsystem can fast-forward from a saved point instead
/// of from reset.
///
/// On disk a checkpoint travels as a "CKPT" section of the BORB container
/// (isa/Serialize.h): the image carries both the program and the state, so
/// `bor-run --resume prog.ckpt.borb` needs no side files. The payload
/// encoding is owned entirely by this file; the container treats it as
/// opaque bytes.
///
/// Payload layout (little-endian):
///   u32 version | u64 pc | u8 halted | u64 instsRetired
///   | u32 deciderKindLen, kind bytes | u32 numDeciderWords, u64 words
///   | 32 x u64 registers
///   | u64 numPages | pages: (u64 base, 4096 data bytes)*
///
/// All-zero pages are skipped at capture: restoring into a reset Machine
/// reproduces them implicitly, keeping checkpoints of sparse address
/// spaces small.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SAMPLE_CHECKPOINT_H
#define BOR_SAMPLE_CHECKPOINT_H

#include "sim/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace bor {

struct ContainerSection;
class Program;

/// A point-in-time snapshot of architectural state plus the decider state
/// needed to reproduce the brr outcome stream from this point on.
struct MachineCheckpoint {
  uint64_t Pc = 0;
  bool Halted = false;
  /// Instructions the interpreter had retired when the snapshot was taken
  /// (restored into the resuming interpreter so instruction budgets and
  /// sampling schedules stay aligned with the original stream).
  uint64_t InstsRetired = 0;
  std::array<uint64_t, 32> Regs{};
  /// Touched pages, sorted by base address; each entry is exactly
  /// Memory::pageBytes() bytes. All-zero pages are omitted.
  struct Page {
    uint64_t Base = 0;
    std::vector<uint8_t> Data;
  };
  std::vector<Page> Pages;
  /// Decider identity and opaque state words (BrrDecider::checkpointKind /
  /// checkpointWords). Restoring verifies the kind matches so an LFSR
  /// checkpoint cannot silently resume under a counter decider.
  std::string DeciderKind;
  std::vector<uint64_t> DeciderWords;
};

/// Snapshots \p M and \p Decider. \p InstsRetired is the interpreter's
/// retired count at the snapshot point.
MachineCheckpoint captureCheckpoint(const Machine &M,
                                    const BrrDecider &Decider,
                                    uint64_t InstsRetired);

/// Restores \p C into \p M (resetting memory first) and \p Decider.
/// Returns false — leaving an error in \p Error — when the checkpoint's
/// decider kind does not match \p Decider's.
bool restoreCheckpoint(const MachineCheckpoint &C, Machine &M,
                       BrrDecider &Decider, std::string &Error);

/// Payload (de)serialization. decodeCheckpoint returns false and sets
/// \p Error on malformed bytes.
std::vector<uint8_t> encodeCheckpoint(const MachineCheckpoint &C);
bool decodeCheckpoint(const std::vector<uint8_t> &Bytes, MachineCheckpoint &C,
                      std::string &Error);

/// The container-section tag carrying a checkpoint payload.
ContainerSection checkpointSection(const MachineCheckpoint &C);

/// Writes \p P plus \p C as a BORB v2 image at \p Path.
bool saveCheckpointFile(const Program &P, const MachineCheckpoint &C,
                        const std::string &Path);

/// Loads a checkpoint image: program into \p P, state into \p C. Returns
/// false with a diagnostic in \p Error for I/O errors, format errors, or
/// images without a "CKPT" section.
bool loadCheckpointFile(const std::string &Path, Program &P,
                        MachineCheckpoint &C, std::string &Error);

} // namespace bor

#endif // BOR_SAMPLE_CHECKPOINT_H
