//===- sample/Warmup.h - Functional µarch warming -------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional warming for sampled simulation: drives the cache hierarchy,
/// tournament predictor, BTB and RAS from the interpreter's committed
/// instruction stream without computing any timing. Applied for the
/// WarmupInsts instructions before each detailed interval, it removes the
/// cold-structure bias that makes naively sampled IPC estimates wrong
/// (docs/SAMPLING.md).
///
/// The update rules mirror Pipeline's exactly — same predictor train/
/// repair sequence, same BTB insert conditions, same RAS push/pop, same
/// one-probe-per-line I-cache rule — so structures warmed here are in the
/// same state a detailed run would have left them in. Pipeline's comment
/// discipline applies: brr never touches predictor or BTB (Section 3.3)
/// unless the BrrAsBackendBranch ablation is on, and under
/// PerfectBranchPrediction the predictor structures are never consulted,
/// so only the caches warm.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SAMPLE_WARMUP_H
#define BOR_SAMPLE_WARMUP_H

#include "sim/Interpreter.h"
#include "uarch/MicroarchState.h"

namespace bor {

class FunctionalWarmer {
public:
  FunctionalWarmer(MicroarchState &Uarch, const PipelineConfig &Config)
      : Uarch(Uarch), Config(Config) {}

  /// Feeds one committed instruction through the structure-update rules.
  void observe(const ExecRecord &R);

  /// Steps \p Oracle for up to \p Insts instructions (or until halt),
  /// warming structures from each committed record. Returns the number of
  /// instructions actually consumed.
  uint64_t warm(Interpreter &Oracle, uint64_t Insts);

private:
  MicroarchState &Uarch;
  const PipelineConfig &Config;
  uint64_t LastFetchLine = ~0ULL;
};

} // namespace bor

#endif // BOR_SAMPLE_WARMUP_H
