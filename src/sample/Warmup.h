//===- sample/Warmup.h - Functional µarch warming -------------------------===//
//
// Part of the branch-on-random reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functional warming for sampled simulation: drives the cache hierarchy,
/// tournament predictor, BTB and RAS from the interpreter's committed
/// instruction stream without computing any timing. Applied for the
/// WarmupInsts instructions before each detailed interval, it removes the
/// cold-structure bias that makes naively sampled IPC estimates wrong
/// (docs/SAMPLING.md).
///
/// The branch-structure update rules are literally Pipeline's: both sides
/// delegate to the shared BranchUpdatePolicy (uarch/BranchPolicy.h), so
/// structures warmed here are in the same state a detailed run would have
/// left them in by construction. This class adds the cache side — the same
/// one-probe-per-line I-cache rule and per-load/store D-cache access the
/// timed fetch/execute paths make, minus the latency bookkeeping. Under
/// PerfectBranchPrediction the policy is a no-op, so only the caches warm.
///
//===----------------------------------------------------------------------===//

#ifndef BOR_SAMPLE_WARMUP_H
#define BOR_SAMPLE_WARMUP_H

#include "sim/Interpreter.h"
#include "uarch/BranchPolicy.h"
#include "uarch/MicroarchState.h"

namespace bor {

class FunctionalWarmer {
public:
  FunctionalWarmer(MicroarchState &Uarch, const PipelineConfig &Config)
      : Uarch(Uarch), Config(Config), Policy(Uarch, Config) {}

  /// Feeds one committed instruction through the structure-update rules.
  void observe(const ExecRecord &R);

  /// Steps \p Oracle for up to \p Insts instructions (or until halt),
  /// warming structures from each committed record. Returns the number of
  /// instructions actually consumed.
  uint64_t warm(Interpreter &Oracle, uint64_t Insts);

private:
  MicroarchState &Uarch;
  const PipelineConfig &Config;
  BranchUpdatePolicy Policy;
  uint64_t LastFetchLine = ~0ULL;
};

} // namespace bor

#endif // BOR_SAMPLE_WARMUP_H
